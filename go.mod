module mtsim

go 1.22
