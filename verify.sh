#!/bin/sh
# Tier-1 verify recipe (see ROADMAP.md): build, vet, full test suite,
# and the race detector over the concurrent packages.
set -eux

go build ./...
go vet ./...
go test ./...
go test -race ./internal/core/... ./internal/machine/...
# Race pass over the experiment/metrics aggregation path, the fault
# model, the HTTP serving layer (journal + async jobs + the fair-share
# tenant scheduler + SSE streaming + cluster membership included), and
# the snapshot codec (-short skips the double experiment regeneration
# and the chaostest daemon-kill harness, which runs in the plain pass
# above).
go test -race -short ./internal/cluster/... ./internal/exp/... ./internal/net/... ./internal/serve/... ./internal/snap/...
# Race pass over the resilience layer specifically: circuit breakers,
# the seeded chaos transport, hedged forwarding, brownout/deadline-
# aware admission, and the retrying client. These are the paths where
# goroutines race by design (hedges vs primaries, probes vs claims),
# so they get a dedicated -count=1 run in addition to the -short pass
# above.
go test -race -count=1 -run 'Breaker|Chaos|Hedge|Brownout|Doomed|Gate|Retr|ForwardTo|Partition' -short ./internal/cluster/ ./internal/serve/ ./internal/serve/client/
# The cycle-accounting layer carries an exactness guarantee; hold its
# unit coverage at >= 70%.
cover=$(go test -cover ./internal/metrics/ | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
test -n "$cover"
awk "BEGIN { exit !($cover >= 70.0) }"
# The network layer (topology routing/queueing, congestion, faults)
# decides every shared round trip; hold its unit coverage at >= 70%.
netcover=$(go test -cover ./internal/net/ | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
test -n "$netcover"
awk "BEGIN { exit !($netcover >= 70.0) }"
