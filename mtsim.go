// Package mtsim is a library-level reproduction of Boothe & Ranade,
// "Improved Multithreading Techniques for Hiding Communication Latency in
// Multiprocessors" (ISCA 1992).
//
// It provides:
//
//   - a cycle-level simulator of a multithreaded shared-memory
//     multiprocessor with the paper's full Figure 1 taxonomy of
//     context-switch models (switch-every-cycle, switch-on-load,
//     switch-on-use, explicit-switch, switch-on-miss, switch-on-use-miss,
//     conditional-switch, plus the zero-latency ideal reference machine);
//   - the paper's compiler optimization: basic-block dependency analysis
//     that groups independent shared loads and inserts explicit context
//     switch instructions (§5);
//   - the seven benchmark applications of Table 1 as IR kernels with
//     host-verified results; and
//   - generators that regenerate every table and figure of the paper's
//     evaluation (see DESIGN.md and EXPERIMENTS.md).
//
// Quick start:
//
//	a := mtsim.MustNewApp("sor", mtsim.Quick)
//	res, err := a.Run(mtsim.Config{
//	    Procs: 8, Threads: 4,
//	    Model: mtsim.ExplicitSwitch, Latency: 200,
//	})
//	fmt.Println(res.Summary())
//
// Custom programs are written against the prog.Builder assembler-style
// API; see examples/customapp.
package mtsim

import (
	"context"
	"io"
	"time"

	"mtsim/internal/app"
	"mtsim/internal/apps"
	"mtsim/internal/core"
	"mtsim/internal/exp"
	"mtsim/internal/machine"
	"mtsim/internal/metrics"
	"mtsim/internal/mtc"
	"mtsim/internal/net"
	"mtsim/internal/opt"
	"mtsim/internal/par"
	"mtsim/internal/prog"
)

// Core simulation types.
type (
	// Config parameterizes a simulation run.
	Config = machine.Config
	// Result reports one run's measurements.
	Result = machine.Result
	// Model is a context-switch policy.
	Model = machine.Model
	// DispatchMode selects the execution engine (compiled closures vs
	// the interpreter); the two are byte-identical in every observable.
	DispatchMode = machine.DispatchMode
	// Shared is the host view of simulated shared memory.
	Shared = machine.Shared
	// App is one benchmark application instance.
	App = app.App
	// Scale selects problem sizes.
	Scale = app.Scale
	// Program is an executable simulated program.
	Program = prog.Program
	// Builder assembles custom Programs.
	Builder = prog.Builder
	// OptStats reports what the grouping optimizer did.
	OptStats = opt.Stats
	// Experiment is one regenerable paper table or figure.
	Experiment = exp.Experiment
	// ExpOptions configures experiment generation.
	ExpOptions = exp.Options
	// Session memoizes runs and baselines across measurements. It is
	// safe for concurrent use: simultaneous Run calls on the same
	// configuration are deduplicated singleflight-style and share one
	// result, and Session.Workers sizes its worker pools. Every
	// measurement has a context-first form — Session.RunContext,
	// Session.RunBatchContext, Session.MTSearchContext,
	// Session.BaselineContext, Session.EfficiencyContext — whose
	// cancellation aborts in-flight simulations cooperatively with
	// job-aligned partial results; the plain names run under
	// context.Background().
	Session = core.Session
	// ExpOption configures experiment generation functionally; see
	// NewExp and the With* options.
	ExpOption = exp.Option
	// RunJob names one (application, configuration) simulation for
	// Session.RunBatch.
	RunJob = core.Job
	// Sym names a region of simulated memory.
	Sym = prog.Sym
	// FaultConfig parameterizes fault injection on shared-memory round
	// trips (Config.Faults): drop/duplicate/delay rates, degraded latency
	// distributions, and the recovery protocol's timeout/backoff
	// constants. Deterministic per (Seed, config).
	FaultConfig = net.FaultConfig
	// FaultStats reports what a faulted run injected and recovered
	// (Result.Faults).
	FaultStats = net.FaultStats
	// DelayDist selects a degraded round-trip distribution.
	DelayDist = net.DelayDist
	// TopologyConfig selects a load-dependent interconnect topology for
	// Config.Topology (constant, mesh, fattree, dragonfly). The zero
	// value keeps the paper's constant round trip.
	TopologyConfig = net.TopologyConfig
	// TopologyKind names one of the interconnect topologies.
	TopologyKind = net.TopologyKind
	// BatchError aggregates per-job failures from Session.RunBatch while
	// the healthy jobs' results are still returned.
	BatchError = core.BatchError
	// PanicError is a worker panic recovered into a structured per-job
	// error.
	PanicError = core.PanicError
	// RunMetrics is the cycle-accounting observability record of one run
	// (Result.Metrics, filled when Config.CollectMetrics is set): exact
	// per-processor, per-thread state timelines plus event counters.
	RunMetrics = metrics.RunMetrics
	// BatchMetrics aggregates RunMetrics across a session's simulations
	// (Session.Metrics, filled when Session.CollectMetrics is set).
	BatchMetrics = metrics.BatchMetrics
	// StateCycles is the six-state cycle breakdown of one timeline.
	StateCycles = metrics.StateCycles
	// Machine is a pausable simulation handle: run it in cycle-budget
	// slices with RunUntil, Snapshot the paused state to versioned
	// bytes, and RestoreMachine it later (even in another process) —
	// a paused-and-resumed run is byte-identical to an uninterrupted
	// one, Result.Metrics included.
	Machine = machine.Machine
	// CheckpointConfig controls Session.RunCheckpointedContext:
	// checkpoint interval, an optional snapshot to resume from, and the
	// sink receiving each snapshot as it is taken.
	CheckpointConfig = core.CheckpointConfig
)

// MetricsSchemaVersion identifies the stable JSON layout of RunMetrics
// and BatchMetrics, as emitted by the -metrics flags.
const MetricsSchemaVersion = metrics.SchemaVersion

// SnapshotVersion identifies the machine snapshot encoding produced by
// Machine.Snapshot and accepted by RestoreMachine.
const SnapshotVersion = machine.SnapshotVersion

// NewMachine builds a pausable machine for program p under cfg with
// optional shared-memory init, positioned at cycle 0.
func NewMachine(cfg Config, p *Program, init func(*Shared)) (*Machine, error) {
	return machine.NewMachine(cfg, p, init)
}

// RestoreMachine reconstructs a machine from Machine.Snapshot bytes.
// The caller supplies the same program the snapshot was taken from
// (snapshots carry a program fingerprint, not the code); a mismatch is
// an error, as is any corruption or version skew.
func RestoreMachine(data []byte, p *Program) (*Machine, error) {
	return machine.RestoreMachine(data, p)
}

// WriteMetricsJSON marshals a *RunMetrics or *BatchMetrics in the
// stable indented-JSON form of the -metrics flags and golden files.
func WriteMetricsJSON(w io.Writer, v any) error { return metrics.WriteJSON(w, v) }

// WriteMetricsFile writes a session's aggregate metrics as JSON to a
// file path ("-" for stdout).
func WriteMetricsFile(path string, bm *BatchMetrics) error { return exp.WriteMetricsFile(path, bm) }

// WriteMetricsSummary renders an aggregate's state breakdown and engine
// counters in the experiment report's ASCII style.
func WriteMetricsSummary(w io.Writer, bm *BatchMetrics) { exp.WriteMetricsSummary(w, bm) }

// Degraded round-trip distributions for FaultConfig.Dist.
const (
	DistConstant = net.DistConstant
	DistUniform  = net.DistUniform
	DistHotSpot  = net.DistHotSpot
)

// Interconnect topologies for TopologyConfig.Kind.
const (
	TopoConstant  = net.TopoConstant
	TopoMesh      = net.TopoMesh
	TopoFatTree   = net.TopoFatTree
	TopoDragonfly = net.TopoDragonfly
)

// TopologyNames lists the interconnect topology names.
func TopologyNames() []string { return net.TopologyNames() }

// ParseTopology resolves a topology name like "mesh".
func ParseTopology(s string) (TopologyKind, error) { return net.ParseTopology(s) }

// Sentinel errors of the simulator's watchdog.
var (
	// ErrMaxCycles marks a run that exceeded Config.MaxCycles — almost
	// always a livelocked spin loop.
	ErrMaxCycles = machine.ErrMaxCycles
	// ErrFaultStall marks a MaxCycles overrun during active fault
	// recovery (wraps ErrMaxCycles).
	ErrFaultStall = machine.ErrFaultStall
)

// Context-switch models (the paper's Figure 1 taxonomy).
const (
	Ideal             = machine.Ideal
	SwitchEveryCycle  = machine.SwitchEveryCycle
	SwitchOnLoad      = machine.SwitchOnLoad
	SwitchOnUse       = machine.SwitchOnUse
	ExplicitSwitch    = machine.ExplicitSwitch
	SwitchOnMiss      = machine.SwitchOnMiss
	SwitchOnUseMiss   = machine.SwitchOnUseMiss
	ConditionalSwitch = machine.ConditionalSwitch
)

// Problem scales.
const (
	Quick  = app.Quick
	Medium = app.Medium
	Full   = app.Full
)

// Dispatch modes (Config.DispatchMode).
const (
	DispatchAuto        = machine.DispatchAuto
	DispatchCompiled    = machine.DispatchCompiled
	DispatchInterpreted = machine.DispatchInterpreted
)

// ParseDispatchMode resolves a dispatch-mode name like "interpreted".
func ParseDispatchMode(s string) (DispatchMode, error) { return machine.ParseDispatchMode(s) }

// DefaultLatency is the paper's 200-cycle round trip.
const DefaultLatency = machine.DefaultLatency

// EffTargets are the efficiency levels the paper's tables report
// multithreading requirements for.
var EffTargets = core.EffTargets

// ParseModel resolves a model name like "explicit-switch".
func ParseModel(s string) (Model, error) { return machine.ParseModel(s) }

// ModelNames lists the models in taxonomy order.
func ModelNames() []string { return machine.ModelNames() }

// ParseScale resolves "quick", "medium" or "full".
func ParseScale(s string) (Scale, error) { return app.ParseScale(s) }

// AppNames lists the benchmark applications in Table 1 order.
func AppNames() []string { return apps.Names() }

// IrregularAppNames lists the irregular-workload kernels added for the
// topology experiments.
func IrregularAppNames() []string { return apps.IrregularNames() }

// AllAppNames lists every buildable application: the Table 1 set plus
// the irregular kernels.
func AllAppNames() []string { return apps.AllNames() }

// NewApp builds one benchmark application at a scale.
func NewApp(name string, s Scale) (*App, error) { return apps.New(name, s) }

// MustNewApp is NewApp that panics on an unknown name.
func MustNewApp(name string, s Scale) *App { return apps.MustNew(name, s) }

// AllApps builds the full benchmark set.
func AllApps(s Scale) []*App { return apps.All(s) }

// RunContext simulates program p under cfg with optional shared-memory
// init. A canceled or expired ctx aborts the run cooperatively (the
// event loop polls its context, amortized over the simulation's hot
// path) with an error wrapping ctx.Err(); a run that completes is
// byte-identical to one under context.Background().
func RunContext(ctx context.Context, cfg Config, p *Program, init func(*Shared)) (*Result, error) {
	return machine.RunContext(ctx, cfg, p, init)
}

// RunCheckedContext is RunContext plus a result verification callback.
func RunCheckedContext(ctx context.Context, cfg Config, p *Program, init func(*Shared), check func(*Shared) error) (*Result, error) {
	return machine.RunCheckedContext(ctx, cfg, p, init, check)
}

// NewProgram returns a builder for a custom program.
func NewProgram(name string) *Builder { return prog.NewBuilder(name) }

// Optimize applies the paper's shared-load grouping transformation.
func Optimize(p *Program) (*Program, *OptStats, error) { return opt.Optimize(p) }

// CompileMTC compiles MTC kernel-language source (see internal/mtc) into
// a program, completing the paper's compiler pipeline: naive code
// generation followed by Optimize's grouping pass.
func CompileMTC(name, src string) (*Program, error) { return mtc.Compile(name, src) }

// NewSession returns a measurement session (cached baselines/results).
func NewSession() *Session { return core.NewSession() }

// Experiments returns the paper's tables and figures in order.
func Experiments() []*Experiment { return exp.All() }

// AblationExperiments returns the extension experiments: parameter sweeps
// beyond the paper plus its §6.2 priority-scheduling suggestion.
func AblationExperiments() []*Experiment { return exp.Ablations() }

// WriteExperimentReport regenerates every experiment and writes the
// EXPERIMENTS.md-style paper-vs-measured markdown report.
func WriteExperimentReport(o *ExpOptions, w io.Writer) error { return exp.WriteReport(o, w) }

// ExperimentByID resolves e.g. "table5" or "figure2".
func ExperimentByID(id string) (*Experiment, error) { return exp.ByID(id) }

// NewExp returns experiment options writing to out, configured by
// functional options:
//
//	o := mtsim.NewExp(os.Stdout,
//	    mtsim.WithScale(mtsim.Medium),
//	    mtsim.WithJobs(4),
//	    mtsim.WithContext(ctx))
//
// Defaults: Quick scale, the paper's 200-cycle latency, GOMAXPROCS
// worker goroutines. Output is byte-identical at any worker width.
func NewExp(out io.Writer, opts ...ExpOption) *ExpOptions { return exp.New(out, opts...) }

// Functional options for NewExp.
var (
	// WithScale selects the problem scale (and its default search depth).
	WithScale = exp.WithScale
	// WithLatency overrides the simulated round-trip latency.
	WithLatency = exp.WithLatency
	// WithMaxMT overrides the multithreading-search depth.
	WithMaxMT = exp.WithMaxMT
	// WithJobs sets the rendering/simulation worker width (1 = serial).
	WithJobs = exp.WithJobs
	// WithMetrics toggles cycle-accounting collection on the session.
	WithMetrics = exp.WithMetrics
	// WithContext threads a context through every simulation the
	// experiments run: cancellation aborts rendering cooperatively.
	WithContext = exp.WithContext
	// WithKernels selects the irregular kernels the topology ablation
	// sweeps.
	WithKernels = exp.WithKernels
	// WithTopologies selects the interconnect topologies the topology
	// ablation sweeps.
	WithTopologies = exp.WithTopologies
	// WithFaults enables fault injection at a drop/delay rate with
	// deterministic seed and latency jitter.
	WithFaults = exp.WithFaults
)

// RenderExperiments runs the experiments — concurrently up to
// o.Jobs workers — each into its own buffer, returning outputs and wall
// times in input order, byte-identical to a sequential run.
func RenderExperiments(o *ExpOptions, exps []*Experiment) ([]string, []time.Duration, error) {
	return exp.Rendered(o, exps)
}

// Synchronization macros (Fetch-and-Add based, as in the paper's §3; the
// spin probes they emit are excluded from bandwidth statistics).

// AllocLock reserves a ticket lock in shared memory.
func AllocLock(b *Builder, name string) Sym { return par.AllocLock(b, name) }

// LockAcquire emits a ticket-lock acquire on rBase+off, clobbering s1/s2.
func LockAcquire(b *Builder, rBase uint8, off int64, s1, s2 uint8) {
	par.LockAcquire(b, rBase, off, s1, s2)
}

// LockRelease emits a ticket-lock release, clobbering s1/s2.
func LockRelease(b *Builder, rBase uint8, off int64, s1, s2 uint8) {
	par.LockRelease(b, rBase, off, s1, s2)
}

// AllocBarrier reserves a sense-reversing barrier in shared memory.
func AllocBarrier(b *Builder, name string) Sym { return par.AllocBarrier(b, name) }

// Barrier emits a barrier over all threads; rSense must be a register
// dedicated to the barrier's local sense (starting at 0); s1/s2 are
// clobbered.
func Barrier(b *Builder, rBase uint8, off int64, rSense, s1, s2 uint8) {
	par.Barrier(b, rBase, off, rSense, s1, s2)
}

// SelfSchedule emits the Fetch-and-Add work-claiming idiom: rNext
// receives the first index of the next chunk.
func SelfSchedule(b *Builder, rBase uint8, off int64, chunk int64, rNext, s1 uint8) {
	par.SelfSchedule(b, rBase, off, chunk, rNext, s1)
}

// Thread-identity register conventions (initialized by the machine when
// a thread starts).
const (
	RegZero    = 0 // hard-wired zero
	RegTid     = 1 // global thread id
	RegThreads = 2 // total thread count
	RegProc    = 3 // processor id
)

// ---------------------------------------------------------------------
// Legacy facade
//
// The wrappers below predate the context-first API and are kept only so
// existing callers keep compiling. Each one is a pure inline of its
// replacement (the //go:fix annotations let `go fix`-style tooling
// rewrite call sites mechanically); none will grow new capabilities.
// Migrate as follows:
//
//	Run(cfg, p, init)              → RunContext(context.Background(), cfg, p, init)
//	RunChecked(cfg, p, init, ck)   → RunCheckedContext(context.Background(), cfg, p, init, ck)
//	NewExpOptions(scale, out)      → NewExp(out, WithScale(scale))
//
// Passing a real context (not context.Background()) is the point of the
// migration: it makes runs cancelable and deadline-bounded, which the
// legacy forms cannot express.

// Run simulates program p under cfg with optional shared-memory init.
//
// Deprecated: Run is RunContext under context.Background(); new code
// should pass a context so runs can be canceled or deadline-bounded.
//
//go:fix inline
func Run(cfg Config, p *Program, init func(*Shared)) (*Result, error) {
	return RunContext(context.Background(), cfg, p, init)
}

// RunChecked is Run plus a result verification callback.
//
// Deprecated: use RunCheckedContext, for the same reason as Run.
//
//go:fix inline
func RunChecked(cfg Config, p *Program, init func(*Shared), check func(*Shared) error) (*Result, error) {
	return RunCheckedContext(context.Background(), cfg, p, init, check)
}

// NewExpOptions returns experiment options writing to out.
//
// Deprecated: use NewExp with functional options; this constructor
// cannot express a context, metrics collection, or fault injection.
//
//go:fix inline
func NewExpOptions(scale Scale, out io.Writer) *ExpOptions { return NewExp(out, WithScale(scale)) }
