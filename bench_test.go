// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (run them all with `go test -bench=. -benchmem`).
// Each benchmark regenerates its artifact at the quick problem scale with
// full result verification; the experiments binary produces the same
// artifacts at medium/full scale.
//
// Additional micro-benchmarks measure the simulator itself: instruction
// throughput, optimizer speed, and the coherent-cache fast paths.
package mtsim_test

import (
	"io"
	"testing"

	"mtsim"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	benchExperimentJobs(b, id, 0) // 0 = GOMAXPROCS workers
}

func benchExperimentJobs(b *testing.B, id string, jobs int) {
	b.Helper()
	e, err := mtsim.ExperimentByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		// A fresh session each iteration so runs are not memoized away.
		o := mtsim.NewExpOptions(mtsim.Quick, io.Discard)
		if jobs > 0 {
			o.SetJobs(jobs)
		}
		if err := e.Run(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1_Taxonomy(b *testing.B)               { benchExperiment(b, "figure1") }
func BenchmarkTable1_Applications(b *testing.B)            { benchExperiment(b, "table1") }
func BenchmarkFigure2_IdealEfficiency(b *testing.B)        { benchExperiment(b, "figure2") }
func BenchmarkTable2_RunLengthsOnLoad(b *testing.B)        { benchExperiment(b, "table2") }
func BenchmarkFigure3_SieveMultithreading(b *testing.B)    { benchExperiment(b, "figure3") }
func BenchmarkTable3_SwitchOnLoadLevels(b *testing.B)      { benchExperiment(b, "table3") }
func BenchmarkFigure4_GroupingTransform(b *testing.B)      { benchExperiment(b, "figure4") }
func BenchmarkTable4_RunLengthsGrouped(b *testing.B)       { benchExperiment(b, "table4") }
func BenchmarkTable5_ExplicitSwitchLevels(b *testing.B)    { benchExperiment(b, "table5") }
func BenchmarkTable6_InterBlockWindow(b *testing.B)        { benchExperiment(b, "table6") }
func BenchmarkTable7_CacheBandwidth(b *testing.B)          { benchExperiment(b, "table7") }
func BenchmarkTable8_ConditionalSwitchLevels(b *testing.B) { benchExperiment(b, "table8") }

// Sequential (-j 1) counterparts of two experiment benchmarks: comparing
// them against the default (GOMAXPROCS-worker) variants above measures
// the parallel engine's speedup on multi-core hosts. On a single-core
// host the pairs time identically.

func BenchmarkTable5_Sequential(b *testing.B)  { benchExperimentJobs(b, "table5", 1) }
func BenchmarkFigure2_Sequential(b *testing.B) { benchExperimentJobs(b, "figure2", 1) }

// Ablation/extension experiments (see DESIGN.md §4 extensions).

func BenchmarkAblationLatencySweep(b *testing.B)  { benchExperiment(b, "ablation-latency") }
func BenchmarkAblationLineSize(b *testing.B)      { benchExperiment(b, "ablation-linesize") }
func BenchmarkAblationSwitchCost(b *testing.B)    { benchExperiment(b, "ablation-switchcost") }
func BenchmarkAblationCritPriority(b *testing.B)  { benchExperiment(b, "ablation-priority") }
func BenchmarkAblationLatencyJitter(b *testing.B) { benchExperiment(b, "ablation-jitter") }
func BenchmarkAblationNetwork(b *testing.B)       { benchExperiment(b, "ablation-network") }
func BenchmarkAblationMP3DSort(b *testing.B)      { benchExperiment(b, "ablation-mp3dsort") }

// BenchmarkSimulatorThroughput measures raw interpreter speed in
// simulated instructions per second on the sor kernel (reported as
// instrs/op via ReportMetric).
func BenchmarkSimulatorThroughput(b *testing.B) {
	a := mtsim.MustNewApp("sor", mtsim.Quick)
	cfg := mtsim.Config{Procs: 4, Threads: 4, Model: mtsim.SwitchOnLoad, Latency: 200}
	var instrs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := a.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		instrs = res.Instrs
	}
	b.ReportMetric(float64(instrs), "sim-instrs/op")
}

// BenchmarkMachineHotLoop measures the event-driven cycle loop itself at
// a high processor count — 64 processors x 4 threads of sieve under
// switch-on-load, result verification off — so event dispatch and thread
// scheduling dominate the profile rather than per-instruction work.
func BenchmarkMachineHotLoop(b *testing.B) {
	a := mtsim.MustNewApp("sieve", mtsim.Quick)
	cfg := mtsim.Config{Procs: 64, Threads: 4, Model: mtsim.SwitchOnLoad, Latency: 200}
	var instrs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mtsim.Run(cfg, a.Raw, a.Init)
		if err != nil {
			b.Fatal(err)
		}
		instrs = res.Instrs
	}
	b.ReportMetric(float64(instrs), "sim-instrs/op")
}

// BenchmarkSimulatorCached measures the conditional-switch model, whose
// per-access cache and directory work is the heaviest simulator path.
func BenchmarkSimulatorCached(b *testing.B) {
	a := mtsim.MustNewApp("mp3d", mtsim.Quick)
	cfg := mtsim.Config{Procs: 8, Threads: 4, Model: mtsim.ConditionalSwitch, Latency: 200}
	for i := 0; i < b.N; i++ {
		if _, err := a.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizer measures the grouping transformation on the largest
// benchmark program.
func BenchmarkOptimizer(b *testing.B) {
	a := mtsim.MustNewApp("water", mtsim.Quick)
	for i := 0; i < b.N; i++ {
		if _, _, err := mtsim.Optimize(a.Raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineRun measures a full verified single-processor run of
// each application (the unit of work behind every efficiency number).
func BenchmarkBaselineRun(b *testing.B) {
	for _, name := range mtsim.AppNames() {
		name := name
		b.Run(name, func(b *testing.B) {
			a := mtsim.MustNewApp(name, mtsim.Quick)
			cfg := mtsim.Config{Procs: 1, Threads: 1, Model: mtsim.Ideal}
			for i := 0; i < b.N; i++ {
				if _, err := a.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
