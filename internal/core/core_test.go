package core_test

import (
	"testing"

	"mtsim/internal/app"
	"mtsim/internal/apps"
	"mtsim/internal/core"
	"mtsim/internal/machine"
)

func TestBaselineCachedAndPositive(t *testing.T) {
	s := core.NewSession()
	a := apps.MustNew("sor", app.Quick)
	b1, err := s.Baseline(a)
	if err != nil {
		t.Fatal(err)
	}
	if b1 <= 0 {
		t.Fatalf("baseline = %d", b1)
	}
	b2, err := s.Baseline(a)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Errorf("baseline not stable: %d vs %d", b1, b2)
	}
}

func TestRunMemoization(t *testing.T) {
	s := core.NewSession()
	a := apps.MustNew("sieve", app.Quick)
	cfg := machine.Config{Procs: 2, Threads: 2, Model: machine.SwitchOnLoad}
	r1, err := s.Run(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("identical configs not memoized (distinct result pointers)")
	}
	// A different config must not collide.
	cfg2 := cfg
	cfg2.Threads = 3
	r3, err := s.Run(a, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Error("different configs collided in the memo")
	}
}

func TestEfficiencyBounds(t *testing.T) {
	s := core.NewSession()
	a := apps.MustNew("sieve", app.Quick)
	eff, err := s.Efficiency(a, machine.Config{Procs: 1, Threads: 1, Model: machine.Ideal})
	if err != nil {
		t.Fatal(err)
	}
	if eff != 1.0 {
		t.Errorf("ideal 1x1 efficiency = %v, want exactly 1", eff)
	}
	eff2, err := s.Efficiency(a, machine.Config{Procs: 4, Threads: 1, Model: machine.SwitchOnLoad, Latency: 200})
	if err != nil {
		t.Fatal(err)
	}
	if eff2 <= 0 || eff2 >= 1 {
		t.Errorf("latency-bound efficiency = %v, want in (0,1)", eff2)
	}
}

func TestMTSearchMonotoneTargets(t *testing.T) {
	s := core.NewSession()
	a := apps.MustNew("water", app.Quick)
	cfg := machine.Config{Procs: a.TableProcs, Model: machine.ExplicitSwitch, Latency: 200}
	levels, best, bestMT, err := s.MTSearch(a, cfg, core.EffTargets, 14)
	if err != nil {
		t.Fatal(err)
	}
	if best <= 0 || bestMT < 1 {
		t.Fatalf("best = %v @ %d", best, bestMT)
	}
	// Levels for increasing targets must be non-decreasing where found.
	prev := 0
	for i, l := range levels {
		if l == 0 {
			continue
		}
		if l < prev {
			t.Errorf("target %v needs %d threads but a higher target needed %d", core.EffTargets[i], l, prev)
		}
		prev = l
	}
	// water under explicit-switch should at least reach 60% (the paper
	// groups its 3-load position reads).
	if levels[1] == 0 {
		t.Errorf("water never reached 60%%: levels = %v", levels)
	}
}

func TestFormatLevels(t *testing.T) {
	got := core.FormatLevels([]int{0, 3, 12})
	want := []string{"-", "3", "12"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cell %d = %q, want %q", i, got[i], want[i])
		}
	}
}
