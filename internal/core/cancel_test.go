package core_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"mtsim/internal/app"
	"mtsim/internal/apps"
	"mtsim/internal/core"
	"mtsim/internal/machine"
)

// noLeakedGoroutines registers a cleanup that fails the test if the
// goroutine count has not returned to its starting level shortly after
// the test body — the manual stand-in for a leak detector dependency.
// Canceled batches must unwind their worker pools, not orphan them.
func noLeakedGoroutines(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if n := runtime.NumGoroutine(); n <= before {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// TestRunBatchContextPreCanceled: a dead context fails every job in its
// own slot — the error is a job-aligned *BatchError of ctx.Err()s, not
// a bare error that loses the shape of the batch.
func TestRunBatchContextPreCanceled(t *testing.T) {
	noLeakedGoroutines(t)
	s := core.NewSession()
	sieve := apps.MustNew("sieve", app.Quick)
	jobs := []core.Job{
		{App: sieve, Cfg: machine.Config{Procs: 2, Threads: 2, Model: machine.SwitchOnLoad}},
		{App: sieve, Cfg: machine.Config{Procs: 2, Threads: 4, Model: machine.SwitchOnLoad}},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := s.RunBatchContext(ctx, jobs)
	var be *core.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("err = %T %v, want *BatchError", err, err)
	}
	if len(be.Errs) != len(jobs) || be.Failed != len(jobs) {
		t.Fatalf("BatchError not job-aligned: %d errs, %d failed, want %d", len(be.Errs), be.Failed, len(jobs))
	}
	for i := range jobs {
		if !errors.Is(be.Errs[i], context.Canceled) {
			t.Errorf("job %d: err = %v, want context.Canceled", i, be.Errs[i])
		}
		if res[i] != nil {
			t.Errorf("job %d: canceled job returned a result", i)
		}
	}
	if s.SimCount() != 0 {
		t.Errorf("SimCount = %d after pre-canceled batch, want 0", s.SimCount())
	}
}

// TestRunBatchContextPartialOnCancel: a cancellation mid-batch keeps
// the completed jobs' results and fails only the interrupted ones, in
// their own slots. Job 0 is a memo hit (completed before the cancel);
// job 1 spins forever and is the one the cancel interrupts.
func TestRunBatchContextPartialOnCancel(t *testing.T) {
	noLeakedGoroutines(t)
	s := core.NewSession()
	s.Workers = 2
	sieve := apps.MustNew("sieve", app.Quick)
	fast := machine.Config{Procs: 2, Threads: 2, Model: machine.SwitchOnLoad}
	if _, err := s.Run(sieve, fast); err != nil { // pre-warm: job 0 will memo-hit
		t.Fatal(err)
	}
	jobs := []core.Job{
		{App: sieve, Cfg: fast},
		{App: spinApp(), Cfg: machine.Config{Procs: 1, Threads: 1, Model: machine.SwitchOnLoad}},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		// Cancel once the spinner is simulating (the warmed job is a
		// map hit that completes in microseconds alongside it).
		for s.SimCount() < 2 {
			time.Sleep(time.Millisecond)
		}
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	res, err := s.RunBatchContext(ctx, jobs)
	var be *core.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("err = %T %v, want *BatchError", err, err)
	}
	if res[0] == nil || be.Errs[0] != nil {
		t.Errorf("completed job lost its result: res=%v err=%v", res[0], be.Errs[0])
	}
	if res[1] != nil {
		t.Error("canceled spinner returned a result")
	}
	if !errors.Is(be.Errs[1], context.Canceled) {
		t.Errorf("spinner err = %v, want context.Canceled", be.Errs[1])
	}
}

// TestFollowerRetriesAfterLeaderCancel: when the first caller for a
// configuration (the singleflight leader) is canceled, a concurrent
// caller with a live context must not inherit that cancellation — it
// retries the key and gets a real result.
func TestFollowerRetriesAfterLeaderCancel(t *testing.T) {
	noLeakedGoroutines(t)
	s := core.NewSession()
	sieve := apps.MustNew("sieve", app.Quick)
	// Heavy enough that the leader is still mid-run when canceled.
	cfg := machine.Config{Procs: 2, Threads: 4, Model: machine.SwitchEveryCycle, Latency: 400}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	leaderErr := make(chan error, 1)
	go func() {
		_, err := s.RunContext(leaderCtx, sieve, cfg)
		leaderErr <- err
	}()
	for s.SimCount() < 1 { // leader is simulating
		time.Sleep(time.Millisecond)
	}

	followerRes := make(chan *machine.Result, 1)
	followerErrc := make(chan error, 1)
	go func() {
		r, err := s.RunContext(context.Background(), sieve, cfg)
		followerRes <- r
		followerErrc <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the follower park on the leader's slot
	cancelLeader()

	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		// The leader may legitimately have finished before the cancel
		// landed; then the follower memo-hits and there is nothing to
		// retry — the property under test did not occur, skip.
		if err == nil {
			t.Skip("leader finished before cancellation; retry path not exercised")
		}
		t.Fatalf("leader err = %v, want context.Canceled", err)
	}
	if r, err := <-followerRes, <-followerErrc; err != nil || r == nil {
		t.Fatalf("follower inherited the leader's cancellation: res=%v err=%v", r, err)
	}
	if s.SimCount() != 2 {
		t.Errorf("SimCount = %d, want 2 (canceled leader + follower retry)", s.SimCount())
	}
}

// TestMTSearchContextCanceled: cancellation stops the search between
// waves with an error wrapping ctx.Err(); the levels slice keeps its
// target-aligned shape.
func TestMTSearchContextCanceled(t *testing.T) {
	noLeakedGoroutines(t)
	s := core.NewSession()
	sieve := apps.MustNew("sieve", app.Quick)
	if _, err := s.Baseline(sieve); err != nil { // warm so the sweep itself is what cancels
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	levels, _, _, err := s.MTSearchContext(ctx, sieve,
		machine.Config{Procs: 2, Model: machine.SwitchOnLoad}, core.EffTargets, 8)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(levels) != len(core.EffTargets) {
		t.Errorf("levels len = %d, want %d", len(levels), len(core.EffTargets))
	}
	for i, l := range levels {
		if l != 0 {
			t.Errorf("levels[%d] = %d before any probe ran, want 0", i, l)
		}
	}
}
