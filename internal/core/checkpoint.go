package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"mtsim/internal/app"
	"mtsim/internal/machine"
)

// CheckpointConfig controls a resumable run (RunCheckpointedContext).
type CheckpointConfig struct {
	// Interval is the cycle budget between checkpoints; must be > 0.
	Interval int64
	// Resume, when non-nil, is a machine snapshot to resume from instead
	// of starting at cycle 0. It must have been taken from the same
	// application, program variant and configuration.
	Resume []byte
	// OnCheckpoint, when non-nil, receives every snapshot as it is
	// taken, with the cycle the machine is paused at. Returning an error
	// aborts the run with that error (the snapshot already delivered
	// remains valid for a later resume).
	OnCheckpoint func(cycle int64, snapshot []byte) error
}

// RunCheckpointedContext is RunContext for resumable jobs: the
// simulation pauses every Interval cycles, takes a deterministic
// snapshot, hands it to OnCheckpoint, and continues. Because a
// paused-and-resumed machine is byte-identical to an uninterrupted one,
// the returned Result — and the session's memo — are exactly those of a
// plain RunContext with the same arguments, whether the run started
// fresh, resumed from a snapshot, or was served straight from the memo
// (a memo hit wins over Resume: the cached result IS the resumed run's
// result).
//
// Unlike RunContext, concurrent checkpointed runs of the same key do
// not singleflight-merge — each caller owns its own machine so its
// checkpoint stream is self-consistent — but both still land on (and
// later read) the same memo entry.
func (s *Session) RunCheckpointedContext(ctx context.Context, a *app.App, cfg machine.Config, ck CheckpointConfig) (res *machine.Result, err error) {
	if ck.Interval <= 0 {
		return nil, fmt.Errorf("core: checkpoint interval %d must be positive", ck.Interval)
	}
	k := runKey{a.Name, cfg}
	s.mu.Lock()
	if r, ok := s.results[k]; ok {
		s.mu.Unlock()
		s.memoHits.Add(1)
		return r, nil
	}
	s.mu.Unlock()

	defer func() {
		if v := recover(); v != nil {
			res, err = nil, &PanicError{App: a.Name, Cfg: cfg, Value: v, Stack: debug.Stack()}
		}
	}()
	if s.CollectMetrics {
		// As in simulate: the memo key above used the caller's value, so
		// collection never forks the memo space.
		cfg.CollectMetrics = true
	}
	p, err := a.ProgramFor(cfg.Model)
	if err != nil {
		return nil, err
	}

	var mc *machine.Machine
	if ck.Resume != nil {
		mc, err = machine.RestoreMachine(ck.Resume, p)
		if err != nil {
			return nil, fmt.Errorf("core: %s: resume: %w", a.Name, err)
		}
		if mc.Config() != cfg.Effective() {
			return nil, fmt.Errorf("core: %s: resume snapshot was taken under a different configuration", a.Name)
		}
	} else {
		mc, err = machine.NewMachine(cfg, p, a.Init)
		if err != nil {
			return nil, err
		}
	}

	s.sims.Add(1)
	for {
		done, err := mc.RunUntil(ctx, mc.Cycle()+ck.Interval)
		if err != nil {
			if isCancellation(err) {
				return nil, err
			}
			if errors.Is(err, machine.ErrMaxCycles) {
				return nil, fmt.Errorf("core: %s [model=%s procs=%d threads=%d latency=%d]: %w",
					a.Name, cfg.Model, cfg.Procs, cfg.Threads, cfg.Latency, err)
			}
			return nil, fmt.Errorf("core: %s: %w", a.Name, err)
		}
		if done {
			break
		}
		if ck.OnCheckpoint != nil {
			snap, err := mc.Snapshot()
			if err != nil {
				return nil, fmt.Errorf("core: %s: %w", a.Name, err)
			}
			if err := ck.OnCheckpoint(mc.Cycle(), snap); err != nil {
				return nil, fmt.Errorf("core: %s: checkpoint sink: %w", a.Name, err)
			}
		}
	}
	r := mc.Result()
	if s.Verify && a.Check != nil {
		if err := a.Check(mc.SharedMem()); err != nil {
			return nil, fmt.Errorf("core: %s under %s produced wrong result: %w", a.Name, cfg.Model, err)
		}
	}
	if r.Metrics != nil {
		s.mu.Lock()
		s.batch.Add(r.Metrics)
		s.mu.Unlock()
	}
	s.mu.Lock()
	if prev, ok := s.results[k]; ok {
		// A concurrent plain Run (or another checkpointed run) got there
		// first; both computed the same bytes, keep one pointer.
		r = prev
	} else {
		s.results[k] = r
	}
	s.mu.Unlock()
	return r, nil
}
