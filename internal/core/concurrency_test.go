package core_test

import (
	"math"
	"sync"
	"testing"

	"mtsim/internal/app"
	"mtsim/internal/apps"
	"mtsim/internal/core"
	"mtsim/internal/machine"
)

// TestRunConcurrentSameConfig hammers one configuration from many
// goroutines: exactly one simulation must execute and every caller must
// receive the identical *Result.
func TestRunConcurrentSameConfig(t *testing.T) {
	s := core.NewSession()
	a := apps.MustNew("sieve", app.Quick)
	cfg := machine.Config{Procs: 2, Threads: 2, Model: machine.SwitchOnLoad, Latency: 200}

	const n = 16
	results := make([]*machine.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], errs[i] = s.Run(a, cfg)
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Errorf("goroutine %d got a different *Result than goroutine 0", i)
		}
	}
	if got := s.SimCount(); got != 1 {
		t.Errorf("simulations executed = %d, want 1 (singleflight)", got)
	}
}

// TestRunConcurrentDistinctConfigs hammers distinct configurations
// concurrently: one simulation per key, distinct results per key, and a
// second round must add no simulations.
func TestRunConcurrentDistinctConfigs(t *testing.T) {
	s := core.NewSession()
	a := apps.MustNew("sieve", app.Quick)

	const n = 6
	run := func() [n]*machine.Result {
		var results [n]*machine.Result
		var errs [n]error
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				cfg := machine.Config{Procs: 2, Threads: i + 1, Model: machine.SwitchOnLoad, Latency: 200}
				results[i], errs[i] = s.Run(a, cfg)
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("config %d: %v", i, err)
			}
		}
		return results
	}

	first := run()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if first[i] == first[j] {
				t.Errorf("configs %d and %d collided on one *Result", i, j)
			}
		}
	}
	if got := s.SimCount(); got != n {
		t.Errorf("simulations executed = %d, want %d", got, n)
	}
	second := run()
	if got := s.SimCount(); got != n {
		t.Errorf("simulations after re-run = %d, want still %d (memo)", got, n)
	}
	for i := 0; i < n; i++ {
		if second[i] != first[i] {
			t.Errorf("config %d: re-run returned a different *Result", i)
		}
	}
}

// TestRunBatchMatchesRun checks that RunBatch returns, in order, the
// exact memoized results sequential Run calls produce.
func TestRunBatchMatchesRun(t *testing.T) {
	a := apps.MustNew("sor", app.Quick)
	var jobs []core.Job
	for th := 1; th <= 4; th++ {
		jobs = append(jobs, core.Job{App: a, Cfg: machine.Config{
			Procs: 2, Threads: th, Model: machine.ExplicitSwitch, Latency: 200,
		}})
	}

	par := core.NewSession()
	par.Workers = 8
	got, err := par.RunBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	seq := core.NewSession()
	seq.Workers = 1
	for i, j := range jobs {
		want, err := seq.Run(j.App, j.Cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got[i].Cycles != want.Cycles || got[i].Instrs != want.Instrs {
			t.Errorf("job %d: parallel (%d cyc, %d instr) != sequential (%d cyc, %d instr)",
				i, got[i].Cycles, got[i].Instrs, want.Cycles, want.Instrs)
		}
		// Within the parallel session the batch result must be the
		// memoized pointer.
		r, err := par.Run(j.App, j.Cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r != got[i] {
			t.Errorf("job %d: batch result not the session's memoized result", i)
		}
	}
	if par.SimCount() != int64(len(jobs)) {
		t.Errorf("parallel session ran %d simulations, want %d", par.SimCount(), len(jobs))
	}
}

// TestMTSearchParallelMatchesSequential runs the wave search at widths 1
// and 8: levels, best efficiency and best level must match exactly.
func TestMTSearchParallelMatchesSequential(t *testing.T) {
	a := apps.MustNew("sieve", app.Quick)
	cfg := machine.Config{Procs: 4, Model: machine.SwitchOnLoad, Latency: 200}

	seq := core.NewSession()
	seq.Workers = 1
	wantLevels, wantBest, wantMT, err := seq.MTSearch(a, cfg, core.EffTargets, 12)
	if err != nil {
		t.Fatal(err)
	}
	par := core.NewSession()
	par.Workers = 8
	gotLevels, gotBest, gotMT, err := par.MTSearch(a, cfg, core.EffTargets, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantLevels {
		if gotLevels[i] != wantLevels[i] {
			t.Errorf("target %v: level %d (parallel) != %d (sequential)",
				core.EffTargets[i], gotLevels[i], wantLevels[i])
		}
	}
	if math.Abs(gotBest-wantBest) != 0 || gotMT != wantMT {
		t.Errorf("best = %v@%d (parallel), want %v@%d", gotBest, gotMT, wantBest, wantMT)
	}
}
