// Package core ties the system together for measurement: it owns the
// efficiency metric and the searches the paper's tables are built from.
//
// The paper's efficiency is speedup / processors, with speedup measured
// against an ideal single processor: a 1-processor, 1-thread, zero-latency
// run of the same program (§3.2, Figure 2). A Session caches that
// baseline per application and memoizes simulation runs, since several
// tables sweep overlapping configurations.
//
// A Session is safe for concurrent use. Run deduplicates in-flight work
// singleflight-style: the first caller for a configuration simulates,
// later callers for the same key block until it finishes and share the
// same *Result. RunBatch and MTSearch exploit that to sweep independent
// configurations on a worker pool sized by Workers (default GOMAXPROCS).
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"mtsim/internal/app"
	"mtsim/internal/machine"
	"mtsim/internal/metrics"
)

// PanicError is a worker panic recovered into a structured per-job
// error: a bug in an application kernel (or the simulator itself) fails
// that one job instead of crashing the whole sweep.
type PanicError struct {
	App   string
	Cfg   machine.Config
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("core: panic in %s [model=%s procs=%d threads=%d latency=%d]: %v",
		e.App, e.Cfg.Model, e.Cfg.Procs, e.Cfg.Threads, e.Cfg.Latency, e.Value)
}

// BatchError aggregates the per-job failures of a RunBatch. Errs is
// job-aligned (nil for jobs that succeeded); Unwrap exposes the non-nil
// entries so errors.Is/As traverse the whole set.
type BatchError struct {
	Errs   []error
	Failed int
}

func (e *BatchError) Error() string {
	for _, err := range e.Errs {
		if err != nil {
			return fmt.Sprintf("core: %d of %d jobs failed; first: %v", e.Failed, len(e.Errs), err)
		}
	}
	return "core: batch error with no failures"
}

// Unwrap returns the non-nil per-job errors.
func (e *BatchError) Unwrap() []error {
	out := make([]error, 0, e.Failed)
	for _, err := range e.Errs {
		if err != nil {
			out = append(out, err)
		}
	}
	return out
}

// EffTargets are the efficiency levels the paper's Tables 3, 5, 6 and 8
// report multithreading levels for.
var EffTargets = []float64{0.50, 0.60, 0.70, 0.80, 0.90}

// runKey identifies a run by application and full configuration.
// machine.Config is a flat value struct of scalars, so the key is
// comparable and costs nothing to build — unlike the formatted string it
// replaced, which allocated on every Run call in the sweep hot path. A
// new non-comparable Config field would fail to compile here rather than
// silently alias two configurations.
type runKey struct {
	appName string
	cfg     machine.Config
}

// inflight is a singleflight slot: the first Run for a key creates one,
// simulates, fills res/err and closes done; concurrent callers for the
// same key wait on done and share the outcome.
type inflight struct {
	done chan struct{}
	res  *machine.Result
	err  error
}

// Session runs applications and caches baselines and results.
type Session struct {
	mu       sync.Mutex
	baseline map[string]int64
	results  map[runKey]*machine.Result
	running  map[runKey]*inflight
	sims     atomic.Int64
	memoHits atomic.Int64
	batch    metrics.Batch // guarded by mu
	// Verify enables result checking on every run (the default); the
	// benchmark harness can disable it to time simulation alone.
	Verify bool
	// Workers bounds the worker pool used by RunBatch and MTSearch.
	// Zero or negative means GOMAXPROCS.
	Workers int
	// CollectMetrics turns on the cycle-accounting observability layer
	// for every simulation this session executes: each Result carries
	// its RunMetrics and Metrics() aggregates them. Set it before the
	// first Run, like Verify and Workers. The flag is applied inside
	// simulate, after the memo key is built, so a metrics-collecting
	// session memoizes exactly like a plain one.
	CollectMetrics bool
}

// NewSession returns an empty session with verification on.
func NewSession() *Session {
	return &Session{
		baseline: make(map[string]int64),
		results:  make(map[runKey]*machine.Result),
		running:  make(map[runKey]*inflight),
		Verify:   true,
	}
}

// workers resolves the effective pool size.
func (s *Session) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// SimCount reports how many simulations this session has actually
// executed (memo hits and singleflight followers excluded). Tests use it
// to assert deduplication.
func (s *Session) SimCount() int64 {
	return s.sims.Load()
}

// MemoHits reports how many successful Run calls were served without a
// fresh simulation: memo-map hits plus singleflight followers. Counting
// followers keeps the number a function of the job list alone — a
// duplicate configuration scores one hit whether the pool ran it
// sequentially (map hit) or concurrently (follower) — so engine metrics
// stay byte-identical across worker-pool widths.
func (s *Session) MemoHits() int64 {
	return s.memoHits.Load()
}

// Metrics snapshots the session's aggregated cycle accounting: the
// BatchMetrics over every simulation executed so far (empty unless
// CollectMetrics is set) with the engine's own counters attached.
func (s *Session) Metrics() *metrics.BatchMetrics {
	engine := metrics.EngineMetrics{Sims: s.sims.Load(), MemoHits: s.memoHits.Load()}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batch.Metrics(engine)
}

// Run simulates a under cfg, memoizing by configuration. Concurrent
// callers with the same configuration trigger a single simulation and
// receive the identical *Result. Errors are not memoized: a failed key
// is released so a later call retries, matching the sequential behavior.
//
// Run is RunContext with context.Background(); new callers should
// prefer the context form.
func (s *Session) Run(a *app.App, cfg machine.Config) (*machine.Result, error) {
	return s.RunContext(context.Background(), a, cfg)
}

// RunContext is Run under a context. A canceled or expired ctx aborts
// the caller's own simulation cooperatively (the memo stays clean:
// errors are never memoized) and unblocks a singleflight follower
// waiting on another caller's in-flight run. If the leader of a shared
// key is canceled, followers whose own context is still live retry the
// key rather than inheriting the leader's cancellation, so one aborted
// request cannot fail an unrelated one that raced onto the same
// configuration.
func (s *Session) RunContext(ctx context.Context, a *app.App, cfg machine.Config) (*machine.Result, error) {
	k := runKey{a.Name, cfg}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s.mu.Lock()
		if r, ok := s.results[k]; ok {
			s.mu.Unlock()
			s.memoHits.Add(1)
			return r, nil
		}
		if fl, ok := s.running[k]; ok {
			s.mu.Unlock()
			select {
			case <-fl.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if fl.err == nil {
				s.memoHits.Add(1)
				return fl.res, nil
			}
			if isCancellation(fl.err) {
				// The leader's request died, not the configuration:
				// retry under our own (still live) context.
				continue
			}
			return fl.res, fl.err
		}
		fl := &inflight{done: make(chan struct{})}
		s.running[k] = fl
		s.mu.Unlock()

		fl.res, fl.err = s.simulate(ctx, a, cfg)
		s.mu.Lock()
		if fl.err == nil {
			s.results[k] = fl.res
		}
		delete(s.running, k)
		s.mu.Unlock()
		close(fl.done)
		return fl.res, fl.err
	}
}

// isCancellation reports whether err stems from a canceled or expired
// context rather than from the simulated configuration itself.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// simulate performs one actual machine run. A panic anywhere below —
// application Init/Check, program generation, the simulator itself — is
// recovered into a *PanicError, so one broken kernel fails its own job
// instead of killing the sweep's worker pool.
func (s *Session) simulate(ctx context.Context, a *app.App, cfg machine.Config) (res *machine.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, &PanicError{App: a.Name, Cfg: cfg, Value: v, Stack: debug.Stack()}
		}
	}()
	if s.CollectMetrics {
		// cfg is this call's copy: the memo key was already built from
		// the caller's value, so collection never forks the memo space.
		cfg.CollectMetrics = true
	}
	p, err := a.ProgramFor(cfg.Model)
	if err != nil {
		return nil, err
	}
	check := a.Check
	if !s.Verify {
		check = nil
	}
	s.sims.Add(1)
	r, err := machine.RunCheckedContext(ctx, cfg, p, a.Init, check)
	if err != nil {
		if isCancellation(err) {
			return nil, err // already names program and cycle
		}
		if errors.Is(err, machine.ErrMaxCycles) {
			// Name the offending app and configuration: a livelock report
			// from deep inside a sweep is useless without them.
			return nil, fmt.Errorf("core: %s [model=%s procs=%d threads=%d latency=%d]: %w",
				a.Name, cfg.Model, cfg.Procs, cfg.Threads, cfg.Latency, err)
		}
		return nil, fmt.Errorf("core: %s: %w", a.Name, err)
	}
	if r.Metrics != nil {
		s.mu.Lock()
		s.batch.Add(r.Metrics)
		s.mu.Unlock()
	}
	return r, nil
}

// Job names one simulation for RunBatch.
type Job struct {
	App *app.App
	Cfg machine.Config
}

// RunBatch runs the jobs on a worker pool of at most Workers goroutines
// and returns results in job order. Every job runs to completion
// regardless of other jobs' failures: a livelocked or panicking
// configuration costs only its own slot. On any failure the returned
// error is a *BatchError whose Errs slice is job-aligned, so callers can
// pair each nil result with its cause; the partial results are always
// returned.
//
// RunBatch is RunBatchContext with context.Background(); new callers
// should prefer the context form.
func (s *Session) RunBatch(jobs []Job) ([]*machine.Result, error) {
	return s.RunBatchContext(context.Background(), jobs)
}

// RunBatchContext is RunBatch under a context. Once ctx is canceled the
// pool stops scheduling new jobs — each unstarted job fails with
// ctx.Err() in its own slot — and in-flight simulations abort
// cooperatively, so the call returns promptly with job-aligned partial
// results: every job that completed before the cancellation still
// reports its *Result, exactly as it would have in an uncanceled batch.
func (s *Session) RunBatchContext(ctx context.Context, jobs []Job) ([]*machine.Result, error) {
	res := make([]*machine.Result, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, s.workers())
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j Job) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				errs[i] = ctx.Err()
				return
			}
			defer func() { <-sem }()
			res[i], errs[i] = s.RunContext(ctx, j.App, j.Cfg)
		}(i, j)
	}
	wg.Wait()
	failed := 0
	for _, err := range errs {
		if err != nil {
			failed++
		}
	}
	if failed > 0 {
		return res, &BatchError{Errs: errs, Failed: failed}
	}
	return res, nil
}

// Baseline returns the ideal single-processor cycle count for a. It is
// BaselineContext with context.Background().
func (s *Session) Baseline(a *app.App) (int64, error) {
	return s.BaselineContext(context.Background(), a)
}

// BaselineContext is Baseline under a context.
func (s *Session) BaselineContext(ctx context.Context, a *app.App) (int64, error) {
	s.mu.Lock()
	if c, ok := s.baseline[a.Name]; ok {
		s.mu.Unlock()
		return c, nil
	}
	s.mu.Unlock()
	r, err := s.RunContext(ctx, a, machine.Config{Procs: 1, Threads: 1, Model: machine.Ideal})
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.baseline[a.Name] = r.Cycles
	s.mu.Unlock()
	return r.Cycles, nil
}

// Efficiency runs a under cfg and returns the paper's efficiency metric.
// It is EfficiencyContext with context.Background().
func (s *Session) Efficiency(a *app.App, cfg machine.Config) (float64, error) {
	return s.EfficiencyContext(context.Background(), a, cfg)
}

// EfficiencyContext is Efficiency under a context.
func (s *Session) EfficiencyContext(ctx context.Context, a *app.App, cfg machine.Config) (float64, error) {
	base, err := s.BaselineContext(ctx, a)
	if err != nil {
		return 0, err
	}
	r, err := s.RunContext(ctx, a, cfg)
	if err != nil {
		return 0, err
	}
	return r.Efficiency(base), nil
}

// MTSearch finds, for each target efficiency, the smallest multithreading
// level 1..maxMT that reaches it under the given base configuration
// (cfg.Threads is overridden). Unreached targets report 0. It also
// returns the best efficiency seen and the level that achieved it.
//
// Levels are probed speculatively in waves of Workers at a time, then
// consumed strictly in level order with the sequential early-exit rule,
// so the returned values are identical to a one-by-one scan — a wave
// merely warms the memo past the level the scan stops at.
//
// A failing level (livelock, panic) does not abort the search: the
// level is skipped, the remaining levels are still probed, and the
// failures come back joined in err alongside the partial results. Only
// a baseline failure — which makes every efficiency undefined — aborts.
//
// MTSearch is MTSearchContext with context.Background(); new callers
// should prefer the context form.
func (s *Session) MTSearch(a *app.App, cfg machine.Config, targets []float64, maxMT int) (levels []int, bestEff float64, bestMT int, err error) {
	return s.MTSearchContext(context.Background(), a, cfg, targets, maxMT)
}

// MTSearchContext is MTSearch under a context. Cancellation stops the
// search between waves (and aborts the wave's in-flight probes
// cooperatively): the levels found so far are returned alongside an
// error that wraps ctx.Err().
func (s *Session) MTSearchContext(ctx context.Context, a *app.App, cfg machine.Config, targets []float64, maxMT int) (levels []int, bestEff float64, bestMT int, err error) {
	// The baseline is shared by every probe; resolve it once up front so
	// wave members don't singleflight-pile on it.
	if _, err := s.BaselineContext(ctx, a); err != nil {
		return nil, 0, 0, err
	}
	levels = make([]int, len(targets))
	found := 0
	var sweepErrs []error
	wave := s.workers()
	for lo := 1; lo <= maxMT; lo += wave {
		if cerr := ctx.Err(); cerr != nil {
			sweepErrs = append(sweepErrs, fmt.Errorf("search stopped before threads=%d: %w", lo, cerr))
			break
		}
		hi := lo + wave - 1
		if hi > maxMT {
			hi = maxMT
		}
		effs := make([]float64, hi-lo+1)
		errs := make([]error, hi-lo+1)
		if wave > 1 {
			var wg sync.WaitGroup
			for mt := lo; mt <= hi; mt++ {
				wg.Add(1)
				go func(mt int) {
					defer wg.Done()
					c := cfg
					c.Threads = mt
					effs[mt-lo], errs[mt-lo] = s.EfficiencyContext(ctx, a, c)
				}(mt)
			}
			wg.Wait()
		} else {
			c := cfg
			c.Threads = lo
			effs[0], errs[0] = s.EfficiencyContext(ctx, a, c)
		}
		for mt := lo; mt <= hi; mt++ {
			if e := errs[mt-lo]; e != nil {
				sweepErrs = append(sweepErrs, fmt.Errorf("threads=%d: %w", mt, e))
				continue
			}
			eff := effs[mt-lo]
			if eff > bestEff {
				bestEff, bestMT = eff, mt
			}
			for i, tgt := range targets {
				if levels[i] == 0 && eff >= tgt {
					levels[i] = mt
					found++
				}
			}
			if found == len(targets) {
				return levels, bestEff, bestMT, errors.Join(sweepErrs...)
			}
		}
	}
	return levels, bestEff, bestMT, errors.Join(sweepErrs...)
}

// FormatLevels renders an MTSearch row: the level per target, or "-" for
// targets the application never reached (the paper leaves those blank:
// "most of the applications could not achieve all of these efficiency
// levels", §4.2).
func FormatLevels(levels []int) []string {
	out := make([]string, len(levels))
	for i, l := range levels {
		if l == 0 {
			out[i] = "-"
		} else {
			out[i] = fmt.Sprintf("%d", l)
		}
	}
	return out
}
