// Package core ties the system together for measurement: it owns the
// efficiency metric and the searches the paper's tables are built from.
//
// The paper's efficiency is speedup / processors, with speedup measured
// against an ideal single processor: a 1-processor, 1-thread, zero-latency
// run of the same program (§3.2, Figure 2). A Session caches that
// baseline per application and memoizes simulation runs, since several
// tables sweep overlapping configurations.
package core

import (
	"fmt"
	"sync"

	"mtsim/internal/app"
	"mtsim/internal/machine"
)

// EffTargets are the efficiency levels the paper's Tables 3, 5, 6 and 8
// report multithreading levels for.
var EffTargets = []float64{0.50, 0.60, 0.70, 0.80, 0.90}

// Session runs applications and caches baselines and results.
type Session struct {
	mu       sync.Mutex
	baseline map[string]int64
	results  map[string]*machine.Result
	// Verify enables result checking on every run (the default); the
	// benchmark harness can disable it to time simulation alone.
	Verify bool
}

// NewSession returns an empty session with verification on.
func NewSession() *Session {
	return &Session{
		baseline: make(map[string]int64),
		results:  make(map[string]*machine.Result),
		Verify:   true,
	}
}

// key identifies a run by application and full configuration. Config is
// a plain value struct, so its default formatting covers every field —
// a new knob can never silently alias two different configurations.
func key(a *app.App, cfg machine.Config) string {
	return fmt.Sprintf("%s/%+v", a.Name, cfg)
}

// Run simulates a under cfg, memoizing by configuration.
func (s *Session) Run(a *app.App, cfg machine.Config) (*machine.Result, error) {
	k := key(a, cfg)
	s.mu.Lock()
	if r, ok := s.results[k]; ok {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()

	p, err := a.ProgramFor(cfg.Model)
	if err != nil {
		return nil, err
	}
	check := a.Check
	if !s.Verify {
		check = nil
	}
	r, err := machine.RunChecked(cfg, p, a.Init, check)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", a.Name, err)
	}
	s.mu.Lock()
	s.results[k] = r
	s.mu.Unlock()
	return r, nil
}

// Baseline returns the ideal single-processor cycle count for a.
func (s *Session) Baseline(a *app.App) (int64, error) {
	s.mu.Lock()
	if c, ok := s.baseline[a.Name]; ok {
		s.mu.Unlock()
		return c, nil
	}
	s.mu.Unlock()
	r, err := s.Run(a, machine.Config{Procs: 1, Threads: 1, Model: machine.Ideal})
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.baseline[a.Name] = r.Cycles
	s.mu.Unlock()
	return r.Cycles, nil
}

// Efficiency runs a under cfg and returns the paper's efficiency metric.
func (s *Session) Efficiency(a *app.App, cfg machine.Config) (float64, error) {
	base, err := s.Baseline(a)
	if err != nil {
		return 0, err
	}
	r, err := s.Run(a, cfg)
	if err != nil {
		return 0, err
	}
	return r.Efficiency(base), nil
}

// MTSearch finds, for each target efficiency, the smallest multithreading
// level 1..maxMT that reaches it under the given base configuration
// (cfg.Threads is overridden). Unreached targets report 0. It also
// returns the best efficiency seen and the level that achieved it.
func (s *Session) MTSearch(a *app.App, cfg machine.Config, targets []float64, maxMT int) (levels []int, bestEff float64, bestMT int, err error) {
	levels = make([]int, len(targets))
	found := 0
	for mt := 1; mt <= maxMT; mt++ {
		cfg.Threads = mt
		eff, e := s.Efficiency(a, cfg)
		if e != nil {
			return nil, 0, 0, e
		}
		if eff > bestEff {
			bestEff, bestMT = eff, mt
		}
		for i, tgt := range targets {
			if levels[i] == 0 && eff >= tgt {
				levels[i] = mt
				found++
			}
		}
		if found == len(targets) {
			break
		}
	}
	return levels, bestEff, bestMT, nil
}

// FormatLevels renders an MTSearch row: the level per target, or "-" for
// targets the application never reached (the paper leaves those blank:
// "most of the applications could not achieve all of these efficiency
// levels", §4.2).
func FormatLevels(levels []int) []string {
	out := make([]string, len(levels))
	for i, l := range levels {
		if l == 0 {
			out[i] = "-"
		} else {
			out[i] = fmt.Sprintf("%d", l)
		}
	}
	return out
}
