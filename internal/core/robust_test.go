package core_test

import (
	"errors"
	"strings"
	"testing"

	"mtsim/internal/app"
	"mtsim/internal/apps"
	"mtsim/internal/core"
	"mtsim/internal/machine"
	"mtsim/internal/prog"
)

// spinApp builds a minimal application that livelocks: its kernel spins
// forever, so any run trips MaxCycles.
func spinApp() *app.App {
	b := prog.NewBuilder("spin")
	b.Shared("x", 1)
	b.Label("loop")
	b.J("loop")
	return &app.App{Name: "spin-forever", Raw: b.MustBuild()}
}

// panicApp builds an application whose host-side Init panics, standing
// in for a buggy kernel generator.
func panicApp() *app.App {
	b := prog.NewBuilder("boom")
	b.Shared("x", 1)
	b.Halt()
	return &app.App{
		Name: "boom",
		Raw:  b.MustBuild(),
		Init: func(*machine.Shared) { panic("init exploded") },
	}
}

// TestRunBatchPartialResults: one livelocked job must not cost the
// others — every healthy job still returns its result, and the error is
// a job-aligned *BatchError naming the culprit.
func TestRunBatchPartialResults(t *testing.T) {
	s := core.NewSession()
	sieve := apps.MustNew("sieve", app.Quick)
	good := machine.Config{Procs: 2, Threads: 2, Model: machine.SwitchOnLoad}
	bad := machine.Config{Procs: 1, Threads: 1, Model: machine.SwitchOnLoad, MaxCycles: 1000}
	jobs := []core.Job{
		{App: sieve, Cfg: good},
		{App: spinApp(), Cfg: bad},
		{App: sieve, Cfg: machine.Config{Procs: 2, Threads: 4, Model: machine.SwitchOnLoad}},
	}
	res, err := s.RunBatch(jobs)
	if err == nil {
		t.Fatal("livelocked job reported no error")
	}
	if res[0] == nil || res[2] == nil {
		t.Errorf("healthy jobs lost their results: %v, %v", res[0], res[2])
	}
	if res[1] != nil {
		t.Error("livelocked job returned a result")
	}
	var be *core.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("err is %T, want *BatchError", err)
	}
	if be.Failed != 1 || len(be.Errs) != len(jobs) || be.Errs[1] == nil {
		t.Errorf("BatchError not job-aligned: failed=%d errs=%v", be.Failed, be.Errs)
	}
	if !errors.Is(err, machine.ErrMaxCycles) {
		t.Errorf("BatchError does not unwrap to ErrMaxCycles: %v", err)
	}
	// Satellite: the livelock message names the offending app and config.
	msg := err.Error()
	for _, want := range []string{"spin-forever", "switch-on-load", "procs=1", "threads=1"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not name %q", msg, want)
		}
	}
}

// TestPanicIsolatedToJob: a panicking worker becomes a structured
// *PanicError for its own job; the session survives and keeps running.
func TestPanicIsolatedToJob(t *testing.T) {
	s := core.NewSession()
	cfg := machine.Config{Procs: 1, Threads: 1, Model: machine.SwitchOnLoad}
	_, err := s.Run(panicApp(), cfg)
	if err == nil {
		t.Fatal("panic not surfaced as an error")
	}
	var pe *core.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err is %T (%v), want *PanicError", err, err)
	}
	if pe.App != "boom" || pe.Value != "init exploded" || len(pe.Stack) == 0 {
		t.Errorf("PanicError incomplete: app=%q value=%v stack=%dB", pe.App, pe.Value, len(pe.Stack))
	}
	if !strings.Contains(pe.Error(), "boom") || !strings.Contains(pe.Error(), "init exploded") {
		t.Errorf("PanicError message uninformative: %q", pe.Error())
	}
	// The session is still usable after the recovered panic.
	if _, err := s.Run(apps.MustNew("sieve", app.Quick), cfg); err != nil {
		t.Errorf("session broken after recovered panic: %v", err)
	}
}

// TestRunBatchPanicAggregated: panics inside a batch surface through the
// BatchError like any other failure.
func TestRunBatchPanicAggregated(t *testing.T) {
	s := core.NewSession()
	cfg := machine.Config{Procs: 1, Threads: 1, Model: machine.SwitchOnLoad}
	res, err := s.RunBatch([]core.Job{
		{App: panicApp(), Cfg: cfg},
		{App: apps.MustNew("sieve", app.Quick), Cfg: cfg},
	})
	if err == nil || res[1] == nil {
		t.Fatalf("err=%v res[1]=%v, want error with surviving result", err, res[1])
	}
	var pe *core.PanicError
	if !errors.As(err, &pe) {
		t.Errorf("batch error does not expose the PanicError: %v", err)
	}
}

// TestMTSearchPartialOnFailure: a level that blows MaxCycles is
// skipped and labelled in the joined error, while the surviving levels
// still produce a best efficiency and target data.
func TestMTSearchPartialOnFailure(t *testing.T) {
	s := core.NewSession()
	sieve := apps.MustNew("sieve", app.Quick)
	probe := machine.Config{Procs: 2, Model: machine.SwitchOnLoad}

	// Pick a cycle cap between the threads=1 and threads=4 run lengths:
	// the slow single-thread level livelocks under it, the multithreaded
	// levels (shorter runs — that is the paper's whole point) pass.
	one := probe
	one.Threads = 1
	r1, err := s.Run(sieve, one)
	if err != nil {
		t.Fatal(err)
	}
	four := probe
	four.Threads = 4
	r4, err := s.Run(sieve, four)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Cycles+4 >= r1.Cycles {
		t.Skipf("threads=4 (%d cycles) not enough faster than threads=1 (%d)", r4.Cycles, r1.Cycles)
	}
	tight := probe
	tight.MaxCycles = (r1.Cycles + r4.Cycles) / 2

	levels, bestEff, bestMT, err := s.MTSearch(sieve, tight, []float64{0.01}, 4)
	if err == nil {
		t.Fatal("threads=1 level did not fail under the tight cycle cap")
	}
	if !errors.Is(err, machine.ErrMaxCycles) {
		t.Errorf("joined error lost the cause: %v", err)
	}
	if !strings.Contains(err.Error(), "threads=1") {
		t.Errorf("joined error does not label the failing level: %v", err)
	}
	// The surviving levels must still have been searched.
	if bestMT < 2 || bestEff <= 0 {
		t.Errorf("partial search lost its results: bestMT=%d bestEff=%v", bestMT, bestEff)
	}
	if levels[0] == 0 {
		t.Errorf("reachable target never satisfied by a surviving level: %v", levels)
	}
}
