package core_test

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"mtsim/internal/app"
	"mtsim/internal/apps"
	"mtsim/internal/core"
	"mtsim/internal/machine"
)

func resultJSON(t *testing.T, r *machine.Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestRunCheckpointedMatchesPlainRun(t *testing.T) {
	a := apps.MustNew("sor", app.Quick)
	cfg := machine.Config{Procs: 4, Threads: 2, Model: machine.ExplicitSwitch}

	plain := core.NewSession()
	plain.CollectMetrics = true
	want, err := plain.Run(a, cfg)
	if err != nil {
		t.Fatal(err)
	}

	s := core.NewSession()
	s.CollectMetrics = true
	ckpts := 0
	got, err := s.RunCheckpointedContext(context.Background(), a, cfg, core.CheckpointConfig{
		Interval: 50_000,
		OnCheckpoint: func(cycle int64, snap []byte) error {
			if len(snap) == 0 {
				t.Errorf("empty snapshot at cycle %d", cycle)
			}
			ckpts++
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ckpts == 0 {
		t.Error("no checkpoints taken (interval too large for the run?)")
	}
	if resultJSON(t, want) != resultJSON(t, got) {
		t.Error("checkpointed result differs from plain run")
	}

	// The checkpointed run landed on the memo: a plain Run is now a hit.
	again, err := s.Run(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again != got {
		t.Error("memo entry not shared with plain Run")
	}
	if s.SimCount() != 1 || s.MemoHits() != 1 {
		t.Errorf("SimCount=%d MemoHits=%d, want 1 and 1", s.SimCount(), s.MemoHits())
	}

	// And a memo hit wins over Resume, serving the identical pointer.
	hit, err := s.RunCheckpointedContext(context.Background(), a, cfg, core.CheckpointConfig{Interval: 50_000, Resume: []byte("ignored")})
	if err != nil {
		t.Fatal(err)
	}
	if hit != got {
		t.Error("memo hit did not short-circuit a resumed run")
	}
}

func TestRunCheckpointedResumeByteIdentity(t *testing.T) {
	a := apps.MustNew("sieve", app.Quick)
	cfg := machine.Config{Procs: 4, Threads: 2, Model: machine.SwitchOnUse}

	// First session: collect every snapshot of an uninterrupted
	// checkpointed run.
	s1 := core.NewSession()
	s1.CollectMetrics = true
	var snaps [][]byte
	want, err := s1.RunCheckpointedContext(context.Background(), a, cfg, core.CheckpointConfig{
		Interval: 200_000,
		OnCheckpoint: func(cycle int64, snap []byte) error {
			snaps = append(snaps, snap)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 2 {
		t.Fatalf("need at least 2 checkpoints to test resume, got %d", len(snaps))
	}

	// Second session (a "restarted process"): resume from a middle
	// snapshot and finish. The result must be byte-identical.
	s2 := core.NewSession()
	s2.CollectMetrics = true
	got, err := s2.RunCheckpointedContext(context.Background(), a, cfg, core.CheckpointConfig{
		Interval: 200_000,
		Resume:   snaps[len(snaps)/2],
	})
	if err != nil {
		t.Fatal(err)
	}
	if resultJSON(t, want) != resultJSON(t, got) {
		t.Error("resumed run differs from uninterrupted run")
	}
}

func TestRunCheckpointedRejections(t *testing.T) {
	a := apps.MustNew("sieve", app.Quick)
	cfg := machine.Config{Procs: 2, Threads: 2, Model: machine.SwitchOnUse}
	s := core.NewSession()

	if _, err := s.RunCheckpointedContext(context.Background(), a, cfg, core.CheckpointConfig{}); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := s.RunCheckpointedContext(context.Background(), a, cfg, core.CheckpointConfig{Interval: 200_000, Resume: []byte("junk")}); err == nil {
		t.Error("garbage resume snapshot accepted")
	}

	// A snapshot from a different configuration must be rejected, not
	// silently memoized under the wrong key.
	var snap []byte
	other := cfg
	other.Threads = 3
	_, err := s.RunCheckpointedContext(context.Background(), a, other, core.CheckpointConfig{
		Interval: 200_000,
		OnCheckpoint: func(_ int64, b []byte) error {
			if snap == nil {
				snap = b
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no checkpoint captured")
	}
	if _, err := s.RunCheckpointedContext(context.Background(), a, cfg, core.CheckpointConfig{Interval: 200_000, Resume: snap}); err == nil {
		t.Error("snapshot from a different configuration accepted")
	}

	// An OnCheckpoint error aborts the run with that error.
	sinkErr := errors.New("disk full")
	s2 := core.NewSession()
	if _, err := s2.RunCheckpointedContext(context.Background(), a, cfg, core.CheckpointConfig{
		Interval:     200_000,
		OnCheckpoint: func(int64, []byte) error { return sinkErr },
	}); !errors.Is(err, sinkErr) {
		t.Errorf("sink error not propagated: %v", err)
	}
}
