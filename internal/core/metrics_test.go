package core_test

import (
	"bytes"
	"strings"
	"testing"

	"mtsim/internal/app"
	"mtsim/internal/apps"
	"mtsim/internal/core"
	"mtsim/internal/machine"
	"mtsim/internal/metrics"
)

func metricsModels() []machine.Model {
	return []machine.Model{
		machine.Ideal, machine.SwitchEveryCycle, machine.SwitchOnLoad,
		machine.SwitchOnUse, machine.ExplicitSwitch, machine.SwitchOnMiss,
		machine.SwitchOnUseMiss, machine.ConditionalSwitch,
	}
}

// TestMetricsExactOnEveryApp sweeps the Figure 1 model taxonomy over
// every application kernel and asserts the accounting layer's exactness
// guarantee on each: per-state cycles sum to Procs x Cycles.
func TestMetricsExactOnEveryApp(t *testing.T) {
	s := core.NewSession()
	s.CollectMetrics = true
	var jobs []core.Job
	for _, a := range apps.All(app.Quick) {
		for _, m := range metricsModels() {
			jobs = append(jobs, core.Job{App: a, Cfg: machine.Config{
				Procs: 2, Threads: 2, Model: m, Latency: 16}})
		}
	}
	results, err := s.RunBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		j := jobs[i]
		rm := r.Metrics
		if rm == nil {
			t.Fatalf("%s/%s: no metrics collected", j.App.Name, j.Cfg.Model)
		}
		if want := r.Cycles * int64(j.Cfg.Procs); rm.States.Total() != want {
			t.Errorf("%s/%s: states sum to %d, want Procs x Cycles = %d",
				j.App.Name, j.Cfg.Model, rm.States.Total(), want)
		}
		for _, pm := range rm.Procs {
			if pm.States.Total() != r.Cycles {
				t.Errorf("%s/%s: proc %d sums to %d, want %d",
					j.App.Name, j.Cfg.Model, pm.Proc, pm.States.Total(), r.Cycles)
			}
		}
		// The explicit-switch models run the grouped program variant, so
		// Program carries the app name plus a transform suffix.
		if !strings.HasPrefix(rm.Program, j.App.Name) || rm.Model != j.Cfg.Model.String() {
			t.Errorf("labels (%q, %q) want (%q*, %q)", rm.Program, rm.Model, j.App.Name, j.Cfg.Model)
		}
	}
	bm := s.Metrics()
	if bm.Runs < len(jobs) { // baselines may add runs; duplicates may not
		t.Errorf("batch aggregated %d runs, want >= %d", bm.Runs, len(jobs))
	}
	if bm.Engine.Sims != s.SimCount() {
		t.Errorf("engine sims = %d, want %d", bm.Engine.Sims, s.SimCount())
	}
}

// TestSessionMemoHitsAndAggregation: duplicate jobs count as memo hits
// (whatever the pool width), aggregate exactly once, and the batch
// snapshot is byte-identical across worker counts — the contract the
// -metrics flag and the determinism fuzz test build on.
func TestSessionMemoHitsAndAggregation(t *testing.T) {
	a := apps.MustNew("sieve", app.Quick)
	base := machine.Config{Procs: 2, Threads: 2, Model: machine.SwitchOnLoad, Latency: 16}
	var jobs []core.Job
	for _, m := range []machine.Model{machine.SwitchOnLoad, machine.SwitchOnUse, machine.ExplicitSwitch} {
		cfg := base
		cfg.Model = m
		jobs = append(jobs, core.Job{App: a, Cfg: cfg}, core.Job{App: a, Cfg: cfg})
	}
	snapshot := func(workers int) (*metrics.BatchMetrics, []byte) {
		s := core.NewSession()
		s.CollectMetrics = true
		s.Workers = workers
		if _, err := s.RunBatch(jobs); err != nil {
			t.Fatal(err)
		}
		bm := s.Metrics()
		var buf bytes.Buffer
		if err := metrics.WriteJSON(&buf, bm); err != nil {
			t.Fatal(err)
		}
		return bm, buf.Bytes()
	}
	bm1, js1 := snapshot(1)
	if bm1.Runs != 3 {
		t.Errorf("runs = %d, want 3 (duplicates share one run)", bm1.Runs)
	}
	if bm1.Engine.Sims != 3 || bm1.Engine.MemoHits != 3 {
		t.Errorf("engine = %+v, want 3 sims / 3 memo hits", bm1.Engine)
	}
	for _, w := range []int{4, 16} {
		if _, js := snapshot(w); !bytes.Equal(js1, js) {
			t.Errorf("batch metrics JSON differs between -j 1 and -j %d:\n%s\nvs\n%s", w, js1, js)
		}
	}
}
