package machine

import (
	"fmt"

	"mtsim/internal/prog"
)

// Shared is the host-side view of the simulated shared memory, handed to
// application Init and Check functions. It plays the role of the serial
// setup and verification code the paper excludes from measurement
// (§3.2): reading inputs, initialization, and checking outputs.
type Shared struct {
	cells  []int64
	layout *prog.Layout
}

// NewShared allocates shared memory for a program.
func NewShared(p *prog.Program) *Shared {
	return &Shared{cells: make([]int64, p.Shared.Size()), layout: &p.Shared}
}

// Size returns the number of cells.
func (s *Shared) Size() int64 { return int64(len(s.cells)) }

// Cells exposes the raw backing store (used by the machine itself).
func (s *Shared) Cells() []int64 { return s.cells }

// Sym resolves a shared symbol by name, panicking if undefined — layout
// mismatches between an app's builder and its Init/Check are programming
// errors.
func (s *Shared) Sym(name string) prog.Sym { return s.layout.MustLookup(name) }

func (s *Shared) check(addr int64) {
	if addr < 0 || addr >= int64(len(s.cells)) {
		panic(fmt.Sprintf("machine: host access to shared address %d outside [0,%d)", addr, len(s.cells)))
	}
}

// Word returns the integer at cell addr.
func (s *Shared) Word(addr int64) int64 { s.check(addr); return s.cells[addr] }

// SetWord stores an integer at cell addr.
func (s *Shared) SetWord(addr, v int64) { s.check(addr); s.cells[addr] = v }

// Float returns the float64 stored at cell addr.
func (s *Shared) Float(addr int64) float64 { s.check(addr); return prog.BitsToFloat64(s.cells[addr]) }

// SetFloat stores a float64 at cell addr.
func (s *Shared) SetFloat(addr int64, v float64) { s.check(addr); s.cells[addr] = prog.Float64Bits(v) }

// WordAt returns element i of symbol name.
func (s *Shared) WordAt(name string, i int64) int64 { return s.Word(s.Sym(name).Addr(i)) }

// SetWordAt stores element i of symbol name.
func (s *Shared) SetWordAt(name string, i, v int64) { s.SetWord(s.Sym(name).Addr(i), v) }

// FloatAt returns float element i of symbol name.
func (s *Shared) FloatAt(name string, i int64) float64 { return s.Float(s.Sym(name).Addr(i)) }

// SetFloatAt stores float element i of symbol name.
func (s *Shared) SetFloatAt(name string, i int64, v float64) { s.SetFloat(s.Sym(name).Addr(i), v) }
