package machine_test

import (
	"fmt"
	"testing"

	"mtsim/internal/machine"
	"mtsim/internal/net"
	"mtsim/internal/par"
	"mtsim/internal/prog"
)

// buildHolderWorkload is the §6.2 scenario, isolated: the first thread
// on each processor repeatedly takes a global lock (its critical section
// misses in the cache, so it context switches while holding the lock);
// every other thread runs repeated long cache-hit bursts, whose
// conditional Switch instructions are all skipped, until the lockers
// finish. Without a run limit a woken holder waits out the rest of a
// sibling's burst before it can release, and the serialized lock chain
// stretches; the run limit (the paper's fix) and holder priority (its
// §6.2 suggestion) both bound that wait.
func buildHolderWorkload(rounds, burst, threadsPerProc, lockers int64) *prog.Program {
	b := prog.NewBuilder("holder")
	lk := par.AllocLock(b, "lk")
	b.Shared("pad", 8)
	cnt := b.Shared("cnt", 1)
	b.Shared("pad2", 7)
	fin := b.Shared("fin", 1)
	b.Shared("pad3", 7)
	done := b.Shared("done", 1)
	b.Shared("pad4", 7)
	hot := b.Shared("hot", 2048)

	b.Li(14, threadsPerProc)
	b.Rem(14, 1, 14) // local thread index
	b.Bnez(14, "worker")

	// Locker (one per processor): rounds of a cache-missing critical
	// section, then bump the finish count; the last locker raises done.
	b.Li(16, 0)
	b.Label("round")
	b.Li(9, lk.Base)
	par.LockAcquire(b, 9, 0, 10, 11)
	b.Li(6, cnt.Base)
	b.LwS(7, 6, 0) // misses: written by lockers on other processors
	b.Switch()
	b.Addi(7, 7, 1)
	b.SwS(7, 6, 0)
	par.LockRelease(b, 9, 0, 10, 11)
	b.Addi(16, 16, 1)
	b.Li(11, rounds)
	b.Blt(16, 11, "round")
	b.Li(6, fin.Base)
	b.Li(10, 1)
	b.Faa(7, 6, 0, 10)
	b.Addi(7, 7, 1)
	b.Li(11, lockers)
	b.Bne(7, 11, "locker.end")
	b.Li(6, done.Base)
	b.SwS(10, 6, 0)
	b.Label("locker.end")
	b.Halt()

	// Worker: cache-hit bursts until the lockers are done.
	b.Label("worker")
	b.Slli(4, 1, 3) // &hot[8*tid]: a private, always-hitting line
	b.Li(5, hot.Base)
	b.Add(4, 4, 5)
	b.Label("outer")
	b.Li(16, 0)
	b.Label("work")
	b.LwS(8, 4, 0)
	b.LwS(8, 4, 1)
	b.Switch()
	b.Addi(16, 16, 1)
	b.Li(11, burst)
	b.Blt(16, 11, "work")
	b.Li(6, done.Base)
	b.LwS(8, 6, 0)
	b.Switch()
	b.Beqz(8, "outer")
	b.Halt()
	return b.MustBuild()
}

func TestCritPrioritySpeedsLockHandoff(t *testing.T) {
	const rounds, burst = 12, 300
	const procs, threads = 4, 4
	p := buildHolderWorkload(rounds, burst, threads, procs)
	check := func(sh *machine.Shared) error {
		want := int64(procs) * rounds // one locker per processor
		if got := sh.WordAt("cnt", 0); got != want {
			return fmt.Errorf("cnt = %d, want %d", got, want)
		}
		return nil
	}
	// Disable the §6.2 run limit so the pathology is visible, then show
	// priority fixing it.
	cfg := machine.Config{
		Procs: procs, Threads: threads, Model: machine.ConditionalSwitch,
		Latency: 200, RunLimit: -1, PreemptLimit: 3000,
	}
	plain, err := machine.RunChecked(cfg, p, nil, check)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CritPriority = true
	prio, err := machine.RunChecked(cfg, p, nil, check)
	if err != nil {
		t.Fatal(err)
	}
	if prio.CritPreempts == 0 {
		t.Error("priority never preempted")
	}
	if float64(prio.Cycles) > 0.8*float64(plain.Cycles) {
		t.Errorf("priority run %d cycles vs plain %d; want a substantial win once the run limit is off",
			prio.Cycles, plain.Cycles)
	}
}

func TestCritNestingNeverNegative(t *testing.T) {
	// Unbalanced CritExit must not wedge scheduling or panic.
	b := prog.NewBuilder("unbalanced")
	b.Shared("x", 1)
	b.CritExit()
	b.CritExit()
	b.CritEnter()
	b.Li(4, 0)
	b.LwS(5, 4, 0)
	b.Halt()
	p := b.MustBuild()
	for _, prioOn := range []bool{false, true} {
		cfg := machine.Config{Procs: 1, Threads: 2, Model: machine.SwitchOnLoad, Latency: 50, CritPriority: prioOn}
		if _, err := machine.Run(cfg, p, nil); err != nil {
			t.Fatalf("prio=%v: %v", prioOn, err)
		}
	}
}

// TestJitterDeterministic: identical configurations with jitter must
// produce identical cycle counts (the deviation is hash-based, not
// random), and jitter must actually change timing relative to the
// constant-latency run while preserving results.
func TestJitterDeterministic(t *testing.T) {
	p := buildCounter(50)
	cfg := machine.Config{Procs: 2, Threads: 3, Model: machine.SwitchOnLoad, Latency: 100, LatencyJitter: 60}
	r1, err := machine.Run(cfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := machine.Run(cfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles {
		t.Errorf("jittered runs differ: %d vs %d cycles", r1.Cycles, r2.Cycles)
	}
	flat, err := machine.Run(machine.Config{Procs: 2, Threads: 3, Model: machine.SwitchOnLoad, Latency: 100}, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Cycles == r1.Cycles {
		t.Error("jitter had no timing effect at all")
	}
	// Result correctness under jitter across models.
	for _, m := range []machine.Model{machine.SwitchOnUse, machine.ExplicitSwitch, machine.ConditionalSwitch} {
		cfg := machine.Config{Procs: 2, Threads: 3, Model: m, Latency: 100, LatencyJitter: 60}
		if _, err := machine.RunChecked(cfg, p, nil, func(sh *machine.Shared) error {
			if got := sh.WordAt("counter", 0); got != 2*3*50 {
				return fmt.Errorf("counter = %d", got)
			}
			return nil
		}); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
}

func TestJitterValidation(t *testing.T) {
	bad := machine.Config{Model: machine.SwitchOnLoad, Latency: 100, LatencyJitter: 100}
	if err := bad.Validate(); err == nil {
		t.Error("jitter >= latency accepted")
	}
	neg := machine.Config{Model: machine.SwitchOnLoad, Latency: 100, LatencyJitter: -1}
	if err := neg.Validate(); err == nil {
		t.Error("negative jitter accepted")
	}
	ok := machine.Config{Model: machine.SwitchOnLoad, Latency: 100, LatencyJitter: 99}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid jitter rejected: %v", err)
	}
}

// TestCongestionModel: under the load-dependent network, results stay
// correct and the observed latency responds to demand: a bandwidth-heavy
// uncached run must see a higher peak utilization than a cached one.
func TestCongestionModel(t *testing.T) {
	congest := net.CongestionConfig{Enabled: true, ChannelBits: 8}
	p := buildCounter(200)
	un, err := machine.RunChecked(machine.Config{
		Procs: 4, Threads: 6, Model: machine.SwitchOnLoad, Congestion: congest,
	}, p, nil, func(sh *machine.Shared) error {
		if got := sh.WordAt("counter", 0); got != 4*6*200 {
			return fmt.Errorf("counter = %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if un.NetPeakUtilization <= 0 {
		t.Error("no utilization recorded")
	}
	// The ideal model must reject the congestion config.
	bad := machine.Config{Model: machine.Ideal, Congestion: congest}
	if err := bad.Validate(); err == nil {
		t.Error("congestion accepted on the ideal machine")
	}
}
