package machine

import "math/bits"

// The event wheel is the run loop's calendar queue: a power-of-two ring
// of per-cycle buckets, each a bitmap over processor ids. A processor
// appears in exactly one bucket — the one for its wake cycle — because
// wake times only move forward and only when the processor dispatches,
// so popping a bucket and reinserting at the new wake keeps the bit and
// sim.wakes in lockstep. sim.wakes stays the canonical event state (it
// is what snapshots encode and what pauses preserve); the wheel is a
// derived index over it, rebuilt lazily after a restore.
//
// Bitmap buckets keep the one ordering rule the interpreter guarantees:
// processors sharing a cycle execute in ascending id order, which is
// exactly bit order. Wakes beyond the ring's horizon sit in an overflow
// list (far) that migrates into the ring as the clock approaches; the
// validation compare on pop makes the structure robust to any residual
// aliasing rather than relying on the horizon argument alone.

const (
	wheelBits = 11 // 2048-cycle ring: beyond typical latency+congestion wakes
	wheelSize = int64(1) << wheelBits
	wheelMask = wheelSize - 1
)

type eventWheel struct {
	buckets []uint64 // wheelSize buckets of `words` adjacent uint64s
	words   int64    // bitmap words per bucket: ceil(procs/64)
	inRing  int      // bits currently set across all buckets
	far     []int32  // procs whose wake lies beyond the ring horizon
	farMin  int64    // earliest far wake (never when far is empty)
}

// buildWheel indexes every live processor's wake time, anchored at now.
func (sim *m) buildWheel(now int64) {
	words := int64(len(sim.procs)+63) / 64
	sim.wheel = &eventWheel{
		buckets: make([]uint64, wheelSize*words),
		words:   words,
		farMin:  never,
	}
	for pi, w := range sim.wakes {
		if w != never {
			sim.wheelInsert(pi, w, now)
		}
	}
}

// wheelInsert schedules processor pi's next event at cycle w (>= now).
func (sim *m) wheelInsert(pi int, w, now int64) {
	wh := sim.wheel
	if w-now < wheelSize {
		wh.buckets[(w&wheelMask)*wh.words+int64(pi>>6)] |= 1 << (uint(pi) & 63)
		wh.inRing++
		return
	}
	wh.far = append(wh.far, int32(pi))
	if w < wh.farMin {
		wh.farMin = w
	}
}

// migrateFar moves overflow entries whose wake now fits the ring window
// [c, c+wheelSize) into their buckets.
func (sim *m) migrateFar(c int64) {
	wh := sim.wheel
	kept := wh.far[:0]
	min := int64(never)
	for _, pi := range wh.far {
		w := sim.wakes[pi]
		if w-c < wheelSize {
			wh.buckets[(w&wheelMask)*wh.words+int64(pi>>6)] |= 1 << (uint(pi) & 63)
			wh.inRing++
			continue
		}
		kept = append(kept, pi)
		if w < min {
			min = w
		}
	}
	wh.far = kept
	wh.farMin = min
}

// nextEvent finds the earliest cycle >= from with a scheduled event. It
// reports ok=false when no processor has one (live threads deadlocked).
func (sim *m) nextEvent(from int64) (int64, bool) {
	wh := sim.wheel
	words := wh.words
	c := from
	for {
		if wh.inRing == 0 {
			if len(wh.far) == 0 {
				return 0, false
			}
			if c < wh.farMin {
				c = wh.farMin // skip the empty stretch entirely
			}
		}
		if wh.farMin <= c {
			sim.migrateFar(c)
		}
		off := (c & wheelMask) * words
		for wi := int64(0); wi < words; wi++ {
			if wh.buckets[off+wi] != 0 {
				return c, true
			}
		}
		c++
	}
}

// popAndRun executes every processor due at cycle now, in ascending id
// order, reinserting each at its new wake. The validation compare skips
// (and reschedules) any bit whose processor is not actually due.
func (sim *m) popAndRun(now int64) error {
	wh := sim.wheel
	off := (now & wheelMask) * wh.words
	for wi := int64(0); wi < wh.words; wi++ {
		word := wh.buckets[off+wi]
		if word == 0 {
			continue
		}
		wh.buckets[off+wi] = 0
		wh.inRing -= bits.OnesCount64(word)
		base := int(wi) << 6
		for word != 0 {
			pi := base + bits.TrailingZeros64(word)
			word &= word - 1
			if sim.wakes[pi] != now {
				sim.wheelInsert(pi, sim.wakes[pi], now)
				continue
			}
			if err := sim.execOne(&sim.procs[pi], now); err != nil {
				return err
			}
			if w := sim.wakes[pi]; w != never {
				sim.wheelInsert(pi, w, now)
			}
		}
	}
	return nil
}
