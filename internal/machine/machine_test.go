package machine_test

import (
	"errors"
	"fmt"
	"testing"

	"mtsim/internal/isa"
	"mtsim/internal/machine"
	"mtsim/internal/opt"
	"mtsim/internal/par"
	"mtsim/internal/prog"
)

// buildCounter returns a program in which every thread atomically
// increments a shared counter n times and halts.
func buildCounter(n int64) *prog.Program {
	b := prog.NewBuilder("counter")
	cnt := b.Shared("counter", 1)
	b.Li(4, cnt.Base)
	b.Li(5, 1) // addend
	b.Li(6, 0) // i
	b.Li(7, n)
	b.Label("loop")
	b.Bge(6, 7, "done")
	b.Faa(8, 4, 0, 5)
	b.Addi(6, 6, 1)
	b.J("loop")
	b.Label("done")
	b.Halt()
	return b.MustBuild()
}

func allModels() []machine.Model {
	return []machine.Model{
		machine.Ideal, machine.SwitchEveryCycle, machine.SwitchOnLoad,
		machine.SwitchOnUse, machine.ExplicitSwitch, machine.SwitchOnMiss,
		machine.SwitchOnUseMiss, machine.ConditionalSwitch,
	}
}

func TestFetchAndAddAtomicAcrossProcessors(t *testing.T) {
	p := buildCounter(10)
	for _, model := range allModels() {
		t.Run(model.String(), func(t *testing.T) {
			cfg := machine.Config{Procs: 4, Threads: 3, Model: model}
			res, err := machine.RunChecked(cfg, p, nil, func(sh *machine.Shared) error {
				want := int64(4 * 3 * 10)
				if got := sh.WordAt("counter", 0); got != want {
					return fmt.Errorf("counter = %d, want %d", got, want)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.SharedLoads != 4*3*10 {
				t.Errorf("SharedLoads = %d, want %d", res.SharedLoads, 4*3*10)
			}
		})
	}
}

func TestALUAndFPSemantics(t *testing.T) {
	b := prog.NewBuilder("alu")
	out := b.Shared("out", 16)
	b.Li(4, out.Base)
	b.Li(5, 7)
	b.Li(6, 3)
	b.Add(7, 5, 6)
	b.SwS(7, 4, 0) // 10
	b.Sub(7, 5, 6)
	b.SwS(7, 4, 1) // 4
	b.Mul(7, 5, 6)
	b.SwS(7, 4, 2) // 21
	b.Div(7, 5, 6)
	b.SwS(7, 4, 3) // 2
	b.Rem(7, 5, 6)
	b.SwS(7, 4, 4) // 1
	b.Slli(7, 5, 2)
	b.SwS(7, 4, 5) // 28
	b.Srai(7, 5, 1)
	b.SwS(7, 4, 6) // 3
	b.Slt(7, 6, 5)
	b.SwS(7, 4, 7) // 1
	b.LiF(1, 2.5, 8)
	b.LiF(2, 4.0, 8)
	b.Fadd(3, 1, 2)
	b.FswS(3, 4, 8) // 6.5
	b.Fmul(3, 1, 2)
	b.FswS(3, 4, 9) // 10.0
	b.Fdiv(3, 2, 1)
	b.FswS(3, 4, 10) // 1.6
	b.Fsqrt(3, 2)
	b.FswS(3, 4, 11) // 2.0
	b.Flt(7, 1, 2)
	b.SwS(7, 4, 12) // 1
	b.CvtFI(7, 2)
	b.SwS(7, 4, 13) // 4
	b.Li(7, -9)
	b.Srli(7, 7, 60)
	b.SwS(7, 4, 14) // 15 (logical shift of all-ones top bits)
	b.Halt()
	p := b.MustBuild()

	res, err := machine.RunChecked(machine.Config{Model: machine.Ideal}, p, nil, func(sh *machine.Shared) error {
		wantInts := map[int64]int64{0: 10, 1: 4, 2: 21, 3: 2, 4: 1, 5: 28, 6: 3, 7: 1, 12: 1, 13: 4, 14: 15}
		for i, w := range wantInts {
			if got := sh.WordAt("out", i); got != w {
				return fmt.Errorf("out[%d] = %d, want %d", i, got, w)
			}
		}
		wantFloats := map[int64]float64{8: 6.5, 9: 10.0, 10: 1.6, 11: 2.0}
		for i, w := range wantFloats {
			if got := sh.FloatAt("out", i); got != w {
				return fmt.Errorf("out[%d] = %g, want %g", i, got, w)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instrs == 0 {
		t.Error("no instructions executed")
	}
}

// TestSwitchOnLoadTiming checks the model's arithmetic on a single
// thread: each shared load stalls the thread one full round trip.
func TestSwitchOnLoadTiming(t *testing.T) {
	const loads = 5
	b := prog.NewBuilder("timing")
	data := b.Shared("data", loads)
	b.Li(4, data.Base)
	for i := 0; i < loads; i++ {
		b.LwS(5, 4, int64(i))
	}
	b.Halt()
	p := b.MustBuild()

	cfg := machine.Config{Model: machine.SwitchOnLoad, Latency: 200}
	res, err := machine.Run(cfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	// li at cycle 0, load i at cycle 1 + 200(i-1) (each load's busy
	// cycle starts its round trip; the dependent successor runs at
	// issue+200), halt at 1+200*loads, plus the end-of-phase cycle.
	want := int64(1 + 1 + loads*200)
	if res.Cycles != want {
		t.Errorf("cycles = %d, want %d", res.Cycles, want)
	}
	if res.TakenSwitches != loads {
		t.Errorf("taken switches = %d, want %d", res.TakenSwitches, loads)
	}
}

// TestExplicitSwitchGroupsLatency checks that grouped loads share one
// round trip: five independent loads followed by one Switch cost ~one
// latency, not five.
func TestExplicitSwitchGroupsLatency(t *testing.T) {
	const loads = 5
	b := prog.NewBuilder("grouped")
	data := b.Shared("data", loads)
	sum := b.Shared("sum", 1)
	b.Li(4, data.Base)
	for i := 0; i < loads; i++ {
		b.LwS(uint8(5+i), 4, int64(i))
	}
	b.Switch()
	b.Li(11, 0)
	for i := 0; i < loads; i++ {
		b.Add(11, 11, uint8(5+i))
	}
	b.Li(4, sum.Base)
	b.SwS(11, 4, 0)
	b.Halt()
	p := b.MustBuild()

	init := func(sh *machine.Shared) {
		for i := int64(0); i < loads; i++ {
			sh.SetWordAt("data", i, i+1)
		}
	}
	check := func(sh *machine.Shared) error {
		if got := sh.WordAt("sum", 0); got != 15 {
			return fmt.Errorf("sum = %d, want 15", got)
		}
		return nil
	}

	cfg := machine.Config{Model: machine.ExplicitSwitch, Latency: 200}
	res, err := machine.RunChecked(cfg, p, init, check)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles > 230 {
		t.Errorf("cycles = %d, want ~latency (one grouped round trip), not ~5 latencies", res.Cycles)
	}
	if res.TakenSwitches != 1 {
		t.Errorf("taken switches = %d, want 1", res.TakenSwitches)
	}
	if res.ImplicitWaits != 0 {
		t.Errorf("implicit waits = %d, want 0", res.ImplicitWaits)
	}
}

// TestMultithreadingHidesLatency: with enough threads, switch-on-load
// utilization approaches 1 on a load-every-k-cycles loop.
func TestMultithreadingHidesLatency(t *testing.T) {
	b := prog.NewBuilder("loadloop")
	data := b.Shared("data", 64)
	b.Li(4, data.Base)
	b.Li(5, 0)
	b.Li(6, 400)
	b.Label("loop")
	b.Andi(7, 5, 63)
	b.Add(7, 7, 4)
	b.LwS(8, 7, 0)
	b.Addi(5, 5, 1)
	b.Blt(5, 6, "loop")
	b.Halt()
	p := b.MustBuild()

	low, err := machine.Run(machine.Config{Model: machine.SwitchOnLoad, Threads: 1}, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	high, err := machine.Run(machine.Config{Model: machine.SwitchOnLoad, Threads: 60}, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if u := low.Utilization(); u > 0.05 {
		t.Errorf("1-thread utilization = %.3f, want < 0.05 (latency exposed)", u)
	}
	if u := high.Utilization(); u < 0.9 {
		t.Errorf("60-thread utilization = %.3f, want > 0.9 (latency hidden)", u)
	}
}

// TestBarrierAndLock exercises the par library: each thread appends its
// tid into a log under a lock, with barriers separating two phases.
func TestBarrierAndLock(t *testing.T) {
	b := prog.NewBuilder("sync")
	bar := par.AllocBarrier(b, "bar")
	lk := par.AllocLock(b, "lock")
	idx := b.Shared("idx", 1)
	phase1 := b.Shared("phase1", 64)
	total := b.Shared("total", 1)

	const rSense = 20
	// Phase 1: each thread stores tid+1 into its slot.
	b.Li(4, phase1.Base)
	b.Add(4, 4, isa.RTid)
	b.Addi(5, isa.RTid, 1)
	b.SwS(5, 4, 0)
	b.Li(9, bar.Base)
	par.Barrier(b, 9, 0, rSense, 10, 11)
	// Phase 2: under a lock, total += phase1[next++] for one element.
	b.Li(9, lk.Base)
	par.LockAcquire(b, 9, 0, 10, 11)
	b.Li(4, idx.Base)
	b.LwS(5, 4, 0) // next index (protected by the lock, plain load)
	b.Addi(6, 5, 1)
	b.SwS(6, 4, 0)
	b.Li(4, phase1.Base)
	b.Add(4, 4, 5)
	b.LwS(6, 4, 0)
	b.Li(4, total.Base)
	b.LwS(7, 4, 0)
	b.Add(7, 7, 6)
	b.SwS(7, 4, 0)
	par.LockRelease(b, 9, 0, 10, 11)
	b.Halt()
	p := b.MustBuild()

	for _, model := range allModels() {
		for _, threads := range []int{1, 3} {
			name := fmt.Sprintf("%s/t%d", model, threads)
			t.Run(name, func(t *testing.T) {
				procs := 4
				n := int64(procs * threads)
				want := n * (n + 1) / 2
				cfg := machine.Config{Procs: procs, Threads: threads, Model: model, Latency: 40}
				_, err := machine.RunChecked(cfg, p, nil, func(sh *machine.Shared) error {
					if got := sh.WordAt("total", 0); got != want {
						return fmt.Errorf("total = %d, want %d", got, want)
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestOptimizedProgramEquivalence: the grouping optimizer must preserve
// semantics under every model, and optimized code must never hit an
// implicit wait under explicit-switch.
func TestOptimizedProgramEquivalence(t *testing.T) {
	b := prog.NewBuilder("stencil")
	grid := b.Shared("grid", 100)
	out := b.Shared("out", 100)
	b.Li(4, grid.Base)
	b.Li(5, out.Base)
	b.Li(6, 1) // i
	b.Label("loop")
	b.Add(7, 4, 6)
	b.LwS(8, 7, -1)
	b.LwS(9, 7, 0)
	b.LwS(10, 7, 1)
	b.Add(11, 8, 9)
	b.Add(11, 11, 10)
	b.Add(12, 5, 6)
	b.SwS(11, 12, 0)
	b.Addi(6, 6, 1)
	b.Slti(13, 6, 99)
	b.Bnez(13, "loop")
	b.Halt()
	raw := b.MustBuild()
	grouped, st := opt.MustOptimize(raw)

	if st.SharedLoads != 3 {
		t.Errorf("static shared loads = %d, want 3", st.SharedLoads)
	}
	if st.Switches != 1 {
		t.Errorf("switches inserted = %d, want 1 (one group of 3)", st.Switches)
	}
	if st.GroupSizes[3] != 1 {
		t.Errorf("group sizes = %v, want one group of 3", st.GroupSizes)
	}

	init := func(sh *machine.Shared) {
		for i := int64(0); i < 100; i++ {
			sh.SetWordAt("grid", i, i*i%17)
		}
	}
	check := func(sh *machine.Shared) error {
		for i := int64(1); i < 99; i++ {
			want := (i-1)*(i-1)%17 + i*i%17 + (i+1)*(i+1)%17
			if got := sh.WordAt("out", i); got != want {
				return fmt.Errorf("out[%d] = %d, want %d", i, got, want)
			}
		}
		return nil
	}

	for _, model := range allModels() {
		prg := raw
		if model.UsesGrouping() {
			prg = grouped
		}
		res, err := machine.RunChecked(machine.Config{Model: model, Threads: 2}, prg, init, check)
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if model == machine.ExplicitSwitch && res.ImplicitWaits != 0 {
			t.Errorf("%s: implicit waits = %d, want 0", model, res.ImplicitWaits)
		}
	}

	// Grouping should cut taken switches vs switch-on-load by ~3x here.
	rl, err := machine.Run(machine.Config{Model: machine.SwitchOnLoad}, raw, init)
	if err != nil {
		t.Fatal(err)
	}
	re, err := machine.Run(machine.Config{Model: machine.ExplicitSwitch}, grouped, init)
	if err != nil {
		t.Fatal(err)
	}
	if re.TakenSwitches*2 >= rl.TakenSwitches {
		t.Errorf("explicit-switch switches = %d, switch-on-load = %d; want < half",
			re.TakenSwitches, rl.TakenSwitches)
	}
}

// TestConditionalSwitchSkipsOnHits: with a cache and a repeating access
// pattern, most Switch instructions should be skipped.
func TestConditionalSwitchSkipsOnHits(t *testing.T) {
	b := prog.NewBuilder("hot")
	data := b.Shared("data", 8)
	b.Li(4, data.Base)
	b.Li(5, 0)
	b.Li(6, 200)
	b.Label("loop")
	b.LwS(7, 4, 0)
	b.LwS(8, 4, 1)
	b.Switch()
	b.Add(9, 7, 8)
	b.Addi(5, 5, 1)
	b.Blt(5, 6, "loop")
	b.Halt()
	p := b.MustBuild()

	res, err := machine.Run(machine.Config{Model: machine.ConditionalSwitch, Threads: 2}, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.SkippedSwitches == 0 {
		t.Error("no switches skipped despite hot cache")
	}
	if res.CacheHitRate() < 0.9 {
		t.Errorf("hit rate = %.3f, want > 0.9", res.CacheHitRate())
	}
	if res.TakenSwitches >= res.SkippedSwitches {
		t.Errorf("taken %d >= skipped %d; conditional switch should mostly skip",
			res.TakenSwitches, res.SkippedSwitches)
	}
}

// TestRunLimitForcesSwitches: a long cache-hit run must be broken up by
// the §6.2 run-limit flag.
func TestRunLimitForcesSwitches(t *testing.T) {
	b := prog.NewBuilder("limit")
	data := b.Shared("data", 4)
	b.Li(4, data.Base)
	b.Li(5, 0)
	b.Li(6, 2000)
	b.Label("loop")
	b.LwS(7, 4, 0)
	b.Switch()
	b.Addi(5, 5, 1)
	b.Blt(5, 6, "loop")
	b.Halt()
	p := b.MustBuild()

	res, err := machine.Run(machine.Config{Model: machine.ConditionalSwitch, Threads: 2, RunLimit: 200}, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ForcedSwitches == 0 {
		t.Error("run limit never forced a switch during a long hit run")
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []machine.Config{
		{Procs: -1},
		{Threads: -2},
		{Model: machine.Model(99)},
		{Model: machine.SwitchOnLoad, Latency: -5},
		{GroupWindow: true, Model: machine.SwitchOnLoad},
		{GroupWindow: true, Model: machine.ExplicitSwitch, WindowCells: 3},
	}
	for i, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d (%+v): Validate() = nil, want error", i, cfg)
		}
	}
	good := machine.Config{Procs: 2, Threads: 4, Model: machine.ConditionalSwitch}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	b := prog.NewBuilder("spin-forever")
	b.Shared("x", 1)
	b.Label("loop")
	b.J("loop")
	p := b.MustBuild()
	_, err := machine.Run(machine.Config{Model: machine.Ideal, MaxCycles: 1000}, p, nil)
	if !errors.Is(err, machine.ErrMaxCycles) {
		t.Errorf("err = %v, want ErrMaxCycles", err)
	}
}

func TestRuntimeFaults(t *testing.T) {
	build := func(f func(b *prog.Builder)) *prog.Program {
		b := prog.NewBuilder("fault")
		b.Shared("x", 4)
		b.Local("y", 4)
		f(b)
		b.Halt()
		return b.MustBuild()
	}
	cases := map[string]*prog.Program{
		"shared-oob": build(func(b *prog.Builder) { b.Li(4, 1000); b.LwS(5, 4, 0) }),
		"local-oob":  build(func(b *prog.Builder) { b.Li(4, 100); b.Lw(5, 4, 0) }),
		"div-zero":   build(func(b *prog.Builder) { b.Li(4, 1); b.Div(5, 4, 0) }),
		"rem-zero":   build(func(b *prog.Builder) { b.Li(4, 1); b.Rem(5, 4, 0) }),
		"bad-jr":     build(func(b *prog.Builder) { b.Li(4, -3); b.Jr(4) }),
	}
	for name, p := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := machine.Run(machine.Config{Model: machine.Ideal}, p, nil); err == nil {
				t.Error("Run() = nil error, want runtime fault")
			}
		})
	}
}

// TestCycleAccountingInvariant: Busy + Idle + SwitchOverhead must equal
// Cycles * Procs for every model.
func TestCycleAccountingInvariant(t *testing.T) {
	p := buildCounter(20)
	for _, model := range allModels() {
		cfg := machine.Config{Procs: 3, Threads: 2, Model: model, SwitchCost: 2, CollectRunLengths: true}
		res, err := machine.Run(cfg, p, nil)
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		total := res.Cycles * int64(cfg.Procs)
		if got := res.Busy + res.Idle + res.SwitchOverhead; got != total {
			t.Errorf("%s: busy+idle+overhead = %d, want %d", model, got, total)
		}
		if res.Busy == 0 {
			t.Errorf("%s: zero busy cycles", model)
		}
	}
}
