package machine_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"mtsim/internal/machine"
	"mtsim/internal/prog"
)

// buildSpin returns a program that loops forever: the cancellation
// tests' stand-in for an arbitrarily long simulation (the default
// MaxCycles watchdog is billions of cycles away).
func buildSpin() *prog.Program {
	b := prog.NewBuilder("spin")
	b.Shared("x", 1)
	b.Label("loop")
	b.J("loop")
	return b.MustBuild()
}

// TestRunContextCompletedIdentical: a run that completes under a live
// cancelable context must be indistinguishable from one under
// context.Background() — the poll may only end runs early, never alter
// the simulation.
func TestRunContextCompletedIdentical(t *testing.T) {
	p := buildCounter(50)
	cfg := machine.Config{Procs: 4, Threads: 3, Model: machine.SwitchOnUse, CollectRunLengths: true}

	plain, err := machine.Run(cfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctxRes, err := machine.RunContext(ctx, cfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cycles != ctxRes.Cycles || plain.Instrs != ctxRes.Instrs || plain.Busy != ctxRes.Busy {
		t.Errorf("ctx run diverged: cycles %d vs %d, instrs %d vs %d, busy %d vs %d",
			plain.Cycles, ctxRes.Cycles, plain.Instrs, ctxRes.Instrs, plain.Busy, ctxRes.Busy)
	}
	if plain.Summary() != ctxRes.Summary() {
		t.Errorf("summaries diverged:\n%s\nvs\n%s", plain.Summary(), ctxRes.Summary())
	}
}

// TestRunContextPreCanceled: an already-dead context fails before the
// machine is even built.
func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := machine.RunContext(ctx, machine.Config{Procs: 1, Threads: 1, Model: machine.Ideal}, buildCounter(1), nil)
	if res != nil {
		t.Error("canceled run returned a result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "not started") {
		t.Errorf("err %q does not say the run never started", err)
	}
}

// TestRunContextMidRunCancel: canceling mid-simulation must return
// promptly (the poll is amortized, not absent) with an error naming the
// program, the cycle, and wrapping context.Canceled.
func TestRunContextMidRunCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := machine.RunContext(ctx, machine.Config{Procs: 2, Threads: 2, Model: machine.SwitchOnLoad}, buildSpin(), nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		for _, want := range []string{"spin", "canceled at cycle"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("err %q does not mention %q", err, want)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled run did not return within 10s")
	}
}

// TestRunContextDeadline: a deadline aborts like an explicit cancel,
// wrapping context.DeadlineExceeded.
func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := machine.RunContext(ctx, machine.Config{Procs: 2, Threads: 2, Model: machine.SwitchOnLoad}, buildSpin(), nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("deadline enforced after %v; the poll is not bounding cancellation lag", elapsed)
	}
}
