// Package jit is the machine's compiled dispatch engine: at program
// load it cuts the instruction stream into fusible runs (opt.FuseRuns)
// and grows each run start into a compiled *trace* — an extended basic
// block that follows unconditional jumps at compile time, turns
// conditional branches into in-trace side exits, and unrolls a loop
// whose backedge returns to the trace's own head — so the run loop
// executes whole loop iterations per dispatch instead of paying one
// decoded switch per simulated instruction.
//
// A trace compiles into a single closure over its pre-decoded micro-op
// array: executing a trace costs one indirect call however many
// instructions it covers. Control flow lives inside the closure too — a
// conditional branch micro-op returns its own index when taken, an
// unconditional jump keeps only a placeholder micro-op for its place in
// the path numbering (its target was resolved at compile time) — so the
// chain walk outside the closure touches only unit-granular state:
// admission, cost accounting, and the successor pc.
//
// The engine trades no accuracy for that speed. A trace contains only
// instructions that touch thread-private state (opt.Fusible): integer
// and FP ALU, register moves, local memory, and control flow. Per-unit
// cost metadata (Cost, PreCost, CostBefore) lets the driver in
// internal/machine prove, before entering a unit, that no pause point,
// cycle budget, or preemption boundary falls inside its longest path;
// anything the unit cannot prove safe — a fault such as division by
// zero, a local address out of bounds, a jr out of range — traps
// *before* executing the offending instruction, so the interpreter
// re-executes it and produces the identical architectural effect (or
// the identical error).
//
// The package deliberately knows nothing about the machine's internal
// types: closures operate on the raw register banks and local memory a
// thread hands over, which keeps the compiler independently testable.
package jit

import (
	"math"

	"mtsim/internal/isa"
	"mtsim/internal/opt"
	"mtsim/internal/prog"
)

// uop is one pre-decoded fusible instruction: opcode plus register
// indices already masked into range and the immediate already folded
// (shift amounts reduced mod 64, jal's link pc materialized, a
// branch's taken-target pc substituted), so the trace closure executes
// it with no further decoding.
type uop struct {
	op         isa.Op
	rd, rs, rt uint8
	rd1, rt1   uint8 // high halves of double-word transfers
	imm        int64
}

// traceFn executes a trace's fused micro-ops against a thread's private
// state. It returns (-1, false) when the full path ran, (i, false) when
// branch micro-op i was taken (i+1 path instructions executed, the
// successor is the branch's pre-decoded target), and (i, true) when
// micro-op i would fault — in which case it has made no state change at
// all.
type traceFn func(r *[isa.NumIntRegs]int64, f *[isa.NumFPRegs]float64, local []int64) (int32, bool)

// Unit is one compiled trace. Path instruction i is micro-op i (the jr
// terminal, when present, is path instruction N-1 and has no micro-op);
// pcs, prefix and CostBefore all index that numbering.
type Unit struct {
	// Start is the pc of the trace's first instruction.
	Start int32
	// N is the instruction count of the full path — the upper bound on
	// what one Run can execute; side exits execute a strict prefix.
	N int64
	// Cost is the busy-cycle cost of the full path.
	Cost int64
	// PreCost is the cost consumed before the full path's last
	// instruction begins: a unit entered at cycle c issues no
	// instruction later than c+PreCost (side exits only tighten this).
	// The driver admits a unit only when no boundary (pause, MaxCycles,
	// preemption) falls inside [c, c+PreCost], so partial execution
	// happens only via a side exit or a trap — both exactly accounted.
	PreCost int64

	run     traceFn
	ops     []uop
	fall    int32 // successor pc when the trace completes without a jr
	jr      bool
	termRs  uint8
	termPC  int32 // pc of the jr, for trap reporting
	progLen int64
	pcs     []int32 // pcs[i] = original pc of path instruction i
	prefix  []int64 // prefix[i] = cost of the first i instructions; N+1 entries
}

// Run executes the trace. It returns the successor pc and the number of
// instructions that executed (CostBefore(n) is their cost). trapped
// reports that instruction n would fault: nothing of it executed, next
// is its pc, and the caller must leave the chain so the interpreter can
// re-execute it. A taken side exit is a normal return with n covering
// the branch itself and next its target.
func (u *Unit) Run(r *[isa.NumIntRegs]int64, f *[isa.NumFPRegs]float64, local []int64) (next int32, n int32, trapped bool) {
	i, trap := u.run(r, f, local)
	if i >= 0 {
		if trap {
			return u.pcs[i], i, true
		}
		return int32(u.ops[i].imm), i + 1, false
	}
	n = int32(u.N)
	if u.jr {
		a := r[u.termRs&31]
		if a < 0 || a >= u.progLen {
			return u.termPC, n - 1, true
		}
		return int32(a), n, false
	}
	return u.fall, n, false
}

// CostBefore returns the busy-cycle cost of the trace's first n path
// instructions — the cycles consumed when Run returned n.
func (u *Unit) CostBefore(n int) int64 { return u.prefix[n] }

// RunChain executes fused units starting at pc at cycle now, threading
// control from unit to unit (Unit.Run, inlined: chains are the engine's
// hottest loop and pay no per-unit method call here). A unit is entered
// only when its full path provably crosses no boundary: no instruction
// may issue after cycle lim, and the chain's total cost must stay
// strictly below budget. The chain ends at the first pc with no unit,
// at a boundary, or at a trap — in every case the returned pc is where
// the interpreter must continue, with cost and instrs the exact
// consumption of what did execute.
//
// tick bounds the instructions executed per call: when the count
// reaches it, RunChain returns more=true so the caller can poll for
// cancellation and re-enter. Boundary and trap returns have more=false.
//
// The lim/budget/tick bounds travel via SetBounds rather than as
// parameters: with them in the argument list the call exceeds the
// register ABI and spills to the stack on every dispatch.
func (cp *Program) RunChain(r *[isa.NumIntRegs]int64, f *[isa.NumFPRegs]float64, local []int64, pc int32, now int64) (next int32, cost, instrs int64, more bool) {
	units := cp.Units
	lim, budget, tick := cp.lim, cp.budget, cp.tick
	for {
		if instrs >= tick {
			return pc, cost, instrs, true
		}
		if uint32(pc) >= uint32(len(units)) {
			return pc, cost, instrs, false
		}
		u := units[pc]
		if u == nil {
			return pc, cost, instrs, false
		}
		if now+cost+u.PreCost > lim || cost+u.Cost >= budget {
			return pc, cost, instrs, false
		}
		i, trap := u.run(r, f, local)
		if i >= 0 {
			if trap {
				// The prefix executed, micro-op i did not; the
				// interpreter re-executes it at its pc.
				instrs += int64(i)
				cost += u.prefix[i]
				return u.pcs[i], cost, instrs, false
			}
			// Side exit: branch i taken to its pre-decoded target.
			instrs += int64(i) + 1
			cost += u.prefix[i+1]
			pc = int32(u.ops[i].imm)
			continue
		}
		if u.jr {
			a := r[u.termRs&31]
			if a < 0 || a >= u.progLen {
				instrs += u.N - 1
				cost += u.prefix[u.N-1]
				return u.termPC, cost, instrs, false
			}
			instrs += u.N
			cost += u.Cost
			pc = int32(a)
			continue
		}
		instrs += u.N
		cost += u.Cost
		pc = u.fall
	}
}

// Program is a compiled program: units indexed by the pc of their first
// instruction (nil where no fusible run starts).
type Program struct {
	Units []*Unit
	// Fused counts instructions covered by some fusible run; with Total
	// it summarizes static coverage for tests and diagnostics. Traces
	// may additionally duplicate instructions they reach by following
	// jumps, so coverage is a floor on what executes fused.
	Fused, Total int

	// RunChain bounds, set by SetBounds immediately before each call. A
	// Program belongs to one machine and runs on one goroutine at a
	// time, so the scratch fields race with nothing.
	lim, budget, tick int64
}

// SetBounds stages the boundary parameters for the next RunChain call:
// lim is the last cycle at which an instruction may issue, budget the
// strict cap on the chain's total cost, tick the instruction allowance
// before RunChain yields for a cancellation poll.
func (cp *Program) SetBounds(lim, budget, tick int64) {
	cp.lim, cp.budget, cp.tick = lim, budget, tick
}

// maxTraceLen caps how many instructions a single trace may fuse. It
// bounds compile-time duplication from loop unrolling and long
// straight-line code; jump threading chains unit to unit past it.
const maxTraceLen = 64

// Compile builds the compiled engine for p. The program must already be
// validated (register indices in range, branch targets resolved); the
// machine compiles after prog.Validate for exactly that reason.
func Compile(p *prog.Program) *Program {
	cp := &Program{Units: make([]*Unit, len(p.Instrs)), Total: len(p.Instrs)}
	var work []int
	for _, run := range opt.FuseRuns(p) {
		work = append(work, run.Start)
		cp.Fused += run.Len()
	}
	// Traces rooted at run starts may complete at a fusible pc that is
	// not itself a run start (a trace truncated by the length cap falls
	// mid-run); root follow-on traces there so chains never degrade to
	// instruction-at-a-time dispatch on long straight-line code. Side
	// exits need no such seeding: branch targets are block leaders and
	// therefore run starts already.
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		if cp.Units[pc] != nil {
			continue
		}
		u := compileTrace(p, pc)
		cp.Units[pc] = u
		if !u.jr {
			if f := int(u.fall); f >= 0 && f < len(p.Instrs) && opt.Fusible(p.Instrs[f]) && cp.Units[f] == nil {
				work = append(work, f)
			}
		}
	}
	return cp
}

// compileTrace grows the trace rooted at start: straight-line fusible
// instructions decode into micro-ops, conditional branches become side
// exits with the trace continuing on the fall-through path, and
// unconditional jumps are resolved at compile time (j keeps only a
// placeholder micro-op; jal keeps the link write). The trace ends at a
// non-fusible instruction, a jr, a pc it has already absorbed (a loop
// closing on a non-head pc), the program bounds, or the length cap.
func compileTrace(p *prog.Program, start int) *Unit {
	u := &Unit{Start: int32(start)}
	visited := make(map[int]bool, maxTraceLen)
	var costs []int64
	addInstr := func(pc int) {
		u.pcs = append(u.pcs, int32(pc))
		costs = append(costs, int64(p.Instrs[pc].Op.Cost()))
	}
	pc := start
	for {
		if pc < 0 || pc >= len(p.Instrs) || visited[pc] || len(u.pcs) >= maxTraceLen {
			break
		}
		in := p.Instrs[pc]
		if !opt.Fusible(in) {
			break
		}
		visited[pc] = true
		switch op := in.Op; {
		case op == isa.Jr:
			u.jr = true
			u.termRs = in.Rs & 31
			u.termPC = int32(pc)
			u.progLen = int64(len(p.Instrs))
			addInstr(pc)
			u.run = makeTrace(u.ops)
			finishTrace(u, costs)
			return u
		case op == isa.J:
			// Followed at compile time: the micro-op only keeps the
			// jump's place in the path numbering; it does no work.
			u.ops = append(u.ops, uop{op: isa.J})
			addInstr(pc)
			pc = int(in.Target)
		case op == isa.Jal:
			u.ops = append(u.ops, uop{op: isa.Jal, imm: int64(pc + 1)})
			addInstr(pc)
			pc = int(in.Target)
		case op.IsBranch():
			b := decode(in)
			if int(in.Target) == start {
				// A backedge to the trace's own head: unroll the loop.
				// The branch is emitted inverted, so its side exit is
				// the loop's original fall-through and the taken path
				// stays inside the trace, which continues with another
				// copy of the body. Per-iteration dispatch overhead
				// (unit lookup, admission, accounting) then amortizes
				// over every unrolled copy. The pcs walked repeat, so
				// the visited set restarts with the new copy.
				b.op = invertBranch(in.Op)
				b.imm = int64(pc + 1)
				u.ops = append(u.ops, b)
				addInstr(pc)
				pc = start
				visited = make(map[int]bool, maxTraceLen)
			} else {
				b.imm = int64(in.Target)
				u.ops = append(u.ops, b)
				addInstr(pc)
				pc++
			}
		default:
			u.ops = append(u.ops, decode(in))
			addInstr(pc)
			pc++
		}
	}
	u.fall = int32(pc)
	u.run = makeTrace(u.ops)
	finishTrace(u, costs)
	return u
}

// invertBranch returns the branch with the opposite condition. Branch
// pairs read the same operands, so swapping the opcode inverts the
// outcome exactly — signed comparisons are a total order.
func invertBranch(op isa.Op) isa.Op {
	switch op {
	case isa.Beq:
		return isa.Bne
	case isa.Bne:
		return isa.Beq
	case isa.Blt:
		return isa.Bge
	case isa.Bge:
		return isa.Blt
	case isa.Beqz:
		return isa.Bnez
	case isa.Bnez:
		return isa.Beqz
	}
	return op
}

// finishTrace derives the accounting metadata from the per-instruction
// costs gathered while growing the trace.
func finishTrace(u *Unit, costs []int64) {
	u.N = int64(len(costs))
	u.prefix = make([]int64, len(costs)+1)
	for i, c := range costs {
		u.prefix[i] = u.Cost
		u.Cost += c
	}
	u.prefix[len(costs)] = u.Cost
	u.PreCost = u.prefix[len(costs)-1]
}

// decode pre-decodes one straight-line instruction. Register indices
// are pre-masked to 31 — a no-op for validated programs — and shift
// amounts are reduced mod 64 exactly as the interpreter reduces them.
func decode(in isa.Instr) uop {
	v := uop{
		op: in.Op,
		rd: in.Rd & 31, rs: in.Rs & 31, rt: in.Rt & 31,
		rd1: (in.Rd + 1) & 31, rt1: (in.Rt + 1) & 31,
		imm: in.Imm,
	}
	switch in.Op {
	case isa.Slli, isa.Srli, isa.Srai:
		v.imm = int64(uint64(in.Imm) & 63)
	}
	return v
}

// makeTrace fuses a trace's micro-ops into one closure with the
// interpreter's exact semantics. The &31 masks repeat the decode-time
// masking where the compiler can see it, eliding the register-bank
// bounds checks; local memory is checked against the live slice before
// any write, exactly as the interpreter does.
func makeTrace(uops []uop) traceFn {
	ops := uops
	return func(r *[isa.NumIntRegs]int64, f *[isa.NumFPRegs]float64, local []int64) (int32, bool) {
		for i := range ops {
			op := &ops[i]
			switch op.op {
			case isa.Nop:

			// Integer ALU, register-register.
			case isa.Add:
				r[op.rd&31] = r[op.rs&31] + r[op.rt&31]
			case isa.Sub:
				r[op.rd&31] = r[op.rs&31] - r[op.rt&31]
			case isa.Mul:
				r[op.rd&31] = r[op.rs&31] * r[op.rt&31]
			case isa.Div:
				if r[op.rt&31] == 0 {
					return int32(i), true
				}
				r[op.rd&31] = r[op.rs&31] / r[op.rt&31]
			case isa.Rem:
				if r[op.rt&31] == 0 {
					return int32(i), true
				}
				r[op.rd&31] = r[op.rs&31] % r[op.rt&31]
			case isa.And:
				r[op.rd&31] = r[op.rs&31] & r[op.rt&31]
			case isa.Or:
				r[op.rd&31] = r[op.rs&31] | r[op.rt&31]
			case isa.Xor:
				r[op.rd&31] = r[op.rs&31] ^ r[op.rt&31]
			case isa.Nor:
				r[op.rd&31] = ^(r[op.rs&31] | r[op.rt&31])
			case isa.Sll:
				r[op.rd&31] = r[op.rs&31] << (uint64(r[op.rt&31]) & 63)
			case isa.Srl:
				r[op.rd&31] = int64(uint64(r[op.rs&31]) >> (uint64(r[op.rt&31]) & 63))
			case isa.Sra:
				r[op.rd&31] = r[op.rs&31] >> (uint64(r[op.rt&31]) & 63)
			case isa.Slt:
				r[op.rd&31] = b2i(r[op.rs&31] < r[op.rt&31])
			case isa.Sltu:
				r[op.rd&31] = b2i(uint64(r[op.rs&31]) < uint64(r[op.rt&31]))

			// Integer ALU, register-immediate.
			case isa.Addi:
				r[op.rd&31] = r[op.rs&31] + op.imm
			case isa.Muli:
				r[op.rd&31] = r[op.rs&31] * op.imm
			case isa.Andi:
				r[op.rd&31] = r[op.rs&31] & op.imm
			case isa.Ori:
				r[op.rd&31] = r[op.rs&31] | op.imm
			case isa.Xori:
				r[op.rd&31] = r[op.rs&31] ^ op.imm
			case isa.Slli:
				r[op.rd&31] = r[op.rs&31] << uint64(op.imm)
			case isa.Srli:
				r[op.rd&31] = int64(uint64(r[op.rs&31]) >> uint64(op.imm))
			case isa.Srai:
				r[op.rd&31] = r[op.rs&31] >> uint64(op.imm)
			case isa.Slti:
				r[op.rd&31] = b2i(r[op.rs&31] < op.imm)
			case isa.Li:
				r[op.rd&31] = op.imm
			case isa.Mov:
				r[op.rd&31] = r[op.rs&31]

			// Control flow inside the trace. Branch targets were
			// pre-decoded into imm; a taken branch is a side exit. The
			// j placeholder's jump was resolved at compile time, and
			// jal's jump likewise — only the link write remains.
			case isa.Beq:
				if r[op.rs&31] == r[op.rt&31] {
					return int32(i), false
				}
			case isa.Bne:
				if r[op.rs&31] != r[op.rt&31] {
					return int32(i), false
				}
			case isa.Blt:
				if r[op.rs&31] < r[op.rt&31] {
					return int32(i), false
				}
			case isa.Bge:
				if r[op.rs&31] >= r[op.rt&31] {
					return int32(i), false
				}
			case isa.Beqz:
				if r[op.rs&31] == 0 {
					return int32(i), false
				}
			case isa.Bnez:
				if r[op.rs&31] != 0 {
					return int32(i), false
				}
			case isa.J:

			case isa.Jal:
				r[isa.RRet] = op.imm

			// Register-bank moves and floating point.
			case isa.Fmov:
				f[op.rd&31] = f[op.rs&31]
			case isa.Mtf:
				f[op.rd&31] = prog.BitsToFloat64(r[op.rs&31])
			case isa.Mff:
				r[op.rd&31] = prog.Float64Bits(f[op.rs&31])
			case isa.Fadd:
				f[op.rd&31] = f[op.rs&31] + f[op.rt&31]
			case isa.Fsub:
				f[op.rd&31] = f[op.rs&31] - f[op.rt&31]
			case isa.Fmul:
				f[op.rd&31] = f[op.rs&31] * f[op.rt&31]
			case isa.Fdiv:
				f[op.rd&31] = f[op.rs&31] / f[op.rt&31]
			case isa.Fneg:
				f[op.rd&31] = -f[op.rs&31]
			case isa.Fabs:
				f[op.rd&31] = math.Abs(f[op.rs&31])
			case isa.Fsqrt:
				f[op.rd&31] = math.Sqrt(f[op.rs&31])
			case isa.Fmin:
				f[op.rd&31] = math.Min(f[op.rs&31], f[op.rt&31])
			case isa.Fmax:
				f[op.rd&31] = math.Max(f[op.rs&31], f[op.rt&31])
			case isa.CvtIF:
				f[op.rd&31] = float64(r[op.rs&31])
			case isa.CvtFI:
				r[op.rd&31] = int64(f[op.rs&31])
			case isa.Feq:
				r[op.rd&31] = b2i(f[op.rs&31] == f[op.rt&31])
			case isa.Flt:
				r[op.rd&31] = b2i(f[op.rs&31] < f[op.rt&31])
			case isa.Fle:
				r[op.rd&31] = b2i(f[op.rs&31] <= f[op.rt&31])

			// Thread-local memory.
			case isa.Lw:
				a := r[op.rs&31] + op.imm
				if uint64(a) >= uint64(len(local)) {
					return int32(i), true
				}
				r[op.rd&31] = local[a]
			case isa.Sw:
				a := r[op.rs&31] + op.imm
				if uint64(a) >= uint64(len(local)) {
					return int32(i), true
				}
				local[a] = r[op.rt&31]
			case isa.Ld:
				a := r[op.rs&31] + op.imm
				if a < 0 || a+1 >= int64(len(local)) {
					return int32(i), true
				}
				r[op.rd&31] = local[a]
				r[op.rd1&31] = local[a+1]
			case isa.Sd:
				a := r[op.rs&31] + op.imm
				if a < 0 || a+1 >= int64(len(local)) {
					return int32(i), true
				}
				local[a] = r[op.rt&31]
				local[a+1] = r[op.rt1&31]
			case isa.Flw:
				a := r[op.rs&31] + op.imm
				if uint64(a) >= uint64(len(local)) {
					return int32(i), true
				}
				f[op.rd&31] = prog.BitsToFloat64(local[a])
			case isa.Fsw:
				a := r[op.rs&31] + op.imm
				if uint64(a) >= uint64(len(local)) {
					return int32(i), true
				}
				local[a] = prog.Float64Bits(f[op.rt&31])
			}
		}
		return -1, false
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
