package jit_test

import (
	"testing"

	"mtsim/internal/isa"
	"mtsim/internal/machine/jit"
	"mtsim/internal/opt"
	"mtsim/internal/prog"
)

const big = int64(1) << 60

func state(localWords int) (*[isa.NumIntRegs]int64, *[isa.NumFPRegs]float64, []int64) {
	var r [isa.NumIntRegs]int64
	var f [isa.NumFPRegs]float64
	return &r, &f, make([]int64, localWords)
}

// pathCost sums the architectural cost of the instructions at pcs.
func pathCost(p *prog.Program, pcs ...int) int64 {
	var c int64
	for _, pc := range pcs {
		c += int64(p.Instrs[pc].Op.Cost())
	}
	return c
}

// TestCompileCoverage: every fusible run start gets a unit, and the
// Fused/Total summary matches the run partition exactly.
func TestCompileCoverage(t *testing.T) {
	b := prog.NewBuilder("cover")
	x := b.Shared("x", 2)
	b.Li(4, x.Base)
	b.Li(5, 3)
	b.LwS(6, 4, 0) // non-fusible: splits the surrounding runs
	b.Add(6, 6, 5)
	b.SwS(6, 4, 0)
	b.Halt()
	p := b.MustBuild()

	cp := jit.Compile(p)
	if cp.Total != len(p.Instrs) {
		t.Errorf("Total = %d, want %d", cp.Total, len(p.Instrs))
	}
	fused := 0
	for _, run := range opt.FuseRuns(p) {
		fused += run.Len()
		if cp.Units[run.Start] == nil {
			t.Errorf("no unit at run start pc %d", run.Start)
		}
	}
	if cp.Fused != fused {
		t.Errorf("Fused = %d, want %d", cp.Fused, fused)
	}
	for pc, u := range cp.Units {
		if u != nil && !opt.Fusible(p.Instrs[pc]) {
			t.Errorf("unit rooted at non-fusible pc %d", pc)
		}
	}
}

// TestUnitStraightLine pins Unit.Run's full-path contract on a simple
// ALU run: all instructions execute, next is the fall-through, and the
// cost prefix is exact and monotone.
func TestUnitStraightLine(t *testing.T) {
	b := prog.NewBuilder("line")
	p0 := b.Pos()
	b.Li(4, 7)
	b.Addi(5, 4, 3)
	b.Mul(6, 4, 5)
	halt := b.Pos()
	b.Halt()
	p := b.MustBuild()

	u := jit.Compile(p).Units[p0]
	if u == nil {
		t.Fatal("no unit at program start")
	}
	if u.N != 3 {
		t.Fatalf("N = %d, want 3", u.N)
	}
	r, f, local := state(0)
	next, n, trapped := u.Run(r, f, local)
	if trapped || n != 3 || next != int32(halt) {
		t.Fatalf("Run = (%d, %d, %v), want (%d, 3, false)", next, n, trapped, halt)
	}
	if r[4] != 7 || r[5] != 10 || r[6] != 70 {
		t.Errorf("registers = %d,%d,%d, want 7,10,70", r[4], r[5], r[6])
	}
	if got, want := u.Cost, pathCost(p, p0, p0+1, p0+2); got != want {
		t.Errorf("Cost = %d, want %d", got, want)
	}
	if u.CostBefore(0) != 0 || u.CostBefore(int(u.N)) != u.Cost {
		t.Errorf("prefix endpoints: CostBefore(0)=%d, CostBefore(N)=%d, Cost=%d",
			u.CostBefore(0), u.CostBefore(int(u.N)), u.Cost)
	}
	for i := 1; i <= int(u.N); i++ {
		if u.CostBefore(i) < u.CostBefore(i-1) {
			t.Errorf("prefix not monotone at %d", i)
		}
	}
	if u.PreCost != u.CostBefore(int(u.N)-1) {
		t.Errorf("PreCost = %d, want %d", u.PreCost, u.CostBefore(int(u.N)-1))
	}
}

// TestUnitSideExit: a conditional branch inside a trace either falls
// through (full path) or side-exits to its target with the branch
// itself counted as executed.
func TestUnitSideExit(t *testing.T) {
	b := prog.NewBuilder("exit")
	p0 := b.Pos()
	b.Beqz(4, "skip")
	b.Addi(5, 4, 41)
	b.Label("skip")
	halt := b.Pos()
	b.Halt()
	p := b.MustBuild()
	u := jit.Compile(p).Units[p0]
	if u == nil {
		t.Fatal("no unit at program start")
	}

	r, f, local := state(0)
	r[4] = 0 // branch taken: side exit after 1 instruction
	next, n, trapped := u.Run(r, f, local)
	if trapped || n != 1 || next != int32(halt) {
		t.Fatalf("taken: Run = (%d, %d, %v), want (%d, 1, false)", next, n, trapped, halt)
	}
	if r[5] != 0 {
		t.Errorf("taken side exit executed the successor: r5 = %d", r[5])
	}

	r, f, local = state(0)
	r[4] = 1 // not taken: full path
	next, n, trapped = u.Run(r, f, local)
	if trapped || n != 2 || next != int32(halt) {
		t.Fatalf("not taken: Run = (%d, %d, %v), want (%d, 2, false)", next, n, trapped, halt)
	}
	if r[5] != 42 {
		t.Errorf("r5 = %d, want 42", r[5])
	}
}

// TestUnitTraps: every trapping micro-op (div/rem zero, local bounds,
// jr range) must report the faulting pc with zero state change from the
// faulting instruction, and the executed-prefix count must be exact.
func TestUnitTraps(t *testing.T) {
	t.Run("div-zero", func(t *testing.T) {
		b := prog.NewBuilder("div0")
		p0 := b.Pos()
		b.Li(4, 5)
		b.Li(5, 0)
		div := b.Pos()
		b.Div(6, 4, 5)
		b.Halt()
		p := b.MustBuild()
		u := jit.Compile(p).Units[p0]
		r, f, local := state(0)
		r[6] = -1
		next, n, trapped := u.Run(r, f, local)
		if !trapped || n != 2 || next != int32(div) {
			t.Fatalf("Run = (%d, %d, %v), want (%d, 2, true)", next, n, trapped, div)
		}
		if r[6] != -1 {
			t.Errorf("trapping div wrote rd: r6 = %d", r[6])
		}
		if got, want := u.CostBefore(int(n)), pathCost(p, p0, p0+1); got != want {
			t.Errorf("prefix cost = %d, want %d", got, want)
		}
	})
	t.Run("local-bounds", func(t *testing.T) {
		b := prog.NewBuilder("oob")
		b.Local("buf", 2)
		p0 := b.Pos()
		b.Li(4, 10)
		st := b.Pos()
		b.Sw(4, 4, 0) // address 10, local size 2
		b.Halt()
		p := b.MustBuild()
		u := jit.Compile(p).Units[p0]
		r, f, local := state(2)
		next, n, trapped := u.Run(r, f, local)
		if !trapped || n != 1 || next != int32(st) {
			t.Fatalf("Run = (%d, %d, %v), want (%d, 1, true)", next, n, trapped, st)
		}
	})
	t.Run("jr-range", func(t *testing.T) {
		b := prog.NewBuilder("jr")
		p0 := b.Pos()
		b.Li(4, 1000)
		jr := b.Pos()
		b.Jr(4)
		b.Halt()
		p := b.MustBuild()
		u := jit.Compile(p).Units[p0]
		r, f, local := state(0)
		next, n, trapped := u.Run(r, f, local)
		if !trapped || int64(n) != u.N-1 || next != int32(jr) {
			t.Fatalf("Run = (%d, %d, %v), want (%d, %d, true)", next, n, trapped, jr, u.N-1)
		}
	})
	t.Run("jr-valid", func(t *testing.T) {
		b := prog.NewBuilder("jrok")
		p0 := b.Pos()
		b.Li(4, 3)
		b.Jr(4)
		b.Nop()
		b.Halt() // pc 3
		p := b.MustBuild()
		u := jit.Compile(p).Units[p0]
		r, f, local := state(0)
		next, n, trapped := u.Run(r, f, local)
		if trapped || int64(n) != u.N || next != 3 {
			t.Fatalf("Run = (%d, %d, %v), want (3, %d, false)", next, n, trapped, u.N)
		}
	})
}

// buildLoop is the canonical counted self-loop: r4 counts 0..trip.
func buildLoop(trip int64) (*prog.Program, int, int) {
	b := prog.NewBuilder("loop")
	p0 := b.Pos()
	b.Li(4, 0)
	b.Li(5, trip)
	b.Label("loop")
	b.Addi(4, 4, 1)
	b.Blt(4, 5, "loop")
	halt := b.Pos()
	b.Halt()
	return b.MustBuild(), p0, halt
}

// TestSelfLoopUnroll: a branch whose target is the trace's own head is
// compiled inverted with the body unrolled, so the loop-head unit fuses
// more instructions than the static body.
func TestSelfLoopUnroll(t *testing.T) {
	p, p0, _ := buildLoop(50)
	cp := jit.Compile(p)
	head := cp.Units[p0+2]
	if head == nil {
		t.Fatal("no unit at loop head")
	}
	if head.N <= 2 {
		t.Errorf("loop head N = %d, want > 2 (unrolled copies of the 2-instruction body)", head.N)
	}
}

// TestRunChainLoop drives the whole loop through RunChain with open
// bounds and checks exact instruction and cost accounting.
func TestRunChainLoop(t *testing.T) {
	p, p0, halt := buildLoop(50)
	cp := jit.Compile(p)
	r, f, local := state(0)
	cp.SetBounds(big, big, big)
	next, cost, instrs, more := cp.RunChain(r, f, local, int32(p0), 0)
	if more || next != int32(halt) {
		t.Fatalf("RunChain = (next %d, more %v), want (%d, false)", next, more, halt)
	}
	if wantInstrs := int64(2 + 2*50); instrs != wantInstrs {
		t.Errorf("instrs = %d, want %d", instrs, wantInstrs)
	}
	wantCost := pathCost(p, p0, p0+1) + 50*pathCost(p, p0+2, p0+3)
	if cost != wantCost {
		t.Errorf("cost = %d, want %d", cost, wantCost)
	}
	if r[4] != 50 {
		t.Errorf("r4 = %d, want 50", r[4])
	}
}

// TestRunChainBounds: the admission check refuses a unit whose full
// path would cross lim or exhaust budget, and refuses it before any
// state changes.
func TestRunChainBounds(t *testing.T) {
	p, p0, _ := buildLoop(50)
	cp := jit.Compile(p)

	r, f, local := state(0)
	cp.SetBounds(0, big, big) // first unit's PreCost pushes past cycle 0
	next, cost, instrs, more := cp.RunChain(r, f, local, int32(p0), 0)
	if next != int32(p0) || cost != 0 || instrs != 0 || more {
		t.Errorf("lim: RunChain = (%d, %d, %d, %v), want (%d, 0, 0, false)", next, cost, instrs, more, p0)
	}
	if r[4] != 0 || r[5] != 0 {
		t.Errorf("refused chain mutated registers: r4=%d r5=%d", r[4], r[5])
	}

	cp.SetBounds(big, 1, big) // any unit's cost >= budget 1
	next, cost, instrs, more = cp.RunChain(r, f, local, int32(p0), 0)
	if next != int32(p0) || cost != 0 || instrs != 0 || more {
		t.Errorf("budget: RunChain = (%d, %d, %d, %v), want (%d, 0, 0, false)", next, cost, instrs, more, p0)
	}
}

// TestRunChainTick: the tick bound yields with more=true so the caller
// can poll for cancellation, and the chain resumes to the same final
// state as an unbounded run.
func TestRunChainTick(t *testing.T) {
	p, p0, halt := buildLoop(50)
	cp := jit.Compile(p)
	r, f, local := state(0)
	pc, now := int32(p0), int64(0)
	var instrs, rounds int64
	for {
		cp.SetBounds(big, big, 5)
		next, c, n, more := cp.RunChain(r, f, local, pc, now)
		pc, now, instrs = next, now+c, instrs+n
		rounds++
		if !more {
			break
		}
		if rounds > 1000 {
			t.Fatal("chain did not terminate")
		}
	}
	if rounds < 2 {
		t.Errorf("tick bound never fired: %d rounds for 102 instructions", rounds)
	}
	if pc != int32(halt) || instrs != 102 || r[4] != 50 {
		t.Errorf("resumed chain ended at (pc %d, instrs %d, r4 %d), want (%d, 102, 50)", pc, instrs, r[4], halt)
	}
}

// TestRunChainTrap: a mid-chain trap stops the chain at the faulting pc
// with the prefix exactly accounted.
func TestRunChainTrap(t *testing.T) {
	b := prog.NewBuilder("chaintrap")
	p0 := b.Pos()
	b.Li(4, 8)
	b.Li(5, 0)
	div := b.Pos()
	b.Div(6, 4, 5)
	b.Halt()
	p := b.MustBuild()
	cp := jit.Compile(p)
	r, f, local := state(0)
	cp.SetBounds(big, big, big)
	next, cost, instrs, more := cp.RunChain(r, f, local, int32(p0), 0)
	if more || next != int32(div) || instrs != 2 {
		t.Fatalf("RunChain = (next %d, instrs %d, more %v), want (%d, 2, false)", next, instrs, more, div)
	}
	if want := pathCost(p, p0, p0+1); cost != want {
		t.Errorf("cost = %d, want %d", cost, want)
	}
}
