package machine

import "mtsim/internal/machine/jit"

// This file drives the compiled dispatch engine (internal/machine/jit).
// The interpreter in execInstr pays a full decoded switch per simulated
// instruction; the engine executes whole fused units — and, via jump
// threading, chains of units — per dispatch. The two are byte-identical
// in every observable, which rests on three invariants:
//
//  1. Privacy. A unit contains only opt.Fusible instructions, which
//     read and write thread-private state exclusively (registers,
//     local memory, the pc). Other processors can neither observe nor
//     be observed by a fused chain, so letting one thread run several
//     simulated cycles ahead inside a cohort pass reorders nothing
//     that any cross-thread channel (shared memory, caches, traffic,
//     the fault plan's access sequence) could distinguish. Every
//     non-private instruction takes the interpreter slow path at its
//     exact cycle, in the exact cohort order, as before.
//
//  2. Boundary prechecks. A unit is entered only if its complete
//     execution provably crosses no boundary the interpreter would
//     act on mid-run: the RunUntil pause bound and MaxCycles guard
//     (no instruction may *begin* at a cycle >= until or > MaxCycles
//     — PreCost bounds the last issue cycle) and the preemption
//     watchdog (the post-instruction sinceSwitch test can only fire
//     after the chain's last instruction, never inside it). When a
//     boundary falls inside every reachable unit, the chain stops and
//     the interpreter executes instruction-by-instruction, landing
//     pauses, preemptions and errors on the identical cycle.
//
//  3. Trap-before-effect. A fusible instruction that can fault (div/
//     rem by zero, local memory bounds, jr range) checks its
//     precondition before any state change and aborts the unit. The
//     driver accounts the completed prefix, leaves t.pc at the
//     faulting instruction, and lets the interpreter re-execute it to
//     produce the identical error (or, for a re-entered unit mid-pc,
//     the identical architectural effect).
//
// Eligibility gating: newSim builds no engine under switch-every-cycle
// (rotation after every instruction leaves nothing to fuse), under
// CollectMetrics (the accounting hooks time each instruction), or when
// the config forces the interpreter. Per dispatch, the execOne hook
// additionally requires a clean scoreboard (t.maxReady <= now — also
// why fused units may skip the WAW reply-drain clear entirely) and no
// pending critical-priority rescheduling.

// runCompiled executes as many fused units as boundaries allow,
// starting at t.pc at cycle now, threading jumps from unit to unit. It
// returns the processor's next event cycle and whether any instruction
// executed; ran=false means the interpreter should dispatch as usual.
func (sim *m) runCompiled(pr *proc, t *thread, now int64) (nn int64, ran bool, err error) {
	// lim folds the RunUntil pause bound and the MaxCycles guard into a
	// single issue-cycle ceiling: no fused instruction may begin at a
	// cycle >= until or > MaxCycles.
	lim := sim.until - 1
	if maxc := sim.cfg.MaxCycles; maxc < lim {
		lim = maxc
	}
	// budget is the strict bound on the chain's total cost from the
	// preemption watchdog: after an instruction pushes sinceSwitch to
	// preempt or beyond, the interpreter yields, so a chain may only
	// contain instructions that keep sinceSwitch strictly below it.
	budget := int64(never)
	if sim.preempt > 0 && pr.live > 1 {
		budget = sim.preempt - t.sinceSwitch
	}
	// tick bounds instructions per RunChain call so cancellation polling
	// keeps its cadence; without a context the chain runs unbounded.
	tick := int64(never)
	poll := sim.ctxDone != nil
	if poll {
		tick = sim.cancelTick
	}
	var cost, instrs int64
	pc := t.pc
	for {
		sim.eng.SetBounds(lim, budget-cost, tick)
		next, c, n, more := sim.eng.RunChain(&t.regs, &t.fregs, t.local, pc, now+cost)
		pc = next
		cost += c
		instrs += n
		if poll {
			sim.cancelTick -= n
		}
		if !more {
			// Chain over: boundary, missing unit, or trap. In the trap
			// case the prefix executed and the trapping instruction did
			// not — the interpreter re-executes it at pc.
			break
		}
		if err := sim.pollCancel(now + cost); err != nil {
			sim.flushChain(pr, t, pc, cost, instrs)
			return 0, true, err
		}
		tick = sim.cancelTick
	}
	if instrs == 0 {
		return 0, false, nil
	}
	sim.flushChain(pr, t, pc, cost, instrs)
	return now + cost, true, nil
}

// flushChain applies a chain's bulk accounting: exactly the per-
// instruction updates the interpreter would have made, summed.
func (sim *m) flushChain(pr *proc, t *thread, pc int32, cost, instrs int64) {
	t.pc = pc
	t.runLen += cost
	t.sinceSwitch += cost
	pr.busy += cost
	sim.res.Instrs += instrs
}

// compileEngine builds the compiled engine when the configuration is
// eligible, or leaves sim.eng nil to interpret everything.
func (sim *m) compileEngine() {
	cfg := &sim.cfg
	if cfg.DispatchMode == DispatchInterpreted || cfg.Model == SwitchEveryCycle || cfg.CollectMetrics {
		return
	}
	sim.eng = jit.Compile(sim.prg)
}
