package machine

import (
	"context"
	"errors"
	"fmt"
	"math"

	"mtsim/internal/cache"
	"mtsim/internal/isa"
	"mtsim/internal/machine/jit"
	"mtsim/internal/metrics"
	"mtsim/internal/net"
	"mtsim/internal/prog"
)

// ErrMaxCycles is returned when a run exceeds Config.MaxCycles — almost
// always a livelocked spin loop caused by an application bug.
var ErrMaxCycles = errors.New("machine: exceeded MaxCycles (livelock?)")

// ErrFaultStall is the watchdog's verdict when a run exceeded MaxCycles
// while the fault-injection recovery protocol was actively retrying:
// the stall is (at least partly) fault-induced rather than a plain
// application livelock. It wraps ErrMaxCycles, so errors.Is against
// either matches.
var ErrFaultStall = fmt.Errorf("%w under fault injection (fault-induced stall)", ErrMaxCycles)

const never = math.MaxInt64

// CancelCheckInterval is the cooperative-cancellation amortization
// constant: a context-carrying run polls ctx.Done() once per this many
// event-loop steps (outer cohort scans and batched single-processor
// dispatches both count one step). The poll is two atomic-free branch
// instructions between checks, so the hot loop's throughput is
// unaffected within the bench harness's tolerance, while the worst-case
// cancellation lag stays bounded at one interval's worth of simulated
// dispatches (well under a millisecond of host time). Runs without a
// cancelable context (context.Background; the legacy Run entry points)
// skip even the countdown: they pay a single nil check per step and
// their output is byte-identical to a build without cancellation.
const CancelCheckInterval = 1 << 16

// thread is one hardware thread context: its own 32 integer and 32
// floating-point registers (§3), a program counter, local memory, and the
// split-phase load scoreboard.
type thread struct {
	pc     int32
	halted bool
	regs   [isa.NumIntRegs]int64
	fregs  [isa.NumFPRegs]float64

	// wake is the first cycle at which the thread may execute again.
	wake int64
	// regReady/fregReady hold, per register, the cycle at which the
	// newest split-phase load targeting it completes.
	regReady  [isa.NumIntRegs]int64
	fregReady [isa.NumFPRegs]int64
	// maxReady is the completion cycle of the newest outstanding load:
	// under ordered delivery, waiting for it waits for the whole group.
	maxReady int64

	// runLen counts busy cycles since the last taken context switch;
	// sinceSwitch feeds the conditional-switch run-limit flag (§6.2).
	runLen      int64
	sinceSwitch int64

	// window is the §5.2 grouping-estimation buffer (nil unless
	// Config.GroupWindow).
	window *cache.Window

	// crit is the critical-region nesting depth (CritEnter/CritExit);
	// under Config.CritPriority the scheduler prefers threads with
	// crit > 0.
	crit int32

	local []int64
}

// proc is one processor: a set of thread contexts scheduled round-robin,
// an optional shared-data cache, and its occupancy state.
type proc struct {
	id      int32
	threads []thread
	cur     int
	live    int
	// resume remembers a runnable thread displaced by a critical-region
	// preemption (Config.CritPriority); when the critical thread next
	// blocks, the displaced thread continues instead of the round-robin
	// successor, so priority does not churn through spin loops. -1 when
	// empty.
	resume int
	// critLive counts non-halted threads currently inside a critical
	// region; the scheduler's CritPriority rescan is skipped while it is
	// zero.
	critLive int32
	cache    *cache.Cache

	busy           int64
	spinBusy       int64
	switchOverhead int64
}

// m is one in-flight simulation.
type m struct {
	cfg    Config
	prg    *prog.Program
	instrs []isa.Instr
	sh     []int64
	shared *Shared
	procs  []proc
	dir    *cache.Directory
	// dirtyOwner maps a cache line to the processor holding it modified
	// (write-back coherence: a dirty line has exactly one copy).
	dirtyOwner map[int64]int32
	lat        int64
	jitter     int64
	preempt    int64
	trace      Tracer
	congestion *net.Congestion
	// topo is the explicit-topology network (Config.Topology); nil for
	// the constant (legacy) network, so the constant path is untouched.
	topo   *net.Network
	faults *net.FaultPlan
	// mx is the cycle-accounting collector (Config.CollectMetrics).
	// nil when disabled: every hook below sits behind one nil check so
	// the hot loop pays nothing for the observability layer.
	mx *metrics.Collector
	// eng is the compiled dispatch engine (see dispatch.go); nil when
	// the configuration is ineligible or forces the interpreter.
	eng *jit.Program
	// nowApprox mirrors the run loop's current cycle for accounting
	// hooks that are not passed the time explicitly.
	nowApprox int64
	res       *Result
	live      int
	srcBuf    []uint8
	shrBuf    []int32
	lineSz    int
	// wakes[p] is the earliest cycle at which processor p can execute
	// an instruction (never if all its threads halted). It lives in its
	// own contiguous slice — not in the proc struct — so the run loop's
	// event scan touches a handful of cache lines instead of one line
	// per ~200-byte proc.
	wakes []int64
	// wheel indexes wakes for the run loop (see wheel.go). Derived
	// state: never snapshotted, rebuilt lazily from wakes after a
	// restore, and kept consistent across pauses.
	wheel *eventWheel
	// ctxDone is the run's cancellation channel (nil when the context
	// cannot be canceled, which disables polling entirely); cancelTick
	// counts event-loop steps down to the next amortized poll
	// (CancelCheckInterval).
	ctx        context.Context
	ctxDone    <-chan struct{}
	cancelTick int64
	// now is the event clock, persisted across run calls so a paused
	// simulation (see until) resumes exactly where it stopped.
	now int64
	// until is the cycle budget of the current run call: the loop
	// pauses before executing any event at a cycle >= until. Unbounded
	// runs set it to never, which reduces the budget check to one
	// always-false compare per step — the same cost class as the
	// MaxCycles guard, keeping checkpointing-off zero-cost.
	until int64
}

// Run executes program p under cfg. init, if non-nil, fills shared memory
// before the forked phase starts (the paper's excluded serial setup).
//
// Run is RunContext with context.Background(): it cannot be canceled or
// bounded by a deadline. New callers should prefer RunContext.
func Run(cfg Config, p *prog.Program, init func(*Shared)) (*Result, error) {
	return RunChecked(cfg, p, init, nil)
}

// RunContext is Run under a context: the event loop polls ctx
// cooperatively (amortized every CancelCheckInterval steps, so the hot
// loop is unaffected) and a canceled or expired context aborts the run
// with an error wrapping ctx.Err(). A completed run is byte-identical
// to Run: cancellation can only end a simulation early, never change
// what it computes.
func RunContext(ctx context.Context, cfg Config, p *prog.Program, init func(*Shared)) (*Result, error) {
	return runInternal(ctx, cfg, p, init, nil, nil)
}

// RunCheckedContext is RunChecked under a context (see RunContext).
func RunCheckedContext(ctx context.Context, cfg Config, p *prog.Program, init func(*Shared), check func(*Shared) error) (*Result, error) {
	return runInternal(ctx, cfg, p, init, check, nil)
}

// TraceEvent describes one dynamic shared-memory access, for the
// pixie-style trace analysis the paper's methodology is built on (§3.1).
type TraceEvent struct {
	Cycle  int64
	Proc   int32
	Thread int64
	PC     int32
	Op     isa.Op
	Addr   int64
}

// Tracer receives every dynamic shared access in execution order.
type Tracer func(TraceEvent)

// RunTraced is RunChecked with a shared-access tracer attached. The
// tracer is deliberately not part of Config (Config stays a comparable
// value used as a memoization key).
func RunTraced(cfg Config, p *prog.Program, init func(*Shared), check func(*Shared) error, tr Tracer) (*Result, error) {
	return runInternal(context.Background(), cfg, p, init, check, tr)
}

// RunChecked is Run followed by a correctness check of the final shared
// memory contents, used by tests and the experiment harness to guarantee
// every measured execution computed the right answer.
//
// RunChecked is RunCheckedContext with context.Background(); new
// callers should prefer the context form.
func RunChecked(cfg Config, p *prog.Program, init func(*Shared), check func(*Shared) error) (*Result, error) {
	return runInternal(context.Background(), cfg, p, init, check, nil)
}

func runInternal(ctx context.Context, cfg Config, p *prog.Program, init func(*Shared), check func(*Shared) error, tr Tracer) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("machine: program %q not started: %w", p.Name, err)
	}
	sim, err := newSim(cfg, p, init, tr)
	if err != nil {
		return nil, err
	}
	sim.bindContext(ctx)
	if _, err := sim.run(); err != nil {
		return nil, err
	}
	if check != nil {
		if err := check(sim.shared); err != nil {
			return nil, fmt.Errorf("machine: program %q under %s produced wrong result: %w", p.Name, sim.cfg.Model, err)
		}
	}
	return sim.res, nil
}

// newSim validates the inputs and builds a ready-to-run simulation at
// cycle 0 (the constructor shared by the one-shot entry points and the
// pausable Machine handle).
func newSim(cfg Config, p *prog.Program, init func(*Shared), tr Tracer) (*m, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(p.Instrs) == 0 {
		return nil, fmt.Errorf("machine: program %q is empty", p.Name)
	}

	sim := &m{
		cfg:    cfg,
		prg:    p,
		instrs: p.Instrs,
		lat:    int64(cfg.Latency),
		res:    &Result{Config: cfg},
		until:  never,
	}
	if cfg.PreemptLimit > 0 {
		sim.preempt = int64(cfg.PreemptLimit)
	}
	sim.jitter = int64(cfg.LatencyJitter)
	sim.trace = tr
	if cfg.Congestion.Enabled {
		sim.congestion = net.NewCongestion(cfg.Congestion, cfg.Procs)
	}
	if cfg.Topology.Enabled() {
		sim.topo = net.NewNetwork(cfg.Topology, cfg.Procs, cfg.Latency)
	}
	if cfg.Faults.Enabled {
		sim.faults = net.NewFaultPlan(cfg.Faults, cfg.Latency)
	}
	if cfg.CollectMetrics {
		sim.mx = metrics.NewCollector(cfg.Procs, cfg.Threads)
	}
	sim.shared = NewShared(p)
	if init != nil {
		init(sim.shared)
	}
	sim.sh = sim.shared.Cells()
	if cfg.Model.UsesCache() {
		sim.dir = cache.NewDirectory()
		sim.dirtyOwner = make(map[int64]int32)
		sim.lineSz = cfg.Cache.LineCells
	}

	nthreads := cfg.Procs * cfg.Threads
	localWords := p.Local.Size()
	sim.procs = make([]proc, cfg.Procs)
	for pi := range sim.procs {
		pr := &sim.procs[pi]
		pr.id = int32(pi)
		pr.threads = make([]thread, cfg.Threads)
		pr.live = cfg.Threads
		pr.resume = -1
		if cfg.Model.UsesCache() {
			pr.cache = cache.MustNew(cfg.Cache)
		}
		for ti := range pr.threads {
			t := &pr.threads[ti]
			// Threads are distributed blockwise: processor pi runs
			// global thread ids pi*Threads .. (pi+1)*Threads-1.
			t.regs[isa.RTid] = int64(pi*cfg.Threads + ti)
			t.regs[isa.RNth] = int64(nthreads)
			t.regs[isa.RPid] = int64(pi)
			if localWords > 0 {
				t.local = make([]int64, localWords)
			}
			if cfg.GroupWindow {
				t.window = cache.NewWindow(cfg.WindowCells)
			}
		}
	}
	sim.live = nthreads
	sim.compileEngine()
	return sim, nil
}

// bindContext attaches ctx's cancellation to the event loop for the
// next run call. A Machine resumed under a different context rebinds;
// cancellation timing never affects what a completed run computes.
func (sim *m) bindContext(ctx context.Context) {
	sim.ctx, sim.ctxDone, sim.cancelTick = nil, nil, 0
	if done := ctx.Done(); done != nil {
		sim.ctx = ctx
		sim.ctxDone = done
		sim.cancelTick = CancelCheckInterval
	}
}

// run drives the cycle loop. It is event-driven over cycles: each
// processor carries the earliest cycle at which it can execute, and the
// loop advances time to the minimum. This is exact, not an approximation:
// wake times are fixed when a load issues and data visibility is
// immediate, so a stalled processor can neither affect nor be affected by
// anything until one of its threads wakes.
//
// The event queue is the calendar wheel in wheel.go: per-cycle bitmap
// buckets popped in processor-id order, so every instruction executes
// at the same cycle, and processors sharing a cycle still run in the
// same order, as a naive min-scan would produce. A flat wake-vector
// scan (and, before it, an indexed min-heap) was profiled here first:
// the scan beat the heap when every dispatch was one instruction, but
// under the compiled engine a dispatch is a whole chain, cohorts thin
// out, and one O(procs) pass per event cycle dominated the profile.
// The wheel pays O(1) per dispatch and per cycle instead. A single-
// processor machine bypasses queueing entirely: with nothing to order
// against, run degenerates to a straight dispatch loop.
//
// run also honors sim.until, the pause bound used by the checkpointing
// Machine handle: the loop stops *before executing any event* at a
// cycle >= until and records the clock in sim.now, an instruction
// boundary at which every piece of simulator state is consistent. A
// later call re-enters at the same clock and pops the identical cohort
// (the paused cycle's bucket is untouched), making a paused-and-resumed
// run byte-identical to an uninterrupted one. sim.wakes remains the
// canonical event state: snapshots encode it and never the wheel, which
// a restored machine rebuilds lazily here.
func (sim *m) run() (done bool, err error) {
	if sim.wakes == nil {
		sim.wakes = make([]int64, len(sim.procs)) // all due at cycle 0
	}
	if len(sim.procs) == 1 {
		return sim.runSingle()
	}
	now := sim.now
	if sim.wheel == nil {
		sim.buildWheel(now)
	}
	for {
		if now > sim.cfg.MaxCycles {
			return false, sim.maxCyclesErr(now)
		}
		if now >= sim.until {
			sim.now = now
			return false, nil
		}
		if sim.ctxDone != nil {
			if sim.cancelTick--; sim.cancelTick <= 0 {
				if err := sim.pollCancel(now); err != nil {
					return false, err
				}
			}
		}
		sim.nowApprox = now
		// A processor executed earlier in the cohort can change a later
		// one's cache state but never its wake time, so the bucket
		// popped here is exactly the cohort a full scan would find.
		if err := sim.popAndRun(now); err != nil {
			return false, err
		}
		if sim.live == 0 {
			break
		}
		next, ok := sim.nextEvent(now + 1)
		if !ok {
			return false, fmt.Errorf("machine: internal: %d live threads but no runnable processor", sim.live)
		}
		now = next
	}
	sim.finish(sim.nowApprox + 1)
	return true, nil
}

// runSingle is run for a one-processor machine: no ordering against
// other processors exists, so the loop dispatches straight off the
// single wake time.
func (sim *m) runSingle() (done bool, err error) {
	now := sim.now
	for {
		if now > sim.cfg.MaxCycles {
			return false, sim.maxCyclesErr(now)
		}
		if now >= sim.until {
			sim.now = now
			return false, nil
		}
		if sim.ctxDone != nil {
			if sim.cancelTick--; sim.cancelTick <= 0 {
				if err := sim.pollCancel(now); err != nil {
					return false, err
				}
			}
		}
		sim.nowApprox = now
		if err := sim.execOne(&sim.procs[0], now); err != nil {
			return false, err
		}
		if sim.live == 0 {
			break
		}
		w := sim.wakes[0]
		if w == never {
			return false, fmt.Errorf("machine: internal: %d live threads but no runnable processor", sim.live)
		}
		now = w
	}
	sim.finish(sim.nowApprox + 1)
	return true, nil
}

// pollCancel performs the amortized cooperative-cancellation check: it
// resets the countdown and reports a run-ending error iff the context
// was canceled. Only reached once per CancelCheckInterval event-loop
// steps, and only for runs whose context can actually be canceled.
func (sim *m) pollCancel(now int64) error {
	sim.cancelTick = CancelCheckInterval
	select {
	case <-sim.ctxDone:
		return fmt.Errorf("machine: program %q canceled at cycle %d (model %s): %w",
			sim.prg.Name, now, sim.cfg.Model, sim.ctx.Err())
	default:
		return nil
	}
}

// maxCyclesErr builds the watchdog error for a run that exceeded
// MaxCycles, distinguishing a fault-induced stall (the recovery protocol
// was timing out and retrying) from a plain application livelock. Fault
// stats accumulate at issue time, so they are current here.
func (sim *m) maxCyclesErr(now int64) error {
	if sim.faults != nil && sim.faults.Stats.Timeouts > 0 {
		st := sim.faults.Stats
		return fmt.Errorf("%w at cycle %d (program %q, model %s; drops=%d timeouts=%d retries=%d backoff-cycles=%d)",
			ErrFaultStall, now, sim.prg.Name, sim.cfg.Model, st.Drops, st.Timeouts, st.Retries, st.BackoffCycles)
	}
	return fmt.Errorf("%w at cycle %d (program %q, model %s)", ErrMaxCycles, now, sim.prg.Name, sim.cfg.Model)
}

// finish closes the books. end is one past the cycle on which the last
// instruction issued.
func (sim *m) finish(end int64) {
	sim.res.ProcBusy = make([]int64, len(sim.procs))
	for pi := range sim.procs {
		pr := &sim.procs[pi]
		sim.res.ProcBusy[pi] = pr.busy - pr.spinBusy
		sim.res.Busy += pr.busy
		sim.res.SwitchOverhead += pr.switchOverhead
		if pr.cache != nil {
			sim.res.CacheHits += pr.cache.Hits
			sim.res.CacheMisses += pr.cache.Misses
			sim.res.CacheInvals += pr.cache.Invals
		}
		for ti := range pr.threads {
			if w := pr.threads[ti].window; w != nil {
				sim.res.WindowHits += w.Hits
				sim.res.WindowProbes += w.Hits + w.Misses
			}
		}
	}
	if sim.congestion != nil {
		sim.res.NetPeakUtilization = sim.congestion.PeakUtilization
		sim.res.NetFinalLatency = sim.congestion.Latency(end)
	}
	if sim.topo != nil {
		sim.topo.Quiesce(end)
		sim.res.TopoMaxLatency = sim.topo.MaxLatency
		sim.res.TopoPeakQueue = sim.topo.PeakQueue
		sim.res.TopoRequests = sim.topo.Requests
	}
	if sim.faults != nil {
		sim.res.Faults = sim.faults.Stats
	}
	sim.res.Cycles = end
	if sim.res.Cycles < 1 {
		sim.res.Cycles = 1
	}
	total := sim.res.Cycles * int64(sim.cfg.Procs)
	sim.res.Idle = total - sim.res.Busy - sim.res.SwitchOverhead
	if sim.res.Idle < 0 {
		sim.res.Idle = 0
	}
	if sim.mx != nil {
		rm := sim.mx.Finish(sim.res.Cycles)
		rm.Program = sim.prg.Name
		rm.Model = sim.cfg.Model.String()
		rm.NumProcs = sim.cfg.Procs
		rm.NumThreads = sim.cfg.Threads
		rm.Counters = metrics.Counters{
			Instrs:          sim.res.Instrs,
			SwitchesTaken:   sim.res.TakenSwitches,
			SwitchesSkipped: sim.res.SkippedSwitches,
			SwitchesForced:  sim.res.ForcedSwitches,
			RunLengthMean:   sim.res.RunLengths.Mean(),
			RunLengthMax:    sim.res.RunLengths.Max,
			NetRoundTrips:   sim.res.SharedLoads,
			NetMessages:     sim.res.Traffic.Messages(),
			FaultRetries:    sim.res.Faults.Retries,
			FaultTimeouts:   sim.res.Faults.Timeouts,
		}
		sim.res.Metrics = rm
	}
}

// runtimeErr builds a diagnostic for a simulated-program fault.
func (sim *m) runtimeErr(pr *proc, t *thread, pc int32, format string, args ...any) error {
	loc := fmt.Sprintf("program %q, proc %d, thread %d, pc %d (%s)",
		sim.prg.Name, pr.id, t.regs[isa.RTid], pc, sim.instrs[pc].String())
	return fmt.Errorf("machine: %s: %s", fmt.Sprintf(format, args...), loc)
}

// execOne runs one instruction on processor pr at cycle now and updates
// its wake time. When the selected thread turns out to be blocked on a pending
// register (a "use point"), the context switch is free — identified at
// decode, §3 — so the processor retries with the next ready thread in the
// same cycle.
func (sim *m) execOne(pr *proc, now int64) error {
	for attempt := 0; ; attempt++ {
		// Select the running thread: stay on the current one if
		// runnable, otherwise round-robin scan. Under CritPriority a
		// ready thread inside a critical region is preferred, so held
		// locks release sooner (§6.2) — but the scan for one is needed
		// only while some thread on this processor actually is in a
		// critical region (critLive), so a runnable current thread
		// normally skips the scan entirely.
		t := &pr.threads[pr.cur]
		if t.halted || t.wake > now ||
			(sim.cfg.CritPriority && t.crit == 0 && pr.critLive > 0) {
			found, foundCrit := -1, -1
			n := len(pr.threads)
			for i := 1; i <= n; i++ {
				j := (pr.cur + i) % n
				c := &pr.threads[j]
				if c.halted || c.wake > now {
					continue
				}
				if found < 0 {
					found = j
				}
				if sim.cfg.CritPriority && c.crit > 0 {
					foundCrit = j
					break
				}
			}
			switch {
			case foundCrit >= 0:
				if foundCrit != pr.cur {
					sim.res.CritPreempts++
					if !t.halted && t.wake <= now && t.crit == 0 {
						pr.resume = pr.cur // give the CPU back afterwards
					}
				}
				found = foundCrit
			case !t.halted && t.wake <= now:
				found = pr.cur // no critical thread ready; stay put
			}
			if found < 0 {
				// Every thread that was ready this cycle blocked at a
				// use point; the processor idles until one wakes.
				sim.updateNext(pr, now+1)
				return nil
			}
			pr.cur = found
			t = &pr.threads[found]
		}

		// Compiled fast path: with a clean scoreboard and no pending
		// critical-priority rescheduling, the selected thread stays
		// selected for as long as it executes thread-private
		// instructions, so fused units run here in chains. Any bail-out
		// (no unit at pc, a boundary inside every reachable unit, a
		// trap) falls through to the interpreter below.
		if sim.eng != nil && t.maxReady <= now &&
			!(sim.cfg.CritPriority && t.crit == 0 && pr.critLive > 0) {
			nn, ran, err := sim.runCompiled(pr, t, now)
			if err != nil {
				return err
			}
			if ran {
				// A chain leaves the current thread live and runnable
				// (t.wake <= now < nn, and fused units never halt), so
				// updateNext would resolve to exactly nn; store it
				// directly and skip the thread scan.
				sim.wakes[pr.id] = nn
				return nil
			}
		}

		if t.pc < 0 || int(t.pc) >= len(sim.instrs) {
			return sim.runtimeErr(pr, t, 0, "pc %d out of range", t.pc)
		}
		in := &sim.instrs[t.pc]

		// Split-phase scoreboard: reading a register whose load has not
		// returned blocks the thread here. Under the use-based models
		// this is the context-switch point; under explicit-switch it
		// means the optimizer missed a Switch (counted, tested against).
		if t.maxReady > now {
			if ready, blocked := sim.sourceReady(t, in, now); blocked {
				switch sim.cfg.Model {
				case SwitchOnUse, SwitchOnUseMiss, SwitchEveryCycle, Ideal:
					// The read is the use; switching is the mechanism.
				default:
					sim.res.ImplicitWaits++
				}
				sim.takeSwitch(pr, t, ready, 0)
				if attempt < len(pr.threads) {
					continue // zero-cost switch: try another thread now
				}
				sim.updateNext(pr, now+1)
				return nil
			}
		}
		err := sim.execInstr(pr, t, in, now)
		if err != nil || sim.eng == nil {
			return err
		}
		// Post-instruction chain. When the instruction left this thread
		// current, live, runnable at the processor's next dispatch
		// cycle, and with a clean scoreboard, that dispatch would
		// select it again (selection stays on a runnable current
		// thread) and enter the compiled engine — so run the chain now
		// and save the dispatch round trip. The admission inside
		// runCompiled still bounds the chain by the pause, MaxCycles
		// and preemption boundaries at the future base cycle, so a
		// base beyond a boundary simply admits nothing.
		base := sim.wakes[pr.id]
		if base != never && &pr.threads[pr.cur] == t && !t.halted &&
			t.wake <= base && t.maxReady <= base &&
			!(sim.cfg.CritPriority && t.crit == 0 && pr.critLive > 0) {
			nn, ran, err := sim.runCompiled(pr, t, base)
			if err != nil {
				return err
			}
			if ran {
				sim.wakes[pr.id] = nn
			}
		}
		return nil
	}
}

// execInstr executes one decoded, unblocked instruction.
func (sim *m) execInstr(pr *proc, t *thread, in *isa.Instr, now int64) error {
	pc := t.pc
	op := in.Op
	cost := int64(op.Cost())
	// ti pins the executing thread's index: takeSwitch and yieldThread
	// rotate pr.cur before the metrics hook at the tail runs.
	ti := pr.cur
	if sim.mx != nil {
		sim.mx.BeginExec(int(pr.id), ti, now, t.wake)
	}

	if t.maxReady > now {
		// Writing a register supersedes any in-flight load targeting it
		// (the machine drains outstanding replies before reusing the
		// register — see the optimizer's WAW handling — so the stale
		// scoreboard entry must not block later readers of the new
		// value). A shared load re-marks its destination afterwards.
		sim.srcBuf = in.IntDests(sim.srcBuf[:0])
		for _, r := range sim.srcBuf {
			t.regReady[r] = 0
		}
		if d := in.FPDest(); d >= 0 {
			t.fregReady[d] = 0
		}
	}

	sim.res.Instrs++
	if in.Spin {
		sim.res.SpinProbes++
		pr.spinBusy += cost
	}
	pr.busy += cost
	t.runLen += cost
	t.sinceSwitch += cost
	next := pc + 1
	regs := &t.regs
	fregs := &t.fregs
	doSwitch := false
	var wake int64
	var switchCost int64

	switch op {
	case isa.Nop:

	// Integer ALU.
	case isa.Add:
		regs[in.Rd] = regs[in.Rs] + regs[in.Rt]
	case isa.Sub:
		regs[in.Rd] = regs[in.Rs] - regs[in.Rt]
	case isa.Mul:
		regs[in.Rd] = regs[in.Rs] * regs[in.Rt]
	case isa.Div:
		if regs[in.Rt] == 0 {
			return sim.runtimeErr(pr, t, pc, "integer division by zero")
		}
		regs[in.Rd] = regs[in.Rs] / regs[in.Rt]
	case isa.Rem:
		if regs[in.Rt] == 0 {
			return sim.runtimeErr(pr, t, pc, "integer remainder by zero")
		}
		regs[in.Rd] = regs[in.Rs] % regs[in.Rt]
	case isa.And:
		regs[in.Rd] = regs[in.Rs] & regs[in.Rt]
	case isa.Or:
		regs[in.Rd] = regs[in.Rs] | regs[in.Rt]
	case isa.Xor:
		regs[in.Rd] = regs[in.Rs] ^ regs[in.Rt]
	case isa.Nor:
		regs[in.Rd] = ^(regs[in.Rs] | regs[in.Rt])
	case isa.Sll:
		regs[in.Rd] = regs[in.Rs] << (uint64(regs[in.Rt]) & 63)
	case isa.Srl:
		regs[in.Rd] = int64(uint64(regs[in.Rs]) >> (uint64(regs[in.Rt]) & 63))
	case isa.Sra:
		regs[in.Rd] = regs[in.Rs] >> (uint64(regs[in.Rt]) & 63)
	case isa.Slt:
		regs[in.Rd] = b2i(regs[in.Rs] < regs[in.Rt])
	case isa.Sltu:
		regs[in.Rd] = b2i(uint64(regs[in.Rs]) < uint64(regs[in.Rt]))

	case isa.Addi:
		regs[in.Rd] = regs[in.Rs] + in.Imm
	case isa.Muli:
		regs[in.Rd] = regs[in.Rs] * in.Imm
	case isa.Andi:
		regs[in.Rd] = regs[in.Rs] & in.Imm
	case isa.Ori:
		regs[in.Rd] = regs[in.Rs] | in.Imm
	case isa.Xori:
		regs[in.Rd] = regs[in.Rs] ^ in.Imm
	case isa.Slli:
		regs[in.Rd] = regs[in.Rs] << (uint64(in.Imm) & 63)
	case isa.Srli:
		regs[in.Rd] = int64(uint64(regs[in.Rs]) >> (uint64(in.Imm) & 63))
	case isa.Srai:
		regs[in.Rd] = regs[in.Rs] >> (uint64(in.Imm) & 63)
	case isa.Slti:
		regs[in.Rd] = b2i(regs[in.Rs] < in.Imm)
	case isa.Li:
		regs[in.Rd] = in.Imm
	case isa.Mov:
		regs[in.Rd] = regs[in.Rs]

	// Register-bank moves and floating point.
	case isa.Fmov:
		fregs[in.Rd] = fregs[in.Rs]
	case isa.Mtf:
		fregs[in.Rd] = prog.BitsToFloat64(regs[in.Rs])
	case isa.Mff:
		regs[in.Rd] = prog.Float64Bits(fregs[in.Rs])
	case isa.Fadd:
		fregs[in.Rd] = fregs[in.Rs] + fregs[in.Rt]
	case isa.Fsub:
		fregs[in.Rd] = fregs[in.Rs] - fregs[in.Rt]
	case isa.Fmul:
		fregs[in.Rd] = fregs[in.Rs] * fregs[in.Rt]
	case isa.Fdiv:
		fregs[in.Rd] = fregs[in.Rs] / fregs[in.Rt]
	case isa.Fneg:
		fregs[in.Rd] = -fregs[in.Rs]
	case isa.Fabs:
		fregs[in.Rd] = math.Abs(fregs[in.Rs])
	case isa.Fsqrt:
		fregs[in.Rd] = math.Sqrt(fregs[in.Rs])
	case isa.Fmin:
		fregs[in.Rd] = math.Min(fregs[in.Rs], fregs[in.Rt])
	case isa.Fmax:
		fregs[in.Rd] = math.Max(fregs[in.Rs], fregs[in.Rt])
	case isa.CvtIF:
		fregs[in.Rd] = float64(regs[in.Rs])
	case isa.CvtFI:
		regs[in.Rd] = int64(fregs[in.Rs])
	case isa.Feq:
		regs[in.Rd] = b2i(fregs[in.Rs] == fregs[in.Rt])
	case isa.Flt:
		regs[in.Rd] = b2i(fregs[in.Rs] < fregs[in.Rt])
	case isa.Fle:
		regs[in.Rd] = b2i(fregs[in.Rs] <= fregs[in.Rt])

	// Control flow.
	case isa.Beq:
		if regs[in.Rs] == regs[in.Rt] {
			next = in.Target
		}
	case isa.Bne:
		if regs[in.Rs] != regs[in.Rt] {
			next = in.Target
		}
	case isa.Blt:
		if regs[in.Rs] < regs[in.Rt] {
			next = in.Target
		}
	case isa.Bge:
		if regs[in.Rs] >= regs[in.Rt] {
			next = in.Target
		}
	case isa.Beqz:
		if regs[in.Rs] == 0 {
			next = in.Target
		}
	case isa.Bnez:
		if regs[in.Rs] != 0 {
			next = in.Target
		}
	case isa.J:
		next = in.Target
	case isa.Jal:
		regs[isa.RRet] = int64(pc + 1)
		next = in.Target
	case isa.Jr:
		next = int32(regs[in.Rs])
		if next < 0 || int(next) >= len(sim.instrs) {
			return sim.runtimeErr(pr, t, pc, "jr to invalid address %d", regs[in.Rs])
		}
	case isa.Halt:
		t.halted = true
		pr.live--
		sim.live--
		if t.crit > 0 {
			pr.critLive--
		}
		if sim.cfg.CollectRunLengths && t.runLen > 0 {
			sim.res.RunLengths.Add(t.runLen)
		}
		if sim.mx != nil {
			sim.mx.EndExec(int(pr.id), ti, now, cost, 0)
		}
		sim.updateNext(pr, now+cost)
		return nil

	// Local memory: serviced without network traffic or switches (§3).
	case isa.Lw, isa.Ld, isa.Flw, isa.Sw, isa.Sd, isa.Fsw:
		addr := regs[in.Rs] + in.Imm
		hi := addr
		if op == isa.Ld || op == isa.Sd {
			hi = addr + 1
		}
		if addr < 0 || hi >= int64(len(t.local)) {
			return sim.runtimeErr(pr, t, pc, "local address %d outside [0,%d)", addr, len(t.local))
		}
		switch op {
		case isa.Lw:
			regs[in.Rd] = t.local[addr]
		case isa.Ld:
			regs[in.Rd] = t.local[addr]
			regs[in.Rd+1] = t.local[addr+1]
		case isa.Flw:
			fregs[in.Rd] = prog.BitsToFloat64(t.local[addr])
		case isa.Sw:
			t.local[addr] = regs[in.Rt]
		case isa.Sd:
			t.local[addr] = regs[in.Rt]
			t.local[addr+1] = regs[in.Rt+1]
		case isa.Fsw:
			t.local[addr] = prog.Float64Bits(fregs[in.Rt])
		}

	// Shared loads (including Fetch-and-Add).
	case isa.LwS, isa.LdS, isa.FlwS, isa.Faa:
		addr := regs[in.Rs] + in.Imm
		hi := addr
		if op == isa.LdS {
			hi = addr + 1
		}
		if addr < 0 || hi >= int64(len(sim.sh)) {
			return sim.runtimeErr(pr, t, pc, "shared address %d outside [0,%d)", addr, len(sim.sh))
		}
		// Data visibility is immediate; latency affects timing only.
		switch op {
		case isa.LwS:
			regs[in.Rd] = sim.sh[addr]
		case isa.LdS:
			regs[in.Rd] = sim.sh[addr]
			regs[in.Rd+1] = sim.sh[addr+1]
		case isa.FlwS:
			fregs[in.Rd] = prog.BitsToFloat64(sim.sh[addr])
		case isa.Faa:
			old := sim.sh[addr]
			sim.sh[addr] += regs[in.Rt]
			regs[in.Rd] = old
		}
		sim.res.SharedLoads++
		if sim.trace != nil {
			sim.trace(TraceEvent{Cycle: now, Proc: pr.id, Thread: t.regs[isa.RTid], PC: pc, Op: op, Addr: addr})
		}
		wake, switchCost, doSwitch = sim.sharedLoadTiming(pr, t, in, addr, now)
		if sim.cfg.CheckInvariants && pr.cache != nil {
			if err := sim.checkCoherence(pr.cache.Line(addr)); err != nil {
				return err
			}
		}

	// Shared stores: fire-and-forget (§2).
	case isa.SwS, isa.SdS, isa.FswS:
		addr := regs[in.Rs] + in.Imm
		hi := addr
		if op == isa.SdS {
			hi = addr + 1
		}
		if addr < 0 || hi >= int64(len(sim.sh)) {
			return sim.runtimeErr(pr, t, pc, "shared address %d outside [0,%d)", addr, len(sim.sh))
		}
		dataBits := net.WordBits
		switch op {
		case isa.SwS:
			sim.sh[addr] = regs[in.Rt]
		case isa.SdS:
			sim.sh[addr] = regs[in.Rt]
			sim.sh[addr+1] = regs[in.Rt+1]
			dataBits = net.DoubleBits
		case isa.FswS:
			sim.sh[addr] = prog.Float64Bits(fregs[in.Rt])
			dataBits = net.DoubleBits
		}
		sim.res.SharedStores++
		if sim.trace != nil {
			sim.trace(TraceEvent{Cycle: now, Proc: pr.id, Thread: t.regs[isa.RTid], PC: pc, Op: op, Addr: addr})
		}
		if pr.cache == nil {
			// No cache: stores write through the network directly.
			sim.record(in, net.WriteReq, dataBits)
			sim.record(in, net.WriteAck, 0)
		} else {
			// Write-back cache: a store owns its line; traffic happens
			// on ownership changes and eventual write-back, not per
			// store.
			sim.cachedStore(pr, in, addr)
			if op == isa.SdS && pr.cache.Line(addr) != pr.cache.Line(addr+1) {
				sim.cachedStore(pr, in, addr+1)
			}
			if sim.cfg.CheckInvariants {
				if err := sim.checkCoherence(pr.cache.Line(addr)); err != nil {
					return err
				}
				if err := sim.checkCoherence(pr.cache.Line(hi)); err != nil {
					return err
				}
			}
		}

	// Multithreading control.
	case isa.Switch:
		forced := sim.cfg.RunLimit > 0 && t.sinceSwitch >= int64(sim.cfg.RunLimit)
		switch {
		case sim.cfg.Model == Ideal:
			sim.res.SkippedSwitches++
		case t.maxReady > now:
			doSwitch, wake = true, t.maxReady
		case forced:
			doSwitch, wake = true, now+cost
			sim.res.ForcedSwitches++
		default:
			sim.res.SkippedSwitches++
		}
	case isa.Use:
		if r := t.regReady[in.Rs]; r > now {
			doSwitch, wake = true, r
		}
	case isa.CritEnter:
		t.crit++
		if t.crit == 1 {
			pr.critLive++
		}
	case isa.CritExit:
		if t.crit > 0 {
			t.crit--
			if t.crit == 0 {
				pr.critLive--
			}
		}

	default:
		return sim.runtimeErr(pr, t, pc, "unimplemented opcode %s", op)
	}

	t.pc = next
	if !doSwitch && pr.live > 1 && sim.cfg.Model != SwitchEveryCycle {
		if in.Spin && op.IsSharedAccess() && t.maxReady <= now {
			// A synchronization spin probe that completed instantly and
			// did not context switch (ideal machine, or a cache hit
			// under the miss-based models) yields voluntarily so
			// round-robin siblings can progress toward the awaited
			// event. The paper assumes real machines avoid spinning
			// altogether (§6.1 footnote 2); without this, a hitting
			// spin loop wedges its processor. The yield is not a
			// latency-driven switch, so it stays out of the switch
			// counts and run-length statistics.
			sim.yieldThread(pr, t, now+cost)
		} else if sim.preempt > 0 && t.sinceSwitch >= sim.preempt {
			// Starvation watchdog for non-spin pathologies.
			sim.yieldThread(pr, t, now+cost)
		}
	}
	if doSwitch {
		sim.takeSwitch(pr, t, wake, switchCost)
	} else if sim.cfg.Model == SwitchEveryCycle {
		// Rotate after every instruction. This is the scheduling
		// mechanism of the model rather than a latency-driven switch,
		// so it stays out of the run-length distribution (which would
		// be identically ~1).
		pr.cur = (pr.cur + 1) % len(pr.threads)
	}
	if sim.mx != nil {
		sim.mx.EndExec(int(pr.id), ti, now, cost, switchCost)
	}
	sim.updateNext(pr, now+cost+switchCost)
	return nil
}

// sharedLoadTiming applies the context-switch policy to a shared load
// issued at cycle now by thread t. It returns the wake cycle and overhead
// if the policy switches immediately.
func (sim *m) sharedLoadTiming(pr *proc, t *thread, in *isa.Instr, addr, now int64) (wake, switchCost int64, taken bool) {
	op := in.Op
	lat := sim.lat
	if sim.congestion != nil {
		lat = sim.congestion.Latency(now)
	}
	if sim.topo != nil {
		// Route the access over the explicit link graph: a request to
		// the address's memory module and the reply back, each paying
		// queueing delay on every congested link.
		reqBits, replyBits := roundTripBits(op)
		lat = sim.topo.RoundTrip(now, int(pr.id), addr, reqBits, replyBits)
	}
	ready := now + lat
	if sim.faults != nil {
		// Fault injection + recovery protocol: the entire drop/retry
		// schedule is resolved at issue time, so the split-phase
		// scoreboard sees only the final completion cycle.
		ready = sim.faults.Deliver(now, lat)
		if sim.mx != nil {
			// The protocol's overhead (timeouts, retries, backoff) is
			// booked as fault-recovery debt: the stall it later causes
			// is split out of plain stalled-on-memory time.
			sim.mx.AddFaultDebt(int(pr.id), pr.cur, sim.faults.LastOverhead())
		}
	}
	if sim.jitter > 0 && sim.lat > 0 {
		// Deterministic per-access congestion deviation: delivery is no
		// longer ordered, but the scoreboard tracks each load's own
		// completion time, so semantics are unaffected.
		h := uint64(addr)*0x9E3779B97F4A7C15 ^ uint64(now)*0x2545F4914F6CDD1D
		h ^= h >> 29
		ready += int64(h%uint64(2*sim.jitter+1)) - sim.jitter
	}
	dataBits := net.WordBits
	if op == isa.LdS || op == isa.FlwS {
		dataBits = net.DoubleBits
	}

	switch sim.cfg.Model {
	case Ideal:
		// Zero latency; still record what the traffic would have been.
		sim.recordUncachedLoad(in, dataBits)
		return 0, 0, false

	case SwitchEveryCycle:
		sim.recordUncachedLoad(in, dataBits)
		// The per-instruction rotation handles the switching; block the
		// thread until the result returns.
		t.wake = ready
		return 0, 0, false

	case SwitchOnLoad:
		sim.recordUncachedLoad(in, dataBits)
		return ready, int64(sim.cfg.SwitchCost), true

	case SwitchOnUse, ExplicitSwitch:
		sim.recordUncachedLoad(in, dataBits)
		if t.window != nil && op != isa.Faa {
			// §5.2 estimate: a load hitting the one-line window is
			// treated as if it had been issued with the reference that
			// established the window, inheriting its completion time.
			if wr, hit := t.window.Probe(addr, ready); hit {
				ready = wr
			}
		}
		sim.markPending(t, in, ready, now)
		return 0, 0, false

	case SwitchOnMiss, SwitchOnUseMiss, ConditionalSwitch:
		if op == isa.Faa {
			// Fetch-and-Add is performed at the memory module, bypasses
			// the cache, and invalidates cached copies of its line.
			sim.record(in, net.FaaReq, net.WordBits)
			sim.record(in, net.FaaReply, net.WordBits)
			sim.faaCoherence(pr, in, addr)
			if sim.cfg.Model == SwitchOnMiss {
				return ready, int64(sim.cfg.SwitchCost), true
			}
			sim.markPending(t, in, ready, now)
			return 0, 0, false
		}
		hit := pr.cache.Lookup(addr)
		if !hit {
			sim.fillLine(pr, in, addr)
		}
		if op == isa.LdS && pr.cache.Line(addr) != pr.cache.Line(addr+1) {
			// A double straddling a line boundary probes both lines.
			hit2 := pr.cache.Lookup(addr + 1)
			if !hit2 {
				sim.fillLine(pr, in, addr+1)
			}
			hit = hit && hit2
		}
		if hit {
			if sim.mx != nil {
				sim.mx.MarkHit() // a continuing hit, not plain running
			}
			return 0, 0, false
		}
		if sim.cfg.Model == SwitchOnMiss {
			return ready, int64(sim.cfg.SwitchCost), true
		}
		// SwitchOnUseMiss, ConditionalSwitch: split phase.
		sim.markPending(t, in, ready, now)
		return 0, 0, false
	}
	return 0, 0, false
}

// markPending records a split-phase load's completion time in the
// destination-register scoreboard.
func (sim *m) markPending(t *thread, in *isa.Instr, ready, now int64) {
	if ready <= now {
		return
	}
	switch in.Op {
	case isa.LwS, isa.Faa:
		t.regReady[in.Rd] = ready
	case isa.LdS:
		t.regReady[in.Rd] = ready
		t.regReady[in.Rd+1] = ready
	case isa.FlwS:
		t.fregReady[in.Rd] = ready
	}
	if ready > t.maxReady {
		t.maxReady = ready
	}
}

// sourceReady checks whether any source register of in is still pending
// at cycle now. Switch and Use handle their own waiting.
func (sim *m) sourceReady(t *thread, in *isa.Instr, now int64) (ready int64, blocked bool) {
	if in.Op == isa.Switch || in.Op == isa.Use {
		return 0, false
	}
	sim.srcBuf = in.IntSources(sim.srcBuf[:0])
	for _, r := range sim.srcBuf {
		if t.regReady[r] > now && t.regReady[r] > ready {
			ready = t.regReady[r]
		}
	}
	sim.srcBuf = in.FPSources(sim.srcBuf[:0])
	for _, r := range sim.srcBuf {
		if t.fregReady[r] > now && t.fregReady[r] > ready {
			ready = t.fregReady[r]
		}
	}
	return ready, ready > 0
}

// takeSwitch performs a context switch: record the thread's run-length,
// block it until wake, charge overhead, and advance round-robin order.
// Outstanding loads newer than the one waited on (possible under the
// use-based models) keep their scoreboard entries.
func (sim *m) takeSwitch(pr *proc, t *thread, wake, switchCost int64) {
	sim.res.TakenSwitches++
	if sim.cfg.CollectRunLengths && t.runLen > 0 {
		sim.res.RunLengths.Add(t.runLen)
	}
	t.runLen = 0
	t.sinceSwitch = 0
	if wake > t.wake {
		t.wake = wake
	}
	pr.switchOverhead += switchCost
	if pr.resume >= 0 {
		// Return the CPU to the thread a critical-region preemption
		// displaced rather than the round-robin successor.
		pr.cur = pr.resume
		pr.resume = -1
		return
	}
	pr.cur = (pr.cur + 1) % len(pr.threads)
}

// yieldThread rotates away from a thread without recording a context
// switch: used for spin-probe yields and the starvation watchdog, which
// are scheduling hygiene rather than latency-hiding switches.
func (sim *m) yieldThread(pr *proc, t *thread, wake int64) {
	sim.res.PreemptSwitches++
	if wake > t.wake {
		t.wake = wake
	}
	t.sinceSwitch = 0
	pr.cur = (pr.cur + 1) % len(pr.threads)
}

// updateNext recomputes the earliest cycle at which pr can execute.
func (sim *m) updateNext(pr *proc, earliest int64) {
	if pr.live == 0 {
		sim.wakes[pr.id] = never
		return
	}
	best := int64(never)
	for i := range pr.threads {
		t := &pr.threads[i]
		if t.halted {
			continue
		}
		r := t.wake
		if r < earliest {
			r = earliest
		}
		if r < best {
			best = r
		}
	}
	sim.wakes[pr.id] = best
}

// lineBits is the data payload of a full line transfer.
func (sim *m) lineBits() int { return sim.lineSz * net.DoubleBits }

// fillLine services a cache miss: flush a remote dirty owner if any,
// fetch the line, install it (writing back a dirty victim), and keep the
// directory current.
func (sim *m) fillLine(pr *proc, in *isa.Instr, addr int64) {
	line := pr.cache.Line(addr)
	sim.resolveDirty(pr, in, line, false)
	sim.record(in, net.LineReq, 0)
	sim.record(in, net.LineReply, sim.lineBits())
	sim.installLine(pr, in, addr)
}

// installLine puts the line holding addr into pr's cache, accounting the
// write-back of a dirty victim.
func (sim *m) installLine(pr *proc, in *isa.Instr, addr int64) {
	evicted, evictedDirty, did := pr.cache.Fill(addr)
	if did {
		sim.dir.RemoveSharer(evicted, pr.id)
		if evictedDirty {
			sim.record(in, net.WriteBack, sim.lineBits())
			delete(sim.dirtyOwner, evicted)
		}
	}
	sim.dir.AddSharer(pr.cache.Line(addr), pr.id)
}

// resolveDirty handles a remote processor holding line modified: the
// owner writes the line back; on a read it keeps a clean copy, on a
// write/Fetch-and-Add it is invalidated too.
func (sim *m) resolveDirty(pr *proc, in *isa.Instr, line int64, invalidate bool) {
	owner, ok := sim.dirtyOwner[line]
	if !ok || owner == pr.id {
		return
	}
	oc := sim.procs[owner].cache
	addr := line * int64(sim.lineSz)
	sim.record(in, net.Inval, 0) // flush request to the owner
	sim.record(in, net.WriteBack, sim.lineBits())
	if invalidate {
		oc.Invalidate(addr)
		sim.dir.RemoveSharer(line, owner)
	} else {
		oc.CleanLine(addr)
	}
	delete(sim.dirtyOwner, line)
}

// cachedStore applies write-back coherence to a shared store by pr into
// the line holding addr. A store to an already-owned line is free; an
// upgrade invalidates remote sharers; a store miss write-allocates.
func (sim *m) cachedStore(pr *proc, in *isa.Instr, addr int64) {
	line := pr.cache.Line(addr)
	if pr.cache.IsDirty(addr) {
		return // already owned: the common, free case
	}
	if pr.cache.Contains(addr) {
		// Upgrade: invalidate the other sharers.
		sim.invalidateRemotes(pr, in, line)
		pr.cache.SetDirty(addr)
		sim.dirtyOwner[line] = pr.id
		return
	}
	// Store miss: flush and invalidate any remote owner and sharers,
	// then write-allocate.
	sim.resolveDirty(pr, in, line, true)
	sim.invalidateRemotes(pr, in, line)
	sim.record(in, net.LineReq, 0)
	sim.record(in, net.LineReply, sim.lineBits())
	sim.installLine(pr, in, addr)
	pr.cache.SetDirty(addr)
	sim.dirtyOwner[line] = pr.id
}

// invalidateRemotes invalidates every remote cached copy of line,
// counting one invalidation and one acknowledgement per copy — the §6.1
// coherency overhead.
func (sim *m) invalidateRemotes(pr *proc, in *isa.Instr, line int64) {
	sim.shrBuf = sim.dir.Sharers(line, sim.shrBuf[:0])
	addr := line * int64(sim.lineSz)
	for _, p := range sim.shrBuf {
		if p == pr.id {
			continue
		}
		sim.procs[p].cache.Invalidate(addr)
		sim.dir.RemoveSharer(line, p)
		sim.record(in, net.Inval, 0)
		sim.record(in, net.InvalAck, 0)
	}
}

// faaCoherence keeps caches coherent with a Fetch-and-Add performed at
// the memory module: any dirty copy (even the requester's) is written
// back and every cached copy is invalidated.
func (sim *m) faaCoherence(pr *proc, in *isa.Instr, addr int64) {
	line := pr.cache.Line(addr)
	if owner, ok := sim.dirtyOwner[line]; ok {
		oc := sim.procs[owner].cache
		if owner != pr.id {
			sim.record(in, net.Inval, 0)
		}
		sim.record(in, net.WriteBack, sim.lineBits())
		oc.Invalidate(line * int64(sim.lineSz))
		sim.dir.RemoveSharer(line, owner)
		delete(sim.dirtyOwner, line)
	}
	sim.shrBuf = sim.dir.Sharers(line, sim.shrBuf[:0])
	for _, p := range sim.shrBuf {
		sim.procs[p].cache.Invalidate(line * int64(sim.lineSz))
		sim.dir.RemoveSharer(line, p)
		if p != pr.id {
			sim.record(in, net.Inval, 0)
			sim.record(in, net.InvalAck, 0)
		}
	}
}

// checkCoherence validates the protocol invariants for line after a
// coherence action (Config.CheckInvariants):
//
//  1. a line with a dirty owner is cached dirty by that owner and by no
//     other processor;
//  2. every directory sharer actually holds the line;
//  3. no cache holds a line dirty without being its registered owner.
func (sim *m) checkCoherence(line int64) error {
	addr := line * int64(sim.lineSz)
	owner, hasOwner := sim.dirtyOwner[line]
	sim.shrBuf = sim.dir.Sharers(line, sim.shrBuf[:0])
	for _, p := range sim.shrBuf {
		if !sim.procs[p].cache.Contains(addr) {
			return fmt.Errorf("machine: coherence: directory lists proc %d for line %d but its cache lacks it", p, line)
		}
	}
	if hasOwner {
		if !sim.procs[owner].cache.IsDirty(addr) {
			return fmt.Errorf("machine: coherence: line %d owner %d holds it clean", line, owner)
		}
		if len(sim.shrBuf) != 1 || sim.shrBuf[0] != owner {
			return fmt.Errorf("machine: coherence: dirty line %d has sharers %v (owner %d)", line, sim.shrBuf, owner)
		}
	}
	for pi := range sim.procs {
		pr := &sim.procs[pi]
		if pr.cache.IsDirty(addr) && (!hasOwner || owner != pr.id) {
			return fmt.Errorf("machine: coherence: proc %d holds line %d dirty without ownership", pr.id, line)
		}
	}
	return nil
}

// roundTripBits returns the request and reply message sizes of a
// shared access, for routing over an explicit topology.
func roundTripBits(op isa.Op) (reqBits, replyBits int64) {
	switch op {
	case isa.Faa:
		return net.Bits(net.FaaReq, net.WordBits), net.Bits(net.FaaReply, net.WordBits)
	case isa.LdS, isa.FlwS:
		return net.Bits(net.ReadReq, 0), net.Bits(net.ReadReply, net.DoubleBits)
	}
	return net.Bits(net.ReadReq, 0), net.Bits(net.ReadReply, net.WordBits)
}

// recordUncachedLoad accounts an uncached shared read or Fetch-and-Add.
func (sim *m) recordUncachedLoad(in *isa.Instr, dataBits int) {
	if in.Op == isa.Faa {
		sim.record(in, net.FaaReq, net.WordBits)
		sim.record(in, net.FaaReply, net.WordBits)
		return
	}
	sim.record(in, net.ReadReq, 0)
	sim.record(in, net.ReadReply, dataBits)
}

// record adds a message to the traffic accounting, routing spin-loop
// traffic to the excluded bucket. All traffic — spinning included —
// loads the congestion model: the network carries it either way.
func (sim *m) record(in *isa.Instr, mt net.MsgType, dataBits int) {
	if sim.congestion != nil {
		sim.congestion.Add(sim.nowApprox, net.Bits(mt, dataBits))
	}
	if in.Spin {
		sim.res.Traffic.AddSpin(mt, dataBits)
		return
	}
	sim.res.Traffic.Add(mt, dataBits)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
