package machine

import (
	"fmt"
	"strings"

	"mtsim/internal/metrics"
	"mtsim/internal/net"
	"mtsim/internal/stats"
)

// Result reports one simulation run.
type Result struct {
	Config Config
	// Cycles is the length of the forked phase: the cycle at which the
	// last thread halted.
	Cycles int64

	// Per-machine cycle accounting, summed over processors. For every
	// processor, Busy + Idle + SwitchOverhead == Cycles (a processor
	// that has finished all its threads counts Idle).
	Busy           int64
	Idle           int64
	SwitchOverhead int64

	// Instrs is the number of instructions executed (multi-cycle
	// instructions count once).
	Instrs int64
	// SharedLoads / SharedStores count dynamic shared accesses
	// (Fetch-and-Add counts as a load).
	SharedLoads  int64
	SharedStores int64

	// TakenSwitches counts context switches actually performed;
	// SkippedSwitches counts Switch instructions ignored because every
	// load of their group hit (conditional-switch) or nothing was
	// pending. ForcedSwitches counts run-limit overrides (§6.2).
	TakenSwitches   int64
	SkippedSwitches int64
	ForcedSwitches  int64

	// PreemptSwitches counts watchdog preemptions (Config.PreemptLimit).
	PreemptSwitches int64
	// SpinProbes counts executed spin-flagged shared accesses
	// (synchronization busy-waiting volume).
	SpinProbes int64
	// CritPreempts counts times the scheduler moved to a critical-region
	// thread in preference to (or instead of) the round-robin choice
	// (Config.CritPriority).
	CritPreempts int64

	// ImplicitWaits counts reads of still-pending registers outside a
	// Use/Switch — the hardware stalls correctly, but under
	// explicit-switch the optimizer should have prevented them, so
	// tests assert this stays zero for optimized programs.
	ImplicitWaits int64

	// RunLengths is the distribution of busy cycles between taken
	// context switches (only filled when Config.CollectRunLengths).
	RunLengths stats.Hist

	// Traffic is the network message accounting (spin traffic recorded
	// separately inside).
	Traffic net.Traffic

	// Cache statistics, aggregated over processors (cache models only).
	CacheHits   int64
	CacheMisses int64
	CacheInvals int64

	// Grouping-window statistics (§5.2 runs only).
	WindowHits   int64
	WindowProbes int64

	// Congestion-model observations (Config.Congestion runs only).
	NetPeakUtilization float64
	NetFinalLatency    int64

	// Topology-model observations (Config.Topology runs only): the
	// largest round trip routed, the worst per-link queueing delay, and
	// the number of round trips routed.
	TopoMaxLatency int64
	TopoPeakQueue  int64
	TopoRequests   int64

	// Faults is the fault-injection and recovery-protocol accounting
	// (Config.Faults runs only).
	Faults net.FaultStats

	// ProcBusy is the per-processor useful busy-cycle breakdown
	// (synchronization spinning excluded), for load balance analysis
	// (the paper's water discussion, §3.2).
	ProcBusy []int64

	// Metrics is the cycle-accounting observability record: exact
	// per-processor, per-thread state timelines plus counters. Only
	// filled when Config.CollectMetrics; nil otherwise.
	Metrics *metrics.RunMetrics
}

// Imbalance returns max/mean of per-processor busy cycles: 1.0 is a
// perfect static balance; water off its divisibility points shows the
// paper's erratic Figure 2 behaviour here.
func (r *Result) Imbalance() float64 {
	if len(r.ProcBusy) == 0 {
		return 0
	}
	var max, sum int64
	for _, b := range r.ProcBusy {
		sum += b
		if b > max {
			max = b
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(r.ProcBusy))
	return float64(max) / mean
}

// Utilization is the fraction of processor cycles spent executing
// instructions.
func (r *Result) Utilization() float64 {
	total := r.Cycles * int64(r.Config.Procs)
	if total == 0 {
		return 0
	}
	return float64(r.Busy) / float64(total)
}

// Efficiency returns the paper's efficiency metric given the cycle count
// of the one-processor zero-latency baseline run: speedup / processors =
// baseline / (P * cycles). A non-positive baseline or cycle count — a
// degenerate or failed baseline run — yields 0 rather than a zero,
// negative or NaN-propagating ratio.
func (r *Result) Efficiency(baselineCycles int64) float64 {
	if baselineCycles <= 0 || r.Cycles <= 0 || r.Config.Procs <= 0 {
		return 0
	}
	return float64(baselineCycles) / (float64(r.Cycles) * float64(r.Config.Procs))
}

// Speedup returns baseline / cycles, with the same degenerate-input
// guard as Efficiency.
func (r *Result) Speedup(baselineCycles int64) float64 {
	if baselineCycles <= 0 || r.Cycles <= 0 {
		return 0
	}
	return float64(baselineCycles) / float64(r.Cycles)
}

// CacheHitRate is the load hit fraction of the shared-data caches.
func (r *Result) CacheHitRate() float64 {
	t := r.CacheHits + r.CacheMisses
	if t == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(t)
}

// WindowHitRate is the §5.2 grouping-window hit fraction.
func (r *Result) WindowHitRate() float64 {
	if r.WindowProbes == 0 {
		return 0
	}
	return float64(r.WindowHits) / float64(r.WindowProbes)
}

// MeanRunLength is the mean number of busy cycles between taken switches.
func (r *Result) MeanRunLength() float64 { return r.RunLengths.Mean() }

// GroupingFactor is the mean number of shared loads issued per taken
// context switch — the paper's "level of grouping achieved" (Table 4).
func (r *Result) GroupingFactor() float64 {
	if r.TakenSwitches == 0 {
		return 0
	}
	return float64(r.SharedLoads) / float64(r.TakenSwitches)
}

// BitsPerCycle is the per-processor network bandwidth demand (§6.1).
func (r *Result) BitsPerCycle() float64 {
	return r.Traffic.PerCycle(r.Cycles, r.Config.Procs)
}

// TrafficBreakdown renders the per-message-type network accounting.
func (r *Result) TrafficBreakdown() string {
	var b strings.Builder
	b.WriteString("message type  count  bits\n")
	for t := 0; t < net.NumMsgTypes; t++ {
		mt := net.MsgType(t)
		if r.Traffic.Count[mt] == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-12s %6d %6d\n", mt, r.Traffic.Count[mt], r.Traffic.BitsOf(mt))
	}
	if r.Traffic.SpinCount > 0 {
		fmt.Fprintf(&b, "%-12s %6d %6d (excluded from bandwidth)\n", "spin", r.Traffic.SpinCount, r.Traffic.SpinBits)
	}
	return b.String()
}

// Summary renders a human-readable report.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "model=%s procs=%d threads=%d latency=%d\n",
		r.Config.Model, r.Config.Procs, r.Config.Threads, r.Config.Latency)
	fmt.Fprintf(&b, "cycles=%d instrs=%d utilization=%.3f\n", r.Cycles, r.Instrs, r.Utilization())
	fmt.Fprintf(&b, "busy=%d idle=%d switch-overhead=%d\n", r.Busy, r.Idle, r.SwitchOverhead)
	fmt.Fprintf(&b, "shared: loads=%d stores=%d\n", r.SharedLoads, r.SharedStores)
	fmt.Fprintf(&b, "switches: taken=%d skipped=%d forced=%d implicit-waits=%d\n",
		r.TakenSwitches, r.SkippedSwitches, r.ForcedSwitches, r.ImplicitWaits)
	if r.PreemptSwitches > 0 || r.SpinProbes > 0 || r.CritPreempts > 0 {
		fmt.Fprintf(&b, "scheduling: spin-probes=%d yields/watchdog=%d crit-preempts=%d imbalance=%.2f\n",
			r.SpinProbes, r.PreemptSwitches, r.CritPreempts, r.Imbalance())
	}
	if r.Config.Congestion.Enabled {
		fmt.Fprintf(&b, "network-model: peak-utilization=%.2f final-latency=%d\n",
			r.NetPeakUtilization, r.NetFinalLatency)
	}
	if r.Config.Topology.Enabled() {
		fmt.Fprintf(&b, "topology: kind=%s nodes=%d round-trips=%d max-latency=%d peak-queue=%d\n",
			r.Config.Topology.Kind, r.Config.Topology.Nodes, r.TopoRequests, r.TopoMaxLatency, r.TopoPeakQueue)
	}
	if r.Config.Faults.Enabled {
		fmt.Fprintf(&b, "faults: drops=%d dups=%d delays=%d timeouts=%d retries=%d backoff-cycles=%d hot=%d exhausted=%d\n",
			r.Faults.Drops, r.Faults.Dups, r.Faults.Delays, r.Faults.Timeouts,
			r.Faults.Retries, r.Faults.BackoffCycles, r.Faults.HotAccesses, r.Faults.Exhausted)
	}
	if r.RunLengths.N > 0 {
		fmt.Fprintf(&b, "run-length: mean=%.1f max=%d grouping=%.2f\n",
			r.MeanRunLength(), r.RunLengths.Max, r.GroupingFactor())
	}
	if r.Config.Model.UsesCache() {
		fmt.Fprintf(&b, "cache: hits=%d misses=%d rate=%.3f invals=%d\n",
			r.CacheHits, r.CacheMisses, r.CacheHitRate(), r.CacheInvals)
	}
	if r.WindowProbes > 0 {
		fmt.Fprintf(&b, "group-window: hits=%d probes=%d rate=%.3f\n",
			r.WindowHits, r.WindowProbes, r.WindowHitRate())
	}
	fmt.Fprintf(&b, "network: %.3f bits/cycle (%d msgs, spin excluded: %d msgs)\n",
		r.BitsPerCycle(), r.Traffic.Messages(), r.Traffic.SpinCount)
	return b.String()
}
