package machine_test

import (
	"fmt"
	"strings"
	"testing"

	"mtsim/internal/isa"
	"mtsim/internal/machine"
	"mtsim/internal/prog"
)

// TestSubroutineCalls exercises Jal/Jr: a leaf routine computes x*x+1,
// called from a loop; the link register convention must survive context
// switches between call and return.
func TestSubroutineCalls(t *testing.T) {
	b := prog.NewBuilder("subs")
	out := b.Shared("out", 16)
	b.Li(4, out.Base)
	b.Li(5, 0) // i
	b.Label("loop")
	b.Mov(8, 5) // argument in r8
	b.Jal("square1")
	b.Add(10, 4, 5)
	b.SwS(9, 10, 0) // out[i] = result (r9)
	b.Addi(5, 5, 1)
	b.Slti(11, 5, 16)
	b.Bnez(11, "loop")
	b.Halt()
	// square1(r8) -> r9 = r8*r8 + mem[0] (a shared load inside the
	// callee, so the callee context switches under switch-on-load).
	b.Label("square1")
	b.Mul(9, 8, 8)
	b.LwS(12, 4, 0) // out[0] (initialized to 1 by Init)
	b.Add(9, 9, 12)
	b.Jr(isa.RRet)
	p := b.MustBuild()

	init := func(sh *machine.Shared) { sh.SetWordAt("out", 0, 1) }
	check := func(sh *machine.Shared) error {
		// out[0] is overwritten by i=0's result (0*0+1 = 1), so the
		// callee's load keeps seeing 1.
		for i := int64(0); i < 16; i++ {
			want := i*i + 1
			if got := sh.WordAt("out", i); got != want {
				return fmt.Errorf("out[%d] = %d, want %d", i, got, want)
			}
		}
		return nil
	}
	for _, m := range []machine.Model{machine.Ideal, machine.SwitchOnLoad, machine.SwitchOnUse, machine.SwitchEveryCycle} {
		if _, err := machine.RunChecked(machine.Config{Model: m, Threads: 3, Latency: 40}, p, init, check); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
}

// TestSwitchEveryCycleInterleaves: the HEP-style model must rotate among
// ready threads on every instruction, which shows up as near-equal
// progress: with two infinite-loop-free threads of equal length, both
// halt within a few cycles of each other.
func TestSwitchEveryCycleInterleaves(t *testing.T) {
	b := prog.NewBuilder("even")
	marks := b.Shared("marks", 2)
	b.Li(4, 0)
	b.Li(5, 500)
	b.Label("loop")
	b.Addi(4, 4, 1)
	b.Blt(4, 5, "loop")
	b.Li(6, marks.Base)
	b.Add(6, 6, isa.RTid)
	b.SwS(4, 6, 0)
	b.Halt()
	p := b.MustBuild()
	res, err := machine.Run(machine.Config{Model: machine.SwitchEveryCycle, Threads: 2}, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Two interleaved 1000-instruction threads: total span ~2x one
	// thread, not 1x then 1x (which a non-interleaving scheduler with a
	// final spurt would also give — so check busy is exact too).
	if res.Busy != res.Cycles {
		t.Errorf("busy %d != cycles %d: the single processor should never idle", res.Busy, res.Cycles)
	}
}

// TestTrafficBreakdownRenders covers the per-type accounting report.
func TestTrafficBreakdownRenders(t *testing.T) {
	p := buildCounter(5)
	res, err := machine.Run(machine.Config{Procs: 2, Threads: 2, Model: machine.SwitchOnLoad}, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := res.TrafficBreakdown()
	if out == "" {
		t.Fatal("empty breakdown")
	}
	for _, want := range []string{"faa-req", "faa-reply"} {
		if !strings.Contains(out, want) {
			t.Errorf("breakdown missing %q:\n%s", want, out)
		}
	}
}
