package machine_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"mtsim/internal/app"
	"mtsim/internal/apps"
	"mtsim/internal/isa"
	"mtsim/internal/machine"
	"mtsim/internal/net"
	"mtsim/internal/par"
	"mtsim/internal/prog"
)

// buildDispatchTorture returns a program that crosses every compiled/
// interpreted boundary the engine has: a local-memory self-loop (the
// unrolled-trace fast path), a branch into the interior of a fusible
// run, a jal/jr subroutine (dynamic-jump terminal), a division whose
// divisor the caller controls (zero = mid-trace fault), shared loads
// and stores (interpreter slow path), and a spin lock (probe yields).
func buildDispatchTorture(nloop, divisor int64) *prog.Program {
	b := prog.NewBuilder("dispatch-torture")
	acc := b.Shared("acc", 4)
	b.Local("buf", 32)
	lk := par.AllocLock(b, "lock")

	// Local self-loop: buf[i] = i*3 + tid.
	b.Li(4, 0)     // i
	b.Li(5, nloop) // trip count
	b.Li(6, 0)     // accumulator
	b.Label("loop")
	b.Muli(7, 4, 3)
	b.Add(7, 7, isa.RTid)
	b.Sw(7, 4, 0)
	b.Lw(8, 4, 0)
	b.Add(6, 6, 8)
	b.Addi(4, 4, 1)
	b.Blt(4, 5, "loop")

	// Branch into the interior of the fusible run below: the first
	// pass enters at "entry", later passes branch back to "interior",
	// which is mid-run and therefore mid-trace for traces rooted at
	// "entry".
	b.Li(9, 2) // pass counter
	b.Label("entry")
	b.Addi(6, 6, 1)
	b.Label("interior")
	b.Xori(6, 6, 5)
	b.Slli(10, 6, 1)
	b.Srai(10, 10, 1)
	b.Addi(9, 9, -1)
	b.Bnez(9, "interior")

	// Subroutine via jal/jr: doubles r6.
	b.Jal("double")

	// Division with a caller-controlled divisor; zero faults mid-trace.
	b.Li(11, divisor)
	b.Div(12, 6, 11)
	b.Rem(13, 6, 11)

	// FP path.
	b.Mtf(1, 10)
	b.CvtIF(2, 12)
	b.Fadd(3, 1, 2)
	b.CvtFI(14, 3)

	// Shared accumulate under a spin lock.
	b.Li(20, lk.Base)
	par.LockAcquire(b, 20, 0, 21, 22)
	b.Li(15, acc.Base)
	b.LwS(16, 15, 0)
	b.Add(16, 16, 6)
	b.Add(16, 16, 14)
	b.SwS(16, 15, 0)
	par.LockRelease(b, 20, 0, 21, 22)
	b.Halt()

	b.Label("double")
	b.Add(6, 6, 6)
	b.Jr(isa.RRet)
	return b.MustBuild()
}

// resultJSON renders a Result for comparison with the dispatch mode
// normalized away — it is the one config field allowed to differ.
func resultJSON(t *testing.T, res *machine.Result) string {
	t.Helper()
	res.Config.DispatchMode = machine.DispatchAuto
	buf, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// compiledMode returns the mode that exercises the engine for a model:
// switch-every-cycle rejects an explicit DispatchCompiled (nothing to
// fuse), so parity for it goes through auto's interpreter fallback.
func compiledMode(model machine.Model) machine.DispatchMode {
	if model == machine.SwitchEveryCycle {
		return machine.DispatchAuto
	}
	return machine.DispatchCompiled
}

// runDispatch runs p under the given dispatch mode and returns the
// normalized result JSON and the error string ("" when nil); a faulting
// run must fault identically under both engines.
func runDispatch(t *testing.T, cfg machine.Config, p *prog.Program, mode machine.DispatchMode) (string, string) {
	t.Helper()
	cfg.DispatchMode = mode
	res, err := machine.Run(cfg, p, nil)
	if err != nil {
		return "", err.Error()
	}
	return resultJSON(t, res), ""
}

// FuzzCompiledVsInterpreted is the engine's differential oracle: for
// fuzzed machine shapes (model, geometry, latency, preemption, faults,
// network topology) and fuzzed program behavior (loop trip counts, a
// possibly-zero divisor), the compiled engine must produce the
// byte-identical Result — or the byte-identical error — as the
// interpreter.
func FuzzCompiledVsInterpreted(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(2), uint8(2), uint16(16), int16(0), false, int64(3), uint8(9), 0.0, uint8(0))
	f.Add(uint64(42), uint8(3), uint8(3), uint8(2), uint16(200), int16(64), true, int64(0), uint8(4), 0.0, uint8(0))
	f.Add(uint64(7), uint8(5), uint8(1), uint8(4), uint16(80), int16(-1), false, int64(-5), uint8(40), 0.2, uint8(0))
	f.Add(uint64(99), uint8(6), uint8(2), uint8(1), uint16(4), int16(17), true, int64(1), uint8(70), 0.05, uint8(0))
	// Routed topologies: shared round trips go through the link queues,
	// so trace timing depends on contention state the engines must agree on.
	f.Add(uint64(5), uint8(2), uint8(3), uint8(3), uint16(60), int16(0), false, int64(3), uint8(30), 0.0, uint8(1))
	f.Add(uint64(11), uint8(4), uint8(2), uint8(2), uint16(90), int16(0), true, int64(7), uint8(50), 0.1, uint8(2))
	f.Add(uint64(23), uint8(3), uint8(4), uint8(2), uint16(40), int16(9), false, int64(2), uint8(20), 0.0, uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, modelIdx, procs, threads uint8, latency uint16, preempt int16, crit bool, divisor int64, nloop uint8, rate float64, topoIdx uint8) {
		model := machine.Model(int(modelIdx) % machine.NumModels)
		if math.IsNaN(rate) || math.IsInf(rate, 0) || rate < 0 {
			rate = 0
		}
		if rate > 0.25 {
			rate = 0.25
		}
		kind := net.TopologyKind(int(topoIdx) % net.NumTopologies)
		if model == machine.Ideal {
			kind = net.TopoConstant // routed topologies are rejected on the ideal machine
		}
		cfg := machine.Config{
			Procs:        1 + int(procs)%4,
			Threads:      1 + int(threads)%4,
			Model:        model,
			Latency:      int(latency) % 256,
			PreemptLimit: int(preempt),
			CritPriority: crit,
		}
		cfg.Topology = net.TopologyConfig{Kind: kind}
		if rate > 0 {
			cfg.Faults = net.FaultConfig{
				Enabled: true, Seed: seed,
				DropRate: rate / 2, DelayRate: rate,
			}
		}
		p := buildDispatchTorture(1+int64(nloop)%100, divisor)

		wantJSON, wantErr := runDispatch(t, cfg, p, machine.DispatchInterpreted)
		gotJSON, gotErr := runDispatch(t, cfg, p, compiledMode(model))
		if gotErr != wantErr {
			t.Fatalf("error mismatch:\ncompiled:    %q\ninterpreted: %q", gotErr, wantErr)
		}
		if gotJSON != wantJSON {
			t.Errorf("result mismatch:\ncompiled:    %s\ninterpreted: %s", gotJSON, wantJSON)
		}
	})
}

// TestDispatchModesAgreeAcrossModels pins the differential contract on
// every model deterministically (the fuzzer samples; this enumerates).
func TestDispatchModesAgreeAcrossModels(t *testing.T) {
	p := buildDispatchTorture(25, 3)
	for _, model := range allModels() {
		for _, threads := range []int{1, 3} {
			t.Run(fmt.Sprintf("%s/t%d", model, threads), func(t *testing.T) {
				cfg := machine.Config{Procs: 3, Threads: threads, Model: model, Latency: 60}
				wantJSON, wantErr := runDispatch(t, cfg, p, machine.DispatchInterpreted)
				gotJSON, gotErr := runDispatch(t, cfg, p, compiledMode(model))
				if gotErr != wantErr || gotJSON != wantJSON {
					t.Errorf("compiled differs from interpreted:\ncompiled:    %s%s\ninterpreted: %s%s",
						gotJSON, gotErr, wantJSON, wantErr)
				}
			})
		}
	}
}

// TestDispatchModesAgreeOnKernelTopologies runs the irregular kernels
// — whose shared-access streams are data-dependent — on every routed
// topology and asserts compiled/interpreted byte-identity, with each
// run also passing the kernel's own host-reference check.
func TestDispatchModesAgreeOnKernelTopologies(t *testing.T) {
	for _, name := range apps.IrregularNames() {
		a := apps.MustNew(name, app.Quick)
		p, err := a.ProgramFor(machine.SwitchOnLoad)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range []net.TopologyKind{net.TopoMesh, net.TopoFatTree, net.TopoDragonfly} {
			t.Run(fmt.Sprintf("%s/%s", name, kind), func(t *testing.T) {
				cfg := machine.Config{Procs: 4, Threads: 2, Model: machine.SwitchOnLoad, Latency: 64}
				cfg.Topology = net.TopologyConfig{Kind: kind}
				run := func(mode machine.DispatchMode) string {
					c := cfg
					c.DispatchMode = mode
					res, err := machine.RunChecked(c, p, a.Init, a.Check)
					if err != nil {
						t.Fatalf("%s: %v", mode, err)
					}
					return resultJSON(t, res)
				}
				want := run(machine.DispatchInterpreted)
				if got := run(machine.DispatchCompiled); got != want {
					t.Errorf("compiled differs from interpreted:\ncompiled:    %s\ninterpreted: %s", got, want)
				}
			})
		}
	}
}

// TestDispatchFaultParity: a mid-trace fault must surface the identical
// error under both engines — the trap-before-effect contract means the
// interpreter re-executes the faulting instruction and produces it.
func TestDispatchFaultParity(t *testing.T) {
	cases := map[string]*prog.Program{
		"div-zero": buildDispatchTorture(5, 0),
		"local-oob": func() *prog.Program {
			b := prog.NewBuilder("oob")
			b.Local("buf", 4)
			b.Li(4, 0)
			b.Label("loop")
			b.Addi(4, 4, 1)
			b.Sw(4, 4, 0) // walks off the end of buf on iteration 4
			b.J("loop")
			return b.MustBuild()
		}(),
		"bad-jr": func() *prog.Program {
			b := prog.NewBuilder("badjr")
			b.Li(4, 11)
			b.Addi(4, 4, 1000)
			b.Jr(4)
			b.Halt()
			return b.MustBuild()
		}(),
	}
	for name, p := range cases {
		t.Run(name, func(t *testing.T) {
			cfg := machine.Config{Procs: 2, Threads: 2, Model: machine.SwitchOnLoad, Latency: 20}
			_, wantErr := runDispatch(t, cfg, p, machine.DispatchInterpreted)
			_, gotErr := runDispatch(t, cfg, p, machine.DispatchCompiled)
			if wantErr == "" {
				t.Fatal("interpreted run did not fault, want a runtime fault")
			}
			if gotErr != wantErr {
				t.Errorf("compiled error = %q, want %q", gotErr, wantErr)
			}
		})
	}
}

// TestDispatchFaultRecoveryParity drives the network fault-injection
// recovery protocol (timeout, retry, backoff) under both engines: the
// retried accesses re-enter compiled chains after each recovery, and
// the results must stay byte-identical.
func TestDispatchFaultRecoveryParity(t *testing.T) {
	p := buildDispatchTorture(30, 7)
	for _, seed := range []uint64{1, 17, 333} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := machine.Config{
				Procs: 3, Threads: 2, Model: machine.SwitchOnUse, Latency: 50,
				Faults: net.FaultConfig{
					Enabled: true, Seed: seed,
					DropRate: 0.1, DelayRate: 0.2,
				},
			}
			wantJSON, wantErr := runDispatch(t, cfg, p, machine.DispatchInterpreted)
			gotJSON, gotErr := runDispatch(t, cfg, p, machine.DispatchCompiled)
			if gotErr != wantErr || gotJSON != wantJSON {
				t.Errorf("compiled differs from interpreted under faults:\ncompiled:    %s%s\ninterpreted: %s%s",
					gotJSON, gotErr, wantJSON, wantErr)
			}
		})
	}
}

// TestRunUntilPauseParity single-steps both engines through the same
// program with RunUntil and asserts they pause on the identical cycle
// at every step — a pause bound falling inside a trace must make the
// compiled engine bail to the interpreter, never drift past the bound.
func TestRunUntilPauseParity(t *testing.T) {
	p := buildDispatchTorture(25, 3)
	ctx := context.Background()
	step := func(mode machine.DispatchMode) ([]int64, string) {
		cfg := machine.Config{Procs: 2, Threads: 2, Model: machine.SwitchOnLoad, Latency: 40, DispatchMode: mode}
		mc, err := machine.NewMachine(cfg, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		var cycles []int64
		for stop := int64(1); ; stop += 7 {
			done, err := mc.RunUntil(ctx, stop)
			if err != nil {
				t.Fatal(err)
			}
			cycles = append(cycles, mc.Cycle())
			if done {
				break
			}
		}
		return cycles, resultJSON(t, mc.Result())
	}
	wantCycles, wantJSON := step(machine.DispatchInterpreted)
	gotCycles, gotJSON := step(machine.DispatchCompiled)
	if len(gotCycles) != len(wantCycles) {
		t.Fatalf("step count = %d, want %d", len(gotCycles), len(wantCycles))
	}
	for i := range wantCycles {
		if gotCycles[i] != wantCycles[i] {
			t.Fatalf("step %d paused at cycle %d, interpreted paused at %d", i, gotCycles[i], wantCycles[i])
		}
	}
	if gotJSON != wantJSON {
		t.Errorf("final results differ:\ncompiled:    %s\ninterpreted: %s", gotJSON, wantJSON)
	}
}

// TestWAWReplyDrainParity is the regression test for the scoreboard
// write-after-write drain: a shared load's reply is outstanding when a
// later instruction overwrites the destination register. The compiled
// gate (t.maxReady <= now) must keep chains off the thread until the
// interpreter has drained the reply, or the overwrite would be lost.
func TestWAWReplyDrainParity(t *testing.T) {
	b := prog.NewBuilder("waw")
	x := b.Shared("x", 2)
	out := b.Shared("out", 2)
	b.Li(4, x.Base)
	b.LwS(5, 4, 0)  // reply for r5 outstanding...
	b.Li(5, 77)     // ...overwritten before any use (WAW)
	b.Addi(6, 5, 1) // must read 77, not the stale reply
	b.Li(7, out.Base)
	b.SwS(6, 7, 0)
	b.Halt()
	p := b.MustBuild()

	// Models that do not switch on the load itself leave the reply
	// pending while the thread keeps running — the WAW window.
	for _, model := range []machine.Model{machine.Ideal, machine.ExplicitSwitch, machine.SwitchOnUse} {
		t.Run(model.String(), func(t *testing.T) {
			for _, mode := range []machine.DispatchMode{machine.DispatchInterpreted, machine.DispatchCompiled} {
				cfg := machine.Config{Procs: 1, Threads: 1, Model: model, Latency: 100, DispatchMode: mode}
				_, err := machine.RunChecked(cfg, p, nil, func(sh *machine.Shared) error {
					if got := sh.WordAt("out", 0); got != 78 {
						return fmt.Errorf("out = %d, want 78 (stale reply overwrote the WAW value)", got)
					}
					return nil
				})
				if err != nil {
					t.Fatalf("%s: %v", mode, err)
				}
			}
			cfg := machine.Config{Procs: 1, Threads: 1, Model: model, Latency: 100}
			wantJSON, _ := runDispatch(t, cfg, p, machine.DispatchInterpreted)
			gotJSON, _ := runDispatch(t, cfg, p, machine.DispatchCompiled)
			if gotJSON != wantJSON {
				t.Errorf("results differ:\ncompiled:    %s\ninterpreted: %s", gotJSON, wantJSON)
			}
		})
	}
}

// TestMetricsJSONUnchangedByDispatchMode: CollectMetrics gates the
// engine off (the accounting hooks time each instruction), so a
// metrics run under the default auto mode must produce the identical
// Result — Metrics timelines included — as a forced-interpreter run.
func TestMetricsJSONUnchangedByDispatchMode(t *testing.T) {
	p := buildDispatchTorture(25, 3)
	cfg := machine.Config{
		Procs: 2, Threads: 2, Model: machine.SwitchOnUse, Latency: 60,
		CollectMetrics: true,
	}
	wantJSON, wantErr := runDispatch(t, cfg, p, machine.DispatchInterpreted)
	gotJSON, gotErr := runDispatch(t, cfg, p, machine.DispatchAuto)
	if gotErr != wantErr || gotJSON != wantJSON {
		t.Errorf("metrics run differs across dispatch modes:\nauto:        %s%s\ninterpreted: %s%s",
			gotJSON, gotErr, wantJSON, wantErr)
	}
}

// TestDispatchModeValidation: the explicit compiled mode must reject
// configurations whose semantics the engine cannot reproduce.
func TestDispatchModeValidation(t *testing.T) {
	p := buildDispatchTorture(3, 1)
	bad := []machine.Config{
		{Model: machine.SwitchEveryCycle, Threads: 2, DispatchMode: machine.DispatchCompiled},
		{Model: machine.Ideal, CollectMetrics: true, DispatchMode: machine.DispatchCompiled},
		{Model: machine.Ideal, DispatchMode: machine.DispatchMode(99)},
	}
	for i, cfg := range bad {
		if _, err := machine.Run(cfg, p, nil); err == nil {
			t.Errorf("case %d: Run() accepted an invalid dispatch configuration", i)
		}
	}
	// Auto silently falls back to the interpreter for the same shapes.
	res, err := machine.Run(machine.Config{Model: machine.SwitchEveryCycle, Threads: 2}, p, nil)
	if err != nil || res == nil {
		t.Fatalf("auto mode under switch-every-cycle: %v", err)
	}
}
