package machine_test

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"mtsim/internal/machine"
	"mtsim/internal/net"
	"mtsim/internal/prog"
)

// runInterrupted drives cfg/p to completion on a Machine, pausing every
// step cycles and round-tripping the whole simulation through a
// snapshot at every pause — the strictest exercise of the
// checkpoint/restore contract.
func runInterrupted(t *testing.T, cfg machine.Config, p *prog.Program, init func(*machine.Shared), step int64) *machine.Result {
	t.Helper()
	mc, err := machine.NewMachine(cfg, p, init)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	ctx := context.Background()
	for i := 0; ; i++ {
		if i > 1_000_000 {
			t.Fatal("interrupted run did not terminate")
		}
		done, err := mc.RunUntil(ctx, mc.Cycle()+step)
		if err != nil {
			t.Fatalf("RunUntil: %v", err)
		}
		if done {
			return mc.Result()
		}
		snap, err := mc.Snapshot()
		if err != nil {
			t.Fatalf("Snapshot at cycle %d: %v", mc.Cycle(), err)
		}
		mc, err = machine.RestoreMachine(snap, p)
		if err != nil {
			t.Fatalf("RestoreMachine at cycle %d: %v", mc2cycle(snap), err)
		}
	}
}

// mc2cycle is only for the error path above; a failed restore has no
// machine to ask, so report the snapshot length instead.
func mc2cycle(snap []byte) int { return len(snap) }

// checkByteIdentical asserts two results are deeply equal and that
// their JSON forms (the shape served by mtsimd, Metrics included) are
// byte-identical.
func checkByteIdentical(t *testing.T, want, got *machine.Result) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("interrupted result differs from uninterrupted:\nwant %+v\ngot  %+v", want, got)
	}
	wj, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gj, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(wj) != string(gj) {
		t.Fatalf("JSON forms differ:\nwant %s\ngot  %s", wj, gj)
	}
}

func TestPauseResumeByteIdenticalAllModels(t *testing.T) {
	p := buildCounter(20)
	for _, model := range allModels() {
		t.Run(model.String(), func(t *testing.T) {
			cfg := machine.Config{Procs: 4, Threads: 3, Model: model, CollectRunLengths: true}
			want, err := machine.Run(cfg, p, nil)
			if err != nil {
				t.Fatal(err)
			}
			got := runInterrupted(t, cfg, p, nil, 137)
			checkByteIdentical(t, want, got)
		})
	}
}

// TestPauseResumeByteIdenticalExtensions covers the stateful extension
// subsystems — metrics, faults, congestion, jitter, grouping window —
// whose mid-run state must survive the round trip exactly.
func TestPauseResumeByteIdenticalExtensions(t *testing.T) {
	p := buildCounter(15)
	cases := []struct {
		name string
		cfg  machine.Config
	}{
		{"metrics", machine.Config{Procs: 4, Threads: 2, Model: machine.SwitchOnUse, CollectMetrics: true}},
		{"window-metrics", machine.Config{Procs: 2, Threads: 4, Model: machine.ExplicitSwitch, GroupWindow: true, CollectMetrics: true, CollectRunLengths: true}},
		{"conditional-invariants", machine.Config{Procs: 4, Threads: 2, Model: machine.ConditionalSwitch, CheckInvariants: true, CollectMetrics: true}},
		{"faults", machine.Config{Procs: 4, Threads: 2, Model: machine.SwitchOnUse, CollectMetrics: true,
			Faults: net.FaultConfig{Enabled: true, Seed: 99, Dist: net.DistUniform, Spread: 40, DropRate: 0.1, DupRate: 0.05, DelayRate: 0.1}}},
		{"congestion", machine.Config{Procs: 4, Threads: 2, Model: machine.SwitchOnLoad,
			Congestion: net.CongestionConfig{Enabled: true}}},
		{"jitter", machine.Config{Procs: 4, Threads: 2, Model: machine.SwitchOnUse, LatencyJitter: 31}},
		{"crit-priority", machine.Config{Procs: 2, Threads: 3, Model: machine.SwitchOnUseMiss, CritPriority: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := machine.Run(tc.cfg, p, nil)
			if err != nil {
				t.Fatal(err)
			}
			got := runInterrupted(t, tc.cfg, p, nil, 211)
			checkByteIdentical(t, want, got)
		})
	}
}

func TestMachineRunMatchesOneShot(t *testing.T) {
	p := buildCounter(25)
	cfg := machine.Config{Procs: 4, Threads: 4, Model: machine.ExplicitSwitch, CollectMetrics: true}
	want, err := machine.Run(cfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := machine.NewMachine(cfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	checkByteIdentical(t, want, got)
	if !mc.Done() {
		t.Error("Done() = false after Run")
	}
	if mc.Result() == nil {
		t.Error("Result() = nil after Run")
	}
	// A completed machine refuses further snapshots but tolerates drives.
	if _, err := mc.Snapshot(); err == nil {
		t.Error("Snapshot of a completed run succeeded")
	}
	if done, err := mc.RunUntil(context.Background(), mc.Cycle()+100); !done || err != nil {
		t.Errorf("RunUntil after completion = (%v, %v), want (true, nil)", done, err)
	}
}

func TestSnapshotRestoreSnapshotIdentity(t *testing.T) {
	p := buildCounter(1000)
	cfg := machine.Config{Procs: 3, Threads: 3, Model: machine.SwitchOnUseMiss, CollectMetrics: true}
	mc, err := machine.NewMachine(cfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if done, err := mc.RunUntil(context.Background(), 1500); err != nil || done {
		t.Fatalf("RunUntil = (%v, %v), want a pause", done, err)
	}
	s1, err := mc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rc, err := machine.RestoreMachine(s1, p)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Cycle() != mc.Cycle() {
		t.Fatalf("restored Cycle = %d, want %d", rc.Cycle(), mc.Cycle())
	}
	s2, err := rc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if string(s1) != string(s2) {
		t.Fatal("snapshot -> restore -> snapshot is not the identity")
	}
}

func TestRestoreRejectsCorruptAndMismatched(t *testing.T) {
	p := buildCounter(1000)
	cfg := machine.Config{Procs: 2, Threads: 2, Model: machine.SwitchOnUse}
	mc, err := machine.NewMachine(cfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if done, err := mc.RunUntil(context.Background(), 500); err != nil || done {
		t.Fatalf("RunUntil = (%v, %v), want a pause", done, err)
	}
	snap, err := mc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := machine.RestoreMachine(nil, p); err == nil {
		t.Error("nil snapshot accepted")
	}
	if _, err := machine.RestoreMachine([]byte("garbage"), p); err == nil {
		t.Error("garbage snapshot accepted")
	}
	// Flip one payload byte: the CRC must catch it.
	bad := append([]byte(nil), snap...)
	bad[len(bad)/2] ^= 0x40
	if _, err := machine.RestoreMachine(bad, p); err == nil {
		t.Error("corrupt snapshot accepted")
	}
	// Truncation.
	if _, err := machine.RestoreMachine(snap[:len(snap)-3], p); err == nil {
		t.Error("truncated snapshot accepted")
	}
	// Wrong program: same name, different body must be rejected by the
	// content hash; different name by the name check.
	other := buildCounter(11)
	if _, err := machine.RestoreMachine(snap, other); !errors.Is(err, machine.ErrSnapshotMismatch) {
		t.Errorf("snapshot accepted for a different program body (err=%v)", err)
	}
	renamed := prog.NewBuilder("other")
	renamed.Halt()
	if _, err := machine.RestoreMachine(snap, renamed.MustBuild()); !errors.Is(err, machine.ErrSnapshotMismatch) {
		t.Errorf("snapshot accepted for a different program name (err=%v)", err)
	}
}

func TestMachineCancellationFailsPermanently(t *testing.T) {
	p := buildCounter(10_000)
	cfg := machine.Config{Procs: 2, Threads: 2, Model: machine.SwitchOnUse}
	mc, err := machine.NewMachine(cfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mc.RunUntil(ctx, 1_000_000); err == nil {
		t.Fatal("canceled context did not abort the run")
	}
	// The failure is sticky: the machine can be neither driven nor
	// snapshotted (its state may be mid-flight).
	if _, err := mc.RunUntil(context.Background(), 1_000_000); err == nil {
		t.Error("failed machine accepted another drive")
	}
	if _, err := mc.Snapshot(); err == nil {
		t.Error("failed machine produced a snapshot")
	}
	if mc.Err() == nil {
		t.Error("Err() = nil on failed machine")
	}
}

func TestRunUntilHonorsStop(t *testing.T) {
	p := buildCounter(1000)
	cfg := machine.Config{Procs: 2, Threads: 2, Model: machine.SwitchOnUse}
	mc, err := machine.NewMachine(cfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	done, err := mc.RunUntil(context.Background(), 777)
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatal("tiny budget completed a long program")
	}
	if c := mc.Cycle(); c < 777 {
		t.Fatalf("paused at cycle %d, want >= stop 777", c)
	}
	if mc.Result() != nil {
		t.Error("Result() non-nil while paused")
	}
	// stop <= Cycle() must make no progress and stay healthy.
	before := mc.Cycle()
	if done, err := mc.RunUntil(context.Background(), before); done || err != nil {
		t.Fatalf("RunUntil(stop=now) = (%v, %v)", done, err)
	}
	if mc.Cycle() != before {
		t.Errorf("clock moved from %d to %d under an empty budget", before, mc.Cycle())
	}
}
