package machine_test

import (
	"testing"

	"mtsim/internal/machine"
	"mtsim/internal/metrics"
	"mtsim/internal/net"
)

// metricsConfigs is the Figure 1 taxonomy crossed with the machine's
// extension features, so the exactness invariant is exercised on every
// accounting path: plain switching, explicit switch cost, cache-based
// models, fault recovery, grouping windows and network congestion.
func metricsConfigs() map[string]machine.Config {
	cfgs := make(map[string]machine.Config)
	for _, model := range allModels() {
		cfgs[model.String()] = machine.Config{Procs: 3, Threads: 2, Model: model, Latency: 16}
	}
	cfgs["switch-cost"] = machine.Config{
		Procs: 2, Threads: 3, Model: machine.ExplicitSwitch, Latency: 32, SwitchCost: 4}
	cfgs["faulted"] = machine.Config{
		Procs: 2, Threads: 2, Model: machine.SwitchOnUse, Latency: 20,
		Faults: net.FaultConfig{Enabled: true, Seed: 7, DropRate: 0.2, DupRate: 0.1, DelayRate: 0.2}}
	cfgs["window"] = machine.Config{
		Procs: 2, Threads: 2, Model: machine.ExplicitSwitch, Latency: 16, GroupWindow: true}
	cfgs["congestion"] = machine.Config{
		Procs: 2, Threads: 2, Model: machine.SwitchOnLoad, Latency: 16,
		Congestion: net.CongestionConfig{Enabled: true}}
	return cfgs
}

// TestMetricsStateSumsExact pins the layer's headline guarantee: after
// any run, the six state counters sum to exactly Cycles for every
// processor and every thread context, hence Procs x Cycles machine-wide.
func TestMetricsStateSumsExact(t *testing.T) {
	p := buildCounter(20)
	for name, cfg := range metricsConfigs() {
		t.Run(name, func(t *testing.T) {
			cfg.CollectMetrics = true
			cfg.CollectRunLengths = true
			res, err := machine.Run(cfg, p, nil)
			if err != nil {
				t.Fatal(err)
			}
			rm := res.Metrics
			if rm == nil {
				t.Fatal("CollectMetrics set but Result.Metrics is nil")
			}
			if rm.Schema != metrics.SchemaVersion {
				t.Errorf("schema = %d, want %d", rm.Schema, metrics.SchemaVersion)
			}
			if rm.Cycles != res.Cycles || rm.NumProcs != cfg.Procs || rm.NumThreads != cfg.Threads {
				t.Errorf("echoed shape = (%d procs, %d threads, %d cycles), want (%d, %d, %d)",
					rm.NumProcs, rm.NumThreads, rm.Cycles, cfg.Procs, cfg.Threads, res.Cycles)
			}
			if want := res.Cycles * int64(cfg.Procs); rm.States.Total() != want {
				t.Errorf("machine states sum to %d, want Procs x Cycles = %d\n%s",
					rm.States.Total(), want, rm.States.Breakdown(want))
			}
			if len(rm.Procs) != cfg.Procs {
				t.Fatalf("per_proc has %d entries, want %d", len(rm.Procs), cfg.Procs)
			}
			var check metrics.StateCycles
			for _, pm := range rm.Procs {
				if pm.States.Total() != res.Cycles {
					t.Errorf("proc %d states sum to %d, want %d\n%s",
						pm.Proc, pm.States.Total(), res.Cycles, pm.States.Breakdown(res.Cycles))
				}
				for _, tm := range pm.Threads {
					if tm.States.Total() != res.Cycles {
						t.Errorf("proc %d thread %d states sum to %d, want %d",
							pm.Proc, tm.Thread, tm.States.Total(), res.Cycles)
					}
				}
				check.Running += pm.States.Running
				check.Switching += pm.States.Switching
				check.StalledMem += pm.States.StalledMem
				check.CacheHit += pm.States.CacheHit
				check.Idle += pm.States.Idle
				check.FaultRecovery += pm.States.FaultRecovery
			}
			if check != rm.States {
				t.Errorf("machine states %+v != sum of per-proc states %+v", rm.States, check)
			}
			if rm.States.Busy() == 0 {
				t.Error("zero busy (running + cache-hit) cycles")
			}
			if rm.Counters.Instrs != res.Instrs || rm.Counters.SwitchesTaken != res.TakenSwitches ||
				rm.Counters.NetRoundTrips != res.SharedLoads {
				t.Errorf("counters %+v disagree with result (instrs=%d taken=%d loads=%d)",
					rm.Counters, res.Instrs, res.TakenSwitches, res.SharedLoads)
			}
		})
	}
}

// TestMetricsMatchCoarseAccounting ties the fine-grained states to the
// machine's coarse Busy/SwitchOverhead counters. The only permitted
// divergence is the end-of-run overshoot: a final instruction whose
// cost extends past the last issue cycle is trimmed from the timelines
// (they must sum exactly) but stays in pr.busy, so the fine counters
// may fall short by at most a few cycles per processor.
func TestMetricsMatchCoarseAccounting(t *testing.T) {
	p := buildCounter(20)
	for _, model := range allModels() {
		cfg := machine.Config{
			Procs: 3, Threads: 2, Model: model, Latency: 16, SwitchCost: 2, CollectMetrics: true}
		res, err := machine.Run(cfg, p, nil)
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		slack := int64(cfg.Procs) * 8
		if busy := res.Metrics.States.Busy(); busy > res.Busy || res.Busy-busy > slack {
			t.Errorf("%s: fine busy = %d, coarse busy = %d (slack %d)", model, busy, res.Busy, slack)
		}
		if sw := res.Metrics.States.Switching; sw > res.SwitchOverhead || res.SwitchOverhead-sw > slack {
			t.Errorf("%s: fine switching = %d, coarse overhead = %d (slack %d)",
				model, sw, res.SwitchOverhead, slack)
		}
	}
}

// TestMetricsFaultRecoverySplit: a heavily faulted run must attribute
// part of its stall time to the recovery protocol, and the split must
// not break exactness.
func TestMetricsFaultRecoverySplit(t *testing.T) {
	p := buildCounter(30)
	// Switch-on-load blocks each thread until its reply is delivered, so
	// the recovery protocol's overhead actually surfaces as stall time
	// (under switch-on-use the counter kernel never reads the Faa result
	// and a late reply would block nothing).
	cfg := machine.Config{
		Procs: 2, Threads: 2, Model: machine.SwitchOnLoad, Latency: 20, CollectMetrics: true,
		Faults: net.FaultConfig{Enabled: true, Seed: 3, DropRate: 0.3, DelayRate: 0.3},
	}
	res, err := machine.Run(cfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	rm := res.Metrics
	if res.Faults.Retries == 0 {
		t.Fatal("fault plan injected nothing; raise the rates")
	}
	if rm.States.FaultRecovery == 0 {
		t.Errorf("retries = %d but fault-recovery time is zero\n%s",
			res.Faults.Retries, rm.States.Breakdown(res.Cycles*int64(cfg.Procs)))
	}
	if want := res.Cycles * int64(cfg.Procs); rm.States.Total() != want {
		t.Errorf("faulted run states sum to %d, want %d", rm.States.Total(), want)
	}
	if rm.Counters.FaultRetries != res.Faults.Retries || rm.Counters.FaultTimeouts != res.Faults.Timeouts {
		t.Errorf("fault counters %+v disagree with result %+v", rm.Counters, res.Faults)
	}
}

// TestMetricsDisabledIsFree: with CollectMetrics off the observability
// layer must not exist — no Metrics record, and a byte-identical
// summary to a run that never heard of the layer.
func TestMetricsDisabledIsFree(t *testing.T) {
	p := buildCounter(30)
	for _, model := range allModels() {
		cfg := machine.Config{Procs: 3, Threads: 2, Model: model, Latency: 16}
		plain, err := machine.Run(cfg, p, nil)
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if plain.Metrics != nil {
			t.Fatalf("%s: Metrics non-nil without CollectMetrics", model)
		}
		on := cfg
		on.CollectMetrics = true
		collected, err := machine.Run(on, p, nil)
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if collected.Metrics == nil {
			t.Fatalf("%s: Metrics nil with CollectMetrics", model)
		}
		// Collection must be observation only: every simulated quantity
		// is unchanged.
		if plain.Summary() != collected.Summary() {
			t.Errorf("%s: collection changed the run:\n--- plain\n%s--- collected\n%s",
				model, plain.Summary(), collected.Summary())
		}
	}
}

// TestEfficiencyGuards pins the degenerate-denominator fix: a zero or
// negative baseline (a failed or absurd baseline run) must yield 0, not
// a panic, an Inf or a negative efficiency.
func TestEfficiencyGuards(t *testing.T) {
	r := &machine.Result{Cycles: 100, Config: machine.Config{Procs: 4}}
	for _, base := range []int64{0, -5} {
		if got := r.Efficiency(base); got != 0 {
			t.Errorf("Efficiency(%d) = %v, want 0", base, got)
		}
		if got := r.Speedup(base); got != 0 {
			t.Errorf("Speedup(%d) = %v, want 0", base, got)
		}
	}
	if got := (&machine.Result{Config: machine.Config{Procs: 4}}).Efficiency(100); got != 0 {
		t.Errorf("Efficiency with zero cycles = %v, want 0", got)
	}
	if got := (&machine.Result{Cycles: 100}).Efficiency(100); got != 0 {
		t.Errorf("Efficiency with zero procs = %v, want 0", got)
	}
	r2 := &machine.Result{Cycles: 200, Config: machine.Config{Procs: 2}}
	if got, want := r2.Efficiency(100), 0.25; got != want {
		t.Errorf("Efficiency(100) = %v, want %v", got, want)
	}
	if got, want := r2.Speedup(100), 0.5; got != want {
		t.Errorf("Speedup(100) = %v, want %v", got, want)
	}
}
