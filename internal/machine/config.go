// Package machine implements the multithreaded multiprocessor simulator
// of the paper's §3: P pipelined RISC processors, each holding T thread
// contexts (the "multithreading level"), round-robin thread scheduling,
// a constant-latency ordered network, and the family of context-switch
// models from the paper's Figure 1 taxonomy.
//
// The simulation is cycle-synchronous and deterministic: one global loop
// steps every processor each cycle. Shared-memory *values* update at
// issue time (so every interleaving is linearizable at cycle granularity
// and fetch-and-add is trivially atomic), while *timing* is modelled by
// the round-trip latency: a thread that must wait for outstanding loads
// carries a wake cycle, which under ordered delivery is simply the issue
// cycle of its newest outstanding load plus the latency.
package machine

import (
	"fmt"

	"mtsim/internal/cache"
	"mtsim/internal/net"
)

// Model is a context-switch policy from the paper's Figure 1 taxonomy.
type Model int

const (
	// Ideal is the zero-latency reference machine used for the paper's
	// Figure 2 and as the speedup baseline: shared accesses complete
	// immediately and Switch instructions never switch.
	Ideal Model = iota

	// SwitchEveryCycle rotates threads after every instruction (HEP,
	// MASA). Shared loads still block the issuing thread until the
	// result returns.
	SwitchEveryCycle

	// SwitchOnLoad context switches on every load from shared memory
	// (§4). The issuing thread becomes runnable again when its load
	// returns, one round trip later.
	SwitchOnLoad

	// SwitchOnUse issues split-phase loads without blocking and context
	// switches only when a Use instruction (or any read of a pending
	// register) needs an unreturned value (§2).
	SwitchOnUse

	// ExplicitSwitch is the paper's first contribution (§5): loads issue
	// without blocking and the compiler-inserted Switch instruction
	// waits for the whole preceding group of loads with one switch.
	ExplicitSwitch

	// SwitchOnMiss adds a cache: loads that hit proceed, misses context
	// switch (Weber & Gupta; ALEWIFE). The switch is detected late in
	// the pipeline, so it pays Config.SwitchCost wasted cycles (§2, §3).
	SwitchOnMiss

	// SwitchOnUseMiss combines split-phase loads with a cache: a Use of
	// a value whose load missed switches; hits never do (§2).
	SwitchOnUseMiss

	// ConditionalSwitch is the paper's second contribution (§6): the
	// explicit-switch code runs on a machine with a cache, and the
	// Switch instruction is taken only when a preceding load of its
	// group missed (or the run-limit flag is set).
	ConditionalSwitch

	numModels
)

// NumModels is the number of defined models.
const NumModels = int(numModels)

var modelNames = [numModels]string{
	Ideal:             "ideal",
	SwitchEveryCycle:  "switch-every-cycle",
	SwitchOnLoad:      "switch-on-load",
	SwitchOnUse:       "switch-on-use",
	ExplicitSwitch:    "explicit-switch",
	SwitchOnMiss:      "switch-on-miss",
	SwitchOnUseMiss:   "switch-on-use-miss",
	ConditionalSwitch: "conditional-switch",
}

// String returns the model's name as used in the paper.
func (m Model) String() string {
	if int(m) < len(modelNames) {
		return modelNames[m]
	}
	return fmt.Sprintf("model(%d)", int(m))
}

// ParseModel resolves a model name.
func ParseModel(s string) (Model, error) {
	for i, n := range modelNames {
		if n == s {
			return Model(i), nil
		}
	}
	return 0, fmt.Errorf("machine: unknown model %q", s)
}

// ModelNames lists all model names in taxonomy order.
func ModelNames() []string {
	out := make([]string, numModels)
	copy(out, modelNames[:])
	return out
}

// UsesCache reports whether the model requires a shared-data cache.
func (m Model) UsesCache() bool {
	return m == SwitchOnMiss || m == SwitchOnUseMiss || m == ConditionalSwitch
}

// UsesGrouping reports whether the model executes grouped (explicit
// Switch) code; the others run the raw program.
func (m Model) UsesGrouping() bool { return m == ExplicitSwitch || m == ConditionalSwitch }

// DispatchMode selects the machine's execution engine. The compiled
// engine (internal/machine/jit) fuses straight-line runs of
// thread-private instructions into closures and is byte-identical to
// the interpreter in every observable — results, metrics, pause points,
// snapshots, errors — so the choice is a pure speed/debuggability
// trade, exposed mainly for differential testing.
type DispatchMode int

const (
	// DispatchAuto (the default) uses the compiled engine whenever the
	// configuration is eligible: every model except switch-every-cycle
	// (which rotates threads after each instruction, leaving no
	// straight-line runs) and any run without CollectMetrics (the
	// cycle-accounting hooks observe each instruction individually).
	DispatchAuto DispatchMode = iota
	// DispatchCompiled insists on the compiled engine: Validate rejects
	// configurations Auto would silently interpret. Benchmarks and
	// tests use it to fail loudly instead of measuring the wrong thing.
	DispatchCompiled
	// DispatchInterpreted forces the interpreter.
	DispatchInterpreted

	numDispatchModes
)

var dispatchNames = [numDispatchModes]string{
	DispatchAuto:        "auto",
	DispatchCompiled:    "compiled",
	DispatchInterpreted: "interpreted",
}

// String returns the mode's name.
func (d DispatchMode) String() string {
	if int(d) < len(dispatchNames) {
		return dispatchNames[d]
	}
	return fmt.Sprintf("dispatch(%d)", int(d))
}

// ParseDispatchMode resolves a dispatch-mode name.
func ParseDispatchMode(s string) (DispatchMode, error) {
	for i, n := range dispatchNames {
		if n == s {
			return DispatchMode(i), nil
		}
	}
	return 0, fmt.Errorf("machine: unknown dispatch mode %q", s)
}

// Config parameterizes a simulation run.
type Config struct {
	// Procs is the number of processors.
	Procs int
	// Threads is the multithreading level: thread contexts per
	// processor. Total threads = Procs * Threads.
	Threads int
	// Model selects the context-switch policy.
	Model Model
	// Latency is the constant round-trip shared-memory latency in
	// cycles (paper default: 200). Forced to zero for Ideal.
	Latency int
	// SwitchCost is the number of cycles lost on each taken context
	// switch. Zero for the opcode-identified models (switch-on-load,
	// explicit-switch: §3 argues the switch is recognized at decode).
	// Switch-on-miss detects the switch after later instructions have
	// entered the pipeline and must cancel them (§2), so that model
	// defaults to DefaultMissSwitchCost; pass a negative value for an
	// explicit zero.
	SwitchCost int
	// Cache configures the per-processor shared-data cache; required by
	// cache-based models and ignored by the rest.
	Cache cache.Config
	// RunLimit bounds the interval between taken context switches under
	// conditional-switch (§6.2): after RunLimit busy cycles a flag is
	// set and the next Switch is taken regardless of cache hits. Zero
	// means the model default (200 for conditional-switch, off
	// elsewhere); negative disables the limit explicitly.
	RunLimit int
	// PreemptLimit is a starvation watchdog: a thread that executes this
	// many busy cycles without any context switch is preempted (zero
	// cost) so round-robin siblings make progress. Models in which a
	// spinning thread may never switch (ideal, switch-on-miss,
	// switch-on-use-miss with a hot cache) need this to run spin-based
	// synchronization with more than one thread per processor — the
	// §6.2 critical-region starvation problem in its extreme form.
	// Zero means the package default; negative disables preemption.
	PreemptLimit int
	// CritPriority enables the §6.2 extension the paper suggests:
	// threads inside a critical region (bracketed by CritEnter/CritExit,
	// which the lock macros emit) are preferred by the round-robin
	// scheduler, so locks are released sooner under long-run-length
	// models.
	CritPriority bool
	// LatencyJitter adds a deterministic per-access deviation in
	// [-LatencyJitter, +LatencyJitter] cycles to the round trip,
	// modelling network congestion variance (§3 notes real networks
	// have large latency variance; the paper assumes a constant). With
	// jitter, delivery is no longer ordered and round-robin scheduling
	// loses its optimality — the ablation experiments quantify that.
	LatencyJitter int
	// Congestion enables the load-dependent network latency model (the
	// paper's stated future work, §6.1): the round trip responds to the
	// bandwidth the program demands instead of staying constant. When
	// enabled, Latency is ignored in favour of the model's output.
	Congestion net.CongestionConfig
	// Topology replaces the constant round trip with an explicit link
	// graph (2D mesh, fat-tree, or dragonfly) with per-link FIFO
	// contention queues and deterministic routing: each shared access is
	// routed from its processor's node to the address's memory module
	// and back, paying queueing delay on every congested link. The zero
	// value (TopoConstant) is the paper's constant-latency network and
	// leaves the legacy path untouched. Mutually exclusive with
	// Congestion (two load-dependent latency models would fight over
	// the same round trip).
	Topology net.TopologyConfig
	// Faults enables fault injection on shared-memory round trips
	// (drop/duplicate/delay plus degraded latency distributions) and the
	// requester-side recovery protocol: timeout, NACK-retry with capped
	// exponential backoff, sequence-number dedup. Deterministic per
	// (Seed, config), so faulted runs memoize like clean ones. The zero
	// value is the paper's perfect network.
	Faults net.FaultConfig
	// GroupWindow enables the §5.2 inter-block grouping estimate: each
	// thread carries a one-line window of WindowCells cells, and a
	// shared load hitting the window completes with the reference that
	// established it instead of paying a fresh round trip.
	GroupWindow bool
	// WindowCells is the window line size in cells (default 16 cells =
	// the paper's 32 words).
	WindowCells int
	// MaxCycles aborts runs that exceed it (deadlock guard). Zero means
	// the package default.
	MaxCycles int64
	// CollectRunLengths enables the per-switch run-length histogram.
	CollectRunLengths bool
	// CollectMetrics enables the cycle-accounting observability layer
	// (internal/metrics): Result.Metrics receives the per-processor,
	// per-thread state timelines and counters. Off by default; with it
	// off no metrics code runs and results are byte-identical to a
	// build without the layer.
	CollectMetrics bool
	// CheckInvariants makes the machine verify the coherence protocol's
	// invariants (a dirty line has exactly one copy; the directory
	// matches cache contents) after every coherence action. Meant for
	// tests: the checks cost time proportional to sharer counts.
	CheckInvariants bool
	// DispatchMode selects the execution engine (compiled vs
	// interpreter). The zero value, DispatchAuto, uses the compiled
	// engine whenever the configuration is eligible; results are
	// byte-identical either way.
	DispatchMode DispatchMode
}

// DefaultLatency is the paper's 200-cycle round trip.
const DefaultLatency = 200

// DefaultRunLimit is the paper's 200-cycle forced-switch interval (§6.2).
const DefaultRunLimit = 200

// DefaultPreemptLimit is the default starvation watchdog: long enough to
// be invisible in the statistics, short enough that a spinning thread
// cannot wedge its processor.
const DefaultPreemptLimit = 10000

// DefaultMissSwitchCost is the pipeline-flush penalty of the
// switch-on-miss model: the miss is detected after subsequent
// instructions have started down the pipeline and they must be cancelled
// (§2: "a context switch cost of several cycles because of the wasted
// pipeline slots").
const DefaultMissSwitchCost = 4

// defaultMaxCycles guards against livelocked programs.
const defaultMaxCycles = 4 << 30

// withDefaults returns cfg with zero fields filled in and model-implied
// fields normalized.
func (cfg Config) withDefaults() Config {
	if cfg.Procs == 0 {
		cfg.Procs = 1
	}
	if cfg.Threads == 0 {
		cfg.Threads = 1
	}
	if cfg.Latency == 0 && cfg.Model != Ideal {
		cfg.Latency = DefaultLatency
	}
	if cfg.Model == Ideal {
		cfg.Latency = 0
	}
	if cfg.Model.UsesCache() && cfg.Cache == (cache.Config{}) {
		cfg.Cache = cache.DefaultConfig()
	}
	switch {
	case cfg.SwitchCost < 0:
		cfg.SwitchCost = 0
	case cfg.SwitchCost == 0 && cfg.Model == SwitchOnMiss:
		cfg.SwitchCost = DefaultMissSwitchCost
	}
	if cfg.Model == ConditionalSwitch && cfg.RunLimit == 0 {
		cfg.RunLimit = DefaultRunLimit
	}
	if cfg.RunLimit < 0 {
		cfg.RunLimit = 0 // negative = explicitly disabled
	}
	if cfg.PreemptLimit == 0 {
		cfg.PreemptLimit = DefaultPreemptLimit
	}
	if cfg.GroupWindow && cfg.WindowCells == 0 {
		cfg.WindowCells = 16
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = defaultMaxCycles
	}
	cfg.Topology = cfg.Topology.WithDefaults(cfg.Procs)
	cfg.Faults = cfg.Faults.WithDefaults(cfg.Latency)
	return cfg
}

// Effective returns the configuration as the machine actually runs it:
// zero fields defaulted and model-implied fields normalized. Snapshots
// carry the effective form, and resuming layers compare against it to
// detect a snapshot taken under a different configuration.
func (cfg Config) Effective() Config { return cfg.withDefaults() }

// Validate reports configuration errors.
func (cfg Config) Validate() error {
	c := cfg.withDefaults()
	switch {
	case c.Procs < 1:
		return fmt.Errorf("machine: Procs %d < 1", cfg.Procs)
	case c.Threads < 1:
		return fmt.Errorf("machine: Threads %d < 1", cfg.Threads)
	case c.Model < 0 || c.Model >= numModels:
		return fmt.Errorf("machine: invalid model %d", int(cfg.Model))
	case c.Latency < 0:
		return fmt.Errorf("machine: Latency %d < 0", cfg.Latency)
	case c.SwitchCost < 0:
		return fmt.Errorf("machine: SwitchCost %d < 0", cfg.SwitchCost)
	case c.RunLimit < 0:
		return fmt.Errorf("machine: RunLimit %d < 0", cfg.RunLimit)
	case c.LatencyJitter < 0 || (c.LatencyJitter > 0 && c.LatencyJitter >= c.Latency):
		return fmt.Errorf("machine: LatencyJitter %d must be in [0, Latency)", cfg.LatencyJitter)
	case c.DispatchMode < 0 || c.DispatchMode >= numDispatchModes:
		return fmt.Errorf("machine: invalid dispatch mode %d", int(cfg.DispatchMode))
	case c.DispatchMode == DispatchCompiled && c.Model == SwitchEveryCycle:
		return fmt.Errorf("machine: DispatchCompiled does not apply to %s (no straight-line runs to fuse); use DispatchAuto", c.Model)
	case c.DispatchMode == DispatchCompiled && c.CollectMetrics:
		return fmt.Errorf("machine: DispatchCompiled is incompatible with CollectMetrics (the accounting hooks observe every instruction); use DispatchAuto")
	}
	if c.Model.UsesCache() {
		if err := c.Cache.Validate(); err != nil {
			return err
		}
	}
	if err := c.Congestion.Validate(); err != nil {
		return err
	}
	if c.Congestion.Enabled && c.Model == Ideal {
		return fmt.Errorf("machine: the congestion model does not apply to the ideal (zero latency) machine")
	}
	if err := c.Topology.Validate(); err != nil {
		return err
	}
	if c.Topology.Enabled() {
		if c.Model == Ideal {
			return fmt.Errorf("machine: the topology model does not apply to the ideal (zero latency) machine")
		}
		if c.Congestion.Enabled {
			return fmt.Errorf("machine: Topology and Congestion are mutually exclusive (both replace the constant round trip)")
		}
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if c.Faults.Enabled && c.Model == Ideal {
		return fmt.Errorf("machine: fault injection does not apply to the ideal (zero latency) machine")
	}
	if c.GroupWindow {
		if c.Model != ExplicitSwitch {
			return fmt.Errorf("machine: GroupWindow applies only to the explicit-switch model (got %s)", c.Model)
		}
		if c.WindowCells&(c.WindowCells-1) != 0 || c.WindowCells <= 0 {
			return fmt.Errorf("machine: WindowCells %d must be a positive power of two", cfg.WindowCells)
		}
	}
	return nil
}
