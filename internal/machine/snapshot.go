package machine

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"

	"mtsim/internal/cache"
	"mtsim/internal/metrics"
	"mtsim/internal/net"
	"mtsim/internal/prog"
	"mtsim/internal/snap"
)

// This file is the checkpoint/restore layer: a pausable Machine handle
// over the simulator plus a versioned binary encoding of its complete
// mutable state. The contract is byte-identity — a run paused at any
// cycle, snapshotted, restored (even in another process) and resumed
// produces a Result, including Result.Metrics, byte-identical to an
// uninterrupted run — which is what makes crash-recovered service runs
// indistinguishable from clean ones.
//
// What a snapshot captures: the event clock and wake vector, every
// thread context (registers, scoreboard, scheduler state, local
// memory, grouping window), per-processor caches and counters, the
// coherence directory and dirty-owner map, shared memory, the partial
// Result counters, and the mutable state of the congestion, fault
// (rng root + sequence counter — Fork makes substreams a pure function
// of those) and metrics runtimes. What it deliberately does not
// capture: the program (re-supplied at restore and verified by hash),
// the configuration's derived scratch (rebuilt), tracers (not
// serializable; NewMachine does not accept one), and context binding
// (a resume may run under a different context).

// SnapshotVersion is the current snapshot format version. Readers
// accept versions 1..SnapshotVersion and reject anything newer.
// Version 2 appended Config.DispatchMode to the encoded configuration;
// version-1 snapshots decode with DispatchAuto, which preserves their
// results exactly (dispatch mode never affects observable behavior).
// Version 3 appended Config.Topology to the configuration and the
// topology network's link-queue state to the payload; older snapshots
// decode with the constant (legacy) topology, which is what they ran.
const SnapshotVersion = 3

// snapMagic brands machine snapshots.
const snapMagic = "MTSN"

// ErrSnapshotMismatch is returned when a snapshot is restored against a
// program (or implied configuration) it was not taken from.
var ErrSnapshotMismatch = errors.New("machine: snapshot does not match")

// Machine is a pausable simulation: Run/RunUntil drive it, Snapshot
// captures it between drives, RestoreMachine rebuilds it. Not safe for
// concurrent use.
type Machine struct {
	sim    *m
	done   bool
	failed error
}

// NewMachine validates cfg and p and builds a machine paused at cycle
// 0, with init applied to shared memory (the serial setup the paper
// excludes from measurement). Tracers are deliberately unsupported:
// they cannot be captured by a snapshot.
func NewMachine(cfg Config, p *prog.Program, init func(*Shared)) (*Machine, error) {
	sim, err := newSim(cfg, p, init, nil)
	if err != nil {
		return nil, err
	}
	return &Machine{sim: sim}, nil
}

// Config returns the effective (defaulted) configuration.
func (mc *Machine) Config() Config { return mc.sim.cfg }

// Cycle returns the event clock: the cycle the paused machine will
// execute next, or the last clock value of a completed run.
func (mc *Machine) Cycle() int64 { return mc.sim.now }

// Done reports whether the program has run to completion.
func (mc *Machine) Done() bool { return mc.done }

// Err returns the error that killed the machine, if any. A failed
// machine cannot be driven further or snapshotted.
func (mc *Machine) Err() error { return mc.failed }

// Result returns the completed run's result, or nil while the machine
// is still runnable.
func (mc *Machine) Result() *Result {
	if !mc.done {
		return nil
	}
	return mc.sim.res
}

// SharedMem exposes the simulated shared memory, for the application's
// host-side Check after completion.
func (mc *Machine) SharedMem() *Shared { return mc.sim.shared }

// RunUntil drives the simulation until the program completes or the
// event clock reaches stop, whichever comes first — the machine pauses
// *before* executing any event at a cycle >= stop, so the state it
// exposes is exactly the state an uninterrupted run passes through.
// Driving with stop <= Cycle() makes no progress. The context is
// rebound on every call; cancellation is noticed at the loop's
// amortized poll (CancelCheckInterval) and kills the machine with a
// sticky error, as it would a one-shot run — a canceled machine's
// state is mid-flight and can be neither driven further nor
// snapshotted.
func (mc *Machine) RunUntil(ctx context.Context, stop int64) (done bool, err error) {
	if mc.failed != nil {
		return false, mc.failed
	}
	if mc.done {
		return true, nil
	}
	mc.sim.bindContext(ctx)
	mc.sim.until = stop
	done, err = mc.sim.run()
	mc.sim.until = never
	mc.sim.bindContext(context.Background())
	if err != nil {
		mc.failed = err
		return false, err
	}
	mc.done = done
	return done, nil
}

// Run drives the simulation to completion and returns its result.
func (mc *Machine) Run(ctx context.Context) (*Result, error) {
	done, err := mc.RunUntil(ctx, never)
	if err != nil {
		return nil, err
	}
	if !done {
		return nil, fmt.Errorf("machine: internal: unbounded run paused") // unreachable
	}
	return mc.sim.res, nil
}

// Snapshot encodes the machine's complete mutable state. Only a paused,
// healthy machine can be snapshotted: a completed run's artifact is its
// Result, and a failed machine has nothing consistent to save.
func (mc *Machine) Snapshot() ([]byte, error) {
	if mc.failed != nil {
		return nil, fmt.Errorf("machine: cannot snapshot failed machine: %w", mc.failed)
	}
	if mc.done {
		return nil, errors.New("machine: cannot snapshot a completed run (use Result)")
	}
	var e snap.Encoder
	mc.sim.encodeState(&e)
	return snap.Seal(snapMagic, SnapshotVersion, e.Bytes()), nil
}

// RestoreMachine rebuilds a paused machine from a snapshot. The program
// must be the one the snapshot was taken from (verified by a content
// hash); init is NOT re-run — shared memory comes from the snapshot.
func RestoreMachine(data []byte, p *prog.Program) (*Machine, error) {
	version, payload, err := snap.Open(snapMagic, SnapshotVersion, data)
	if err != nil {
		return nil, fmt.Errorf("machine: restore: %w", err)
	}
	d := snap.NewDecoder(payload)
	sim, err := decodeState(d, p, version)
	if err != nil {
		return nil, fmt.Errorf("machine: restore: %w", err)
	}
	return &Machine{sim: sim}, nil
}

// programHash fingerprints the executable content a snapshot depends
// on: the instruction stream and the memory layout sizes. FNV-1a over
// every field that affects execution.
func programHash(p *prog.Program) uint64 {
	h := fnv.New64a()
	var b [8]byte
	w64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	h.Write([]byte(p.Name))
	w64(uint64(len(p.Instrs)))
	for i := range p.Instrs {
		in := &p.Instrs[i]
		w64(uint64(in.Op))
		spin := uint64(0)
		if in.Spin {
			spin = 1
		}
		w64(uint64(in.Rd) | uint64(in.Rs)<<8 | uint64(in.Rt)<<16 | spin<<24)
		w64(uint64(in.Imm))
		w64(uint64(int64(in.Target)))
	}
	w64(uint64(p.Shared.Size()))
	w64(uint64(p.Local.Size()))
	return h.Sum64()
}

// encodeState writes the simulation's mutable state (payload only; the
// caller frames it).
func (sim *m) encodeState(e *snap.Encoder) {
	e.String(sim.prg.Name)
	e.U64(programHash(sim.prg))
	encodeConfig(e, sim.cfg)

	e.I64(sim.now)
	e.I64(sim.nowApprox)
	e.Int(sim.live)
	// A fresh machine has not allocated its wake vector yet; encode the
	// implied all-zeros vector so restore is uniform.
	if sim.wakes == nil {
		e.I64s(make([]int64, len(sim.procs)))
	} else {
		e.I64s(sim.wakes)
	}
	e.I64s(sim.sh)

	for pi := range sim.procs {
		pr := &sim.procs[pi]
		e.Int(pr.cur)
		e.Int(pr.live)
		e.Int(pr.resume)
		e.I64(int64(pr.critLive))
		e.I64(pr.busy)
		e.I64(pr.spinBusy)
		e.I64(pr.switchOverhead)
		e.Bool(pr.cache != nil)
		if pr.cache != nil {
			encodeCache(e, pr.cache.Snapshot())
		}
		for ti := range pr.threads {
			encodeThread(e, &pr.threads[ti])
		}
	}

	// Coherence directory + dirty owners (cache models only).
	e.Bool(sim.dir != nil)
	if sim.dir != nil {
		ds := sim.dir.Snapshot()
		e.U32(uint32(len(ds.Lines)))
		for i, line := range ds.Lines {
			e.I64(line)
			e.U32(uint32(len(ds.Sharers[i])))
			for _, p := range ds.Sharers[i] {
				e.I64(int64(p))
			}
		}
		// dirtyOwner, sorted by line for encoding determinism (map
		// iteration order must not leak into the bytes).
		lines := make([]int64, 0, len(sim.dirtyOwner))
		for line := range sim.dirtyOwner {
			lines = append(lines, line)
		}
		sortI64s(lines)
		e.U32(uint32(len(lines)))
		for _, line := range lines {
			e.I64(line)
			e.I64(int64(sim.dirtyOwner[line]))
		}
	}

	encodeResult(e, sim.res)

	e.Bool(sim.congestion != nil)
	if sim.congestion != nil {
		cs := sim.congestion.Snapshot()
		e.I64(cs.LastUpdate)
		e.F64(cs.WindowBits)
		e.F64(cs.Msgs)
		e.F64(cs.PeakUtilization)
	}
	e.Bool(sim.faults != nil)
	if sim.faults != nil {
		fs := sim.faults.Snapshot()
		e.U64(fs.Root)
		e.U64(fs.Seq)
		e.I64(fs.LastOverhead)
		st := fs.Stats
		for _, v := range [...]int64{st.Drops, st.Dups, st.Delays, st.Timeouts, st.Retries, st.BackoffCycles, st.HotAccesses, st.Exhausted} {
			e.I64(v)
		}
	}
	e.Bool(sim.mx != nil)
	if sim.mx != nil {
		ms := sim.mx.Snapshot()
		encodeAccts := func(as []metrics.AcctState) {
			e.U32(uint32(len(as)))
			for i := range as {
				e.I64(as[i].LastEnd)
				e.I64(as[i].FaultDebt)
				for _, v := range as[i].States {
					e.I64(v)
				}
			}
		}
		encodeAccts(ms.Procs)
		encodeAccts(ms.Threads)
		e.Bool(ms.Hit)
	}
	// Appended by format version 3: the topology network's link queues.
	e.Bool(sim.topo != nil)
	if sim.topo != nil {
		ts := sim.topo.Snapshot()
		e.U32(uint32(len(ts.FreeAt)))
		for i := range ts.FreeAt {
			e.I64(ts.FreeAt[i])
			e.I64(ts.Enqueued[i])
			e.I64(ts.Drained[i])
			e.I64s(ts.Pending[i])
		}
		e.I64(ts.Requests)
		e.I64(ts.PeakQueue)
		e.I64(ts.MaxLatency)
	}
}

// decodeState rebuilds a paused simulation from a payload.
func decodeState(d *snap.Decoder, p *prog.Program, version uint32) (*m, error) {
	name := d.String()
	hash := d.U64()
	cfg := decodeConfig(d, version)
	if err := d.Err(); err != nil {
		return nil, err
	}
	if name != p.Name {
		return nil, fmt.Errorf("%w: snapshot of program %q, restoring with %q", ErrSnapshotMismatch, name, p.Name)
	}
	if got := programHash(p); got != hash {
		return nil, fmt.Errorf("%w: program %q content hash %016x, snapshot expects %016x", ErrSnapshotMismatch, p.Name, got, hash)
	}
	// newSim re-validates cfg and rebuilds every derived structure at
	// cycle 0; the rest of this function overwrites the mutable state.
	sim, err := newSim(cfg, p, nil, nil)
	if err != nil {
		return nil, err
	}
	if sim.cfg != cfg {
		// The snapshot carries the effective config; re-defaulting must
		// be the identity or the snapshot was hand-built.
		return nil, fmt.Errorf("%w: snapshot config is not in effective (defaulted) form", ErrSnapshotMismatch)
	}

	sim.now = d.I64()
	sim.nowApprox = d.I64()
	sim.live = d.Int()
	wakes := d.I64s()
	sh := d.I64s()
	if d.Err() == nil {
		if len(wakes) != len(sim.procs) {
			return nil, fmt.Errorf("%w: wake vector for %d procs, machine has %d", ErrSnapshotMismatch, len(wakes), len(sim.procs))
		}
		if len(sh) != len(sim.sh) && !(len(sh) == 0 && len(sim.sh) == 0) {
			return nil, fmt.Errorf("%w: shared memory of %d cells, program needs %d", ErrSnapshotMismatch, len(sh), len(sim.sh))
		}
		sim.wakes = make([]int64, len(sim.procs))
		copy(sim.wakes, wakes)
		copy(sim.sh, sh)
	}

	for pi := range sim.procs {
		pr := &sim.procs[pi]
		pr.cur = d.Int()
		pr.live = d.Int()
		pr.resume = d.Int()
		pr.critLive = int32(d.I64())
		pr.busy = d.I64()
		pr.spinBusy = d.I64()
		pr.switchOverhead = d.I64()
		hasCache := d.Bool()
		if d.Err() != nil {
			return nil, d.Err()
		}
		if hasCache != (pr.cache != nil) {
			return nil, fmt.Errorf("%w: proc %d cache presence differs from model %s", ErrSnapshotMismatch, pi, cfg.Model)
		}
		if hasCache {
			if err := pr.cache.Restore(decodeCache(d)); err != nil {
				return nil, err
			}
		}
		for ti := range pr.threads {
			if err := decodeThread(d, &pr.threads[ti], sim); err != nil {
				return nil, err
			}
		}
		if pr.cur < 0 || pr.cur >= len(pr.threads) || pr.resume < -1 || pr.resume >= len(pr.threads) {
			return nil, fmt.Errorf("%w: proc %d scheduler indices out of range", ErrSnapshotMismatch, pi)
		}
	}

	hasDir := d.Bool()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if hasDir != (sim.dir != nil) {
		return nil, fmt.Errorf("%w: directory presence differs from model %s", ErrSnapshotMismatch, cfg.Model)
	}
	if hasDir {
		nlines := int(d.U32())
		ds := cache.DirectoryState{Lines: make([]int64, 0, nlines), Sharers: make([][]int32, 0, nlines)}
		for i := 0; i < nlines && d.Err() == nil; i++ {
			ds.Lines = append(ds.Lines, d.I64())
			ns := int(d.U32())
			sharers := make([]int32, 0, ns)
			for j := 0; j < ns && d.Err() == nil; j++ {
				v := d.I64()
				if v < 0 || v >= int64(len(sim.procs)) {
					return nil, fmt.Errorf("%w: directory sharer %d out of range", ErrSnapshotMismatch, v)
				}
				sharers = append(sharers, int32(v))
			}
			ds.Sharers = append(ds.Sharers, sharers)
		}
		if d.Err() == nil {
			dir, err := cache.RestoreDirectory(ds)
			if err != nil {
				return nil, err
			}
			sim.dir = dir
		}
		nown := int(d.U32())
		for i := 0; i < nown && d.Err() == nil; i++ {
			line := d.I64()
			owner := d.I64()
			if owner < 0 || owner >= int64(len(sim.procs)) {
				return nil, fmt.Errorf("%w: dirty owner %d out of range", ErrSnapshotMismatch, owner)
			}
			sim.dirtyOwner[line] = int32(owner)
		}
	}

	decodeResult(d, sim.res)

	if d.Bool() {
		if sim.congestion == nil {
			return nil, fmt.Errorf("%w: snapshot has congestion state but config disables it", ErrSnapshotMismatch)
		}
		sim.congestion.Restore(net.CongestionState{
			LastUpdate: d.I64(), WindowBits: d.F64(), Msgs: d.F64(), PeakUtilization: d.F64(),
		})
	} else if sim.congestion != nil {
		return nil, fmt.Errorf("%w: config enables congestion but snapshot lacks its state", ErrSnapshotMismatch)
	}
	if d.Bool() {
		if sim.faults == nil {
			return nil, fmt.Errorf("%w: snapshot has fault-plan state but config disables it", ErrSnapshotMismatch)
		}
		fs := net.FaultPlanState{Root: d.U64(), Seq: d.U64(), LastOverhead: d.I64()}
		st := &fs.Stats
		for _, f := range [...]*int64{&st.Drops, &st.Dups, &st.Delays, &st.Timeouts, &st.Retries, &st.BackoffCycles, &st.HotAccesses, &st.Exhausted} {
			*f = d.I64()
		}
		if d.Err() == nil {
			if err := sim.faults.Restore(fs); err != nil {
				return nil, err
			}
		}
	} else if sim.faults != nil {
		return nil, fmt.Errorf("%w: config enables fault injection but snapshot lacks its state", ErrSnapshotMismatch)
	}
	if d.Bool() {
		if sim.mx == nil {
			return nil, fmt.Errorf("%w: snapshot has metrics state but config disables collection", ErrSnapshotMismatch)
		}
		decodeAccts := func() []metrics.AcctState {
			n := int(d.U32())
			as := make([]metrics.AcctState, 0, n)
			for i := 0; i < n && d.Err() == nil; i++ {
				a := metrics.AcctState{LastEnd: d.I64(), FaultDebt: d.I64()}
				for s := range a.States {
					a.States[s] = d.I64()
				}
				as = append(as, a)
			}
			return as
		}
		ms := metrics.CollectorState{Procs: decodeAccts(), Threads: decodeAccts()}
		ms.Hit = d.Bool()
		if d.Err() == nil {
			mx, err := metrics.RestoreCollector(cfg.Procs, cfg.Threads, ms)
			if err != nil {
				return nil, err
			}
			sim.mx = mx
		}
	} else if sim.mx != nil {
		return nil, fmt.Errorf("%w: config enables metrics but snapshot lacks collector state", ErrSnapshotMismatch)
	}
	if version >= 3 {
		if d.Bool() {
			if sim.topo == nil {
				return nil, fmt.Errorf("%w: snapshot has topology state but config disables it", ErrSnapshotMismatch)
			}
			nlinks := int(d.U32())
			ts := net.TopologyState{
				FreeAt:   make([]int64, 0, nlinks),
				Enqueued: make([]int64, 0, nlinks),
				Drained:  make([]int64, 0, nlinks),
				Pending:  make([][]int64, 0, nlinks),
			}
			for i := 0; i < nlinks && d.Err() == nil; i++ {
				ts.FreeAt = append(ts.FreeAt, d.I64())
				ts.Enqueued = append(ts.Enqueued, d.I64())
				ts.Drained = append(ts.Drained, d.I64())
				ts.Pending = append(ts.Pending, d.I64s())
			}
			ts.Requests = d.I64()
			ts.PeakQueue = d.I64()
			ts.MaxLatency = d.I64()
			if d.Err() == nil {
				if err := sim.topo.Restore(ts); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrSnapshotMismatch, err)
				}
			}
		} else if sim.topo != nil {
			return nil, fmt.Errorf("%w: config enables a topology but snapshot lacks its state", ErrSnapshotMismatch)
		}
	}

	if err := d.Finish(); err != nil {
		return nil, err
	}
	// Cross-field sanity: the live counters must be consistent.
	liveSum := 0
	for pi := range sim.procs {
		liveSum += sim.procs[pi].live
	}
	if liveSum != sim.live || sim.live < 0 || sim.live > cfg.Procs*cfg.Threads {
		return nil, fmt.Errorf("%w: live-thread counters inconsistent (%d vs %d)", ErrSnapshotMismatch, liveSum, sim.live)
	}
	if sim.now < 0 || sim.now > cfg.MaxCycles {
		return nil, fmt.Errorf("%w: clock %d outside [0, MaxCycles]", ErrSnapshotMismatch, sim.now)
	}
	return sim, nil
}

func encodeThread(e *snap.Encoder, t *thread) {
	e.I64(int64(t.pc))
	e.Bool(t.halted)
	for _, r := range t.regs {
		e.I64(r)
	}
	for _, r := range t.fregs {
		e.F64(r)
	}
	e.I64(t.wake)
	for _, r := range t.regReady {
		e.I64(r)
	}
	for _, r := range t.fregReady {
		e.I64(r)
	}
	e.I64(t.maxReady)
	e.I64(t.runLen)
	e.I64(t.sinceSwitch)
	e.I64(int64(t.crit))
	e.I64s(t.local)
	e.Bool(t.window != nil)
	if t.window != nil {
		ws := t.window.Snapshot()
		e.I64(ws.Line)
		e.I64(ws.ReadyAt)
		e.Bool(ws.Valid)
		e.I64(ws.Hits)
		e.I64(ws.Misses)
	}
}

func decodeThread(d *snap.Decoder, t *thread, sim *m) error {
	pc := d.I64()
	t.halted = d.Bool()
	for i := range t.regs {
		t.regs[i] = d.I64()
	}
	for i := range t.fregs {
		t.fregs[i] = d.F64()
	}
	t.wake = d.I64()
	for i := range t.regReady {
		t.regReady[i] = d.I64()
	}
	for i := range t.fregReady {
		t.fregReady[i] = d.I64()
	}
	t.maxReady = d.I64()
	t.runLen = d.I64()
	t.sinceSwitch = d.I64()
	t.crit = int32(d.I64())
	local := d.I64s()
	hasWindow := d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	if pc < 0 || pc >= int64(len(sim.instrs)) {
		return fmt.Errorf("%w: thread pc %d outside program of %d instructions", ErrSnapshotMismatch, pc, len(sim.instrs))
	}
	t.pc = int32(pc)
	if len(local) != len(t.local) && !(len(local) == 0 && len(t.local) == 0) {
		return fmt.Errorf("%w: thread local memory of %d words, program needs %d", ErrSnapshotMismatch, len(local), len(t.local))
	}
	copy(t.local, local)
	if hasWindow != (t.window != nil) {
		return fmt.Errorf("%w: grouping-window presence differs from config", ErrSnapshotMismatch)
	}
	if hasWindow {
		ws := cache.WindowState{Line: d.I64(), ReadyAt: d.I64(), Valid: d.Bool(), Hits: d.I64(), Misses: d.I64()}
		if d.Err() == nil {
			t.window.Restore(ws)
		}
	}
	return d.Err()
}

func encodeCache(e *snap.Encoder, st cache.CacheState) {
	e.I64s(st.Tags)
	e.Bools(st.Valid)
	e.Bools(st.Dirty)
	e.I64s(st.Age)
	e.I64(st.AgeTick)
	e.I64(st.Hits)
	e.I64(st.Misses)
	e.I64(st.Evictions)
	e.I64(st.Invals)
}

func decodeCache(d *snap.Decoder) cache.CacheState {
	return cache.CacheState{
		Tags: d.I64s(), Valid: d.Bools(), Dirty: d.Bools(), Age: d.I64s(),
		AgeTick: d.I64(), Hits: d.I64(), Misses: d.I64(),
		Evictions: d.I64(), Invals: d.I64(),
	}
}

// encodeResult writes the incrementally-updated Result counters. The
// fields finish() derives (Cycles, Busy, Idle, cache/window/net
// aggregates, ProcBusy, Metrics) are not part of the mid-run state.
func encodeResult(e *snap.Encoder, r *Result) {
	e.I64(r.Instrs)
	e.I64(r.SharedLoads)
	e.I64(r.SharedStores)
	e.I64(r.TakenSwitches)
	e.I64(r.SkippedSwitches)
	e.I64(r.ForcedSwitches)
	e.I64(r.PreemptSwitches)
	e.I64(r.SpinProbes)
	e.I64(r.CritPreempts)
	e.I64(r.ImplicitWaits)
	for _, b := range r.RunLengths.Buckets {
		e.I64(b)
	}
	e.I64(r.RunLengths.N)
	e.I64(r.RunLengths.Sum)
	e.I64(r.RunLengths.Min)
	e.I64(r.RunLengths.Max)
	ts := r.Traffic.Snapshot()
	for i := 0; i < net.NumMsgTypes; i++ {
		e.I64(ts.Count[i])
		e.I64(ts.Bits[i])
	}
	e.I64(ts.SpinCount)
	e.I64(ts.SpinBits)
}

func decodeResult(d *snap.Decoder, r *Result) {
	r.Instrs = d.I64()
	r.SharedLoads = d.I64()
	r.SharedStores = d.I64()
	r.TakenSwitches = d.I64()
	r.SkippedSwitches = d.I64()
	r.ForcedSwitches = d.I64()
	r.PreemptSwitches = d.I64()
	r.SpinProbes = d.I64()
	r.CritPreempts = d.I64()
	r.ImplicitWaits = d.I64()
	for i := range r.RunLengths.Buckets {
		r.RunLengths.Buckets[i] = d.I64()
	}
	r.RunLengths.N = d.I64()
	r.RunLengths.Sum = d.I64()
	r.RunLengths.Min = d.I64()
	r.RunLengths.Max = d.I64()
	var ts net.TrafficState
	for i := 0; i < net.NumMsgTypes; i++ {
		ts.Count[i] = d.I64()
		ts.Bits[i] = d.I64()
	}
	ts.SpinCount = d.I64()
	ts.SpinBits = d.I64()
	r.Traffic.Restore(ts)
}

// encodeConfig writes every Config field in declaration order. The
// snapshot carries the *effective* (defaulted) configuration, so
// restore-side defaulting is the identity.
func encodeConfig(e *snap.Encoder, cfg Config) {
	e.Int(cfg.Procs)
	e.Int(cfg.Threads)
	e.Int(int(cfg.Model))
	e.Int(cfg.Latency)
	e.Int(cfg.SwitchCost)
	e.Int(cfg.Cache.Lines)
	e.Int(cfg.Cache.LineCells)
	e.Int(cfg.Cache.Assoc)
	e.Int(cfg.RunLimit)
	e.Int(cfg.PreemptLimit)
	e.Bool(cfg.CritPriority)
	e.Int(cfg.LatencyJitter)
	e.Bool(cfg.Congestion.Enabled)
	e.Int(cfg.Congestion.Stages)
	e.Int(cfg.Congestion.HopCycles)
	e.Int(cfg.Congestion.ChannelBits)
	e.Int(cfg.Congestion.MemCycles)
	e.Int(cfg.Congestion.Window)
	e.Bool(cfg.Faults.Enabled)
	e.U64(cfg.Faults.Seed)
	e.Int(int(cfg.Faults.Dist))
	e.Int(cfg.Faults.Spread)
	e.F64(cfg.Faults.HotRate)
	e.Int(cfg.Faults.HotFactor)
	e.F64(cfg.Faults.DropRate)
	e.F64(cfg.Faults.DupRate)
	e.F64(cfg.Faults.DelayRate)
	e.Int(cfg.Faults.DelayCycles)
	e.Int(cfg.Faults.TimeoutCycles)
	e.Int(cfg.Faults.MaxRetries)
	e.Int(cfg.Faults.BackoffBase)
	e.Int(cfg.Faults.BackoffMax)
	e.Bool(cfg.GroupWindow)
	e.Int(cfg.WindowCells)
	e.I64(cfg.MaxCycles)
	e.Bool(cfg.CollectRunLengths)
	e.Bool(cfg.CollectMetrics)
	e.Bool(cfg.CheckInvariants)
	e.Int(int(cfg.DispatchMode)) // appended by format version 2
	// Appended by format version 3.
	e.Int(int(cfg.Topology.Kind))
	e.Int(cfg.Topology.Nodes)
	e.Int(cfg.Topology.HopCycles)
	e.Int(cfg.Topology.ChannelBits)
	e.Int(cfg.Topology.MemCycles)
}

func decodeConfig(d *snap.Decoder, version uint32) Config {
	var cfg Config
	cfg.Procs = d.Int()
	cfg.Threads = d.Int()
	cfg.Model = Model(d.Int())
	cfg.Latency = d.Int()
	cfg.SwitchCost = d.Int()
	cfg.Cache.Lines = d.Int()
	cfg.Cache.LineCells = d.Int()
	cfg.Cache.Assoc = d.Int()
	cfg.RunLimit = d.Int()
	cfg.PreemptLimit = d.Int()
	cfg.CritPriority = d.Bool()
	cfg.LatencyJitter = d.Int()
	cfg.Congestion.Enabled = d.Bool()
	cfg.Congestion.Stages = d.Int()
	cfg.Congestion.HopCycles = d.Int()
	cfg.Congestion.ChannelBits = d.Int()
	cfg.Congestion.MemCycles = d.Int()
	cfg.Congestion.Window = d.Int()
	cfg.Faults.Enabled = d.Bool()
	cfg.Faults.Seed = d.U64()
	cfg.Faults.Dist = net.DelayDist(d.Int())
	cfg.Faults.Spread = d.Int()
	cfg.Faults.HotRate = d.F64()
	cfg.Faults.HotFactor = d.Int()
	cfg.Faults.DropRate = d.F64()
	cfg.Faults.DupRate = d.F64()
	cfg.Faults.DelayRate = d.F64()
	cfg.Faults.DelayCycles = d.Int()
	cfg.Faults.TimeoutCycles = d.Int()
	cfg.Faults.MaxRetries = d.Int()
	cfg.Faults.BackoffBase = d.Int()
	cfg.Faults.BackoffMax = d.Int()
	cfg.GroupWindow = d.Bool()
	cfg.WindowCells = d.Int()
	cfg.MaxCycles = d.I64()
	cfg.CollectRunLengths = d.Bool()
	cfg.CollectMetrics = d.Bool()
	cfg.CheckInvariants = d.Bool()
	if version >= 2 {
		cfg.DispatchMode = DispatchMode(d.Int())
	}
	if version >= 3 {
		cfg.Topology.Kind = net.TopologyKind(d.Int())
		cfg.Topology.Nodes = d.Int()
		cfg.Topology.HopCycles = d.Int()
		cfg.Topology.ChannelBits = d.Int()
		cfg.Topology.MemCycles = d.Int()
	}
	return cfg
}

// sortI64s is an insertion sort for the (small) dirty-owner key set,
// keeping the encoder free of a sort dependency on the hot path types.
func sortI64s(v []int64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
