package machine_test

import (
	"errors"
	"strings"
	"testing"

	"mtsim/internal/machine"
	"mtsim/internal/net"
	"mtsim/internal/prog"
)

// TestFaultPathStrictlyAdditive: a zero-valued Faults field must change
// nothing — same cycles, same instruction count, same summary — as the
// seed code path, which is what keeps memoized clean results valid.
func TestFaultPathStrictlyAdditive(t *testing.T) {
	p := buildCounter(50)
	cfg := machine.Config{Procs: 4, Threads: 3, Model: machine.SwitchOnUse}
	base, err := machine.Run(cfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	withZero := cfg
	withZero.Faults = net.FaultConfig{} // explicit zero value
	got, err := machine.Run(withZero, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != base.Cycles || got.Instrs != base.Instrs || got.Summary() != base.Summary() {
		t.Errorf("zero Faults changed the run: %d/%d cycles, %d/%d instrs",
			got.Cycles, base.Cycles, got.Instrs, base.Instrs)
	}
}

// TestFaultedRunDeterministic: same seed, same schedule — bit-identical
// results; a different seed perturbs the timing.
func TestFaultedRunDeterministic(t *testing.T) {
	p := buildCounter(50)
	cfg := machine.Config{
		Procs: 4, Threads: 3, Model: machine.SwitchOnUse,
		Faults: net.FaultConfig{
			Enabled: true, Seed: 17,
			DropRate: 0.1, DupRate: 0.1, DelayRate: 0.1,
			Dist: net.DistUniform, Spread: 40,
		},
	}
	a, err := machine.Run(cfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := machine.Run(cfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Faults != b.Faults || a.Summary() != b.Summary() {
		t.Errorf("same seed diverged: cycles %d vs %d, stats %+v vs %+v",
			a.Cycles, b.Cycles, a.Faults, b.Faults)
	}
	other := cfg
	other.Faults.Seed = 18
	c, err := machine.Run(other, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cycles == a.Cycles && c.Faults == a.Faults {
		t.Error("different fault seed produced an identical run")
	}
}

// TestFaultedRunStillCorrect: heavy faults slow the machine down but
// must never corrupt it — the counter still reaches its exact value and
// the recovery protocol visibly fired.
func TestFaultedRunStillCorrect(t *testing.T) {
	const n = 40
	p := buildCounter(n)
	// switch-on-load blocks the issuing thread until the reply returns,
	// so injected drops and delays are visible in the cycle count.
	cfg := machine.Config{
		Procs: 4, Threads: 2, Model: machine.SwitchOnLoad, Latency: 100,
		Faults: net.FaultConfig{
			Enabled: true, Seed: 5,
			DropRate: 0.3, DupRate: 0.2, DelayRate: 0.2,
		},
	}
	clean := cfg
	clean.Faults = net.FaultConfig{}
	base, err := machine.Run(clean, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := machine.RunChecked(cfg, p, nil, func(sh *machine.Shared) error {
		want := int64(cfg.Procs) * int64(cfg.Threads) * n
		if got := sh.WordAt("counter", 0); got != want {
			t.Errorf("counter = %d, want %d", got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Faults
	if st.Drops == 0 || st.Timeouts == 0 || st.Retries == 0 || st.BackoffCycles == 0 {
		t.Errorf("30%% drop rate left no recovery trace: %+v", st)
	}
	if res.Cycles <= base.Cycles {
		t.Errorf("faulted run (%d cycles) not slower than clean (%d)", res.Cycles, base.Cycles)
	}
	if !strings.Contains(res.Summary(), "faults:") {
		t.Error("Summary omits the faults line for a faulted run")
	}
	if strings.Contains(base.Summary(), "faults:") {
		t.Error("Summary shows a faults line for a clean run")
	}
}

// TestFaultStallClassified: a run that blows MaxCycles while the
// recovery protocol is retrying is reported as ErrFaultStall (which
// still matches ErrMaxCycles), while a plain livelock stays a plain
// ErrMaxCycles.
func TestFaultStallClassified(t *testing.T) {
	p := buildCounter(1000)
	cfg := machine.Config{
		Procs: 2, Threads: 2, Model: machine.SwitchOnLoad, Latency: 100,
		MaxCycles: 5000,
		Faults:    net.FaultConfig{Enabled: true, Seed: 1, DropRate: 1},
	}
	_, err := machine.Run(cfg, p, nil)
	if !errors.Is(err, machine.ErrFaultStall) {
		t.Errorf("err = %v, want ErrFaultStall", err)
	}
	if !errors.Is(err, machine.ErrMaxCycles) {
		t.Errorf("ErrFaultStall does not match ErrMaxCycles: %v", err)
	}

	// A genuine livelock without faults keeps the plain verdict.
	b := prog.NewBuilder("spin-forever")
	b.Shared("x", 1)
	b.Label("loop")
	b.J("loop")
	_, err = machine.Run(machine.Config{Model: machine.Ideal, MaxCycles: 1000}, b.MustBuild(), nil)
	if !errors.Is(err, machine.ErrMaxCycles) || errors.Is(err, machine.ErrFaultStall) {
		t.Errorf("plain livelock misclassified: %v", err)
	}
}

// TestFaultConfigRejected: invalid fault configs and fault injection on
// the ideal machine are refused up front.
func TestFaultConfigRejected(t *testing.T) {
	p := buildCounter(1)
	bad := machine.Config{
		Model:  machine.SwitchOnUse,
		Faults: net.FaultConfig{Enabled: true, DropRate: 2},
	}
	if _, err := machine.Run(bad, p, nil); err == nil {
		t.Error("DropRate 2 accepted")
	}
	ideal := machine.Config{
		Model:  machine.Ideal,
		Faults: net.FaultConfig{Enabled: true, DropRate: 0.1},
	}
	if _, err := machine.Run(ideal, p, nil); err == nil {
		t.Error("fault injection on the ideal machine accepted")
	}
}

// TestHotSpotSlowsRun: routing half the accesses through a hot module
// visibly lengthens the run and counts the hot accesses.
func TestHotSpotSlowsRun(t *testing.T) {
	p := buildCounter(50)
	cfg := machine.Config{Procs: 2, Threads: 2, Model: machine.SwitchOnLoad, Latency: 100}
	base, err := machine.Run(cfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	hot := cfg
	hot.Faults = net.FaultConfig{
		Enabled: true, Seed: 2, Dist: net.DistHotSpot, HotRate: 0.5, HotFactor: 4,
	}
	res, err := machine.Run(hot, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= base.Cycles {
		t.Errorf("hot-spot run (%d) not slower than clean (%d)", res.Cycles, base.Cycles)
	}
	if res.Faults.HotAccesses == 0 {
		t.Error("no hot accesses recorded at HotRate 0.5")
	}
}
