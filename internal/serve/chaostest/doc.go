// Package chaostest is the crash-tolerance proving ground for mtsimd's
// job journal: it builds the real daemon binary, submits journaled
// batch jobs, kills the process with SIGKILL at randomized points
// mid-run, restarts it over the same journal, and asserts the final
// response is byte-identical to a run that was never interrupted.
// Everything the journal promises — fsync-before-ack, torn-tail
// truncation, checkpoint resume — is exercised here against the actual
// binary rather than in-process fakes.
package chaostest
