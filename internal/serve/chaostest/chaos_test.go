package chaostest

import (
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"mtsim/internal/serve"
	"mtsim/internal/serve/client"
)

// chaosBatchBody keeps the daemon busy long enough to be killed
// mid-run: sieve at quick scale is >1.3M cycles, so with small
// -checkpoint-every the job crosses many checkpoints.
const chaosBatchBody = `{
  "scale": "quick",
  "jobs": [
    {"app": "sieve", "config": {"procs": 4, "threads": 2, "model": "switch-on-use"}},
    {"app": "sor", "config": {"procs": 4, "threads": 2, "model": "switch-on-use"}}
  ]
}`

const idempotencyKey = "chaos-kill9"

// buildDaemon compiles cmd/mtsimd into dir and returns the binary path.
func buildDaemon(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "mtsimd")
	cmd := exec.Command("go", "build", "-o", bin, "mtsim/cmd/mtsimd")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build mtsimd: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves a loopback port and releases it for the daemon.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startDaemon launches mtsimd with journaling and waits until /v1/healthz
// answers.
func startDaemon(t *testing.T, bin, addr, journal string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", addr,
		"-journal", journal,
		"-checkpoint-every", "20000",
		"-drain", "5s")
	cmd.Stdout, cmd.Stderr = io.Discard, io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatalf("start mtsimd: %v", err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	_ = cmd.Process.Kill()
	t.Fatalf("mtsimd on %s never became healthy", addr)
	return nil
}

// chaosBatch decodes the chaos body into the client's request type.
func chaosBatch(t *testing.T) *serve.BatchRequest {
	t.Helper()
	var b serve.BatchRequest
	if err := json.Unmarshal([]byte(chaosBatchBody), &b); err != nil {
		t.Fatalf("decode chaos batch: %v", err)
	}
	return &b
}

// apiClient wraps one daemon address in the /v2 Go client — the
// harness drives the fleet through the same package real callers use.
func apiClient(addr string) *client.Client {
	return client.New("http://" + addr)
}

// submit posts the chaos batch with the idempotency key; resubmitting
// after every restart is the point of the key, so connection-level
// failures (daemon mid-death) are retried by the caller.
func submit(t *testing.T, addr string) (string, error) {
	return submitKey(t, addr, idempotencyKey)
}

// submitKey posts the chaos batch with an explicit idempotency key.
func submitKey(t *testing.T, addr, key string) (string, error) {
	job, err := apiClient(addr).SubmitBatch(context.Background(), chaosBatch(t), key)
	if err != nil {
		return "", err
	}
	return job.JobID, nil
}

// pollOnce fetches the job once: (result bytes, true) when done.
func pollOnce(addr, id string) ([]byte, bool, error) {
	job, err := apiClient(addr).GetJob(context.Background(), id)
	if err != nil {
		return nil, false, err
	}
	if job.Status == serve.JobDone {
		return job.Result, true, nil
	}
	return nil, false, nil
}

// pollDone polls until the job finishes, returning its result bytes.
func pollDone(t *testing.T, addr, id string) []byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	result, err := apiClient(addr).WaitJob(ctx, id)
	if err != nil {
		t.Fatalf("job %s never finished: %v", id, err)
	}
	return result
}

// TestSIGKILLRecoveryByteIdentity is the headline chaos test: SIGKILL
// the daemon at seeded-random points while it works a journaled batch,
// restart it over the same journal each time, and require the final
// response to be byte-identical to a never-killed daemon's.
func TestSIGKILLRecoveryByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and repeatedly kills the real daemon; skipped in -short")
	}
	dir := t.TempDir()
	bin := buildDaemon(t, dir)

	// Crash-free reference run.
	refAddr := freeAddr(t)
	ref := startDaemon(t, bin, refAddr, filepath.Join(dir, "ref.wal"))
	id, err := submit(t, refAddr)
	if err != nil {
		t.Fatal(err)
	}
	want := pollDone(t, refAddr, id)
	_ = ref.Process.Signal(syscall.SIGTERM)
	_ = ref.Wait()

	// Chaos run: up to maxKills SIGKILLs at randomized delays. The seed
	// is fixed so a failure replays the same kill schedule.
	const maxKills = 4
	rng := rand.New(rand.NewSource(0xC4A05))
	journal := filepath.Join(dir, "chaos.wal")
	var got []byte
	kills := 0
	for {
		addr := freeAddr(t)
		daemon := startDaemon(t, bin, addr, journal)
		if _, err := submit(t, addr); err != nil {
			// The submit itself is idempotent; a replayed journal may
			// even answer while the resubmit races the dispatcher.
			t.Fatal(err)
		}
		if kills >= maxKills {
			got = pollDone(t, addr, id)
			_ = daemon.Process.Signal(syscall.SIGTERM)
			_ = daemon.Wait()
			break
		}
		// Let the run get somewhere, then pull the plug with no drain.
		time.Sleep(time.Duration(10+rng.Intn(80)) * time.Millisecond)
		if body, done, err := pollOnce(addr, id); err == nil && done {
			// Finished before this round's kill: recovery already
			// proved itself on earlier rounds (or there was nothing to
			// crash); take the answer.
			got = body
			_ = daemon.Process.Kill()
			_ = daemon.Wait()
			break
		}
		if err := daemon.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		_ = daemon.Wait()
		kills++
	}
	t.Logf("survived %d SIGKILLs (journal %d bytes)", kills, fileSize(t, journal))

	if string(got) != string(want) {
		t.Errorf("response after %d kills differs from crash-free run:\n--- crash-free ---\n%s\n--- recovered ---\n%s",
			kills, want, got)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return fi.Size()
}
