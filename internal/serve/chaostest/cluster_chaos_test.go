package chaostest

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// Cluster chaos: run a real 3-node mtsimd fleet, SIGKILL the node that
// owns an in-flight journaled job, and require the survivors to claim
// the lease, resume from the replicated checkpoints, and serve a final
// response byte-identical to a crash-free single-node run. This is the
// process-level proof of the failover path; the in-process mechanism
// tests live in internal/serve.

const clusterKey = "chaos-cluster-kill"

// clusterNodeProc is one fleet member's process handle.
type clusterNodeProc struct {
	id   string
	addr string
	cmd  *exec.Cmd
}

// startFleet launches a 3-node mtsimd cluster and waits for health.
func startFleet(t *testing.T, bin, dir string) []*clusterNodeProc {
	t.Helper()
	ids := []string{"n1", "n2", "n3"}
	nodes := make([]*clusterNodeProc, len(ids))
	var peerSpec []string
	for i, id := range ids {
		nodes[i] = &clusterNodeProc{id: id, addr: freeAddr(t)}
		peerSpec = append(peerSpec, fmt.Sprintf("%s=http://%s", id, nodes[i].addr))
	}
	peers := strings.Join(peerSpec, ",")
	for _, n := range nodes {
		cmd := exec.Command(bin,
			"-addr", n.addr,
			"-journal", filepath.Join(dir, n.id+".wal"),
			"-checkpoint-every", "20000",
			"-drain", "5s",
			"-node-id", n.id,
			"-peers", peers,
			"-heartbeat", "100ms",
			"-lease-ttl", "700ms")
		cmd.Stdout, cmd.Stderr = io.Discard, io.Discard
		if err := cmd.Start(); err != nil {
			t.Fatalf("start %s: %v", n.id, err)
		}
		n.cmd = cmd
		proc := cmd
		t.Cleanup(func() {
			_ = proc.Process.Kill()
			_, _ = proc.Process.Wait()
		})
	}
	for _, n := range nodes {
		deadline := time.Now().Add(15 * time.Second)
		for {
			resp, err := http.Get("http://" + n.addr + "/v1/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("cluster node %s never became healthy", n.id)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return nodes
}

// clusterView is the part of GET /v1/cluster these assertions need.
type clusterView struct {
	Self  string `json:"self"`
	Nodes []struct {
		ID    string `json:"id"`
		State string `json:"state"`
	} `json:"nodes"`
	Leases []struct {
		JobID  string `json:"job_id"`
		Holder string `json:"holder"`
	} `json:"leases"`
	Claims int64 `json:"claims"`
}

func fetchClusterView(addr string) (*clusterView, error) {
	resp, err := http.Get("http://" + addr + "/v1/cluster")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/cluster: status %d: %s", resp.StatusCode, body)
	}
	var cv clusterView
	if err := json.Unmarshal(body, &cv); err != nil {
		return nil, err
	}
	return &cv, nil
}

// leaseHolder polls the fleet until some node's lease table names the
// job's holder.
func leaseHolder(t *testing.T, nodes []*clusterNodeProc, jobID string) string {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		for _, n := range nodes {
			cv, err := fetchClusterView(n.addr)
			if err != nil {
				continue
			}
			for _, l := range cv.Leases {
				if l.JobID == jobID && l.Holder != "" {
					return l.Holder
				}
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("no node ever reported a lease for the job")
	return ""
}

// pollSurvivors polls the surviving nodes until the job completes,
// tolerating the transient 503/404 window while the fleet notices the
// death and migrates the lease.
func pollSurvivors(t *testing.T, nodes []*clusterNodeProc, jobID string) []byte {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for i := 0; time.Now().Before(deadline); i++ {
		n := nodes[i%len(nodes)]
		resp, err := http.Get("http://" + n.addr + "/v1/batch/jobs/" + jobID)
		if err != nil {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err == nil && resp.StatusCode == http.StatusOK {
			return body
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("job never finished on the survivors")
	return nil
}

// TestClusterNodeKillFailover: kill the lease holder of a running job;
// the survivors must finish it to byte-identical output and report the
// death and the claim on /v1/cluster.
func TestClusterNodeKillFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a 3-node daemon fleet; skipped in -short")
	}
	dir := t.TempDir()
	bin := buildDaemon(t, dir)

	// Crash-free single-node reference: the canonical bytes.
	refAddr := freeAddr(t)
	ref := startDaemon(t, bin, refAddr, filepath.Join(dir, "ref.wal"))
	refID, err := submitKey(refAddr, clusterKey)
	if err != nil {
		t.Fatal(err)
	}
	want := pollDone(t, refAddr, refID)
	_ = ref.Process.Signal(syscall.SIGTERM)
	_ = ref.Wait()

	nodes := startFleet(t, bin, dir)

	// Submit through node 0; the ring may forward it anywhere.
	jobID, err := submitKey(nodes[0].addr, clusterKey)
	if err != nil {
		t.Fatal(err)
	}
	if jobID != refID {
		t.Fatalf("cluster job id %s differs from reference %s", jobID, refID)
	}

	// Find the owner, give it a moment to checkpoint and replicate,
	// then SIGKILL it mid-job.
	holder := leaseHolder(t, nodes, jobID)
	var victim *clusterNodeProc
	var survivors []*clusterNodeProc
	for _, n := range nodes {
		if n.id == holder {
			victim = n
		} else {
			survivors = append(survivors, n)
		}
	}
	if victim == nil {
		t.Fatalf("lease holder %q is not a fleet member", holder)
	}
	time.Sleep(300 * time.Millisecond)
	if err := victim.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = victim.cmd.Wait()
	t.Logf("killed lease holder %s mid-job", holder)

	got := pollSurvivors(t, survivors, jobID)
	if string(got) != string(want) {
		t.Errorf("response after killing %s differs from the crash-free run:\n--- crash-free ---\n%s\n--- failover ---\n%s",
			holder, want, got)
	}

	// The fleet's own view must reflect what happened: the victim dead,
	// and the lease claimed by a survivor.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var sawDead bool
		var claims int64
		for _, n := range survivors {
			cv, err := fetchClusterView(n.addr)
			if err != nil {
				continue
			}
			claims += cv.Claims
			for _, m := range cv.Nodes {
				if m.ID == holder && m.State == "dead" {
					sawDead = true
				}
			}
		}
		if sawDead && claims >= 1 {
			t.Logf("fleet reports %s dead, %d lease claim(s)", holder, claims)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reported the failover (dead=%v claims=%d)", sawDead, claims)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// submitKey posts the chaos batch with an explicit idempotency key.
func submitKey(addr, key string) (string, error) {
	req, err := http.NewRequest("POST", "http://"+addr+"/v1/batch", strings.NewReader(chaosBatchBody))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("submit: status %d: %s", resp.StatusCode, body)
	}
	var ack struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(body, &ack); err != nil {
		return "", err
	}
	return ack.JobID, nil
}
