package chaostest

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"mtsim/internal/serve"
	"mtsim/internal/serve/client"
)

// Cluster chaos: run a real 3-node mtsimd fleet, SIGKILL the node that
// owns an in-flight journaled job, and require the survivors to claim
// the lease, resume from the replicated checkpoints, and serve a final
// response byte-identical to a crash-free single-node run. This is the
// process-level proof of the failover path; the in-process mechanism
// tests live in internal/serve.

const clusterKey = "chaos-cluster-kill"

// clusterNodeProc is one fleet member's process handle.
type clusterNodeProc struct {
	id   string
	addr string
	cmd  *exec.Cmd
}

// startFleet launches a 3-node mtsimd cluster and waits for health.
func startFleet(t *testing.T, bin, dir string) []*clusterNodeProc {
	t.Helper()
	ids := []string{"n1", "n2", "n3"}
	nodes := make([]*clusterNodeProc, len(ids))
	var peerSpec []string
	for i, id := range ids {
		nodes[i] = &clusterNodeProc{id: id, addr: freeAddr(t)}
		peerSpec = append(peerSpec, fmt.Sprintf("%s=http://%s", id, nodes[i].addr))
	}
	peers := strings.Join(peerSpec, ",")
	for _, n := range nodes {
		cmd := exec.Command(bin,
			"-addr", n.addr,
			"-journal", filepath.Join(dir, n.id+".wal"),
			"-checkpoint-every", "20000",
			"-drain", "5s",
			"-node-id", n.id,
			"-peers", peers,
			"-heartbeat", "100ms",
			"-lease-ttl", "700ms")
		cmd.Stdout, cmd.Stderr = io.Discard, io.Discard
		if err := cmd.Start(); err != nil {
			t.Fatalf("start %s: %v", n.id, err)
		}
		n.cmd = cmd
		proc := cmd
		t.Cleanup(func() {
			_ = proc.Process.Kill()
			_, _ = proc.Process.Wait()
		})
	}
	for _, n := range nodes {
		deadline := time.Now().Add(15 * time.Second)
		for {
			resp, err := http.Get("http://" + n.addr + "/v1/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("cluster node %s never became healthy", n.id)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return nodes
}

// clusterView is the part of GET /v1/cluster these assertions need.
type clusterView struct {
	Self  string `json:"self"`
	Nodes []struct {
		ID    string `json:"id"`
		State string `json:"state"`
	} `json:"nodes"`
	Leases []struct {
		JobID  string `json:"job_id"`
		Holder string `json:"holder"`
	} `json:"leases"`
	Claims int64 `json:"claims"`
}

func fetchClusterView(addr string) (*clusterView, error) {
	resp, err := http.Get("http://" + addr + "/v1/cluster")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/cluster: status %d: %s", resp.StatusCode, body)
	}
	var cv clusterView
	if err := json.Unmarshal(body, &cv); err != nil {
		return nil, err
	}
	return &cv, nil
}

// leaseHolder polls the fleet until some node's lease table names the
// job's holder.
func leaseHolder(t *testing.T, nodes []*clusterNodeProc, jobID string) string {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		for _, n := range nodes {
			cv, err := fetchClusterView(n.addr)
			if err != nil {
				continue
			}
			for _, l := range cv.Leases {
				if l.JobID == jobID && l.Holder != "" {
					return l.Holder
				}
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("no node ever reported a lease for the job")
	return ""
}

// pollSurvivors polls the surviving nodes until the job completes,
// tolerating the transient 503/404 window while the fleet notices the
// death and migrates the lease.
func pollSurvivors(t *testing.T, nodes []*clusterNodeProc, jobID string) []byte {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for i := 0; time.Now().Before(deadline); i++ {
		job, err := apiClient(nodes[i%len(nodes)].addr).GetJob(context.Background(), jobID)
		if err == nil && job.Status == serve.JobDone {
			return job.Result
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("job never finished on the survivors")
	return nil
}

// TestClusterNodeKillFailover: kill the lease holder of a running job;
// the survivors must finish it to byte-identical output and report the
// death and the claim on /v1/cluster.
func TestClusterNodeKillFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a 3-node daemon fleet; skipped in -short")
	}
	dir := t.TempDir()
	bin := buildDaemon(t, dir)

	// Crash-free single-node reference: the canonical bytes.
	refAddr := freeAddr(t)
	ref := startDaemon(t, bin, refAddr, filepath.Join(dir, "ref.wal"))
	refID, err := submitKey(t, refAddr, clusterKey)
	if err != nil {
		t.Fatal(err)
	}
	want := pollDone(t, refAddr, refID)
	_ = ref.Process.Signal(syscall.SIGTERM)
	_ = ref.Wait()

	nodes := startFleet(t, bin, dir)

	// Submit through node 0; the ring may forward it anywhere.
	jobID, err := submitKey(t, nodes[0].addr, clusterKey)
	if err != nil {
		t.Fatal(err)
	}
	if jobID != refID {
		t.Fatalf("cluster job id %s differs from reference %s", jobID, refID)
	}

	// Find the owner, give it a moment to checkpoint and replicate,
	// then SIGKILL it mid-job.
	holder := leaseHolder(t, nodes, jobID)
	var victim *clusterNodeProc
	var survivors []*clusterNodeProc
	for _, n := range nodes {
		if n.id == holder {
			victim = n
		} else {
			survivors = append(survivors, n)
		}
	}
	if victim == nil {
		t.Fatalf("lease holder %q is not a fleet member", holder)
	}
	time.Sleep(300 * time.Millisecond)
	if err := victim.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = victim.cmd.Wait()
	t.Logf("killed lease holder %s mid-job", holder)

	got := pollSurvivors(t, survivors, jobID)
	if string(got) != string(want) {
		t.Errorf("response after killing %s differs from the crash-free run:\n--- crash-free ---\n%s\n--- failover ---\n%s",
			holder, want, got)
	}

	// The fleet's own view must reflect what happened: the victim dead,
	// and the lease claimed by a survivor.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var sawDead bool
		var claims int64
		for _, n := range survivors {
			cv, err := fetchClusterView(n.addr)
			if err != nil {
				continue
			}
			claims += cv.Claims
			for _, m := range cv.Nodes {
				if m.ID == holder && m.State == "dead" {
					sawDead = true
				}
			}
		}
		if sawDead && claims >= 1 {
			t.Logf("fleet reports %s dead, %d lease claim(s)", holder, claims)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reported the failover (dead=%v claims=%d)", sawDead, claims)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// streamCheckpointIDs tails a job's SSE stream to completion and
// returns the checkpoint event IDs in delivery order.
func streamCheckpointIDs(ctx context.Context, addr, jobID string) ([]string, error) {
	var ids []string
	err := apiClient(addr).StreamEvents(ctx, jobID, "", func(ev client.Event) error {
		if ev.Type == "checkpoint" {
			ids = append(ids, ev.ID)
		}
		return nil
	})
	if errors.Is(err, client.ErrStreamEnded) {
		err = nil
	}
	return ids, err
}

// TestClusterSSEFailoverResume: stream a job's checkpoint events from a
// node that does NOT own the job, SIGKILL the owner mid-stream, then
// resume with Last-Event-ID on a survivor. The spliced checkpoint ID
// sequence must equal a crash-free run's exactly — no duplicate and no
// missing event across the failover. This works because the checkpoint
// cadence is deterministic (resume from a boundary snapshot lands
// subsequent checkpoints on the same cycles) and the successor's event
// history is replicated as a consistent cut.
func TestClusterSSEFailoverResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a 3-node daemon fleet; skipped in -short")
	}
	const sseKey = "chaos-sse-failover"
	dir := t.TempDir()
	bin := buildDaemon(t, dir)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Second)
	defer cancel()

	// Crash-free single-node reference: the canonical checkpoint IDs.
	refAddr := freeAddr(t)
	ref := startDaemon(t, bin, refAddr, filepath.Join(dir, "sse-ref.wal"))
	refID, err := submitKey(t, refAddr, sseKey)
	if err != nil {
		t.Fatal(err)
	}
	want, err := streamCheckpointIDs(ctx, refAddr, refID)
	if err != nil {
		t.Fatalf("reference stream: %v", err)
	}
	if len(want) == 0 {
		t.Fatal("reference run produced no checkpoint events; lower -checkpoint-every")
	}
	_ = ref.Process.Signal(syscall.SIGTERM)
	_ = ref.Wait()

	nodes := startFleet(t, bin, dir)
	jobID, err := submitKey(t, nodes[0].addr, sseKey)
	if err != nil {
		t.Fatal(err)
	}
	holder := leaseHolder(t, nodes, jobID)
	var victim *clusterNodeProc
	var survivors []*clusterNodeProc
	for _, n := range nodes {
		if n.id == holder {
			victim = n
		} else {
			survivors = append(survivors, n)
		}
	}
	if victim == nil {
		t.Fatalf("lease holder %q is not a fleet member", holder)
	}

	// Stream from a survivor (the ring forwards the SSE relay to the
	// owner) until the owner dies under us mid-stream.
	killer := time.AfterFunc(300*time.Millisecond, func() {
		_ = victim.cmd.Process.Kill()
		_, _ = victim.cmd.Process.Wait()
	})
	defer killer.Stop()
	var got []string
	err = apiClient(survivors[0].addr).StreamEvents(ctx, jobID, "", func(ev client.Event) error {
		if ev.Type == "checkpoint" {
			got = append(got, ev.ID)
		}
		return nil
	})
	if errors.Is(err, client.ErrStreamEnded) {
		t.Logf("stream finished before the kill landed; splice still checked below")
	} else if err == nil {
		t.Fatal("stream ended without a done event or an error")
	} else {
		t.Logf("stream broke after %d checkpoint events (%v); resuming on a survivor", len(got), err)
		// Resume from the last delivered checkpoint. Retry through the
		// window where the survivors are still claiming the lease.
		last := ""
		if len(got) > 0 {
			last = got[len(got)-1]
		}
		deadline := time.Now().Add(120 * time.Second)
		for i := 0; ; i++ {
			err := apiClient(survivors[i%len(survivors)].addr).StreamEvents(ctx, jobID, last, func(ev client.Event) error {
				if ev.Type == "checkpoint" {
					got = append(got, ev.ID)
					last = ev.ID
				}
				return nil
			})
			if errors.Is(err, client.ErrStreamEnded) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("resumed stream never finished: %v", err)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("spliced checkpoint sequence differs from crash-free run:\n--- crash-free (%d) ---\n%s\n--- spliced (%d) ---\n%s",
			len(want), strings.Join(want, " "), len(got), strings.Join(got, " "))
	}
	t.Logf("spliced %d checkpoint events across the failover with no dup/miss", len(got))
}
