package chaostest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mtsim/internal/cluster"
	"mtsim/internal/serve"
)

// Partition chaos: run a real 3-node fleet where n1's outbound path to
// n3 follows a seeded schedule — a hard partition, then a gray phase
// where n3 answers but 300-500ms slow. The schedule is asymmetric (only
// n1's transport is chaotic), which exercises every resilience layer at
// once:
//
//   - n1's probes to n3 drop, so n1 declares n3 dead while n3 keeps
//     seeing a healthy fleet (the split view);
//   - forwarded reads through n1 fail over to the replica holder and
//     trip n3's circuit breaker (visible on GET /v1/cluster);
//   - n1, holding a replica whose lease expired under a dead holder,
//     claims the job — and serves bytes identical to a chaos-free run;
//   - in the gray phase n3 is alive-but-slow, the failure mode probes
//     cannot see: hedged reads keep latency bounded and hedge losses
//     re-trip the breaker;
//   - after the schedule ends the fleet heals: views converge, lease
//     tables drain, the breaker closes on its half-open probe.
//
// The in-process mechanism tests live in internal/serve and
// internal/cluster; this is the process-level, real-HTTP proof.

// partitionChaosSpec is n1's fault schedule, measured from process
// start: 12s of hard partition toward n3, then 20s of 300-500ms delay.
const partitionChaosSpec = "peer=n3,to=12s,partition;peer=n3,from=12s,to=32s,delay=1@300ms-500ms"

// startChaosFleet launches the 3-node fleet with a 1s heartbeat and the
// chaos schedule armed on n1 only. The slow heartbeat matters: the gray
// phase's delays must stay under the probe timeout (= heartbeat) so n3
// remains alive-but-slow from n1 — the case breakers and hedging exist
// for — instead of flapping dead.
func startChaosFleet(t *testing.T, bin, dir string) []*clusterNodeProc {
	t.Helper()
	ids := []string{"n1", "n2", "n3"}
	nodes := make([]*clusterNodeProc, len(ids))
	var peerSpec []string
	for i, id := range ids {
		nodes[i] = &clusterNodeProc{id: id, addr: freeAddr(t)}
		peerSpec = append(peerSpec, fmt.Sprintf("%s=http://%s", id, nodes[i].addr))
	}
	peers := strings.Join(peerSpec, ",")
	for _, n := range nodes {
		args := []string{
			"-addr", n.addr,
			"-journal", filepath.Join(dir, n.id+".wal"),
			"-checkpoint-every", "20000",
			"-drain", "5s",
			"-node-id", n.id,
			"-peers", peers,
			"-heartbeat", "1s",
			"-lease-ttl", "700ms",
		}
		if n.id == "n1" {
			args = append(args,
				"-chaos", partitionChaosSpec,
				"-chaos-seed", "7",
				"-breaker-threshold", "2",
				"-breaker-cooldown", "1s",
				"-hedge-fraction", "1")
		}
		cmd := exec.Command(bin, args...)
		cmd.Stdout, cmd.Stderr = io.Discard, io.Discard
		if err := cmd.Start(); err != nil {
			t.Fatalf("start %s: %v", n.id, err)
		}
		n.cmd = cmd
		proc := cmd
		t.Cleanup(func() {
			_ = proc.Process.Kill()
			_, _ = proc.Process.Wait()
		})
	}
	for _, n := range nodes {
		deadline := time.Now().Add(15 * time.Second)
		for {
			resp, err := http.Get("http://" + n.addr + "/v1/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("chaos fleet node %s never became healthy", n.id)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return nodes
}

// resilView is the resilience slice of GET /v1/cluster.
type resilView struct {
	Nodes []struct {
		ID    string `json:"id"`
		State string `json:"state"`
	} `json:"nodes"`
	Leases []struct {
		JobID  string `json:"job_id"`
		Holder string `json:"holder"`
	} `json:"leases"`
	Claims   int64 `json:"claims"`
	Breakers []struct {
		Peer  string `json:"peer"`
		State string `json:"state"`
		Trips int64  `json:"trips"`
	} `json:"breakers"`
	Hedges    int64 `json:"hedges"`
	HedgeWins int64 `json:"hedge_wins"`
	Chaos     *struct {
		Drops    int64 `json:"drops"`
		Delays   int64 `json:"delays"`
		Corrupts int64 `json:"corrupts"`
	} `json:"chaos"`
}

func fetchResilView(addr string) (*resilView, error) {
	resp, err := http.Get("http://" + addr + "/v1/cluster")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/cluster: status %d: %s", resp.StatusCode, body)
	}
	var v resilView
	if err := json.Unmarshal(body, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

func mustResilView(t *testing.T, addr string) *resilView {
	t.Helper()
	v, err := fetchResilView(addr)
	if err != nil {
		t.Fatalf("cluster view %s: %v", addr, err)
	}
	return v
}

func (v *resilView) nodeState(id string) string {
	for _, m := range v.Nodes {
		if m.ID == id {
			return m.State
		}
	}
	return ""
}

func (v *resilView) breakerState(peer string) string {
	for _, b := range v.Breakers {
		if b.Peer == peer {
			return b.State
		}
	}
	return ""
}

// findRouteKey searches for an idempotency key whose job lands on the
// wanted ring successor pattern. The ring layout depends only on the
// peer ids and the vnode count, so an offline Node computes the same
// placement the fleet will.
func findRouteKey(t *testing.T, probe *cluster.Node, prefix string, want ...string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("%s-%d", prefix, i)
		succ := probe.Successors(cluster.JobRouteKey(serve.JobID(key)), len(want))
		if len(succ) < len(want) {
			continue
		}
		ok := true
		for j, id := range want {
			if succ[j].ID != id {
				ok = false
				break
			}
		}
		if ok {
			return key
		}
	}
	t.Fatalf("no key with successor pattern %v in 10000 candidates", want)
	return ""
}

func goroutineCount(t *testing.T, addr string) int {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/v1/healthz")
	if err != nil {
		t.Fatalf("healthz %s: %v", addr, err)
	}
	defer resp.Body.Close()
	var h struct {
		Goroutines int `json:"goroutines"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h.Goroutines
}

func TestPartitionChaosFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real 3-node fleet through a ~35s fault schedule; skipped in -short")
	}
	dir := t.TempDir()
	bin := buildDaemon(t, dir)

	// Pick the two jobs by ring placement. Both are owned by n3 (the
	// peer the chaos schedule targets); they differ in where the
	// replica lands: keyClaim's replica is n1 itself (so n1 can claim
	// during the partition), keyHedge's replica is n2 (so reads through
	// n1 have a fast second candidate to hedge to).
	ringPeers := []cluster.Peer{
		{ID: "n1", URL: "http://ring-probe-1"},
		{ID: "n2", URL: "http://ring-probe-2"},
		{ID: "n3", URL: "http://ring-probe-3"},
	}
	ringProbe, err := cluster.New(cluster.Config{Self: "n1", Peers: ringPeers})
	if err != nil {
		t.Fatal(err)
	}
	keyClaim := findRouteKey(t, ringProbe, "pchaos-claim", "n3", "n1")
	keyHedge := findRouteKey(t, ringProbe, "pchaos-hedge", "n3", "n2")
	idClaim, idHedge := serve.JobID(keyClaim), serve.JobID(keyHedge)

	// Reference bytes from a chaos-free solo daemon.
	refAddr := freeAddr(t)
	ref := startDaemon(t, bin, refAddr, filepath.Join(dir, "ref.wal"))
	for _, key := range []string{keyClaim, keyHedge} {
		if _, err := submitKey(t, refAddr, key); err != nil {
			t.Fatalf("reference submit %s: %v", key, err)
		}
	}
	wantClaim := pollDone(t, refAddr, idClaim)
	wantHedge := pollDone(t, refAddr, idHedge)
	_ = ref.Process.Kill()
	_, _ = ref.Process.Wait()

	// The chaos clock starts when n1 creates its transport, a moment
	// after t0; phase boundaries below are measured from t0 with slack.
	t0 := time.Now()
	nodes := startChaosFleet(t, bin, dir)
	n1, n2, n3 := nodes[0], nodes[1], nodes[2]

	// Submit both jobs through their owner n3. The chaos schedule only
	// touches n1's outbound path, so submission, execution, and replica
	// pushes (n3 -> n1, n3 -> n2) all run clean.
	for _, key := range []string{keyClaim, keyHedge} {
		if _, err := submitKey(t, n3.addr, key); err != nil {
			t.Fatalf("fleet submit %s: %v", key, err)
		}
	}
	if got := pollDone(t, n3.addr, idClaim); !bytes.Equal(got, wantClaim) {
		t.Fatalf("owner's result differs from the solo run\ngot: %s\nwant: %s", got, wantClaim)
	}
	pollDone(t, n3.addr, idHedge)

	// --- Phase 1: hard partition (chaos clock 0s..12s) ----------------
	// Reads through n1 must keep working (failover to n2's replica),
	// n3's breaker must trip, n1 must declare n3 dead, and once the
	// lease under the dead holder expires n1 must claim the job it
	// holds a replica of.
	var sawDead, sawOpen, sawClaim bool
	var lastView *resilView
	partitionDeadline := t0.Add(11500 * time.Millisecond)
	for time.Now().Before(partitionDeadline) && !(sawDead && sawOpen && sawClaim) {
		// Each read drives the forwarding path: primary n3 drops, the
		// failover candidate n2 answers from its replica.
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		job, err := apiClient(n1.addr).GetJob(ctx, idHedge)
		cancel()
		if err == nil && job.Status == serve.JobDone && !bytes.Equal(job.Result, wantHedge) {
			t.Fatalf("partition-phase read diverged\ngot: %s\nwant: %s", job.Result, wantHedge)
		}
		if v, verr := fetchResilView(n1.addr); verr == nil {
			lastView = v
			if v.nodeState("n3") == cluster.StateDead {
				sawDead = true
			}
			if v.breakerState("n3") == cluster.BreakerOpen {
				sawOpen = true
			}
			if v.Claims >= 1 {
				sawClaim = true
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !sawDead {
		t.Fatalf("n1 never declared n3 dead during the partition; last view %+v", lastView)
	}
	if !sawOpen {
		t.Errorf("n3's breaker never showed open on n1's /v1/cluster; last view %+v", lastView)
	}
	if !sawClaim {
		t.Errorf("n1 never claimed the lease it replicates for the dead holder; last view %+v", lastView)
	}
	// The split is asymmetric: the clean side still sees everyone.
	for _, m := range mustResilView(t, n3.addr).Nodes {
		if m.State != cluster.StateAlive {
			t.Errorf("n3 sees %s as %s — the partition should be asymmetric", m.ID, m.State)
		}
	}
	// Only the replica holder under the dead owner claims.
	for _, n := range []*clusterNodeProc{n2, n3} {
		if got := mustResilView(t, n.addr).Claims; got != 0 {
			t.Errorf("%s claimed %d jobs; only n1 holds a claimable replica", n.id, got)
		}
	}
	// n1's copy of the claimed job serves the canonical bytes mid-split.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if got, err := apiClient(n1.addr).WaitJob(ctx, idClaim); err != nil {
		t.Errorf("claimed job unreadable on n1: %v", err)
	} else if !bytes.Equal(got, wantClaim) {
		t.Errorf("n1's claimed result differs from the solo run\ngot: %s\nwant: %s", got, wantClaim)
	}
	cancel()

	// --- Phase 2: gray failure (chaos clock 12s..32s) -----------------
	// n3 answers probes again (300-500ms delay < 1s probe timeout) so
	// it reads as alive — but every forwarded request to it is slow.
	// Hedged reads through n1 must stay fast by racing n2's replica,
	// and losing to the hedge must re-trip n3's breaker.
	time.Sleep(time.Until(t0.Add(13 * time.Second)))
	aliveDeadline := time.Now().Add(10 * time.Second)
	for mustResilView(t, n1.addr).nodeState("n3") != cluster.StateAlive {
		if time.Now().After(aliveDeadline) {
			t.Fatal("n1 never saw n3 return to alive in the slow phase")
		}
		time.Sleep(100 * time.Millisecond)
	}
	base := mustResilView(t, n1.addr)
	const reads = 12
	fast := 0
	for i := 0; i < reads; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		start := time.Now()
		job, err := apiClient(n1.addr).GetJob(ctx, idHedge)
		elapsed := time.Since(start)
		cancel()
		if err != nil {
			t.Fatalf("slow-phase read %d: %v", i, err)
		}
		if job.Status != serve.JobDone || !bytes.Equal(job.Result, wantHedge) {
			t.Fatalf("slow-phase read %d: status %s, bytes diverged", i, job.Status)
		}
		if elapsed < 250*time.Millisecond {
			fast++
		}
		// Space the reads past the breaker cooldown so half-open probes
		// (the reads that actually touch slow n2 and hedge) keep coming.
		time.Sleep(250 * time.Millisecond)
	}
	after := mustResilView(t, n1.addr)
	if after.Hedges <= base.Hedges {
		t.Errorf("no hedges fired in the slow phase (before %d, after %d)", base.Hedges, after.Hedges)
	}
	if after.HedgeWins <= base.HedgeWins {
		t.Errorf("no hedge ever beat the slow primary (before %d, after %d)", base.HedgeWins, after.HedgeWins)
	}
	if fast < reads*3/4 {
		t.Errorf("only %d/%d reads finished under 250ms against a 300-500ms-slow owner", fast, reads)
	}
	if after.Chaos == nil || after.Chaos.Drops == 0 || after.Chaos.Delays == 0 {
		t.Errorf("chaos counters not surfaced on /v1/cluster: %+v", after.Chaos)
	}

	// --- Phase 3: heal (chaos clock > 32s) ----------------------------
	// Views converge, lease tables drain, and the first clean read
	// through n1 is the half-open probe that closes n3's breaker.
	time.Sleep(time.Until(t0.Add(33 * time.Second)))
	healDeadline := time.Now().Add(20 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_, _ = apiClient(n1.addr).GetJob(ctx, idHedge)
		cancel()
		healed := true
		var views [3]*resilView
		for i, n := range nodes {
			v := mustResilView(t, n.addr)
			views[i] = v
			for _, m := range v.Nodes {
				if m.State != cluster.StateAlive {
					healed = false
				}
			}
			if len(v.Leases) != 0 {
				healed = false
			}
		}
		if views[0].breakerState("n3") != cluster.BreakerClosed {
			healed = false
		}
		if healed {
			break
		}
		if time.Now().After(healDeadline) {
			t.Fatalf("fleet never healed:\nn1: %+v\nn2: %+v\nn3: %+v", views[0], views[1], views[2])
		}
		time.Sleep(200 * time.Millisecond)
	}

	// No goroutine pileup from 35s of drops, delays, and hedges.
	for _, n := range nodes {
		if g := goroutineCount(t, n.addr); g > 300 {
			t.Errorf("%s runs %d goroutines after heal — leak", n.id, g)
		}
	}

	// Every node serves byte-identical results for both jobs.
	for _, n := range nodes {
		for _, c := range []struct {
			id   string
			want json.RawMessage
		}{{idClaim, wantClaim}, {idHedge, wantHedge}} {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			got, err := apiClient(n.addr).WaitJob(ctx, c.id)
			cancel()
			if err != nil {
				t.Errorf("%s: job %s unreadable after heal: %v", n.id, c.id, err)
				continue
			}
			if !bytes.Equal(got, c.want) {
				t.Errorf("%s: job %s differs from the solo run\ngot: %s\nwant: %s", n.id, c.id, got, c.want)
			}
		}
	}
}
