package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
)

// compactJSON normalizes JSON bytes for cross-surface comparison: the
// v2 job resource embeds the v1 result document, but encodeJSON
// re-indents embedded raw messages, so parity is asserted on compacted
// bytes (same document, not same whitespace).
func compactJSON(t *testing.T, raw []byte) string {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatalf("compact %q: %v", raw, err)
	}
	return buf.String()
}

// TestV2RunParityWithV1: a sync run through POST /v2/jobs returns the
// same result document as POST /v1/run, wrapped in the job resource
// with schema, tenant and status fields.
func TestV2RunParityWithV1(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	v1Status, v1Body := postJSON(t, ts.URL+"/v1/run", sorRun)
	if v1Status != http.StatusOK {
		t.Fatalf("/v1/run: status %d: %s", v1Status, v1Body)
	}
	v2Status, v2Body := postJSON(t, ts.URL+"/v2/jobs", `{"run":`+sorRun+`}`)
	if v2Status != http.StatusOK {
		t.Fatalf("/v2/jobs: status %d: %s", v2Status, v2Body)
	}
	var job V2Job
	if err := json.Unmarshal(v2Body, &job); err != nil {
		t.Fatal(err)
	}
	if job.Schema != V2SchemaVersion {
		t.Errorf("schema = %d, want %d", job.Schema, V2SchemaVersion)
	}
	if job.Tenant != DefaultTenant {
		t.Errorf("tenant = %q, want %q", job.Tenant, DefaultTenant)
	}
	if job.Status != JobDone {
		t.Errorf("status = %q, want %q", job.Status, JobDone)
	}
	if got, want := compactJSON(t, job.Result), compactJSON(t, v1Body); got != want {
		t.Errorf("v2 result differs from v1 run:\n--- v1 ---\n%s\n--- v2 ---\n%s", want, got)
	}
}

// TestV2BatchParityWithV1: same for a sync batch, plus the async path —
// the same idempotency key through both surfaces names the same job,
// and the v2 job resource's result is the v1 poll document.
func TestV2BatchParityWithV1(t *testing.T) {
	batch := `{"scale":"quick","jobs":[{"app":"sieve","config":{"procs":4,"threads":2,"model":"switch-on-use"}}]}`

	_, plain := newTestServer(t, Config{})
	v1Status, v1Body := postJSON(t, plain.URL+"/v1/batch", batch)
	if v1Status != http.StatusOK {
		t.Fatalf("/v1/batch: status %d: %s", v1Status, v1Body)
	}
	v2Status, v2Body := postJSON(t, plain.URL+"/v2/jobs", `{"batch":`+batch+`}`)
	if v2Status != http.StatusOK {
		t.Fatalf("/v2/jobs sync batch: status %d: %s", v2Status, v2Body)
	}
	var sync V2Job
	if err := json.Unmarshal(v2Body, &sync); err != nil {
		t.Fatal(err)
	}
	if got, want := compactJSON(t, sync.Result), compactJSON(t, v1Body); got != want {
		t.Errorf("v2 sync batch result differs from v1:\n--- v1 ---\n%s\n--- v2 ---\n%s", want, got)
	}

	// Async: submit over v1, read back over v2.
	path := filepath.Join(t.TempDir(), "wal")
	_, ts := newJournalServer(t, Config{CheckpointEvery: 300_000}, path)
	const key = "v2-parity"
	status, ack := postJSONKey(t, ts.URL+"/v1/batch", key, batch)
	if status != http.StatusAccepted {
		t.Fatalf("v1 async submit: status %d: %s", status, ack)
	}
	v1Done := pollJob(t, ts, JobID(key))

	// A v2 resubmit of the same key must resolve to the same job.
	req, err := http.NewRequest("POST", ts.URL+"/v2/jobs", strings.NewReader(`{"batch":`+batch+`}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("v2 resubmit: status %d: %s", resp.StatusCode, body)
	}
	var resub V2Job
	if err := json.Unmarshal(body, &resub); err != nil {
		t.Fatal(err)
	}
	if resub.JobID != JobID(key) {
		t.Errorf("v2 resubmit job id %s, want %s", resub.JobID, JobID(key))
	}

	getStatus, getBody := getURL(t, ts.URL+"/v2/jobs/"+JobID(key))
	if getStatus != http.StatusOK {
		t.Fatalf("GET /v2/jobs/{id}: status %d: %s", getStatus, getBody)
	}
	var got V2Job
	if err := json.Unmarshal(getBody, &got); err != nil {
		t.Fatal(err)
	}
	if got.Status != JobDone {
		t.Fatalf("v2 job status %q, want done", got.Status)
	}
	if a, b := compactJSON(t, got.Result), compactJSON(t, v1Done); a != b {
		t.Errorf("v2 job result differs from v1 poll body:\n--- v1 ---\n%s\n--- v2 ---\n%s", b, a)
	}
	if got.Checkpoint == 0 {
		t.Error("v2 job resource reports zero checkpoints after a checkpointed run")
	}
}

// getURL GETs url and returns status + body.
func getURL(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestV2ErrorEnvelope: every /v2 failure speaks the one envelope with a
// machine-readable code.
func TestV2ErrorEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		auth       string
		wantStatus int
		wantCode   string
	}{
		{"garbage body", "POST", "/v2/jobs", "{not json", "", http.StatusBadRequest, "bad_request"},
		{"neither run nor batch", "POST", "/v2/jobs", "{}", "", http.StatusBadRequest, "bad_request"},
		{"both run and batch", "POST", "/v2/jobs",
			`{"run":` + sorRun + `,"batch":{"jobs":[]}}`, "", http.StatusBadRequest, "bad_request"},
		{"invalid run", "POST", "/v2/jobs",
			`{"run":{"app":"no-such-app","config":{"procs":1,"threads":1,"model":"switch-on-use"}}}`,
			"", http.StatusBadRequest, "bad_request"},
		{"unknown API key", "POST", "/v2/jobs", `{"run":` + sorRun + `}`,
			"Bearer nope", http.StatusUnauthorized, "unauthorized"},
		{"job without journal", "GET", "/v2/jobs/b-0000000000000000", "", "", http.StatusNotFound, "not_found"},
		{"events without journal", "GET", "/v2/jobs/b-0000000000000000/events", "", "", http.StatusNotFound, "not_found"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var rd io.Reader
			if tc.body != "" {
				rd = strings.NewReader(tc.body)
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, rd)
			if err != nil {
				t.Fatal(err)
			}
			if tc.auth != "" {
				req.Header.Set("Authorization", tc.auth)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.wantStatus, body)
			}
			var env V2Error
			if err := json.Unmarshal(body, &env); err != nil {
				t.Fatalf("not the error envelope: %s", body)
			}
			if env.Error.Code != tc.wantCode {
				t.Errorf("code %q, want %q", env.Error.Code, tc.wantCode)
			}
			if env.Error.Message == "" {
				t.Error("empty error message")
			}
		})
	}
}

// TestV2QuotaEnforcement: a tenant with a 1-token bucket gets one
// request through (with its quota reported in the body) and a 429 with
// the quota_exceeded code, a retry hint, and a Retry-After header on
// the next. The v1 surface enforces the same bucket in its own shape.
func TestV2QuotaEnforcement(t *testing.T) {
	_, ts := newTestServer(t, Config{Tenants: []TenantConfig{
		{Name: "metered", Weight: 1, Rate: 0.0001, Burst: 1, APIKeys: []string{"sekrit"}},
	}})
	do := func(path, body string) (int, []byte) {
		t.Helper()
		req, err := http.NewRequest("POST", ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Authorization", "Bearer sekrit")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
			t.Error("429 without a Retry-After header")
		}
		return resp.StatusCode, data
	}

	status, body := do("/v2/jobs", `{"run":`+sorRun+`}`)
	if status != http.StatusOK {
		t.Fatalf("first metered request: status %d: %s", status, body)
	}
	var job V2Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if job.Tenant != "metered" {
		t.Errorf("tenant %q, want metered", job.Tenant)
	}
	if job.Quota == nil || job.Quota.Burst != 1 {
		t.Errorf("quota missing or wrong from metered response: %+v", job.Quota)
	}

	status, body = do("/v2/jobs", `{"run":`+sorRun+`}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("second metered request: status %d, want 429: %s", status, body)
	}
	var env V2Error
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("not the error envelope: %s", body)
	}
	if env.Error.Code != "quota_exceeded" {
		t.Errorf("code %q, want quota_exceeded", env.Error.Code)
	}
	if env.Error.RetryAfterMS <= 0 {
		t.Errorf("retry_after_ms = %d, want > 0", env.Error.RetryAfterMS)
	}

	// The v1 shim enforces the same bucket in the legacy error shape.
	status, body = do("/v1/run", sorRun)
	if status != http.StatusTooManyRequests {
		t.Fatalf("v1 metered request: status %d, want 429: %s", status, body)
	}
	var legacy errorResponse
	if err := json.Unmarshal(body, &legacy); err != nil || legacy.Error == "" {
		t.Errorf("v1 429 body is not the legacy error shape: %s", body)
	}
}

// sseFrame is one parsed SSE event frame.
type sseFrame struct {
	id    string
	event string
	data  string
}

// readSSE consumes an event stream until the done event (or EOF) and
// returns the frames.
func readSSE(t *testing.T, r io.Reader) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 8<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" {
				frames = append(frames, cur)
				if cur.event == "done" {
					return frames
				}
			}
			cur = sseFrame{}
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read SSE: %v", err)
	}
	return frames
}

// TestSSEEventOrderingAndResume subscribes to a live job, requires the
// event grammar (status first, checkpoints strictly increasing, done
// last), then replays with Last-Event-ID from a mid-stream cursor and
// requires exactly the tail — no duplicate, no missing event.
func TestSSEEventOrderingAndResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	_, ts := newJournalServer(t, Config{CheckpointEvery: 150_000}, path)
	batch := `{"scale":"quick","jobs":[{"app":"sieve","config":{"procs":4,"threads":2,"model":"switch-on-use"}}]}`
	const key = "sse-ordering"
	status, ack := postJSONKey(t, ts.URL+"/v1/batch", key, batch)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, ack)
	}
	id := JobID(key)

	// Live subscription: opened right after the 202, so most events
	// arrive while the job runs.
	frames := fetchStream(t, ts, "/v1/batch/jobs/"+id+"/events", "")
	if len(frames) < 2 {
		t.Fatalf("stream delivered %d frames, want status + checkpoints + done", len(frames))
	}
	if frames[0].event != "status" {
		t.Errorf("first frame is %q, want status", frames[0].event)
	}
	if last := frames[len(frames)-1]; last.event != "done" {
		t.Errorf("last frame is %q, want done", last.event)
	}
	var ids []string
	prev := sseCursorStart
	for _, f := range frames[1 : len(frames)-1] {
		if f.event != "checkpoint" {
			t.Fatalf("mid-stream frame is %q, want checkpoint", f.event)
		}
		ev, ok := parseEventID(f.id)
		if !ok {
			t.Fatalf("unparseable event id %q", f.id)
		}
		if !ev.after(prev) {
			t.Fatalf("event %s does not advance past %v — order violated", f.id, prev)
		}
		var payload JobEvent
		if err := json.Unmarshal([]byte(f.data), &payload); err != nil || payload != ev {
			t.Errorf("event %s data %q does not match its id", f.id, f.data)
		}
		prev = ev
		ids = append(ids, f.id)
	}
	if len(ids) < 3 {
		t.Fatalf("only %d checkpoint events; lower CheckpointEvery so resume has a tail to verify", len(ids))
	}

	// Resume from the middle: exactly the strict tail, then done.
	mid := len(ids) / 2
	resumed := fetchStream(t, ts, "/v1/batch/jobs/"+id+"/events", ids[mid])
	var tail []string
	for _, f := range resumed {
		if f.event == "checkpoint" {
			tail = append(tail, f.id)
		}
	}
	want := ids[mid+1:]
	if strings.Join(tail, " ") != strings.Join(want, " ") {
		t.Errorf("resume from %s delivered %v, want exactly %v", ids[mid], tail, want)
	}

	// Resume from the last event (query-parameter form): no checkpoint
	// events at all, straight to done. Also exercises the v2 route.
	final := fetchStream(t, ts, "/v2/jobs/"+id+"/events?last_event_id="+ids[len(ids)-1], "")
	for _, f := range final {
		if f.event == "checkpoint" {
			t.Errorf("resume past the end replayed checkpoint %s", f.id)
		}
	}

	// A malformed cursor is a bad_request, not a stream.
	st, body := getURL(t, ts.URL+"/v2/jobs/"+id+"/events?last_event_id=bogus")
	if st != http.StatusBadRequest {
		t.Errorf("bogus cursor: status %d, want 400: %s", st, body)
	}
	var env V2Error
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != "bad_request" {
		t.Errorf("bogus cursor error not in the v2 envelope: %s", body)
	}
}

// fetchStream opens an SSE endpoint and parses it through done.
func fetchStream(t *testing.T, ts *httptest.Server, path, lastEventID string) []sseFrame {
	t.Helper()
	req, err := http.NewRequest("GET", ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream %s: status %d: %s", path, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type %q, want text/event-stream", ct)
	}
	frames := readSSE(t, resp.Body)
	if len(frames) == 0 || frames[len(frames)-1].event != "done" {
		t.Fatalf("stream %s ended without a done event (%d frames)", path, len(frames))
	}
	return frames
}
