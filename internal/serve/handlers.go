package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"mtsim/internal/app"
	"mtsim/internal/apps"
	"mtsim/internal/cluster"
	"mtsim/internal/core"
	"mtsim/internal/exp"
	"mtsim/internal/machine"
	"mtsim/internal/metrics"
	"mtsim/internal/net"
)

// ResponseSchemaVersion identifies the JSON layout of the /v1 response
// bodies. The embedded metrics records carry the internal/metrics
// schema version independently.
const ResponseSchemaVersion = 1

// ConfigRequest is the wire form of a simulation configuration: the
// JSON-friendly subset of machine.Config with the model by name.
// Decoding goes through machine.Config.Validate — the same check the
// library path runs — so the server can never accept a configuration
// the library would reject.
type ConfigRequest struct {
	Procs         int              `json:"procs"`
	Threads       int              `json:"threads"`
	Model         string           `json:"model"`
	Latency       int              `json:"latency,omitempty"`
	SwitchCost    int              `json:"switch_cost,omitempty"`
	RunLimit      int              `json:"run_limit,omitempty"`
	CritPriority  bool             `json:"crit_priority,omitempty"`
	GroupWindow   bool             `json:"group_window,omitempty"`
	WindowCells   int              `json:"window_cells,omitempty"`
	LatencyJitter int              `json:"latency_jitter,omitempty"`
	MaxCycles     int64            `json:"max_cycles,omitempty"`
	Topology      *TopologyRequest `json:"topology,omitempty"`
	Faults        *FaultsRequest   `json:"faults,omitempty"`
}

// TopologyRequest is the wire form of the interconnect-topology knobs.
// Kind names a net.TopologyKind ("constant", "mesh", "fattree",
// "dragonfly"); an unknown name is a 400 listing the valid choices.
// Zero-valued shape parameters take their Procs-derived defaults.
type TopologyRequest struct {
	Kind        string `json:"kind"`
	Nodes       int    `json:"nodes,omitempty"`
	HopCycles   int    `json:"hop_cycles,omitempty"`
	ChannelBits int    `json:"channel_bits,omitempty"`
	MemCycles   int    `json:"mem_cycles,omitempty"`
}

// FaultsRequest is the wire form of the fault-injection knobs.
type FaultsRequest struct {
	Seed      uint64  `json:"seed"`
	DropRate  float64 `json:"drop_rate,omitempty"`
	DupRate   float64 `json:"dup_rate,omitempty"`
	DelayRate float64 `json:"delay_rate,omitempty"`
}

// ToMachine resolves the wire config into a validated machine.Config.
func (c *ConfigRequest) ToMachine() (machine.Config, error) {
	model, err := machine.ParseModel(c.Model)
	if err != nil {
		return machine.Config{}, err
	}
	cfg := machine.Config{
		Procs: c.Procs, Threads: c.Threads, Model: model,
		Latency: c.Latency, SwitchCost: c.SwitchCost, RunLimit: c.RunLimit,
		CritPriority: c.CritPriority,
		GroupWindow:  c.GroupWindow, WindowCells: c.WindowCells,
		LatencyJitter: c.LatencyJitter, MaxCycles: c.MaxCycles,
	}
	if t := c.Topology; t != nil {
		kind, err := net.ParseTopology(t.Kind)
		if err != nil {
			return machine.Config{}, err
		}
		cfg.Topology = net.TopologyConfig{
			Kind: kind, Nodes: t.Nodes, HopCycles: t.HopCycles,
			ChannelBits: t.ChannelBits, MemCycles: t.MemCycles,
		}
	}
	if f := c.Faults; f != nil {
		cfg.Faults = net.FaultConfig{
			Enabled: true, Seed: f.Seed,
			DropRate: f.DropRate, DupRate: f.DupRate, DelayRate: f.DelayRate,
		}
	}
	if err := cfg.Validate(); err != nil {
		return machine.Config{}, err
	}
	return cfg, nil
}

// RunRequest is the /v1/run body.
type RunRequest struct {
	App       string        `json:"app"`
	Scale     string        `json:"scale,omitempty"` // default "quick"
	Config    ConfigRequest `json:"config"`
	Metrics   bool          `json:"metrics,omitempty"`
	TimeoutMS int64         `json:"timeout_ms,omitempty"`
}

// RunResponse is the /v1/run reply.
type RunResponse struct {
	Schema         int                 `json:"schema"`
	App            string              `json:"app"`
	Scale          string              `json:"scale"`
	Model          string              `json:"model"`
	Cycles         int64               `json:"cycles"`
	Instrs         int64               `json:"instrs"`
	BaselineCycles int64               `json:"baseline_cycles"`
	Speedup        float64             `json:"speedup"`
	Efficiency     float64             `json:"efficiency"`
	Utilization    float64             `json:"utilization"`
	Metrics        *metrics.RunMetrics `json:"metrics,omitempty"`
}

// BatchRequest is the /v1/batch body: a job list over one scale.
// IdempotencyKey (or the Idempotency-Key header, which wins) switches a
// journaling server to the async path: the request is journaled, acked
// with 202 {job_id}, and survives crashes; resubmitting the same key is
// a no-op that returns the same job.
type BatchRequest struct {
	Scale          string     `json:"scale,omitempty"`
	Jobs           []BatchJob `json:"jobs"`
	Metrics        bool       `json:"metrics,omitempty"`
	TimeoutMS      int64      `json:"timeout_ms,omitempty"`
	IdempotencyKey string     `json:"idempotency_key,omitempty"`
}

// BatchJob is one (application, configuration) pair.
type BatchJob struct {
	App    string        `json:"app"`
	Config ConfigRequest `json:"config"`
}

// BatchResponse is the /v1/batch reply. Results and Errors are
// job-aligned with the request: a canceled or failed job reports its
// error string and a null result, completed jobs report results even
// when the batch as a whole failed (the library's partial-results
// contract, surfaced over the wire).
type BatchResponse struct {
	Schema  int               `json:"schema"`
	Scale   string            `json:"scale"`
	Results []*BatchJobResult `json:"results"`
	Errors  []string          `json:"errors"`
	Failed  int               `json:"failed"`
}

// BatchJobResult is one job's measurements.
type BatchJobResult struct {
	App        string  `json:"app"`
	Model      string  `json:"model"`
	Cycles     int64   `json:"cycles"`
	Instrs     int64   `json:"instrs"`
	Efficiency float64 `json:"efficiency"`
}

// errorResponse is every endpoint's failure body.
type errorResponse struct {
	Error string `json:"error"`
}

// encodeJSON renders v exactly as writeJSON sends it. The journal's
// done records store these bytes, so a replayed job's response is
// byte-identical to a live one.
func encodeJSON(v any) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
	return buf.Bytes()
}

// writeJSON emits v with the indentation the golden files use.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(encodeJSON(v))
}

// httpError maps an error to a status + JSON body. Cancellation maps to
// 504 (deadline) / 499-style 503 (client gone); validation and unknown
// names map to 400; everything else is a 500.
func (s *Server) httpError(w http.ResponseWriter, err error, fallback int) {
	status := fallback
	switch {
	case errors.Is(err, ErrDoomed):
		// Deadline-aware shed: the queue wait would consume the request's
		// deadline, so reject now with a come-back hint instead of holding
		// a slot until the inevitable 504.
		status = http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = http.StatusServiceUnavailable
	case errors.Is(err, machine.ErrMaxCycles):
		status = http.StatusUnprocessableEntity
	}
	if status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests {
		// 503s are transient by contract (drain, forwarding outage): give
		// clients the same jittered come-back hint the 429 path sends, so
		// a draining node's rejected herd does not return in lockstep.
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// rejectFull is the 429 + Retry-After admission rejection. The hint is
// jittered around cfg.RetryAfter so a herd of rejected clients does not
// come back in lockstep (see RetryDelay for the client-side half).
func (s *Server) rejectFull(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
	writeJSON(w, http.StatusTooManyRequests,
		errorResponse{Error: fmt.Sprintf("job queue full (%d running, %d queued); retry later",
			s.gate.Inflight(), s.gate.Queued())})
}

// requestContext derives the run's context: the HTTP request context
// (so a disconnecting client cancels its simulation) bounded by the
// requested or default deadline, capped at MaxTimeout.
func (s *Server) requestContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return context.WithTimeout(r.Context(), d)
}

// sessionKey names the shared session for a scale/metrics pair. It is
// also the cluster route key for sync requests: every request for the
// same session lands on the same node, so the memo cache accumulates
// fleet-wide instead of fragmenting per node.
func sessionKey(scale app.Scale, collectMetrics bool) string {
	key := scale.String()
	if collectMetrics {
		key += "+metrics"
	}
	return key
}

// session resolves the shared session for a scale/metrics pair. The
// metrics flag forks the cache key rather than mutating a shared
// session: Session.CollectMetrics must be set before the first Run and
// requests run concurrently.
func (s *Server) session(scale app.Scale, collectMetrics bool) *core.Session {
	return s.sessions.Get(sessionKey(scale, collectMetrics))
}

// decodeScale parses an optional scale name (default quick).
func decodeScale(name string) (app.Scale, error) {
	if name == "" {
		return app.Quick, nil
	}
	return app.ParseScale(name)
}

// validateRun resolves a run request's scale, application and machine
// configuration — the validation half shared by the v1 handler and the
// v2 degenerate-job path, so both surfaces accept exactly the same
// requests.
func (s *Server) validateRun(req *RunRequest) (app.Scale, *app.App, machine.Config, error) {
	scale, err := decodeScale(req.Scale)
	if err != nil {
		return 0, nil, machine.Config{}, err
	}
	cfg, err := req.Config.ToMachine()
	if err != nil {
		return 0, nil, machine.Config{}, err
	}
	a, err := apps.New(req.App, scale)
	if err != nil {
		return 0, nil, machine.Config{}, err
	}
	return scale, a, cfg, nil
}

// acquireGate admits through the shared worker gate, accounting the
// wait as the tenant's queue time.
func (s *Server) acquireGate(ctx context.Context, t *tenant) (func(), error) {
	start := time.Now()
	release, err := s.gate.Acquire(ctx)
	if t != nil {
		t.queueMS.Add(time.Since(start).Milliseconds())
	}
	return release, err
}

// execRun is the execution core of a sync run: admit, simulate under
// ctx, fold in the baseline, account the tenant's usage. Both the v1
// handler and POST /v2/jobs delegate here — the returned document is
// the one byte-layout both surfaces serve.
func (s *Server) execRun(ctx context.Context, t *tenant, scale app.Scale, a *app.App, cfg machine.Config, collectMetrics bool) (*RunResponse, error) {
	if s.shedMetricsNow(collectMetrics) {
		collectMetrics = false // brownout: results keep flowing, garnish does not
	}
	release, err := s.acquireGate(ctx, t)
	if err != nil {
		return nil, err
	}
	defer release()
	sess := s.session(scale, collectMetrics)
	res, err := sess.RunContext(ctx, a, cfg)
	if err != nil {
		return nil, err
	}
	base, err := sess.BaselineContext(ctx, a)
	if err != nil {
		return nil, err
	}
	if t != nil {
		t.jobs.Add(1)
		t.simCycles.Add(res.Cycles)
	}
	return &RunResponse{
		Schema:         ResponseSchemaVersion,
		App:            a.Name,
		Scale:          scale.String(),
		Model:          res.Config.Model.String(),
		Cycles:         res.Cycles,
		Instrs:         res.Instrs,
		BaselineCycles: base,
		Speedup:        res.Speedup(base),
		Efficiency:     res.Efficiency(base),
		Utilization:    res.Utilization(),
		Metrics:        res.Metrics,
	}, nil
}

// handleRun runs one simulation: decode + validate, admit, simulate
// under the request deadline, report the paper metrics (and the
// cycle-accounting record when asked). A thin shim over execRun — the
// same core the v2 surface uses — rendering the legacy v1 body.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	var req RunRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	scale, a, cfg, err := s.validateRun(&req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	t, ok := s.admitTenant(w, r, false)
	if !ok {
		return
	}
	// Cluster mode: runs route by session key, so the whole fleet shares
	// one memo cache per scale instead of one per node.
	if s.forwardIfRemote(w, r, cluster.SessionRouteKey(sessionKey(scale, req.Metrics)), body) {
		return
	}

	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	resp, err := s.execRun(ctx, t, scale, a, cfg, req.Metrics)
	if err != nil {
		if errors.Is(err, ErrQueueFull) {
			s.rejectFull(w)
			return
		}
		s.httpError(w, err, http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// parseBatch validates a batch body and resolves its jobs, with the
// job index in every error. The sync handler and the async dispatcher
// share it so the two paths accept exactly the same requests.
func (s *Server) parseBatch(req *BatchRequest) (app.Scale, []core.Job, error) {
	if len(req.Jobs) == 0 {
		return 0, nil, errors.New("batch needs at least one job")
	}
	if len(req.Jobs) > s.cfg.MaxBatchJobs {
		return 0, nil, fmt.Errorf("batch of %d jobs exceeds the %d-job limit", len(req.Jobs), s.cfg.MaxBatchJobs)
	}
	scale, err := decodeScale(req.Scale)
	if err != nil {
		return 0, nil, err
	}
	jobs := make([]core.Job, len(req.Jobs))
	for i := range req.Jobs {
		cfg, err := req.Jobs[i].Config.ToMachine()
		if err != nil {
			return 0, nil, fmt.Errorf("job %d: %v", i, err)
		}
		a, err := apps.New(req.Jobs[i].App, scale)
		if err != nil {
			return 0, nil, fmt.Errorf("job %d: %v", i, err)
		}
		jobs[i] = core.Job{App: a, Cfg: cfg}
	}
	return scale, jobs, nil
}

// buildBatchResponse folds job-aligned results and errors into the wire
// response. It is the single rendering path for sync and async batches,
// which is what makes a journal-replayed job's response byte-identical
// to a live one. A non-BatchError batchErr is request-level and comes
// back as the error.
func buildBatchResponse(ctx context.Context, sess *core.Session, scale app.Scale, jobs []core.Job, results []*machine.Result, batchErr error) (*BatchResponse, error) {
	var be *core.BatchError
	if batchErr != nil && !errors.As(batchErr, &be) {
		return nil, batchErr
	}
	resp := &BatchResponse{
		Schema:  ResponseSchemaVersion,
		Scale:   scale.String(),
		Results: make([]*BatchJobResult, len(jobs)),
		Errors:  make([]string, len(jobs)),
	}
	for i, res := range results {
		if be != nil && be.Errs[i] != nil {
			resp.Errors[i] = be.Errs[i].Error()
			resp.Failed++
			continue
		}
		if res == nil {
			continue
		}
		base, err := sess.BaselineContext(ctx, jobs[i].App)
		if err != nil {
			resp.Errors[i] = err.Error()
			resp.Failed++
			continue
		}
		resp.Results[i] = &BatchJobResult{
			App:        jobs[i].App.Name,
			Model:      res.Config.Model.String(),
			Cycles:     res.Cycles,
			Instrs:     res.Instrs,
			Efficiency: res.Efficiency(base),
		}
	}
	return resp, nil
}

// execBatch is the execution core of a sync batch: admit, run the job
// list through the session's worker pool, fold job-aligned partial
// results, account the tenant's usage. Shared by the v1 handler and
// the v2 sync-batch path, so both surfaces return the same document.
// An all-jobs-failed batch under a dead deadline surfaces the context
// error (the caller maps it like a run).
func (s *Server) execBatch(ctx context.Context, t *tenant, scale app.Scale, jobs []core.Job, collectMetrics bool) (*BatchResponse, error) {
	if s.shedMetricsNow(collectMetrics) {
		collectMetrics = false // brownout: see execRun
	}
	release, err := s.acquireGate(ctx, t)
	if err != nil {
		return nil, err
	}
	defer release()
	sess := s.session(scale, collectMetrics)
	results, batchErr := sess.RunBatchContext(ctx, jobs)
	resp, err := buildBatchResponse(ctx, sess, scale, jobs, results, batchErr)
	if err != nil {
		return nil, err
	}
	// A batch with failures still returns 200: the job-aligned errors
	// carry the detail and the completed jobs' results are usable. An
	// all-jobs-failed batch under a dead deadline maps like a run.
	if resp.Failed == len(jobs) && batchErr != nil {
		if errors.Is(batchErr, context.DeadlineExceeded) || errors.Is(batchErr, context.Canceled) {
			return nil, batchErr
		}
	}
	if t != nil {
		var cycles int64
		for _, res := range results {
			if res != nil {
				cycles += res.Cycles
			}
		}
		t.jobs.Add(1)
		t.simCycles.Add(cycles)
	}
	return resp, nil
}

// handleBatch runs a job list through the session's worker pool under
// one admission slot and the request deadline, returning job-aligned
// partial results. With an idempotency key on a journaling server the
// request instead becomes a durable async job: journaled, acked with
// 202, polled on /v1/batch/jobs/{id}.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	var req BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	scale, jobs, err := s.parseBatch(&req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	t, ok := s.admitTenant(w, r, false)
	if !ok {
		return
	}

	key := r.Header.Get("Idempotency-Key")
	if key == "" {
		key = req.IdempotencyKey
	}
	if key != "" && s.jm != nil {
		// Async jobs route by job id: the ring owner journals and runs
		// the job, its successors hold replicas.
		if s.forwardIfRemote(w, r, cluster.JobRouteKey(JobID(key)), body) {
			return
		}
		job, err := s.jm.submit(key, t.name, body)
		if err != nil {
			s.httpError(w, err, http.StatusServiceUnavailable)
			return
		}
		status, ckpt, _ := job.state()
		writeJSON(w, http.StatusAccepted, &JobStatus{
			Schema: ResponseSchemaVersion, JobID: job.id, Status: status,
			Checkpoint: ckpt, RetryAfterMS: retryAfterMS(s.cfg.RetryAfter),
		})
		return
	}
	if s.forwardIfRemote(w, r, cluster.SessionRouteKey(sessionKey(scale, req.Metrics)), body) {
		return
	}

	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	resp, err := s.execBatch(ctx, t, scale, jobs, req.Metrics)
	if err != nil {
		if errors.Is(err, ErrQueueFull) {
			s.rejectFull(w)
			return
		}
		s.httpError(w, err, http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleJob reports an async job: 404 for unknown ids (or when
// journaling is off), 202 + status while queued or running, and the
// recorded response bytes verbatim once done.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if s.jm == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "async jobs disabled: server runs without a journal"})
		return
	}
	if !s.jm.owns(r.PathValue("id")) && s.forwardIfRemote(w, r, cluster.JobRouteKey(r.PathValue("id")), nil) {
		return
	}
	job := s.jm.get(r.PathValue("id"))
	if job == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job id"})
		return
	}
	status, ckpt, resp := job.state()
	if status != JobDone {
		writeJSON(w, http.StatusAccepted, &JobStatus{
			Schema: ResponseSchemaVersion, JobID: job.id, Status: status,
			Checkpoint: ckpt, RetryAfterMS: retryAfterMS(s.cfg.RetryAfter),
		})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(resp)
}

// handleExperiment renders one paper table/figure as text/plain, reusing
// the scale's shared session memo across requests.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	e, err := exp.ByID(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	}
	q := r.URL.Query()
	scale, err := decodeScale(q.Get("scale"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	opts := []exp.Option{exp.WithScale(scale)}
	if v := q.Get("latency"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "latency: " + err.Error()})
			return
		}
		opts = append(opts, exp.WithLatency(n))
	}
	if v := q.Get("maxmt"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "maxmt: " + err.Error()})
			return
		}
		opts = append(opts, exp.WithMaxMT(n))
	}
	if v := q.Get("kernels"); v != "" {
		opts = append(opts, exp.WithKernels(strings.Split(v, ",")...))
	}
	if v := q.Get("topologies"); v != "" {
		opts = append(opts, exp.WithTopologies(strings.Split(v, ",")...))
	}
	var timeoutMS int64
	if v := q.Get("timeout_ms"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "timeout_ms: " + err.Error()})
			return
		}
		timeoutMS = n
	}

	ctx, cancel := s.requestContext(r, timeoutMS)
	defer cancel()

	var buf strings.Builder
	// Share the scale's session memo across experiment requests, but
	// keep each request's context its own: WithSession after WithScale,
	// WithContext per request.
	opts = append(opts, exp.WithSession(s.session(scale, false)), exp.WithContext(ctx))
	o := exp.New(&buf, opts...)
	if err := o.Validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}

	release, err := s.gate.Acquire(ctx)
	if err != nil {
		if errors.Is(err, ErrQueueFull) {
			s.rejectFull(w)
			return
		}
		s.httpError(w, err, http.StatusServiceUnavailable)
		return
	}
	defer release()

	if err := e.Run(o); err != nil {
		s.httpError(w, err, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "== %s: %s\npaper: %s\n\n%s", e.ID, e.Title, e.Paper, buf.String())
}

// healthzResponse is the /v1/healthz body: liveness plus the admission
// gauges, so a load balancer (or the smoke test) can see queue pressure
// without scraping expvar.
type healthzResponse struct {
	Status             string          `json:"status"`
	Inflight           int64           `json:"inflight"`
	Queued             int64           `json:"queued"`
	Sessions           int             `json:"sessions"`
	UptimeMS           int64           `json:"uptime_ms"`
	JournalReplayed    int64           `json:"journal_replayed"`
	CheckpointsWritten int64           `json:"checkpoints_written"`
	// Goroutines is the process gauge (leak canary for chaos runs).
	Goroutines int `json:"goroutines"`
	// Doomed counts requests shed by the deadline-aware admission check.
	Doomed   int64           `json:"doomed"`
	Brownout *brownoutStatus `json:"brownout,omitempty"`
	Tenants  []TenantUsage   `json:"tenants,omitempty"`
	Cluster  *healthzCluster `json:"cluster,omitempty"`
}

// healthzCluster is the fleet summary inside /v1/healthz (cluster mode
// only): this node's identity plus peer health and failover counters.
type healthzCluster struct {
	Self      string                  `json:"self"`
	Nodes     int                     `json:"nodes"`
	Alive     int                     `json:"alive"`
	Dead      int                     `json:"dead"`
	Claims    int64                   `json:"claims"`
	Forwards  int64                   `json:"forwards"`
	Handoffs  int64                   `json:"handoffs"`
	Hedges    int64                   `json:"hedges"`
	HedgeWins int64                   `json:"hedge_wins"`
	Breakers  []cluster.BreakerStatus `json:"breakers,omitempty"`
}

// healthz assembles the health document shared by /v1/healthz and
// /v2/healthz. Tenant usage merges this node's local table with the
// latest gossiped reports from peers (cluster mode), so accounting is
// visible fleet-wide and survives failover.
func (s *Server) healthz() *healthzResponse {
	s.brownedOut() // fold the current saturation so the report is fresh
	resp := &healthzResponse{
		Status:             "ok",
		Inflight:           s.gate.Inflight(),
		Queued:             s.gate.Queued(),
		Sessions:           s.sessions.Len(),
		UptimeMS:           time.Since(s.started).Milliseconds(),
		JournalReplayed:    s.JournalReplayed(),
		CheckpointsWritten: s.CheckpointsWritten(),
		Goroutines:         runtime.NumGoroutine(),
		Doomed:             s.gate.Doomed(),
		Tenants:            s.tenants.table(),
	}
	if s.bo != nil {
		resp.Brownout = s.bo.status()
	}
	if s.cluster != nil {
		resp.Tenants = mergeUsage(resp.Tenants, s.cluster.node.RemoteUsage())
		alive, dead := s.cluster.node.AliveCount()
		resp.Cluster = &healthzCluster{
			Self:      s.cluster.node.Self(),
			Nodes:     len(s.cluster.node.Members()),
			Alive:     alive,
			Dead:      dead,
			Claims:    s.cluster.claims.Load(),
			Forwards:  s.cluster.forwards.Load(),
			Handoffs:  s.cluster.handoffs.Load(),
			Hedges:    s.cluster.hedges.Load(),
			HedgeWins: s.cluster.hedgeWins.Load(),
			Breakers:  s.cluster.node.BreakerStates(),
		}
	}
	return resp
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.healthz())
}
