package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mtsim/internal/core"
	"mtsim/internal/machine"
)

// Async batch jobs. A batch request carrying an idempotency key on a
// journaling server is journaled and acknowledged with 202 before it
// runs; the client polls the job resource (or streams its SSE event
// feed) for the result. The job's checkpoints and final response all go
// through the journal, so a SIGKILL at any point leaves the job either
// resumable (from its latest checkpoint) or already answered (the done
// record's bytes are served verbatim) — in both cases the response the
// client eventually reads is byte-identical to the one an uncrashed
// server would have produced.
//
// Scheduling is multi-tenant: each tenant has its own FIFO queue, and a
// pool of dispatchers drains the queues by deficit round-robin weighted
// by the tenants' configured shares. One tenant's batch flood therefore
// cannot starve another tenant — exactly the paper's latency-hiding
// thesis applied to the serving plane: the scheduler always has
// somewhere useful to switch to. The pool is sized below the gate's
// worker count, so async work can never occupy every worker and
// interactive (sync) requests keep bounded queue waits regardless of
// the async backlog.

// Job lifecycle states, as reported by JobStatus. JobReplica marks a
// job this node holds only as another node's failover copy (cluster
// mode); it never runs locally unless a claim or handoff promotes it.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobReplica = "replica"
)

// JobStatus is the body of a 202 reply: the async submission ack and
// the poll response of a job that has not finished yet. Checkpoint is
// the index of the latest journaled checkpoint (a monotone progress
// marker), and RetryAfterMS a jittered poll-pacing hint so clients
// waiting on the job back off instead of hot-looping.
type JobStatus struct {
	Schema       int    `json:"schema"`
	JobID        string `json:"job_id"`
	Status       string `json:"status"`
	Checkpoint   int64  `json:"checkpoint"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// JobID derives the stable job id for an idempotency key. The id, not
// the key, names the job on the wire, so clients may use long or
// sensitive keys without them appearing in URLs.
func JobID(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return fmt.Sprintf("b-%016x", h.Sum64())
}

// JobEvent is one checkpoint progress event on a job's SSE feed: batch
// entry index and the simulation cycle the checkpoint was taken at.
// Because checkpoint cycles are deterministic (every CheckpointEvery
// cycles, and completed runs are byte-identical), the full event
// sequence of a job is deterministic too — the property that lets a
// failover successor regenerate exactly the events a dead node never
// delivered, with no duplicates and no gaps.
type JobEvent struct {
	Entry int   `json:"entry"`
	Cycle int64 `json:"cycle"`
}

// ID renders the event's SSE id: "<entry>-<cycle>". Events are totally
// ordered entry-major (entries run sequentially), so this id doubles as
// a resume cursor via Last-Event-ID.
func (e JobEvent) ID() string {
	return strconv.Itoa(e.Entry) + "-" + strconv.FormatInt(e.Cycle, 10)
}

// after reports whether e comes after o in the deterministic order.
func (e JobEvent) after(o JobEvent) bool {
	return e.Entry > o.Entry || (e.Entry == o.Entry && e.Cycle > o.Cycle)
}

// parseEventID parses a Last-Event-ID back into its event.
func parseEventID(s string) (JobEvent, bool) {
	entry, cycle, found := strings.Cut(s, "-")
	if !found {
		return JobEvent{}, false
	}
	en, err1 := strconv.Atoi(entry)
	cy, err2 := strconv.ParseInt(cycle, 10, 64)
	if err1 != nil || err2 != nil || en < 0 || cy < 0 {
		return JobEvent{}, false
	}
	return JobEvent{Entry: en, Cycle: cy}, true
}

// sortDedupEvents normalizes an event list into the deterministic
// (entry, cycle) order with duplicates removed.
func sortDedupEvents(evs []JobEvent) []JobEvent {
	if len(evs) == 0 {
		return nil
	}
	out := append([]JobEvent(nil), evs...)
	sort.Slice(out, func(i, j int) bool { return out[j].after(out[i]) })
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[i-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// asyncJob is one journaled batch job.
type asyncJob struct {
	id     string
	key    string
	tenant string

	mu  sync.Mutex
	sub *sync.Cond // broadcast on new events / status changes (SSE wakeups)

	body    json.RawMessage
	ckpts   map[int]JobCheckpoint // latest checkpoint per batch entry
	status  string
	resp    []byte // final response bytes once status == JobDone
	replica bool   // held for another node, never queued while set
	ckptN   int64  // checkpoints journaled so far (monotone)

	// events is the complete checkpoint event history in deterministic
	// (entry, cycle) order — what SSE subscribers replay and live-tail.
	events []JobEvent
	// entries/entriesDone track batch progress for the advisory ETA.
	entries     int
	entriesDone int
	started     time.Time

	// queuedAt/queueMS account time spent waiting for a dispatcher.
	queuedAt time.Time
	queueMS  int64

	// replBusy serializes replica pushes for this job: at most one push
	// is in flight, later ones are absorbed by the next checkpoint's.
	replBusy atomic.Bool
}

func newAsyncJob(id, key, tenant string) *asyncJob {
	if tenant == "" {
		tenant = DefaultTenant
	}
	j := &asyncJob{id: id, key: key, tenant: tenant}
	j.sub = sync.NewCond(&j.mu)
	return j
}

func (j *asyncJob) setStatus(s string) {
	j.mu.Lock()
	j.status = s
	j.sub.Broadcast()
	j.mu.Unlock()
}

// state returns the status, the latest checkpoint index and, when done,
// the response bytes.
func (j *asyncJob) state() (string, int64, []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, j.ckptN, j.resp
}

// noteCkpt records a freshly journaled checkpoint so state transfer,
// the poll body and the SSE feed see live progress, not just replayed
// history. Live emission is always past every recorded event (entries
// run sequentially and resumes start at the latest checkpoint), so the
// sorted-order invariant of events holds by appending.
func (j *asyncJob) noteCkpt(entry int, cycle int64, snap []byte) {
	j.mu.Lock()
	if j.ckpts == nil {
		j.ckpts = make(map[int]JobCheckpoint)
	}
	j.ckpts[entry] = JobCheckpoint{Cycle: cycle, Snap: snap}
	j.ckptN++
	j.insertEventLocked(JobEvent{Entry: entry, Cycle: cycle})
	j.sub.Broadcast()
	j.mu.Unlock()
}

// insertEventLocked adds one event preserving sorted order (append is
// the fast path; out-of-order inserts only happen when folding
// transferred histories). Duplicates are dropped.
func (j *asyncJob) insertEventLocked(e JobEvent) {
	n := len(j.events)
	if n == 0 || e.after(j.events[n-1]) {
		j.events = append(j.events, e)
		return
	}
	i := sort.Search(n, func(k int) bool { return !e.after(j.events[k]) })
	if i < n && j.events[i] == e {
		return
	}
	j.events = append(j.events, JobEvent{})
	copy(j.events[i+1:], j.events[i:])
	j.events[i] = e
}

// eventsAfter copies the recorded events strictly after `after` (the
// zero cursor, Entry:-1, selects everything).
func (j *asyncJob) eventsAfterLocked(after JobEvent) []JobEvent {
	i := sort.Search(len(j.events), func(k int) bool { return j.events[k].after(after) })
	if i == len(j.events) {
		return nil
	}
	return append([]JobEvent(nil), j.events[i:]...)
}

// etaMSLocked estimates remaining wall time from per-entry progress:
// elapsed/entriesDone scaled by the entries left. 0 until the first
// entry completes (no basis for an estimate). Advisory only — it never
// appears in deterministic payloads.
func (j *asyncJob) etaMSLocked() int64 {
	if j.entriesDone == 0 || j.entries == 0 || j.started.IsZero() {
		return 0
	}
	elapsed := time.Since(j.started).Milliseconds()
	return elapsed * int64(j.entries-j.entriesDone) / int64(j.entriesDone)
}

// progressLocked sums the latest checkpointed cycle over entries — the
// deterministic cycles-completed figure events and leases report.
func (j *asyncJob) progressLocked() int64 {
	var p int64
	for _, c := range j.ckpts {
		p += c.Cycle
	}
	return p
}

// tenantQueue is one tenant's pending-job FIFO plus its deficit
// counter: credits accumulate by the tenant's weight each round-robin
// refill and one credit buys one job dispatch.
type tenantQueue struct {
	name    string
	weight  int
	jobs    []*asyncJob
	deficit int
}

// Scheduler policy names (Config.Scheduler).
const (
	SchedulerFair = "fair" // deficit round-robin over per-tenant queues (default)
	SchedulerFIFO = "fifo" // single global queue in submit order
)

// jobManager owns the journal and runs async jobs through a dispatcher
// pool over per-tenant queues. Crash recovery stays deterministic: each
// job's checkpoint stream is self-consistent (one dispatcher runs a job
// at a time) and every completed job's bytes are independent of when or
// where it ran.
type jobManager struct {
	srv     *Server
	journal *Journal

	// baseCtx parents every job run; stop cancels it so an in-flight
	// job aborts at the drain deadline (its journaled checkpoints keep
	// it resumable).
	baseCtx context.Context
	cancel  context.CancelFunc

	mu     sync.Mutex
	cond   *sync.Cond
	jobs   map[string]*asyncJob
	closed bool
	wg     sync.WaitGroup

	// Scheduler state: fifo is the single queue of SchedulerFIFO mode;
	// queues/ring/rr are the deficit-round-robin state of fair mode.
	fair   bool
	fifo   []*asyncJob
	queues map[string]*tenantQueue
	ring   []string
	rr     int

	replayed     int64
	ckptsWritten atomic.Int64

	// Cluster wiring (zero/nil when the node runs solo). nodeID is this
	// node's cluster identity, leaseTTL the lease validity window, and
	// replicate the hook that pushes a job's latest state to its ring
	// successors (set by EnableCluster, never blocking the caller).
	nodeID    string
	leaseTTL  time.Duration
	replicate func(*asyncJob)
}

// clustered reports whether the job manager writes lease records.
func (jm *jobManager) clustered() bool { return jm.nodeID != "" }

// EnableJournal turns on crash-tolerant async batch jobs: it opens (or
// creates) the journal at path, replays it, re-queues every unfinished
// job, restores the per-tenant usage its done records carry, and starts
// the dispatcher pool. Finished jobs come back with their recorded
// responses and are served on GET without re-running. Must be called
// before the server starts handling requests; returns the number of
// jobs reconstructed from the journal.
func (s *Server) EnableJournal(path string) (replayed int, err error) {
	if s.jm != nil {
		return 0, errors.New("serve: journal already enabled")
	}
	j, jobs, err := OpenJournal(path)
	if err != nil {
		return 0, err
	}
	jm := &jobManager{
		srv:     s,
		journal: j,
		jobs:    make(map[string]*asyncJob, len(jobs)),
		fair:    s.cfg.Scheduler != SchedulerFIFO,
		queues:  make(map[string]*tenantQueue),
	}
	jm.cond = sync.NewCond(&jm.mu)
	jm.baseCtx, jm.cancel = context.WithCancel(context.Background())
	for _, rj := range jobs {
		aj := newAsyncJob(rj.ID, rj.Key, rj.Tenant)
		aj.body, aj.ckpts = rj.Body, rj.Ckpts
		aj.events = sortDedupEvents(rj.Events)
		aj.ckptN = int64(len(aj.events))
		switch {
		case rj.Resp != nil:
			aj.status, aj.resp = JobDone, rj.Resp
			if rj.Usage != nil {
				// The bugfix half of tenancy-through-crashes: a replayed
				// done record restores the usage it accrued, so counters
				// do not reset to zero on restart.
				s.tenants.add(rj.Usage.Tenant, rj.Usage.Jobs, rj.Usage.SimCycles, rj.Usage.QueueMS)
			}
		case !rj.Owned:
			// A replica (or a job handed off in a previous drain): hold
			// its state for peers, never run it here.
			aj.status, aj.replica = JobReplica, true
		default:
			aj.status = JobQueued
			jm.enqueueLocked(aj)
		}
		jm.jobs[aj.id] = aj
	}
	jm.replayed = int64(len(jobs))
	s.jm = jm
	jm.wg.Add(s.cfg.Dispatchers)
	for i := 0; i < s.cfg.Dispatchers; i++ {
		go jm.run()
	}
	return len(jobs), nil
}

// JournalReplayed reports how many jobs the journal reconstructed at
// startup (0 when journaling is off).
func (s *Server) JournalReplayed() int64 {
	if s.jm == nil {
		return 0
	}
	return s.jm.replayed
}

// CheckpointsWritten reports how many checkpoints have been journaled
// since startup (0 when journaling is off).
func (s *Server) CheckpointsWritten() int64 {
	if s.jm == nil {
		return 0
	}
	return s.jm.ckptsWritten.Load()
}

// enqueueLocked adds a queued job to its tenant's queue (or the global
// FIFO). Called with jm.mu held.
func (jm *jobManager) enqueueLocked(job *asyncJob) {
	job.mu.Lock()
	job.queuedAt = time.Now()
	job.mu.Unlock()
	if !jm.fair {
		jm.fifo = append(jm.fifo, job)
		return
	}
	q := jm.queues[job.tenant]
	if q == nil {
		q = &tenantQueue{name: job.tenant, weight: jm.srv.tenants.get(job.tenant).weight}
		jm.queues[job.tenant] = q
		jm.ring = append(jm.ring, job.tenant)
	}
	q.jobs = append(q.jobs, job)
}

// nextLocked pops the next job per the scheduling policy, nil when
// nothing is queued. Called with jm.mu held.
//
// Fair mode is deficit round-robin with unit job cost: the round-robin
// pointer rests on one tenant at a time; a tenant with credit and work
// dispatches (one credit per job) without moving the pointer, a tenant
// with no work forfeits its credit, and when a full pass dispatches
// nothing every backlogged tenant gains its weight in credits. Over any
// busy window each backlogged tenant therefore drains proportionally to
// its weight, within one job.
func (jm *jobManager) nextLocked() *asyncJob {
	if !jm.fair {
		if len(jm.fifo) == 0 {
			return nil
		}
		job := jm.fifo[0]
		jm.fifo = jm.fifo[1:]
		return job
	}
	total := 0
	for _, q := range jm.queues {
		total += len(q.jobs)
	}
	if total == 0 {
		return nil
	}
	for {
		for pass := 0; pass < len(jm.ring); pass++ {
			q := jm.queues[jm.ring[jm.rr]]
			if len(q.jobs) == 0 {
				q.deficit = 0 // no banking credit while idle
				jm.rr = (jm.rr + 1) % len(jm.ring)
				continue
			}
			if q.deficit > 0 {
				q.deficit--
				job := q.jobs[0]
				q.jobs = q.jobs[1:]
				if len(q.jobs) == 0 {
					q.deficit = 0
				}
				return job
			}
			jm.rr = (jm.rr + 1) % len(jm.ring)
		}
		// A full pass dispatched nothing: refill backlogged tenants.
		for _, q := range jm.queues {
			if len(q.jobs) > 0 {
				q.deficit += q.weight
			}
		}
	}
}

// submit journals and enqueues a new job, or returns the existing one
// for a repeated idempotency key (first submission wins; the body and
// tenant of a resubmit are ignored).
func (jm *jobManager) submit(key, tenant string, body []byte) (*asyncJob, error) {
	id := JobID(key)
	jm.mu.Lock()
	defer jm.mu.Unlock()
	if job, ok := jm.jobs[id]; ok {
		return job, nil
	}
	if jm.closed {
		return nil, errors.New("serve: server is draining; not accepting jobs")
	}
	if tenant == "" {
		tenant = DefaultTenant
	}
	// Journal before acknowledging: once the 202 goes out, the job must
	// survive any crash.
	if err := jm.journal.AppendSubmit(id, key, tenant, body); err != nil {
		return nil, err
	}
	job := newAsyncJob(id, key, tenant)
	job.body, job.status = body, JobQueued
	jm.jobs[id] = job
	jm.enqueueLocked(job)
	jm.cond.Signal()
	if jm.replicate != nil {
		// Push the submit body to the ring successors right away: a node
		// that dies before the first checkpoint still leaves its replicas
		// everything needed to run the job from scratch.
		jm.replicate(job)
	}
	return job, nil
}

// get looks a job up by id.
func (jm *jobManager) get(id string) *asyncJob {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	return jm.jobs[id]
}

// owns reports whether this node holds id as its owner — a locally
// submitted, claimed, or drain-adopted job, not a passive replica.
// Claims and handoffs move ownership without re-keying the hash ring,
// so reads of an owned job are answered locally instead of being
// forwarded to the (possibly dead) ring route owner.
func (jm *jobManager) owns(id string) bool {
	job := jm.get(id)
	if job == nil {
		return false
	}
	job.mu.Lock()
	defer job.mu.Unlock()
	return !job.replica
}

// run is one dispatcher of the pool.
func (jm *jobManager) run() {
	defer jm.wg.Done()
	for {
		jm.mu.Lock()
		var job *asyncJob
		for {
			if jm.closed {
				// Leave queued jobs in the journal; the next startup
				// replays and re-queues them.
				jm.mu.Unlock()
				return
			}
			if job = jm.nextLocked(); job != nil {
				break
			}
			jm.cond.Wait()
		}
		jm.mu.Unlock()
		job.mu.Lock()
		if !job.queuedAt.IsZero() {
			job.queueMS += time.Since(job.queuedAt).Milliseconds()
			job.queuedAt = time.Time{}
		}
		job.status = JobRunning
		job.sub.Broadcast()
		job.mu.Unlock()
		jm.runJob(job)
	}
}

// startLease journals the run's lease and keeps renewing it on a
// heartbeat until the returned stop func is called. Peers learn the
// lease from ping gossip; the journal records are what make a restart
// of this node see the job as its own.
func (jm *jobManager) startLease(job *asyncJob) (stop func()) {
	if !jm.clustered() {
		return func() {}
	}
	_ = jm.journal.AppendLease(job.id, jm.nodeID, jm.leaseTTL)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(jm.leaseTTL / 3)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				// Renewal failures (journal closing mid-drain) are not
				// fatal: the lease just stops renewing.
				_ = jm.journal.AppendLease(job.id, jm.nodeID, jm.leaseTTL)
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// runJob executes one job end to end: parse, admit through the shared
// gate, run each batch entry as a checkpointed simulation (resuming
// from replayed checkpoints when present), and journal the final
// response bytes plus the usage the job accrued.
func (jm *jobManager) runJob(job *asyncJob) {
	s := jm.srv
	stopLease := jm.startLease(job)
	defer stopLease()
	job.mu.Lock()
	body := job.body
	job.mu.Unlock()
	var req BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		jm.finish(job, encodeJSON(errorResponse{Error: "bad request body: " + err.Error()}), 0)
		return
	}
	scale, jobs, err := s.parseBatch(&req)
	if err != nil {
		jm.finish(job, encodeJSON(errorResponse{Error: err.Error()}), 0)
		return
	}
	job.mu.Lock()
	job.entries, job.entriesDone, job.started = len(jobs), 0, time.Now()
	job.mu.Unlock()

	d := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		d = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(jm.baseCtx, d)
	defer cancel()

	// AcquireWait: no deadline-aware shed for durable jobs — an aborted
	// job resumes from its checkpoints, so waiting beats rejection.
	release, err := s.gate.AcquireWait(ctx)
	if err != nil {
		jm.abortOrFail(job, err)
		return
	}
	defer release()

	sess := s.session(scale, req.Metrics)
	results := make([]*machine.Result, len(jobs))
	errs := make([]error, len(jobs))
	failed := 0
	for i := range jobs {
		ck := core.CheckpointConfig{
			Interval: s.cfg.CheckpointEvery,
			OnCheckpoint: func(cycle int64, snap []byte) error {
				if err := jm.journal.AppendCkpt(job.id, i, cycle, snap); err != nil {
					return err
				}
				jm.ckptsWritten.Add(1)
				job.noteCkpt(i, cycle, snap)
				if jm.replicate != nil {
					jm.replicate(job) // non-blocking push to ring successors
				}
				return nil
			},
		}
		job.mu.Lock()
		if c, ok := job.ckpts[i]; ok {
			ck.Resume = c.Snap
		}
		job.mu.Unlock()
		results[i], errs[i] = sess.RunCheckpointedContext(ctx, jobs[i].App, jobs[i].Cfg, ck)
		if errs[i] != nil {
			failed++
		}
		job.mu.Lock()
		job.entriesDone = i + 1
		job.sub.Broadcast()
		job.mu.Unlock()
	}
	var batchErr error
	if failed > 0 {
		batchErr = &core.BatchError{Errs: errs, Failed: failed}
	}
	resp, err := buildBatchResponse(ctx, sess, scale, jobs, results, batchErr)
	if err != nil {
		jm.abortOrFail(job, err)
		return
	}
	// Mirror the sync path: an all-jobs-failed batch under a dead
	// context is a request-level failure, not a result.
	if resp.Failed == len(jobs) && batchErr != nil &&
		(errors.Is(batchErr, context.DeadlineExceeded) || errors.Is(batchErr, context.Canceled)) {
		jm.abortOrFail(job, batchErr)
		return
	}
	var simCycles int64
	for _, r := range results {
		if r != nil {
			simCycles += r.Cycles
		}
	}
	jm.finish(job, encodeJSON(resp), simCycles)
}

// abortOrFail handles a job-level error. During shutdown the job is put
// back to queued and no done record is written — the journal has its
// submit (and any checkpoints), so the next startup resumes it. Any
// other failure is final: the error body becomes the job's response.
func (jm *jobManager) abortOrFail(job *asyncJob, err error) {
	if jm.baseCtx.Err() != nil {
		job.setStatus(JobQueued)
		return
	}
	jm.finish(job, encodeJSON(errorResponse{Error: err.Error()}), 0)
}

// finish records the job's final response and accounts its usage. The
// journal write comes first (carrying the usage delta, so a restart
// restores the counters); if it fails the in-memory result still serves
// this process's lifetime and the next startup re-runs the job
// (deterministically, to the same bytes).
func (jm *jobManager) finish(job *asyncJob, resp []byte, simCycles int64) {
	job.mu.Lock()
	queueMS := job.queueMS
	job.mu.Unlock()
	usage := &TenantUsage{Tenant: job.tenant, Jobs: 1, SimCycles: simCycles, QueueMS: queueMS}
	_ = jm.journal.AppendDone(job.id, resp, usage)
	jm.srv.tenants.add(job.tenant, 1, simCycles, queueMS)
	job.mu.Lock()
	job.status, job.resp = JobDone, resp
	job.sub.Broadcast()
	job.mu.Unlock()
	if jm.replicate != nil {
		// Replicate the final bytes too: if this node dies right after
		// finishing, peers serve the recorded response verbatim instead
		// of re-running the job.
		jm.replicate(job)
	}
}

// stop drains the dispatchers and closes the journal — the solo-node
// shutdown path. Cluster shutdown runs stopDispatcher, hands owned
// leases off, and only then closes the journal (the handoff still
// appends release records).
func (jm *jobManager) stop(ctx context.Context) error {
	err := jm.stopDispatcher(ctx)
	if cerr := jm.closeJournal(); err == nil {
		err = cerr
	}
	return err
}

// stopDispatcher drains the dispatcher pool: no new jobs start and
// in-flight jobs get until ctx expires to finish (then their contexts
// are canceled and they stay resumable).
func (jm *jobManager) stopDispatcher(ctx context.Context) error {
	jm.mu.Lock()
	if jm.closed {
		jm.mu.Unlock()
		return nil
	}
	jm.closed = true
	jm.cond.Broadcast()
	jm.mu.Unlock()

	done := make(chan struct{})
	go func() {
		jm.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		jm.cancel()
		<-done
	}
	jm.cancel()
	return nil
}

// closeJournal flushes and closes the journal; further appends fail.
func (jm *jobManager) closeJournal() error {
	return jm.journal.Close()
}
