package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"mtsim/internal/core"
	"mtsim/internal/machine"
)

// Async batch jobs. A /v1/batch request carrying an idempotency key on
// a journaling server is journaled and acknowledged with 202 before it
// runs; the client polls GET /v1/batch/jobs/{id} for the result. The
// job's checkpoints and final response all go through the journal, so a
// SIGKILL at any point leaves the job either resumable (from its latest
// checkpoint) or already answered (the done record's bytes are served
// verbatim) — in both cases the response the client eventually reads is
// byte-identical to the one an uncrashed server would have produced.

// Job lifecycle states, as reported by JobStatus. JobReplica marks a
// job this node holds only as another node's failover copy (cluster
// mode); it never runs locally unless a claim or handoff promotes it.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobReplica = "replica"
)

// JobStatus is the body of a 202 reply: the async submission ack and
// the poll response of a job that has not finished yet. Checkpoint is
// the index of the latest journaled checkpoint (a monotone progress
// marker), and RetryAfterMS a jittered poll-pacing hint so clients
// waiting on /v1/batch/jobs/{id} back off instead of hot-looping.
type JobStatus struct {
	Schema       int    `json:"schema"`
	JobID        string `json:"job_id"`
	Status       string `json:"status"`
	Checkpoint   int64  `json:"checkpoint"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// JobID derives the stable job id for an idempotency key. The id, not
// the key, names the job on the wire, so clients may use long or
// sensitive keys without them appearing in URLs.
func JobID(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return fmt.Sprintf("b-%016x", h.Sum64())
}

// asyncJob is one journaled batch job.
type asyncJob struct {
	id  string
	key string

	mu      sync.Mutex
	body    json.RawMessage
	ckpts   map[int]JobCheckpoint // latest checkpoint per batch entry
	status  string
	resp    []byte // final response bytes once status == JobDone
	replica bool   // held for another node, never queued while set
	ckptN   int64  // checkpoints journaled so far (monotone)

	// replBusy serializes replica pushes for this job: at most one push
	// is in flight, later ones are absorbed by the next checkpoint's.
	replBusy atomic.Bool
}

func (j *asyncJob) setStatus(s string) {
	j.mu.Lock()
	j.status = s
	j.mu.Unlock()
}

// state returns the status, the latest checkpoint index and, when done,
// the response bytes.
func (j *asyncJob) state() (string, int64, []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, j.ckptN, j.resp
}

// noteCkpt records a freshly journaled checkpoint so state transfer
// and the poll body see live progress, not just replayed history.
func (j *asyncJob) noteCkpt(entry int, cycle int64, snap []byte) {
	j.mu.Lock()
	if j.ckpts == nil {
		j.ckpts = make(map[int]JobCheckpoint)
	}
	j.ckpts[entry] = JobCheckpoint{Cycle: cycle, Snap: snap}
	j.ckptN++
	j.mu.Unlock()
}

// jobManager owns the journal and runs async jobs one at a time in
// submit order. A single dispatcher keeps each job's checkpoint stream
// self-consistent and makes crash recovery deterministic: after a
// restart the replayed queue re-runs in the original order.
type jobManager struct {
	srv     *Server
	journal *Journal

	// baseCtx parents every job run; stop cancels it so an in-flight
	// job aborts at the drain deadline (its journaled checkpoints keep
	// it resumable).
	baseCtx context.Context
	cancel  context.CancelFunc

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*asyncJob
	jobs   map[string]*asyncJob
	closed bool
	wg     sync.WaitGroup

	replayed     int64
	ckptsWritten atomic.Int64

	// Cluster wiring (zero/nil when the node runs solo). nodeID is this
	// node's cluster identity, leaseTTL the lease validity window, and
	// replicate the hook that pushes a job's latest state to its ring
	// successors (set by EnableCluster, never blocking the caller).
	nodeID    string
	leaseTTL  time.Duration
	replicate func(*asyncJob)
}

// clustered reports whether the job manager writes lease records.
func (jm *jobManager) clustered() bool { return jm.nodeID != "" }

// EnableJournal turns on crash-tolerant async batch jobs: it opens (or
// creates) the journal at path, replays it, re-queues every unfinished
// job, and starts the dispatcher. Finished jobs come back with their
// recorded responses and are served on GET without re-running. Must be
// called before the server starts handling requests; returns the number
// of jobs reconstructed from the journal.
func (s *Server) EnableJournal(path string) (replayed int, err error) {
	if s.jm != nil {
		return 0, errors.New("serve: journal already enabled")
	}
	j, jobs, err := OpenJournal(path)
	if err != nil {
		return 0, err
	}
	jm := &jobManager{
		srv:     s,
		journal: j,
		jobs:    make(map[string]*asyncJob, len(jobs)),
	}
	jm.cond = sync.NewCond(&jm.mu)
	jm.baseCtx, jm.cancel = context.WithCancel(context.Background())
	for _, rj := range jobs {
		aj := &asyncJob{id: rj.ID, key: rj.Key, body: rj.Body, ckpts: rj.Ckpts, ckptN: int64(len(rj.Ckpts))}
		switch {
		case rj.Resp != nil:
			aj.status, aj.resp = JobDone, rj.Resp
		case !rj.Owned:
			// A replica (or a job handed off in a previous drain): hold
			// its state for peers, never run it here.
			aj.status, aj.replica = JobReplica, true
		default:
			aj.status = JobQueued
			jm.queue = append(jm.queue, aj)
		}
		jm.jobs[aj.id] = aj
	}
	jm.replayed = int64(len(jobs))
	s.jm = jm
	jm.wg.Add(1)
	go jm.run()
	return len(jobs), nil
}

// JournalReplayed reports how many jobs the journal reconstructed at
// startup (0 when journaling is off).
func (s *Server) JournalReplayed() int64 {
	if s.jm == nil {
		return 0
	}
	return s.jm.replayed
}

// CheckpointsWritten reports how many checkpoints have been journaled
// since startup (0 when journaling is off).
func (s *Server) CheckpointsWritten() int64 {
	if s.jm == nil {
		return 0
	}
	return s.jm.ckptsWritten.Load()
}

// submit journals and enqueues a new job, or returns the existing one
// for a repeated idempotency key (first submission wins; the body of a
// resubmit is ignored).
func (jm *jobManager) submit(key string, body []byte) (*asyncJob, error) {
	id := JobID(key)
	jm.mu.Lock()
	defer jm.mu.Unlock()
	if job, ok := jm.jobs[id]; ok {
		return job, nil
	}
	if jm.closed {
		return nil, errors.New("serve: server is draining; not accepting jobs")
	}
	// Journal before acknowledging: once the 202 goes out, the job must
	// survive any crash.
	if err := jm.journal.AppendSubmit(id, key, body); err != nil {
		return nil, err
	}
	job := &asyncJob{id: id, key: key, body: body, status: JobQueued}
	jm.jobs[id] = job
	jm.queue = append(jm.queue, job)
	jm.cond.Signal()
	if jm.replicate != nil {
		// Push the submit body to the ring successors right away: a node
		// that dies before the first checkpoint still leaves its replicas
		// everything needed to run the job from scratch.
		jm.replicate(job)
	}
	return job, nil
}

// get looks a job up by id.
func (jm *jobManager) get(id string) *asyncJob {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	return jm.jobs[id]
}

// run is the dispatcher loop.
func (jm *jobManager) run() {
	defer jm.wg.Done()
	for {
		jm.mu.Lock()
		for len(jm.queue) == 0 && !jm.closed {
			jm.cond.Wait()
		}
		if jm.closed {
			// Leave queued jobs in the journal; the next startup
			// replays and re-queues them.
			jm.mu.Unlock()
			return
		}
		job := jm.queue[0]
		jm.queue = jm.queue[1:]
		jm.mu.Unlock()
		job.setStatus(JobRunning)
		jm.runJob(job)
	}
}

// startLease journals the run's lease and keeps renewing it on a
// heartbeat until the returned stop func is called. Peers learn the
// lease from ping gossip; the journal records are what make a restart
// of this node see the job as its own.
func (jm *jobManager) startLease(job *asyncJob) (stop func()) {
	if !jm.clustered() {
		return func() {}
	}
	_ = jm.journal.AppendLease(job.id, jm.nodeID, jm.leaseTTL)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(jm.leaseTTL / 3)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				// Renewal failures (journal closing mid-drain) are not
				// fatal: the lease just stops renewing.
				_ = jm.journal.AppendLease(job.id, jm.nodeID, jm.leaseTTL)
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// runJob executes one job end to end: parse, admit through the shared
// gate, run each batch entry as a checkpointed simulation (resuming
// from replayed checkpoints when present), and journal the final
// response bytes.
func (jm *jobManager) runJob(job *asyncJob) {
	s := jm.srv
	stopLease := jm.startLease(job)
	defer stopLease()
	job.mu.Lock()
	body := job.body
	job.mu.Unlock()
	var req BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		jm.finish(job, encodeJSON(errorResponse{Error: "bad request body: " + err.Error()}))
		return
	}
	scale, jobs, err := s.parseBatch(&req)
	if err != nil {
		jm.finish(job, encodeJSON(errorResponse{Error: err.Error()}))
		return
	}

	d := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		d = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(jm.baseCtx, d)
	defer cancel()

	release, err := s.gate.Acquire(ctx)
	if err != nil {
		jm.abortOrFail(job, err)
		return
	}
	defer release()

	sess := s.session(scale, req.Metrics)
	results := make([]*machine.Result, len(jobs))
	errs := make([]error, len(jobs))
	failed := 0
	for i := range jobs {
		ck := core.CheckpointConfig{
			Interval: s.cfg.CheckpointEvery,
			OnCheckpoint: func(cycle int64, snap []byte) error {
				if err := jm.journal.AppendCkpt(job.id, i, cycle, snap); err != nil {
					return err
				}
				jm.ckptsWritten.Add(1)
				job.noteCkpt(i, cycle, snap)
				if jm.replicate != nil {
					jm.replicate(job) // non-blocking push to ring successors
				}
				return nil
			},
		}
		job.mu.Lock()
		if c, ok := job.ckpts[i]; ok {
			ck.Resume = c.Snap
		}
		job.mu.Unlock()
		results[i], errs[i] = sess.RunCheckpointedContext(ctx, jobs[i].App, jobs[i].Cfg, ck)
		if errs[i] != nil {
			failed++
		}
	}
	var batchErr error
	if failed > 0 {
		batchErr = &core.BatchError{Errs: errs, Failed: failed}
	}
	resp, err := buildBatchResponse(ctx, sess, scale, jobs, results, batchErr)
	if err != nil {
		jm.abortOrFail(job, err)
		return
	}
	// Mirror the sync path: an all-jobs-failed batch under a dead
	// context is a request-level failure, not a result.
	if resp.Failed == len(jobs) && batchErr != nil &&
		(errors.Is(batchErr, context.DeadlineExceeded) || errors.Is(batchErr, context.Canceled)) {
		jm.abortOrFail(job, batchErr)
		return
	}
	jm.finish(job, encodeJSON(resp))
}

// abortOrFail handles a job-level error. During shutdown the job is put
// back to queued and no done record is written — the journal has its
// submit (and any checkpoints), so the next startup resumes it. Any
// other failure is final: the error body becomes the job's response.
func (jm *jobManager) abortOrFail(job *asyncJob, err error) {
	if jm.baseCtx.Err() != nil {
		job.setStatus(JobQueued)
		return
	}
	jm.finish(job, encodeJSON(errorResponse{Error: err.Error()}))
}

// finish records the job's final response. The journal write comes
// first; if it fails the in-memory result still serves this process's
// lifetime and the next startup re-runs the job (deterministically, to
// the same bytes).
func (jm *jobManager) finish(job *asyncJob, resp []byte) {
	_ = jm.journal.AppendDone(job.id, resp)
	job.mu.Lock()
	job.status, job.resp = JobDone, resp
	job.mu.Unlock()
	if jm.replicate != nil {
		// Replicate the final bytes too: if this node dies right after
		// finishing, peers serve the recorded response verbatim instead
		// of re-running the job.
		jm.replicate(job)
	}
}

// stop drains the dispatcher and closes the journal — the solo-node
// shutdown path. Cluster shutdown runs stopDispatcher, hands owned
// leases off, and only then closes the journal (the handoff still
// appends release records).
func (jm *jobManager) stop(ctx context.Context) error {
	err := jm.stopDispatcher(ctx)
	if cerr := jm.closeJournal(); err == nil {
		err = cerr
	}
	return err
}

// stopDispatcher drains the dispatcher: no new jobs start and the
// in-flight job gets until ctx expires to finish (then its context is
// canceled and it stays resumable).
func (jm *jobManager) stopDispatcher(ctx context.Context) error {
	jm.mu.Lock()
	if jm.closed {
		jm.mu.Unlock()
		return nil
	}
	jm.closed = true
	jm.cond.Broadcast()
	jm.mu.Unlock()

	done := make(chan struct{})
	go func() {
		jm.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		jm.cancel()
		<-done
	}
	jm.cancel()
	return nil
}

// closeJournal flushes and closes the journal; further appends fail.
func (jm *jobManager) closeJournal() error {
	return jm.journal.Close()
}
