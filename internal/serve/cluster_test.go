package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mtsim/internal/cluster"
)

// The in-process cluster tests: real HTTP between real Servers on
// loopback ports, fast heartbeats. The process-kill version of failover
// lives in chaostest; here each mechanism (forwarding, replication,
// claim, drain handoff) is exercised in isolation.

// testClusterCfg builds a fast-heartbeat cluster config.
func testClusterCfg(self string, peers []cluster.Peer) cluster.Config {
	return cluster.Config{
		Self:           self,
		Peers:          peers,
		HeartbeatEvery: 25 * time.Millisecond,
		// Generous suspicion windows and probe timeout: these tests run
		// CPU-heavy simulations under the race detector, and a starved
		// ping handler must not flap a healthy peer to suspect.
		SuspectAfter: 250 * time.Millisecond,
		DeadAfter:    500 * time.Millisecond,
		LeaseTTL:     400 * time.Millisecond,
		Client:       &http.Client{Timeout: time.Second},
	}
}

// freeLoopbackAddr reserves a loopback port and returns host:port.
func freeLoopbackAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// clusterNode is one in-process fleet member.
type clusterNode struct {
	s   *Server
	url string
}

// startClusterNode builds a journaling, clustered Server and serves it
// on addr. Shutdown runs at cleanup (idempotent if the test already
// shut it down).
func startClusterNode(t *testing.T, id, addr string, peers []cluster.Peer) *clusterNode {
	t.Helper()
	s := New(Config{CheckpointEvery: 100_000})
	if _, err := s.EnableJournal(filepath.Join(t.TempDir(), "wal")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.EnableCluster(testClusterCfg(id, peers)); err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.ListenAndServe(addr) }()
	n := &clusterNode{s: s, url: "http://" + addr}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	waitHTTPReady(t, n.url)
	return n
}

// waitHTTPReady polls /v1/healthz until the node answers.
func waitHTTPReady(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("node at %s never became ready", url)
}

// ringOwner computes which configured node owns key (all-alive view),
// using a probe Node that is never started.
func ringOwner(t *testing.T, peers []cluster.Peer, key string) string {
	t.Helper()
	probe, err := cluster.New(testClusterCfg(peers[0].ID, peers))
	if err != nil {
		t.Fatal(err)
	}
	return probe.RouteOwner(key)
}

// keyOwnedBy searches for an idempotency key whose job routes to owner.
func keyOwnedBy(t *testing.T, peers []cluster.Peer, owner string) string {
	t.Helper()
	for i := 0; i < 100_000; i++ {
		key := fmt.Sprintf("cluster-key-%d", i)
		if ringOwner(t, peers, cluster.JobRouteKey(JobID(key))) == owner {
			return key
		}
	}
	t.Fatal("no key routed to " + owner)
	return ""
}

// pollJobAt polls one URL until the job is done, tolerating 202.
func pollJobAt(t *testing.T, baseURL, id string) []byte {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	lastStatus, lastBody := 0, []byte(nil)
	for time.Now().Before(deadline) {
		resp, err := http.Get(baseURL + "/v1/batch/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		lastStatus, lastBody = resp.StatusCode, data
		switch resp.StatusCode {
		case http.StatusOK:
			return data
		case http.StatusAccepted, http.StatusServiceUnavailable, http.StatusNotFound:
			// 503/404 are transient during failover: the ring still
			// points at the dying node, or the claim has not landed yet.
			time.Sleep(10 * time.Millisecond)
		default:
			t.Fatalf("poll %s at %s: status %d: %s", id, baseURL, resp.StatusCode, data)
		}
	}
	t.Fatalf("job %s did not finish in time (last status %d: %s)", id, lastStatus, lastBody)
	return nil
}

// clusterStatusAt fetches GET /v1/cluster.
func clusterStatusAt(t *testing.T, baseURL string) *ClusterStatus {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/cluster: status %d", resp.StatusCode)
	}
	var cs ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		t.Fatal(err)
	}
	return &cs
}

// TestClusterForwarding: a job submitted to the wrong node is proxied
// to its ring owner, polls from any node reach it, and the final bytes
// match a solo server's sync run of the same batch.
func TestClusterForwarding(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node simulation test")
	}
	addr1, addr2 := freeLoopbackAddr(t), freeLoopbackAddr(t)
	peers := []cluster.Peer{
		{ID: "node1", URL: "http://" + addr1},
		{ID: "node2", URL: "http://" + addr2},
	}
	n1 := startClusterNode(t, "node1", addr1, peers)
	n2 := startClusterNode(t, "node2", addr2, peers)

	// Reference bytes from a plain solo server (separate session cache).
	_, plain := newTestServer(t, Config{})
	refStatus, ref := postJSON(t, plain.URL+"/v1/batch", asyncBatchBody)
	if refStatus != http.StatusOK {
		t.Fatalf("reference batch: status %d: %s", refStatus, ref)
	}

	// Submit to node1 a job that node2 owns: must forward, not run here.
	key := keyOwnedBy(t, peers, "node2")
	status, body := postJSONKey(t, n1.url+"/v1/batch", key, asyncBatchBody)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, body)
	}
	var ack JobStatus
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.JobID != JobID(key) {
		t.Fatalf("ack job id %s, want %s", ack.JobID, JobID(key))
	}
	if ack.RetryAfterMS <= 0 {
		t.Errorf("202 ack carries no retry_after_ms hint: %+v", ack)
	}
	if n1.s.ClusterForwards() == 0 {
		t.Error("submission to the non-owner did not count a forward")
	}
	if n2.s.jm.get(ack.JobID) == nil {
		t.Fatal("job not registered on its ring owner")
	}

	// Both nodes serve the identical final bytes (node1 via forwarding).
	got1 := pollJobAt(t, n1.url, ack.JobID)
	got2 := pollJobAt(t, n2.url, ack.JobID)
	if !bytes.Equal(got1, ref) || !bytes.Equal(got2, ref) {
		t.Errorf("forwarded job response differs from the solo run\nnode1: %s\nnode2: %s\nref: %s", got1, got2, ref)
	}

	// Topology: both nodes alive from either view.
	cs := clusterStatusAt(t, n1.url)
	if cs.Self != "node1" || len(cs.Nodes) != 2 {
		t.Fatalf("cluster status: %+v", cs)
	}
	for _, m := range cs.Nodes {
		if m.State != cluster.StateAlive {
			t.Errorf("node %s state %s, want alive", m.ID, m.State)
		}
	}
}

// TestClusterFailoverClaim: a replica-push from a holder that then dies
// must be claimed by the survivor once the lease expires, re-run from
// the transferred state, and served with bytes identical to a solo run.
func TestClusterFailoverClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node simulation test")
	}
	addrB := freeLoopbackAddr(t)
	deadAddr := freeLoopbackAddr(t) // nodeA never starts: dead on arrival
	peers := []cluster.Peer{
		{ID: "nodeA", URL: "http://" + deadAddr},
		{ID: "nodeB", URL: "http://" + addrB},
	}
	nb := startClusterNode(t, "nodeB", addrB, peers)

	_, plain := newTestServer(t, Config{})
	refStatus, ref := postJSON(t, plain.URL+"/v1/batch", asyncBatchBody)
	if refStatus != http.StatusOK {
		t.Fatalf("reference batch: status %d", refStatus)
	}

	// nodeA's replica push: the job state lands on nodeB before "nodeA"
	// ever gossips a lease (it is already dead).
	key := "failover-key"
	id := JobID(key)
	st := &JobState{
		Schema: ResponseSchemaVersion, ID: id, Key: key,
		Holder: "nodeA", Body: json.RawMessage(asyncBatchBody), Status: JobQueued,
	}
	payload, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, nb.url+"/v1/jobs/"+id+"/state", strings.NewReader(string(payload)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("replica push: status %d", resp.StatusCode)
	}

	// The replica is visible but must not run while it is only a copy.
	if job := nb.s.jm.get(id); job == nil {
		t.Fatal("replica not registered")
	}

	// Once nodeA is declared dead and the lease expires, nodeB claims,
	// re-runs deterministically, and serves the canonical bytes.
	got := pollJobAt(t, nb.url, id)
	if !bytes.Equal(got, ref) {
		t.Errorf("failover response differs from the solo run\ngot: %s\nref: %s", got, ref)
	}
	if nb.s.ClusterClaims() == 0 {
		t.Error("no claim counted after the holder died")
	}
	cs := clusterStatusAt(t, nb.url)
	var sawDead bool
	for _, m := range cs.Nodes {
		if m.ID == "nodeA" && m.State == cluster.StateDead {
			sawDead = true
		}
	}
	if !sawDead {
		t.Errorf("cluster status does not report nodeA dead: %+v", cs.Nodes)
	}
}

// TestClusterDrainHandoff: a graceful shutdown pushes the owned
// unfinished job to the surviving node, which finishes it and serves
// bytes identical to a solo run.
func TestClusterDrainHandoff(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node simulation test")
	}
	addr1, addr2 := freeLoopbackAddr(t), freeLoopbackAddr(t)
	peers := []cluster.Peer{
		{ID: "node1", URL: "http://" + addr1},
		{ID: "node2", URL: "http://" + addr2},
	}
	n1 := startClusterNode(t, "node1", addr1, peers)
	n2 := startClusterNode(t, "node2", addr2, peers)

	// The drained job must still be unfinished when Shutdown runs, and
	// the only thing between the 202 and the Shutdown call is this test
	// goroutine getting scheduled — under a loaded machine that gap can
	// exceed the ~2ms a JIT-compiled quick sieve takes. Use a batch big
	// enough (distinct latencies, so the session memo cannot collapse
	// it) that finishing inside the gap is impossible; the drain cancels
	// it immediately, so the extra work is only paid by the reference
	// run and by node2 after the handoff.
	var sb strings.Builder
	sb.WriteString(`{"scale":"quick","jobs":[`)
	for i := 0; i < 12; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"app":"sieve","config":{"procs":4,"threads":2,"model":"switch-on-use","latency":%d}}`, 100+i)
	}
	sb.WriteString(`]}`)
	drainBatchBody := sb.String()

	_, plain := newTestServer(t, Config{})
	refStatus, ref := postJSON(t, plain.URL+"/v1/batch", drainBatchBody)
	if refStatus != http.StatusOK {
		t.Fatalf("reference batch: status %d", refStatus)
	}

	// Submit a job node1 owns, then drain node1 before it can finish.
	key := keyOwnedBy(t, peers, "node1")
	status, body := postJSONKey(t, n1.url+"/v1/batch", key, drainBatchBody)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, body)
	}
	id := JobID(key)
	// Drain with a spent context: the in-flight run is canceled at once
	// (no window for the job to finish and dodge the handoff) and the
	// handoff must proceed on its own grace context.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = n1.s.Shutdown(ctx)

	if n1.s.ClusterHandoffs() == 0 {
		t.Fatal("drain did not hand the unfinished job off")
	}
	got := pollJobAt(t, n2.url, id)
	if !bytes.Equal(got, ref) {
		t.Errorf("handed-off job response differs from the solo run\ngot: %s\nref: %s", got, ref)
	}
}

// TestEnableClusterRequiresJournal: cluster mode without a journal has
// nowhere to put leases and must be refused.
func TestEnableClusterRequiresJournal(t *testing.T) {
	s := New(Config{})
	_, err := s.EnableCluster(testClusterCfg("node1", []cluster.Peer{
		{ID: "node1", URL: "http://127.0.0.1:1"},
		{ID: "node2", URL: "http://127.0.0.1:2"},
	}))
	if err == nil || !strings.Contains(err.Error(), "Journal") {
		t.Fatalf("EnableCluster without journal: err = %v, want journal requirement", err)
	}
}

// TestClusterEndpointsSolo: a solo server answers the cluster surface
// with 404s, not panics.
func TestClusterEndpointsSolo(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/v1/cluster", cluster.PingPath, "/v1/jobs/b-0/state"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s on a solo server: status %d, want 404", path, resp.StatusCode)
		}
	}
}
