package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// brownoutClock drives the controller's injected clock.
type brownoutClock struct{ t time.Time }

func (c *brownoutClock) now() time.Time          { return c.t }
func (c *brownoutClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBrownout() (*brownout, *brownoutClock) {
	clk := &brownoutClock{t: time.Unix(1000, 0)}
	b := newBrownout(0.75, 0.25, 2*time.Second, 3*time.Second)
	b.now = clk.now
	return b, clk
}

func TestBrownoutEntersOnlyAfterSustainedHigh(t *testing.T) {
	b, clk := newTestBrownout()
	if b.fold(0.9) {
		t.Fatal("brownout active on the first high observation")
	}
	clk.advance(time.Second)
	if b.fold(0.9) {
		t.Fatal("brownout active after 1s of high load (enterAfter = 2s)")
	}
	clk.advance(time.Second)
	if !b.fold(0.9) {
		t.Fatal("brownout not active after 2s of sustained high load")
	}
	st := b.status()
	if !st.Active || st.Entered != 1 {
		t.Fatalf("status = %+v, want active with 1 enter", st)
	}
}

func TestBrownoutBlipResetsPendingEnter(t *testing.T) {
	b, clk := newTestBrownout()
	b.fold(0.9)
	clk.advance(1500 * time.Millisecond)
	b.fold(0.5) // dip below high water: the pending enter resets
	clk.advance(time.Second)
	if b.fold(0.9) {
		t.Fatal("brownout entered across a load dip")
	}
	clk.advance(2 * time.Second)
	if !b.fold(0.9) {
		t.Fatal("brownout never entered after the dip's fresh 2s window")
	}
}

func TestBrownoutExitsHysteretically(t *testing.T) {
	b, clk := newTestBrownout()
	b.fold(0.9)
	clk.advance(2 * time.Second)
	if !b.fold(0.9) {
		t.Fatal("setup: brownout did not enter")
	}
	// Mid-band saturation (above low water) keeps brownout on forever.
	clk.advance(10 * time.Second)
	if !b.fold(0.5) {
		t.Fatal("brownout lifted at mid-band saturation (0.5 > lowWater)")
	}
	// Low load must hold exitAfter before the mode lifts.
	if !b.fold(0.1) {
		t.Fatal("brownout lifted on the first low observation")
	}
	clk.advance(2 * time.Second)
	if !b.fold(0.1) {
		t.Fatal("brownout lifted after 2s of low load (exitAfter = 3s)")
	}
	clk.advance(time.Second)
	if b.fold(0.1) {
		t.Fatal("brownout still active after 3s of sustained low load")
	}
	st := b.status()
	if st.Active || st.Exited != 1 {
		t.Fatalf("status = %+v, want inactive with 1 exit", st)
	}
}

func TestBrownoutBlipResetsPendingExit(t *testing.T) {
	b, clk := newTestBrownout()
	b.fold(0.9)
	clk.advance(2 * time.Second)
	b.fold(0.9) // enter
	b.fold(0.1)
	clk.advance(2 * time.Second)
	b.fold(0.8) // load returns: the pending exit resets
	clk.advance(2 * time.Second)
	if !b.fold(0.1) {
		t.Fatal("brownout exited across a load spike")
	}
}

// TestBrownoutShedsSSE: an active brownout refuses new event-stream
// subscriptions with 503 + Retry-After while the job API keeps working,
// and the shed shows up on /v1/healthz.
func TestBrownoutShedsSSE(t *testing.T) {
	s, ts := newTestServer(t, Config{BrownoutEnter: time.Millisecond, BrownoutExit: time.Hour})
	if _, err := s.EnableJournal(t.TempDir() + "/wal"); err != nil {
		t.Fatal(err)
	}
	// Force the controller active: saturate the signal past enterAfter.
	s.bo.fold(1)
	time.Sleep(5 * time.Millisecond)
	if !s.bo.fold(1) {
		t.Fatal("setup: brownout did not activate")
	}

	resp, err := http.Get(ts.URL + "/v1/batch/jobs/b-0/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("SSE subscribe under brownout: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("SSE brownout refusal carries no Retry-After")
	}
	if got := s.bo.shedSSE.Load(); got != 1 {
		t.Errorf("shedSSE = %d, want 1", got)
	}

	// The health surface reports the mode and its counters.
	hr, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var h struct {
		Brownout *brownoutStatus `json:"brownout"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Brownout == nil || !h.Brownout.Active || h.Brownout.ShedSSE != 1 {
		t.Errorf("healthz brownout = %+v, want active with shed_sse 1", h.Brownout)
	}

	// Real work is not refused: a sync run still executes.
	status, body := postJSON(t, ts.URL+"/v1/run", sorRun)
	if status != http.StatusOK {
		t.Errorf("sync run under brownout: status %d: %s", status, body)
	}
}

// TestBrownoutShedsMetrics: execution under brownout skips metrics
// collection and counts the shed; the simulation result is unaffected.
func TestBrownoutShedsMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{BrownoutEnter: time.Millisecond, BrownoutExit: time.Hour})
	s.bo.fold(1)
	time.Sleep(5 * time.Millisecond)
	s.bo.fold(1)

	body := strings.Replace(sorRun, `{"app"`, `{"metrics":true,"app"`, 1)
	status, raw := postJSON(t, ts.URL+"/v1/run", body)
	if status != http.StatusOK {
		t.Fatalf("run: status %d: %s", status, raw)
	}
	var out RunResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Metrics != nil {
		t.Error("metrics were collected under brownout")
	}
	if got := s.bo.shedMetrics.Load(); got != 1 {
		t.Errorf("shedMetrics = %d, want 1", got)
	}
}

func TestBrownoutDisabled(t *testing.T) {
	s, _ := newTestServer(t, Config{BrownoutEnter: -1})
	if s.bo != nil {
		t.Fatal("brownout controller built with BrownoutEnter < 0")
	}
	if s.brownedOut() {
		t.Fatal("disabled brownout reports active")
	}
}

// TestGateDoomedRejection: a request whose deadline cannot cover the
// estimated queue wait is refused with ErrDoomed instead of being
// queued into a certain 504.
func TestGateDoomedRejection(t *testing.T) {
	g := newGate(1, 8)
	g.svcNS.Store((100 * time.Millisecond).Nanoseconds())

	// Occupy the only worker slot.
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// 10ms of deadline against a ~100ms estimated wait: doomed.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := g.acquire(ctx, true); err != ErrDoomed {
		t.Fatalf("acquire with an unmeetable deadline: err = %v, want ErrDoomed", err)
	}
	if got := g.Doomed(); got != 1 {
		t.Fatalf("doomed = %d, want 1", got)
	}

	// A deadline with room to spare is admitted (it queues).
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel2()
	done := make(chan error, 1)
	go func() {
		rel, err := g.Acquire(ctx2)
		if err == nil {
			rel()
		}
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	release() // free the slot; the queued request proceeds
	if err := <-done; err != nil {
		t.Fatalf("roomy-deadline acquire: %v", err)
	}

	// AcquireWait never sheds: durable work waits instead.
	release, err = g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx3, cancel3 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel3()
	if _, err := g.AcquireWait(ctx3); err != context.DeadlineExceeded {
		t.Fatalf("AcquireWait: err = %v, want DeadlineExceeded (waited, not shed)", err)
	}
	release()
}

// TestDoomedRequestGets429: the HTTP surface of the shed — an admitted-
// but-doomed request is answered 429 + Retry-After, not 504.
func TestDoomedRequestGets429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	s.gate.svcNS.Store((2 * time.Second).Nanoseconds())
	release, err := s.gate.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	body := strings.Replace(sorRun, `{"app"`, `{"timeout_ms":50,"app"`, 1)
	status, raw := postJSON(t, ts.URL+"/v1/run", body)
	if status != http.StatusTooManyRequests {
		t.Fatalf("doomed run: status %d: %s, want 429", status, raw)
	}
	var er errorResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Error, "deadline") {
		t.Errorf("doomed error %q does not mention the deadline", er.Error)
	}
	if got := s.gate.Doomed(); got == 0 {
		t.Error("doomed counter not bumped")
	}
}
