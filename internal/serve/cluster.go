package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"mtsim/internal/cluster"
)

// Cluster mode: N mtsimd nodes behind one API. internal/cluster owns
// membership, the consistent-hash ring and the gossiped lease table;
// this file is the serving half — every HTTP surface of the protocol
// plus the journal/job-manager integration:
//
//   - forwarding: any node fronts the fleet; requests whose ring owner
//     is another alive node are proxied there with RetryDelay backoff
//     (sessions route by scale key, async jobs by job id);
//   - replication: an async job's owner pushes its submit body and
//     latest checkpoints to the job's ring successors over
//     PUT /v1/jobs/{id}/state, so the state survives the owner's disk;
//   - failover: when a dead node's lease expires, the next ring owner
//     claims the job — it gathers the freshest replica state from the
//     surviving peers (GET /v1/jobs/{id}/state), journals it as its
//     own, and resumes from the latest snapshot. Determinism makes the
//     re-run's response byte-identical to an uncrashed one.
//   - drain handoff: a gracefully stopping node pushes each owned
//     unfinished job to a live successor with ?claim=1 and journals a
//     release, so planned restarts migrate work without waiting for
//     lease expiry.

// forwardHeader marks a forwarded request so ring-view divergence can
// never bounce a request between nodes: a forwarded request is always
// handled locally.
const forwardHeader = "X-Mtsimd-Forward"

// forwardAttempts bounds the proxy retries before giving up with 503.
const forwardAttempts = 3

// clusterRuntime is the per-server cluster state.
type clusterRuntime struct {
	node *cluster.Node
	// fwd proxies client requests (no client timeout: the forwarded
	// request carries its own deadline); xfer moves job state between
	// nodes and probes peers for claims (bounded, background work).
	// Both share Config.Transport, so a chaos transport perturbs every
	// intra-cluster call.
	fwd  *http.Client
	xfer *http.Client

	// lat tracks forward latencies (hedge-delay source); budget paces
	// hedges. budget is nil when hedging is disabled.
	lat    *latencyTracker
	budget *hedgeBudget
	// chaos is the installed chaos transport, if any (stats surface).
	chaos *cluster.ChaosTransport

	forwards  atomic.Int64
	claims    atomic.Int64
	handoffs  atomic.Int64
	pushes    atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64
}

// EnableCluster joins this server to a multi-node fleet. It requires
// EnableJournal first (leases and replicas live in the journal) and
// must be called before serving starts. The returned node is already
// probing its peers.
func (s *Server) EnableCluster(cfg cluster.Config) (*cluster.Node, error) {
	if s.jm == nil {
		return nil, errors.New("serve: cluster mode requires EnableJournal first")
	}
	if s.cluster != nil {
		return nil, errors.New("serve: cluster already enabled")
	}
	node, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	s.cluster = &clusterRuntime{
		node: node,
		fwd:  &http.Client{Transport: cfg.Transport},
		xfer: &http.Client{Timeout: 15 * time.Second, Transport: cfg.Transport},
		lat:  newLatencyTracker(s.cfg.HedgeDelayMin, s.cfg.HedgeDelayMax),
	}
	if s.cfg.HedgeFraction > 0 {
		s.cluster.budget = newHedgeBudget(s.cfg.HedgeFraction)
	}
	if ct, ok := cfg.Transport.(*cluster.ChaosTransport); ok {
		s.cluster.chaos = ct
	}
	s.jm.nodeID = node.Self()
	s.jm.leaseTTL = node.LeaseTTL()
	s.jm.replicate = s.replicateJob
	node.LocalLeases = s.jm.leaseTable
	node.OnExpiredLease = s.claimExpiredLease
	node.Start()
	return node, nil
}

// ClusterForwards, ClusterClaims and ClusterHandoffs expose the fleet
// gauges (0 when cluster mode is off).
func (s *Server) ClusterForwards() int64 {
	if s.cluster == nil {
		return 0
	}
	return s.cluster.forwards.Load()
}
func (s *Server) ClusterClaims() int64 {
	if s.cluster == nil {
		return 0
	}
	return s.cluster.claims.Load()
}
func (s *Server) ClusterHandoffs() int64 {
	if s.cluster == nil {
		return 0
	}
	return s.cluster.handoffs.Load()
}

// JobState is the wire form of one async job's transferable state: the
// replication payload, the claim fetch body, and the drain handoff. The
// snapshots inside are the same versioned CRC-framed machine snapshots
// the journal holds, so a resumed run is byte-identical wherever it
// lands.
type JobState struct {
	Schema int             `json:"schema"`
	ID     string          `json:"id"`
	Key    string          `json:"key"`
	Tenant string          `json:"tenant,omitempty"`
	Holder string          `json:"holder"`
	Body   json.RawMessage `json:"body"`
	Ckpts  []JobStateCkpt  `json:"ckpts,omitempty"`
	// Events is the job's complete checkpoint event history at push
	// time. Together with Ckpts (the latest snapshot per entry) every
	// push is a consistent cut: the receiver's history is dense up to
	// its freshest snapshot, so a failover successor's re-run
	// regenerates exactly the undelivered tail of the SSE sequence.
	Events []JobEvent `json:"events,omitempty"`
	// Resp is present once the job finished: replicas serve (and
	// claimants adopt) the recorded bytes verbatim. Base64 on the wire
	// (verbatimJSON): a json.RawMessage here would be compacted by the
	// push path's Marshal and re-indented by the state GET's renderer,
	// and an adopted response must not differ from the holder's by so
	// much as a byte of whitespace.
	Resp verbatimJSON `json:"resp,omitempty"`
	// Progress orders replicas by freshness: the sum of the latest
	// checkpointed cycle over batch entries (monotone over a run).
	Progress int64 `json:"progress"`
	// Status mirrors the holder's view (queued/running/done).
	Status string `json:"status"`
}

// JobStateCkpt is one batch entry's latest checkpoint.
type JobStateCkpt struct {
	Entry int    `json:"entry"`
	Cycle int64  `json:"cycle"`
	Snap  []byte `json:"snap"`
}

// fresher reports whether a carries more completed work than b.
func fresher(a, b *JobState) bool {
	if b == nil {
		return a != nil
	}
	if a == nil {
		return false
	}
	if (a.Resp != nil) != (b.Resp != nil) {
		return a.Resp != nil
	}
	return a.Progress > b.Progress
}

// --- job-manager side -------------------------------------------------

// jobState snapshots one job's transferable state (nil if unknown).
func (jm *jobManager) jobState(id string) *JobState {
	jm.mu.Lock()
	job := jm.jobs[id]
	jm.mu.Unlock()
	if job == nil {
		return nil
	}
	job.mu.Lock()
	defer job.mu.Unlock()
	st := &JobState{
		Schema: ResponseSchemaVersion,
		ID:     job.id, Key: job.key, Tenant: job.tenant, Holder: jm.nodeID,
		Body: job.body, Status: job.status,
		Events: append([]JobEvent(nil), job.events...),
	}
	for i, c := range job.ckpts {
		st.Ckpts = append(st.Ckpts, JobStateCkpt{Entry: i, Cycle: c.Cycle, Snap: c.Snap})
		st.Progress += c.Cycle
	}
	sort.Slice(st.Ckpts, func(i, j int) bool { return st.Ckpts[i].Entry < st.Ckpts[j].Entry })
	if job.status == JobDone {
		st.Resp = job.resp
	}
	return st
}

// leaseTable reports the jobs this node currently owns — the ping
// gossip payload peers base failover on.
func (jm *jobManager) leaseTable() []cluster.Lease {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	var out []cluster.Lease
	for _, job := range jm.jobs {
		job.mu.Lock()
		if !job.replica && job.status != JobDone {
			out = append(out, cluster.Lease{
				JobID: job.id, Holder: jm.nodeID, Tenant: job.tenant, Status: job.status,
				Checkpoint: job.ckptN, TTLMS: jm.leaseTTL.Milliseconds(),
			})
		}
		job.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].JobID < out[j].JobID })
	return out
}

// ownedUnfinishedIDs lists the jobs a drain must hand off.
func (jm *jobManager) ownedUnfinishedIDs() []string {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	var ids []string
	for _, job := range jm.jobs {
		job.mu.Lock()
		if !job.replica && job.status != JobDone {
			ids = append(ids, job.id)
		}
		job.mu.Unlock()
	}
	sort.Strings(ids)
	return ids
}

// storeReplica journals and holds another node's job state for
// failover. Stale pushes (we own or finished the job) are ignored.
func (jm *jobManager) storeReplica(st *JobState) error {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	if jm.closed {
		return errors.New("serve: server is draining; not accepting replicas")
	}
	job := jm.jobs[st.ID]
	if job == nil {
		if err := jm.journal.AppendReplicaSubmit(st.ID, st.Key, st.Tenant, st.Body); err != nil {
			return err
		}
		job = newAsyncJob(st.ID, st.Key, st.Tenant)
		job.body, job.status, job.replica = st.Body, JobReplica, true
		job.ckpts = make(map[int]JobCheckpoint)
		jm.jobs[st.ID] = job
	}
	job.mu.Lock()
	defer job.mu.Unlock()
	if !job.replica || job.status == JobDone {
		return nil
	}
	jm.foldCkptsLocked(job, st)
	if st.Resp != nil {
		// The owner finished: keep the exact bytes so this node can
		// serve (or hand a claimant) the verbatim response. Usage is nil:
		// the executing node accounted the job; this copy must not
		// double-count it on replay.
		if err := jm.journal.AppendDone(st.ID, st.Resp, nil); err == nil {
			job.status, job.resp = JobDone, st.Resp
		}
	}
	job.sub.Broadcast()
	return nil
}

// adoptOwned makes this node the job's owner: journal whatever state we
// do not yet hold, append a lease, and queue the job (or record its
// final response when the state already carries one). Used by failover
// claims and by the receiving side of a drain handoff.
func (jm *jobManager) adoptOwned(st *JobState) error {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	if jm.closed {
		return errors.New("serve: server is draining; not adopting jobs")
	}
	job := jm.jobs[st.ID]
	if job == nil {
		if err := jm.journal.AppendSubmit(st.ID, st.Key, st.Tenant, st.Body); err != nil {
			return err
		}
		job = newAsyncJob(st.ID, st.Key, st.Tenant)
		job.body, job.status = st.Body, JobQueued
		job.ckpts = make(map[int]JobCheckpoint)
		jm.jobs[st.ID] = job
	}
	job.mu.Lock()
	if job.status == JobDone {
		job.mu.Unlock()
		return nil
	}
	jm.foldCkptsLocked(job, st)
	if st.Resp != nil {
		// Finished elsewhere: usage is nil, the finishing node accounted it.
		if err := jm.journal.AppendDone(st.ID, st.Resp, nil); err == nil {
			job.status, job.resp, job.replica = JobDone, st.Resp, false
		}
		job.sub.Broadcast()
		job.mu.Unlock()
		return nil
	}
	if !job.replica && (job.status == JobQueued || job.status == JobRunning) {
		job.mu.Unlock()
		return nil // already ours and active
	}
	_ = jm.journal.AppendLease(st.ID, jm.nodeID, jm.leaseTTL)
	job.replica, job.status = false, JobQueued
	job.sub.Broadcast()
	job.mu.Unlock()
	jm.enqueueLocked(job)
	jm.cond.Signal()
	return nil
}

// release demotes a handed-off job to a replica after a drain push.
func (jm *jobManager) release(id string) {
	jm.mu.Lock()
	job := jm.jobs[id]
	jm.mu.Unlock()
	if job == nil {
		return
	}
	_ = jm.journal.AppendRelease(id, jm.nodeID)
	job.mu.Lock()
	if job.status != JobDone {
		job.replica, job.status = true, JobReplica
	}
	job.mu.Unlock()
}

// foldCkptsLocked merges the transferred checkpoints that are newer
// than what the job already holds, plus the transferred event history.
// Events this node never saw are journaled as snapless checkpoint
// records — progress marks, not resume points — so the SSE history a
// failover successor serves is the complete deterministic sequence
// with no gaps. Called with job.mu held.
func (jm *jobManager) foldCkptsLocked(job *asyncJob, st *JobState) {
	if job.ckpts == nil {
		job.ckpts = make(map[int]JobCheckpoint)
	}
	for _, c := range st.Ckpts {
		if cur, ok := job.ckpts[c.Entry]; ok && cur.Cycle >= c.Cycle {
			continue
		}
		if err := jm.journal.AppendCkpt(st.ID, c.Entry, c.Cycle, c.Snap); err != nil {
			return // resume from the older state; still byte-identical
		}
		job.ckpts[c.Entry] = JobCheckpoint{Cycle: c.Cycle, Snap: c.Snap}
		job.insertEventLocked(JobEvent{Entry: c.Entry, Cycle: c.Cycle})
	}
	have := make(map[JobEvent]bool, len(job.events))
	for _, e := range job.events {
		have[e] = true
	}
	for _, e := range st.Events {
		if have[e] {
			continue
		}
		if err := jm.journal.AppendCkpt(st.ID, e.Entry, e.Cycle, nil); err != nil {
			break
		}
		have[e] = true
		job.insertEventLocked(e)
	}
	job.ckptN = int64(len(job.events))
	job.sub.Broadcast()
}

// --- replication ------------------------------------------------------

// replicateJob pushes the job's latest state to its ring successors.
// Never blocks the simulation: one push runs at a time per job and the
// state is captured at send time, so the next checkpoint's call picks
// up anything a skipped push missed.
func (s *Server) replicateJob(job *asyncJob) {
	if s.cluster == nil {
		return
	}
	if !job.replBusy.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer job.replBusy.Store(false)
		s.pushReplica(job.id, false)
	}()
}

// pushReplica sends the job's current state to every ring successor
// (skipping self). Best-effort: a dead replica target just means less
// redundancy until the membership layer notices.
func (s *Server) pushReplica(id string, claim bool) {
	st := s.jm.jobState(id)
	if st == nil {
		return
	}
	node := s.cluster.node
	for _, p := range node.Successors(cluster.JobRouteKey(id), node.Replicas()) {
		if p.ID == node.Self() {
			continue
		}
		if b := node.Breaker(p.ID); b != nil && !b.Allow() {
			continue // circuit open: the push would only burn a timeout
		}
		_ = s.putJobState(context.Background(), p, st, claim)
	}
}

// putJobState PUTs one job state to a peer, feeding the transport
// outcome to the peer's circuit breaker.
func (s *Server) putJobState(ctx context.Context, p cluster.Peer, st *JobState, claim bool) error {
	body, err := json.Marshal(st)
	if err != nil {
		return err
	}
	url := p.URL + "/v1/jobs/" + st.ID + "/state"
	if claim {
		url += "?claim=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.cluster.xfer.Do(req)
	if ctx.Err() == nil {
		s.cluster.node.ReportPeer(p.ID, err == nil)
	}
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("serve: push job state to %s: status %d", p.URL, resp.StatusCode)
	}
	s.cluster.pushes.Add(1)
	return nil
}

// --- failover claim ---------------------------------------------------

// claimExpiredLease is the cluster.Node hook: a dead peer's lease has
// expired and this node is the job's route owner. Gather the freshest
// surviving state (local replica or any alive peer's), adopt it, and
// resume. DropLease ends the claim; returning without it retries next
// probe round.
func (s *Server) claimExpiredLease(l cluster.Lease) {
	node := s.cluster.node
	best := s.jm.jobState(l.JobID)
	for _, m := range node.Members() {
		if m.Self || m.State != cluster.StateAlive {
			continue
		}
		st, err := s.fetchJobState(cluster.Peer{ID: m.ID, URL: m.URL}, l.JobID)
		if err != nil || st == nil {
			continue
		}
		if fresher(st, best) {
			best = st
		}
	}
	if best == nil {
		// No surviving copy anywhere: the job cannot be recovered until
		// its holder rejoins with its journal. Stop claiming it.
		node.DropLease(l.JobID)
		return
	}
	if err := s.jm.adoptOwned(best); err != nil {
		return // draining or journal trouble; retry next round
	}
	s.cluster.claims.Add(1)
	node.DropLease(l.JobID)
}

// fetchJobState GETs a peer's copy of one job's state (nil if the peer
// does not hold it). A body that fails to decode counts as a transport
// failure for the peer's breaker: a chaos-corrupted reply must neither
// win a freshness contest nor pass as healthy contact.
func (s *Server) fetchJobState(p cluster.Peer, id string) (*JobState, error) {
	req, err := http.NewRequest(http.MethodGet, p.URL+"/v1/jobs/"+id+"/state", nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.cluster.xfer.Do(req)
	if err != nil {
		s.cluster.node.ReportPeer(p.ID, false)
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		s.cluster.node.ReportPeer(p.ID, false)
		return nil, err
	}
	if resp.StatusCode == http.StatusNotFound {
		s.cluster.node.ReportPeer(p.ID, true)
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		s.cluster.node.ReportPeer(p.ID, true)
		return nil, fmt.Errorf("serve: fetch job state: status %d", resp.StatusCode)
	}
	var st JobState
	if err := json.Unmarshal(body, &st); err != nil {
		s.cluster.node.ReportPeer(p.ID, false)
		return nil, err
	}
	s.cluster.node.ReportPeer(p.ID, true)
	return &st, nil
}

// --- drain handoff ----------------------------------------------------

// handoffLeases migrates every owned unfinished job to a live ring
// successor during graceful shutdown: push with ?claim=1 (the receiver
// adopts and queues it), then journal our release. Jobs with no live
// successor stay owned and resume when this node restarts.
func (s *Server) handoffLeases(ctx context.Context) {
	node := s.cluster.node
	for _, id := range s.jm.ownedUnfinishedIDs() {
		if ctx.Err() != nil {
			return
		}
		// Candidate receivers in ring order, alive-looking nodes first.
		// The health view is frozen at this point (the prober stopped),
		// so a stale suspect must not block the drain: pushing to a
		// truly dead node just fails fast and we try the next.
		var live, iffy []cluster.Peer
		for _, p := range node.Successors(cluster.JobRouteKey(id), 1<<30) {
			if p.ID == node.Self() {
				continue
			}
			if node.Alive(p.ID) {
				live = append(live, p)
			} else {
				iffy = append(iffy, p)
			}
		}
		st := s.jm.jobState(id)
		if st == nil {
			continue
		}
		for _, p := range append(live, iffy...) {
			if err := s.putJobState(ctx, p, st, true); err != nil {
				continue // keep trying; worst case ownership stays here
			}
			s.jm.release(id)
			s.cluster.handoffs.Add(1)
			break
		}
	}
}

// --- forwarding -------------------------------------------------------

// forwardIfRemote proxies the request to key's route owner when that is
// another node, reporting whether it handled the request. Forwarded
// requests (marker header) are always served locally, so divergent ring
// views degrade to an extra hop, never a loop. Idempotent reads (GETs,
// minus SSE streams) go through the hedged path; everything else
// retries candidates sequentially with backoff.
func (s *Server) forwardIfRemote(w http.ResponseWriter, r *http.Request, key string, body []byte) bool {
	if s.cluster == nil || r.Header.Get(forwardHeader) != "" {
		return false
	}
	node := s.cluster.node
	owner := node.RouteOwner(key)
	if owner == node.Self() {
		return false
	}
	cands := s.forwardCandidates(key)
	if len(cands) == 0 {
		// Every remote candidate looks down or breaker-tripped; the
		// route owner (RouteOwner already fell back past tripped
		// breakers) is the least-bad single bet.
		url, ok := node.PeerURL(owner)
		if !ok {
			return false
		}
		cands = []cluster.Peer{{ID: owner, URL: url}}
	}
	if r.Method == http.MethodGet && !strings.HasSuffix(r.URL.Path, "/events") && s.cluster.budget != nil {
		s.hedgedForward(w, r, cands, body)
	} else {
		s.forwardTo(w, r, cands, body)
	}
	return true
}

// forwardCandidates lists the remote peers a forwarded request for key
// may be sent to, in ring order: alive, circuit not hard-open, capped
// at three (the owner plus two fallbacks).
func (s *Server) forwardCandidates(key string) []cluster.Peer {
	node := s.cluster.node
	var out []cluster.Peer
	for _, p := range node.Successors(key, 1<<30) {
		if p.ID == node.Self() || !node.Alive(p.ID) {
			continue
		}
		if b := node.Breaker(p.ID); b != nil && b.Tripped() {
			continue
		}
		if out = append(out, p); len(out) == 3 {
			break
		}
	}
	return out
}

// forwardResult is one forwarded response: buffered for ordinary
// bodies (so a chaos-corrupted reply is caught before any byte reaches
// the client), streaming for SSE.
type forwardResult struct {
	resp   *http.Response
	body   []byte        // buffered body (stream == nil)
	stream io.ReadCloser // non-nil for SSE relays
}

// forwardOnce sends one forwarded copy of r to peer. JSON bodies are
// buffered and validated: a reply that fails json.Valid is a transport
// failure (corrupt wire data), not an application response.
func (s *Server) forwardOnce(ctx context.Context, r *http.Request, peer cluster.Peer, body []byte) (*forwardResult, error) {
	req, err := http.NewRequestWithContext(ctx, r.Method, peer.URL+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	// Authorization / X-Tenant-ID keep the tenant identity across the
	// hop (the forward marker suppresses a second quota charge);
	// Last-Event-ID keeps SSE resume cursors working through a proxy.
	for _, h := range []string{"Content-Type", "Idempotency-Key", "Accept",
		"Authorization", "X-Tenant-ID", "Last-Event-ID"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	req.Header.Set(forwardHeader, s.cluster.node.Self())
	resp, err := s.cluster.fwd.Do(req)
	if err != nil {
		return nil, err
	}
	if strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		return &forwardResult{resp: resp, stream: resp.Body}, nil
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") && len(buf) > 0 && !json.Valid(buf) {
		return nil, fmt.Errorf("serve: corrupt reply from %s", peer.ID)
	}
	return &forwardResult{resp: resp, body: buf}, nil
}

// relayForwardResult writes a forwarded response to the client.
func (s *Server) relayForwardResult(w http.ResponseWriter, res *forwardResult) {
	resp := res.resp
	for _, h := range []string{"Content-Type", "Retry-After", "Cache-Control", "X-Accel-Buffering"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	if res.stream != nil {
		// SSE: relay each chunk as it arrives instead of buffering the
		// whole (unbounded) stream.
		defer res.stream.Close()
		fl, _ := w.(http.Flusher)
		buf := make([]byte, 4096)
		for {
			n, rerr := res.stream.Read(buf)
			if n > 0 {
				if _, werr := w.Write(buf[:n]); werr != nil {
					break
				}
				if fl != nil {
					fl.Flush()
				}
			}
			if rerr != nil {
				break
			}
		}
		return
	}
	_, _ = w.Write(res.body)
}

// forwardTo proxies one request over the candidate peers with
// RetryDelay backoff between transport failures, feeding each
// attempt's outcome to the peer's circuit breaker. The backoff select
// watches the caller's context, so a canceled client stops burning
// attempts against a dead peer. When every candidate stays
// unreachable the client gets a 503 with a jittered Retry-After (the
// membership layer will route around the dead node shortly).
func (s *Server) forwardTo(w http.ResponseWriter, r *http.Request, cands []cluster.Peer, body []byte) {
	node := s.cluster.node
	var res *forwardResult
	var err error
	ci := 0
	for attempt := 0; attempt < forwardAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-r.Context().Done():
				s.httpError(w, r.Context().Err(), http.StatusServiceUnavailable)
				return
			case <-time.After(RetryDelay(attempt-1, 100*time.Millisecond)):
			}
		}
		p := cands[ci%len(cands)]
		ci++
		if b := node.Breaker(p.ID); b != nil && !b.Allow() {
			err = fmt.Errorf("serve: breaker open for peer %s", p.ID)
			continue
		}
		start := time.Now()
		res, err = s.forwardOnce(r.Context(), r, p, body)
		if err != nil && r.Context().Err() != nil {
			// The caller is gone; the failure says nothing about the peer.
			s.httpError(w, r.Context().Err(), http.StatusServiceUnavailable)
			return
		}
		node.ReportPeer(p.ID, err == nil)
		if err == nil {
			s.cluster.lat.observe(time.Since(start))
			break
		}
	}
	if err != nil {
		s.httpError(w, fmt.Errorf("forwarding to cluster owner failed: %w", err), http.StatusServiceUnavailable)
		return
	}
	s.relayForwardResult(w, res)
	s.cluster.forwards.Add(1)
}

// --- HTTP handlers ----------------------------------------------------

// ClusterStatus is the GET /v1/cluster body: fleet topology, per-node
// health and the merged lease table.
type ClusterStatus struct {
	Schema   int              `json:"schema"`
	Self     string           `json:"self"`
	Nodes    []cluster.Member `json:"nodes"`
	Leases   []cluster.Lease  `json:"leases"`
	Usage    []TenantUsage    `json:"usage,omitempty"`
	Claims   int64            `json:"claims"`
	Forwards int64            `json:"forwards"`
	Handoffs int64            `json:"handoffs"`
	// Breakers is each remote peer's circuit state as this node sees it.
	Breakers []cluster.BreakerStatus `json:"breakers,omitempty"`
	// Hedges/HedgeWins count hedged forwarded reads and the ones where
	// the hedge answered first.
	Hedges    int64 `json:"hedges"`
	HedgeWins int64 `json:"hedge_wins"`
	// Chaos reports injected-fault counters when this node runs with a
	// chaos transport installed.
	Chaos *cluster.ChaosStats `json:"chaos,omitempty"`
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "cluster mode disabled: server runs solo"})
		return
	}
	node := s.cluster.node
	merged := make(map[string]cluster.Lease)
	for _, l := range node.RemoteLeases() {
		merged[l.JobID] = l
	}
	for _, l := range s.jm.leaseTable() {
		merged[l.JobID] = l // the local view of a job we own wins
	}
	leases := make([]cluster.Lease, 0, len(merged))
	for _, l := range merged {
		leases = append(leases, l)
	}
	sort.Slice(leases, func(i, j int) bool { return leases[i].JobID < leases[j].JobID })
	status := &ClusterStatus{
		Schema:    ResponseSchemaVersion,
		Self:      node.Self(),
		Nodes:     node.Members(),
		Leases:    leases,
		Usage:     mergeUsage(s.tenants.table(), node.RemoteUsage()),
		Claims:    s.cluster.claims.Load(),
		Forwards:  s.cluster.forwards.Load(),
		Handoffs:  s.cluster.handoffs.Load(),
		Breakers:  node.BreakerStates(),
		Hedges:    s.cluster.hedges.Load(),
		HedgeWins: s.cluster.hedgeWins.Load(),
	}
	if s.cluster.chaos != nil {
		st := s.cluster.chaos.Stats()
		status.Chaos = &st
	}
	writeJSON(w, http.StatusOK, status)
}

// handleClusterPing answers the membership probe: identity + owned
// leases. Internal (node-to-node), but safe to expose.
func (s *Server) handleClusterPing(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "cluster mode disabled: server runs solo"})
		return
	}
	leases := s.jm.leaseTable()
	if leases == nil {
		leases = []cluster.Lease{}
	}
	writeJSON(w, http.StatusOK, &cluster.PingResponse{
		NodeID: s.cluster.node.Self(),
		Leases: leases,
		Usage:  s.tenants.table(),
	})
}

// handleJobStateGet serves this node's copy of a job's state (owner or
// replica) for claims and handoffs.
func (s *Server) handleJobStateGet(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil || s.jm == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "cluster mode disabled: server runs solo"})
		return
	}
	st := s.jm.jobState(r.PathValue("id"))
	if st == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "job state not held here"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleJobStatePut ingests a pushed job state: a replica copy by
// default, an ownership transfer with ?claim=1 (drain handoff).
func (s *Server) handleJobStatePut(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil || s.jm == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "cluster mode disabled: server runs solo"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	var st JobState
	if err := json.Unmarshal(body, &st); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if id := r.PathValue("id"); st.ID != id {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("state id %q does not match path id %q", st.ID, id)})
		return
	}
	if st.ID == "" || len(st.Body) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "job state needs id and body"})
		return
	}
	if r.URL.Query().Get("claim") == "1" {
		if err := s.jm.adoptOwned(&st); err != nil {
			s.httpError(w, err, http.StatusServiceUnavailable)
			return
		}
	} else {
		if err := s.jm.storeReplica(&st); err != nil {
			s.httpError(w, err, http.StatusServiceUnavailable)
			return
		}
		// Replica pushes double as lease knowledge: even if the owner
		// dies before its first gossip, its replicas can arm failover.
		s.cluster.node.NoteLease(cluster.Lease{
			JobID: st.ID, Holder: st.Holder, Status: st.Status, Checkpoint: st.Progress,
		})
	}
	w.WriteHeader(http.StatusNoContent)
}
