package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"strconv"
	"sync"
	"time"
)

// The job journal is mtsimd's crash-tolerance layer: an append-only
// write-ahead log of every async /v1/batch job's lifecycle, fsync'd per
// record, replayed on startup. A SIGKILL at any point loses at most the
// record being written — the CRC framing detects the torn tail and
// replay resumes every unfinished job from its latest checkpoint, which
// (because machine snapshots restore byte-identically) yields the exact
// response an uninterrupted run would have produced.
//
// Format: one record per line, `crc32_hex space json \n`, where the CRC
// (IEEE, hex, fixed 8 digits) covers the JSON bytes. JSON-lines keeps
// the log greppable in production; the CRC is what makes truncation and
// torn writes detectable, since a partial JSON document can still
// parse. Replay stops at the first record whose CRC, framing or JSON
// does not verify and truncates the file there, so later appends never
// interleave with garbage.
//
// In cluster mode the journal also carries ownership: submit records
// gain a role (owner vs replica), and lease/release records track which
// jobs this node must run after a restart. A node's lease records are
// its own claims; the cluster-wide lease table lives in memory and is
// gossiped over ping, not journaled (see internal/cluster).

// Journal record kinds.
const (
	recSubmit  = "submit"  // a job was accepted: body is the BatchRequest
	recCkpt    = "ckpt"    // one batch entry paused: snap is its machine snapshot
	recDone    = "done"    // the job finished: resp is the final response body
	recLease   = "lease"   // this node claimed/renewed ownership of the job
	recRelease = "release" // this node handed the job off (graceful drain)
)

// Submit roles. An owner submit is a job this node must run; a replica
// submit is another node's job held for failover and never queued
// locally until a lease record promotes it.
const (
	roleOwner   = "" // the zero value: pre-cluster journals are all owner
	roleReplica = "replica"
)

// verbatimJSON carries pre-rendered JSON bytes through an encode/decode
// round trip without reformatting. encoding/json rewrites a nested
// json.RawMessage — Marshal compacts it, Encoder.SetIndent re-indents
// it into the outer document — either of which would silently break the
// byte-identity promise on recorded responses once they travel inside a
// journal record or a cluster job-state push. Encoding as a base64
// string (like []byte) keeps the payload exact. Decoding still accepts
// a bare JSON value, so records written before this type existed replay
// with their old (compacted) bytes rather than erroring.
type verbatimJSON []byte

func (v verbatimJSON) MarshalJSON() ([]byte, error) {
	if v == nil {
		return []byte("null"), nil
	}
	return json.Marshal([]byte(v))
}

func (v *verbatimJSON) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		*v = nil
		return nil
	}
	if len(data) > 0 && data[0] == '"' {
		var b []byte
		if err := json.Unmarshal(data, &b); err != nil {
			return err
		}
		*v = b
		return nil
	}
	// Legacy record: the value was stored as an inline JSON document.
	*v = append([]byte(nil), data...)
	return nil
}

// journalRecord is one WAL line's JSON payload.
type journalRecord struct {
	Seq  uint64 `json:"seq"`
	Kind string `json:"kind"`
	// ID is the job id ("b-" + hash of the idempotency key).
	ID string `json:"id"`
	// Key is the client's idempotency key (submit records).
	Key string `json:"key,omitempty"`
	// Body is the submitted BatchRequest (submit records).
	Body json.RawMessage `json:"body,omitempty"`
	// Job is the batch entry index a checkpoint belongs to.
	Job int `json:"job,omitempty"`
	// Cycle is the simulation cycle the snapshot was taken at.
	Cycle int64 `json:"cycle,omitempty"`
	// Snap is the machine snapshot (base64 under encoding/json).
	Snap []byte `json:"snap,omitempty"`
	// Resp is the final response body, stored verbatim (base64, see
	// verbatimJSON) so a replayed job serves bytes identical to the
	// original (done records).
	Resp verbatimJSON `json:"resp,omitempty"`
	// Role marks a submit as owner ("") or replica (cluster mode).
	Role string `json:"role,omitempty"`
	// Node is the cluster node id writing a lease/release record.
	Node string `json:"node,omitempty"`
	// TTLMS is the lease validity window of a lease record.
	TTLMS int64 `json:"ttl_ms,omitempty"`
	// Tenant attributes a submit record for accounting and fair-share.
	Tenant string `json:"tenant,omitempty"`
	// Usage is the per-tenant usage delta this job accrued (done
	// records). Replay restores it, so accounting survives a crash.
	Usage *TenantUsage `json:"usage,omitempty"`
}

// JobCheckpoint is the latest persisted pause point of one batch entry.
type JobCheckpoint struct {
	Cycle int64
	Snap  []byte
}

// ReplayedJob is one job reconstructed from the journal.
type ReplayedJob struct {
	ID   string
	Key  string
	Body json.RawMessage
	// Tenant is the submitting tenant (empty on pre-tenancy journals;
	// the manager maps that to DefaultTenant).
	Tenant string
	// Resp is non-nil iff the job completed before the restart.
	Resp []byte
	// Usage is the accounting delta recorded with the done record, nil
	// for unfinished jobs and pre-tenancy journals.
	Usage *TenantUsage
	// Ckpts holds, per batch entry index, the latest checkpoint of an
	// unfinished job; resuming from it skips the already-simulated
	// cycles without changing a byte of the outcome.
	Ckpts map[int]JobCheckpoint
	// Events is the checkpoint event history in journal order — every
	// ckpt record's (entry, cycle), not just the latest per entry — so
	// an SSE subscriber of a replayed job can be caught up exactly.
	Events []JobEvent
	// Owned reports whether this node must run the job: true for owner
	// submits and after a lease record, false for replica submits and
	// after a release record (the latest ownership record wins). A
	// pre-cluster journal, which has only owner submits, replays with
	// every job owned — exactly the old behavior.
	Owned bool
}

// Journal is the append side of the WAL. Safe for concurrent use.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	seq    uint64
	closed bool
}

// OpenJournal opens (creating if needed) the journal at path, replays
// every valid record, truncates a torn tail, and returns the journal
// positioned for appending plus the replayed jobs in submit order.
func OpenJournal(path string) (*Journal, []*ReplayedJob, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: open journal: %w", err)
	}
	j := &Journal{f: f}
	jobs, valid, err := replay(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	for _, job := range jobs {
		if job.lastSeq > j.seq {
			j.seq = job.lastSeq
		}
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("serve: truncate journal tail: %w", err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("serve: seek journal: %w", err)
	}
	out := make([]*ReplayedJob, len(jobs))
	for i, job := range jobs {
		out[i] = &job.ReplayedJob
	}
	return j, out, nil
}

// replayedJob carries replay bookkeeping alongside the public view.
type replayedJob struct {
	ReplayedJob
	lastSeq uint64
}

// replay scans the journal from the start and folds records into
// per-job state. It returns the jobs in submit order and the byte
// offset of the end of the last valid record.
func replay(f *os.File) ([]*replayedJob, int64, error) {
	if _, err := f.Seek(0, 0); err != nil {
		return nil, 0, fmt.Errorf("serve: seek journal: %w", err)
	}
	var (
		jobs  []*replayedJob
		byID  = make(map[string]*replayedJob)
		valid int64
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		rec, ok := parseRecord(line)
		if !ok {
			break // torn or corrupt tail: everything after is suspect
		}
		valid += int64(len(line)) + 1
		switch rec.Kind {
		case recSubmit:
			if _, dup := byID[rec.ID]; dup {
				continue // resubmit of a known key; first submit wins
			}
			job := &replayedJob{
				ReplayedJob: ReplayedJob{ID: rec.ID, Key: rec.Key, Body: rec.Body,
					Tenant: rec.Tenant,
					Ckpts:  make(map[int]JobCheckpoint), Owned: rec.Role != roleReplica},
				lastSeq: rec.Seq,
			}
			byID[rec.ID] = job
			jobs = append(jobs, job)
		case recCkpt:
			if job := byID[rec.ID]; job != nil {
				// Snapless ckpt records are event-history backfill (cluster
				// fold of a transferred stream): they extend the event
				// sequence but are not resume points.
				if len(rec.Snap) > 0 && job.Ckpts != nil {
					job.Ckpts[rec.Job] = JobCheckpoint{Cycle: rec.Cycle, Snap: rec.Snap}
				}
				job.Events = append(job.Events, JobEvent{Entry: rec.Job, Cycle: rec.Cycle})
				job.lastSeq = rec.Seq
			}
		case recDone:
			if job := byID[rec.ID]; job != nil {
				job.Resp = rec.Resp
				job.Usage = rec.Usage
				job.Ckpts = nil // no resume needed
				job.lastSeq = rec.Seq
			}
		case recLease:
			// A lease in our own journal means we claimed the job
			// (adoption after a peer death, or run-start/renewal).
			if job := byID[rec.ID]; job != nil {
				job.Owned = true
				job.lastSeq = rec.Seq
			}
		case recRelease:
			// We handed the job off during a drain: it is a replica now
			// and must not re-queue on restart (the claimant runs it).
			if job := byID[rec.ID]; job != nil {
				job.Owned = false
				job.lastSeq = rec.Seq
			}
		}
	}
	if err := sc.Err(); err != nil && err != bufio.ErrTooLong {
		return nil, 0, fmt.Errorf("serve: read journal: %w", err)
	}
	return jobs, valid, nil
}

// parseRecord verifies one line's framing, CRC and JSON.
func parseRecord(line []byte) (journalRecord, bool) {
	var rec journalRecord
	if len(line) < 10 || line[8] != ' ' {
		return rec, false
	}
	want, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return rec, false
	}
	payload := line[9:]
	if crc32.ChecksumIEEE(payload) != uint32(want) {
		return rec, false
	}
	if json.Unmarshal(payload, &rec) != nil {
		return rec, false
	}
	return rec, true
}

// append writes one record: marshal, frame, write, fsync. The fsync per
// record is the durability contract — a submit that was 202'd to the
// client survives any later crash.
func (j *Journal) append(rec journalRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("serve: journal closed")
	}
	j.seq++
	rec.Seq = j.seq
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: marshal journal record: %w", err)
	}
	line := make([]byte, 0, len(payload)+10)
	line = append(line, fmt.Sprintf("%08x ", crc32.ChecksumIEEE(payload))...)
	line = append(line, payload...)
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("serve: append journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("serve: sync journal: %w", err)
	}
	return nil
}

// AppendSubmit journals an accepted job before it is acknowledged.
// tenant attributes the job for accounting ("" = pre-tenancy default).
func (j *Journal) AppendSubmit(id, key, tenant string, body json.RawMessage) error {
	return j.append(journalRecord{Kind: recSubmit, ID: id, Key: key, Tenant: tenant, Body: body})
}

// AppendReplicaSubmit journals another node's job held for failover:
// replayed as a non-owned replica, never queued until a lease record
// promotes it.
func (j *Journal) AppendReplicaSubmit(id, key, tenant string, body json.RawMessage) error {
	return j.append(journalRecord{Kind: recSubmit, ID: id, Key: key, Tenant: tenant, Body: body, Role: roleReplica})
}

// AppendLease journals ownership of a job by node: written when a run
// starts, on every renewal heartbeat while it runs, and when a replica
// is promoted by failover claim or drain handoff.
func (j *Journal) AppendLease(id, node string, ttl time.Duration) error {
	return j.append(journalRecord{Kind: recLease, ID: id, Node: node, TTLMS: ttl.Milliseconds()})
}

// AppendRelease journals that node handed the job off to another owner
// (graceful drain); on replay the job demotes to a replica.
func (j *Journal) AppendRelease(id, node string) error {
	return j.append(journalRecord{Kind: recRelease, ID: id, Node: node})
}

// AppendCkpt journals one batch entry's checkpoint.
func (j *Journal) AppendCkpt(id string, jobIdx int, cycle int64, snap []byte) error {
	return j.append(journalRecord{Kind: recCkpt, ID: id, Job: jobIdx, Cycle: cycle, Snap: snap})
}

// AppendDone journals a job's final response body plus the usage delta
// it accrued (nil when unknown, e.g. a replicated finish — the node
// that ran the cycles did the accounting).
func (j *Journal) AppendDone(id string, resp []byte, usage *TenantUsage) error {
	return j.append(journalRecord{Kind: recDone, ID: id, Resp: resp, Usage: usage})
}

// Close fsyncs and closes the journal. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
