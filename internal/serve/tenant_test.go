package serve

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// newSchedJM builds a bare job manager for scheduler-level tests: no
// journal, no dispatchers — jobs go in through enqueueLocked and come
// out through nextLocked, so the dispatch order is fully observable.
func newSchedJM(cfg Config, fair bool) *jobManager {
	jm := &jobManager{
		srv:    New(cfg),
		fair:   fair,
		jobs:   make(map[string]*asyncJob),
		queues: make(map[string]*tenantQueue),
	}
	jm.cond = sync.NewCond(&jm.mu)
	return jm
}

// TestFairShareDrainRatio: with every tenant backlogged, any dispatch
// window the size of the weight sum drains each tenant proportionally
// to its weight, within one job — the deficit-round-robin guarantee.
func TestFairShareDrainRatio(t *testing.T) {
	cases := []struct {
		name    string
		tenants []TenantConfig
		perQ    int            // jobs enqueued per tenant
		window  int            // dispatches to examine
		want    map[string]int // expected dispatches per tenant in the window
	}{
		{
			name:    "10:1 skew",
			tenants: []TenantConfig{{Name: "heavy", Weight: 10}, {Name: "light", Weight: 1}},
			perQ:    20, window: 11,
			want: map[string]int{"heavy": 10, "light": 1},
		},
		{
			name:    "equal weights",
			tenants: []TenantConfig{{Name: "a", Weight: 1}, {Name: "b", Weight: 1}},
			perQ:    10, window: 10,
			want: map[string]int{"a": 5, "b": 5},
		},
		{
			name: "3:2:1 three-way",
			tenants: []TenantConfig{
				{Name: "x", Weight: 3}, {Name: "y", Weight: 2}, {Name: "z", Weight: 1},
			},
			perQ: 12, window: 6,
			want: map[string]int{"x": 3, "y": 2, "z": 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			jm := newSchedJM(Config{Tenants: tc.tenants}, true)
			jm.mu.Lock()
			defer jm.mu.Unlock()
			// Interleave the submit order round-robin across tenants so
			// arrival order cannot accidentally produce the expected mix.
			for i := 0; i < tc.perQ; i++ {
				for _, tnc := range tc.tenants {
					job := newAsyncJob(fmt.Sprintf("%s-%d", tnc.Name, i), "", tnc.Name)
					job.status = JobQueued
					jm.enqueueLocked(job)
				}
			}
			got := make(map[string]int)
			for i := 0; i < tc.window; i++ {
				job := jm.nextLocked()
				if job == nil {
					t.Fatalf("nextLocked returned nil at dispatch %d", i)
				}
				got[job.tenant]++
			}
			for name, want := range tc.want {
				if diff := got[name] - want; diff < -1 || diff > 1 {
					t.Errorf("tenant %s: %d dispatches in window %d, want %d±1 (full mix: %v)",
						name, got[name], tc.window, want, got)
				}
			}
		})
	}
}

// TestFairShareIdleTenantForfeitsCredit: a tenant with no backlog banks
// nothing — when it comes back it competes from zero instead of
// bursting on saved credit.
func TestFairShareIdleTenantForfeitsCredit(t *testing.T) {
	jm := newSchedJM(Config{Tenants: []TenantConfig{
		{Name: "busy", Weight: 1}, {Name: "idle", Weight: 5},
	}}, true)
	jm.mu.Lock()
	defer jm.mu.Unlock()
	for i := 0; i < 6; i++ {
		job := newAsyncJob(fmt.Sprintf("busy-%d", i), "", "busy")
		job.status = JobQueued
		jm.enqueueLocked(job)
	}
	// Materialize the idle tenant's queue with one job, drain everything:
	// the idle queue empties first pass and must reset its deficit.
	j := newAsyncJob("idle-0", "", "idle")
	j.status = JobQueued
	jm.enqueueLocked(j)
	for jm.nextLocked() != nil {
	}
	if d := jm.queues["idle"].deficit; d != 0 {
		t.Errorf("idle tenant banked %d credits across an empty period, want 0", d)
	}
}

// TestFIFOSchedulerPreservesSubmitOrder: -fair-share=false falls back
// to the legacy single global queue.
func TestFIFOSchedulerPreservesSubmitOrder(t *testing.T) {
	jm := newSchedJM(Config{}, false)
	jm.mu.Lock()
	defer jm.mu.Unlock()
	ids := []string{"a-0", "b-0", "a-1", "b-1", "a-2"}
	for _, id := range ids {
		tenant, _, _ := strings.Cut(id, "-")
		job := newAsyncJob(id, "", tenant)
		job.status = JobQueued
		jm.enqueueLocked(job)
	}
	for i, want := range ids {
		job := jm.nextLocked()
		if job == nil || job.id != want {
			t.Fatalf("dispatch %d: got %v, want %s", i, job, want)
		}
	}
	if jm.nextLocked() != nil {
		t.Error("queue not empty after draining all submissions")
	}
}

// TestJournalReplayRestoresUsage is the regression test of the replay
// bugfix: done records carry the usage delta their job accrued, and a
// restart folds those deltas back into the tenant counters instead of
// resetting accounting to zero.
func TestJournalReplayRestoresUsage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, jobs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("fresh journal replayed %d jobs", len(jobs))
	}
	resp := json.RawMessage(`{"schema":1}`)
	for i, u := range []*TenantUsage{
		{Tenant: "acme", Jobs: 1, SimCycles: 123_456, QueueMS: 7},
		{Tenant: "acme", Jobs: 1, SimCycles: 1_000, QueueMS: 3},
		{Tenant: "globex", Jobs: 1, SimCycles: 42, QueueMS: 0},
		nil, // a replicated finish: the executing node accounted it
	} {
		key := fmt.Sprintf("usage-%d", i)
		if err := j.AppendSubmit(JobID(key), key, "acme", json.RawMessage(`{}`)); err != nil {
			t.Fatal(err)
		}
		if err := j.AppendDone(JobID(key), resp, u); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	s, _ := newJournalServer(t, Config{}, path)
	if got := s.JournalReplayed(); got != 4 {
		t.Fatalf("JournalReplayed = %d, want 4", got)
	}
	if got := s.tenants.get("acme").usage(); got.Jobs != 2 || got.SimCycles != 124_456 || got.QueueMS != 10 {
		t.Errorf("acme usage after replay = %+v, want jobs=2 sim_cycles=124456 queue_ms=10", got)
	}
	if got := s.tenants.get("globex").usage(); got.Jobs != 1 || got.SimCycles != 42 {
		t.Errorf("globex usage after replay = %+v, want jobs=1 sim_cycles=42", got)
	}
}

// TestReplaySnaplessCkptBackfillsEventsOnly: snapless ckpt records (the
// cluster's event-history backfill) extend the SSE event sequence on
// replay but never become resume points.
func TestReplaySnaplessCkptBackfillsEventsOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	id := JobID("backfill")
	if err := j.AppendSubmit(id, "backfill", "t1", json.RawMessage(`{}`)); err != nil {
		t.Fatal(err)
	}
	snap := []byte("machine-snapshot")
	for _, rec := range []struct {
		entry int
		cycle int64
		snap  []byte
	}{
		{0, 100, nil},  // backfilled: event only
		{0, 200, snap}, // real checkpoint: event + resume point
		{1, 100, nil},  // backfilled on a later entry
	} {
		if err := j.AppendCkpt(id, rec.entry, rec.cycle, rec.snap); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, jobs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(jobs) != 1 {
		t.Fatalf("replayed %d jobs, want 1", len(jobs))
	}
	job := jobs[0]
	wantEvents := []JobEvent{{Entry: 0, Cycle: 100}, {Entry: 0, Cycle: 200}, {Entry: 1, Cycle: 100}}
	if len(job.Events) != len(wantEvents) {
		t.Fatalf("replayed events %v, want %v", job.Events, wantEvents)
	}
	for i, e := range wantEvents {
		if job.Events[i] != e {
			t.Errorf("event %d = %v, want %v", i, job.Events[i], e)
		}
	}
	if len(job.Ckpts) != 1 {
		t.Fatalf("replayed %d resume points, want 1 (snapless records must not resume): %v", len(job.Ckpts), job.Ckpts)
	}
	if c := job.Ckpts[0]; c.Cycle != 200 || string(c.Snap) != string(snap) {
		t.Errorf("entry-0 resume point = cycle %d, want the cycle-200 snapshot", c.Cycle)
	}
}

// TestTwoTenantLoadIsolation is the acceptance load test: one tenant's
// flood is already queued ahead of a higher-weight interactive
// tenant's jobs, and the fair-share dispatcher must still pull the
// interactive jobs to the front of the drain so their queue wait stays
// bounded by the flood's. The backlog is staged through the journal so
// every job is queued before the dispatcher pool starts — the drain
// order is then purely the scheduler's decision, not a race against
// how fast simulations or submissions happen to run.
func TestTwoTenantLoadIsolation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	// Each job gets a distinct latency so the shared session cannot memo
	// one result and hand it to the rest for free — every job simulates.
	body := func(latency int) json.RawMessage {
		return json.RawMessage(fmt.Sprintf(
			`{"scale":"quick","jobs":[{"app":"sieve","config":{"procs":4,"threads":2,"model":"switch-on-use","latency":%d}}]}`, latency))
	}
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	const floodN, vipN = 6, 2
	var floodIDs, vipIDs []string
	for i := 0; i < floodN; i++ {
		key := fmt.Sprintf("flood-%d", i)
		if err := j.AppendSubmit(JobID(key), key, "flood", body(10+i)); err != nil {
			t.Fatal(err)
		}
		floodIDs = append(floodIDs, JobID(key))
	}
	for i := 0; i < vipN; i++ {
		key := fmt.Sprintf("vip-%d", i)
		if err := j.AppendSubmit(JobID(key), key, "vip", body(100+i)); err != nil {
			t.Fatal(err)
		}
		vipIDs = append(vipIDs, JobID(key))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	s, _ := newJournalServer(t, Config{
		Workers: 2, Dispatchers: 1, CheckpointEvery: 500_000,
		Tenants: []TenantConfig{{Name: "vip", Weight: 8}},
	}, path)
	if got := s.JournalReplayed(); got != floodN+vipN {
		t.Fatalf("JournalReplayed = %d, want %d", got, floodN+vipN)
	}

	all := append(append([]string{}, floodIDs...), vipIDs...)
	deadline := time.Now().Add(120 * time.Second)
	for _, id := range all {
		for {
			status, _, _ := s.jm.get(id).state()
			if status == JobDone {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s never finished", id)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Dispatch order = the order the single dispatcher started the jobs.
	// The entire flood was queued first, yet weight 8 vs 1 must pull
	// both vip jobs into the front of the drain: the expected order is
	// one flood job (the round-robin pointer's resting tenant), then
	// both vip jobs, then the remaining flood.
	type startRec struct {
		id, tenant string
		started    time.Time
	}
	order := make([]startRec, 0, len(all))
	for _, id := range all {
		job := s.jm.get(id)
		job.mu.Lock()
		order = append(order, startRec{id, job.tenant, job.started})
		job.mu.Unlock()
	}
	sort.Slice(order, func(i, k int) bool { return order[i].started.Before(order[k].started) })
	pos := make(map[string]int, len(order))
	var seq []string
	for i, r := range order {
		pos[r.id] = i
		seq = append(seq, r.tenant)
	}
	for _, id := range vipIDs {
		if pos[id] > 3 {
			t.Errorf("vip job %s dispatched at position %d — flood starved it (order %v)", id, pos[id], seq)
		}
	}

	// The accounting must agree: both tenants on the usage table with
	// their job counts, and the interactive tenant's average queue wait
	// no worse than the flooder's (it waited behind at most a job or
	// two; the flood waited behind itself).
	var flood, vip TenantUsage
	for _, u := range s.tenants.table() {
		switch u.Tenant {
		case "flood":
			flood = u
		case "vip":
			vip = u
		}
	}
	if flood.Jobs != floodN || vip.Jobs != vipN {
		t.Errorf("usage jobs: flood=%d vip=%d, want %d and %d", flood.Jobs, vip.Jobs, floodN, vipN)
	}
	if flood.SimCycles == 0 || vip.SimCycles == 0 {
		t.Error("usage sim_cycles not accrued for both tenants")
	}
	if vipAvg, floodAvg := vip.QueueMS/vipN, flood.QueueMS/floodN; vipAvg > floodAvg {
		t.Errorf("vip average queue wait %dms exceeds flooder's %dms — fair share failed to bound it", vipAvg, floodAvg)
	}
}
