package serve

import (
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mtsim/internal/cluster"
)

// Multi-tenancy: every request is attributed to a tenant, admission is
// paced per tenant by a token bucket, async jobs drain through
// per-tenant queues under deficit-round-robin (see jobs.go), and usage
// (jobs, sim-cycles, queue time) accrues per tenant — surfaced on
// healthz/expvar, journaled with done records, and gossiped on cluster
// pings so accounting survives both restarts and failover.
//
// Identity is header-derived: `Authorization: Bearer <api-key>` maps a
// configured key to its tenant (an unknown key is a 401), otherwise
// `X-Tenant-ID: <name>` names the tenant directly (created on first
// use), otherwise the request belongs to DefaultTenant. This is
// deliberately not an auth system — it is the attribution and isolation
// layer an auth proxy in front of mtsimd would feed.

// DefaultTenant is the tenant of requests that carry no identity.
const DefaultTenant = "anonymous"

// TenantUsage is re-exported from internal/cluster (the gossip layer
// owns the wire type) so serve's callers need only one import.
type TenantUsage = cluster.TenantUsage

// TenantConfig declares one tenant up front: its fair-share weight, its
// admission quota, and the API keys that map to it. Tenants not listed
// here are created on first use with Weight 1 and the server's
// DefaultQuota.
type TenantConfig struct {
	// Name identifies the tenant in headers, accounting and gossip.
	Name string
	// Weight is the deficit-round-robin share of the async dispatcher
	// pool (default 1). A weight-3 tenant drains three jobs for every
	// one of a weight-1 tenant while both have work queued.
	Weight int
	// Rate and Burst parameterize the admission token bucket: Rate
	// requests/second sustained, Burst extra capacity. Rate 0 means no
	// quota (admission limited only by the shared gate).
	Rate  float64
	Burst int
	// APIKeys are bearer tokens that resolve to this tenant.
	APIKeys []string
}

// Quota is the rate/burst pair applied to tenants without an explicit
// TenantConfig. The zero value means unlimited.
type Quota struct {
	Rate  float64
	Burst int
}

// tokenBucket is a standard refill-on-read token bucket. A nil bucket
// admits everything.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &tokenBucket{rate: rate, burst: b, tokens: b, last: time.Now()}
}

// take consumes one token if available; otherwise it reports how long
// until one accrues — the retry_after_ms hint of the 429.
func (b *tokenBucket) take() (ok bool, retryAfter time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(math.Ceil(deficit/b.rate*1000)) * time.Millisecond
}

// remaining reports the whole tokens currently available (for the v2
// quota field). -1 means unlimited.
func (b *tokenBucket) remaining() int64 {
	if b == nil {
		return -1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	return int64(b.tokens)
}

// tenant is one tenant's runtime state: quota bucket plus monotonic
// usage counters (atomics — the hot paths touch them lock-free).
type tenant struct {
	name   string
	weight int
	bucket *tokenBucket

	jobs      atomic.Int64
	simCycles atomic.Int64
	queueMS   atomic.Int64
}

// usage snapshots the tenant's counters.
func (t *tenant) usage() TenantUsage {
	return TenantUsage{
		Tenant:    t.name,
		Jobs:      t.jobs.Load(),
		SimCycles: t.simCycles.Load(),
		QueueMS:   t.queueMS.Load(),
	}
}

// tenantRegistry resolves request identity to tenants and owns the
// usage table. Tenants are never removed.
type tenantRegistry struct {
	mu           sync.RWMutex
	byName       map[string]*tenant
	byKey        map[string]*tenant
	defaultQuota Quota
}

func newTenantRegistry(configs []TenantConfig, def Quota) *tenantRegistry {
	reg := &tenantRegistry{
		byName:       make(map[string]*tenant),
		byKey:        make(map[string]*tenant),
		defaultQuota: def,
	}
	for _, tc := range configs {
		if tc.Name == "" {
			continue
		}
		w := tc.Weight
		if w < 1 {
			w = 1
		}
		t := &tenant{name: tc.Name, weight: w, bucket: newTokenBucket(tc.Rate, tc.Burst)}
		reg.byName[tc.Name] = t
		for _, k := range tc.APIKeys {
			if k != "" {
				reg.byKey[k] = t
			}
		}
	}
	return reg
}

// get returns (creating on first use) the tenant named name.
func (reg *tenantRegistry) get(name string) *tenant {
	if name == "" {
		name = DefaultTenant
	}
	reg.mu.RLock()
	t := reg.byName[name]
	reg.mu.RUnlock()
	if t != nil {
		return t
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if t = reg.byName[name]; t != nil {
		return t
	}
	t = &tenant{name: name, weight: 1,
		bucket: newTokenBucket(reg.defaultQuota.Rate, reg.defaultQuota.Burst)}
	reg.byName[name] = t
	return t
}

// byAPIKey resolves a bearer token (nil if unknown).
func (reg *tenantRegistry) byAPIKey(key string) *tenant {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	return reg.byKey[key]
}

// resolve maps a request to its tenant. ok=false means the request
// presented an API key the server does not know — a 401, not a fallback
// to anonymous (a mistyped key must not silently bill another tenant).
func (reg *tenantRegistry) resolve(r *http.Request) (t *tenant, ok bool) {
	if auth := r.Header.Get("Authorization"); auth != "" {
		key, found := strings.CutPrefix(auth, "Bearer ")
		if !found {
			return nil, false
		}
		if t = reg.byAPIKey(strings.TrimSpace(key)); t == nil {
			return nil, false
		}
		return t, true
	}
	return reg.get(r.Header.Get("X-Tenant-ID")), true
}

// add folds a usage delta into a tenant's counters — the accrual path
// for live runs and the restore path for journal replay.
func (reg *tenantRegistry) add(name string, jobs, simCycles, queueMS int64) {
	t := reg.get(name)
	t.jobs.Add(jobs)
	t.simCycles.Add(simCycles)
	t.queueMS.Add(queueMS)
}

// table snapshots every tenant's usage, sorted by name, skipping
// tenants that have not accrued anything (keeps healthz quiet until
// tenancy is actually in use).
func (reg *tenantRegistry) table() []TenantUsage {
	reg.mu.RLock()
	tenants := make([]*tenant, 0, len(reg.byName))
	for _, t := range reg.byName {
		tenants = append(tenants, t)
	}
	reg.mu.RUnlock()
	out := make([]TenantUsage, 0, len(tenants))
	for _, t := range tenants {
		u := t.usage()
		if u.Jobs == 0 && u.SimCycles == 0 && u.QueueMS == 0 {
			continue
		}
		out = append(out, u)
	}
	sortUsage(out)
	return out
}

// mergeUsage folds b into a by tenant name (cluster view: local +
// gossiped remote).
func mergeUsage(a, b []TenantUsage) []TenantUsage {
	byName := make(map[string]TenantUsage, len(a)+len(b))
	for _, u := range append(append([]TenantUsage{}, a...), b...) {
		t := byName[u.Tenant]
		t.Tenant = u.Tenant
		t.Jobs += u.Jobs
		t.SimCycles += u.SimCycles
		t.QueueMS += u.QueueMS
		byName[u.Tenant] = t
	}
	out := make([]TenantUsage, 0, len(byName))
	for _, u := range byName {
		out = append(out, u)
	}
	sortUsage(out)
	return out
}

func sortUsage(us []TenantUsage) {
	for i := 1; i < len(us); i++ { // insertion sort: tables are tiny
		for j := i; j > 0 && us[j].Tenant < us[j-1].Tenant; j-- {
			us[j], us[j-1] = us[j-1], us[j]
		}
	}
}
