package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// rejectThenServe answers n rejections (status, with the given headers
// and body) before succeeding with 200 {"id":"j1","status":"done"}.
func rejectThenServe(n int, status int, hdr http.Header, body string) (*httptest.Server, *atomic.Int64) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= int64(n) {
			for k, vs := range hdr {
				for _, v := range vs {
					w.Header().Set(k, v)
				}
			}
			w.WriteHeader(status)
			fmt.Fprint(w, body)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"job_id":"j1","status":"done"}`)
	}))
	return ts, &hits
}

func TestClientRetriesOn429WithServerHint(t *testing.T) {
	ts, hits := rejectThenServe(2, http.StatusTooManyRequests, nil,
		`{"error":{"code":"rate_limited","message":"slow down","retry_after_ms":5}}`)
	defer ts.Close()

	c := New(ts.URL)
	start := time.Now()
	job, err := c.GetJob(context.Background(), "j1")
	if err != nil {
		t.Fatalf("GetJob: %v", err)
	}
	if job.JobID != "j1" {
		t.Fatalf("job = %+v", job)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 rejections + success)", got)
	}
	// The server said 5ms; honoring the hint means not falling back to
	// the ~500ms+ default backoff.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("retries took %v — the server's 5ms hint was ignored", elapsed)
	}
}

func TestClientRetryAfterHeaderFallback(t *testing.T) {
	// A v1-style rejection: no envelope, just the Retry-After header.
	hdr := http.Header{"Retry-After": []string{"1"}}
	ts, _ := rejectThenServe(1, http.StatusServiceUnavailable, hdr, "draining")
	defer ts.Close()

	c := New(ts.URL)
	c.MaxRetries = -1 // single attempt: inspect the decoded error
	_, err := c.GetJob(context.Background(), "j1")
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d", apiErr.Status)
	}
	if apiErr.RetryAfterMS != 1000 {
		t.Fatalf("RetryAfterMS = %d, want 1000 (from the Retry-After header)", apiErr.RetryAfterMS)
	}
}

func TestClientRetriesDisabled(t *testing.T) {
	ts, hits := rejectThenServe(1, http.StatusTooManyRequests, nil,
		`{"error":{"code":"rate_limited","message":"no","retry_after_ms":1}}`)
	defer ts.Close()

	c := New(ts.URL)
	c.MaxRetries = -1
	if _, err := c.GetJob(context.Background(), "j1"); err == nil {
		t.Fatal("rejection succeeded with retries disabled")
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests with retries disabled, want 1", got)
	}
}

func TestClientRetryBudgetExhausts(t *testing.T) {
	ts, hits := rejectThenServe(100, http.StatusTooManyRequests, nil,
		`{"error":{"code":"rate_limited","message":"no","retry_after_ms":1}}`)
	defer ts.Close()

	c := New(ts.URL)
	c.MaxRetries = 2
	_, err := c.GetJob(context.Background(), "j1")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want the final 429", err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (initial + 2 retries)", got)
	}
}

func TestClientNeverSleepsPastDeadline(t *testing.T) {
	// The server's hint (10s) cannot be honored inside the 50ms budget:
	// the rejection must come back immediately, not after the deadline.
	ts, hits := rejectThenServe(100, http.StatusTooManyRequests, nil,
		`{"error":{"code":"rate_limited","message":"later","retry_after_ms":10000}}`)
	defer ts.Close()

	c := New(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.GetJob(ctx, "j1")
	elapsed := time.Since(start)
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want the server's rejection (not a context error)", err)
	}
	if elapsed > 40*time.Millisecond {
		t.Errorf("client waited %v against an unhonorable hint", elapsed)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1 (no retry fits the deadline)", got)
	}
}

func TestClientNonRetryableErrorIsImmediate(t *testing.T) {
	ts, hits := rejectThenServe(100, http.StatusBadRequest, nil,
		`{"error":{"code":"bad_request","message":"no such app"}}`)
	defer ts.Close()

	c := New(ts.URL)
	_, err := c.GetJob(context.Background(), "j1")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "bad_request" {
		t.Fatalf("err = %v, want the 400", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests for a 400, want 1", got)
	}
}
