// Package client is the minimal Go client of the mtsimd /v2 API
// (api/openapi.yaml): submit jobs, read them back, wait for results,
// and tail the SSE progress stream with exact Last-Event-ID resume.
// The chaos harness drives real daemon fleets through it instead of
// hand-rolled HTTP, so the client is exercised against every failure
// mode the harness injects (crashes, failover, spliced streams).
package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mtsim/internal/serve"
)

// Client talks to one mtsimd base URL (any node of a fleet: the ring
// forwards). The zero HTTPClient means http.DefaultClient.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// APIKey, when set, is sent as "Authorization: Bearer <APIKey>" and
	// resolves the tenant server-side.
	APIKey string
	// Tenant, when set (and no APIKey), is sent as X-Tenant-ID.
	Tenant string
	// HTTPClient overrides the transport (nil = http.DefaultClient).
	HTTPClient *http.Client
	// MaxRetries bounds how many times a request rejected with 429 or
	// 503 is retried, pacing by the server's Retry-After hint (the
	// envelope's retry_after_ms, or the Retry-After header) and falling
	// back to serve.RetryDelay jittered exponential backoff when the
	// server sent none. 0 means the default (3); negative disables
	// retries. A retry never sleeps past the request context's
	// deadline: if the server's hint cannot be honored in time, the
	// rejection is returned immediately instead.
	MaxRetries int
}

// defaultMaxRetries is the retry budget when Client.MaxRetries is 0.
const defaultMaxRetries = 3

func (c *Client) maxRetries() int {
	switch {
	case c.MaxRetries < 0:
		return 0
	case c.MaxRetries == 0:
		return defaultMaxRetries
	default:
		return c.MaxRetries
	}
}

// New returns a client for baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimSuffix(baseURL, "/")}
}

// APIError is a non-2xx /v2 reply, decoded from the uniform envelope.
type APIError struct {
	Status       int
	Code         string
	Message      string
	RetryAfterMS int64
}

func (e *APIError) Error() string {
	return fmt.Sprintf("mtsimd: %s (%d): %s", e.Code, e.Status, e.Message)
}

// Event is one SSE frame of a job's progress stream.
type Event struct {
	// ID is the resume cursor ("<entry>-<cycle>" on checkpoint events,
	// empty on status/done).
	ID string
	// Type is "status", "checkpoint" or "done".
	Type string
	// Data is the frame's JSON payload.
	Data json.RawMessage
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// setIdentity attaches the tenant identity headers.
func (c *Client) setIdentity(req *http.Request) {
	if c.APIKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.APIKey)
	} else if c.Tenant != "" {
		req.Header.Set("X-Tenant-ID", c.Tenant)
	}
}

// decodeError turns a non-2xx reply into an *APIError. When the
// envelope carries no retry_after_ms, the Retry-After header (whole
// seconds) fills it in, so v1-style rejections pace retries too.
func decodeError(resp *http.Response, body []byte) error {
	out := &APIError{Status: resp.StatusCode, Code: "unknown",
		Message: strings.TrimSpace(string(body))}
	var env serve.V2Error
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		out.Code, out.Message = env.Error.Code, env.Error.Message
		out.RetryAfterMS = env.Error.RetryAfterMS
	}
	if out.RetryAfterMS == 0 {
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			out.RetryAfterMS = int64(secs) * 1000
		}
	}
	return out
}

// retryable reports whether err is a server rejection worth retrying:
// 429 (queue full, quota, doomed deadline) or 503 (draining, brownout).
func retryable(err error) bool {
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		return false
	}
	return apiErr.Status == http.StatusTooManyRequests ||
		apiErr.Status == http.StatusServiceUnavailable
}

// retryPause picks the wait before retry number attempt (0-based):
// the server's hint when it sent one, else decorrelated exponential
// backoff.
func retryPause(err error, attempt int) time.Duration {
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.RetryAfterMS > 0 {
		return time.Duration(apiErr.RetryAfterMS) * time.Millisecond
	}
	return serve.RetryDelay(attempt, time.Second)
}

// do runs one JSON round trip, retrying server rejections (429/503)
// up to maxRetries times at the server's suggested pace. out may be
// nil.
func (c *Client) do(ctx context.Context, method, path string, in, out any, extra http.Header) error {
	var payload []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		payload = b
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		err := c.doOnce(ctx, method, path, payload, out, extra)
		if err == nil || !retryable(err) || attempt >= c.maxRetries() {
			return err
		}
		lastErr = err
		pause := retryPause(err, attempt)
		// Never sleep past the caller's deadline: a retry that cannot
		// land in time is worse than handing back the rejection now
		// (the caller may have another node to try).
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) < pause {
			return lastErr
		}
		select {
		case <-ctx.Done():
			return lastErr
		case <-time.After(pause):
		}
	}
}

// doOnce is a single attempt of do.
func (c *Client) doOnce(ctx context.Context, method, path string, payload []byte, out any, extra http.Header) error {
	var body io.Reader
	if payload != nil {
		body = strings.NewReader(string(payload))
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, vs := range extra {
		for _, v := range vs {
			req.Header.Set(k, v)
		}
	}
	c.setIdentity(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return decodeError(resp, raw)
	}
	if out != nil {
		return json.Unmarshal(raw, out)
	}
	return nil
}

// SubmitJob posts one job request (run or batch). idempotencyKey, when
// non-empty, is sent as the Idempotency-Key header, making a batch
// durable and async on a journaling server.
func (c *Client) SubmitJob(ctx context.Context, req *serve.V2JobRequest, idempotencyKey string) (*serve.V2Job, error) {
	var extra http.Header
	if idempotencyKey != "" {
		extra = http.Header{"Idempotency-Key": []string{idempotencyKey}}
	}
	var job serve.V2Job
	if err := c.do(ctx, http.MethodPost, "/v2/jobs", req, &job, extra); err != nil {
		return nil, err
	}
	return &job, nil
}

// SubmitBatch is SubmitJob for a batch body.
func (c *Client) SubmitBatch(ctx context.Context, batch *serve.BatchRequest, idempotencyKey string) (*serve.V2Job, error) {
	return c.SubmitJob(ctx, &serve.V2JobRequest{Batch: batch}, idempotencyKey)
}

// Run executes one simulation synchronously and decodes the embedded
// v1 result document.
func (c *Client) Run(ctx context.Context, run *serve.RunRequest) (*serve.RunResponse, error) {
	job, err := c.SubmitJob(ctx, &serve.V2JobRequest{Run: run}, "")
	if err != nil {
		return nil, err
	}
	var out serve.RunResponse
	if err := json.Unmarshal(job.Result, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// GetJob reads the job resource.
func (c *Client) GetJob(ctx context.Context, id string) (*serve.V2Job, error) {
	var job serve.V2Job
	if err := c.do(ctx, http.MethodGet, "/v2/jobs/"+id, nil, &job, nil); err != nil {
		return nil, err
	}
	return &job, nil
}

// WaitJob polls the job until it is done (pacing by the server's
// retry_after_ms hint, floored at 10ms) and returns its result bytes —
// the v1 result document verbatim. Transport errors are returned to
// the caller, who may retry against another node of a fleet.
func (c *Client) WaitJob(ctx context.Context, id string) (json.RawMessage, error) {
	for {
		job, err := c.GetJob(ctx, id)
		if err != nil {
			return nil, err
		}
		if job.Status == serve.JobDone {
			return job.Result, nil
		}
		pause := time.Duration(job.RetryAfterMS) * time.Millisecond
		if pause < 10*time.Millisecond {
			pause = 10 * time.Millisecond
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(pause):
		}
	}
}

// Healthz is the decoded GET /v2/healthz body (the fields the harness
// and operators assert on).
type Healthz struct {
	Schema  int                 `json:"schema"`
	Status  string              `json:"status"`
	Tenants []serve.TenantUsage `json:"tenants"`
}

// GetHealthz reads /v2/healthz.
func (c *Client) GetHealthz(ctx context.Context) (*Healthz, error) {
	var h Healthz
	if err := c.do(ctx, http.MethodGet, "/v2/healthz", nil, &h, nil); err != nil {
		return nil, err
	}
	return &h, nil
}

// ErrStreamEnded reports that an event stream closed after the job's
// `done` event — the normal end of a stream.
var ErrStreamEnded = errors.New("client: event stream ended (job done)")

// StreamEvents tails GET /v2/jobs/{id}/events from lastEventID (""
// = the start), invoking fn per frame. It returns ErrStreamEnded after
// the done event, or the transport/parse error that broke the stream —
// the caller resumes by calling again with the last checkpoint ID it
// saw (exact resume is the server's contract). fn returning an error
// stops the stream with that error.
func (c *Client) StreamEvents(ctx context.Context, id, lastEventID string, fn func(Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v2/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	req.Header.Set("Accept", "text/event-stream")
	c.setIdentity(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return decodeError(resp, raw)
	}
	var ev Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 8<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if ev.Type != "" {
				done := ev.Type == "done"
				if err := fn(ev); err != nil {
					return err
				}
				if done {
					return ErrStreamEnded
				}
			}
			ev = Event{}
		case strings.HasPrefix(line, "id: "):
			ev.ID = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			ev.Type = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.Data = json.RawMessage(strings.TrimPrefix(line, "data: "))
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return io.ErrUnexpectedEOF // stream closed without a done event
}
