// Package client is the minimal Go client of the mtsimd /v2 API
// (api/openapi.yaml): submit jobs, read them back, wait for results,
// and tail the SSE progress stream with exact Last-Event-ID resume.
// The chaos harness drives real daemon fleets through it instead of
// hand-rolled HTTP, so the client is exercised against every failure
// mode the harness injects (crashes, failover, spliced streams).
package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"mtsim/internal/serve"
)

// Client talks to one mtsimd base URL (any node of a fleet: the ring
// forwards). The zero HTTPClient means http.DefaultClient.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// APIKey, when set, is sent as "Authorization: Bearer <APIKey>" and
	// resolves the tenant server-side.
	APIKey string
	// Tenant, when set (and no APIKey), is sent as X-Tenant-ID.
	Tenant string
	// HTTPClient overrides the transport (nil = http.DefaultClient).
	HTTPClient *http.Client
}

// New returns a client for baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimSuffix(baseURL, "/")}
}

// APIError is a non-2xx /v2 reply, decoded from the uniform envelope.
type APIError struct {
	Status       int
	Code         string
	Message      string
	RetryAfterMS int64
}

func (e *APIError) Error() string {
	return fmt.Sprintf("mtsimd: %s (%d): %s", e.Code, e.Status, e.Message)
}

// Event is one SSE frame of a job's progress stream.
type Event struct {
	// ID is the resume cursor ("<entry>-<cycle>" on checkpoint events,
	// empty on status/done).
	ID string
	// Type is "status", "checkpoint" or "done".
	Type string
	// Data is the frame's JSON payload.
	Data json.RawMessage
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// setIdentity attaches the tenant identity headers.
func (c *Client) setIdentity(req *http.Request) {
	if c.APIKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.APIKey)
	} else if c.Tenant != "" {
		req.Header.Set("X-Tenant-ID", c.Tenant)
	}
}

// decodeError turns a non-2xx reply into an *APIError.
func decodeError(status int, body []byte) error {
	var env serve.V2Error
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		return &APIError{Status: status, Code: env.Error.Code,
			Message: env.Error.Message, RetryAfterMS: env.Error.RetryAfterMS}
	}
	return &APIError{Status: status, Code: "unknown", Message: strings.TrimSpace(string(body))}
}

// do runs one JSON round trip. out may be nil.
func (c *Client) do(ctx context.Context, method, path string, in, out any, extra http.Header) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = strings.NewReader(string(b))
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, vs := range extra {
		for _, v := range vs {
			req.Header.Set(k, v)
		}
	}
	c.setIdentity(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return decodeError(resp.StatusCode, raw)
	}
	if out != nil {
		return json.Unmarshal(raw, out)
	}
	return nil
}

// SubmitJob posts one job request (run or batch). idempotencyKey, when
// non-empty, is sent as the Idempotency-Key header, making a batch
// durable and async on a journaling server.
func (c *Client) SubmitJob(ctx context.Context, req *serve.V2JobRequest, idempotencyKey string) (*serve.V2Job, error) {
	var extra http.Header
	if idempotencyKey != "" {
		extra = http.Header{"Idempotency-Key": []string{idempotencyKey}}
	}
	var job serve.V2Job
	if err := c.do(ctx, http.MethodPost, "/v2/jobs", req, &job, extra); err != nil {
		return nil, err
	}
	return &job, nil
}

// SubmitBatch is SubmitJob for a batch body.
func (c *Client) SubmitBatch(ctx context.Context, batch *serve.BatchRequest, idempotencyKey string) (*serve.V2Job, error) {
	return c.SubmitJob(ctx, &serve.V2JobRequest{Batch: batch}, idempotencyKey)
}

// Run executes one simulation synchronously and decodes the embedded
// v1 result document.
func (c *Client) Run(ctx context.Context, run *serve.RunRequest) (*serve.RunResponse, error) {
	job, err := c.SubmitJob(ctx, &serve.V2JobRequest{Run: run}, "")
	if err != nil {
		return nil, err
	}
	var out serve.RunResponse
	if err := json.Unmarshal(job.Result, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// GetJob reads the job resource.
func (c *Client) GetJob(ctx context.Context, id string) (*serve.V2Job, error) {
	var job serve.V2Job
	if err := c.do(ctx, http.MethodGet, "/v2/jobs/"+id, nil, &job, nil); err != nil {
		return nil, err
	}
	return &job, nil
}

// WaitJob polls the job until it is done (pacing by the server's
// retry_after_ms hint, floored at 10ms) and returns its result bytes —
// the v1 result document verbatim. Transport errors are returned to
// the caller, who may retry against another node of a fleet.
func (c *Client) WaitJob(ctx context.Context, id string) (json.RawMessage, error) {
	for {
		job, err := c.GetJob(ctx, id)
		if err != nil {
			return nil, err
		}
		if job.Status == serve.JobDone {
			return job.Result, nil
		}
		pause := time.Duration(job.RetryAfterMS) * time.Millisecond
		if pause < 10*time.Millisecond {
			pause = 10 * time.Millisecond
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(pause):
		}
	}
}

// Healthz is the decoded GET /v2/healthz body (the fields the harness
// and operators assert on).
type Healthz struct {
	Schema  int                 `json:"schema"`
	Status  string              `json:"status"`
	Tenants []serve.TenantUsage `json:"tenants"`
}

// GetHealthz reads /v2/healthz.
func (c *Client) GetHealthz(ctx context.Context) (*Healthz, error) {
	var h Healthz
	if err := c.do(ctx, http.MethodGet, "/v2/healthz", nil, &h, nil); err != nil {
		return nil, err
	}
	return &h, nil
}

// ErrStreamEnded reports that an event stream closed after the job's
// `done` event — the normal end of a stream.
var ErrStreamEnded = errors.New("client: event stream ended (job done)")

// StreamEvents tails GET /v2/jobs/{id}/events from lastEventID (""
// = the start), invoking fn per frame. It returns ErrStreamEnded after
// the done event, or the transport/parse error that broke the stream —
// the caller resumes by calling again with the last checkpoint ID it
// saw (exact resume is the server's contract). fn returning an error
// stops the stream with that error.
func (c *Client) StreamEvents(ctx context.Context, id, lastEventID string, fn func(Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v2/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	req.Header.Set("Accept", "text/event-stream")
	c.setIdentity(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return decodeError(resp.StatusCode, raw)
	}
	var ev Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 8<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if ev.Type != "" {
				done := ev.Type == "done"
				if err := fn(ev); err != nil {
					return err
				}
				if done {
					return ErrStreamEnded
				}
			}
			ev = Event{}
		case strings.HasPrefix(line, "id: "):
			ev.ID = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			ev.Type = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.Data = json.RawMessage(strings.TrimPrefix(line, "data: "))
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return io.ErrUnexpectedEOF // stream closed without a done event
}
