package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"mtsim/internal/app"
	"mtsim/internal/apps"
	"mtsim/internal/core"
	"mtsim/internal/machine"
	"mtsim/internal/net"
)

// TestRunEndpointTopologyMatchesLibrary: a kernel run on a routed
// topology through the server must reproduce the library path exactly,
// topology-aware round trips included.
func TestRunEndpointTopologyMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"app":"gather","scale":"quick","config":{"procs":4,"threads":2,"model":"switch-on-load","latency":64,"topology":{"kind":"mesh"}}}`
	status, data := postJSON(t, ts.URL+"/v1/run", body)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, data)
	}
	var got RunResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}

	sess := core.NewSession()
	a := apps.MustNew("gather", app.Quick)
	cfg := machine.Config{Procs: 4, Threads: 2, Model: machine.SwitchOnLoad, Latency: 64}
	cfg.Topology = net.TopologyConfig{Kind: net.TopoMesh}
	res, err := sess.Run(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != res.Cycles || got.Instrs != res.Instrs {
		t.Errorf("served cycles/instrs = %d/%d, library = %d/%d", got.Cycles, got.Instrs, res.Cycles, res.Instrs)
	}

	// A constant-topology run of the same shape must differ: the mesh's
	// queueing delay is real simulated time, not decoration.
	cfg2 := cfg
	cfg2.Topology = net.TopologyConfig{}
	res2, err := sess.Run(a, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cycles == res.Cycles {
		t.Errorf("mesh and constant topologies ran in identical %d cycles", res.Cycles)
	}
}

// TestRunEndpointTopologyValidation: the decoder rejects unknown
// topology kinds (listing the valid choices) and invalid compositions
// with a 400 carrying the library's message.
func TestRunEndpointTopologyValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body, wantErr string
	}{
		{
			"unknown kind",
			`{"app":"sor","config":{"procs":2,"threads":2,"model":"switch-on-load","latency":64,"topology":{"kind":"torus"}}}`,
			"mesh",
		},
		{
			"topology on ideal",
			`{"app":"sor","config":{"procs":2,"threads":2,"model":"ideal","topology":{"kind":"mesh"}}}`,
			"ideal",
		},
		{
			"shape params on constant",
			`{"app":"sor","config":{"procs":2,"threads":2,"model":"switch-on-load","latency":64,"topology":{"kind":"constant","nodes":8}}}`,
			"constant",
		},
		{
			"negative nodes",
			`{"app":"sor","config":{"procs":2,"threads":2,"model":"switch-on-load","latency":64,"topology":{"kind":"mesh","nodes":-4}}}`,
			"Nodes",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := postJSON(t, ts.URL+"/v1/run", tc.body)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %s)", status, body)
			}
			var e errorResponse
			if err := json.Unmarshal(body, &e); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(e.Error, tc.wantErr) {
				t.Errorf("error %q does not mention %q", e.Error, tc.wantErr)
			}
		})
	}
	// The unknown-kind error must enumerate every valid choice so the
	// client can self-correct.
	status, body := postJSON(t, ts.URL+"/v1/run",
		`{"app":"sor","config":{"procs":2,"threads":2,"model":"switch-on-load","latency":64,"topology":{"kind":"hypercube"}}}`)
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", status)
	}
	for _, name := range net.TopologyNames() {
		if !bytes.Contains(body, []byte(name)) {
			t.Errorf("400 body %s does not list choice %q", body, name)
		}
	}
}

// TestExperimentEndpointTopologyParams: kernels= and topologies= query
// parameters narrow the ablation-topology sweep; unknown names are a
// 400 listing the valid choices, before any simulation runs.
func TestExperimentEndpointTopologyParams(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/v1/experiments/ablation-topology?kernels=gather&topologies=mesh")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	out := string(body)
	if !strings.Contains(out, "gather / mesh") {
		t.Errorf("rendering missing the requested kernel row:\n%s", out)
	}
	if strings.Contains(out, "hashjoin /") || strings.Contains(out, "/ dragonfly") {
		t.Errorf("rendering includes rows the query excluded:\n%s", out)
	}

	for _, tc := range []struct{ name, query, wantErr string }{
		{"unknown kernel", "kernels=nope", "unknown kernel"},
		{"unknown topology", "topologies=torus", "mesh"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Get(ts.URL + "/v1/experiments/ablation-topology?" + tc.query)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %s)", resp.StatusCode, body)
			}
			if !bytes.Contains(body, []byte(tc.wantErr)) {
				t.Errorf("400 body %s does not mention %q", body, tc.wantErr)
			}
		})
	}
}
