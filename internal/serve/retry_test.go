package serve

import (
	"testing"
	"time"
)

func TestRetryAfterSecondsBounds(t *testing.T) {
	for i := 0; i < 200; i++ {
		if s := retryAfterSeconds(4 * time.Second); s < 2 || s > 6 {
			t.Fatalf("retryAfterSeconds(4s) = %d, want within [2,6]", s)
		}
		// Sub-second bases clamp to the header's floor of one second.
		if s := retryAfterSeconds(100 * time.Millisecond); s != 1 {
			t.Fatalf("retryAfterSeconds(100ms) = %d, want 1", s)
		}
	}
}

func TestRetryDelayBounds(t *testing.T) {
	base := 100 * time.Millisecond
	for attempt := -1; attempt <= 9; attempt++ {
		eff := attempt
		if eff < 0 {
			eff = 0
		}
		if eff > 6 {
			eff = 6
		}
		lo, hi := base<<uint(eff)/2, 3*(base<<uint(eff))/2
		for i := 0; i < 100; i++ {
			if d := RetryDelay(attempt, base); d < lo || d > hi {
				t.Fatalf("RetryDelay(%d, %v) = %v, want within [%v, %v]", attempt, base, d, lo, hi)
			}
		}
	}
	// Zero base defaults to one second.
	for i := 0; i < 100; i++ {
		if d := RetryDelay(0, 0); d < 500*time.Millisecond || d > 1500*time.Millisecond {
			t.Fatalf("RetryDelay(0, 0) = %v, want within [500ms, 1.5s]", d)
		}
	}
}

// TestRetryDelaySpread: consecutive calls must not all agree — the
// whole point is decorrelating clients.
func TestRetryDelaySpread(t *testing.T) {
	first := RetryDelay(3, time.Second)
	for i := 0; i < 50; i++ {
		if RetryDelay(3, time.Second) != first {
			return
		}
	}
	t.Error("50 jittered delays were identical")
}
