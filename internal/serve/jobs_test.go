package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mtsim/internal/app"
	"mtsim/internal/apps"
	"mtsim/internal/core"
)

// asyncBatchBody is the shared request of the async tests: small enough
// to finish quickly, big enough (sieve at quick is >1M cycles) to cross
// several checkpoint intervals.
const asyncBatchBody = `{
  "scale": "quick",
  "jobs": [
    {"app": "sieve", "config": {"procs": 4, "threads": 2, "model": "switch-on-use"}},
    {"app": "sor", "config": {"procs": 2, "threads": 2, "model": "explicit-switch"}}
  ]
}`

// newJournalServer builds a Server with journaling on and serves it
// over httptest. Shutdown (which closes the journal) runs at cleanup.
func newJournalServer(t *testing.T, cfg Config, path string) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	if _, err := s.EnableJournal(path); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

// postJSONKey posts body with an Idempotency-Key header.
func postJSONKey(t *testing.T, url, key, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// pollJob polls GET /v1/batch/jobs/{id} until the job is done and
// returns the final response bytes.
func pollJob(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/batch/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch resp.StatusCode {
		case http.StatusOK:
			return data
		case http.StatusAccepted:
			time.Sleep(5 * time.Millisecond)
		default:
			t.Fatalf("poll %s: status %d: %s", id, resp.StatusCode, data)
		}
	}
	t.Fatalf("job %s did not finish in time", id)
	return nil
}

// TestAsyncBatchLifecycle drives the async path end to end: 202 ack
// with the derived job id, poll to completion, response bytes identical
// to the sync path, idempotent resubmission, and 503 once draining.
func TestAsyncBatchLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	s, ts := newJournalServer(t, Config{CheckpointEvery: 200_000}, path)

	// Sync reference from a separate journal-less server (sharing the
	// journal server's session would memo the results and leave the
	// async run nothing to simulate — or checkpoint).
	_, plain := newTestServer(t, Config{})
	syncStatus, syncBytes := postJSON(t, plain.URL+"/v1/batch", asyncBatchBody)
	if syncStatus != http.StatusOK {
		t.Fatalf("sync batch: status %d: %s", syncStatus, syncBytes)
	}

	status, body := postJSONKey(t, ts.URL+"/v1/batch", "lifecycle-key", asyncBatchBody)
	if status != http.StatusAccepted {
		t.Fatalf("async submit: status %d: %s", status, body)
	}
	var ack JobStatus
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.JobID != JobID("lifecycle-key") {
		t.Errorf("job id %s, want %s", ack.JobID, JobID("lifecycle-key"))
	}

	got := pollJob(t, ts, ack.JobID)
	if string(got) != string(syncBytes) {
		t.Errorf("async response differs from sync:\n--- sync ---\n%s\n--- async ---\n%s", syncBytes, got)
	}
	if s.CheckpointsWritten() == 0 {
		t.Error("no checkpoints journaled during the async run")
	}

	// Resubmitting the key is a no-op returning the same job.
	status, body = postJSONKey(t, ts.URL+"/v1/batch", "lifecycle-key", asyncBatchBody)
	if status != http.StatusAccepted {
		t.Fatalf("resubmit: status %d: %s", status, body)
	}
	var again JobStatus
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if again.JobID != ack.JobID || again.Status != JobDone {
		t.Errorf("resubmit ack = %+v, want same id with status done", again)
	}

	// Unknown ids 404.
	resp, err := http.Get(ts.URL + "/v1/batch/jobs/b-0000000000000000")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}

	// After a drain the server stops taking jobs (the journal is
	// closed) but keeps serving what it has.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	status, _ = postJSONKey(t, ts.URL+"/v1/batch", "late-key", asyncBatchBody)
	if status != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: status %d, want 503", status)
	}
	if got := pollJob(t, ts, ack.JobID); string(got) != string(syncBytes) {
		t.Error("finished job unreadable after drain")
	}
}

// TestJobEndpointWithoutJournal: the poll endpoint exists but answers
// 404 when the server runs journal-less.
func TestJobEndpointWithoutJournal(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/batch/jobs/" + JobID("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}

// TestRecoveryResumesFromCheckpoint is the deterministic half of the
// crash story: a journal holding a submit plus a real mid-run
// checkpoint (as a crashed server would leave behind) must replay into
// exactly the bytes a never-crashed server produces, and the resumed
// run must write further checkpoints rather than restart from cycle 0.
func TestRecoveryResumesFromCheckpoint(t *testing.T) {
	body := `{"scale":"quick","jobs":[{"app":"sieve","config":{"procs":4,"threads":2,"model":"switch-on-use"}}]}`

	// Crash-free reference over the sync path.
	_, plain := newTestServer(t, Config{})
	refStatus, ref := postJSON(t, plain.URL+"/v1/batch", body)
	if refStatus != http.StatusOK {
		t.Fatalf("reference batch: status %d: %s", refStatus, ref)
	}

	// Capture a genuine early checkpoint of the job's only entry.
	cfgReq := ConfigRequest{Procs: 4, Threads: 2, Model: "switch-on-use"}
	cfg, err := cfgReq.ToMachine()
	if err != nil {
		t.Fatal(err)
	}
	a := apps.MustNew("sieve", app.Quick)
	var ckpt JobCheckpoint
	sink := errors.New("first checkpoint captured")
	_, err = core.NewSession().RunCheckpointedContext(context.Background(), a, cfg, core.CheckpointConfig{
		Interval: 200_000,
		OnCheckpoint: func(cycle int64, snap []byte) error {
			ckpt = JobCheckpoint{Cycle: cycle, Snap: snap}
			return sink
		},
	})
	if !errors.Is(err, sink) {
		t.Fatalf("checkpoint capture: %v", err)
	}

	// Fabricate the post-crash journal: acknowledged job, one
	// checkpoint, no done record.
	path := filepath.Join(t.TempDir(), "wal")
	key := "crash-recovery"
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendSubmit(JobID(key), key, "", json.RawMessage(body)); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendCkpt(JobID(key), 0, ckpt.Cycle, ckpt.Snap); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": the replayed job must finish to the reference bytes.
	s, ts := newJournalServer(t, Config{CheckpointEvery: 200_000}, path)
	if s.JournalReplayed() != 1 {
		t.Fatalf("JournalReplayed = %d, want 1", s.JournalReplayed())
	}
	got := pollJob(t, ts, JobID(key))
	if string(got) != string(ref) {
		t.Errorf("recovered response differs from crash-free run:\n--- reference ---\n%s\n--- recovered ---\n%s", ref, got)
	}
	if s.CheckpointsWritten() == 0 {
		t.Error("resumed run journaled no further checkpoints")
	}
}

// TestDrainMidJobLeavesItResumable kills the dispatcher at an arbitrary
// point of a running job (drain with an already-dead context) and
// restarts over the same journal. Whatever the interleaving — job not
// started, mid-run with checkpoints, or already done — the client must
// end up reading the crash-free bytes.
func TestDrainMidJobLeavesItResumable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	s1 := New(Config{CheckpointEvery: 100_000})
	if _, err := s1.EnableJournal(path); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	key := "drain-mid-job"
	status, body := postJSONKey(t, ts1.URL+"/v1/batch", key, asyncBatchBody)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, body)
	}
	time.Sleep(10 * time.Millisecond) // let the job get partway in
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s1.Shutdown(dead) // expired drain: the in-flight job is aborted
	ts1.Close()

	s2, ts2 := newJournalServer(t, Config{CheckpointEvery: 100_000}, path)
	if s2.JournalReplayed() != 1 {
		t.Fatalf("JournalReplayed = %d, want 1", s2.JournalReplayed())
	}
	got := pollJob(t, ts2, JobID(key))

	refStatus, ref := postJSON(t, ts2.URL+"/v1/batch", asyncBatchBody)
	if refStatus != http.StatusOK {
		t.Fatalf("reference batch: status %d: %s", refStatus, ref)
	}
	if string(got) != string(ref) {
		t.Errorf("recovered job differs from crash-free run:\n--- reference ---\n%s\n--- recovered ---\n%s", ref, got)
	}
}

// TestReplayedJobWithBadBodyFails: a journaled body that no longer
// validates resolves to a recorded error response instead of wedging
// the queue.
func TestReplayedJobWithBadBodyFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendSubmit(JobID("bad"), "bad", "", json.RawMessage(`{"jobs":[{"app":"no-such-app","config":{"procs":1,"threads":1,"model":"switch-on-use"}}]}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, ts := newJournalServer(t, Config{}, path)
	got := pollJob(t, ts, JobID("bad"))
	var e errorResponse
	if err := json.Unmarshal(got, &e); err != nil || e.Error == "" {
		t.Fatalf("want a recorded error response, got: %s", got)
	}
}
