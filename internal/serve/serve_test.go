package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"mtsim/internal/app"
	"mtsim/internal/apps"
	"mtsim/internal/core"
	"mtsim/internal/exp"
	"mtsim/internal/machine"
)

// newTestServer starts a Server over httptest and tears it down with
// the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJSON posts body to url and returns status + response bytes.
func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

const sorRun = `{"app":"sor","scale":"quick","config":{"procs":4,"threads":4,"model":"switch-on-miss","latency":100}}`

// TestRunEndpointMatchesLibrary: the served numbers must be exactly the
// library path's — the server adds transport, never arithmetic.
func TestRunEndpointMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := postJSON(t, ts.URL+"/v1/run", sorRun)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	var got RunResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}

	sess := core.NewSession()
	a := apps.MustNew("sor", app.Quick)
	cfg := machine.Config{Procs: 4, Threads: 4, Model: machine.SwitchOnMiss, Latency: 100}
	res, err := sess.Run(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := sess.Baseline(a)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != ResponseSchemaVersion {
		t.Errorf("schema = %d, want %d", got.Schema, ResponseSchemaVersion)
	}
	if got.Cycles != res.Cycles || got.Instrs != res.Instrs || got.BaselineCycles != base {
		t.Errorf("served cycles/instrs/baseline = %d/%d/%d, library = %d/%d/%d",
			got.Cycles, got.Instrs, got.BaselineCycles, res.Cycles, res.Instrs, base)
	}
	if got.Efficiency != res.Efficiency(base) || got.Speedup != res.Speedup(base) {
		t.Errorf("served efficiency/speedup diverge from library")
	}
	if got.Metrics != nil {
		t.Error("metrics returned without being requested")
	}
}

// TestRunEndpointMetricsSchema: metrics:true attaches the RunMetrics
// record with its own schema version.
func TestRunEndpointMetricsSchema(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"app":"sor","metrics":true,"config":{"procs":2,"threads":2,"model":"switch-on-miss","latency":100}}`
	status, data := postJSON(t, ts.URL+"/v1/run", body)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, data)
	}
	var got RunResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Metrics == nil {
		t.Fatal("metrics requested but absent")
	}
	if got.Metrics.Schema != 1 {
		t.Errorf("metrics schema = %d, want 1", got.Metrics.Schema)
	}
	if !bytes.Contains(data, []byte(`"schema": 1`)) {
		t.Error("response body does not carry the schema marker")
	}
}

// TestRunEndpointValidation: the decoder rejects what Config.Validate
// rejects, with a 400 and the library's message.
func TestRunEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
		status     int
		wantErr    string
	}{
		{"bad json", `{`, http.StatusBadRequest, "bad request body"},
		{"unknown app", `{"app":"nope","config":{"procs":1,"threads":1,"model":"ideal"}}`, http.StatusBadRequest, "unknown application"},
		{"unknown model", `{"app":"sor","config":{"procs":1,"threads":1,"model":"warp"}}`, http.StatusBadRequest, "unknown model"},
		{"bad threads", `{"app":"sor","config":{"procs":2,"threads":-3,"model":"ideal"}}`, http.StatusBadRequest, "Threads -3 < 1"},
		{"bad scale", `{"app":"sor","scale":"galactic","config":{"procs":1,"threads":1,"model":"ideal"}}`, http.StatusBadRequest, "unknown scale"},
		{"faults on ideal", `{"app":"sor","config":{"procs":1,"threads":1,"model":"ideal","faults":{"seed":1,"drop_rate":0.1}}}`, http.StatusBadRequest, "fault injection"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := postJSON(t, ts.URL+"/v1/run", tc.body)
			if status != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", status, tc.status, body)
			}
			var e errorResponse
			if err := json.Unmarshal(body, &e); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(e.Error, tc.wantErr) {
				t.Errorf("error %q does not mention %q", e.Error, tc.wantErr)
			}
		})
	}
}

// TestBatchEndpointPartialAligned: a batch response is job-aligned, and
// job-level validation failures name the offending index.
func TestBatchEndpointPartialAligned(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"scale":"quick","jobs":[
		{"app":"sor","config":{"procs":2,"threads":4,"model":"switch-on-use","latency":100}},
		{"app":"sieve","config":{"procs":2,"threads":4,"model":"switch-on-use","latency":100}}]}`
	status, data := postJSON(t, ts.URL+"/v1/batch", body)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, data)
	}
	var got BatchResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 2 || len(got.Errors) != 2 || got.Failed != 0 {
		t.Fatalf("response not job-aligned: %d results, %d errors, %d failed", len(got.Results), len(got.Errors), got.Failed)
	}
	if got.Results[0].App != "sor" || got.Results[1].App != "sieve" {
		t.Errorf("results out of job order: %s, %s", got.Results[0].App, got.Results[1].App)
	}

	status, data = postJSON(t, ts.URL+"/v1/batch", `{"jobs":[{"app":"sor","config":{"procs":0,"threads":-1,"model":"ideal"}}]}`)
	if status != http.StatusBadRequest || !bytes.Contains(data, []byte("job 0:")) {
		t.Errorf("bad job: status %d body %s, want 400 naming job 0", status, data)
	}
	status, data = postJSON(t, ts.URL+"/v1/batch", `{"jobs":[]}`)
	if status != http.StatusBadRequest {
		t.Errorf("empty batch: status %d body %s, want 400", status, data)
	}
}

// TestExperimentEndpointMatchesLibrary: the rendered body must embed
// exactly what the library renders for the same options.
func TestExperimentEndpointMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/experiments/figure4")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}

	var buf bytes.Buffer
	o := exp.New(&buf, exp.WithScale(app.Quick))
	e, err := exp.ByID("figure4")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(o); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(body, buf.Bytes()) {
		t.Error("served rendering diverges from the library's")
	}

	resp2, err := http.Get(ts.URL + "/v1/experiments/bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown experiment: status = %d, want 404", resp2.StatusCode)
	}
}

// TestHealthz reports ok with the gauges.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Errorf("healthz = %d %q", resp.StatusCode, h.Status)
	}
}

// TestDeadlineFreesWorkerNoLeak: a request whose deadline expires
// mid-simulation returns 504, frees its worker slot for the next
// request, and leaves no goroutine behind.
func TestDeadlineFreesWorkerNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 0})
	// Heavy configuration, 1ms budget: the run cannot finish in time.
	heavy := `{"app":"sieve","timeout_ms":1,"config":{"procs":16,"threads":16,"model":"switch-every-cycle","latency":400}}`
	status, body := postJSON(t, ts.URL+"/v1/run", heavy)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", status, body)
	}
	if !bytes.Contains(body, []byte("deadline")) {
		t.Errorf("504 body %s does not mention the deadline", body)
	}
	// The worker the canceled run held must be free again.
	status, body = postJSON(t, ts.URL+"/v1/run", sorRun)
	if status != http.StatusOK {
		t.Fatalf("follow-up run: status = %d (worker not freed?), body %s", status, body)
	}
	if got := s.Inflight(); got != 0 {
		t.Errorf("Inflight = %d after requests drained, want 0", got)
	}

	ts.Close() // drop the keep-alive conns before counting
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, n)
	}
}

// TestConcurrentLoadBoundedQueue: 64 simultaneous Quick runs against a
// small worker pool. The contract: every response is either a 200 whose
// numbers are byte-identical to the library path, or a 429 with a
// Retry-After hint; the gate never admits more than workers+queue.
func TestConcurrentLoadBoundedQueue(t *testing.T) {
	const clients = 64
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 4})

	// The library-path truth for the one configuration all clients post.
	sess := core.NewSession()
	a := apps.MustNew("sor", app.Quick)
	cfg := machine.Config{Procs: 4, Threads: 4, Model: machine.SwitchOnMiss, Latency: 100}
	res, err := sess.Run(a, cfg)
	if err != nil {
		t.Fatal(err)
	}

	client := &http.Client{}
	start := make(chan struct{})
	type reply struct {
		status     int
		retryAfter string
		body       []byte
	}
	replies := make([]reply, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			req, _ := http.NewRequest("POST", ts.URL+"/v1/run", strings.NewReader(sorRun))
			resp, err := client.Do(req)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			replies[i] = reply{resp.StatusCode, resp.Header.Get("Retry-After"), body}
		}(i)
	}
	close(start)
	wg.Wait()

	var ok, shed int
	for i, r := range replies {
		switch r.status {
		case http.StatusOK:
			ok++
			var got RunResponse
			if err := json.Unmarshal(r.body, &got); err != nil {
				t.Fatalf("client %d: %v", i, err)
			}
			if got.Cycles != res.Cycles || got.Instrs != res.Instrs {
				t.Errorf("client %d: cycles/instrs %d/%d, library %d/%d — results must be byte-identical under load",
					i, got.Cycles, got.Instrs, res.Cycles, res.Instrs)
			}
		case http.StatusTooManyRequests:
			shed++
			if r.retryAfter == "" {
				t.Errorf("client %d: 429 without Retry-After", i)
			}
		default:
			t.Errorf("client %d: unexpected status %d: %s", i, r.status, r.body)
		}
	}
	if ok == 0 {
		t.Error("no request succeeded under load")
	}
	if ok+shed != clients {
		t.Errorf("ok %d + shed %d != %d clients", ok, shed, clients)
	}
	t.Logf("load: %d ok, %d shed (cap %d)", ok, shed, 2+4)
	if g := s.Queued(); g != 0 {
		t.Errorf("Queued = %d after load drained, want 0", g)
	}
}

// TestShutdownWithoutListen is a no-op, not a panic.
func TestShutdownWithoutListen(t *testing.T) {
	if err := New(Config{}).Shutdown(nil); err != nil {
		t.Fatal(err)
	}
}

// TestSessionReuseAcrossRequests: two identical runs hit one cached
// session, so the second is a memo hit — the serving layer's whole
// point.
func TestSessionReuseAcrossRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for i := 0; i < 2; i++ {
		if status, body := postJSON(t, ts.URL+"/v1/run", sorRun); status != http.StatusOK {
			t.Fatalf("run %d: status %d body %s", i, status, body)
		}
	}
	if got := s.Sessions(); got != 1 {
		t.Errorf("Sessions = %d, want 1", got)
	}
	sess := s.sessions.Get("quick")
	// 2 simulations (run + baseline), then pure memo hits.
	if sess.SimCount() != 2 {
		t.Errorf("SimCount = %d, want 2 (second request should memo-hit)", sess.SimCount())
	}
	// The second request's run is a memo hit; its baseline resolves
	// from the (separate) baseline cache, which doesn't count.
	if sess.MemoHits() < 1 {
		t.Errorf("MemoHits = %d, want >= 1", sess.MemoHits())
	}
}
