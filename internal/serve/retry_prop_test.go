package serve

import (
	"math/rand/v2"
	"testing"
	"time"
)

// Property tests for the retry-pacing pair: randomized bases and
// attempts, seeded for reproducibility. The fixed-case tests in
// retry_test.go pin the obvious values; these pin the invariants.

// cappedExponential is the jitter-free center RetryDelay scales:
// base doubled per attempt, capped at 64x (attempt 6).
func cappedExponential(attempt int, base time.Duration) time.Duration {
	if base <= 0 {
		base = time.Second
	}
	if attempt < 0 {
		attempt = 0
	}
	if attempt > 6 {
		attempt = 6
	}
	return base << uint(attempt)
}

// TestRetryDelayPropBounds: for any base and attempt, the delay lies
// within [0.5, 1.5]x the capped exponential of that attempt.
func TestRetryDelayPropBounds(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 5000; i++ {
		base := time.Duration(rng.Int64N(int64(10 * time.Second)))
		attempt := int(rng.Int64N(40)) - 8 // negative through far past the cap
		center := cappedExponential(attempt, base)
		lo, hi := center/2, center+center/2
		if d := RetryDelay(attempt, base); d < lo || d > hi {
			t.Fatalf("RetryDelay(%d, %v) = %v, want within [%v, %v]", attempt, base, d, lo, hi)
		}
	}
}

// TestRetryDelayPropCap: far past the cap the bound stops growing —
// attempt 6 and attempt 1000 share the same envelope.
func TestRetryDelayPropCap(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 2000; i++ {
		base := time.Duration(1 + rng.Int64N(int64(5*time.Second))) // positive
		capped := cappedExponential(6, base)
		for _, attempt := range []int{6, 7, 64, 1 << 20} {
			if d := RetryDelay(attempt, base); d > capped+capped/2 {
				t.Fatalf("RetryDelay(%d, %v) = %v exceeds the 64x cap envelope %v",
					attempt, base, d, capped+capped/2)
			}
		}
	}
}

// TestRetryDelayPropDefaultBase: any non-positive base behaves exactly
// like a one-second base.
func TestRetryDelayPropDefaultBase(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 2000; i++ {
		base := -time.Duration(rng.Int64N(int64(time.Hour))) // (-1h, 0]
		attempt := int(rng.Int64N(10))
		center := cappedExponential(attempt, time.Second)
		if d := RetryDelay(attempt, base); d < center/2 || d > center+center/2 {
			t.Fatalf("RetryDelay(%d, %v) = %v, want the 1s-base envelope [%v, %v]",
				attempt, base, d, center/2, center+center/2)
		}
	}
}

// TestRetryAfterSecondsProp: for any base, the header value is within
// the rounded-up [base/2, 1.5*base] band and never below one second.
func TestRetryAfterSecondsProp(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	ceilSec := func(d time.Duration) int {
		if d < time.Second {
			d = time.Second
		}
		return int((d + time.Second - 1) / time.Second)
	}
	for i := 0; i < 5000; i++ {
		base := time.Duration(rng.Int64N(int64(30 * time.Second)))
		lo, hi := 1, ceilSec(base+base/2)
		if s := retryAfterSeconds(base); s < lo || s > hi {
			t.Fatalf("retryAfterSeconds(%v) = %d, want within [%d, %d]", base, s, lo, hi)
		}
	}
}

// TestRetryAfterMSProp: the poll hint is one RetryDelay(0) draw in
// milliseconds, so it inherits the [0.5, 1.5]x base envelope.
func TestRetryAfterMSProp(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	for i := 0; i < 2000; i++ {
		base := time.Duration(1 + rng.Int64N(int64(10*time.Second)))
		lo, hi := (base / 2).Milliseconds(), (base + base/2).Milliseconds()
		if ms := retryAfterMS(base); ms < lo || ms > hi {
			t.Fatalf("retryAfterMS(%v) = %d, want within [%d, %d]", base, ms, lo, hi)
		}
	}
}
