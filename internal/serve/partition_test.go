package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"mtsim/internal/cluster"
)

// Asymmetric partition: node1's outbound path to node2 is dead while
// node2's path to node1 stays clean. node1 therefore declares node2
// dead (its probes all drop) while node2 keeps seeing node1 alive —
// the classic split view. The job's owner (node2) keeps running it;
// node1, holding a replica and an expired lease for a "dead" holder,
// claims and re-runs it locally. Determinism makes the split harmless:
// both sides finish with byte-identical responses, and when the
// partition heals the membership view converges and the lease tables
// drain.

// startClusterNodeWith is startClusterNode with a caller-built cluster
// config (the seam for installing a chaos transport on one node).
func startClusterNodeWith(t *testing.T, addr string, ccfg cluster.Config) *clusterNode {
	t.Helper()
	s := New(Config{CheckpointEvery: 100_000})
	if _, err := s.EnableJournal(filepath.Join(t.TempDir(), "wal")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.EnableCluster(ccfg); err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.ListenAndServe(addr) }()
	n := &clusterNode{s: s, url: "http://" + addr}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	waitHTTPReady(t, n.url)
	return n
}

func TestClusterAsymmetricPartitionClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node simulation test")
	}
	// Reference bytes first, so the chaos window is not eaten by the
	// solo run's simulation time.
	_, plain := newTestServer(t, Config{})
	refStatus, ref := postJSON(t, plain.URL+"/v1/batch", asyncBatchBody)
	if refStatus != http.StatusOK {
		t.Fatalf("reference batch: status %d: %s", refStatus, ref)
	}

	addr1, addr2 := freeLoopbackAddr(t), freeLoopbackAddr(t)
	peers := []cluster.Peer{
		{ID: "node1", URL: "http://" + addr1},
		{ID: "node2", URL: "http://" + addr2},
	}
	// node1 drops everything it sends node2 for the first 8 seconds:
	// probes, forwards, state fetches. node2 runs chaos-free.
	chaos := cluster.NewChaosTransport(7, []cluster.ChaosRule{
		{Peer: "node2", To: 8 * time.Second, Partition: true},
	}, peers, nil)
	cfg1 := testClusterCfg("node1", peers)
	cfg1.Transport = chaos
	cfg1.Client = &http.Client{Timeout: time.Second, Transport: chaos}
	n1 := startClusterNodeWith(t, addr1, cfg1)
	n2 := startClusterNode(t, "node2", addr2, peers)

	// Submit node2's job to node2 directly (node1 cannot forward to it).
	key := keyOwnedBy(t, peers, "node2")
	id := JobID(key)
	status, body := postJSONKey(t, n2.url+"/v1/batch", key, asyncBatchBody)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, body)
	}

	// The split view: node1 declares node2 dead; node2 keeps node1 alive.
	deadline := time.Now().Add(6 * time.Second)
	for {
		cs1 := clusterStatusAt(t, n1.url)
		var n2Dead bool
		for _, m := range cs1.Nodes {
			if m.ID == "node2" && m.State == cluster.StateDead {
				n2Dead = true
			}
		}
		if n2Dead {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node1 never declared node2 dead: %+v", cs1.Nodes)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, m := range clusterStatusAt(t, n2.url).Nodes {
		if m.ID == "node1" && m.State != cluster.StateAlive {
			t.Fatalf("node2 sees node1 %s — the partition is not asymmetric", m.State)
		}
	}

	// node1 claims from its local replica once the lease expires.
	deadline = time.Now().Add(10 * time.Second)
	for n1.s.ClusterClaims() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("node1 never claimed the job despite holding a replica of a dead holder")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := n2.s.ClusterClaims(); got != 0 {
		t.Errorf("node2 claimed %d jobs — owners must not claim their own leases", got)
	}

	// Both sides of the split serve the canonical bytes.
	got1 := pollJobAt(t, n1.url, id)
	got2 := pollJobAt(t, n2.url, id)
	if !bytes.Equal(got1, ref) {
		t.Errorf("node1's claimed response differs from the solo run\ngot: %s\nref: %s", got1, ref)
	}
	if !bytes.Equal(got2, ref) {
		t.Errorf("node2's response differs from the solo run\ngot: %s\nref: %s", got2, ref)
	}

	// Heal: after the window the views converge and lease tables drain.
	deadline = time.Now().Add(20 * time.Second)
	for {
		cs1 := clusterStatusAt(t, n1.url)
		cs2 := clusterStatusAt(t, n2.url)
		allAlive := true
		for _, m := range append(cs1.Nodes, cs2.Nodes...) {
			if m.State != cluster.StateAlive {
				allAlive = false
			}
		}
		if allAlive && len(cs1.Leases) == 0 && len(cs2.Leases) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("views never converged after heal:\nnode1: %+v leases %+v\nnode2: %+v leases %+v",
				cs1.Nodes, cs1.Leases, cs2.Nodes, cs2.Leases)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The transport really did inject: every probe and forward to node2
	// inside the window was a drop.
	if st := chaos.Stats(); st.Drops == 0 {
		t.Error("chaos transport reports zero drops")
	}
	var csRaw struct {
		Chaos *cluster.ChaosStats `json:"chaos"`
	}
	resp, err := http.Get(n1.url + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&csRaw); err != nil {
		t.Fatal(err)
	}
	if csRaw.Chaos == nil || csRaw.Chaos.Drops == 0 {
		t.Errorf("GET /v1/cluster does not surface chaos stats: %+v", csRaw.Chaos)
	}
}

// TestJobStateRespSurvivesTransferVerbatim: the recorded response bytes
// must cross a job-state push or fetch without reformatting. This is
// what makes "a fault never changes bytes" hold when a node adopts a
// finished job from a peer instead of rendering it locally:
// encoding/json would compact (Marshal) or re-indent (SetIndent) a
// nested RawMessage, so Resp travels base64-encoded.
func TestJobStateRespSurvivesTransferVerbatim(t *testing.T) {
	pretty := []byte("{\n  \"schema\": 1,\n  \"results\": [\n    {\n      \"cycles\": 42\n    }\n  ]\n}\n")
	st := JobState{Schema: 1, ID: "b-1", Holder: "n2", Resp: pretty, Status: string(JobDone)}

	// The push path: plain Marshal, as putJobState does.
	wire, err := json.Marshal(&st)
	if err != nil {
		t.Fatal(err)
	}
	var got JobState
	if err := json.Unmarshal(wire, &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Resp, pretty) {
		t.Errorf("Resp after Marshal round trip:\n%q\nwant\n%q", got.Resp, pretty)
	}

	// The fetch path: the state GET renders through the indenting
	// encoder (encodeJSON), which re-indents any nested raw JSON.
	if err := json.Unmarshal(encodeJSON(&st), &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Resp, pretty) {
		t.Errorf("Resp after encodeJSON round trip:\n%q\nwant\n%q", got.Resp, pretty)
	}

	// Legacy journal records stored the response as an inline JSON
	// document; those must still decode (to their old compact bytes)
	// rather than fail replay.
	var legacy verbatimJSON
	if err := json.Unmarshal([]byte(`{"schema":1}`), &legacy); err != nil {
		t.Fatal(err)
	}
	if string(legacy) != `{"schema":1}` {
		t.Errorf("legacy inline decode = %q", legacy)
	}
}
