package serve

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openJournalT(t *testing.T, path string) (*Journal, []*ReplayedJob) {
	t.Helper()
	j, jobs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal(%s): %v", path, err)
	}
	return j, jobs
}

func TestJournalReplayRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, jobs := openJournalT(t, path)
	if len(jobs) != 0 {
		t.Fatalf("fresh journal replayed %d jobs", len(jobs))
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(j.AppendSubmit("b-1", "k1", "", json.RawMessage(`{"jobs":[]}`)))
	must(j.AppendCkpt("b-1", 0, 100, []byte{1, 2, 3}))
	must(j.AppendCkpt("b-1", 0, 200, []byte{4, 5, 6})) // supersedes the first
	must(j.AppendCkpt("b-1", 1, 150, []byte{7}))
	must(j.AppendSubmit("b-2", "k2", "", json.RawMessage(`{"jobs":[1]}`)))
	must(j.AppendDone("b-2", json.RawMessage(`{"ok":true}`), nil))
	must(j.Close())

	j2, jobs := openJournalT(t, path)
	defer j2.Close()
	if len(jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(jobs))
	}
	unfinished, done := jobs[0], jobs[1]
	if unfinished.ID != "b-1" || done.ID != "b-2" {
		t.Fatalf("jobs out of submit order: %s, %s", jobs[0].ID, jobs[1].ID)
	}
	if unfinished.Key != "k1" || string(unfinished.Body) != `{"jobs":[]}` {
		t.Errorf("b-1 replayed wrong: key=%q body=%s", unfinished.Key, unfinished.Body)
	}
	if unfinished.Resp != nil {
		t.Error("unfinished job came back with a response")
	}
	if c := unfinished.Ckpts[0]; c.Cycle != 200 || !bytes.Equal(c.Snap, []byte{4, 5, 6}) {
		t.Errorf("entry 0 checkpoint = %+v, want the latest (cycle 200)", c)
	}
	if c := unfinished.Ckpts[1]; c.Cycle != 150 || !bytes.Equal(c.Snap, []byte{7}) {
		t.Errorf("entry 1 checkpoint = %+v", c)
	}
	if string(done.Resp) != `{"ok":true}` {
		t.Errorf("done response = %s", done.Resp)
	}
	if done.Ckpts != nil {
		t.Error("done job kept resume checkpoints")
	}
}

func TestJournalTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _ := openJournalT(t, path)
	if err := j.AppendSubmit("b-1", "k1", "", json.RawMessage(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendCkpt("b-1", 0, 50, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A crash mid-append leaves a torn line; replay must drop it and
	// truncate back to the last whole record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`00000000 {"seq":3,"kind":"done","id":"b-`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, jobs := openJournalT(t, path)
	if len(jobs) != 1 || jobs[0].Resp != nil || jobs[0].Ckpts[0].Cycle != 50 {
		t.Fatalf("torn tail corrupted replay: %+v", jobs)
	}
	// The file is healed: the tail is gone and new appends parse.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, clean) {
		t.Errorf("journal not truncated to the last valid record: %d bytes, want %d", len(after), len(clean))
	}
	if err := j2.AppendDone("b-1", json.RawMessage(`{}`), nil); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, jobs = openJournalT(t, path)
	if len(jobs) != 1 || jobs[0].Resp == nil {
		t.Fatalf("append after heal did not replay: %+v", jobs)
	}
}

func TestJournalStopsAtCorruptRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _ := openJournalT(t, path)
	for _, id := range []string{"b-1", "b-2", "b-3"} {
		if err := j.AppendSubmit(id, id, "", json.RawMessage(`{}`)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Flip one payload byte of the middle record: it and everything
	// after it are dropped, because a log with a hole in the middle
	// cannot be trusted past the hole.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(data, []byte("\n"))
	lines[1][len(lines[1])-2] ^= 0xff
	if err := os.WriteFile(path, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	j2, jobs := openJournalT(t, path)
	defer j2.Close()
	if len(jobs) != 1 || jobs[0].ID != "b-1" {
		t.Fatalf("replay past a corrupt record: got %d jobs", len(jobs))
	}
}

// TestJournalOwnershipReplay covers the cluster records: owner submits
// replay owned, replica submits do not, a lease promotes, a release
// demotes, and the latest ownership record wins.
func TestJournalOwnershipReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _ := openJournalT(t, path)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	// b-own: plain owner submit (the pre-cluster shape).
	must(j.AppendSubmit("b-own", "k1", "", json.RawMessage(`{}`)))
	// b-rep: replica held for a peer, never promoted.
	must(j.AppendReplicaSubmit("b-rep", "k2", "", json.RawMessage(`{}`)))
	must(j.AppendCkpt("b-rep", 0, 500, []byte{1}))
	// b-claim: replica promoted by a failover claim.
	must(j.AppendReplicaSubmit("b-claim", "k3", "", json.RawMessage(`{}`)))
	must(j.AppendLease("b-claim", "node1", 3*time.Second))
	// b-gone: owned, then handed off during a drain.
	must(j.AppendSubmit("b-gone", "k4", "", json.RawMessage(`{}`)))
	must(j.AppendLease("b-gone", "node1", 3*time.Second))
	must(j.AppendRelease("b-gone", "node1"))
	must(j.Close())

	j2, jobs := openJournalT(t, path)
	defer j2.Close()
	owned := map[string]bool{}
	for _, rj := range jobs {
		owned[rj.ID] = rj.Owned
	}
	want := map[string]bool{"b-own": true, "b-rep": false, "b-claim": true, "b-gone": false}
	for id, w := range want {
		got, ok := owned[id]
		if !ok {
			t.Errorf("job %s missing from replay", id)
			continue
		}
		if got != w {
			t.Errorf("job %s: Owned = %v, want %v", id, got, w)
		}
	}
	// The replica's checkpoint survives for state transfer.
	for _, rj := range jobs {
		if rj.ID == "b-rep" && rj.Ckpts[0].Cycle != 500 {
			t.Errorf("replica checkpoint lost: %+v", rj.Ckpts)
		}
	}
}

func TestJobIDStable(t *testing.T) {
	a, b := JobID("paper-table-3"), JobID("paper-table-3")
	if a != b {
		t.Errorf("JobID not stable: %s vs %s", a, b)
	}
	if a == JobID("paper-table-4") {
		t.Error("distinct keys collided")
	}
	if len(a) != 18 || a[:2] != "b-" {
		t.Errorf("unexpected id shape: %s", a)
	}
}
