package serve

import (
	"container/list"
	"hash/fnv"
	"sync"

	"mtsim/internal/core"
)

// sessionCache is a sharded, LRU-bounded cache of core.Sessions keyed
// by the request parameters that fork the memo space (problem scale and
// metrics collection). Sharing sessions across requests is what makes
// the server fast — a popular configuration simulates once and every
// later request is a memo hit — but an unbounded session accumulates
// every distinct (app, config) result forever, so memory under
// sustained varied load would only grow. Two mechanisms bound it:
//
//   - each shard holds at most perShard sessions and evicts the least
//     recently used (the evicted session is simply dropped; in-flight
//     requests holding it finish normally and it is then collected);
//   - a session that has executed more than maxSims simulations is
//     retired and replaced by a fresh one on its next use, so even a
//     single hot key's memo cannot grow without bound.
type sessionCache struct {
	shards   []cacheShard
	perShard int
	maxSims  int64
	factory  func(key string) *core.Session
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
}

type cacheEntry struct {
	key  string
	sess *core.Session
}

// newSessionCache builds a cache of at most maxSessions sessions spread
// over nShards shards; factory builds a configured empty session for a
// key (sessions are configured once here, never mutated by requests, so
// concurrent requests sharing one need no coordination).
func newSessionCache(nShards, maxSessions int, maxSims int64, factory func(key string) *core.Session) *sessionCache {
	if nShards < 1 {
		nShards = 1
	}
	perShard := (maxSessions + nShards - 1) / nShards
	if perShard < 1 {
		perShard = 1
	}
	c := &sessionCache{
		shards:   make([]cacheShard, nShards),
		perShard: perShard,
		maxSims:  maxSims,
		factory:  factory,
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*list.Element)
		c.shards[i].lru = list.New()
	}
	return c
}

// Get returns the session for key, creating (or retiring and
// recreating) it as needed and marking it most recently used.
func (c *sessionCache) Get(key string) *core.Session {
	sh := &c.shards[c.shardOf(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		if c.maxSims > 0 && e.sess.SimCount() > c.maxSims {
			// Retire an oversized memo; the next request starts fresh.
			e.sess = c.factory(key)
		}
		sh.lru.MoveToFront(el)
		return e.sess
	}
	e := &cacheEntry{key: key, sess: c.factory(key)}
	sh.entries[key] = sh.lru.PushFront(e)
	for sh.lru.Len() > c.perShard {
		oldest := sh.lru.Back()
		sh.lru.Remove(oldest)
		delete(sh.entries, oldest.Value.(*cacheEntry).key)
	}
	return e.sess
}

// Len reports the total number of cached sessions across shards.
func (c *sessionCache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

func (c *sessionCache) shardOf(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(c.shards)))
}
