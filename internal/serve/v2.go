package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"mtsim/internal/cluster"
	"mtsim/internal/machine"
)

// The /v2 surface: the API redesigned around three invariants the /v1
// endpoints grew without —
//
//   - one error envelope everywhere:
//     {"error":{"code","message","retry_after_ms"}};
//   - tenant and quota fields in every response;
//   - one job resource under /v2/jobs: POST runs a simulation (a sync
//     run or batch completes inline as a degenerate, already-done job;
//     an Idempotency-Key on a journaling server makes it a durable
//     async job), GET /v2/jobs/{id} reads it back, and
//     GET /v2/jobs/{id}/events streams its progress.
//
// /v1 stays as a thin compatibility shim: its handlers decode exactly
// as before and delegate to the same execRun/execBatch core the v2
// handlers use, rendering the legacy body shapes byte-identically.
// Completed simulation results are the same bytes on both surfaces —
// the v2 job resource embeds the v1 result document verbatim as its
// `result` field.

// V2SchemaVersion identifies the /v2 JSON layout.
const V2SchemaVersion = 2

// v2 error codes — the machine-readable half of the error envelope.
const (
	v2CodeBadRequest    = "bad_request"
	v2CodeUnauthorized  = "unauthorized"
	v2CodeNotFound      = "not_found"
	v2CodeQuotaExceeded = "quota_exceeded"
	v2CodeQueueFull     = "queue_full"
	v2CodeDoomed        = "deadline_unreachable"
	v2CodeTimeout       = "timeout"
	v2CodeUnavailable   = "unavailable"
	v2CodeMaxCycles     = "max_cycles"
	v2CodeInternal      = "internal"
)

// V2Error is the uniform /v2 failure body.
type V2Error struct {
	Error V2ErrorBody `json:"error"`
}

// V2ErrorBody carries the code, a human-readable message, and (on
// retryable rejections) a jittered come-back hint.
type V2ErrorBody struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// V2Quota reports the caller's admission quota state (absent when the
// tenant is unlimited).
type V2Quota struct {
	RatePerS  float64 `json:"rate_per_s"`
	Burst     int     `json:"burst"`
	Remaining int64   `json:"remaining"`
}

// V2Job is the job resource: every /v2/jobs response body. A sync run
// is a degenerate job — no id, status "done", result inline. Result
// embeds the v1 result document (RunResponse or BatchResponse) verbatim.
type V2Job struct {
	Schema       int             `json:"schema"`
	JobID        string          `json:"job_id,omitempty"`
	Tenant       string          `json:"tenant"`
	Quota        *V2Quota        `json:"quota,omitempty"`
	Status       string          `json:"status"`
	Checkpoint   int64           `json:"checkpoint,omitempty"`
	Progress     int64           `json:"progress,omitempty"`
	RetryAfterMS int64           `json:"retry_after_ms,omitempty"`
	Result       json.RawMessage `json:"result,omitempty"`
}

// V2JobRequest is the POST /v2/jobs body: exactly one of Run or Batch.
// An Idempotency-Key (header wins over the field) on a journaling
// server makes a Batch durable and async.
type V2JobRequest struct {
	Run            *RunRequest   `json:"run,omitempty"`
	Batch          *BatchRequest `json:"batch,omitempty"`
	IdempotencyKey string        `json:"idempotency_key,omitempty"`
}

// marshalCompact renders v on one line (SSE data and nothing else; the
// response bodies keep encodeJSON's indented layout).
func marshalCompact(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return bytes.TrimRight(buf.Bytes(), "\n"), nil
}

// writeV2Error emits the uniform envelope. 429 and 503 also carry the
// standard Retry-After header mirroring retry_after_ms.
func (s *Server) writeV2Error(w http.ResponseWriter, status int, code, msg string) {
	s.writeV2ErrorRetry(w, status, code, msg, 0)
}

func (s *Server) writeV2ErrorRetry(w http.ResponseWriter, status int, code, msg string, retryMS int64) {
	if retryMS == 0 && (status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable) {
		retryMS = retryAfterMS(s.cfg.RetryAfter)
	}
	if retryMS > 0 {
		secs := int(retryMS / 1000)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, status, &V2Error{Error: V2ErrorBody{Code: code, Message: msg, RetryAfterMS: retryMS}})
}

// v2HTTPError maps an execution error onto the envelope, mirroring the
// v1 status mapping (httpError) with codes attached.
func (s *Server) v2HTTPError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		s.writeV2Error(w, http.StatusTooManyRequests, v2CodeQueueFull, err.Error())
	case errors.Is(err, ErrDoomed):
		// Deadline-aware shed: a 429 the client can retry with a longer
		// deadline (or elsewhere), instead of a 504 after the wait.
		s.writeV2Error(w, http.StatusTooManyRequests, v2CodeDoomed, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		s.writeV2Error(w, http.StatusGatewayTimeout, v2CodeTimeout, err.Error())
	case errors.Is(err, context.Canceled):
		s.writeV2Error(w, http.StatusServiceUnavailable, v2CodeUnavailable, err.Error())
	case errors.Is(err, machine.ErrMaxCycles):
		s.writeV2Error(w, http.StatusUnprocessableEntity, v2CodeMaxCycles, err.Error())
	default:
		s.writeV2Error(w, http.StatusInternalServerError, v2CodeInternal, err.Error())
	}
}

// v2Quota snapshots a tenant's quota for response bodies (nil when
// unlimited).
func v2Quota(t *tenant) *V2Quota {
	if t == nil || t.bucket == nil {
		return nil
	}
	return &V2Quota{
		RatePerS:  t.bucket.rate,
		Burst:     int(t.bucket.burst),
		Remaining: t.bucket.remaining(),
	}
}

// admitTenant resolves the request's tenant and charges its admission
// quota, writing the rejection (v1 or v2 shaped) itself when the
// request may not proceed. Forwarded requests are not re-charged — the
// node that fronted the request already was.
func (s *Server) admitTenant(w http.ResponseWriter, r *http.Request, v2 bool) (*tenant, bool) {
	t, ok := s.tenants.resolve(r)
	if !ok {
		msg := "unknown API key"
		if v2 {
			s.writeV2Error(w, http.StatusUnauthorized, v2CodeUnauthorized, msg)
		} else {
			writeJSON(w, http.StatusUnauthorized, errorResponse{Error: msg})
		}
		return nil, false
	}
	if r.Header.Get(forwardHeader) != "" {
		return t, true
	}
	if ok, retry := t.bucket.take(); !ok {
		msg := fmt.Sprintf("tenant %q admission quota exceeded; retry later", t.name)
		if v2 {
			s.writeV2ErrorRetry(w, http.StatusTooManyRequests, v2CodeQuotaExceeded, msg, retry.Milliseconds())
		} else {
			w.Header().Set("Retry-After", strconv.Itoa(int(retry.Seconds())+1))
			writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: msg})
		}
		return nil, false
	}
	return t, true
}

// handleV2Jobs is POST /v2/jobs: one entry point for sync runs, sync
// batches, and durable async batches.
func (s *Server) handleV2Jobs(w http.ResponseWriter, r *http.Request) {
	t, ok := s.admitTenant(w, r, true)
	if !ok {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		s.writeV2Error(w, http.StatusBadRequest, v2CodeBadRequest, "bad request body: "+err.Error())
		return
	}
	var req V2JobRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.writeV2Error(w, http.StatusBadRequest, v2CodeBadRequest, "bad request body: "+err.Error())
		return
	}
	if (req.Run == nil) == (req.Batch == nil) {
		s.writeV2Error(w, http.StatusBadRequest, v2CodeBadRequest, "exactly one of run or batch must be set")
		return
	}

	// Sync run: the degenerate job. Validates and executes exactly like
	// the v1 path; the v1 result document lands in `result` verbatim.
	if req.Run != nil {
		scale, a, cfg, verr := s.validateRun(req.Run)
		if verr != nil {
			s.writeV2Error(w, http.StatusBadRequest, v2CodeBadRequest, verr.Error())
			return
		}
		if s.forwardIfRemote(w, r, cluster.SessionRouteKey(sessionKey(scale, req.Run.Metrics)), body) {
			return
		}
		ctx, cancel := s.requestContext(r, req.Run.TimeoutMS)
		defer cancel()
		resp, err := s.execRun(ctx, t, scale, a, cfg, req.Run.Metrics)
		if err != nil {
			s.v2HTTPError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, &V2Job{
			Schema: V2SchemaVersion, Tenant: t.name, Quota: v2Quota(t),
			Status: JobDone, Result: encodeJSON(resp),
		})
		return
	}

	key := r.Header.Get("Idempotency-Key")
	if key == "" {
		key = req.IdempotencyKey
	}
	if key == "" {
		key = req.Batch.IdempotencyKey
	}
	scale, jobs, err := s.parseBatch(req.Batch)
	if err != nil {
		s.writeV2Error(w, http.StatusBadRequest, v2CodeBadRequest, err.Error())
		return
	}
	if key != "" && s.jm != nil {
		if s.forwardIfRemote(w, r, cluster.JobRouteKey(JobID(key)), body) {
			return
		}
		// The journal stores the inner BatchRequest (the same document
		// the v1 path journals), so recovery and replication are
		// surface-agnostic.
		job, err := s.jm.submit(key, t.name, encodeBatchBody(req.Batch))
		if err != nil {
			s.v2HTTPError(w, err)
			return
		}
		status, ckpt, _ := job.state()
		writeJSON(w, http.StatusAccepted, &V2Job{
			Schema: V2SchemaVersion, JobID: job.id, Tenant: job.tenant, Quota: v2Quota(t),
			Status: status, Checkpoint: ckpt, RetryAfterMS: retryAfterMS(s.cfg.RetryAfter),
		})
		return
	}
	if s.forwardIfRemote(w, r, cluster.SessionRouteKey(sessionKey(scale, req.Batch.Metrics)), body) {
		return
	}
	ctx, cancel := s.requestContext(r, req.Batch.TimeoutMS)
	defer cancel()
	resp, err := s.execBatch(ctx, t, scale, jobs, req.Batch.Metrics)
	if err != nil {
		s.v2HTTPError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, &V2Job{
		Schema: V2SchemaVersion, Tenant: t.name, Quota: v2Quota(t),
		Status: JobDone, Result: encodeJSON(resp),
	})
}

// encodeBatchBody re-encodes the inner batch document for the journal.
func encodeBatchBody(b *BatchRequest) []byte {
	body, _ := json.Marshal(b)
	return body
}

// handleV2Job is GET /v2/jobs/{id}: the job resource. Unlike v1's 202
// polling contract, the resource always answers 200 — status tells the
// client whether result is present yet.
func (s *Server) handleV2Job(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenants.resolve(r)
	if !ok {
		s.writeV2Error(w, http.StatusUnauthorized, v2CodeUnauthorized, "unknown API key")
		return
	}
	if s.jm == nil {
		s.writeV2Error(w, http.StatusNotFound, v2CodeNotFound, "async jobs disabled: server runs without a journal")
		return
	}
	if !s.jm.owns(r.PathValue("id")) && s.forwardIfRemote(w, r, cluster.JobRouteKey(r.PathValue("id")), nil) {
		return
	}
	job := s.jm.get(r.PathValue("id"))
	if job == nil {
		s.writeV2Error(w, http.StatusNotFound, v2CodeNotFound, "unknown job id")
		return
	}
	job.mu.Lock()
	out := &V2Job{
		Schema: V2SchemaVersion, JobID: job.id, Tenant: job.tenant, Quota: v2Quota(t),
		Status: job.status, Checkpoint: job.ckptN, Progress: job.progressLocked(),
	}
	if job.status == JobDone {
		out.Result = job.resp
	} else {
		out.RetryAfterMS = retryAfterMS(s.cfg.RetryAfter)
	}
	job.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// handleV2JobEvents is GET /v2/jobs/{id}/events (SSE).
func (s *Server) handleV2JobEvents(w http.ResponseWriter, r *http.Request) {
	s.handleJobEvents(w, r, true)
}

// v2Healthz wraps the v1 health body with the schema marker and the
// per-tenant usage table (local plus, in cluster mode, gossiped).
type v2Healthz struct {
	Schema int `json:"schema"`
	*healthzResponse
}

// handleV2Healthz is GET /v2/healthz.
func (s *Server) handleV2Healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, &v2Healthz{Schema: V2SchemaVersion, healthzResponse: s.healthz()})
}
