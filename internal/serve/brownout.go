package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// Brownout: graceful degradation under sustained overload. The gate
// already sheds *excess* load (429 past the cap, ErrDoomed for
// requests that cannot make their deadline); brownout reduces the cost
// of the load the server keeps. While active, the server stops paying
// for optional work — per-request metrics collection is dropped and
// new SSE subscriptions are refused with a come-back hint — so worker
// throughput goes to simulation results, the thing callers are
// actually waiting on. Shedding garnish before refusing work is the
// serving-plane version of the paper's thesis: when stalls threaten,
// spend the capacity on useful instructions.
//
// The controller is hysteretic in both level and time: brownout enters
// only after queue saturation has held at or above the high-water mark
// for enterAfter, and exits only after saturation has held at or below
// the low-water mark for exitAfter. A load blip in either direction
// resets the pending transition, so the mode cannot flap at a
// threshold crossing.

// brownout is the hysteretic overload-mode controller. fold() is
// driven from request paths and health checks; there is no background
// goroutine, so an idle server simply stays in whatever mode it last
// observed (harmless: with no requests there is nothing to shed).
type brownout struct {
	highWater  float64
	lowWater   float64
	enterAfter time.Duration
	exitAfter  time.Duration
	now        func() time.Time // injectable clock for tests

	active atomic.Bool

	mu        sync.Mutex
	highSince time.Time // zero = saturation currently below high water
	lowSince  time.Time // zero = saturation currently above low water
	entered   int64     // completed enter transitions
	exited    int64     // completed exit transitions

	shedMetrics atomic.Int64 // run/batch executions that skipped metrics
	shedSSE     atomic.Int64 // SSE subscriptions refused
}

func newBrownout(high, low float64, enterAfter, exitAfter time.Duration) *brownout {
	return &brownout{
		highWater: high, lowWater: low,
		enterAfter: enterAfter, exitAfter: exitAfter,
		now: time.Now,
	}
}

// fold feeds one saturation observation into the controller and
// reports whether brownout is active after it.
func (b *brownout) fold(sat float64) bool {
	now := b.now()
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.active.Load() {
		if sat >= b.highWater {
			if b.highSince.IsZero() {
				b.highSince = now
			} else if now.Sub(b.highSince) >= b.enterAfter {
				b.active.Store(true)
				b.entered++
				b.highSince, b.lowSince = time.Time{}, time.Time{}
			}
		} else {
			b.highSince = time.Time{}
		}
		return b.active.Load()
	}
	if sat <= b.lowWater {
		if b.lowSince.IsZero() {
			b.lowSince = now
		} else if now.Sub(b.lowSince) >= b.exitAfter {
			b.active.Store(false)
			b.exited++
			b.highSince, b.lowSince = time.Time{}, time.Time{}
		}
	} else {
		b.lowSince = time.Time{}
	}
	return b.active.Load()
}

// brownoutStatus is the health-surface view of the controller.
type brownoutStatus struct {
	Active      bool  `json:"active"`
	Entered     int64 `json:"entered"`
	Exited      int64 `json:"exited"`
	ShedMetrics int64 `json:"shed_metrics"`
	ShedSSE     int64 `json:"shed_sse"`
}

func (b *brownout) status() *brownoutStatus {
	b.mu.Lock()
	entered, exited := b.entered, b.exited
	b.mu.Unlock()
	return &brownoutStatus{
		Active:      b.active.Load(),
		Entered:     entered,
		Exited:      exited,
		ShedMetrics: b.shedMetrics.Load(),
		ShedSSE:     b.shedSSE.Load(),
	}
}

// brownedOut folds the current gate saturation and reports the mode.
// Nil-safe: a server without a controller (disabled) never browns out.
func (s *Server) brownedOut() bool {
	if s.bo == nil {
		return false
	}
	return s.bo.fold(s.gate.saturation())
}

// shedMetricsNow decides whether this execution should skip metrics
// collection, counting the sheds it orders.
func (s *Server) shedMetricsNow(wantMetrics bool) bool {
	if !wantMetrics || !s.brownedOut() {
		return false
	}
	s.bo.shedMetrics.Add(1)
	return true
}
