package serve

import (
	"context"
	"errors"
	"net/http"
	"sort"
	"sync"
	"time"

	"mtsim/internal/cluster"
)

// Hedged forwarding applies the paper's latency-hiding move to the
// fleet's own reads: instead of stalling on one slow peer, issue the
// same idempotent request to the next ring successor after a
// latency-percentile-derived delay and take the first success. Hedging
// is restricted to forwarded GETs (job status and the like — reruns
// are free because every node serving the job answers from the same
// deterministic state), paced by a token budget so hedges can never
// exceed a fixed fraction of forward traffic, and doubles as a gray-
// failure detector: a primary that keeps losing to its hedge is
// reported to its circuit breaker as failing, which eventually routes
// reads away from it entirely.

// latencyTracker keeps a ring of recent forward latencies and derives
// the hedge delay from their p95, clamped to [min, max].
type latencyTracker struct {
	min, max time.Duration

	mu  sync.Mutex
	buf [128]time.Duration
	n   int // samples stored (caps at len(buf))
	idx int // next write position
}

func newLatencyTracker(min, max time.Duration) *latencyTracker {
	return &latencyTracker{min: min, max: max}
}

func (lt *latencyTracker) observe(d time.Duration) {
	lt.mu.Lock()
	lt.buf[lt.idx] = d
	lt.idx = (lt.idx + 1) % len(lt.buf)
	if lt.n < len(lt.buf) {
		lt.n++
	}
	lt.mu.Unlock()
}

// percentile returns the p-quantile (0 < p <= 1) of the stored window,
// or 0 with no samples.
func (lt *latencyTracker) percentile(p float64) time.Duration {
	lt.mu.Lock()
	samples := make([]time.Duration, lt.n)
	copy(samples, lt.buf[:lt.n])
	lt.mu.Unlock()
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	i := int(p*float64(len(samples))) - 1
	if i < 0 {
		i = 0
	}
	return samples[i]
}

// hedgeDelay is how long the primary gets before a hedge fires.
func (lt *latencyTracker) hedgeDelay() time.Duration {
	d := lt.percentile(0.95)
	if d < lt.min {
		d = lt.min
	}
	if d > lt.max {
		d = lt.max
	}
	return d
}

// hedgeBudget is a token bucket that caps hedges at a fixed fraction
// of forward traffic: every hedge-eligible request earns `fraction`
// tokens, every fired hedge spends one, and the balance is capped so
// an idle period cannot bank an unbounded burst.
type hedgeBudget struct {
	mu       sync.Mutex
	tokens   float64
	burst    float64
	fraction float64
}

func newHedgeBudget(fraction float64) *hedgeBudget {
	return &hedgeBudget{fraction: fraction, burst: 8, tokens: 1}
}

func (hb *hedgeBudget) earn() {
	hb.mu.Lock()
	if hb.tokens += hb.fraction; hb.tokens > hb.burst {
		hb.tokens = hb.burst
	}
	hb.mu.Unlock()
}

func (hb *hedgeBudget) spend() bool {
	hb.mu.Lock()
	defer hb.mu.Unlock()
	if hb.tokens < 1 {
		return false
	}
	hb.tokens--
	return true
}

var errNoForwardPeers = errors.New("serve: no reachable peer for forwarded request")

// hedgedForward proxies an idempotent read to cands in ring order with
// hedging: the primary goes out immediately, and if it has not
// answered within the tracker's hedge delay (and the budget allows), a
// hedge goes to the next candidate; the first acceptable response is
// relayed and the loser is canceled. Transport failures fail over to
// the next candidate immediately — that path needs no budget.
func (s *Server) hedgedForward(w http.ResponseWriter, r *http.Request, cands []cluster.Peer, body []byte) {
	node := s.cluster.node
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()

	type outcome struct {
		peer  cluster.Peer
		hedge bool
		res   *forwardResult
		err   error
	}
	// Buffered so a canceled loser's goroutine can always deliver and
	// exit, even after this handler has returned.
	results := make(chan outcome, len(cands))
	next := 0
	launch := func(hedge bool) bool {
		for next < len(cands) {
			p := cands[next]
			next++
			if b := node.Breaker(p.ID); b != nil && !b.Allow() {
				continue
			}
			go func() {
				start := time.Now()
				res, err := s.forwardOnce(ctx, r, p, body)
				if err == nil {
					s.cluster.lat.observe(time.Since(start))
				}
				results <- outcome{peer: p, hedge: hedge, res: res, err: err}
			}()
			return true
		}
		return false
	}

	s.cluster.budget.earn()
	if !launch(false) {
		s.httpError(w, errNoForwardPeers, http.StatusServiceUnavailable)
		return
	}
	primary := cands[next-1].ID

	var timerC <-chan time.Time
	if next < len(cands) {
		t := time.NewTimer(s.cluster.lat.hedgeDelay())
		defer t.Stop()
		timerC = t.C
	}

	pending := 1
	var fallback *outcome // a hedge's non-2xx response, served only as a last resort
	for pending > 0 {
		select {
		case <-r.Context().Done():
			s.httpError(w, r.Context().Err(), http.StatusServiceUnavailable)
			return
		case <-timerC:
			timerC = nil
			if s.cluster.budget.spend() && launch(true) {
				s.cluster.hedges.Add(1)
			} else {
				continue
			}
			pending++
		case o := <-results:
			pending--
			node.ReportPeer(o.peer.ID, o.err == nil)
			switch {
			case o.err == nil && (!o.hedge || o.res.resp.StatusCode/100 == 2):
				if o.hedge {
					s.cluster.hedgeWins.Add(1)
					// The primary lost to its hedge: slowness is failure
					// evidence too, and a peer that keeps losing trips its
					// breaker even though every reply eventually succeeds.
					node.ReportPeer(primary, false)
				}
				cancel() // release the loser before relaying
				s.relayForwardResult(w, o.res)
				s.cluster.forwards.Add(1)
				return
			case o.err == nil:
				// Hedge answered with a non-2xx (e.g. a successor that holds
				// no replica answering 404): keep waiting for the primary.
				if fallback == nil {
					fallback = &o
				}
			default:
				// Transport failure: fail over to the next candidate
				// immediately (no budget needed; the peer is not slow, it
				// is unreachable).
				if launch(o.hedge) {
					pending++
					if !o.hedge {
						primary = cands[next-1].ID
					}
				}
			}
		}
	}
	if fallback != nil {
		s.relayForwardResult(w, fallback.res)
		s.cluster.forwards.Add(1)
		return
	}
	s.httpError(w, errNoForwardPeers, http.StatusServiceUnavailable)
}
