package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
)

// TestGateAdmissionBound: with one worker and a queue of one, the third
// concurrent caller must be rejected immediately, and releasing the
// running slot must let the queued caller through.
func TestGateAdmissionBound(t *testing.T) {
	g := newGate(1, 1)
	release1, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Inflight(); got != 1 {
		t.Errorf("Inflight = %d, want 1", got)
	}

	queued := make(chan func(), 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		release2, err := g.Acquire(context.Background())
		if err != nil {
			t.Errorf("queued Acquire failed: %v", err)
			return
		}
		queued <- release2
	}()
	for g.Queued() != 1 { // wait until the second caller is parked
		runtime.Gosched()
	}

	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third Acquire err = %v, want ErrQueueFull", err)
	}

	release1()
	wg.Wait()
	release2 := <-queued
	if got := g.Inflight(); got != 1 {
		t.Errorf("Inflight after handoff = %d, want 1", got)
	}
	release2()
	if g.Inflight() != 0 || g.Queued() != 0 {
		t.Errorf("gauges not zero after release: inflight %d queued %d", g.Inflight(), g.Queued())
	}
	// The rejected caller's slot was returned: the gate re-admits.
	r, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire after rejection: %v", err)
	}
	r()
}

// TestGateCancelWhileQueued: a caller abandoning the queue (canceled
// context) must give its admission slot back.
func TestGateCancelWhileQueued(t *testing.T) {
	g := newGate(1, 4)
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Acquire err = %v, want context.Canceled", err)
	}
	if got := g.Queued(); got != 0 {
		t.Errorf("Queued = %d after abandoned wait, want 0", got)
	}
	release()
}
