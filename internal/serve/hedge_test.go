package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"mtsim/internal/cluster"
)

func TestLatencyTrackerPercentile(t *testing.T) {
	lt := newLatencyTracker(10*time.Millisecond, 2*time.Second)
	if got := lt.percentile(0.95); got != 0 {
		t.Fatalf("empty tracker p95 = %v, want 0", got)
	}
	for i := 1; i <= 100; i++ {
		lt.observe(time.Duration(i) * time.Millisecond)
	}
	if got := lt.percentile(0.95); got != 95*time.Millisecond {
		t.Fatalf("p95 of 1..100ms = %v, want 95ms", got)
	}
	if got := lt.percentile(0.5); got != 50*time.Millisecond {
		t.Fatalf("p50 of 1..100ms = %v, want 50ms", got)
	}
}

func TestLatencyTrackerWindowSlides(t *testing.T) {
	lt := newLatencyTracker(0, time.Hour)
	// Fill the ring with slow samples, then overwrite with fast ones:
	// the old regime must age out entirely.
	for i := 0; i < 128; i++ {
		lt.observe(time.Second)
	}
	for i := 0; i < 128; i++ {
		lt.observe(time.Millisecond)
	}
	if got := lt.percentile(0.95); got != time.Millisecond {
		t.Fatalf("p95 after window slid = %v, want 1ms", got)
	}
}

func TestLatencyTrackerHedgeDelayClamped(t *testing.T) {
	lt := newLatencyTracker(10*time.Millisecond, 100*time.Millisecond)
	if got := lt.hedgeDelay(); got != 10*time.Millisecond {
		t.Fatalf("no-sample hedge delay = %v, want the 10ms floor", got)
	}
	for i := 0; i < 128; i++ {
		lt.observe(10 * time.Second)
	}
	if got := lt.hedgeDelay(); got != 100*time.Millisecond {
		t.Fatalf("slow-regime hedge delay = %v, want the 100ms ceiling", got)
	}
}

func TestHedgeBudgetBoundsFraction(t *testing.T) {
	hb := newHedgeBudget(0.1)
	spent := 0
	for i := 0; i < 1000; i++ {
		hb.earn()
		if hb.spend() {
			spent++
		}
	}
	// 0.1 earned per request, plus the initial token and up to a burst
	// of banked credit: ~10% of traffic, never wildly more.
	if spent < 90 || spent > 110 {
		t.Fatalf("spent %d hedges over 1000 requests at fraction 0.1", spent)
	}
}

func TestHedgeBudgetBurstCap(t *testing.T) {
	hb := newHedgeBudget(1)
	for i := 0; i < 1000; i++ {
		hb.earn() // a long idle-earn period banks at most `burst` tokens
	}
	spent := 0
	for hb.spend() {
		spent++
	}
	if spent != 8 {
		t.Fatalf("burst allowed %d back-to-back hedges, want 8", spent)
	}
}

// hedgeTestServer builds an unstarted cluster runtime around a set of
// fake peers, so hedgedForward can be driven directly.
func hedgeTestServer(t *testing.T, peers []cluster.Peer) *Server {
	t.Helper()
	all := append([]cluster.Peer{{ID: "self", URL: "http://127.0.0.1:1"}}, peers...)
	node, err := cluster.New(cluster.Config{
		Self: "self", Peers: all,
		BreakerThreshold: 1, BreakerCooldown: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{HedgeDelayMin: 20 * time.Millisecond, HedgeDelayMax: time.Second})
	s.cluster = &clusterRuntime{
		node:   node,
		fwd:    &http.Client{},
		xfer:   &http.Client{Timeout: 15 * time.Second},
		lat:    newLatencyTracker(s.cfg.HedgeDelayMin, s.cfg.HedgeDelayMax),
		budget: newHedgeBudget(0.1),
	}
	return s
}

func TestHedgedForwardSlowPrimary(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(400 * time.Millisecond)
		io.WriteString(w, `{"from":"slow"}`)
	}))
	defer slow.Close()
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"from":"fast"}`)
	}))
	defer fast.Close()

	cands := []cluster.Peer{{ID: "p1", URL: slow.URL}, {ID: "p2", URL: fast.URL}}
	s := hedgeTestServer(t, cands)

	req := httptest.NewRequest(http.MethodGet, "/v1/batch/jobs/j1", nil)
	rec := httptest.NewRecorder()
	start := time.Now()
	s.hedgedForward(rec, req, cands, nil)
	elapsed := time.Since(start)

	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Body.String(); got != `{"from":"fast"}` {
		t.Fatalf("body %q, want the hedge's reply", got)
	}
	// The hedge fires at the 20ms floor; winning means not waiting out
	// the primary's full 400ms.
	if elapsed >= 400*time.Millisecond {
		t.Errorf("hedged read took %v — it waited for the slow primary", elapsed)
	}
	if got := s.cluster.hedgeWins.Load(); got != 1 {
		t.Errorf("hedgeWins = %d, want 1", got)
	}
	// Losing to its hedge is failure evidence: with threshold 1 the
	// primary's breaker must now be open.
	if st := s.cluster.node.Breaker("p1").State(); st != cluster.BreakerOpen {
		t.Errorf("slow primary's breaker = %q, want open after losing to a hedge", st)
	}
	if st := s.cluster.node.Breaker("p2").State(); st != cluster.BreakerClosed {
		t.Errorf("hedge winner's breaker = %q, want closed", st)
	}
}

func TestHedgedForwardFailoverOnTransportError(t *testing.T) {
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"from":"fast"}`)
	}))
	defer fast.Close()

	// p1's port is reserved but nothing listens: instant transport error.
	dead := "http://" + freeLoopbackAddr(t)
	cands := []cluster.Peer{{ID: "p1", URL: dead}, {ID: "p2", URL: fast.URL}}
	s := hedgeTestServer(t, cands)
	// Drain the budget: failover must not need hedge tokens.
	for s.cluster.budget.spend() {
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/batch/jobs/j1", nil)
	rec := httptest.NewRecorder()
	s.hedgedForward(rec, req, cands, nil)

	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Body.String(); got != `{"from":"fast"}` {
		t.Fatalf("body %q, want the failover target's reply", got)
	}
	if got := s.cluster.hedges.Load(); got != 0 {
		t.Errorf("hedges = %d for a transport failover, want 0", got)
	}
	if st := s.cluster.node.Breaker("p1").State(); st != cluster.BreakerOpen {
		t.Errorf("unreachable peer's breaker = %q, want open", st)
	}
}

func TestHedgedForwardAllPeersDown(t *testing.T) {
	dead1 := "http://" + freeLoopbackAddr(t)
	dead2 := "http://" + freeLoopbackAddr(t)
	cands := []cluster.Peer{{ID: "p1", URL: dead1}, {ID: "p2", URL: dead2}}
	s := hedgeTestServer(t, cands)

	req := httptest.NewRequest(http.MethodGet, "/v1/batch/jobs/j1", nil)
	rec := httptest.NewRecorder()
	s.hedgedForward(rec, req, cands, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d with every peer down, want 503", rec.Code)
	}
}

func TestHedgedForwardNon2xxHedgeIsFallbackOnly(t *testing.T) {
	// Primary is slow but correct; the hedge answers 404 (a successor
	// with no replica). The 404 must not preempt the primary's 200.
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(150 * time.Millisecond)
		io.WriteString(w, `{"from":"slow"}`)
	}))
	defer slow.Close()
	notFound := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"unknown job id"}`, http.StatusNotFound)
	}))
	defer notFound.Close()

	cands := []cluster.Peer{{ID: "p1", URL: slow.URL}, {ID: "p2", URL: notFound.URL}}
	s := hedgeTestServer(t, cands)

	req := httptest.NewRequest(http.MethodGet, "/v1/batch/jobs/j1", nil)
	rec := httptest.NewRecorder()
	s.hedgedForward(rec, req, cands, nil)

	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want the slow primary's 200", rec.Code)
	}
	if got := rec.Body.String(); got != `{"from":"slow"}` {
		t.Fatalf("body %q, want the primary's reply", got)
	}
}

// TestForwardToCallerCancel: a caller that goes away mid-forward must
// not burn the remaining retry attempts against the peer (satellite
// regression: the backoff selects on the caller's context).
func TestForwardToCallerCancel(t *testing.T) {
	var hits atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		time.Sleep(50 * time.Millisecond)
		http.Error(w, "busy", http.StatusInternalServerError)
	}))
	defer backend.Close()

	cands := []cluster.Peer{{ID: "p1", URL: backend.URL}}
	s := hedgeTestServer(t, cands)

	req := httptest.NewRequest(http.MethodGet, "/v1/batch/jobs/j1", nil)
	ctx, cancel := context.WithCancel(req.Context())
	req = req.WithContext(ctx)
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	rec := httptest.NewRecorder()
	start := time.Now()
	s.forwardTo(rec, req, cands, nil)
	elapsed := time.Since(start)

	// RetryDelay(0) alone is >= 500ms; returning well under that means
	// the backoff observed the canceled context instead of sleeping.
	if elapsed > 400*time.Millisecond {
		t.Fatalf("forwardTo ran %v after its caller canceled", elapsed)
	}
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d after caller cancel, want 503", rec.Code)
	}
	if got := hits.Load(); got > 1 {
		t.Errorf("backend saw %d attempts from a canceled caller, want at most 1", got)
	}
}
