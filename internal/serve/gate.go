package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrQueueFull is the admission-control rejection: the server already
// holds its maximum of running plus queued requests. Handlers map it to
// 429 with a Retry-After hint rather than letting work pile up.
var ErrQueueFull = errors.New("serve: job queue full")

// ErrDoomed is the deadline-aware rejection: the estimated queue wait
// alone would consume the request's deadline, so admitting it could
// only end in a 504 after holding a queue slot the whole time.
// Handlers map it to 429 + Retry-After — same contract as ErrQueueFull,
// decided per-request instead of by a fixed cap.
var ErrDoomed = errors.New("serve: queue wait would exceed the request deadline")

// gate is the server's bounded admission queue: at most `workers`
// simulations run concurrently and at most `depth` further requests
// wait for a slot. Everything beyond that is rejected immediately with
// ErrQueueFull — under overload the server sheds load instead of
// queueing unboundedly, which keeps latency for admitted requests flat
// and memory bounded.
//
// Admission is additionally deadline-aware: the gate keeps an EWMA of
// how long admitted requests hold their slot, and a request whose
// remaining deadline is smaller than the wait its queue position
// implies is rejected up front with ErrDoomed. That converts
// certain-to-time-out requests from slow 504s (which occupy queue
// slots while dying) into immediate 429s the client can retry
// elsewhere or later.
type gate struct {
	cap      int64 // workers + depth
	workers  int64
	admitted atomic.Int64
	inflight atomic.Int64
	slots    chan struct{}

	svcNS  atomic.Int64 // EWMA of slot-hold time, ns (0 = no samples yet)
	doomed atomic.Int64 // requests rejected by the deadline-aware check
}

func newGate(workers, depth int) *gate {
	return &gate{
		cap:     int64(workers + depth),
		workers: int64(workers),
		slots:   make(chan struct{}, workers),
	}
}

// Acquire admits the caller and blocks until a worker slot frees (or
// ctx ends). On success it returns a release func the caller must call
// exactly once. ErrQueueFull means the cap was hit; ErrDoomed means
// the caller's deadline cannot survive the current queue. Callers were
// never admitted on either error.
func (g *gate) Acquire(ctx context.Context) (release func(), err error) {
	return g.acquire(ctx, true)
}

// AcquireWait is Acquire without the deadline-aware shed: durable work
// (the async dispatcher) prefers waiting out its deadline — an aborted
// job stays resumable, so rejecting it up front would only add churn.
func (g *gate) AcquireWait(ctx context.Context) (release func(), err error) {
	return g.acquire(ctx, false)
}

func (g *gate) acquire(ctx context.Context, shed bool) (release func(), err error) {
	if g.admitted.Add(1) > g.cap {
		g.admitted.Add(-1)
		return nil, ErrQueueFull
	}
	if shed {
		if dl, ok := ctx.Deadline(); ok {
			if wait := g.estimatedWait(); wait > 0 && time.Until(dl) < wait {
				g.admitted.Add(-1)
				g.doomed.Add(1)
				return nil, ErrDoomed
			}
		}
	}
	select {
	case g.slots <- struct{}{}:
	case <-ctx.Done():
		g.admitted.Add(-1)
		return nil, ctx.Err()
	}
	start := time.Now()
	g.inflight.Add(1)
	return func() {
		g.observe(time.Since(start))
		g.inflight.Add(-1)
		g.admitted.Add(-1)
		<-g.slots
	}, nil
}

// estimatedWait predicts the queue wait a newly admitted request faces:
// zero with a free slot, else the slot-hold EWMA scaled by how many
// admitted requests stand in line ahead of it (spread over the worker
// lanes). Zero when no request has completed yet — with no evidence
// the gate admits optimistically rather than guessing.
func (g *gate) estimatedWait() time.Duration {
	if len(g.slots) < cap(g.slots) {
		return 0
	}
	svc := g.svcNS.Load()
	if svc == 0 {
		return 0
	}
	waiting := g.admitted.Load() - g.inflight.Load() // includes the caller
	if waiting < 1 {
		waiting = 1
	}
	return time.Duration(svc * (waiting + g.workers - 1) / g.workers)
}

// observe folds one slot-hold duration into the EWMA (alpha = 1/8).
func (g *gate) observe(d time.Duration) {
	ns := d.Nanoseconds()
	for {
		old := g.svcNS.Load()
		nw := ns
		if old != 0 {
			nw = old + (ns-old)/8
		}
		if g.svcNS.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Inflight is the number of requests currently holding a worker slot.
func (g *gate) Inflight() int64 { return g.inflight.Load() }

// Queued is the number of admitted requests still waiting for a slot.
func (g *gate) Queued() int64 {
	q := g.admitted.Load() - g.inflight.Load()
	if q < 0 {
		return 0
	}
	return q
}

// Doomed counts requests rejected by the deadline-aware shed.
func (g *gate) Doomed() int64 { return g.doomed.Load() }

// saturation is the occupied fraction of the gate's waiting room — the
// brownout controller's load signal.
func (g *gate) saturation() float64 {
	depth := g.cap - g.workers
	if depth <= 0 {
		return 0
	}
	return float64(g.Queued()) / float64(depth)
}
