package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrQueueFull is the admission-control rejection: the server already
// holds its maximum of running plus queued requests. Handlers map it to
// 429 with a Retry-After hint rather than letting work pile up.
var ErrQueueFull = errors.New("serve: job queue full")

// gate is the server's bounded admission queue: at most `workers`
// simulations run concurrently and at most `depth` further requests
// wait for a slot. Everything beyond that is rejected immediately with
// ErrQueueFull — under overload the server sheds load instead of
// queueing unboundedly, which keeps latency for admitted requests flat
// and memory bounded.
type gate struct {
	cap      int64 // workers + depth
	admitted atomic.Int64
	inflight atomic.Int64
	workers  chan struct{}
}

func newGate(workers, depth int) *gate {
	return &gate{
		cap:     int64(workers + depth),
		workers: make(chan struct{}, workers),
	}
}

// Acquire admits the caller and blocks until a worker slot frees (or
// ctx ends). On success it returns a release func the caller must call
// exactly once. ErrQueueFull means the caller was never admitted.
func (g *gate) Acquire(ctx context.Context) (release func(), err error) {
	if g.admitted.Add(1) > g.cap {
		g.admitted.Add(-1)
		return nil, ErrQueueFull
	}
	select {
	case g.workers <- struct{}{}:
	case <-ctx.Done():
		g.admitted.Add(-1)
		return nil, ctx.Err()
	}
	g.inflight.Add(1)
	return func() {
		g.inflight.Add(-1)
		g.admitted.Add(-1)
		<-g.workers
	}, nil
}

// Inflight is the number of requests currently holding a worker slot.
func (g *gate) Inflight() int64 { return g.inflight.Load() }

// Queued is the number of admitted requests still waiting for a slot.
func (g *gate) Queued() int64 {
	q := g.admitted.Load() - g.inflight.Load()
	if q < 0 {
		return 0
	}
	return q
}
