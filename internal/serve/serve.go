// Package serve is the simulation-as-a-service layer: an HTTP/JSON
// front end over the library's context-first API (machine.RunContext →
// core.Session.RunContext → exp rendering) with the properties a shared
// deployment needs and a blocking library call cannot give:
//
//   - bounded admission: at most Workers simulations run concurrently
//     and at most QueueDepth requests wait; everything beyond that is
//     rejected with 429 + Retry-After instead of queueing unboundedly;
//   - per-request deadlines: every run is bounded by a context deadline
//     (client-chosen up to MaxTimeout), and a canceled or disconnected
//     request aborts its simulation cooperatively, freeing the worker;
//   - memo reuse with flat memory: requests share core.Sessions through
//     a sharded LRU cache, so repeated configurations are memo hits but
//     the result store cannot grow without bound;
//   - observability: queue-depth and inflight expvar gauges, per-request
//     RunMetrics (the internal/metrics schema) on demand.
//
// Endpoints (all JSON unless noted):
//
//	POST /v2/jobs                  submit a job (sync run, sync batch, or
//	                               async batch with an idempotency key)
//	GET  /v2/jobs/{id}             poll an async job
//	GET  /v2/jobs/{id}/events      live progress (Server-Sent Events)
//	GET  /v2/healthz               liveness + queue gauges + tenant usage
//	POST /v1/run                   legacy: one simulation run
//	POST /v1/batch                 legacy: a job list, partial results
//	GET  /v1/batch/jobs/{id}       legacy: poll an async job
//	GET  /v1/batch/jobs/{id}/events  live progress (SSE, shared with v2)
//	GET  /v1/experiments/{id}      a rendered paper table/figure (text)
//	GET  /v1/healthz               liveness + queue gauges
//	GET  /debug/vars               expvar (includes the mtsimd gauges)
//
// The /v1 surface is a byte-compatible legacy shim: both surfaces
// delegate to one execution core, /v1 keeps its original renderings.
// Multi-tenancy: requests carry a tenant (Authorization: Bearer API
// key, or the X-Tenant-ID header, else "anonymous"); admission is
// token-bucket per tenant and the async dispatcher drains per-tenant
// queues deficit-round-robin weighted by TenantConfig.Weight.
//
// Results are byte-identical to the library path: the server only ever
// calls the same deterministic entry points the CLI tools use.
package serve

import (
	"context"
	"expvar"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"mtsim/internal/cluster"
	"mtsim/internal/core"
)

// Config parameterizes a Server. The zero value is usable: every field
// defaults sensibly (see withDefaults).
type Config struct {
	// Workers bounds concurrently running requests (default GOMAXPROCS).
	// Each request may itself fan out over its session's worker pool;
	// SessionWorkers bounds that inner width.
	Workers int
	// QueueDepth bounds requests waiting for a worker slot beyond the
	// running ones (default 64). Excess requests get 429.
	QueueDepth int
	// SessionWorkers bounds each session's inner simulation pool
	// (default 0 = GOMAXPROCS), the width RunBatch and MTSearch fan out
	// to within one request.
	SessionWorkers int
	// DefaultTimeout bounds requests that do not ask for a deadline
	// (default 60s); MaxTimeout caps what they may ask for (default 10m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxSessions bounds the LRU session cache (default 8 sessions over
	// 4 shards); MaxSessionSims retires a session whose memo has grown
	// past this many executed simulations (default 65536).
	MaxSessions    int
	MaxSessionSims int64
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// MaxBatchJobs bounds the job list of one /v1/batch request
	// (default 256).
	MaxBatchJobs int
	// CheckpointEvery is the cycle budget between journal checkpoints
	// of async batch jobs (default 100000). Smaller values bound the
	// re-simulation after a crash more tightly at the cost of more
	// fsync'd snapshot writes. Only used once EnableJournal is called.
	CheckpointEvery int64
	// Tenants declares the known tenants: weights for the fair-share
	// scheduler, token-bucket quotas, API keys. Requests from tenants
	// not listed here (header-derived or anonymous) get DefaultQuota
	// and weight 1.
	Tenants []TenantConfig
	// DefaultQuota is the admission quota for undeclared tenants
	// (zero value = unlimited).
	DefaultQuota Quota
	// Scheduler selects how the async dispatcher pool drains queued
	// jobs: SchedulerFair (default) is deficit-round-robin over
	// per-tenant queues weighted by TenantConfig.Weight; SchedulerFIFO
	// is the legacy single global queue.
	Scheduler string
	// Dispatchers sizes the async dispatcher pool (default
	// max(1, Workers/2)). Keeping it below Workers reserves gate slots
	// for sync requests, so a flood of async submissions cannot starve
	// interactive traffic.
	Dispatchers int
	// HedgeFraction caps hedged forwarded reads at this fraction of
	// forward traffic (default 0.1; negative disables hedging). Only
	// meaningful in cluster mode.
	HedgeFraction float64
	// HedgeDelayMin/HedgeDelayMax clamp the hedge delay derived from
	// the p95 of recent forward latencies (defaults 10ms and 2s).
	HedgeDelayMin time.Duration
	HedgeDelayMax time.Duration
	// BrownoutHighWater/BrownoutLowWater bound the brownout hysteresis
	// band in units of queue saturation (queued / QueueDepth): sustained
	// saturation at or above high water enters brownout, sustained
	// saturation at or below low water leaves it (defaults 0.75 / 0.25).
	BrownoutHighWater float64
	BrownoutLowWater  float64
	// BrownoutEnter/BrownoutExit are how long the saturation must hold
	// past the respective water mark before the mode flips (defaults
	// 2s in, 3s out; negative BrownoutEnter disables brownout).
	BrownoutEnter time.Duration
	BrownoutExit  time.Duration
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 8
	}
	if c.MaxSessionSims <= 0 {
		c.MaxSessionSims = 65536
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBatchJobs <= 0 {
		c.MaxBatchJobs = 256
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 100_000
	}
	if c.Scheduler == "" {
		c.Scheduler = SchedulerFair
	}
	if c.Dispatchers <= 0 {
		c.Dispatchers = c.Workers / 2
		if c.Dispatchers < 1 {
			c.Dispatchers = 1
		}
	}
	if c.HedgeFraction == 0 {
		c.HedgeFraction = 0.1
	}
	if c.HedgeDelayMin <= 0 {
		c.HedgeDelayMin = 10 * time.Millisecond
	}
	if c.HedgeDelayMax <= 0 {
		c.HedgeDelayMax = 2 * time.Second
	}
	if c.BrownoutHighWater <= 0 {
		c.BrownoutHighWater = 0.75
	}
	if c.BrownoutLowWater <= 0 {
		c.BrownoutLowWater = 0.25
	}
	if c.BrownoutEnter == 0 {
		c.BrownoutEnter = 2 * time.Second
	}
	if c.BrownoutExit <= 0 {
		c.BrownoutExit = 3 * time.Second
	}
	return c
}

// Server is one simulation service instance. Create with New; it is
// ready to serve via Handler, ListenAndServe, or any http.Server.
type Server struct {
	cfg      Config
	gate     *gate
	sessions *sessionCache
	mux      *http.ServeMux
	started  time.Time
	tenants  *tenantRegistry

	// bo is the brownout controller (nil when disabled by config).
	bo *brownout

	// jm is non-nil once EnableJournal has armed crash-tolerant async
	// batch jobs. Set before serving starts, read-only afterwards.
	jm *jobManager

	// cluster is non-nil once EnableCluster has joined this server to a
	// fleet. Set before serving starts, read-only afterwards.
	cluster *clusterRuntime

	httpMu  sync.Mutex
	httpSrv *http.Server
}

// New builds a Server from cfg (zero value = defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		gate:    newGate(cfg.Workers, cfg.QueueDepth),
		started: time.Now(),
		tenants: newTenantRegistry(cfg.Tenants, cfg.DefaultQuota),
	}
	if cfg.BrownoutEnter > 0 {
		s.bo = newBrownout(cfg.BrownoutHighWater, cfg.BrownoutLowWater, cfg.BrownoutEnter, cfg.BrownoutExit)
	}
	s.sessions = newSessionCache(4, cfg.MaxSessions, cfg.MaxSessionSims, func(key string) *core.Session {
		sess := core.NewSession()
		sess.Workers = cfg.SessionWorkers
		// Session flags are fixed at creation (requests share sessions
		// concurrently): the key's +metrics suffix decides collection.
		sess.CollectMetrics = strings.HasSuffix(key, "+metrics")
		return sess
	})
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/batch/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/batch/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		s.handleJobEvents(w, r, false)
	})
	s.mux.HandleFunc("GET /v1/experiments/{id}", s.handleExperiment)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	// The /v2 surface: jobs unified (sync run = degenerate job), one
	// error envelope, tenant/quota fields in every response. /v1 above
	// stays as the byte-compatible legacy surface; both delegate to the
	// same execution core.
	s.mux.HandleFunc("POST /v2/jobs", s.handleV2Jobs)
	s.mux.HandleFunc("GET /v2/jobs/{id}", s.handleV2Job)
	s.mux.HandleFunc("GET /v2/jobs/{id}/events", s.handleV2JobEvents)
	s.mux.HandleFunc("GET /v2/healthz", s.handleV2Healthz)
	// Cluster routes are registered unconditionally and answer 404 until
	// EnableCluster arms them, so a solo node's surface is unchanged.
	s.mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	s.mux.HandleFunc("GET "+cluster.PingPath, s.handleClusterPing)
	s.mux.HandleFunc("GET /v1/jobs/{id}/state", s.handleJobStateGet)
	s.mux.HandleFunc("PUT /v1/jobs/{id}/state", s.handleJobStatePut)
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	return s
}

// Handler returns the server's route table.
func (s *Server) Handler() http.Handler { return s.mux }

// Inflight and Queued expose the admission gauges (also published as
// expvar by PublishVars and reported by /v1/healthz).
func (s *Server) Inflight() int64 { return s.gate.Inflight() }
func (s *Server) Queued() int64   { return s.gate.Queued() }

// Sessions reports the number of cached sessions.
func (s *Server) Sessions() int { return s.sessions.Len() }

// publishOnce guards the process-global expvar names: expvar.Publish
// panics on duplicates, and tests build many Servers per process.
var publishOnce sync.Once

// PublishVars publishes the server's queue-depth/inflight/session
// gauges as expvar (served on /debug/vars). First caller in the process
// wins; cmd/mtsimd runs one server per process so this is exact there.
func (s *Server) PublishVars() {
	publishOnce.Do(func() {
		expvar.Publish("mtsimd.inflight", expvar.Func(func() any { return s.Inflight() }))
		expvar.Publish("mtsimd.queue_depth", expvar.Func(func() any { return s.Queued() }))
		expvar.Publish("mtsimd.sessions", expvar.Func(func() any { return s.Sessions() }))
		expvar.Publish("mtsimd.journal_replayed", expvar.Func(func() any { return s.JournalReplayed() }))
		expvar.Publish("mtsimd.checkpoints_written", expvar.Func(func() any { return s.CheckpointsWritten() }))
		expvar.Publish("mtsimd.cluster_alive", expvar.Func(func() any {
			if s.cluster == nil {
				return 0
			}
			alive, _ := s.cluster.node.AliveCount()
			return alive
		}))
		expvar.Publish("mtsimd.cluster_dead", expvar.Func(func() any {
			if s.cluster == nil {
				return 0
			}
			_, dead := s.cluster.node.AliveCount()
			return dead
		}))
		expvar.Publish("mtsimd.tenant_usage", expvar.Func(func() any { return s.tenants.table() }))
		expvar.Publish("mtsimd.cluster_claims", expvar.Func(func() any { return s.ClusterClaims() }))
		expvar.Publish("mtsimd.cluster_forwards", expvar.Func(func() any { return s.ClusterForwards() }))
		expvar.Publish("mtsimd.cluster_handoffs", expvar.Func(func() any { return s.ClusterHandoffs() }))
		expvar.Publish("mtsimd.doomed", expvar.Func(func() any { return s.gate.Doomed() }))
		expvar.Publish("mtsimd.brownout", expvar.Func(func() any {
			if s.bo == nil {
				return nil
			}
			return s.bo.status()
		}))
		expvar.Publish("mtsimd.breakers", expvar.Func(func() any {
			if s.cluster == nil {
				return nil
			}
			return s.cluster.node.BreakerStates()
		}))
		expvar.Publish("mtsimd.hedges", expvar.Func(func() any {
			if s.cluster == nil {
				return int64(0)
			}
			return s.cluster.hedges.Load()
		}))
		expvar.Publish("mtsimd.hedge_wins", expvar.Func(func() any {
			if s.cluster == nil {
				return int64(0)
			}
			return s.cluster.hedgeWins.Load()
		}))
	})
}

// ListenAndServe serves on addr until Shutdown (which returns
// http.ErrServerClosed here, like net/http).
func (s *Server) ListenAndServe(addr string) error {
	s.httpMu.Lock()
	s.httpSrv = &http.Server{Addr: addr, Handler: s.mux}
	srv := s.httpSrv
	s.httpMu.Unlock()
	return srv.ListenAndServe()
}

// Shutdown gracefully drains a ListenAndServe server: listeners close
// immediately (new requests are refused), in-flight requests run to
// completion, and once ctx expires the remaining request contexts are
// canceled so their simulations abort cooperatively. When journaling is
// enabled, the async dispatcher is drained the same way — the in-flight
// job gets until ctx expires, then is aborted (still resumable from its
// journaled checkpoints) — and the journal is flushed and closed.
// In cluster mode the drain additionally hands every owned unfinished
// job to a live ring successor (with a journaled release) before the
// journal closes, so planned restarts migrate work immediately instead
// of making peers wait out the lease.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.cluster != nil {
		// Stop probing (and claiming) first: a draining node must not
		// adopt new work while it is giving its own away.
		s.cluster.node.Stop()
	}
	s.httpMu.Lock()
	srv := s.httpSrv
	s.httpMu.Unlock()
	var err error
	if srv != nil {
		err = srv.Shutdown(ctx)
		if err != nil {
			// Drain deadline hit: force-close the stragglers; their
			// request contexts cancel and the event loops unwind.
			_ = srv.Close()
		}
	}
	if s.jm != nil {
		jerr := s.jm.stopDispatcher(ctx)
		if s.cluster != nil {
			hctx := ctx
			if ctx.Err() != nil {
				// The drain deadline went to the in-flight job. The
				// handoff itself is a handful of bounded PUTs, so give it
				// a short independent grace rather than stranding owned
				// jobs until their leases expire on the claimant side.
				var cancel context.CancelFunc
				hctx, cancel = context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
			}
			s.handoffLeases(hctx)
		}
		if cerr := s.jm.closeJournal(); jerr == nil {
			jerr = cerr
		}
		if err == nil {
			err = jerr
		}
	}
	return err
}
