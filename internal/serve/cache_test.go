package serve

import (
	"fmt"
	"testing"

	"mtsim/internal/app"
	"mtsim/internal/apps"
	"mtsim/internal/core"
	"mtsim/internal/machine"
)

// TestCacheSharesAndCreates: the same key returns the same session; a
// different key gets its own.
func TestCacheSharesAndCreates(t *testing.T) {
	c := newSessionCache(4, 8, 0, func(string) *core.Session { return core.NewSession() })
	a, b := c.Get("quick"), c.Get("quick")
	if a != b {
		t.Error("same key returned different sessions")
	}
	if c.Get("quick+metrics") == a {
		t.Error("different keys share a session")
	}
	if got := c.Len(); got != 2 {
		t.Errorf("Len = %d, want 2", got)
	}
}

// TestCacheLRUEviction: a single-shard cache of two holds only the two
// most recently used keys.
func TestCacheLRUEviction(t *testing.T) {
	builds := 0
	c := newSessionCache(1, 2, 0, func(string) *core.Session { builds++; return core.NewSession() })
	s1 := c.Get("a")
	c.Get("b")
	c.Get("a") // a is now most recent
	c.Get("c") // evicts b
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if c.Get("a") != s1 {
		t.Error("recently used key was evicted")
	}
	if builds != 3 {
		t.Errorf("factory ran %d times, want 3", builds)
	}
	c.Get("b") // was evicted: must rebuild
	if builds != 4 {
		t.Errorf("factory ran %d times after re-Get of evicted key, want 4", builds)
	}
}

// TestCacheRetiresOversizedSession: a session that has executed more
// than maxSims simulations is replaced by a fresh one on its next use,
// bounding any single key's memo.
func TestCacheRetiresOversizedSession(t *testing.T) {
	c := newSessionCache(1, 4, 1, func(string) *core.Session { return core.NewSession() })
	sess := c.Get("k")
	sieve := apps.MustNew("sieve", app.Quick)
	for i := 2; i <= 3; i++ { // two distinct configs = two real simulations
		if _, err := sess.Run(sieve, machine.Config{Procs: i, Threads: 1, Model: machine.SwitchOnLoad}); err != nil {
			t.Fatal(err)
		}
	}
	if sess.SimCount() <= 1 {
		t.Fatalf("SimCount = %d, want > 1", sess.SimCount())
	}
	fresh := c.Get("k")
	if fresh == sess {
		t.Error("oversized session was not retired")
	}
	if fresh.SimCount() != 0 {
		t.Errorf("retired replacement SimCount = %d, want 0", fresh.SimCount())
	}
}

// TestCacheShardingSpreads: keys land on every shard eventually and
// Len counts across all of them.
func TestCacheShardingSpreads(t *testing.T) {
	c := newSessionCache(4, 64, 0, func(string) *core.Session { return core.NewSession() })
	for i := 0; i < 32; i++ {
		c.Get(fmt.Sprintf("key-%d", i))
	}
	if got := c.Len(); got != 32 {
		t.Errorf("Len = %d, want 32", got)
	}
	used := 0
	for i := range c.shards {
		if c.shards[i].lru.Len() > 0 {
			used++
		}
	}
	if used < 2 {
		t.Errorf("only %d shards used for 32 keys; sharding is not spreading", used)
	}
}
