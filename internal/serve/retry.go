package serve

import (
	"math/rand/v2"
	"time"
)

// Retry pacing. The server's 429 carries a jittered Retry-After and
// clients are expected to back off exponentially with jitter; both
// halves live here so the decorrelation story is in one place. Without
// jitter, every client rejected by the same full queue sleeps the same
// interval and returns as the same thundering herd, re-creating the
// overload that rejected them.

// retryAfterSeconds picks the Retry-After hint: uniform in
// [base/2, 3*base/2], never below one second, rounded up to whole
// seconds (the header's granularity).
func retryAfterSeconds(base time.Duration) int {
	d := time.Duration((0.5 + rand.Float64()) * float64(base))
	if d < time.Second {
		d = time.Second
	}
	return int((d + time.Second - 1) / time.Second)
}

// retryAfterMS is the poll-pacing hint carried in a JobStatus body: one
// RetryDelay(0) draw in milliseconds, so job pollers inherit the same
// decorrelated backoff as rejected clients.
func retryAfterMS(base time.Duration) int64 {
	return RetryDelay(0, base).Milliseconds()
}

// RetryDelay returns how long a client should wait before retry number
// attempt (0-based) of a 429-rejected request: exponential doubling
// from base, capped at 64x base, with uniform +-50% jitter. A non-
// positive base defaults to one second.
func RetryDelay(attempt int, base time.Duration) time.Duration {
	if base <= 0 {
		base = time.Second
	}
	if attempt < 0 {
		attempt = 0
	}
	if attempt > 6 {
		attempt = 6 // 1<<6 = the 64x cap
	}
	d := base << uint(attempt)
	return time.Duration((0.5 + rand.Float64()) * float64(d))
}
