package serve

import (
	"context"
	"fmt"
	"net/http"
	"strconv"

	"mtsim/internal/cluster"
)

// Live job progress over Server-Sent Events:
//
//	GET /v1/batch/jobs/{id}/events   (and /v2/jobs/{id}/events)
//
// The stream is fed from the job's checkpoint sink: every journaled
// checkpoint becomes a `checkpoint` event whose id is "<entry>-<cycle>"
// and whose data carries the batch entry and the cycles completed. A
// `status` event opens the stream (status, entry progress, advisory
// ETA) and a `done` event closes it once the job finishes.
//
// Resume is exact: a client that reconnects with Last-Event-ID gets
// every event strictly after that cursor and nothing else. Because the
// checkpoint sequence is deterministic, this holds even across a node
// death — the failover successor regenerates the undelivered tail of
// the sequence from its adopted state (see cluster.go), so a spliced
// stream has no duplicate and no missing checkpoint events. The
// subscriber never throttles the simulation: events accumulate in the
// job's history and each subscriber tails it at its own pace.

// sseCursorStart is the "everything" cursor (before any real event).
var sseCursorStart = JobEvent{Entry: -1}

// sseStatus is the data payload of `status` events: a snapshot of job
// progress at subscribe time. EtaMS is advisory (wall-clock based);
// everything else is deterministic.
type sseStatus struct {
	Status      string `json:"status"`
	Entries     int    `json:"entries"`
	EntriesDone int    `json:"entries_done"`
	Progress    int64  `json:"progress"`
	EtaMS       int64  `json:"eta_ms,omitempty"`
}

// writeSSEEvent emits one SSE frame. data is rendered compactly (one
// line, as the SSE framing requires).
func writeSSEEvent(w http.ResponseWriter, id, event string, data any) error {
	if id != "" {
		if _, err := fmt.Fprintf(w, "id: %s\n", id); err != nil {
			return err
		}
	}
	payload, err := marshalCompact(data)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, payload)
	return err
}

// handleJobEvents streams one job's progress. Shared by the v1 and v2
// routes; v2 selects the v2 error envelope for pre-stream failures.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request, v2 bool) {
	fail := func(status int, code, msg string) {
		if v2 {
			s.writeV2Error(w, status, code, msg)
		} else {
			writeJSON(w, status, errorResponse{Error: msg})
		}
	}
	if s.jm == nil {
		fail(http.StatusNotFound, v2CodeNotFound, "async jobs disabled: server runs without a journal")
		return
	}
	if s.brownedOut() {
		// Brownout sheds the SSE fan-out before the server refuses real
		// work: the job keeps running, only the live feed is declined.
		// Clients fall back to polling (or resume the stream later with
		// Last-Event-ID — the event history loses nothing).
		s.bo.shedSSE.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
		fail(http.StatusServiceUnavailable, v2CodeUnavailable, "event streaming shed under overload (brownout); poll the job or retry later")
		return
	}
	if !s.jm.owns(r.PathValue("id")) && s.forwardIfRemote(w, r, cluster.JobRouteKey(r.PathValue("id")), nil) {
		return
	}
	job := s.jm.get(r.PathValue("id"))
	if job == nil {
		fail(http.StatusNotFound, v2CodeNotFound, "unknown job id")
		return
	}
	cursor := sseCursorStart
	lastID := r.Header.Get("Last-Event-ID")
	if lastID == "" {
		lastID = r.URL.Query().Get("last_event_id")
	}
	if lastID != "" {
		ev, ok := parseEventID(lastID)
		if !ok {
			fail(http.StatusBadRequest, v2CodeBadRequest, fmt.Sprintf("bad Last-Event-ID %q: want <entry>-<cycle>", lastID))
			return
		}
		cursor = ev
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		fail(http.StatusInternalServerError, v2CodeInternal, "streaming unsupported by this connection")
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	// Wake the subscriber loop when the client goes away, so a closed
	// connection does not park a goroutine on the cond forever.
	ctx := r.Context()
	stopWake := context.AfterFunc(ctx, func() {
		job.mu.Lock()
		job.sub.Broadcast()
		job.mu.Unlock()
	})
	defer stopWake()

	job.mu.Lock()
	hello := sseStatus{
		Status: job.status, Entries: job.entries, EntriesDone: job.entriesDone,
		Progress: job.progressLocked(), EtaMS: job.etaMSLocked(),
	}
	job.mu.Unlock()
	if writeSSEEvent(w, "", "status", hello) != nil {
		return
	}
	fl.Flush()

	for {
		job.mu.Lock()
		var evs []JobEvent
		var status string
		for {
			evs = job.eventsAfterLocked(cursor)
			status = job.status
			if len(evs) > 0 || status == JobDone || ctx.Err() != nil {
				break
			}
			job.sub.Wait()
		}
		job.mu.Unlock()
		if ctx.Err() != nil {
			return
		}
		for _, e := range evs {
			if writeSSEEvent(w, e.ID(), "checkpoint", e) != nil {
				return
			}
			cursor = e
		}
		fl.Flush()
		if status == JobDone {
			// One last look: checkpoints appended between the copy above
			// and the done transition must not be skipped.
			job.mu.Lock()
			tail := job.eventsAfterLocked(cursor)
			job.mu.Unlock()
			for _, e := range tail {
				if writeSSEEvent(w, e.ID(), "checkpoint", e) != nil {
					return
				}
				cursor = e
			}
			_ = writeSSEEvent(w, "", "done", sseStatus{Status: JobDone})
			fl.Flush()
			return
		}
	}
}
