package net

import (
	"strings"
	"testing"

	"mtsim/internal/rng"
)

// routedKinds are the kinds with an actual link graph.
var routedKinds = []TopologyKind{TopoMesh, TopoFatTree, TopoDragonfly}

func TestParseTopologyRoundTrips(t *testing.T) {
	for _, name := range TopologyNames() {
		k, err := ParseTopology(name)
		if err != nil {
			t.Fatalf("ParseTopology(%q): %v", name, err)
		}
		if k.String() != name {
			t.Errorf("ParseTopology(%q).String() = %q", name, k.String())
		}
	}
	if _, err := ParseTopology("torus"); err == nil {
		t.Fatal("ParseTopology(torus) succeeded")
	} else if msg := err.Error(); !strings.Contains(msg, "mesh") || !strings.Contains(msg, "dragonfly") {
		t.Errorf("error %q does not list the valid choices", msg)
	}
}

func TestTopologyConfigValidate(t *testing.T) {
	bad := []TopologyConfig{
		{Kind: TopologyKind(99)},
		{Kind: TopologyKind(-1)},
		{Kind: TopoMesh, Nodes: -1},
		{Kind: TopoMesh, HopCycles: -2},
		{Kind: TopoMesh, ChannelBits: -16},
		{Kind: TopoMesh, MemCycles: -1},
		// The constant kind is the legacy network; shape parameters on it
		// would silently mean nothing, so they are rejected.
		{Kind: TopoConstant, Nodes: 8},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", c)
		}
	}
	good := []TopologyConfig{
		{},
		{Kind: TopoMesh},
		{Kind: TopoFatTree, Nodes: 13, HopCycles: 2, ChannelBits: 8, MemCycles: 5},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v): %v", c, err)
		}
	}
}

func TestTopologyDefaults(t *testing.T) {
	got := TopologyConfig{Kind: TopoMesh}.WithDefaults(16)
	want := TopologyConfig{Kind: TopoMesh, Nodes: 16, HopCycles: 4, ChannelBits: 16, MemCycles: 20}
	if got != want {
		t.Errorf("WithDefaults = %+v, want %+v", got, want)
	}
	// Constant stays the zero value no matter what, so the effective form
	// of a legacy configuration is unchanged (snapshot config identity).
	if got := (TopologyConfig{}).WithDefaults(16); got != (TopologyConfig{}) {
		t.Errorf("constant WithDefaults = %+v, want zero", got)
	}
}

// TestRouteTerminatesWithinDiameter: every route between every node
// pair must use valid link ids and terminate within the topology's
// declared diameter — including awkward non-square, non-power-of-two
// node counts.
func TestRouteTerminatesWithinDiameter(t *testing.T) {
	for _, kind := range routedKinds {
		for _, nodes := range []int{1, 2, 3, 5, 8, 13, 16, 29} {
			n := NewNetwork(TopologyConfig{Kind: kind, Nodes: nodes}, nodes, 200)
			diam := n.Diameter()
			for src := 0; src < nodes; src++ {
				for dst := 0; dst < nodes; dst++ {
					p := n.route(src, dst)
					if src == dst && len(p) != 0 {
						t.Fatalf("%s/%d: route(%d,%d) = %d hops, want 0", kind, nodes, src, dst, len(p))
					}
					if len(p) > diam {
						t.Fatalf("%s/%d: route(%d,%d) = %d hops > diameter %d", kind, nodes, src, dst, len(p), diam)
					}
					for _, id := range p {
						if id < 0 || id >= n.NumLinks() {
							t.Fatalf("%s/%d: route(%d,%d) uses link %d of %d", kind, nodes, src, dst, id, n.NumLinks())
						}
					}
				}
			}
		}
	}
}

// TestQueueConservation: under a seeded random load, every message
// enqueued on a link eventually drains — after Quiesce at a time past
// the last departure, enqueues == drains and nothing is pending.
func TestQueueConservation(t *testing.T) {
	for _, kind := range routedKinds {
		r := rng.New(42)
		n := NewNetwork(TopologyConfig{Kind: kind}, 16, 200)
		var now int64
		for i := 0; i < 5000; i++ {
			src := int(r.Intn(16))
			addr := r.Intn(1 << 20)
			n.RoundTrip(now, src, addr, Bits(ReadReq, 0), Bits(ReadReply, WordBits))
			now += r.Intn(3) // bursts: several requests per cycle
		}
		// Mid-run the books must still balance: enqueued = drained + in flight.
		var pending int64
		for i := range n.links {
			pending += int64(len(n.links[i].pending))
		}
		if n.Enqueued() != n.Drained()+pending {
			t.Fatalf("%s: mid-run enqueued %d != drained %d + pending %d", kind, n.Enqueued(), n.Drained(), pending)
		}
		if n.Enqueued() == 0 {
			t.Fatalf("%s: no traffic routed", kind)
		}
		n.Quiesce(now + MaxRoundTrip)
		if n.Enqueued() != n.Drained() {
			t.Fatalf("%s: after quiesce enqueued %d != drained %d", kind, n.Enqueued(), n.Drained())
		}
		for i := range n.links {
			if len(n.links[i].pending) != 0 {
				t.Fatalf("%s: link %d still has %d pending after quiesce", kind, i, len(n.links[i].pending))
			}
		}
	}
}

// TestLatencyMonotoneInLoad: firing more simultaneous requests at the
// same destination must never make the worst round trip faster — the
// FIFO queues only add waiting as offered load grows.
func TestLatencyMonotoneInLoad(t *testing.T) {
	for _, kind := range routedKinds {
		var prevWorst int64
		for load := 1; load <= 32; load *= 2 {
			n := NewNetwork(TopologyConfig{Kind: kind}, 16, 200)
			var worst int64
			for i := 0; i < load; i++ {
				// All processors hammer the same module at cycle 0.
				lat := n.RoundTrip(0, i%16, 8, Bits(ReadReq, 0), Bits(ReadReply, WordBits))
				if lat > worst {
					worst = lat
				}
			}
			if worst < prevWorst {
				t.Fatalf("%s: worst latency at load %d = %d < %d at half the load", kind, load, worst, prevWorst)
			}
			prevWorst = worst
		}
		if prevWorst <= 0 {
			t.Fatalf("%s: no latency observed", kind)
		}
	}
}

// TestConstantTopologyBitEqualLegacy: the constant kind must return the
// legacy fixed round trip, bit-equal, for any seeded access pattern —
// the invariant that lets the machine treat a zero TopologyConfig as
// the paper's network.
func TestConstantTopologyBitEqualLegacy(t *testing.T) {
	const base = 200
	n := NewNetwork(TopologyConfig{}, 16, base)
	r := rng.New(7)
	for i := 0; i < 10000; i++ {
		src := int(r.Intn(64))
		addr := r.Intn(1 << 30)
		if lat := n.RoundTrip(int64(i), src, addr, Bits(ReadReq, 0), Bits(ReadReply, WordBits)); lat != base {
			t.Fatalf("access %d (src %d, addr %d): latency %d, want %d", i, src, addr, lat, base)
		}
	}
	if n.Requests != 10000 {
		t.Errorf("Requests = %d, want 10000", n.Requests)
	}
	if n.NumLinks() != 0 {
		t.Errorf("constant network has %d links", n.NumLinks())
	}
}

// TestTopologySnapshotRoundtrip: a restored network must produce
// byte-identical latencies for any subsequent request stream.
func TestTopologySnapshotRoundtrip(t *testing.T) {
	for _, kind := range routedKinds {
		cfg := TopologyConfig{Kind: kind}
		n := NewNetwork(cfg, 16, 200)
		r := rng.New(99)
		var now int64
		for i := 0; i < 2000; i++ {
			n.RoundTrip(now, int(r.Intn(16)), r.Intn(1<<16), Bits(ReadReq, 0), Bits(ReadReply, WordBits))
			now += r.Intn(2)
		}
		st := n.Snapshot()
		m := NewNetwork(cfg, 16, 200)
		if err := m.Restore(st); err != nil {
			t.Fatalf("%s: Restore: %v", kind, err)
		}
		for i := 0; i < 2000; i++ {
			src := int(r.Intn(16))
			addr := r.Intn(1 << 16)
			a := n.RoundTrip(now, src, addr, Bits(ReadReq, 0), Bits(ReadReply, WordBits))
			b := m.RoundTrip(now, src, addr, Bits(ReadReq, 0), Bits(ReadReply, WordBits))
			if a != b {
				t.Fatalf("%s: post-restore access %d: %d != %d", kind, i, a, b)
			}
			now += r.Intn(2)
		}
		if n.Requests != m.Requests || n.PeakQueue != m.PeakQueue || n.MaxLatency != m.MaxLatency {
			t.Fatalf("%s: counters diverged after restore", kind)
		}
	}
}

func TestTopologyRestoreRejectsBadState(t *testing.T) {
	n := NewNetwork(TopologyConfig{Kind: TopoMesh}, 16, 200)
	st := n.Snapshot()
	st.FreeAt = st.FreeAt[:len(st.FreeAt)-1]
	if err := n.Restore(st); err == nil {
		t.Error("Restore accepted a truncated link array")
	}
	st = n.Snapshot()
	st.Enqueued[0] = 5 // books no longer balance: 5 enqueued, 0 drained+pending
	if err := n.Restore(st); err == nil {
		t.Error("Restore accepted inconsistent queue counters")
	}
}
