// Package net models the interconnection network's accounting.
//
// Following the paper (§3), the network itself is not simulated: every
// shared access has a constant round-trip latency, delivery is ordered,
// and combining is assumed for synchronization. What the paper does
// measure (§6.1) is the bandwidth each application demands, in bits per
// cycle per processor, broken down by message type and including the
// overhead of message headers, results, acknowledgements and
// invalidations. This package provides that accounting.
//
// Sizes are in bits, with the paper's 32-bit word: a header is one word,
// an address one word, integer data one word, and floating-point or
// Load-Double data two words.
package net

import "fmt"

// Message field sizes in bits.
const (
	HeaderBits = 32 // message type, source and destination routing
	AddrBits   = 32
	WordBits   = 32 // one 32-bit data word
	DoubleBits = 64 // Load-Double / floating-point datum
)

// MsgType enumerates the message kinds the accounting distinguishes.
type MsgType int

const (
	ReadReq MsgType = iota
	ReadReply
	WriteReq
	WriteAck
	FaaReq
	FaaReply
	LineReq   // cache line fill request
	LineReply // cache line fill data
	Inval     // invalidation of a cached copy
	InvalAck
	WriteBack // flush of a dirty cache line to memory
	numMsgTypes
)

// NumMsgTypes is the number of message kinds.
const NumMsgTypes = int(numMsgTypes)

var msgNames = [numMsgTypes]string{
	ReadReq: "read-req", ReadReply: "read-reply",
	WriteReq: "write-req", WriteAck: "write-ack",
	FaaReq: "faa-req", FaaReply: "faa-reply",
	LineReq: "line-req", LineReply: "line-reply",
	Inval: "inval", InvalAck: "inval-ack",
	WriteBack: "write-back",
}

func (t MsgType) String() string {
	if int(t) < len(msgNames) {
		return msgNames[t]
	}
	return fmt.Sprintf("msg(%d)", int(t))
}

// Bits returns the size of a message of type t carrying dataBits of
// payload. Requests carry an address; replies carry only header+payload.
func Bits(t MsgType, dataBits int) int64 {
	switch t {
	case ReadReq, LineReq:
		return HeaderBits + AddrBits
	case ReadReply, FaaReply, LineReply:
		return int64(HeaderBits + dataBits)
	case WriteReq, FaaReq, WriteBack:
		return int64(HeaderBits + AddrBits + dataBits)
	case WriteAck, InvalAck:
		return HeaderBits
	case Inval:
		return HeaderBits + AddrBits
	}
	panic(fmt.Sprintf("net: unknown message type %d", int(t)))
}

// Traffic accumulates message counts and bits. The zero value is ready to
// use. Spin traffic (lock and barrier probe loops) is recorded separately
// and excluded from Bits totals, matching the paper's footnote 2.
type Traffic struct {
	Count [numMsgTypes]int64
	bits  [numMsgTypes]int64

	SpinCount int64
	SpinBits  int64
}

// Add records one message of type t with dataBits of payload.
func (tr *Traffic) Add(t MsgType, dataBits int) {
	tr.Count[t]++
	tr.bits[t] += Bits(t, dataBits)
}

// AddSpin records a message belonging to a synchronization spin loop.
func (tr *Traffic) AddSpin(t MsgType, dataBits int) {
	tr.SpinCount++
	tr.SpinBits += Bits(t, dataBits)
}

// Bits returns the total non-spin bits transferred.
func (tr *Traffic) Bits() int64 {
	var sum int64
	for _, b := range tr.bits {
		sum += b
	}
	return sum
}

// BitsOf returns the non-spin bits of one message type.
func (tr *Traffic) BitsOf(t MsgType) int64 { return tr.bits[t] }

// Messages returns the total non-spin message count.
func (tr *Traffic) Messages() int64 {
	var sum int64
	for _, c := range tr.Count {
		sum += c
	}
	return sum
}

// PerCycle returns bandwidth in bits per cycle per processor: the sum of
// forward and return traffic divided over the run, as in the paper's §6.1
// bandwidth figures.
func (tr *Traffic) PerCycle(cycles int64, procs int) float64 {
	if cycles <= 0 || procs <= 0 {
		return 0
	}
	return float64(tr.Bits()) / float64(cycles) / float64(procs)
}

// Merge adds other's counters into tr.
func (tr *Traffic) Merge(other *Traffic) {
	for i := range tr.Count {
		tr.Count[i] += other.Count[i]
		tr.bits[i] += other.bits[i]
	}
	tr.SpinCount += other.SpinCount
	tr.SpinBits += other.SpinBits
}
