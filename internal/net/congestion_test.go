package net

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCongestionDefaults(t *testing.T) {
	c := CongestionConfig{Enabled: true}.withDefaults(64)
	if c.Stages != 6 {
		t.Errorf("stages = %d, want log2(64) = 6", c.Stages)
	}
	if c.HopCycles == 0 || c.ChannelBits == 0 || c.MemCycles == 0 || c.Window == 0 {
		t.Errorf("defaults not filled: %+v", c)
	}
	if got := (CongestionConfig{Enabled: true}).ZeroLoadLatency(64); got != int64(2*6*4+20) {
		t.Errorf("zero-load latency = %d", got)
	}
}

func TestCongestionValidate(t *testing.T) {
	if err := (CongestionConfig{}).Validate(); err != nil {
		t.Errorf("disabled config rejected: %v", err)
	}
	bad := CongestionConfig{Enabled: true, Stages: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative stages accepted")
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	g := NewCongestion(CongestionConfig{Enabled: true, ChannelBits: 8}, 16)
	idle := g.Latency(0)
	// Inject heavy traffic.
	for i := int64(0); i < 1000; i++ {
		g.Add(i, 64)
	}
	loaded := g.Latency(1000)
	if loaded <= idle {
		t.Errorf("loaded latency %d <= idle %d", loaded, idle)
	}
	if g.PeakUtilization <= 0 {
		t.Error("peak utilization not recorded")
	}
	// After a long quiet period the latency must decay back.
	relaxed := g.Latency(1000 + 100*256)
	if relaxed > idle+1 {
		t.Errorf("latency did not decay: %d vs idle %d", relaxed, idle)
	}
}

func TestUtilizationClamped(t *testing.T) {
	g := NewCongestion(CongestionConfig{Enabled: true, ChannelBits: 1}, 1)
	for i := int64(0); i < 10000; i++ {
		g.Add(i, 1000)
	}
	if u := g.Utilization(10000); u > 0.97 {
		t.Errorf("utilization %v above clamp", u)
	}
	// Latency stays finite at the clamp.
	if l := g.Latency(10000); l <= 0 || l > 100000 {
		t.Errorf("latency at saturation = %d", l)
	}
}

// TestZeroTrafficWindow: with no traffic ever injected, the latency at
// any instant — including far in the future, where the decay factor
// underflows — is exactly the zero-load round trip.
func TestZeroTrafficWindow(t *testing.T) {
	g := NewCongestion(CongestionConfig{Enabled: true}, 16)
	zero := CongestionConfig{Enabled: true}.ZeroLoadLatency(16)
	for _, now := range []int64{0, 1, 1000, 1 << 40} {
		if l := g.Latency(now); l != zero {
			t.Errorf("Latency(%d) = %d with no traffic, want zero-load %d", now, l, zero)
		}
	}
	if u := g.Utilization(1 << 41); u != 0 {
		t.Errorf("Utilization = %v with no traffic", u)
	}
	if g.PeakUtilization != 0 {
		t.Errorf("PeakUtilization = %v with no traffic", g.PeakUtilization)
	}
}

// TestSingleMessageBurst: a lone message must never drop latency below
// the zero-load value, and after many idle windows the estimate must
// decay back to exactly zero-load (no sticky residue).
func TestSingleMessageBurst(t *testing.T) {
	g := NewCongestion(CongestionConfig{Enabled: true}, 1)
	zero := g.Latency(0)
	g.Add(10, 128)
	if after := g.Latency(10); after < zero {
		t.Errorf("latency %d dropped below zero-load %d after one message", after, zero)
	}
	if relaxed := g.Latency(10 + 100*256); relaxed != zero {
		t.Errorf("latency %d did not decay back to zero-load %d", relaxed, zero)
	}
}

// TestBandwidthOverflowGuard: absurd injected bit counts (near-MaxInt64
// transfers against a 1-bit channel) must keep the modelled latency
// positive, finite, and clamped — the float result would otherwise
// overflow the int64 conversion, which Go leaves undefined.
func TestBandwidthOverflowGuard(t *testing.T) {
	g := NewCongestion(CongestionConfig{Enabled: true, ChannelBits: 1, Window: 1}, 1)
	for i := 0; i < 10; i++ {
		g.Add(5, math.MaxInt64/4)
	}
	l := g.Latency(5)
	if l <= 0 || l > MaxRoundTrip {
		t.Errorf("latency under overflow load = %d, want in (0, %d]", l, MaxRoundTrip)
	}
	// Utilization stays clamped even at this load.
	if u := g.Utilization(5); u > 0.97 {
		t.Errorf("utilization %v above clamp", u)
	}
}

// Property: latency is always at least the zero-load value and monotone
// under added load at a fixed instant.
func TestLatencyMonotoneProperty(t *testing.T) {
	f := func(loads []uint16) bool {
		g := NewCongestion(CongestionConfig{Enabled: true}, 16)
		zero := g.Latency(0)
		prev := zero
		now := int64(1)
		for _, b := range loads {
			g.Add(now, int64(b%512))
			l := g.Latency(now) // same instant: no decay between samples
			if l < zero || l < prev-1 {
				return false
			}
			prev = l
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
