package net_test

import (
	"math/rand"
	"testing"

	"mtsim/internal/net"
)

// These are property tests for the fault model's contracts (the
// comments at the top of faults.go): delivery outcomes are a pure
// function of (Seed, access index), no access is ever lost permanently,
// and the recovery protocol's added delay is bounded by the configured
// timeout/backoff constants.

// propConfigs enumerates fault configurations spanning the parameter
// space: each distribution, light and harsh rates, and degenerate
// protocols (tiny retry budgets, certain drops).
func propConfigs() map[string]net.FaultConfig {
	return map[string]net.FaultConfig{
		"light": {Enabled: true, Seed: 1,
			DropRate: 0.01, DupRate: 0.01, DelayRate: 0.02},
		"harsh": {Enabled: true, Seed: 99,
			DropRate: 0.4, DupRate: 0.3, DelayRate: 0.4},
		"uniform": {Enabled: true, Seed: 3, Dist: net.DistUniform, Spread: 40,
			DropRate: 0.1, DelayRate: 0.1},
		"hot-spot": {Enabled: true, Seed: 4, Dist: net.DistHotSpot, HotRate: 0.2,
			DropRate: 0.1, DupRate: 0.1},
		"all-drops":    {Enabled: true, Seed: 5, DropRate: 1},
		"one-retry":    {Enabled: true, Seed: 6, DropRate: 0.5, MaxRetries: 1},
		"slow-timeout": {Enabled: true, Seed: 7, DropRate: 0.3, DelayRate: 0.3, TimeoutCycles: 1000},
	}
}

const (
	propLatency  = 50
	propAccesses = 2000
)

// TestFaultPlanPurity asserts that the outcome of access k is a pure
// function of (Seed, k, lat): two plans with the same config yield
// bit-identical recovery overheads for every access index, even when
// their issue times differ wildly. This purity is what makes a faulted
// run memoizable and the parallel engine byte-identical at any width.
func TestFaultPlanPurity(t *testing.T) {
	for name, cfg := range propConfigs() {
		t.Run(name, func(t *testing.T) {
			a := net.NewFaultPlan(cfg, propLatency)
			b := net.NewFaultPlan(cfg, propLatency)
			issueA, issueB := int64(0), int64(1_000_000)
			r := rand.New(rand.NewSource(int64(cfg.Seed)))
			for k := 0; k < propAccesses; k++ {
				// Different (and differently-spaced) issue times per plan:
				// only the relative outcome may depend on them.
				issueA += int64(r.Intn(100))
				issueB += int64(r.Intn(3))
				readyA := a.Deliver(issueA, propLatency)
				readyB := b.Deliver(issueB, propLatency)
				if readyA-issueA != readyB-issueB {
					t.Fatalf("access %d: round trip %d at issue %d but %d at issue %d; outcome must be pure in (seed, index)",
						k, readyA-issueA, issueA, readyB-issueB, issueB)
				}
				if a.LastOverhead() != b.LastOverhead() {
					t.Fatalf("access %d: overhead %d vs %d", k, a.LastOverhead(), b.LastOverhead())
				}
			}
			if a.Stats != b.Stats {
				t.Errorf("stats diverged:\n%+v\n%+v", a.Stats, b.Stats)
			}
		})
	}
}

// TestFaultPlanNeverLosesAccesses asserts the termination contract:
// every Deliver returns a finite ready cycle no earlier than a one-way
// trip could allow, even at DropRate 1 — the post-MaxRetries attempt
// rides the escorted reliable path instead of retrying forever.
func TestFaultPlanNeverLosesAccesses(t *testing.T) {
	for name, cfg := range propConfigs() {
		t.Run(name, func(t *testing.T) {
			f := net.NewFaultPlan(cfg, propLatency)
			for k := 0; k < propAccesses; k++ {
				issue := int64(k) * 17
				ready := f.Deliver(issue, propLatency)
				if ready <= issue {
					t.Fatalf("access %d: ready %d <= issue %d; reply lost", k, ready, issue)
				}
			}
			if cfg.DropRate == 1 && f.Stats.Exhausted != propAccesses {
				t.Errorf("DropRate 1: %d of %d accesses exhausted; all should fall back to the escorted path",
					f.Stats.Exhausted, propAccesses)
			}
		})
	}
}

// TestFaultPlanDelayBounded asserts the worst-case delivery bound
// implied by the protocol constants: at most MaxRetries timeouts each
// waiting TimeoutCycles + a capped backoff, plus the (possibly
// degraded) round trip and one in-timeout delay. LastOverhead must
// account for exactly the cycles beyond issue + sampled round trip.
func TestFaultPlanDelayBounded(t *testing.T) {
	for name, cfg := range propConfigs() {
		t.Run(name, func(t *testing.T) {
			f := net.NewFaultPlan(cfg, propLatency)
			eff := f.Config() // defaults filled in
			maxLat := int64(propLatency)
			switch eff.Dist {
			case net.DistUniform:
				maxLat += int64(eff.Spread)
			case net.DistHotSpot:
				maxLat *= int64(eff.HotFactor)
			}
			bound := int64(eff.MaxRetries)*int64(eff.TimeoutCycles+eff.BackoffMax) +
				maxLat + int64(eff.DelayCycles)
			for k := 0; k < propAccesses; k++ {
				issue := int64(k) * 31
				ready := f.Deliver(issue, propLatency)
				if trip := ready - issue; trip > bound {
					t.Fatalf("access %d: round trip %d exceeds protocol bound %d", k, trip, bound)
				}
				if ov := f.LastOverhead(); ov < 0 {
					t.Fatalf("access %d: negative recovery overhead %d", k, ov)
				}
				if eff.Dist == net.DistConstant {
					// With a constant round trip the decomposition is exact:
					// ready = issue + latency + recovery overhead.
					if want := issue + propLatency + f.LastOverhead(); ready != want {
						t.Fatalf("access %d: ready %d, want issue+lat+overhead = %d", k, ready, want)
					}
				}
			}
		})
	}
}
