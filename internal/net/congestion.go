package net

import (
	"fmt"
	"math"
)

// CongestionConfig parameterizes the optional load-dependent latency
// model — the paper's stated future work (§6.1: "Simulations using
// realistic networks are needed to fully explore this issue"). It models
// a multistage packet-switched butterfly (the NYU Ultracomputer / RP3
// style network the paper assumes, §3) with an open-queueing
// approximation: each of the 2xStages hops adds an M/D/1 waiting time
// that grows with the measured channel utilization, so the round-trip
// latency responds to the bandwidth the program actually demands.
//
// The zero value disables the model (constant latency, as in the paper).
type CongestionConfig struct {
	// Enabled turns the model on.
	Enabled bool
	// Stages is the number of network stages each way. Zero means
	// ceil(log2(procs)), the butterfly's natural depth.
	Stages int
	// HopCycles is the zero-load per-stage delay (default 4).
	HopCycles int
	// ChannelBits is the per-channel capacity in bits per cycle
	// (default 16; the paper's §6.1 discusses 2-bit channels as a lower
	// bound for cached codes).
	ChannelBits int
	// MemCycles is the memory-module service time (default 20).
	MemCycles int
	// Window is the utilization-averaging window in cycles (default 256).
	Window int
}

// withDefaults fills zero fields.
func (c CongestionConfig) withDefaults(procs int) CongestionConfig {
	if c.Stages == 0 {
		c.Stages = 1
		for 1<<uint(c.Stages) < procs {
			c.Stages++
		}
	}
	if c.HopCycles == 0 {
		c.HopCycles = 4
	}
	if c.ChannelBits == 0 {
		c.ChannelBits = 16
	}
	if c.MemCycles == 0 {
		c.MemCycles = 20
	}
	if c.Window == 0 {
		c.Window = 256
	}
	return c
}

// Validate reports configuration errors.
func (c CongestionConfig) Validate() error {
	if !c.Enabled {
		return nil
	}
	switch {
	case c.Stages < 0:
		return fmt.Errorf("net: congestion Stages %d < 0", c.Stages)
	case c.HopCycles < 0:
		return fmt.Errorf("net: congestion HopCycles %d < 0", c.HopCycles)
	case c.ChannelBits < 0:
		return fmt.Errorf("net: congestion ChannelBits %d < 0", c.ChannelBits)
	case c.MemCycles < 0 || c.Window < 0:
		return fmt.Errorf("net: congestion MemCycles/Window must be >= 0")
	}
	return nil
}

// ZeroLoadLatency is the round trip with empty queues.
func (c CongestionConfig) ZeroLoadLatency(procs int) int64 {
	d := c.withDefaults(procs)
	return int64(2*d.Stages*d.HopCycles + d.MemCycles)
}

// Congestion is the runtime state: an exponentially-decayed estimate of
// the per-processor injection rate, queried for the current round-trip
// latency. It is owned by one simulation and is not safe for concurrent
// use.
type Congestion struct {
	cfg   CongestionConfig
	procs int

	lastUpdate int64
	windowBits float64 // decayed bits in the averaging window
	msgs       float64 // decayed message count (for mean message size)

	// PeakUtilization records the highest channel utilization observed.
	PeakUtilization float64
}

// NewCongestion builds the runtime state for a procs-processor machine.
func NewCongestion(cfg CongestionConfig, procs int) *Congestion {
	return &Congestion{cfg: cfg.withDefaults(procs), procs: procs}
}

// decay ages the window to time now.
func (g *Congestion) decay(now int64) {
	dt := now - g.lastUpdate
	if dt <= 0 {
		return
	}
	g.lastUpdate = now
	f := math.Exp(-float64(dt) / float64(g.cfg.Window))
	g.windowBits *= f
	g.msgs *= f
}

// Add records bits injected at time now.
func (g *Congestion) Add(now, bits int64) {
	g.decay(now)
	g.windowBits += float64(bits)
	g.msgs++
}

// Utilization returns the estimated per-channel utilization in [0, 0.97].
func (g *Congestion) Utilization(now int64) float64 {
	g.decay(now)
	// Per-processor injection rate over the window, normalized by the
	// channel capacity.
	rate := g.windowBits / float64(g.cfg.Window) / float64(g.procs)
	u := rate / float64(g.cfg.ChannelBits)
	if u > 0.97 {
		u = 0.97
	}
	if u > g.PeakUtilization {
		g.PeakUtilization = u
	}
	return u
}

// MaxRoundTrip bounds the modelled round trip. The M/D/1 wait scales
// with the mean message size, so a pathological window — one enormous
// accounted transfer against a tiny channel — could otherwise push the
// float latency past what an int64 conversion can represent (which in
// Go is undefined, not saturating). No simulation survives a round trip
// this long anyway: MaxCycles fires first.
const MaxRoundTrip = int64(1) << 32

// Latency returns the current round-trip latency: zero-load hops plus an
// M/D/1 waiting time per hop that diverges as utilization approaches 1.
// The result is clamped to [0, MaxRoundTrip].
func (g *Congestion) Latency(now int64) int64 {
	u := g.Utilization(now)
	service := 2.0 // cycles to forward an average message at full rate
	if g.msgs > 0.5 {
		service = g.windowBits / g.msgs / float64(g.cfg.ChannelBits)
	}
	wait := u / (2 * (1 - u)) * service // M/D/1 mean wait
	perHop := float64(g.cfg.HopCycles) + wait
	lat := 2*float64(g.cfg.Stages)*perHop + float64(g.cfg.MemCycles)
	if lat >= float64(MaxRoundTrip) || math.IsNaN(lat) {
		return MaxRoundTrip
	}
	return int64(lat + 0.5)
}
