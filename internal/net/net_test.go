package net

import (
	"testing"
	"testing/quick"
)

func TestBits(t *testing.T) {
	cases := []struct {
		t    MsgType
		data int
		want int64
	}{
		{ReadReq, 0, 64},
		{ReadReply, WordBits, 64},
		{ReadReply, DoubleBits, 96},
		{WriteReq, WordBits, 96},
		{WriteReq, DoubleBits, 128},
		{WriteAck, 0, 32},
		{FaaReq, WordBits, 96},
		{FaaReply, WordBits, 64},
		{LineReq, 0, 64},
		{LineReply, 4 * DoubleBits, 32 + 256},
		{Inval, 0, 64},
		{InvalAck, 0, 32},
		{WriteBack, 4 * DoubleBits, 64 + 256},
	}
	for _, c := range cases {
		if got := Bits(c.t, c.data); got != c.want {
			t.Errorf("Bits(%s, %d) = %d, want %d", c.t, c.data, got, c.want)
		}
	}
}

func TestMsgTypeNames(t *testing.T) {
	for i := 0; i < NumMsgTypes; i++ {
		if MsgType(i).String() == "" {
			t.Errorf("message type %d unnamed", i)
		}
	}
}

func TestTrafficAccumulation(t *testing.T) {
	var tr Traffic
	tr.Add(ReadReq, 0)
	tr.Add(ReadReply, WordBits)
	tr.AddSpin(ReadReq, 0)
	if tr.Messages() != 2 {
		t.Errorf("messages = %d", tr.Messages())
	}
	if tr.Bits() != 128 {
		t.Errorf("bits = %d", tr.Bits())
	}
	if tr.SpinCount != 1 || tr.SpinBits != 64 {
		t.Errorf("spin = %d msgs %d bits", tr.SpinCount, tr.SpinBits)
	}
	if got := tr.PerCycle(64, 1); got != 2.0 {
		t.Errorf("PerCycle = %v", got)
	}
	if got := tr.PerCycle(64, 2); got != 1.0 {
		t.Errorf("PerCycle(2 procs) = %v", got)
	}
	if got := tr.PerCycle(0, 1); got != 0 {
		t.Errorf("PerCycle(0 cycles) = %v", got)
	}
	if got := tr.BitsOf(ReadReq); got != 64 {
		t.Errorf("BitsOf = %d", got)
	}
}

func TestTrafficMerge(t *testing.T) {
	var a, b Traffic
	a.Add(WriteReq, WordBits)
	b.Add(WriteReq, DoubleBits)
	b.AddSpin(Inval, 0)
	a.Merge(&b)
	if a.Count[WriteReq] != 2 {
		t.Errorf("count = %d", a.Count[WriteReq])
	}
	if a.Bits() != 96+128 {
		t.Errorf("bits = %d", a.Bits())
	}
	if a.SpinCount != 1 {
		t.Errorf("spin = %d", a.SpinCount)
	}
}

// Property: Bits is always positive and monotone in payload for
// data-carrying messages; spin traffic never leaks into Bits().
func TestTrafficProperties(t *testing.T) {
	f := func(kind uint8, data uint8, spin bool) bool {
		mt := MsgType(int(kind) % NumMsgTypes)
		payload := int(data%4) * WordBits
		var tr Traffic
		if spin {
			tr.AddSpin(mt, payload)
			return tr.Bits() == 0 && tr.SpinBits > 0
		}
		tr.Add(mt, payload)
		return tr.Bits() >= HeaderBits && tr.Messages() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
