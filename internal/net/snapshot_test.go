package net

import (
	"reflect"
	"testing"
)

func TestTrafficSnapshotRestore(t *testing.T) {
	var a Traffic
	a.Add(ReadReq, 0)
	a.Add(ReadReply, WordBits)
	a.Add(WriteBack, DoubleBits)
	a.AddSpin(FaaReq, WordBits)

	var b Traffic
	b.Restore(a.Snapshot())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("restored traffic differs: %+v vs %+v", a, b)
	}
	// Totals (which read the unexported bits array) must agree too.
	if a.Bits() != b.Bits() || a.Messages() != b.Messages() {
		t.Fatal("derived totals differ after restore")
	}
}

func TestCongestionSnapshotRestore(t *testing.T) {
	cfg := CongestionConfig{Enabled: true, Window: 128}
	a := NewCongestion(cfg, 16)
	for i := int64(0); i < 500; i += 7 {
		a.Add(i, 64+i%5)
		a.Latency(i + 3)
	}

	b := NewCongestion(cfg, 16)
	b.Restore(a.Snapshot())

	// Identical state must yield bit-identical future samples: the
	// decayed floats are restored via their exact values.
	for i := int64(500); i < 900; i += 11 {
		a.Add(i, 96)
		b.Add(i, 96)
		if la, lb := a.Latency(i+5), b.Latency(i+5); la != lb {
			t.Fatalf("latency diverged at %d: %d vs %d", i, la, lb)
		}
	}
	if a.PeakUtilization != b.PeakUtilization {
		t.Fatal("peak utilization diverged")
	}
}

func TestFaultPlanSnapshotRestore(t *testing.T) {
	cfg := FaultConfig{
		Enabled: true, Seed: 42, Dist: DistUniform, Spread: 30,
		DropRate: 0.2, DupRate: 0.1, DelayRate: 0.15,
	}
	a := NewFaultPlan(cfg, 200)
	for i := int64(0); i < 300; i++ {
		a.Deliver(i*10, 200)
	}

	st := a.Snapshot()
	b := NewFaultPlan(cfg, 200)
	if err := b.Restore(st); err != nil {
		t.Fatalf("Restore: %v", err)
	}

	// Every future delivery — outcome, overhead, stats — must match.
	for i := int64(300); i < 600; i++ {
		ra, rb := a.Deliver(i*10, 200), b.Deliver(i*10, 200)
		if ra != rb {
			t.Fatalf("delivery %d diverged: %d vs %d", i, ra, rb)
		}
		if a.LastOverhead() != b.LastOverhead() {
			t.Fatalf("overhead diverged at %d", i)
		}
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats, b.Stats)
	}
}

func TestFaultPlanRestoreRejectsZeroState(t *testing.T) {
	p := NewFaultPlan(FaultConfig{Enabled: true, Seed: 1}, 100)
	if err := p.Restore(FaultPlanState{Root: 0}); err == nil {
		t.Fatal("zero rng state accepted")
	}
}
