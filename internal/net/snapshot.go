package net

import (
	"fmt"

	"mtsim/internal/rng"
)

// This file exports the package's mutable run state for the checkpoint
// layer. Each runtime (Traffic, Congestion, FaultPlan) gets a plain
// state struct that captures exactly the fields its behavior depends
// on; configuration is rebuilt by the restoring side and is not part of
// the state. Floats are carried as float64 values and must be encoded
// bit-exactly (snap.Encoder.F64) — the congestion model's decayed
// window is extremely sensitive to rounding.

// TrafficState is the serializable state of a Traffic accumulator
// (Count is exported on Traffic itself, but bits is not — the state
// struct carries both so a restore is a single assignment).
type TrafficState struct {
	Count [NumMsgTypes]int64
	Bits  [NumMsgTypes]int64

	SpinCount int64
	SpinBits  int64
}

// Snapshot captures the accumulator.
func (tr *Traffic) Snapshot() TrafficState {
	return TrafficState{Count: tr.Count, Bits: tr.bits, SpinCount: tr.SpinCount, SpinBits: tr.SpinBits}
}

// Restore overwrites the accumulator.
func (tr *Traffic) Restore(st TrafficState) {
	tr.Count = st.Count
	tr.bits = st.Bits
	tr.SpinCount = st.SpinCount
	tr.SpinBits = st.SpinBits
}

// CongestionState is the serializable state of a Congestion runtime.
// WindowBits and Msgs are the exponentially-decayed averages; restoring
// them bit-exactly (together with LastUpdate) reproduces every future
// latency sample exactly.
type CongestionState struct {
	LastUpdate      int64
	WindowBits      float64
	Msgs            float64
	PeakUtilization float64
}

// Snapshot captures the runtime state.
func (g *Congestion) Snapshot() CongestionState {
	return CongestionState{
		LastUpdate:      g.lastUpdate,
		WindowBits:      g.windowBits,
		Msgs:            g.msgs,
		PeakUtilization: g.PeakUtilization,
	}
}

// Restore overwrites the runtime state.
func (g *Congestion) Restore(st CongestionState) {
	g.lastUpdate = st.LastUpdate
	g.windowBits = st.WindowBits
	g.msgs = st.Msgs
	g.PeakUtilization = st.PeakUtilization
}

// TopologyState is the serializable state of a Network runtime: every
// link's FIFO queue (busy-until time, counters, and the departure times
// of in-flight messages) plus the observability counters. Configuration
// and geometry are rebuilt by the restoring side from the effective
// TopologyConfig.
type TopologyState struct {
	FreeAt   []int64
	Enqueued []int64
	Drained  []int64
	Pending  [][]int64

	Requests   int64
	PeakQueue  int64
	MaxLatency int64
}

// Snapshot captures the network's run state.
func (n *Network) Snapshot() TopologyState {
	st := TopologyState{
		FreeAt:     make([]int64, len(n.links)),
		Enqueued:   make([]int64, len(n.links)),
		Drained:    make([]int64, len(n.links)),
		Pending:    make([][]int64, len(n.links)),
		Requests:   n.Requests,
		PeakQueue:  n.PeakQueue,
		MaxLatency: n.MaxLatency,
	}
	for i := range n.links {
		lk := &n.links[i]
		st.FreeAt[i] = lk.freeAt
		st.Enqueued[i] = lk.enqueued
		st.Drained[i] = lk.drained
		if len(lk.pending) > 0 {
			st.Pending[i] = append([]int64(nil), lk.pending...)
		}
	}
	return st
}

// Restore overwrites the network's run state. The link count is pinned
// by the configuration's geometry, so a mismatch means the snapshot was
// taken under a different topology.
func (n *Network) Restore(st TopologyState) error {
	if len(st.FreeAt) != len(n.links) || len(st.Enqueued) != len(n.links) ||
		len(st.Drained) != len(n.links) || len(st.Pending) != len(n.links) {
		return fmt.Errorf("net: topology snapshot has %d links, network has %d", len(st.FreeAt), len(n.links))
	}
	for i := range n.links {
		lk := &n.links[i]
		lk.freeAt = st.FreeAt[i]
		lk.enqueued = st.Enqueued[i]
		lk.drained = st.Drained[i]
		lk.pending = append(lk.pending[:0], st.Pending[i]...)
		if lk.enqueued != lk.drained+int64(len(lk.pending)) {
			return fmt.Errorf("net: topology snapshot link %d counters inconsistent (%d enqueued != %d drained + %d pending)",
				i, lk.enqueued, lk.drained, len(lk.pending))
		}
	}
	n.Requests = st.Requests
	n.PeakQueue = st.PeakQueue
	n.MaxLatency = st.MaxLatency
	return nil
}

// FaultPlanState is the serializable state of a FaultPlan. Because Fork
// derives each access's substream from the root's state *without
// advancing it* (see rng.Fork), the root state plus the sequence
// counter pin every future delivery decision; no per-substream position
// needs saving.
type FaultPlanState struct {
	Root         uint64
	Seq          uint64
	LastOverhead int64
	Stats        FaultStats
}

// Snapshot captures the plan's run state.
func (f *FaultPlan) Snapshot() FaultPlanState {
	return FaultPlanState{Root: f.root.State(), Seq: f.seq, LastOverhead: f.lastOverhead, Stats: f.Stats}
}

// Restore overwrites the plan's run state. The root state of a live
// generator is never zero; a zero means a corrupt or hand-built
// snapshot.
func (f *FaultPlan) Restore(st FaultPlanState) error {
	if st.Root == 0 {
		return fmt.Errorf("net: fault-plan snapshot has zero rng state")
	}
	f.root = rng.FromState(st.Root)
	f.seq = st.Seq
	f.lastOverhead = st.LastOverhead
	f.Stats = st.Stats
	return nil
}
