package net

import (
	"fmt"

	"mtsim/internal/rng"
)

// This file exports the package's mutable run state for the checkpoint
// layer. Each runtime (Traffic, Congestion, FaultPlan) gets a plain
// state struct that captures exactly the fields its behavior depends
// on; configuration is rebuilt by the restoring side and is not part of
// the state. Floats are carried as float64 values and must be encoded
// bit-exactly (snap.Encoder.F64) — the congestion model's decayed
// window is extremely sensitive to rounding.

// TrafficState is the serializable state of a Traffic accumulator
// (Count is exported on Traffic itself, but bits is not — the state
// struct carries both so a restore is a single assignment).
type TrafficState struct {
	Count [NumMsgTypes]int64
	Bits  [NumMsgTypes]int64

	SpinCount int64
	SpinBits  int64
}

// Snapshot captures the accumulator.
func (tr *Traffic) Snapshot() TrafficState {
	return TrafficState{Count: tr.Count, Bits: tr.bits, SpinCount: tr.SpinCount, SpinBits: tr.SpinBits}
}

// Restore overwrites the accumulator.
func (tr *Traffic) Restore(st TrafficState) {
	tr.Count = st.Count
	tr.bits = st.Bits
	tr.SpinCount = st.SpinCount
	tr.SpinBits = st.SpinBits
}

// CongestionState is the serializable state of a Congestion runtime.
// WindowBits and Msgs are the exponentially-decayed averages; restoring
// them bit-exactly (together with LastUpdate) reproduces every future
// latency sample exactly.
type CongestionState struct {
	LastUpdate      int64
	WindowBits      float64
	Msgs            float64
	PeakUtilization float64
}

// Snapshot captures the runtime state.
func (g *Congestion) Snapshot() CongestionState {
	return CongestionState{
		LastUpdate:      g.lastUpdate,
		WindowBits:      g.windowBits,
		Msgs:            g.msgs,
		PeakUtilization: g.PeakUtilization,
	}
}

// Restore overwrites the runtime state.
func (g *Congestion) Restore(st CongestionState) {
	g.lastUpdate = st.LastUpdate
	g.windowBits = st.WindowBits
	g.msgs = st.Msgs
	g.PeakUtilization = st.PeakUtilization
}

// FaultPlanState is the serializable state of a FaultPlan. Because Fork
// derives each access's substream from the root's state *without
// advancing it* (see rng.Fork), the root state plus the sequence
// counter pin every future delivery decision; no per-substream position
// needs saving.
type FaultPlanState struct {
	Root         uint64
	Seq          uint64
	LastOverhead int64
	Stats        FaultStats
}

// Snapshot captures the plan's run state.
func (f *FaultPlan) Snapshot() FaultPlanState {
	return FaultPlanState{Root: f.root.State(), Seq: f.seq, LastOverhead: f.lastOverhead, Stats: f.Stats}
}

// Restore overwrites the plan's run state. The root state of a live
// generator is never zero; a zero means a corrupt or hand-built
// snapshot.
func (f *FaultPlan) Restore(st FaultPlanState) error {
	if st.Root == 0 {
		return fmt.Errorf("net: fault-plan snapshot has zero rng state")
	}
	f.root = rng.FromState(st.Root)
	f.seq = st.Seq
	f.lastOverhead = st.LastOverhead
	f.Stats = st.Stats
	return nil
}
