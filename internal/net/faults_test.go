package net

import (
	"testing"
)

func TestFaultConfigDefaults(t *testing.T) {
	c := FaultConfig{Enabled: true}.WithDefaults(200)
	if c.DelayCycles != 200 || c.TimeoutCycles != 800 || c.MaxRetries != 8 ||
		c.BackoffBase != 100 || c.BackoffMax != 1600 || c.HotFactor != 4 {
		t.Errorf("defaults not filled as documented: %+v", c)
	}
	// Disabled configs pass through untouched.
	if got := (FaultConfig{}).WithDefaults(200); got != (FaultConfig{}) {
		t.Errorf("disabled config mutated by WithDefaults: %+v", got)
	}
}

func TestFaultConfigValidate(t *testing.T) {
	if err := (FaultConfig{}).Validate(); err != nil {
		t.Errorf("disabled config rejected: %v", err)
	}
	bad := []FaultConfig{
		{Enabled: true, Dist: numDists},
		{Enabled: true, Spread: -1},
		{Enabled: true, DropRate: 1.5},
		{Enabled: true, DupRate: -0.1},
		{Enabled: true, DelayRate: 2},
		{Enabled: true, HotRate: -1},
		{Enabled: true, HotFactor: -1},
		{Enabled: true, DelayCycles: -1},
		{Enabled: true, TimeoutCycles: -1},
		{Enabled: true, MaxRetries: -1},
		{Enabled: true, BackoffBase: -1},
		{Enabled: true, BackoffMax: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d (%+v): accepted", i, c)
		}
	}
	if err := (FaultConfig{Enabled: true, DropRate: 0.5, DupRate: 1}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestDeliverCleanPath: with every knob at zero an enabled plan is
// timing-neutral — reply at issue+lat, no stats.
func TestDeliverCleanPath(t *testing.T) {
	f := NewFaultPlan(FaultConfig{Enabled: true, Seed: 3}, 200)
	for i := int64(0); i < 100; i++ {
		if got := f.Deliver(i*10, 200); got != i*10+200 {
			t.Fatalf("Deliver(%d, 200) = %d, want %d", i*10, got, i*10+200)
		}
	}
	if f.Stats != (FaultStats{}) {
		t.Errorf("clean plan accumulated stats: %+v", f.Stats)
	}
}

// TestDeliverDeterministic: two plans with the same seed produce the
// same delivery schedule; a different seed produces a different one.
func TestDeliverDeterministic(t *testing.T) {
	cfg := FaultConfig{Enabled: true, Seed: 7, DropRate: 0.3, DupRate: 0.2, DelayRate: 0.2}
	a, b := NewFaultPlan(cfg, 100), NewFaultPlan(cfg, 100)
	diffSeed := cfg
	diffSeed.Seed = 8
	c := NewFaultPlan(diffSeed, 100)
	divergent := false
	for i := int64(0); i < 500; i++ {
		va, vb := a.Deliver(i, 100), b.Deliver(i, 100)
		if va != vb {
			t.Fatalf("access %d: same seed delivered at %d vs %d", i, va, vb)
		}
		if c.Deliver(i, 100) != va {
			divergent = true
		}
	}
	if a.Stats != b.Stats {
		t.Errorf("same seed, different stats: %+v vs %+v", a.Stats, b.Stats)
	}
	if !divergent {
		t.Error("different seed never changed a delivery time")
	}
}

// TestDeliverDropRetriesWithBackoff: with DropRate 1 every attempt is
// lost; the plan must walk exactly MaxRetries timeouts with doubling,
// capped backoff, then deliver on the escorted path.
func TestDeliverDropRetriesWithBackoff(t *testing.T) {
	cfg := FaultConfig{
		Enabled: true, Seed: 1, DropRate: 1,
		TimeoutCycles: 400, MaxRetries: 4, BackoffBase: 50, BackoffMax: 120,
	}
	f := NewFaultPlan(cfg, 100)
	got := f.Deliver(1000, 100)
	// Backoffs: 50, 100, 120 (capped), 120. Four timeouts of 400 each.
	wantBackoff := int64(50 + 100 + 120 + 120)
	want := 1000 + 4*400 + wantBackoff + 100
	if got != want {
		t.Errorf("Deliver = %d, want %d", got, want)
	}
	st := f.Stats
	if st.Drops != 4 || st.Timeouts != 4 || st.Retries != 4 || st.Exhausted != 1 {
		t.Errorf("stats = %+v, want 4 drops/timeouts/retries and 1 exhausted", st)
	}
	if st.BackoffCycles != wantBackoff {
		t.Errorf("BackoffCycles = %d, want %d", st.BackoffCycles, wantBackoff)
	}
}

// TestDeliverDelayAndDup: a delayed reply inside the timeout arrives
// late but is not retried; a delay past the timeout forces a spurious
// retry and dedups the late original.
func TestDeliverDelayAndDup(t *testing.T) {
	// Delay within the timeout window: +DelayCycles, no retry.
	in := NewFaultPlan(FaultConfig{
		Enabled: true, Seed: 1, DelayRate: 1, DelayCycles: 50, TimeoutCycles: 400,
	}, 100)
	if got := in.Deliver(0, 100); got != 150 {
		t.Errorf("delayed reply at %d, want 150", got)
	}
	if in.Stats.Delays != 1 || in.Stats.Retries != 0 {
		t.Errorf("in-window delay stats: %+v", in.Stats)
	}

	// Delay past the timeout: spurious retry, late original deduped.
	// Every attempt is delayed, so the retries exhaust and the escorted
	// attempt delivers at start+lat.
	over := NewFaultPlan(FaultConfig{
		Enabled: true, Seed: 1, DelayRate: 1, DelayCycles: 1000,
		TimeoutCycles: 400, MaxRetries: 2, BackoffBase: 10, BackoffMax: 10,
	}, 100)
	got := over.Deliver(0, 100)
	want := int64(2*(400+10) + 100)
	if got != want {
		t.Errorf("over-timeout delivery at %d, want %d", got, want)
	}
	st := over.Stats
	if st.Timeouts != 2 || st.Dups != 2 || st.Delays != 2 || st.Exhausted != 1 {
		t.Errorf("over-timeout stats: %+v", st)
	}

	// Pure duplication: no timing effect, counted once per duplicate.
	dup := NewFaultPlan(FaultConfig{Enabled: true, Seed: 1, DupRate: 1}, 100)
	if got := dup.Deliver(7, 100); got != 107 {
		t.Errorf("duplicated reply at %d, want 107", got)
	}
	if dup.Stats.Dups != 1 {
		t.Errorf("dup stats: %+v", dup.Stats)
	}
}

// TestSampleLatencyDistributions checks the uniform bounds and the
// hot-spot multiplier.
func TestSampleLatencyDistributions(t *testing.T) {
	uni := NewFaultPlan(FaultConfig{Enabled: true, Seed: 5, Dist: DistUniform, Spread: 40}, 100)
	varied := false
	for i := 0; i < 500; i++ {
		got := uni.Deliver(0, 100)
		if got < 60 || got > 140 {
			t.Fatalf("uniform delivery %d outside [60, 140]", got)
		}
		if got != 100 {
			varied = true
		}
	}
	if !varied {
		t.Error("uniform spread never varied the latency")
	}

	hot := NewFaultPlan(FaultConfig{Enabled: true, Seed: 5, Dist: DistHotSpot, HotRate: 0.5, HotFactor: 3}, 100)
	sawHot, sawCold := false, false
	for i := 0; i < 500; i++ {
		switch hot.Deliver(0, 100) {
		case 100:
			sawCold = true
		case 300:
			sawHot = true
		default:
			t.Fatal("hot-spot produced a latency that is neither cold nor hot")
		}
	}
	if !sawHot || !sawCold {
		t.Errorf("hot-spot mix degenerate: hot=%v cold=%v", sawHot, sawCold)
	}
	if hot.Stats.HotAccesses == 0 {
		t.Error("hot accesses not counted")
	}
}

// TestDeliverRatesApproximate: observed drop frequency tracks the
// configured rate (the rng stream is uniform enough per access).
func TestDeliverRatesApproximate(t *testing.T) {
	cfg := FaultConfig{Enabled: true, Seed: 11, DropRate: 0.2, MaxRetries: 1}
	f := NewFaultPlan(cfg, 100)
	const n = 20000
	for i := int64(0); i < n; i++ {
		f.Deliver(i, 100)
	}
	frac := float64(f.Stats.Drops) / n
	if frac < 0.17 || frac > 0.23 {
		t.Errorf("observed drop rate %.3f, want ~0.2", frac)
	}
}

func TestDistString(t *testing.T) {
	if DistConstant.String() != "constant" || DistUniform.String() != "uniform" ||
		DistHotSpot.String() != "hot-spot" {
		t.Error("dist names wrong")
	}
	if DelayDist(99).String() == "" {
		t.Error("unknown dist has empty name")
	}
}
