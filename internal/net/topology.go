package net

import (
	"fmt"
	"strings"
)

// This file is the pluggable interconnect-topology model: the step past
// the butterfly congestion approximation (congestion.go) toward the
// "simulations using realistic networks" the paper calls for in §6.1.
// Where the congestion model estimates a single utilization figure for
// the whole fabric, a Topology routes every shared-memory round trip
// over an explicit link graph — 2D mesh with dimension-order routing,
// fat-tree with up/down routing through the least common ancestor, or a
// dragonfly-style two-level direct network — and charges each hop the
// waiting time of that link's FIFO queue. Latency is therefore a
// function of where the traffic goes, not just how much there is.
//
// Everything is deterministic: routes are pure functions of (source,
// address), queues are FIFO with serialization-time service, and there
// is no randomness anywhere in the model, so simulated runs stay
// byte-identical and memoizable.

// TopologyKind selects the link graph.
type TopologyKind int

const (
	// TopoConstant is the paper's network: a fixed round trip, no links,
	// no contention. It is the zero value, so a zero TopologyConfig
	// reproduces the legacy constant-latency machine exactly.
	TopoConstant TopologyKind = iota
	// TopoMesh is a 2D mesh with deterministic dimension-order (X then
	// Y) routing.
	TopoMesh
	// TopoFatTree is a binary fat-tree: route up to the least common
	// ancestor and back down, with link capacity doubling toward the
	// root.
	TopoFatTree
	// TopoDragonfly is a dragonfly-style two-level direct network:
	// all-to-all groups of routers, one global link between each group
	// pair, minimal local-global-local routing.
	TopoDragonfly

	numTopologies
)

// NumTopologies is the number of defined topology kinds.
const NumTopologies = int(numTopologies)

var topologyNames = [numTopologies]string{
	TopoConstant:  "constant",
	TopoMesh:      "mesh",
	TopoFatTree:   "fattree",
	TopoDragonfly: "dragonfly",
}

// String returns the kind's name.
func (k TopologyKind) String() string {
	if int(k) >= 0 && int(k) < len(topologyNames) {
		return topologyNames[k]
	}
	return fmt.Sprintf("topology(%d)", int(k))
}

// TopologyNames lists the topology names in declaration order.
func TopologyNames() []string {
	out := make([]string, numTopologies)
	copy(out, topologyNames[:])
	return out
}

// ParseTopology resolves a topology name, listing the valid choices on
// failure (the error is surfaced verbatim by flag parsing and the
// serving layer's 400s).
func ParseTopology(s string) (TopologyKind, error) {
	for i, n := range topologyNames {
		if n == s {
			return TopologyKind(i), nil
		}
	}
	return 0, fmt.Errorf("net: unknown topology %q (have %s)", s, strings.Join(TopologyNames(), ", "))
}

// TopologyConfig parameterizes the topology model. The zero value is
// the constant (legacy) network. It is a flat comparable struct: it
// rides inside machine.Config, which is a session memo key.
type TopologyConfig struct {
	// Kind selects the link graph; TopoConstant (zero) disables the
	// model entirely.
	Kind TopologyKind
	// Nodes is the number of network endpoints. Zero means the
	// processor count; memory modules are interleaved across the same
	// nodes (a dance-hall layout would only rescale the distances).
	Nodes int
	// HopCycles is the per-hop propagation delay in cycles (default 4,
	// matching the congestion model's per-stage delay).
	HopCycles int
	// ChannelBits is the per-link capacity in bits per cycle at the
	// leaf/local level (default 16). Fat-tree links double it per level
	// toward the root.
	ChannelBits int
	// MemCycles is the memory-module service time (default 20).
	MemCycles int
}

// Enabled reports whether the topology model replaces the constant
// round trip.
func (c TopologyConfig) Enabled() bool { return c.Kind != TopoConstant }

// WithDefaults fills zero fields for a procs-processor machine. The
// constant kind stays all-zero so the effective form of a legacy
// configuration is unchanged.
func (c TopologyConfig) WithDefaults(procs int) TopologyConfig {
	if !c.Enabled() {
		// Pass the constant kind through untouched: the zero value must
		// stay zero (legacy config identity for the snapshot/memo key),
		// and stray shape parameters must survive to Validate, which
		// rejects them rather than letting defaulting erase them.
		return c
	}
	if c.Nodes == 0 {
		c.Nodes = procs
	}
	if c.HopCycles == 0 {
		c.HopCycles = 4
	}
	if c.ChannelBits == 0 {
		c.ChannelBits = 16
	}
	if c.MemCycles == 0 {
		c.MemCycles = 20
	}
	return c
}

// Validate reports configuration errors.
func (c TopologyConfig) Validate() error {
	switch {
	case c.Kind < 0 || c.Kind >= numTopologies:
		return fmt.Errorf("net: invalid topology kind %d (have %s)", int(c.Kind), strings.Join(TopologyNames(), ", "))
	case c.Nodes < 0:
		return fmt.Errorf("net: topology Nodes %d < 0", c.Nodes)
	case c.HopCycles < 0:
		return fmt.Errorf("net: topology HopCycles %d < 0", c.HopCycles)
	case c.ChannelBits < 0:
		return fmt.Errorf("net: topology ChannelBits %d < 0", c.ChannelBits)
	case c.MemCycles < 0:
		return fmt.Errorf("net: topology MemCycles %d < 0", c.MemCycles)
	}
	if !c.Enabled() && c != (TopologyConfig{}) {
		return fmt.Errorf("net: constant topology takes no parameters (got %+v)", c)
	}
	return nil
}

// memInterleaveShift block-interleaves memory across nodes in 8-cell
// blocks: consecutive cells share a module (spatial locality keeps a
// chased pointer's neighbors together) while blocks spread round-robin.
const memInterleaveShift = 3

// link is one directed channel's FIFO queue. A message entering at
// cycle t starts serializing at max(t, freeAt), occupies the channel
// for its serialization time, and is delivered one HopCycles
// propagation later. Departure times are FIFO-monotonic per link, so
// the pending queue drains lazily in order.
type link struct {
	freeAt   int64
	enqueued int64
	drained  int64
	// pending holds the departure times of messages still in flight on
	// this link (departure > the last drain point), in FIFO order.
	pending []int64
}

// Network is the runtime state of a topology: the link queues plus
// observability counters. It is owned by one simulation and is not safe
// for concurrent use.
type Network struct {
	cfg  TopologyConfig
	base int64 // constant round trip when Kind == TopoConstant

	// Mesh geometry.
	meshW, meshH int
	// Fat-tree depth (levels of links between a leaf and the root).
	treeDepth int
	// Dragonfly group size.
	groupSize int

	links []link
	// path is the scratch route buffer, reused across round trips.
	path []int

	// Requests counts routed round trips.
	Requests int64
	// PeakQueue is the largest per-link queueing delay (cycles a
	// message waited for its channel) observed on any hop.
	PeakQueue int64
	// MaxLatency is the largest round-trip latency returned.
	MaxLatency int64
}

// NewNetwork builds the runtime for a procs-processor machine whose
// constant-mode round trip would be baseLatency cycles. The constant
// kind returns baseLatency from every RoundTrip, bit-equal to the
// legacy path.
func NewNetwork(cfg TopologyConfig, procs int, baseLatency int) *Network {
	cfg = cfg.WithDefaults(procs)
	n := &Network{cfg: cfg, base: int64(baseLatency)}
	if !cfg.Enabled() {
		return n
	}
	nodes := cfg.Nodes
	switch cfg.Kind {
	case TopoMesh:
		// Near-square factorization: W = ceil(sqrt(nodes)) and enough
		// rows to cover every node.
		w := 1
		for w*w < nodes {
			w++
		}
		h := (nodes + w - 1) / w
		n.meshW, n.meshH = w, h
		// Four directed link classes (+x, -x, +y, -y), indexed by the
		// source coordinate.
		n.links = make([]link, 4*w*h)
	case TopoFatTree:
		depth := 0
		for 1<<depth < nodes {
			depth++
		}
		if depth == 0 {
			depth = 1
		}
		n.treeDepth = depth
		// Per level l (0 = leaf): one up and one down link for each of
		// the 2^(depth-1-l)... — flattened as up/down per internal tree
		// node. Internal nodes: 2^depth - 1; links: up and down per
		// child edge = 2 * (2^depth - 1) directed pairs, but indexing by
		// (level, node-at-level, direction) is simplest.
		n.links = make([]link, 2*((1<<depth)-1)*2)
	case TopoDragonfly:
		g := 1
		for g*g < nodes {
			g++
		}
		n.groupSize = g
		groups := (nodes + g - 1) / g
		// Local links: directed router-to-router within a group,
		// indexed (group, src-in-group, dst-in-group). Global links:
		// directed group-to-group, indexed (srcGroup, dstGroup).
		n.links = make([]link, groups*g*g+groups*groups)
	}
	return n
}

// Config returns the effective (defaulted) configuration.
func (n *Network) Config() TopologyConfig { return n.cfg }

// Diameter returns the maximum hop count of any one-way route.
func (n *Network) Diameter() int {
	switch n.cfg.Kind {
	case TopoMesh:
		return (n.meshW - 1) + (n.meshH - 1)
	case TopoFatTree:
		return 2 * n.treeDepth
	case TopoDragonfly:
		return 3 // local, global, local
	}
	return 0
}

// node maps a processor id to its network endpoint.
func (n *Network) node(proc int) int {
	if n.cfg.Nodes <= 0 {
		return 0
	}
	return proc % n.cfg.Nodes
}

// memNode maps a shared-memory address to the node holding its module.
func (n *Network) memNode(addr int64) int {
	if n.cfg.Nodes <= 0 {
		return 0
	}
	blk := addr >> memInterleaveShift
	if blk < 0 {
		blk = -blk
	}
	return int(blk % int64(n.cfg.Nodes))
}

// route appends the directed link ids of the src -> dst path to
// n.path[:0] and returns it. Routes are deterministic and minimal for
// mesh (dimension order) and dragonfly (local-global-local); the
// fat-tree route climbs to the least common ancestor and descends.
func (n *Network) route(src, dst int) []int {
	p := n.path[:0]
	if src == dst {
		n.path = p
		return p
	}
	switch n.cfg.Kind {
	case TopoMesh:
		w := n.meshW
		x, y := src%w, src/w
		dx, dy := dst%w, dst/w
		// X first, then Y: link classes 0=+x 1=-x 2=+y 3=-y, indexed by
		// the coordinate the hop leaves from.
		for x < dx {
			p = append(p, meshLink(0, x, y, w, n.meshH))
			x++
		}
		for x > dx {
			p = append(p, meshLink(1, x, y, w, n.meshH))
			x--
		}
		for y < dy {
			p = append(p, meshLink(2, x, y, w, n.meshH))
			y++
		}
		for y > dy {
			p = append(p, meshLink(3, x, y, w, n.meshH))
			y--
		}
	case TopoFatTree:
		// Climb until the two subtrees merge, recording up-links, then
		// descend recording down-links. Level l spans 2^l leaves per
		// subtree.
		up, down := src, dst
		var downs []int // collected root-ward, replayed leaf-ward
		level := 0
		for up != down {
			p = append(p, n.treeLink(level, up, 0))
			downs = append(downs, n.treeLink(level, down, 1))
			up >>= 1
			down >>= 1
			level++
		}
		for i := len(downs) - 1; i >= 0; i-- {
			p = append(p, downs[i])
		}
	case TopoDragonfly:
		g := n.groupSize
		groups := (n.cfg.Nodes + g - 1) / g
		sg, sr := src/g, src%g
		dg, dr := dst/g, dst%g
		if sg == dg {
			p = append(p, dflyLocal(sg, sr, dr, g))
		} else {
			// Gateway router for the (sg, dg) global link: router dg%g
			// in the source group, sg%g in the destination group — a
			// deterministic spread of global-link endpoints.
			gw1, gw2 := dg%g, sg%g
			if sr != gw1 {
				p = append(p, dflyLocal(sg, sr, gw1, g))
			}
			p = append(p, groups*g*g+sg*groups+dg)
			if gw2 != dr {
				p = append(p, dflyLocal(dg, gw2, dr, g))
			}
		}
	}
	n.path = p
	return p
}

// meshLink flattens a (direction, x, y) mesh link id.
func meshLink(dir, x, y, w, h int) int { return dir*w*h + y*w + x }

// dflyLocal flattens a within-group dragonfly link id.
func dflyLocal(group, src, dst, g int) int { return group*g*g + src*g + dst }

// treeLink flattens a fat-tree link id: level, node index at that
// level, and direction (0 = up, 1 = down).
func (n *Network) treeLink(level, nodeAtLevel, dir int) int {
	// Offset of level l's node block: sum of 2^(depth-k) for k < l.
	off := 0
	for k := 0; k < level; k++ {
		off += 1 << (n.treeDepth - k)
	}
	return 2*(off+nodeAtLevel) + dir
}

// levelOfTreeLink recovers the level of a fat-tree link id, for the
// capacity-doubling service time.
func (n *Network) levelOfTreeLink(id int) int {
	idx := id / 2
	for level := 0; level < n.treeDepth; level++ {
		span := 1 << (n.treeDepth - level)
		if idx < span {
			return level
		}
		idx -= span
	}
	return n.treeDepth - 1
}

// serviceTime is the cycles a message of the given size occupies a
// link's channel. Fat-tree channels double their capacity per level
// toward the root, the classic fat-tree provisioning.
func (n *Network) serviceTime(linkID int, bits int64) int64 {
	cb := int64(n.cfg.ChannelBits)
	if n.cfg.Kind == TopoFatTree {
		cb <<= uint(n.levelOfTreeLink(linkID))
	}
	if cb <= 0 {
		cb = 1
	}
	s := (bits + cb - 1) / cb
	if s < 1 {
		s = 1
	}
	return s
}

// traverse sends a message of the given size over one link starting at
// cycle t and returns its arrival time at the far node.
func (n *Network) traverse(linkID int, t, bits int64) int64 {
	lk := &n.links[linkID]
	// Drain messages that have already departed: their departure times
	// are FIFO-monotonic, so a prefix scan suffices.
	d := 0
	for d < len(lk.pending) && lk.pending[d] <= t {
		d++
	}
	if d > 0 {
		lk.drained += int64(d)
		lk.pending = lk.pending[:copy(lk.pending, lk.pending[d:])]
	}
	start := t
	if lk.freeAt > start {
		start = lk.freeAt
	}
	if wait := start - t; wait > n.PeakQueue {
		n.PeakQueue = wait
	}
	depart := start + n.serviceTime(linkID, bits)
	lk.freeAt = depart
	lk.enqueued++
	lk.pending = append(lk.pending, depart)
	return depart + int64(n.cfg.HopCycles)
}

// RoundTrip routes one shared-memory access issued by processor src at
// cycle now — a request of reqBits to addr's memory module and a reply
// of replyBits back — through the link queues and returns the total
// round-trip latency in cycles. Clamped to [1, MaxRoundTrip].
func (n *Network) RoundTrip(now int64, src int, addr, reqBits, replyBits int64) int64 {
	n.Requests++
	if !n.cfg.Enabled() {
		if n.base > n.MaxLatency {
			n.MaxLatency = n.base
		}
		return n.base
	}
	s := n.node(src)
	d := n.memNode(addr)
	t := now
	for _, id := range n.route(s, d) {
		t = n.traverse(id, t, reqBits)
	}
	t += int64(n.cfg.MemCycles)
	for _, id := range n.route(d, s) {
		t = n.traverse(id, t, replyBits)
	}
	lat := t - now
	if lat < 1 {
		lat = 1
	}
	if lat > MaxRoundTrip {
		lat = MaxRoundTrip
	}
	if lat > n.MaxLatency {
		n.MaxLatency = lat
	}
	return lat
}

// Quiesce drains every link queue up to cycle now (a time at or past
// the last departure drains everything). It exists for the
// conservation property — after quiesce at the end of a run, Enqueued
// == Drained — and for snapshot compaction.
func (n *Network) Quiesce(now int64) {
	for i := range n.links {
		lk := &n.links[i]
		d := 0
		for d < len(lk.pending) && lk.pending[d] <= now {
			d++
		}
		if d > 0 {
			lk.drained += int64(d)
			lk.pending = lk.pending[:copy(lk.pending, lk.pending[d:])]
		}
	}
}

// Enqueued returns the total messages accepted by all link queues.
func (n *Network) Enqueued() int64 {
	var sum int64
	for i := range n.links {
		sum += n.links[i].enqueued
	}
	return sum
}

// Drained returns the total messages that have left all link queues.
func (n *Network) Drained() int64 {
	var sum int64
	for i := range n.links {
		sum += n.links[i].drained
	}
	return sum
}

// NumLinks returns the size of the link array (includes links no route
// uses, e.g. mesh edges leaving the grid; they stay idle).
func (n *Network) NumLinks() int { return len(n.links) }
