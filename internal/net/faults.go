package net

import (
	"fmt"

	"mtsim/internal/rng"
)

// This file models what the paper's §3 machine assumes away: an
// unreliable, non-uniform network. Replies can be late, lost or
// duplicated, and the requester runs a recovery protocol — timeout,
// NACK-retry with capped exponential backoff, sequence-number
// deduplication. Everything is drawn from a seeded rng stream, so a
// faulted run is exactly as deterministic (and memoizable) as a clean
// one: delivery outcomes are a pure function of (Seed, access sequence
// number).

// DelayDist selects the per-access round-trip distribution of a
// degraded network. The paper assumes a constant round trip (§3); these
// relax that for the robustness experiments.
type DelayDist int

const (
	// DistConstant is the paper's fixed round trip.
	DistConstant DelayDist = iota
	// DistUniform draws each round trip uniformly from
	// [latency-Spread, latency+Spread].
	DistUniform
	// DistHotSpot routes HotRate of accesses through a contended module
	// that multiplies their round trip by HotFactor.
	DistHotSpot
	numDists
)

var distNames = [numDists]string{
	DistConstant: "constant", DistUniform: "uniform", DistHotSpot: "hot-spot",
}

func (d DelayDist) String() string {
	if d >= 0 && int(d) < len(distNames) {
		return distNames[d]
	}
	return fmt.Sprintf("dist(%d)", int(d))
}

// FaultConfig parameterizes fault injection and degraded delivery for
// shared-memory round trips. It is a flat comparable value: machine
// configs embed it and the session memo uses the whole config as a map
// key, so a (seed, rates) plan memoizes like any other parameter. The
// zero value disables the model entirely — the paper's perfect network
// — and every added field must keep the struct comparable.
type FaultConfig struct {
	// Enabled turns the model on.
	Enabled bool
	// Seed seeds the deterministic fault stream: equal seeds and configs
	// give bit-identical runs.
	Seed uint64
	// Dist selects the round-trip distribution.
	Dist DelayDist
	// Spread is DistUniform's half-width in cycles.
	Spread int
	// HotRate is DistHotSpot's fraction of accesses hitting the hot
	// module; HotFactor multiplies their round trip (default 4).
	HotRate   float64
	HotFactor int
	// DropRate is the probability a reply is lost; the requester times
	// out and NACK-retries with capped exponential backoff.
	DropRate float64
	// DupRate is the probability the network duplicates a reply; the
	// extra copy is discarded by sequence-number deduplication.
	DupRate float64
	// DelayRate is the probability a reply is held up DelayCycles extra
	// cycles (a misrouted packet); a delay past TimeoutCycles triggers a
	// spurious retry and the late original is deduplicated on arrival.
	DelayRate float64
	// DelayCycles is the extra delay of a delayed reply (default: the
	// nominal round trip).
	DelayCycles int
	// TimeoutCycles is how long the requester waits for a reply before
	// NACK-retrying (default: 4x the nominal round trip).
	TimeoutCycles int
	// MaxRetries caps the retry protocol. The attempt after the last
	// retry rides the reliable escorted path and always delivers, so
	// every access completes and runs terminate (default 8).
	MaxRetries int
	// BackoffBase is the first retry's backoff wait in cycles (default:
	// half the nominal round trip); each further retry doubles it up to
	// BackoffMax (default: 8x the nominal round trip).
	BackoffBase int
	BackoffMax  int
}

// WithDefaults fills zero fields from the machine's nominal round-trip
// latency.
func (c FaultConfig) WithDefaults(latency int) FaultConfig {
	if !c.Enabled {
		return c
	}
	if latency < 1 {
		latency = 1
	}
	if c.HotFactor == 0 {
		c.HotFactor = 4
	}
	if c.DelayCycles == 0 {
		c.DelayCycles = latency
	}
	if c.TimeoutCycles == 0 {
		c.TimeoutCycles = 4 * latency
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 8
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = (latency + 1) / 2
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = 8 * latency
	}
	return c
}

// Validate reports configuration errors. A disabled config is always
// valid, mirroring CongestionConfig.
func (c FaultConfig) Validate() error {
	if !c.Enabled {
		return nil
	}
	switch {
	case c.Dist < 0 || c.Dist >= numDists:
		return fmt.Errorf("net: fault Dist %d unknown", int(c.Dist))
	case c.Spread < 0:
		return fmt.Errorf("net: fault Spread %d < 0", c.Spread)
	case !rate01(c.HotRate) || !rate01(c.DropRate) || !rate01(c.DupRate) || !rate01(c.DelayRate):
		return fmt.Errorf("net: fault rates must be in [0,1] (hot=%v drop=%v dup=%v delay=%v)",
			c.HotRate, c.DropRate, c.DupRate, c.DelayRate)
	case c.HotFactor < 0:
		return fmt.Errorf("net: fault HotFactor %d < 0", c.HotFactor)
	case c.DelayCycles < 0 || c.TimeoutCycles < 0:
		return fmt.Errorf("net: fault DelayCycles/TimeoutCycles must be >= 0")
	case c.MaxRetries < 0:
		return fmt.Errorf("net: fault MaxRetries %d < 0", c.MaxRetries)
	case c.BackoffBase < 0 || c.BackoffMax < 0:
		return fmt.Errorf("net: fault BackoffBase/BackoffMax must be >= 0")
	}
	return nil
}

func rate01(r float64) bool { return r >= 0 && r <= 1 }

// FaultStats counts what the plan injected and what the recovery
// protocol did about it.
type FaultStats struct {
	// Drops counts replies lost in the network.
	Drops int64
	// Dups counts duplicate replies discarded by sequence-number dedup
	// (network duplicates plus late originals after a spurious retry).
	Dups int64
	// Delays counts replies held up DelayCycles.
	Delays int64
	// Timeouts counts requester timeouts, spurious ones included.
	Timeouts int64
	// Retries counts NACK-retries issued.
	Retries int64
	// BackoffCycles is the total backoff wait the protocol added.
	BackoffCycles int64
	// HotAccesses counts DistHotSpot accesses that hit the hot module.
	HotAccesses int64
	// Exhausted counts accesses that fell back to the escorted path
	// after MaxRetries.
	Exhausted int64
}

// FaultPlan is the per-run runtime: a deterministic schedule of faults
// drawn from a seeded rng stream, plus the requester-side recovery
// protocol. It is owned by one simulation and is not safe for
// concurrent use.
type FaultPlan struct {
	cfg  FaultConfig
	root *rng.R
	seq  uint64
	// lastOverhead is the recovery overhead of the most recent Deliver:
	// how many cycles the timeout/retry/backoff protocol added beyond
	// the (possibly degraded) network round trip itself.
	lastOverhead int64

	// Stats accumulates this run's fault and recovery counts.
	Stats FaultStats
}

// NewFaultPlan builds the runtime for one simulation; latency is the
// machine's nominal round trip, used to default the protocol constants.
func NewFaultPlan(cfg FaultConfig, latency int) *FaultPlan {
	d := cfg.WithDefaults(latency)
	return &FaultPlan{cfg: d, root: rng.New(d.Seed)}
}

// Config returns the effective (defaulted) configuration.
func (f *FaultPlan) Config() FaultConfig { return f.cfg }

// Deliver returns the cycle at which the reply for a shared access
// issued at cycle issue with nominal round trip lat reaches the
// requester, after injecting this access's scheduled faults and walking
// the recovery protocol. All bookkeeping happens at issue time: the
// simulator's split-phase scoreboard only needs the final completion
// cycle, exactly as with plain latency, so the event loop is untouched.
func (f *FaultPlan) Deliver(issue, lat int64) int64 {
	r := f.root.Fork(f.seq)
	f.seq++
	lat = f.sampleLatency(r, lat)
	start := issue
	backoff := int64(f.cfg.BackoffBase)
	for attempt := 0; attempt < f.cfg.MaxRetries; attempt++ {
		if f.cfg.DropRate > 0 && r.Float() < f.cfg.DropRate {
			// Reply lost: the requester's timeout fires and it
			// NACK-retries after the current backoff.
			f.Stats.Drops++
			start = f.retryAfter(start, &backoff)
			continue
		}
		ready := start + lat
		if f.cfg.DelayRate > 0 && r.Float() < f.cfg.DelayRate {
			f.Stats.Delays++
			ready += int64(f.cfg.DelayCycles)
			if ready-start > int64(f.cfg.TimeoutCycles) {
				// So late the requester had already timed out: the retry
				// is spurious and the late original becomes a duplicate,
				// discarded by its sequence number on arrival.
				f.Stats.Dups++
				start = f.retryAfter(start, &backoff)
				continue
			}
		}
		if f.cfg.DupRate > 0 && r.Float() < f.cfg.DupRate {
			// The network duplicated the reply; dedup drops the copy.
			// No timing effect: the first copy carries the data.
			f.Stats.Dups++
		}
		f.lastOverhead = ready - (issue + lat)
		return ready
	}
	// Retry budget exhausted: the final attempt rides the escorted
	// reliable path, so every access completes and runs terminate.
	f.Stats.Exhausted++
	f.lastOverhead = start - issue
	return start + lat
}

// LastOverhead reports how many cycles the recovery protocol (timeouts,
// retries, backoff, in-timeout delays) added to the most recent Deliver
// beyond its sampled network round trip. The cycle-accounting layer
// books this as fault-recovery time.
func (f *FaultPlan) LastOverhead() int64 { return f.lastOverhead }

// retryAfter charges one timeout + backoff and returns the reissue
// cycle, doubling the backoff up to the cap.
func (f *FaultPlan) retryAfter(start int64, backoff *int64) int64 {
	f.Stats.Timeouts++
	f.Stats.Retries++
	f.Stats.BackoffCycles += *backoff
	next := start + int64(f.cfg.TimeoutCycles) + *backoff
	*backoff *= 2
	if lim := int64(f.cfg.BackoffMax); *backoff > lim {
		*backoff = lim
	}
	return next
}

// sampleLatency applies the configured round-trip distribution.
func (f *FaultPlan) sampleLatency(r *rng.R, lat int64) int64 {
	switch f.cfg.Dist {
	case DistUniform:
		if f.cfg.Spread > 0 {
			lat += r.Intn(2*int64(f.cfg.Spread)+1) - int64(f.cfg.Spread)
			if lat < 1 {
				lat = 1
			}
		}
	case DistHotSpot:
		if f.cfg.HotRate > 0 && r.Float() < f.cfg.HotRate {
			f.Stats.HotAccesses++
			lat *= int64(f.cfg.HotFactor)
		}
	}
	return lat
}
