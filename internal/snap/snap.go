// Package snap is the deterministic binary codec the checkpoint layer is
// built on. The simulator's snapshot format must be byte-stable — equal
// machine states encode to equal bytes, on any host — so the codec is
// deliberately primitive: fixed-width little-endian integers, IEEE bit
// patterns for floats, length-prefixed byte strings, no reflection, no
// varints, no alignment. Framing (magic, version, checksum) is provided
// once here so every consumer versions and validates its payloads the
// same way.
package snap

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Encoder appends primitives to a growing buffer. The zero value is
// ready to use.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U32 appends a fixed-width little-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a fixed-width little-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends an int64 as its two's-complement bit pattern.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as an int64.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// Bool appends a bool as one byte (0 or 1).
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// F64 appends a float64 as its IEEE-754 bit pattern, so the value —
// including negative zero and NaN payloads — round-trips exactly.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Raw appends a length-prefixed byte string.
func (e *Encoder) Raw(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// I64s appends a length-prefixed []int64.
func (e *Encoder) I64s(v []int64) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.I64(x)
	}
}

// Bools appends a length-prefixed []bool.
func (e *Encoder) Bools(v []bool) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.Bool(x)
	}
}

// Decoder reads primitives back. Errors are sticky: after the first
// failure every further read returns the zero value and Err() reports
// what went wrong, so decode sequences need only one check at the end.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps a payload for reading.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first decode error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish reports an error if decoding failed or trailing bytes remain.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if r := d.Remaining(); r != 0 {
		return fmt.Errorf("snap: %d trailing bytes after decode", r)
	}
	return nil
}

func (d *Decoder) fail(want string, n int) {
	if d.err == nil {
		d.err = fmt.Errorf("snap: truncated payload: need %d bytes for %s at offset %d, have %d",
			n, want, d.off, len(d.buf)-d.off)
	}
}

func (d *Decoder) take(want string, n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.fail(want, n)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take("u8", 1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take("u32", 4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take("u64", 8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int encoded as int64, failing if it does not fit.
func (d *Decoder) Int() int {
	v := d.I64()
	n := int(v)
	if int64(n) != v && d.err == nil {
		d.err = fmt.Errorf("snap: int64 %d does not fit in int", v)
	}
	return n
}

// Bool reads a bool, failing on bytes other than 0 or 1.
func (d *Decoder) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		if d.err == nil {
			d.err = fmt.Errorf("snap: invalid bool byte at offset %d", d.off-1)
		}
		return false
	}
}

// F64 reads a float64 bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// len reads a length prefix, bounding it by the bytes that remain so a
// corrupt length cannot force a huge allocation.
func (d *Decoder) lenPrefix(want string, elemSize int) int {
	n := int(d.U32())
	if d.err != nil {
		return 0
	}
	if elemSize > 0 && n > d.Remaining()/elemSize {
		d.fail(want, n*elemSize)
		return 0
	}
	return n
}

// Raw reads a length-prefixed byte string (a copy).
func (d *Decoder) Raw() []byte {
	n := d.lenPrefix("bytes", 1)
	b := d.take("bytes", n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.lenPrefix("string", 1)
	b := d.take("string", n)
	return string(b)
}

// I64s reads a length-prefixed []int64. An empty sequence decodes nil.
func (d *Decoder) I64s() []int64 {
	n := d.lenPrefix("[]int64", 8)
	if n == 0 || d.err != nil {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.I64()
	}
	return out
}

// Bools reads a length-prefixed []bool. An empty sequence decodes nil.
func (d *Decoder) Bools() []bool {
	n := d.lenPrefix("[]bool", 1)
	if n == 0 || d.err != nil {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = d.Bool()
	}
	return out
}

// Framing: every checkpoint artifact is
//
//	magic(4) version(u32) payload... crc32(u32)
//
// where the checksum covers magic, version and payload. The magic keeps
// unrelated files from being misread as snapshots; the version gates
// format evolution (a reader rejects versions it does not understand
// instead of misdecoding); the checksum turns torn or bit-rotted
// payloads into clean errors.

// Seal frames payload with magic (exactly 4 bytes) and version and
// appends the checksum.
func Seal(magic string, version uint32, payload []byte) []byte {
	if len(magic) != 4 {
		panic(fmt.Sprintf("snap: magic %q must be 4 bytes", magic))
	}
	out := make([]byte, 0, len(magic)+8+len(payload)+4)
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint32(out, version)
	out = append(out, payload...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
}

// Open validates the frame around an artifact produced by Seal and
// returns its version and payload. wantVersion bounds acceptance: a
// version greater than it is rejected (written by a newer format).
func Open(magic string, wantVersion uint32, b []byte) (version uint32, payload []byte, err error) {
	if len(magic) != 4 {
		panic(fmt.Sprintf("snap: magic %q must be 4 bytes", magic))
	}
	if len(b) < len(magic)+8+4 {
		return 0, nil, fmt.Errorf("snap: artifact too short (%d bytes)", len(b))
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return 0, nil, fmt.Errorf("snap: checksum mismatch (stored %08x, computed %08x): corrupt artifact", sum, got)
	}
	if string(body[:4]) != magic {
		return 0, nil, fmt.Errorf("snap: bad magic %q (want %q)", string(body[:4]), magic)
	}
	version = binary.LittleEndian.Uint32(body[4:8])
	if version == 0 || version > wantVersion {
		return 0, nil, fmt.Errorf("snap: version %d unsupported (this build reads 1..%d)", version, wantVersion)
	}
	return version, body[8:], nil
}
