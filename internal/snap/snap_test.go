package snap

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var e Encoder
	e.U8(7)
	e.U32(0xDEADBEEF)
	e.U64(1<<63 | 12345)
	e.I64(-42)
	e.Int(987654321)
	e.Bool(true)
	e.Bool(false)
	e.F64(math.Copysign(0, -1))
	e.F64(3.14159)
	e.Raw([]byte{1, 2, 3})
	e.String("hello")
	e.I64s([]int64{-1, 0, 1})
	e.Bools([]bool{true, false, true})

	d := NewDecoder(e.Bytes())
	if got := d.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := d.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %x", got)
	}
	if got := d.U64(); got != 1<<63|12345 {
		t.Errorf("U64 = %x", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.Int(); got != 987654321 {
		t.Errorf("Int = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := d.F64(); math.Float64bits(got) != math.Float64bits(math.Copysign(0, -1)) {
		t.Errorf("F64 negative zero = %v", got)
	}
	if got := d.F64(); got != 3.14159 {
		t.Errorf("F64 = %v", got)
	}
	if got := d.Raw(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Raw = %v", got)
	}
	if got := d.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := d.I64s(); len(got) != 3 || got[0] != -1 || got[2] != 1 {
		t.Errorf("I64s = %v", got)
	}
	if got := d.Bools(); len(got) != 3 || !got[0] || got[1] {
		t.Errorf("Bools = %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestDeterministicEncoding(t *testing.T) {
	enc := func() []byte {
		var e Encoder
		e.I64s([]int64{5, 6, 7})
		e.F64(1.5)
		e.String("x")
		return e.Bytes()
	}
	if !bytes.Equal(enc(), enc()) {
		t.Fatal("identical inputs encoded differently")
	}
}

func TestStickyErrors(t *testing.T) {
	d := NewDecoder([]byte{1, 2}) // too short for a u64
	_ = d.U64()
	if d.Err() == nil {
		t.Fatal("want truncation error")
	}
	// Every further read stays failed and returns zero values.
	if v := d.I64(); v != 0 {
		t.Errorf("read after error = %d", v)
	}
	if s := d.String(); s != "" {
		t.Errorf("string after error = %q", s)
	}
	if err := d.Finish(); err == nil {
		t.Fatal("Finish must report the sticky error")
	}
}

func TestBadBoolByte(t *testing.T) {
	d := NewDecoder([]byte{2})
	d.Bool()
	if d.Err() == nil || !strings.Contains(d.Err().Error(), "bool") {
		t.Fatalf("want bool error, got %v", d.Err())
	}
}

func TestTrailingBytes(t *testing.T) {
	var e Encoder
	e.U8(1)
	e.U8(2)
	d := NewDecoder(e.Bytes())
	d.U8()
	if err := d.Finish(); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("want trailing-bytes error, got %v", err)
	}
}

func TestCorruptLengthPrefix(t *testing.T) {
	var e Encoder
	e.U32(1 << 30) // claims a billion elements with no data behind it
	d := NewDecoder(e.Bytes())
	if got := d.I64s(); got != nil {
		t.Errorf("I64s on corrupt length = %v", got)
	}
	if d.Err() == nil {
		t.Fatal("want truncation error from corrupt length prefix")
	}
}

func TestSealOpen(t *testing.T) {
	payload := []byte("payload bytes")
	sealed := Seal("TEST", 3, payload)

	v, got, err := Open("TEST", 3, sealed)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if v != 3 || !bytes.Equal(got, payload) {
		t.Fatalf("Open = v%d %q", v, got)
	}

	// Newer version than the reader understands.
	if _, _, err := Open("TEST", 2, sealed); err == nil {
		t.Error("future version accepted")
	}
	// Wrong magic.
	if _, _, err := Open("NOPE", 3, sealed); err == nil {
		t.Error("wrong magic accepted")
	}
	// Flipped bit -> checksum failure.
	bad := append([]byte(nil), sealed...)
	bad[6] ^= 0x40
	if _, _, err := Open("TEST", 3, bad); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("corruption not detected: %v", err)
	}
	// Truncation.
	if _, _, err := Open("TEST", 3, sealed[:5]); err == nil {
		t.Error("truncated artifact accepted")
	}
}
