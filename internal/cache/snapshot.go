package cache

import (
	"fmt"
	"sort"
)

// This file is the checkpoint layer's view of the package: every piece
// of mutable run state — cache arrays, LRU clock, directory sharer
// lists, window contents, statistics — exported as plain-value state
// structs that restore bit-exactly. Configuration is deliberately NOT
// part of the state: the restoring side rebuilds from its own Config
// and the state must match it, which catches snapshot/config mismatches
// instead of silently misindexing.

// CacheState is the serializable mutable state of a Cache.
type CacheState struct {
	Tags    []int64
	Valid   []bool
	Dirty   []bool
	Age     []int64
	AgeTick int64

	Hits, Misses int64
	Evictions    int64
	Invals       int64
}

// Snapshot captures the cache's mutable state. The returned slices are
// copies; mutating them does not affect the cache.
func (c *Cache) Snapshot() CacheState {
	return CacheState{
		Tags:    append([]int64(nil), c.tags...),
		Valid:   append([]bool(nil), c.valid...),
		Dirty:   append([]bool(nil), c.dirty...),
		Age:     append([]int64(nil), c.age...),
		AgeTick: c.ageTick,
		Hits:    c.Hits, Misses: c.Misses,
		Evictions: c.Evictions, Invals: c.Invals,
	}
}

// Restore overwrites the cache's mutable state from a snapshot taken
// from a cache of the same configuration.
func (c *Cache) Restore(st CacheState) error {
	if len(st.Tags) != len(c.tags) || len(st.Valid) != len(c.valid) ||
		len(st.Dirty) != len(c.dirty) || len(st.Age) != len(c.age) {
		return fmt.Errorf("cache: snapshot has %d lines, cache has %d (config mismatch)", len(st.Tags), len(c.tags))
	}
	copy(c.tags, st.Tags)
	copy(c.valid, st.Valid)
	copy(c.dirty, st.Dirty)
	copy(c.age, st.Age)
	c.ageTick = st.AgeTick
	c.Hits, c.Misses = st.Hits, st.Misses
	c.Evictions, c.Invals = st.Evictions, st.Invals
	return nil
}

// DirectoryState is the serializable state of a Directory: parallel
// slices sorted by line address, each sharer list in its original
// insertion order (sharer order is observable through Sharers, so a
// restored run must see the same order, while the line order of the
// underlying map is not — sorting makes equal directories encode
// equally).
type DirectoryState struct {
	Lines   []int64
	Sharers [][]int32
}

// Snapshot captures the directory contents.
func (d *Directory) Snapshot() DirectoryState {
	st := DirectoryState{
		Lines:   make([]int64, 0, len(d.sharers)),
		Sharers: make([][]int32, 0, len(d.sharers)),
	}
	for line := range d.sharers {
		st.Lines = append(st.Lines, line)
	}
	sort.Slice(st.Lines, func(i, j int) bool { return st.Lines[i] < st.Lines[j] })
	for _, line := range st.Lines {
		st.Sharers = append(st.Sharers, append([]int32(nil), d.sharers[line]...))
	}
	return st
}

// RestoreDirectory rebuilds a directory from a snapshot.
func RestoreDirectory(st DirectoryState) (*Directory, error) {
	if len(st.Lines) != len(st.Sharers) {
		return nil, fmt.Errorf("cache: directory snapshot has %d lines but %d sharer lists", len(st.Lines), len(st.Sharers))
	}
	d := NewDirectory()
	for i, line := range st.Lines {
		if len(st.Sharers[i]) == 0 {
			return nil, fmt.Errorf("cache: directory snapshot line %d has no sharers", line)
		}
		d.sharers[line] = append([]int32(nil), st.Sharers[i]...)
	}
	return d, nil
}

// WindowState is the serializable state of a grouping Window.
type WindowState struct {
	Line    int64
	ReadyAt int64
	Valid   bool

	Hits, Misses int64
}

// Snapshot captures the window's state.
func (w *Window) Snapshot() WindowState {
	return WindowState{Line: w.line, ReadyAt: w.readyAt, Valid: w.valid, Hits: w.Hits, Misses: w.Misses}
}

// Restore overwrites the window's state (the line-size shift is
// configuration and stays as built).
func (w *Window) Restore(st WindowState) {
	w.line, w.readyAt, w.valid = st.Line, st.ReadyAt, st.Valid
	w.Hits, w.Misses = st.Hits, st.Misses
}
