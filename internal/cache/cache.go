// Package cache models the per-processor shared-data cache used by the
// switch-on-miss, switch-on-use-miss and conditional-switch models (§6),
// and the tiny one-line "grouping window" used to estimate inter-block
// grouping opportunities (§5.2).
//
// Because the simulator keeps shared-memory *values* globally current
// (data visibility is immediate; only timing is delayed), the cache needs
// to track only which lines are present — hits and misses determine
// latency and network traffic, never data. Coherence is write-through
// with distributed invalidation: the machine consults a Directory to find
// and invalidate remote copies on every shared store, counting the
// invalidation and acknowledgement messages the paper includes in its
// bandwidth overhead (§6.1).
package cache

import "fmt"

// Config describes a processor cache. Sizes are in memory cells (one
// simulated 64-bit cell holds one integer word or one double).
type Config struct {
	// Lines is the total number of cache lines. Must be a power of two
	// and divisible by Assoc.
	Lines int
	// LineCells is the number of memory cells per line (power of two).
	LineCells int
	// Assoc is the set associativity (1 = direct mapped).
	Assoc int
}

// DefaultConfig is the cache used in the paper-style §6 experiments:
// a 64 KB equivalent (4096 eight-byte cells), 4-way set associative with
// four-cell (32-byte) lines.
func DefaultConfig() Config {
	return Config{Lines: 1024, LineCells: 4, Assoc: 4}
}

// Validate reports whether the configuration is well formed.
func (c Config) Validate() error {
	switch {
	case c.Lines <= 0 || c.Lines&(c.Lines-1) != 0:
		return fmt.Errorf("cache: Lines %d must be a positive power of two", c.Lines)
	case c.LineCells <= 0 || c.LineCells&(c.LineCells-1) != 0:
		return fmt.Errorf("cache: LineCells %d must be a positive power of two", c.LineCells)
	case c.Assoc <= 0 || c.Lines%c.Assoc != 0:
		return fmt.Errorf("cache: Assoc %d must be positive and divide Lines %d", c.Assoc, c.Lines)
	}
	return nil
}

// CellCapacity returns the cache capacity in memory cells.
func (c Config) CellCapacity() int { return c.Lines * c.LineCells }

// Cache is one processor's shared-data cache. It tracks presence only.
type Cache struct {
	cfg       Config
	sets      int
	lineShift uint
	setMask   int64
	// tags[set*assoc+way] holds the line address, valid[.] its state,
	// dirty[.] whether it holds modified data not yet written back.
	tags  []int64
	valid []bool
	dirty []bool
	// age implements LRU within a set: larger is more recent.
	age     []int64
	ageTick int64

	// Statistics (load-side; the machine accounts store traffic itself).
	Hits, Misses int64
	Evictions    int64
	Invals       int64 // lines invalidated by remote stores
}

// New builds an empty cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{
		cfg:   cfg,
		sets:  cfg.Lines / cfg.Assoc,
		tags:  make([]int64, cfg.Lines),
		valid: make([]bool, cfg.Lines),
		dirty: make([]bool, cfg.Lines),
		age:   make([]int64, cfg.Lines),
	}
	c.setMask = int64(c.sets - 1)
	for s := 1; s < cfg.LineCells; s <<= 1 {
		c.lineShift++
	}
	return c, nil
}

// MustNew is New that panics on a bad configuration.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Line returns the line address containing cell addr.
func (c *Cache) Line(addr int64) int64 { return addr >> c.lineShift }

// LineCells returns the configured line size in cells.
func (c *Cache) LineCells() int { return c.cfg.LineCells }

func (c *Cache) set(line int64) int { return int(line & c.setMask) }

func (c *Cache) find(line int64) int {
	base := c.set(line) * c.cfg.Assoc
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			return base + w
		}
	}
	return -1
}

// Lookup probes for the line holding addr, recording a hit or miss and
// refreshing LRU state on a hit.
func (c *Cache) Lookup(addr int64) bool {
	if i := c.find(c.Line(addr)); i >= 0 {
		c.Hits++
		c.ageTick++
		c.age[i] = c.ageTick
		return true
	}
	c.Misses++
	return false
}

// Contains reports presence without touching statistics or LRU state.
func (c *Cache) Contains(addr int64) bool { return c.find(c.Line(addr)) >= 0 }

// Fill installs the line holding addr after a miss, returning the line
// address it evicted, whether that victim was dirty (and so must be
// written back), and whether an eviction happened at all.
func (c *Cache) Fill(addr int64) (evicted int64, evictedDirty, didEvict bool) {
	line := c.Line(addr)
	if i := c.find(line); i >= 0 {
		// Already resident: refresh recency, never duplicate a line.
		c.ageTick++
		c.age[i] = c.ageTick
		return 0, false, false
	}
	base := c.set(line) * c.cfg.Assoc
	victim := base
	for w := 0; w < c.cfg.Assoc; w++ {
		i := base + w
		if !c.valid[i] {
			victim = i
			didEvict = false
			goto install
		}
		if c.age[i] < c.age[victim] {
			victim = i
		}
	}
	evicted, evictedDirty, didEvict = c.tags[victim], c.dirty[victim], true
	c.Evictions++
install:
	c.tags[victim] = line
	c.valid[victim] = true
	c.dirty[victim] = false
	c.ageTick++
	c.age[victim] = c.ageTick
	return evicted, evictedDirty, didEvict
}

// SetDirty marks the line holding addr as modified, reporting whether the
// line was present.
func (c *Cache) SetDirty(addr int64) bool {
	if i := c.find(c.Line(addr)); i >= 0 {
		c.dirty[i] = true
		return true
	}
	return false
}

// IsDirty reports whether the line holding addr is present and modified.
func (c *Cache) IsDirty(addr int64) bool {
	i := c.find(c.Line(addr))
	return i >= 0 && c.dirty[i]
}

// CleanLine clears the dirty bit of the line holding addr (a flush
// downgrades the owner's copy to clean).
func (c *Cache) CleanLine(addr int64) {
	if i := c.find(c.Line(addr)); i >= 0 {
		c.dirty[i] = false
	}
}

// Invalidate drops the line holding addr if present (remote store),
// reporting whether a copy existed and whether it was dirty.
func (c *Cache) Invalidate(addr int64) (present, wasDirty bool) {
	if i := c.find(c.Line(addr)); i >= 0 {
		c.valid[i] = false
		wasDirty = c.dirty[i]
		c.dirty[i] = false
		c.Invals++
		return true, wasDirty
	}
	return false, false
}

// HitRate returns the fraction of lookups that hit.
func (c *Cache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// Directory tracks which processors hold a copy of each cache line, so a
// store can invalidate exactly the remote sharers (and the accounting can
// count one invalidation plus one acknowledgement per copy). It plays the
// role of the paper's assumed coherence machinery without simulating a
// protocol.
type Directory struct {
	sharers map[int64][]int32
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{sharers: make(map[int64][]int32)}
}

// AddSharer records that processor p caches line.
func (d *Directory) AddSharer(line int64, p int32) {
	s := d.sharers[line]
	for _, q := range s {
		if q == p {
			return
		}
	}
	d.sharers[line] = append(s, p)
}

// RemoveSharer records that processor p no longer caches line (eviction
// or invalidation).
func (d *Directory) RemoveSharer(line int64, p int32) {
	s := d.sharers[line]
	for i, q := range s {
		if q == p {
			s[i] = s[len(s)-1]
			s = s[:len(s)-1]
			if len(s) == 0 {
				delete(d.sharers, line)
			} else {
				d.sharers[line] = s
			}
			return
		}
	}
}

// Sharers appends the processors caching line to dst and returns it.
func (d *Directory) Sharers(line int64, dst []int32) []int32 {
	return append(dst, d.sharers[line]...)
}

// Window is the §5.2 grouping-estimation device: a one-line, 32-word
// buffer per thread. A shared load that hits the window is assumed to
// belong to the same structure or array as the preceding reference and
// therefore could have been issued with it — the machine gives such a
// load the *same completion time* as the reference that set the window,
// instead of a fresh round trip, and does not count a fresh group.
type Window struct {
	line    int64
	readyAt int64
	valid   bool
	shift   uint

	Hits, Misses int64
}

// NewWindow returns a window covering lineCells cells per line. The
// paper's window is 32 (32-bit) words = 16 of our 64-bit cells.
func NewWindow(lineCells int) *Window {
	if lineCells <= 0 || lineCells&(lineCells-1) != 0 {
		panic(fmt.Sprintf("cache: window line size %d must be a positive power of two", lineCells))
	}
	w := &Window{}
	for s := 1; s < lineCells; s <<= 1 {
		w.shift++
	}
	return w
}

// Probe checks addr against the window. On a hit it returns the
// completion time of the reference that established the window; on a miss
// it re-establishes the window with the new line and completion time.
func (w *Window) Probe(addr, readyAt int64) (hitReadyAt int64, hit bool) {
	line := addr >> w.shift
	if w.valid && line == w.line {
		w.Hits++
		return w.readyAt, true
	}
	w.Misses++
	w.line = line
	w.readyAt = readyAt
	w.valid = true
	return 0, false
}

// HitRate returns the fraction of probes that hit.
func (w *Window) HitRate() float64 {
	total := w.Hits + w.Misses
	if total == 0 {
		return 0
	}
	return float64(w.Hits) / float64(total)
}
