package cache

import (
	"reflect"
	"testing"
)

// exercise drives a cache through a deterministic access pattern.
func exercise(c *Cache, seed int64) {
	for i := int64(0); i < 200; i++ {
		addr := (seed*31 + i*7) % 512
		if !c.Lookup(addr) {
			c.Fill(addr)
		}
		if i%3 == 0 {
			c.SetDirty(addr)
		}
		if i%11 == 0 {
			c.Invalidate((addr + 64) % 512)
		}
	}
}

func TestCacheSnapshotRestore(t *testing.T) {
	cfg := Config{Lines: 16, LineCells: 4, Assoc: 2}
	a := MustNew(cfg)
	exercise(a, 3)

	st := a.Snapshot()
	b := MustNew(cfg)
	if err := b.Restore(st); err != nil {
		t.Fatalf("Restore: %v", err)
	}

	// The restored cache must behave identically from here on.
	exercise(a, 5)
	exercise(b, 5)
	if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
		t.Fatal("restored cache diverged from original")
	}
	if a.Hits != b.Hits || a.Misses != b.Misses || a.Evictions != b.Evictions || a.Invals != b.Invals {
		t.Fatal("statistics diverged")
	}
}

func TestCacheSnapshotIsACopy(t *testing.T) {
	c := MustNew(Config{Lines: 8, LineCells: 2, Assoc: 1})
	exercise(c, 1)
	st := c.Snapshot()
	st.Tags[0] = -999
	st.Valid[0] = !st.Valid[0]
	if c.Snapshot().Tags[0] == -999 {
		t.Fatal("Snapshot aliases cache internals")
	}
}

func TestCacheRestoreShapeMismatch(t *testing.T) {
	small := MustNew(Config{Lines: 8, LineCells: 2, Assoc: 1})
	big := MustNew(Config{Lines: 16, LineCells: 2, Assoc: 1})
	if err := big.Restore(small.Snapshot()); err == nil {
		t.Fatal("restore across configs must fail")
	}
}

func TestDirectorySnapshotRestore(t *testing.T) {
	d := NewDirectory()
	d.AddSharer(10, 2)
	d.AddSharer(10, 0)
	d.AddSharer(10, 1)
	d.AddSharer(3, 7)
	d.RemoveSharer(10, 0) // swap-remove: order becomes [2 1]

	st := d.Snapshot()
	r, err := RestoreDirectory(st)
	if err != nil {
		t.Fatalf("RestoreDirectory: %v", err)
	}

	// Sharer order is observable; the restored directory must preserve
	// it exactly.
	want := d.Sharers(10, nil)
	got := r.Sharers(10, nil)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("sharers of line 10: want %v, got %v", want, got)
	}
	if !reflect.DeepEqual(d.Snapshot(), r.Snapshot()) {
		t.Fatal("round-trip changed directory contents")
	}
}

func TestDirectorySnapshotDeterministic(t *testing.T) {
	d := NewDirectory()
	for line := int64(0); line < 50; line++ {
		d.AddSharer(line*13%17, int32(line%4))
	}
	if !reflect.DeepEqual(d.Snapshot(), d.Snapshot()) {
		t.Fatal("Snapshot of the same directory differs between calls")
	}
}

func TestRestoreDirectoryRejectsMalformed(t *testing.T) {
	if _, err := RestoreDirectory(DirectoryState{Lines: []int64{1}, Sharers: nil}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := RestoreDirectory(DirectoryState{Lines: []int64{1}, Sharers: [][]int32{{}}}); err == nil {
		t.Error("empty sharer list accepted")
	}
}

func TestWindowSnapshotRestore(t *testing.T) {
	a := NewWindow(16)
	a.Probe(100, 50)
	a.Probe(101, 60)
	a.Probe(400, 70)

	b := NewWindow(16)
	b.Restore(a.Snapshot())

	ra, ha := a.Probe(401, 99)
	rb, hb := b.Probe(401, 99)
	if ra != rb || ha != hb {
		t.Fatalf("restored window diverged: (%d,%v) vs (%d,%v)", ra, ha, rb, hb)
	}
	if a.Hits != b.Hits || a.Misses != b.Misses {
		t.Fatal("window statistics diverged")
	}
}
