package cache

import (
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Lines: 0, LineCells: 4, Assoc: 1},
		{Lines: 3, LineCells: 4, Assoc: 1},
		{Lines: 8, LineCells: 3, Assoc: 1},
		{Lines: 8, LineCells: 4, Assoc: 0},
		{Lines: 8, LineCells: 4, Assoc: 3},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v accepted", c)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if DefaultConfig().CellCapacity() != 4096 {
		t.Errorf("default capacity = %d cells", DefaultConfig().CellCapacity())
	}
}

func TestLookupFillInvalidate(t *testing.T) {
	c := MustNew(Config{Lines: 8, LineCells: 4, Assoc: 2})
	if c.Lookup(0) {
		t.Error("hit in empty cache")
	}
	c.Fill(0)
	if !c.Lookup(0) || !c.Lookup(3) {
		t.Error("line [0,4) not resident after fill")
	}
	if c.Lookup(4) {
		t.Error("adjacent line falsely resident")
	}
	if present, _ := c.Invalidate(1); !present {
		t.Error("invalidate missed resident line")
	}
	if c.Contains(0) {
		t.Error("line survives invalidation")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
	if got := c.HitRate(); got != 0.5 {
		t.Errorf("hit rate = %v", got)
	}
}

func TestLRUEviction(t *testing.T) {
	// One set (fully associative with 2 ways): fill A, B; touch A; fill
	// C -> B must be the victim.
	c := MustNew(Config{Lines: 2, LineCells: 1, Assoc: 2})
	c.Fill(10 * 1) // lines map to the single set
	c.Fill(20)
	c.Lookup(10)
	ev, dirty, did := c.Fill(30)
	if !did || ev != 20 || dirty {
		t.Errorf("evicted %d (dirty=%v, did=%v), want 20 clean", ev, dirty, did)
	}
	if !c.Contains(10) || !c.Contains(30) || c.Contains(20) {
		t.Error("wrong resident set after eviction")
	}
}

func TestDirtyTracking(t *testing.T) {
	c := MustNew(Config{Lines: 2, LineCells: 4, Assoc: 2})
	c.Fill(0)
	if c.IsDirty(0) {
		t.Error("freshly filled line dirty")
	}
	if !c.SetDirty(2) {
		t.Error("SetDirty missed resident line")
	}
	if !c.IsDirty(0) {
		t.Error("dirty bit not set for whole line")
	}
	c.CleanLine(1)
	if c.IsDirty(3) {
		t.Error("CleanLine did not clear")
	}
	c.SetDirty(0)
	if _, wasDirty := c.Invalidate(0); !wasDirty {
		t.Error("Invalidate lost dirty state")
	}
	if c.SetDirty(100) {
		t.Error("SetDirty hit on absent line")
	}
	// Dirty victim reported by Fill.
	c2 := MustNew(Config{Lines: 1, LineCells: 1, Assoc: 1})
	c2.Fill(5)
	c2.SetDirty(5)
	if _, dirty, did := c2.Fill(6); !did || !dirty {
		t.Error("dirty eviction not reported")
	}
}

func TestDirectory(t *testing.T) {
	d := NewDirectory()
	d.AddSharer(7, 1)
	d.AddSharer(7, 2)
	d.AddSharer(7, 1) // idempotent
	got := d.Sharers(7, nil)
	if len(got) != 2 {
		t.Errorf("sharers = %v", got)
	}
	d.RemoveSharer(7, 1)
	d.RemoveSharer(7, 99) // absent: no-op
	if got := d.Sharers(7, nil); len(got) != 1 || got[0] != 2 {
		t.Errorf("sharers = %v", got)
	}
	d.RemoveSharer(7, 2)
	if got := d.Sharers(7, nil); len(got) != 0 {
		t.Errorf("sharers = %v", got)
	}
}

func TestWindow(t *testing.T) {
	w := NewWindow(16)
	if _, hit := w.Probe(5, 100); hit {
		t.Error("first probe hit")
	}
	if ready, hit := w.Probe(12, 200); !hit || ready != 100 {
		t.Errorf("same-line probe: hit=%v ready=%d, want hit at 100", hit, ready)
	}
	if _, hit := w.Probe(16, 300); hit {
		t.Error("next line hit")
	}
	if ready, hit := w.Probe(31, 400); !hit || ready != 300 {
		t.Errorf("window not re-established: hit=%v ready=%d", hit, ready)
	}
	if w.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", w.HitRate())
	}
}

// Property: after Fill(addr), every address on the same line hits and
// Lookup never hits on a line that was never filled.
func TestCacheContainsProperty(t *testing.T) {
	c := MustNew(Config{Lines: 64, LineCells: 8, Assoc: 4})
	filled := make(map[int64]bool)
	f := func(addrRaw uint16, doFill bool) bool {
		addr := int64(addrRaw % 4096)
		line := c.Line(addr)
		if doFill {
			ev, _, did := c.Fill(addr)
			if did {
				delete(filled, ev)
			}
			filled[line] = true
		}
		return c.Contains(addr) == filled[line]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: hits + misses == number of Lookup calls, always.
func TestHitMissAccountingProperty(t *testing.T) {
	c := MustNew(Config{Lines: 16, LineCells: 4, Assoc: 2})
	var lookups int64
	f := func(addrRaw uint16, fill bool) bool {
		addr := int64(addrRaw % 512)
		if fill {
			c.Fill(addr)
		}
		c.Lookup(addr)
		lookups++
		return c.Hits+c.Misses == lookups
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
