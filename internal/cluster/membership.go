package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// PingPath is the membership probe endpoint every node must serve (the
// serve layer answers it with a PingResponse built from its lease table).
const PingPath = "/v1/cluster/ping"

// Start launches the heartbeat prober. Call once; Stop ends it.
func (n *Node) Start() {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return
	}
	n.started = true
	// The silence clock starts now: a peer that never answers still
	// walks alive → suspect → dead on schedule from this instant.
	start := n.now()
	for _, m := range n.members {
		m.anchor = start
	}
	n.mu.Unlock()
	n.wg.Add(1)
	go n.probeLoop()
}

// Stop ends the prober and waits for in-flight probes and claim hooks.
func (n *Node) Stop() {
	n.mu.Lock()
	if !n.started {
		n.mu.Unlock()
		return
	}
	n.started = false
	close(n.stop)
	n.mu.Unlock()
	n.wg.Wait()
}

func (n *Node) probeLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.HeartbeatEvery)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
			n.probeRound()
		}
	}
}

// probeRound probes every peer concurrently, folds the results into the
// member and lease tables, then checks for claimable expired leases.
func (n *Node) probeRound() {
	var wg sync.WaitGroup
	for _, p := range n.cfg.Peers {
		if p.ID == n.cfg.Self {
			continue
		}
		wg.Add(1)
		go func(p Peer) {
			defer wg.Done()
			n.probe(p)
		}(p)
	}
	wg.Wait()
	n.checkExpiredLeases()
}

// probe performs one health check of peer p and updates its state.
func (n *Node) probe(p Peer) {
	ping, err := n.fetchPing(p)
	now := n.now()
	n.mu.Lock()
	defer n.mu.Unlock()
	m := n.members[p.ID]
	if err != nil {
		m.lastErr = err.Error()
		// Silence is measured from the later of Start and last contact.
		silent := now.Sub(m.anchor)
		if !m.lastSeen.IsZero() {
			silent = now.Sub(m.lastSeen)
		}
		switch {
		case silent >= n.cfg.DeadAfter:
			m.state = StateDead
		case silent >= n.cfg.SuspectAfter:
			m.state = StateSuspect
		}
		return
	}
	m.state, m.lastSeen, m.anchor, m.lastErr = StateAlive, now, now, ""
	n.mergeLeases(p.ID, ping.Leases, now)
	if len(ping.Usage) > 0 {
		// Latest report wins; never deleted, so a peer's accrued usage
		// outlives the peer.
		n.usage[p.ID] = ping.Usage
	}
}

// fetchPing GETs one peer's ping endpoint and validates its identity.
func (n *Node) fetchPing(p Peer) (*PingResponse, error) {
	resp, err := n.client.Get(p.URL + PingPath)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("ping %s: status %d", p.ID, resp.StatusCode)
	}
	var ping PingResponse
	if err := json.Unmarshal(body, &ping); err != nil {
		return nil, fmt.Errorf("ping %s: %v", p.ID, err)
	}
	if ping.NodeID != p.ID {
		// A different node answering on this address (port reuse, bad
		// config) must read as a failure, not as the peer being fine.
		return nil, fmt.Errorf("ping %s: answered by %q", p.ID, ping.NodeID)
	}
	return &ping, nil
}

// mergeLeases folds one peer's gossiped lease list into the local
// table. Called with n.mu held.
func (n *Node) mergeLeases(peerID string, leases []Lease, now time.Time) {
	seen := make(map[string]bool, len(leases))
	for _, l := range leases {
		l.Holder = peerID // the peer speaks only for itself
		seen[l.JobID] = true
		cur := n.remote[l.JobID]
		// A fresh claim by an alive peer overrides a stale entry from a
		// previous holder; an entry from the same holder just renews.
		if cur == nil || cur.Holder == peerID || now.After(cur.expires) || !n.aliveLocked(cur.Holder) {
			ttl := time.Duration(l.TTLMS) * time.Millisecond
			if ttl <= 0 || ttl > n.cfg.LeaseTTL {
				ttl = n.cfg.LeaseTTL
			}
			n.remote[l.JobID] = &remoteLease{Lease: l, expires: now.Add(ttl)}
		}
	}
	// Leases this peer held but no longer reports are finished or
	// handed off on its side: forget our copy.
	for id, rl := range n.remote {
		if rl.Holder == peerID && !seen[id] {
			delete(n.remote, id)
		}
	}
}

// aliveLocked is Alive without re-locking. Called with n.mu held.
func (n *Node) aliveLocked(id string) bool {
	if id == n.cfg.Self {
		return true
	}
	m := n.members[id]
	return m != nil && m.state == StateAlive
}

// checkExpiredLeases scans for leases whose holder is dead and whose
// TTL has run out; when this node is the job's route owner, the claim
// hook fires. One claim per job is in flight at a time — the hook ends
// the claim by calling DropLease (success or give-up); a hook that
// returns without dropping leaves the lease to be retried next round.
func (n *Node) checkExpiredLeases() {
	if n.OnExpiredLease == nil {
		return
	}
	now := n.now()
	var claims []Lease
	n.mu.Lock()
	for id, rl := range n.remote {
		if n.claiming[id] || now.Before(rl.expires) || n.aliveLocked(rl.Holder) {
			continue
		}
		if m := n.members[rl.Holder]; m == nil || m.state != StateDead {
			continue // suspect is not enough to steal work
		}
		if n.routeOwnerLocked(JobRouteKey(id)) != n.cfg.Self {
			continue
		}
		n.claiming[id] = true
		claims = append(claims, rl.Lease)
	}
	n.mu.Unlock()
	for _, l := range claims {
		n.wg.Add(1)
		go func(l Lease) {
			defer n.wg.Done()
			n.OnExpiredLease(l)
			n.mu.Lock()
			delete(n.claiming, l.JobID)
			n.mu.Unlock()
		}(l)
	}
}

// routeOwnerLocked is RouteOwner with n.mu held.
func (n *Node) routeOwnerLocked(key string) string {
	succ := n.ring.successors(key)
	for _, id := range succ {
		if n.aliveLocked(id) {
			return id
		}
	}
	if len(succ) == 0 {
		return n.cfg.Self
	}
	return succ[0]
}

// JobRouteKey is the ring key for an async job id. Session keys and job
// ids share one ring but live in disjoint key spaces.
func JobRouteKey(jobID string) string { return "job/" + jobID }

// SessionRouteKey is the ring key for a session (scale + metrics flag):
// routing whole sessions to one node turns the per-node memo cache into
// a cluster-wide cache tier.
func SessionRouteKey(sessionKey string) string { return "session/" + sessionKey }
