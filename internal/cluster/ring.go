package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// The consistent-hash ring maps routing keys (session keys, job ids) to
// owner nodes. Each node projects VNodes points onto a uint64 circle;
// a key belongs to the first point clockwise from its own hash. Virtual
// nodes smooth the load split, and consistency is the property the
// failover design leans on: when a node dies, only the keys it owned
// move (to the next point clockwise), so a claim decision — "am I the
// next owner of this dead node's job?" — is a pure local computation
// every survivor answers identically.

type ringPoint struct {
	hash uint64
	id   string
}

// ring is an immutable consistent-hash circle over a fixed peer set.
// Health is deliberately not baked in: the ring orders ALL configured
// nodes, and routing walks that order skipping unhealthy ones, so the
// circle never has to be rebuilt (and every node's copy stays equal).
type ring struct {
	points []ringPoint
	ids    []string // distinct node ids, ring-walk order is per key
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// newRing builds the circle. vnodes points per node, labeled "id#i".
func newRing(peers []Peer, vnodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, len(peers)*vnodes), ids: make([]string, 0, len(peers))}
	for _, p := range peers {
		r.ids = append(r.ids, p.ID)
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("%s#%d", p.ID, i)), id: p.ID})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Equal hashes tie-break on id so every node sorts identically.
		return r.points[i].id < r.points[j].id
	})
	return r
}

// successors returns every distinct node id in ring order starting at
// key's position: the owner first, then the failover/replica order.
func (r *ring) successors(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.ids))
	seen := make(map[string]bool, len(r.ids))
	for i := 0; i < len(r.points) && len(out) < len(r.ids); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.id] {
			seen[p.id] = true
			out = append(out, p.id)
		}
	}
	return out
}

// owner returns the key's primary owner, ignoring health.
func (r *ring) owner(key string) string {
	s := r.successors(key)
	if len(s) == 0 {
		return ""
	}
	return s[0]
}
