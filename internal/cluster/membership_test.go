package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakePeer is a controllable ping endpoint: it can answer as a given
// node id, report leases, or simulate death by refusing requests.
type fakePeer struct {
	id     string
	down   atomic.Bool
	mu     sync.Mutex
	leases []Lease
	ts     *httptest.Server
}

func newFakePeer(t *testing.T, id string) *fakePeer {
	t.Helper()
	p := &fakePeer{id: id}
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+PingPath, func(w http.ResponseWriter, r *http.Request) {
		if p.down.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		p.mu.Lock()
		resp := PingResponse{NodeID: p.id, Leases: p.leases}
		p.mu.Unlock()
		json.NewEncoder(w).Encode(resp)
	})
	p.ts = httptest.NewServer(mux)
	t.Cleanup(p.ts.Close)
	return p
}

func (p *fakePeer) setLeases(ls []Lease) {
	p.mu.Lock()
	p.leases = ls
	p.mu.Unlock()
}

// fastCfg builds a 20ms-heartbeat config over self + the fake peers.
func fastCfg(self string, peers ...*fakePeer) Config {
	cfg := Config{
		Self:           self,
		Peers:          []Peer{{ID: self, URL: "http://invalid.localhost"}},
		HeartbeatEvery: 20 * time.Millisecond,
		SuspectAfter:   60 * time.Millisecond,
		DeadAfter:      120 * time.Millisecond,
		LeaseTTL:       100 * time.Millisecond,
	}
	for _, p := range peers {
		cfg.Peers = append(cfg.Peers, Peer{ID: p.id, URL: p.ts.URL})
	}
	return cfg
}

func memberState(n *Node, id string) string {
	for _, m := range n.Members() {
		if m.ID == id {
			return m.State
		}
	}
	return "missing"
}

func waitState(t *testing.T, n *Node, id, want string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if memberState(n, id) == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("peer %s never reached state %s (now %s)", id, want, memberState(n, id))
}

// TestMembershipLifecycle walks one peer through alive → suspect → dead
// → rejoin → alive via real probes against a controllable endpoint.
func TestMembershipLifecycle(t *testing.T) {
	peer := newFakePeer(t, "node2")
	n, err := New(fastCfg("node1", peer))
	if err != nil {
		t.Fatal(err)
	}
	n.LocalLeases = func() []Lease { return nil }
	n.Start()
	defer n.Stop()

	// Wait for genuine contact, not the optimistic initial alive.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ms := func() int64 {
			for _, m := range n.Members() {
				if m.ID == "node2" {
					return m.LastSeenMS
				}
			}
			return -1
		}(); ms >= 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitState(t, n, "node2", StateAlive)
	peer.down.Store(true)
	waitState(t, n, "node2", StateSuspect)
	waitState(t, n, "node2", StateDead)
	peer.down.Store(false)
	waitState(t, n, "node2", StateAlive) // rejoin
}

// TestMembershipIdentityMismatch: a peer answering with the wrong node
// id is a failure, not a healthy member.
func TestMembershipIdentityMismatch(t *testing.T) {
	impostor := newFakePeer(t, "someone-else")
	cfg := fastCfg("node1", impostor)
	cfg.Peers[1].ID = "node2" // we expect node2 at the impostor's URL
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()
	waitState(t, n, "node2", StateDead)
}

// TestLeaseClaimOnDeadHolder: when a lease's holder dies and the TTL
// runs out, exactly the route owner's claim hook fires with the lease.
func TestLeaseClaimOnDeadHolder(t *testing.T) {
	holder := newFakePeer(t, "node2")
	// A job id whose route owner (after node2 dies) is self: search for
	// one whose first successor is node2 and second is node1.
	probe, err := New(fastCfg("node1", holder))
	if err != nil {
		t.Fatal(err)
	}
	var jobID string
	for i := 0; ; i++ {
		jobID = fmt.Sprintf("b-%016x", i)
		if probe.ring.owner(JobRouteKey(jobID)) == "node2" {
			break
		}
	}
	holder.setLeases([]Lease{{JobID: jobID, Status: "running", Checkpoint: 3, TTLMS: 100}})

	n, err := New(fastCfg("node1", holder))
	if err != nil {
		t.Fatal(err)
	}
	claimed := make(chan Lease, 1)
	n.OnExpiredLease = func(l Lease) {
		claimed <- l
		n.DropLease(l.JobID)
	}
	n.Start()
	defer n.Stop()

	// Members start optimistically alive, so wait for the gossip round
	// that actually lands the lease before pulling the plug.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && len(n.RemoteLeases()) == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if got := len(n.RemoteLeases()); got != 1 {
		t.Fatalf("remote leases = %d, want 1", got)
	}
	holder.down.Store(true)

	select {
	case l := <-claimed:
		if l.JobID != jobID || l.Holder != "node2" {
			t.Fatalf("claimed lease %+v, want job %s held by node2", l, jobID)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("claim hook never fired for the dead holder's lease")
	}
	// Dropped: no re-claim of the same job.
	select {
	case l := <-claimed:
		t.Fatalf("lease %s claimed twice", l.JobID)
	case <-time.After(300 * time.Millisecond):
	}
}

// TestLeaseNotClaimedWhileHolderAlive: expiry alone must not trigger a
// claim — only a dead holder does.
func TestLeaseNotClaimedWhileHolderAlive(t *testing.T) {
	holder := newFakePeer(t, "node2")
	n, err := New(fastCfg("node1", holder))
	if err != nil {
		t.Fatal(err)
	}
	var jobID string
	for i := 0; ; i++ {
		jobID = fmt.Sprintf("b-%016x", i)
		if n.ring.owner(JobRouteKey(jobID)) == "node2" {
			break
		}
	}
	// TTL shorter than a heartbeat: the entry is expired at every check,
	// but node2 keeps answering pings.
	holder.setLeases([]Lease{{JobID: jobID, Status: "running", TTLMS: 1}})
	fired := make(chan Lease, 1)
	n.OnExpiredLease = func(l Lease) { fired <- l }
	n.Start()
	defer n.Stop()
	waitState(t, n, "node2", StateAlive)
	select {
	case l := <-fired:
		t.Fatalf("claimed %s though its holder is alive", l.JobID)
	case <-time.After(400 * time.Millisecond):
	}
}

// TestNoteLeaseFeedsClaims: replica-push lease knowledge (NoteLease)
// must arm failover even if the holder never gossiped.
func TestNoteLeaseFeedsClaims(t *testing.T) {
	holder := newFakePeer(t, "node2")
	n, err := New(fastCfg("node1", holder))
	if err != nil {
		t.Fatal(err)
	}
	var jobID string
	for i := 0; ; i++ {
		jobID = fmt.Sprintf("b-%016x", i)
		if n.ring.owner(JobRouteKey(jobID)) == "node2" {
			break
		}
	}
	claimed := make(chan Lease, 1)
	n.OnExpiredLease = func(l Lease) {
		claimed <- l
		n.DropLease(l.JobID)
	}
	holder.down.Store(true) // dies before ever gossiping
	n.Start()
	defer n.Stop()
	n.NoteLease(Lease{JobID: jobID, Holder: "node2", Status: "queued"})
	select {
	case l := <-claimed:
		if l.JobID != jobID {
			t.Fatalf("claimed %s, want %s", l.JobID, jobID)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("NoteLease-sourced lease never claimed after holder death")
	}
}

// TestLeaseForgottenWhenHolderDropsIt: a peer that stops reporting a
// lease (job done or handed off) clears our copy on the next gossip.
func TestLeaseForgottenWhenHolderDropsIt(t *testing.T) {
	holder := newFakePeer(t, "node2")
	n, err := New(fastCfg("node1", holder))
	if err != nil {
		t.Fatal(err)
	}
	holder.setLeases([]Lease{{JobID: "b-1", Status: "running", TTLMS: 100}})
	n.Start()
	defer n.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && len(n.RemoteLeases()) == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if len(n.RemoteLeases()) != 1 {
		t.Fatal("lease never gossiped in")
	}
	holder.setLeases(nil)
	for time.Now().Before(deadline) && len(n.RemoteLeases()) != 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if got := n.RemoteLeases(); len(got) != 0 {
		t.Fatalf("lease table = %+v, want empty after holder dropped it", got)
	}
}
