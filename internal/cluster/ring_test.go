package cluster

import (
	"fmt"
	"testing"
)

func testPeers(n int) []Peer {
	peers := make([]Peer, n)
	for i := range peers {
		peers[i] = Peer{ID: fmt.Sprintf("node%d", i+1), URL: fmt.Sprintf("http://127.0.0.1:%d", 9000+i)}
	}
	return peers
}

// TestRingDeterminism: every node must compute the same owner for every
// key — the failover protocol has no coordinator, so agreement is the
// ring's entire job.
func TestRingDeterminism(t *testing.T) {
	peers := testPeers(5)
	a := newRing(peers, 64)
	// Same peers in a different order must yield the same circle.
	shuffled := []Peer{peers[3], peers[0], peers[4], peers[2], peers[1]}
	b := newRing(shuffled, 64)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("job/b-%016x", i*2654435761)
		sa, sb := a.successors(key), b.successors(key)
		if len(sa) != len(sb) {
			t.Fatalf("key %q: successor counts differ (%d vs %d)", key, len(sa), len(sb))
		}
		for j := range sa {
			if sa[j] != sb[j] {
				t.Fatalf("key %q: successor order differs at %d: %v vs %v", key, j, sa, sb)
			}
		}
	}
}

// TestRingSuccessorsDistinct: the successor list is each node exactly
// once — it is the replica placement and the failover order.
func TestRingSuccessorsDistinct(t *testing.T) {
	r := newRing(testPeers(4), 32)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("session/key-%d", i)
		succ := r.successors(key)
		if len(succ) != 4 {
			t.Fatalf("key %q: %d successors, want 4", key, len(succ))
		}
		seen := map[string]bool{}
		for _, id := range succ {
			if seen[id] {
				t.Fatalf("key %q: duplicate successor %s in %v", key, id, succ)
			}
			seen[id] = true
		}
	}
}

// TestRingBalance: with vnodes the primary-ownership split must be
// roughly even — no node may own more than ~2x its fair share.
func TestRingBalance(t *testing.T) {
	const nodes, keys = 4, 4000
	r := newRing(testPeers(nodes), 64)
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		counts[r.owner(fmt.Sprintf("job/b-%020d", i))]++
	}
	fair := keys / nodes
	for id, c := range counts {
		if c > 2*fair || c < fair/3 {
			t.Errorf("node %s owns %d of %d keys (fair share %d): ring too skewed", id, c, keys, fair)
		}
	}
}

// TestRingStability: removing one node must only move the keys it
// owned; every other key keeps its owner (the "consistent" in
// consistent hashing, and what bounds failover churn).
func TestRingStability(t *testing.T) {
	peers := testPeers(5)
	full := newRing(peers, 64)
	without := newRing(peers[:4], 64) // node5 removed
	moved := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("job/b-%d", i)
		was, is := full.owner(key), without.owner(key)
		if was == "node5" {
			// Its keys must land on the next successor in the old ring.
			succ := full.successors(key)
			if is != succ[1] {
				t.Fatalf("key %q: moved to %s, want next-successor %s", key, is, succ[1])
			}
			moved++
			continue
		}
		if was != is {
			t.Fatalf("key %q: owner changed %s -> %s though %s survived", key, was, is, was)
		}
	}
	if moved == 0 {
		t.Fatal("node5 owned no keys; balance test should have caught this")
	}
}

func TestRouteOwnerSkipsDead(t *testing.T) {
	cfg := Config{Self: "node1", Peers: testPeers(3)}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Find a key owned by node2, then kill node2: the route owner must
	// become the next alive successor, deterministically.
	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("job/b-%d", i)
		if n.ring.owner(key) == "node2" {
			break
		}
	}
	if got := n.RouteOwner(key); got != "node2" {
		t.Fatalf("RouteOwner(%q) = %s, want node2 while alive", key, got)
	}
	n.mu.Lock()
	n.members["node2"].state = StateDead
	n.mu.Unlock()
	succ := n.ring.successors(key)
	if got := n.RouteOwner(key); got != succ[1] {
		t.Fatalf("RouteOwner(%q) with node2 dead = %s, want %s", key, got, succ[1])
	}
	// All dead: fall back to the primary owner rather than nobody.
	n.mu.Lock()
	for _, m := range n.members {
		m.state = StateDead
	}
	n.mu.Unlock()
	if got := n.RouteOwner(key); got != "node2" && got != "node1" {
		t.Fatalf("RouteOwner(%q) with all dead = %s, want a deterministic fallback", key, got)
	}
}

func TestConfigValidate(t *testing.T) {
	peers := testPeers(3)
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid", Config{Self: "node1", Peers: peers}, true},
		{"no self", Config{Peers: peers}, false},
		{"self not listed", Config{Self: "ghost", Peers: peers}, false},
		{"single peer", Config{Self: "node1", Peers: peers[:1]}, false},
		{"dup id", Config{Self: "node1", Peers: []Peer{peers[0], peers[0]}}, false},
		{"empty url", Config{Self: "node1", Peers: []Peer{peers[0], {ID: "node2"}}}, false},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}
