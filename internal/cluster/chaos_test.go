package cluster

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// chaosPeers binds peer ids to a test server's host so the transport
// recognizes the target.
func chaosPeers(ts *httptest.Server) []Peer {
	return []Peer{{ID: "n2", URL: ts.URL}}
}

func TestChaosDecideDeterministic(t *testing.T) {
	rules := []ChaosRule{
		{Peer: "*", Drop: 0.3, DelayRate: 0.5, DelayMin: 10 * time.Millisecond, DelayMax: 50 * time.Millisecond, Corrupt: 0.2},
	}
	a := NewChaosTransport(42, rules, nil, nil)
	b := NewChaosTransport(42, rules, nil, nil)
	c := NewChaosTransport(43, rules, nil, nil)
	same, diff := true, false
	for seq := uint64(0); seq < 200; seq++ {
		da := a.decide("n2", seq, time.Second)
		db := b.decide("n2", seq, time.Second)
		dc := c.decide("n2", seq, time.Second)
		if da != db {
			same = false
		}
		if da != dc {
			diff = true
		}
	}
	if !same {
		t.Fatal("identical seeds produced different decision streams")
	}
	if !diff {
		t.Fatal("different seeds produced identical decision streams")
	}
}

func TestChaosDecidePerPeerIndependence(t *testing.T) {
	rules := []ChaosRule{{Peer: "*", Drop: 0.5}}
	tr := NewChaosTransport(7, rules, nil, nil)
	diff := false
	for seq := uint64(0); seq < 100; seq++ {
		if tr.decide("n2", seq, 0) != tr.decide("n3", seq, 0) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("peers n2 and n3 share a decision stream")
	}
}

func TestChaosWindowActivation(t *testing.T) {
	rules := []ChaosRule{{Peer: "n2", From: 2 * time.Second, To: 8 * time.Second, Partition: true}}
	tr := NewChaosTransport(1, rules, nil, nil)
	cases := []struct {
		elapsed time.Duration
		drop    bool
	}{
		{time.Second, false},
		{2 * time.Second, true},
		{5 * time.Second, true},
		{8 * time.Second, false}, // window is [From, To)
		{10 * time.Second, false},
	}
	for _, c := range cases {
		if got := tr.decide("n2", 0, c.elapsed).drop; got != c.drop {
			t.Errorf("at %v: drop = %v, want %v", c.elapsed, got, c.drop)
		}
	}
	if tr.decide("n3", 0, 5*time.Second).drop {
		t.Error("partition of n2 dropped a request to n3")
	}
}

func TestChaosTransportDrop(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("partitioned request reached the server")
	}))
	defer ts.Close()
	tr := NewChaosTransport(1, []ChaosRule{{Peer: "n2", Partition: true}}, chaosPeers(ts), nil)
	client := &http.Client{Transport: tr}
	_, err := client.Get(ts.URL + "/ping")
	if err == nil {
		t.Fatal("partitioned request succeeded")
	}
	var ce *ChaosError
	if !errors.As(err, &ce) {
		t.Fatalf("error = %v, want *ChaosError", err)
	}
	if got := tr.Stats().Drops; got != 1 {
		t.Fatalf("drops = %d, want 1", got)
	}
}

func TestChaosTransportUnknownHostPassesThrough(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"ok":true}`)
	}))
	defer ts.Close()
	// Peer list empty: the server's host is unknown to the transport.
	tr := NewChaosTransport(1, []ChaosRule{{Peer: "*", Partition: true}}, nil, nil)
	client := &http.Client{Transport: tr}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatalf("pass-through request failed: %v", err)
	}
	resp.Body.Close()
	if got := tr.Stats().Drops; got != 0 {
		t.Fatalf("drops = %d for a non-peer host, want 0", got)
	}
}

func TestChaosTransportCorrupt(t *testing.T) {
	const body = `{"node_id":"n2","leases":[]}`
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, body)
	}))
	defer ts.Close()
	tr := NewChaosTransport(1, []ChaosRule{{Peer: "n2", Corrupt: 1}}, chaosPeers(ts), nil)
	client := &http.Client{Transport: tr}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatalf("corrupted request errored at transport level: %v", err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != len(body) {
		t.Fatalf("corrupt body length = %d, want %d (same length contract)", len(raw), len(body))
	}
	if json.Valid(raw) {
		t.Fatalf("corrupt body still valid JSON: %q", raw)
	}
	// Inverting twice restores the original: the corruption is exactly
	// a byte-wise inversion, nothing lossy.
	for i := range raw {
		raw[i] ^= 0xFF
	}
	if string(raw) != body {
		t.Fatalf("double-inverted body = %q, want %q", raw, body)
	}
	if got := tr.Stats().Corrupts; got != 1 {
		t.Fatalf("corrupts = %d, want 1", got)
	}
}

func TestChaosTransportDelayRespectsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	tr := NewChaosTransport(1, []ChaosRule{
		{Peer: "n2", DelayRate: 1, DelayMin: time.Minute, DelayMax: time.Minute},
	}, chaosPeers(ts), nil)
	client := &http.Client{Transport: tr, Timeout: 50 * time.Millisecond}
	start := time.Now()
	_, err := client.Get(ts.URL)
	if err == nil {
		t.Fatal("minute-delayed request succeeded under a 50ms timeout")
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("delay ignored the request context: waited %v", waited)
	}
	if got := tr.Stats().Delays; got != 1 {
		t.Fatalf("delays = %d, want 1", got)
	}
}

func TestParseChaos(t *testing.T) {
	spec := "peer=n2,from=2s,to=8s,partition; peer=*,drop=0.25,delay=0.5@50ms-200ms,corrupt=0.1"
	rules, err := ParseChaos(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("got %d rules, want 2", len(rules))
	}
	r0 := rules[0]
	if r0.Peer != "n2" || r0.From != 2*time.Second || r0.To != 8*time.Second || !r0.Partition {
		t.Fatalf("rule 0 = %+v", r0)
	}
	r1 := rules[1]
	if r1.Peer != "*" || r1.Drop != 0.25 || r1.DelayRate != 0.5 ||
		r1.DelayMin != 50*time.Millisecond || r1.DelayMax != 200*time.Millisecond || r1.Corrupt != 0.1 {
		t.Fatalf("rule 1 = %+v", r1)
	}
	// Single-point delay: "delay=1@300ms" means exactly 300ms.
	rules, err = ParseChaos("peer=n2,delay=1@300ms")
	if err != nil {
		t.Fatal(err)
	}
	if rules[0].DelayMin != 300*time.Millisecond || rules[0].DelayMax != 300*time.Millisecond {
		t.Fatalf("point delay = [%v, %v], want [300ms, 300ms]", rules[0].DelayMin, rules[0].DelayMax)
	}
}

func TestParseChaosErrors(t *testing.T) {
	bad := []string{
		"from=2s,partition",            // missing peer
		"peer=n2,drop=1.5",             // probability out of range
		"peer=n2,delay=0.5",            // delay without @range
		"peer=n2,delay=1@500ms-200ms",  // max < min
		"peer=n2,banana=1",             // unknown field
		"peer=n2,from=soon,partition",  // unparseable duration
		"peer=n2,nonsense",             // bare field that is not "partition"
	}
	for _, spec := range bad {
		if _, err := ParseChaos(spec); err == nil {
			t.Errorf("ParseChaos(%q) accepted a bad spec", spec)
		}
	}
	if rules, err := ParseChaos("  ;; "); err != nil || len(rules) != 0 {
		t.Errorf("empty spec: rules=%v err=%v", rules, err)
	}
}
