package cluster

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mtsim/internal/rng"
)

// The chaos transport makes fleet failure modes reproducible: it wraps
// the http.RoundTripper used by every intra-cluster call (forwarding,
// replication, lease gossip, heartbeats) and injects faults — drops,
// asymmetric partitions, added latency, corrupted replies — on a
// scheduled per-peer basis. Determinism reuses the fault-model
// substream discipline from internal/rng: every injection decision is
// a pure function of (seed, peer, per-peer request sequence number,
// rule index), drawn from rng.Fork substreams, so a chaos run replays
// identically no matter how goroutines interleave. Asymmetry falls out
// of placement: chaos is installed per node, so node A dropping its
// requests to B says nothing about B's path to A.

// ChaosRule is one scheduled injection: which peer it targets, when it
// is active, and what it does. A request is matched against every rule;
// effects combine (drop wins, delays take the max).
type ChaosRule struct {
	// Peer is the target peer id, or "*" for every peer.
	Peer string
	// From/To bound the active window, measured from transport creation.
	// To == 0 means the rule never expires.
	From, To time.Duration
	// Partition drops every matched request (Drop = 1 shorthand).
	Partition bool
	// Drop is the probability a matched request is dropped: the request
	// never reaches the wire and the caller sees a transport error.
	Drop float64
	// DelayRate is the probability a matched request is delayed by a
	// seeded duration in [DelayMin, DelayMax].
	DelayRate          float64
	DelayMin, DelayMax time.Duration
	// Corrupt is the probability a matched reply's body is corrupted
	// (every byte inverted — guaranteed-invalid JSON, same length).
	Corrupt float64
}

// ChaosStats counts injected faults.
type ChaosStats struct {
	Drops    int64 `json:"drops"`
	Delays   int64 `json:"delays"`
	Corrupts int64 `json:"corrupts"`
}

// ChaosError is the synthetic transport error for a dropped request.
type ChaosError struct {
	Peer string
	Seq  uint64
}

func (e *ChaosError) Error() string {
	return fmt.Sprintf("chaos: dropped request to %s (seq %d)", e.Peer, e.Seq)
}

// ChaosTransport is a seeded fault-injecting http.RoundTripper. Build
// with NewChaosTransport and install it as cluster.Config.Transport;
// requests to hosts that are not configured peers pass through clean.
type ChaosTransport struct {
	base  http.RoundTripper
	rules []ChaosRule
	root  *rng.R // forked per decision, never advanced
	epoch time.Time
	now   func() time.Time

	hostPeer map[string]string // URL host -> peer id

	mu  sync.Mutex
	seq map[string]uint64 // per-peer request sequence counter

	drops, delays, corrupts atomic.Int64
}

// NewChaosTransport builds a chaos transport over base (nil means
// http.DefaultTransport) targeting the given peers. The schedule clock
// starts now: rule windows are relative to this call.
func NewChaosTransport(seed uint64, rules []ChaosRule, peers []Peer, base http.RoundTripper) *ChaosTransport {
	if base == nil {
		base = http.DefaultTransport
	}
	t := &ChaosTransport{
		base:     base,
		rules:    rules,
		root:     rng.New(seed),
		epoch:    time.Now(),
		now:      time.Now,
		hostPeer: make(map[string]string, len(peers)),
		seq:      make(map[string]uint64, len(peers)),
	}
	for _, p := range peers {
		if u, err := url.Parse(p.URL); err == nil && u.Host != "" {
			t.hostPeer[u.Host] = p.ID
		}
	}
	return t
}

// Stats returns the injected-fault counters so far.
func (t *ChaosTransport) Stats() ChaosStats {
	return ChaosStats{Drops: t.drops.Load(), Delays: t.delays.Load(), Corrupts: t.corrupts.Load()}
}

type chaosDecision struct {
	drop    bool
	delay   time.Duration
	corrupt bool
}

// decide is the pure injection function: identical (seed, peer, seq,
// rules, elapsed) always yield the identical decision. Each rule draws
// from its own rng.Fork substream keyed by (peer, seq, rule index), so
// no rule's draws shift another's.
func (t *ChaosTransport) decide(peer string, seq uint64, elapsed time.Duration) chaosDecision {
	var d chaosDecision
	r := t.root.Fork(hashKey(peer)).Fork(seq)
	for i, rule := range t.rules {
		if rule.Peer != "*" && rule.Peer != peer {
			continue
		}
		if elapsed < rule.From || (rule.To > 0 && elapsed >= rule.To) {
			continue
		}
		rr := r.Fork(uint64(i))
		if rule.Partition || (rule.Drop > 0 && rr.Float() < rule.Drop) {
			d.drop = true
		}
		if rule.DelayRate > 0 && rr.Float() < rule.DelayRate {
			delay := rule.DelayMin
			if rule.DelayMax > rule.DelayMin {
				delay += time.Duration(rr.Intn(int64(rule.DelayMax - rule.DelayMin)))
			}
			if delay > d.delay {
				d.delay = delay
			}
		}
		if rule.Corrupt > 0 && rr.Float() < rule.Corrupt {
			d.corrupt = true
		}
	}
	return d
}

func (t *ChaosTransport) nextSeq(peer string) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.seq[peer]
	t.seq[peer] = s + 1
	return s
}

// RoundTrip implements http.RoundTripper.
func (t *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	peer, ok := t.hostPeer[req.URL.Host]
	if !ok {
		return t.base.RoundTrip(req)
	}
	seq := t.nextSeq(peer)
	d := t.decide(peer, seq, t.now().Sub(t.epoch))
	if d.drop {
		if req.Body != nil {
			req.Body.Close()
		}
		t.drops.Add(1)
		return nil, &ChaosError{Peer: peer, Seq: seq}
	}
	if d.delay > 0 {
		t.delays.Add(1)
		timer := time.NewTimer(d.delay)
		select {
		case <-req.Context().Done():
			timer.Stop()
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	resp, err := t.base.RoundTrip(req)
	if err == nil && d.corrupt {
		t.corrupts.Add(1)
		resp.Body = &corruptReader{rc: resp.Body}
	}
	return resp, err
}

// corruptReader inverts every byte of the wrapped body: same length
// (Content-Length stays honest) but guaranteed-invalid JSON, so every
// internal consumer detects the damage at decode time.
type corruptReader struct{ rc io.ReadCloser }

func (c *corruptReader) Read(p []byte) (int, error) {
	n, err := c.rc.Read(p)
	for i := 0; i < n; i++ {
		p[i] ^= 0xFF
	}
	return n, err
}

func (c *corruptReader) Close() error { return c.rc.Close() }

// ParseChaos parses the -chaos flag's schedule spec: semicolon-
// separated rules, each a comma-separated field list:
//
//	peer=<id|*>            target peer (required)
//	from=<dur> to=<dur>    active window since startup (default: always)
//	partition              drop everything in the window
//	drop=<p>               drop probability in [0,1]
//	delay=<p>@<min>-<max>  delay probability and seeded delay range
//	corrupt=<p>            reply-corruption probability in [0,1]
//
// Example: "peer=n2,from=2s,to=8s,partition;peer=n2,from=8s,delay=1@300ms-500ms"
func ParseChaos(spec string) ([]ChaosRule, error) {
	var rules []ChaosRule
	for _, rs := range strings.Split(spec, ";") {
		rs = strings.TrimSpace(rs)
		if rs == "" {
			continue
		}
		var rule ChaosRule
		for _, field := range strings.Split(rs, ",") {
			field = strings.TrimSpace(field)
			if field == "partition" {
				rule.Partition = true
				continue
			}
			k, v, ok := strings.Cut(field, "=")
			if !ok {
				return nil, fmt.Errorf("chaos: bad field %q in rule %q", field, rs)
			}
			var err error
			switch k {
			case "peer":
				rule.Peer = v
			case "from":
				rule.From, err = time.ParseDuration(v)
			case "to":
				rule.To, err = time.ParseDuration(v)
			case "drop":
				rule.Drop, err = parseProb(v)
			case "corrupt":
				rule.Corrupt, err = parseProb(v)
			case "delay":
				rate, rng, ok := strings.Cut(v, "@")
				if !ok {
					return nil, fmt.Errorf("chaos: delay wants <p>@<min>-<max>, got %q", v)
				}
				if rule.DelayRate, err = parseProb(rate); err != nil {
					break
				}
				lo, hi, _ := strings.Cut(rng, "-")
				if rule.DelayMin, err = time.ParseDuration(lo); err != nil {
					break
				}
				rule.DelayMax = rule.DelayMin
				if hi != "" {
					rule.DelayMax, err = time.ParseDuration(hi)
				}
			default:
				return nil, fmt.Errorf("chaos: unknown field %q in rule %q", k, rs)
			}
			if err != nil {
				return nil, fmt.Errorf("chaos: bad %s in rule %q: %v", k, rs, err)
			}
		}
		if rule.Peer == "" {
			return nil, fmt.Errorf("chaos: rule %q needs peer=<id|*>", rs)
		}
		if rule.DelayMax < rule.DelayMin {
			return nil, fmt.Errorf("chaos: rule %q has delay max < min", rs)
		}
		rules = append(rules, rule)
	}
	return rules, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0,1]", p)
	}
	return p, nil
}
