package cluster

import (
	"testing"
	"time"
)

// testClock is a manually-advanced clock for breaker tests.
type testClock struct{ t time.Time }

func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *testClock) {
	clk := &testClock{t: time.Unix(1000, 0)}
	b := NewBreaker(threshold, cooldown)
	b.now = clk.now
	return b, clk
}

func TestBreakerTripThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Report(false)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after 2/3 failures = %q, want closed", got)
	}
	b.Report(false) // third consecutive failure trips
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after threshold failures = %q, want open", got)
	}
	if got := b.Trips(); got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	if !b.Tripped() {
		t.Fatal("Tripped() = false for an open breaker inside its cooldown")
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.Report(false)
	b.Report(false)
	b.Report(true) // success wipes the streak
	b.Report(false)
	b.Report(false)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %q after a reset streak, want closed", got)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Report(false) // trip
	clk.advance(time.Second)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state past cooldown = %q, want half-open", got)
	}
	if !b.Allow() {
		t.Fatal("cooled-down breaker refused the half-open probe")
	}
	// Only one probe at a time: the next caller must wait.
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Report(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after probe success = %q, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("re-closed breaker refused a request")
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Report(false)
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.Report(false) // probe failed: reopen, cooldown restarts
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after probe failure = %q, want open", got)
	}
	if got := b.Trips(); got != 2 {
		t.Fatalf("trips = %d, want 2", got)
	}
	if b.Allow() {
		t.Fatal("reopened breaker admitted a request inside the new cooldown")
	}
}

func TestBreakerLostProbeReadmits(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Report(false)
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	// The probe's caller dies without reporting. After another cooldown
	// the circuit admits a fresh probe instead of blocking forever.
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("breaker never re-admitted after a lost probe")
	}
}

func TestBreakerStaleReportIgnoredWhileOpen(t *testing.T) {
	b, _ := newTestBreaker(1, time.Second)
	b.Report(false) // trip
	// A request admitted before the trip finishes now, successfully.
	// Its evidence is stale: the circuit must stay open.
	b.Report(true)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after stale success report = %q, want open", got)
	}
}

func TestBreakerTrippedIsNonConsuming(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Report(false)
	clk.advance(time.Second)
	// Ring lookups ask Tripped() repeatedly; none of those calls may
	// consume the half-open probe slot.
	for i := 0; i < 5; i++ {
		if b.Tripped() {
			t.Fatalf("Tripped() = true past the cooldown (call %d)", i)
		}
	}
	if !b.Allow() {
		t.Fatal("probe slot was consumed by Tripped() calls")
	}
}

func TestRouteOwnerSkipsTrippedPeer(t *testing.T) {
	peers := []Peer{
		{ID: "n1", URL: "http://127.0.0.1:1"},
		{ID: "n2", URL: "http://127.0.0.1:2"},
		{ID: "n3", URL: "http://127.0.0.1:3"},
	}
	n, err := New(Config{Self: "n1", Peers: peers, BreakerThreshold: 1, BreakerCooldown: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	// Find a key owned by a remote peer.
	var key, owner string
	for i := 0; i < 1000; i++ {
		k := "key-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if o := n.RouteOwner(k); o != "n1" {
			key, owner = k, o
			break
		}
	}
	if key == "" {
		t.Fatal("no remote-owned key found")
	}
	n.ReportPeer(owner, false) // trip the owner's breaker
	moved := n.RouteOwner(key)
	if moved == owner {
		t.Fatalf("RouteOwner still %q with its breaker open", owner)
	}
	// All remote breakers tripped: the walk reaches self (never
	// tripped), so this node adopts the route rather than sending the
	// request somewhere known-unreachable.
	for _, p := range peers {
		if p.ID != "n1" {
			n.ReportPeer(p.ID, false)
		}
	}
	if got := n.RouteOwner(key); got != "n1" {
		t.Fatalf("RouteOwner = %q with every remote breaker open, want self", got)
	}
}

func TestBreakerStatesSorted(t *testing.T) {
	peers := []Peer{
		{ID: "n3", URL: "http://127.0.0.1:3"},
		{ID: "n1", URL: "http://127.0.0.1:1"},
		{ID: "n2", URL: "http://127.0.0.1:2"},
	}
	n, err := New(Config{Self: "n1", Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	states := n.BreakerStates()
	if len(states) != 2 {
		t.Fatalf("got %d breaker states, want 2 (self excluded)", len(states))
	}
	if states[0].Peer != "n2" || states[1].Peer != "n3" {
		t.Fatalf("states not sorted by peer: %+v", states)
	}
	for _, st := range states {
		if st.State != BreakerClosed {
			t.Fatalf("fresh breaker %s state = %q, want closed", st.Peer, st.State)
		}
	}
}

func TestBreakersDisabled(t *testing.T) {
	peers := []Peer{
		{ID: "n1", URL: "http://127.0.0.1:1"},
		{ID: "n2", URL: "http://127.0.0.1:2"},
	}
	n, err := New(Config{Self: "n1", Peers: peers, BreakerThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if b := n.Breaker("n2"); b != nil {
		t.Fatal("breaker exists with BreakerThreshold < 0")
	}
	n.ReportPeer("n2", false) // must not panic
	if got := len(n.BreakerStates()); got != 0 {
		t.Fatalf("BreakerStates returned %d entries with breakers disabled", got)
	}
}
