// Package cluster is the fault-tolerance brain of a multi-node mtsimd
// fleet: static-seed membership with heartbeat health probing, a
// consistent-hash ring that routes session keys and job ids to owner
// nodes, and a gossiped job-lease table whose expiries drive failover.
//
// The design follows the paper's thesis applied to the serving plane: a
// node death is just a very long latency event, and the fleet masks it
// by always having somewhere else ready to run the work. Concretely:
//
//   - membership: every node probes every peer each HeartbeatEvery via
//     GET /v1/cluster/ping; a peer silent past SuspectAfter is suspect,
//     past DeadAfter dead, and a successful probe of a dead peer marks
//     it alive again (rejoin);
//   - routing: the ring orders all configured nodes per key; the route
//     owner is the first ALIVE node in that order, so ownership moves
//     deterministically when nodes die and moves back when they rejoin;
//   - leases: ping replies carry the prober's view of the peer's owned
//     jobs (job id, status, checkpoint progress, remaining TTL). Each
//     node folds these into a lease table with locally-clocked expiries
//     (received-at + TTL, never comparing remote clocks). When a lease's
//     holder is dead and the lease has expired, the route owner of the
//     job claims it via the OnExpiredLease hook.
//
// The package is HTTP-client-only: it probes peers and decides, while
// internal/serve owns all HTTP serving (ping endpoint, state transfer,
// request forwarding) and the journal side of leases. That keeps the
// dependency one-way (serve imports cluster) and the ring/membership
// logic testable without a server.
package cluster

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Peer identifies one configured cluster member.
type Peer struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// Health states of a member, as decided by the local prober.
const (
	StateAlive   = "alive"
	StateSuspect = "suspect"
	StateDead    = "dead"
)

// Config parameterizes a Node. Self and Peers are required; every other
// field defaults sensibly (see withDefaults).
type Config struct {
	// Self is this node's id; it must appear in Peers.
	Self string
	// Peers is the static seed membership, including self.
	Peers []Peer
	// HeartbeatEvery is the probe period (default 500ms).
	HeartbeatEvery time.Duration
	// SuspectAfter marks a silent peer suspect (default 3x heartbeat);
	// DeadAfter marks it dead (default 6x heartbeat). Dead is what
	// arms lease claims, so DeadAfter bounds how fast failover can be.
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// LeaseTTL is how long a job lease stays valid without renewal
	// (default 3s). Ping replies renew every owned lease implicitly.
	LeaseTTL time.Duration
	// Replicas is how many nodes (owner included) hold a copy of each
	// async job's state (default 2, clamped to the cluster size).
	Replicas int
	// VNodes is the ring's virtual-node count per member (default 64).
	VNodes int
	// Client probes peers (default: a client with HeartbeatEvery
	// timeout so one hung peer cannot stall the probe round).
	Client *http.Client
	// Transport, when set, underlies every intra-cluster HTTP client —
	// the probe client built here and the forwarding/state-transfer
	// clients the serve layer derives from this config. The chaos
	// transport plugs in through this seam.
	Transport http.RoundTripper
	// BreakerThreshold is how many consecutive request-path failures
	// trip a peer's circuit breaker (default 5; negative disables
	// breakers entirely). BreakerCooldown is how long an open breaker
	// refuses traffic before admitting a half-open probe (default 2s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

func (c Config) withDefaults() Config {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 500 * time.Millisecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3 * c.HeartbeatEvery
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 6 * c.HeartbeatEvery
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 3 * time.Second
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Replicas > len(c.Peers) {
		c.Replicas = len(c.Peers)
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: c.HeartbeatEvery, Transport: c.Transport}
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	return c
}

// Validate rejects configurations a Node cannot run with.
func (c Config) Validate() error {
	if c.Self == "" {
		return errors.New("cluster: node id must be set")
	}
	if len(c.Peers) < 2 {
		return errors.New("cluster: need at least two peers (self included)")
	}
	seen := make(map[string]bool, len(c.Peers))
	selfListed := false
	for _, p := range c.Peers {
		if p.ID == "" || p.URL == "" {
			return fmt.Errorf("cluster: peer %+v needs both id and url", p)
		}
		if seen[p.ID] {
			return fmt.Errorf("cluster: duplicate peer id %q", p.ID)
		}
		seen[p.ID] = true
		if p.ID == c.Self {
			selfListed = true
		}
	}
	if !selfListed {
		return fmt.Errorf("cluster: self id %q not in peer list", c.Self)
	}
	return nil
}

// Lease is one job lease as gossiped between nodes: who runs the job,
// how far it has checkpointed, and how long the lease is still good for.
type Lease struct {
	JobID      string `json:"job_id"`
	Holder     string `json:"holder"`
	Status     string `json:"status"`
	Checkpoint int64  `json:"checkpoint"`
	// Tenant attributes the job for usage accounting, so a node that
	// claims an expired lease keeps billing the right tenant.
	Tenant string `json:"tenant,omitempty"`
	// TTLMS is the remaining validity in milliseconds. Always relative:
	// receivers re-anchor it to their own clock, so cross-node clock
	// skew never enters a claim decision.
	TTLMS int64 `json:"ttl_ms"`
}

// Member is one node's health as seen by the local prober.
type Member struct {
	ID    string `json:"id"`
	URL   string `json:"url"`
	State string `json:"state"`
	Self  bool   `json:"self,omitempty"`
	// LastSeenMS is milliseconds since the last successful contact
	// (0 for self, -1 before any contact).
	LastSeenMS int64  `json:"last_seen_ms"`
	Err        string `json:"error,omitempty"`
}

// PingResponse is the body of GET /v1/cluster/ping: the peer's identity
// plus the leases it currently holds and the per-tenant usage it has
// accrued locally. internal/serve serves it; this package consumes it.
type PingResponse struct {
	NodeID string  `json:"node_id"`
	Leases []Lease `json:"leases"`
	// Usage is the peer's locally-accrued per-tenant accounting. Each
	// node speaks only for work it executed itself; receivers keep the
	// latest report per (peer, tenant) and sum across peers, so the
	// cluster-wide totals survive any single node's death.
	Usage []TenantUsage `json:"usage,omitempty"`
}

// TenantUsage is one tenant's accrued usage on one node: monotonic
// counters a node gossips on ping replies so accounting survives
// failover. QueueMS is total time jobs waited before dispatch.
type TenantUsage struct {
	Tenant    string `json:"tenant"`
	Jobs      int64  `json:"jobs"`
	SimCycles int64  `json:"sim_cycles"`
	QueueMS   int64  `json:"queue_ms"`
}

// member is the prober's book-keeping for one peer.
type member struct {
	peer     Peer
	state    string
	lastSeen time.Time // zero = never contacted
	anchor   time.Time // when the silence clock started (Start or last contact)
	lastErr  string
}

// remoteLease is a gossiped lease re-anchored to the local clock.
type remoteLease struct {
	Lease
	expires time.Time
}

// Node is one cluster member's view of the fleet. Create with New, wire
// the hooks, then Start the prober. All exported methods are safe for
// concurrent use.
type Node struct {
	cfg    Config
	ring   *ring
	client *http.Client
	now    func() time.Time // injectable clock for tests

	// LocalLeases reports the jobs this node currently owns; the serve
	// layer answers peers' pings with it. Must be set before Start.
	LocalLeases func() []Lease
	// LocalUsage reports this node's locally-accrued per-tenant usage
	// for gossip on ping replies. Optional.
	LocalUsage func() []TenantUsage
	// OnExpiredLease fires (on its own goroutine) when a dead peer's
	// lease has expired and this node is the job's route owner. The
	// hook must call DropLease once the job is claimed or given up;
	// until then the claim is not retried.
	OnExpiredLease func(l Lease)

	// breakers holds one circuit per remote peer (see breaker.go);
	// empty when Config.BreakerThreshold < 0. Fixed after New.
	breakers map[string]*Breaker

	mu       sync.Mutex
	members  map[string]*member
	remote   map[string]*remoteLease
	usage    map[string][]TenantUsage // peer id -> last gossiped usage
	claiming map[string]bool
	started  bool
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New builds a Node from cfg.
func New(cfg Config) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n := &Node{
		cfg:      cfg,
		ring:     newRing(cfg.Peers, cfg.VNodes),
		client:   cfg.Client,
		now:      time.Now,
		members:  make(map[string]*member, len(cfg.Peers)),
		remote:   make(map[string]*remoteLease),
		usage:    make(map[string][]TenantUsage),
		claiming: make(map[string]bool),
		breakers: make(map[string]*Breaker),
		stop:     make(chan struct{}),
	}
	for _, p := range cfg.Peers {
		n.members[p.ID] = &member{peer: p, state: StateAlive}
		if p.ID != cfg.Self && cfg.BreakerThreshold > 0 {
			n.breakers[p.ID] = NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
		}
	}
	return n, nil
}

// Self returns this node's id.
func (n *Node) Self() string { return n.cfg.Self }

// LeaseTTL returns the configured lease validity window.
func (n *Node) LeaseTTL() time.Duration { return n.cfg.LeaseTTL }

// Replicas returns how many nodes hold each job's state.
func (n *Node) Replicas() int { return n.cfg.Replicas }

// PeerURL resolves a member id to its base URL.
func (n *Node) PeerURL(id string) (string, bool) {
	m, ok := n.members[id] // members map is fixed after New
	if !ok {
		return "", false
	}
	return m.peer.URL, true
}

// Alive reports whether id is currently believed alive (self always is).
func (n *Node) Alive(id string) bool {
	if id == n.cfg.Self {
		return true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	m := n.members[id]
	return m != nil && m.state == StateAlive
}

// RouteOwner returns the node that should handle key right now: the
// first alive node in the key's ring-successor order whose circuit
// breaker is not hard-open, falling back to the first merely-alive node
// (all breakers tripped) and then to the primary owner (whole fleet
// looks down). Skipping tripped peers mirrors the dead-peer skip: a
// peer the request path cannot reach should not own routes, even if it
// still answers heartbeats.
func (n *Node) RouteOwner(key string) string {
	succ := n.ring.successors(key)
	n.mu.Lock()
	defer n.mu.Unlock()
	firstAlive := ""
	for _, id := range succ {
		if id == n.cfg.Self {
			return id
		}
		if m := n.members[id]; m != nil && m.state == StateAlive {
			if firstAlive == "" {
				firstAlive = id
			}
			if b := n.breakers[id]; b == nil || !b.Tripped() {
				return id
			}
		}
	}
	if firstAlive != "" {
		return firstAlive
	}
	if len(succ) == 0 {
		return n.cfg.Self
	}
	return succ[0]
}

// Successors returns the first k distinct peers in key's ring order
// regardless of health — the replica placement for the key.
func (n *Node) Successors(key string, k int) []Peer {
	ids := n.ring.successors(key)
	if k < len(ids) {
		ids = ids[:k]
	}
	out := make([]Peer, 0, len(ids))
	for _, id := range ids {
		out = append(out, n.members[id].peer)
	}
	return out
}

// Members returns every member's health, sorted by id, self included.
func (n *Node) Members() []Member {
	now := n.now()
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Member, 0, len(n.members))
	for _, m := range n.members {
		mem := Member{ID: m.peer.ID, URL: m.peer.URL, State: m.state, LastSeenMS: -1}
		if m.peer.ID == n.cfg.Self {
			mem.Self, mem.State, mem.LastSeenMS = true, StateAlive, 0
		} else if !m.lastSeen.IsZero() {
			mem.LastSeenMS = now.Sub(m.lastSeen).Milliseconds()
		}
		mem.Err = m.lastErr
		out = append(out, mem)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AliveCount returns (alive, dead) member counts, self counted alive.
func (n *Node) AliveCount() (alive, dead int) {
	for _, m := range n.Members() {
		switch m.State {
		case StateAlive:
			alive++
		case StateDead:
			dead++
		}
	}
	return alive, dead
}

// RemoteLeases returns the gossiped (non-local) lease table with each
// entry's remaining TTL recomputed against the local clock.
func (n *Node) RemoteLeases() []Lease {
	now := n.now()
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Lease, 0, len(n.remote))
	for _, rl := range n.remote {
		l := rl.Lease
		l.TTLMS = rl.expires.Sub(now).Milliseconds() // may be negative: expired
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].JobID < out[j].JobID })
	return out
}

// RemoteUsage returns the per-tenant usage gossiped by peers, summed
// across nodes and sorted by tenant. Reports from dead peers are kept:
// a node's accrued usage does not vanish with the node, which is what
// lets cluster-wide accounting survive failover.
func (n *Node) RemoteUsage() []TenantUsage {
	n.mu.Lock()
	defer n.mu.Unlock()
	byTenant := make(map[string]TenantUsage)
	for _, list := range n.usage {
		for _, u := range list {
			t := byTenant[u.Tenant]
			t.Tenant = u.Tenant
			t.Jobs += u.Jobs
			t.SimCycles += u.SimCycles
			t.QueueMS += u.QueueMS
			byTenant[u.Tenant] = t
		}
	}
	out := make([]TenantUsage, 0, len(byTenant))
	for _, u := range byTenant {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// NoteLease records lease knowledge learned outside the gossip path —
// the serve layer calls it when an owner pushes replica state, so even
// a node that dies before its first post-submit ping leaves claimable
// evidence on its replicas.
func (n *Node) NoteLease(l Lease) {
	if l.Holder == n.cfg.Self {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.remote[l.JobID] = &remoteLease{Lease: l, expires: n.now().Add(n.cfg.LeaseTTL)}
}

// DropLease removes a job from the gossiped lease table: the claim hook
// calls it after adopting (or abandoning) the job.
func (n *Node) DropLease(jobID string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.remote, jobID)
}
