package cluster

import (
	"sort"
	"sync"
	"time"
)

// Per-peer circuit breakers: the membership prober catches peers that
// stop answering pings, but the failures that dominate real fleets are
// *gray* — a peer that answers its heartbeat in time yet times out or
// errors on real work. A breaker watches the request path itself:
// consecutive forwarding/replication failures trip it open, an open
// breaker takes the peer out of the forwarding rotation (ring lookups
// skip it exactly like a dead peer), and after a cooldown a single
// probe request is let through to decide whether to close again.
//
// States follow the classic machine:
//
//	closed ──threshold consecutive failures──▶ open
//	open ──cooldown elapsed, next Allow──▶ half-open (that caller probes)
//	half-open ──probe success──▶ closed
//	half-open ──probe failure──▶ open (cooldown restarts)
//
// Reports that race a trip (requests admitted before the breaker
// opened, finishing after) are ignored while the breaker is open: they
// carry stale evidence, and the half-open probe is the only request
// whose outcome may close the circuit again.

// Breaker state names, as surfaced on /v1/cluster and /v1/healthz.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// BreakerStatus is one peer's breaker as reported on the cluster and
// health endpoints.
type BreakerStatus struct {
	Peer  string `json:"peer"`
	State string `json:"state"`
	// Trips counts closed→open (and half-open→open) transitions.
	Trips int64 `json:"trips"`
	// Rejects counts requests refused while the breaker was open.
	Rejects int64 `json:"rejects,omitempty"`
}

// Breaker is one peer's circuit. Safe for concurrent use.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    string
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the circuit last tripped
	probeAt  time.Time // when the current half-open probe was admitted
	trips    int64
	rejects  int64
}

// NewBreaker builds a closed breaker that trips after threshold
// consecutive failures and re-probes every cooldown.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now, state: BreakerClosed}
}

// Allow reports whether a request to the peer may proceed. In the open
// state it refuses until the cooldown has elapsed, then admits exactly
// one caller as the half-open probe; that caller's Report decides the
// next state. A probe that never reports (caller died) stops blocking
// the circuit after another cooldown.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	switch b.state {
	case BreakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			b.rejects++
			return false
		}
		b.state = BreakerHalfOpen
		b.probeAt = now
		return true
	case BreakerHalfOpen:
		if now.Sub(b.probeAt) < b.cooldown {
			b.rejects++
			return false
		}
		b.probeAt = now // previous probe lost; admit a fresh one
		return true
	default:
		return true
	}
}

// Report feeds one request outcome into the circuit.
func (b *Breaker) Report(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if ok {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.threshold {
			b.tripLocked()
		}
	case BreakerHalfOpen:
		if ok {
			b.state = BreakerClosed
			b.fails = 0
		} else {
			b.tripLocked()
		}
	case BreakerOpen:
		// Stale report from a request admitted before the trip: ignore.
	}
}

func (b *Breaker) tripLocked() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.fails = 0
	b.trips++
}

// Tripped reports whether the circuit is hard-open: open and still in
// its cooldown. Ring lookups use this (it never admits a probe), so a
// peer becomes routable again the moment its circuit is ready to
// half-open — the first forwarded request then is the probe.
func (b *Breaker) Tripped() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == BreakerOpen && b.now().Sub(b.openedAt) < b.cooldown
}

// State returns the effective state name: an open breaker whose
// cooldown has elapsed reports half-open (it will admit a probe).
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// Trips returns how many times the circuit has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

func (b *Breaker) status(peer string) BreakerStatus {
	st := b.State()
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStatus{Peer: peer, State: st, Trips: b.trips, Rejects: b.rejects}
}

// Breaker returns the circuit for peer id, or nil for self, unknown
// peers, or when breakers are disabled.
func (n *Node) Breaker(id string) *Breaker { return n.breakers[id] }

// ReportPeer feeds one request outcome into id's breaker. The serve
// layer calls it after every forwarding, replication, and state-fetch
// attempt; ok must be false only for transport-level failures (errors,
// timeouts), never for well-formed application errors.
func (n *Node) ReportPeer(id string, ok bool) {
	if b := n.breakers[id]; b != nil {
		b.Report(ok)
	}
}

// BreakerStates returns every peer's breaker status, sorted by peer id.
func (n *Node) BreakerStates() []BreakerStatus {
	out := make([]BreakerStatus, 0, len(n.breakers))
	for id, b := range n.breakers {
		out = append(out, b.status(id))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}
