// Package isa defines the instruction set of the simulated multiprocessor.
//
// The instruction set follows the paper's machine model (§3): a pipelined
// RISC processor modelled on the MIPS R3000, supplemented with
//
//   - local and shared versions of all load and store instructions,
//   - Load-Double and Store-Double to reduce the number of network messages,
//   - Fetch-and-Add as the synchronization primitive, and
//   - an explicit context switch instruction (Switch) plus a split-phase
//     Use instruction for the switch-on-use model family.
//
// Each thread has 32 integer registers (R0 is hard-wired to zero) and 32
// floating-point registers. Instructions carry symbolic register operands,
// a 64-bit immediate, and a branch target. Cycle costs approximate R3000 /
// R3010 timings (see Cost).
package isa

import "fmt"

// Op is an instruction opcode.
type Op uint8

// Opcodes. The groupings matter: predicates below (IsSharedLoad, IsBranch,
// ...) are defined in terms of contiguous ranges, and the machine,
// optimizer and assembler all dispatch on them.
const (
	Nop Op = iota

	// Integer ALU, register-register: Rd <- Rs op Rt.
	Add
	Sub
	Mul
	Div
	Rem
	And
	Or
	Xor
	Nor
	Sll
	Srl
	Sra
	Slt  // set if Rs < Rt (signed)
	Sltu // set if Rs < Rt (unsigned)

	// Integer ALU, register-immediate: Rd <- Rs op Imm.
	Addi
	Muli
	Andi
	Ori
	Xori
	Slli
	Srli
	Srai
	Slti
	Li // Rd <- Imm (64-bit load immediate)

	// Moves between register banks.
	Mov  // Rd <- Rs (integer)
	Fmov // Fd <- Fs
	Mtf  // Fd <- bits or converted value of Rs (see CvtIF for conversion)
	Mff  // Rd <- raw bits of Fs

	// Floating point: Fd <- Fs op Ft.
	Fadd
	Fsub
	Fmul
	Fdiv
	Fneg
	Fabs
	Fsqrt
	Fmin
	Fmax
	CvtIF // Fd <- float64(Rs)
	CvtFI // Rd <- int64(Fs) (truncating)
	Feq   // Rd <- 1 if Fs == Ft
	Flt   // Rd <- 1 if Fs < Ft
	Fle   // Rd <- 1 if Fs <= Ft

	// Control flow. Branch targets are label references resolved by the
	// program builder into absolute instruction indices.
	Beq  // branch if Rs == Rt
	Bne  // branch if Rs != Rt
	Blt  // branch if Rs < Rt (signed)
	Bge  // branch if Rs >= Rt (signed)
	Beqz // branch if Rs == 0
	Bnez // branch if Rs != 0
	J    // unconditional jump
	Jal  // jump and link: R31 <- return index
	Jr   // jump to address in Rs (returns)
	Halt // thread terminates

	// Local memory (serviced by the processor-local cache/memory; never
	// causes a context switch, §3). Address is Rs + Imm, in words.
	Lw  // Rd <- local[Rs+Imm]
	Sw  // local[Rs+Imm] <- Rt
	Ld  // Rd, R(d+1) <- local[Rs+Imm], local[Rs+Imm+1]
	Sd  // local[Rs+Imm], local[Rs+Imm+1] <- Rt, R(t+1)
	Flw // Fd <- local[Rs+Imm]
	Fsw // local[Rs+Imm] <- Ft

	// Shared memory (traverses the interconnection network; the
	// multithreading models differ in how these interact with context
	// switching). Address is Rs + Imm, in words of the shared space.
	LwS  // Rd <- shared[Rs+Imm]
	LdS  // Rd, R(d+1) <- shared[Rs+Imm], shared[Rs+Imm+1] (one message)
	FlwS // Fd <- shared[Rs+Imm]
	Faa  // Rd <- fetch-and-add(shared[Rs+Imm], Rt); atomic at memory
	SwS  // shared[Rs+Imm] <- Rt
	SdS  // shared[Rs+Imm], shared[Rs+Imm+1] <- Rt, R(t+1) (one message)
	FswS // shared[Rs+Imm] <- Ft

	// Multithreading control.
	Switch // explicit context switch (conditional under a cache, §6)
	Use    // wait until the pending load targeting register Rs completed

	// Critical-region annotations (the §6.2 extension: "priority
	// scheduling of threads inside critical regions"). Emitted by the
	// lock macros; scheduling hints only, no architectural effect.
	CritEnter
	CritExit

	numOps // sentinel; must be last
)

// NumOps is the number of defined opcodes.
const NumOps = int(numOps)

// Register file shape (paper §3: 32 integer and 32 floating point
// registers per thread).
const (
	NumIntRegs = 32
	NumFPRegs  = 32
)

// Conventional register assignments. The machine initializes these when a
// thread starts; everything else is zero.
const (
	RZero = 0  // hard-wired zero
	RTid  = 1  // global thread id, 0..NumThreads-1
	RNth  = 2  // total number of threads
	RPid  = 3  // processor id
	RRet  = 31 // link register written by Jal
)

// names maps opcodes to their assembly mnemonics.
var names = [numOps]string{
	Nop: "nop",
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Rem: "rem",
	And: "and", Or: "or", Xor: "xor", Nor: "nor",
	Sll: "sll", Srl: "srl", Sra: "sra", Slt: "slt", Sltu: "sltu",
	Addi: "addi", Muli: "muli", Andi: "andi", Ori: "ori", Xori: "xori",
	Slli: "slli", Srli: "srli", Srai: "srai", Slti: "slti", Li: "li",
	Mov: "mov", Fmov: "fmov", Mtf: "mtf", Mff: "mff",
	Fadd: "fadd", Fsub: "fsub", Fmul: "fmul", Fdiv: "fdiv",
	Fneg: "fneg", Fabs: "fabs", Fsqrt: "fsqrt", Fmin: "fmin", Fmax: "fmax",
	CvtIF: "cvt.i.f", CvtFI: "cvt.f.i",
	Feq: "feq", Flt: "flt", Fle: "fle",
	Beq: "beq", Bne: "bne", Blt: "blt", Bge: "bge", Beqz: "beqz", Bnez: "bnez",
	J: "j", Jal: "jal", Jr: "jr", Halt: "halt",
	Lw: "lw", Sw: "sw", Ld: "ld", Sd: "sd", Flw: "flw", Fsw: "fsw",
	LwS: "lw.s", LdS: "ld.s", FlwS: "flw.s", Faa: "faa",
	SwS: "sw.s", SdS: "sd.s", FswS: "fsw.s",
	Switch: "switch", Use: "use",
	CritEnter: "crit.enter", CritExit: "crit.exit",
}

// String returns the assembly mnemonic of the opcode.
func (o Op) String() string {
	if int(o) < len(names) && names[o] != "" {
		return names[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < numOps && (o == Nop || names[o] != "") }

// costs holds the busy-cycle cost of each opcode, approximating R3000
// integer and R3010 floating-point timings. Loads cost one issue cycle;
// the memory latency itself is modelled by the machine, not the opcode.
var costs = [numOps]uint8{
	Mul: 5, Div: 19, Rem: 19, Muli: 5,
	Fadd: 2, Fsub: 2, Fmul: 5, Fdiv: 19, Fsqrt: 19,
	Fneg: 1, Fabs: 1, Fmin: 2, Fmax: 2,
	CvtIF: 2, CvtFI: 2,
	Feq: 2, Flt: 2, Fle: 2,
}

// Cost returns the number of busy cycles the opcode occupies the
// processor. Every opcode costs at least one cycle.
func (o Op) Cost() int {
	if c := costs[o]; c > 0 {
		return int(c)
	}
	return 1
}

// Predicates used by the machine, optimizer and assembler.

// IsSharedLoad reports whether o reads shared memory through the network
// and therefore interacts with the context-switch policy. Fetch-and-Add
// counts: it returns a value from memory.
func (o Op) IsSharedLoad() bool { return o >= LwS && o <= Faa }

// IsSharedStore reports whether o writes shared memory (fire-and-forget;
// never blocks the issuing thread, §2 "shared stores don't wait").
func (o Op) IsSharedStore() bool { return o >= SwS && o <= FswS }

// IsSharedAccess reports whether o touches shared memory at all.
func (o Op) IsSharedAccess() bool { return o >= LwS && o <= FswS }

// IsLocalLoad reports whether o reads processor-local memory.
func (o Op) IsLocalLoad() bool { return o == Lw || o == Ld || o == Flw }

// IsLocalStore reports whether o writes processor-local memory.
func (o Op) IsLocalStore() bool { return o == Sw || o == Sd || o == Fsw }

// IsMemAccess reports whether o is any load or store.
func (o Op) IsMemAccess() bool { return o >= Lw && o <= FswS }

// IsBranch reports whether o is a conditional branch.
func (o Op) IsBranch() bool { return o >= Beq && o <= Bnez }

// IsControl reports whether o can change the flow of control (branches,
// jumps, halt). Such instructions end a basic block.
func (o Op) IsControl() bool { return o >= Beq && o <= Halt }

// IsDouble reports whether o moves a two-word datum.
func (o Op) IsDouble() bool { return o == Ld || o == Sd || o == LdS || o == SdS }

// IsFPOp reports whether o is executed by the floating-point unit.
func (o Op) IsFPOp() bool { return o >= Fadd && o <= Fle }

// Instr is one instruction. Operand meaning depends on the opcode class:
//
//   - ALU reg-reg:    Rd <- Rs op Rt
//   - ALU reg-imm:    Rd <- Rs op Imm
//   - FP:             Fd <- Fs op Ft (register numbers name the FP bank)
//   - branches:       compare Rs (and Rt), jump to Target
//   - loads:          Rd (or Fd) <- mem[Rs + Imm]
//   - stores:         mem[Rs + Imm] <- Rt (or Ft)
//   - Faa:            Rd <- shared[Rs+Imm]; shared[Rs+Imm] += Rt
//   - Use:            wait on the pending load whose destination is Rs
//
// Target holds an absolute instruction index after label resolution; the
// builder stores a label id there until Resolve runs.
type Instr struct {
	Op     Op
	Rd     uint8
	Rs     uint8
	Rt     uint8
	Imm    int64
	Target int32

	// Spin marks synchronization spin traffic (lock and barrier probe
	// loops). The paper excludes these messages from bandwidth figures
	// (§6.1 footnote 2): a real machine would provide non-spinning
	// mechanisms for these operations.
	Spin bool
}

// Validate checks structural invariants of the instruction: opcode
// defined, register indices in range, branch targets only on control
// instructions.
func (in Instr) Validate() error {
	if !in.Op.Valid() {
		return fmt.Errorf("invalid opcode %d", uint8(in.Op))
	}
	lim := uint8(NumIntRegs)
	if in.Rd >= lim || in.Rs >= lim || in.Rt >= lim {
		return fmt.Errorf("%s: register operand out of range (rd=%d rs=%d rt=%d)", in.Op, in.Rd, in.Rs, in.Rt)
	}
	if in.Op.IsDouble() {
		if in.Op == Ld || in.Op == LdS {
			if in.Rd+1 >= lim {
				return fmt.Errorf("%s: double destination r%d overflows register file", in.Op, in.Rd)
			}
		} else if in.Rt+1 >= lim {
			return fmt.Errorf("%s: double source r%d overflows register file", in.Op, in.Rt)
		}
	}
	if in.WritesInt() && in.Rd == RZero && in.Op != Nop && in.Op != Jal {
		// Jal's destination is the link register, not Rd.
		return fmt.Errorf("%s: r0 is hard-wired to zero and cannot be written", in.Op)
	}
	return nil
}

// WritesInt reports whether the instruction writes an integer register,
// and is used by dependency analysis. Jal writes the link register.
func (in Instr) WritesInt() bool {
	switch {
	case in.Op >= Add && in.Op <= Li:
		return true
	case in.Op == Mov || in.Op == Mff || in.Op == CvtFI:
		return true
	case in.Op >= Feq && in.Op <= Fle:
		return true
	case in.Op == Lw || in.Op == Ld || in.Op == LwS || in.Op == LdS || in.Op == Faa:
		return true
	case in.Op == Jal:
		return true
	}
	return false
}

// WritesFP reports whether the instruction writes a floating-point
// register.
func (in Instr) WritesFP() bool {
	switch in.Op {
	case Fmov, Mtf, CvtIF, Fadd, Fsub, Fmul, Fdiv, Fneg, Fabs, Fsqrt, Fmin, Fmax, Flw, FlwS:
		return true
	}
	return false
}

// IntDests returns the integer registers written by the instruction
// (0, 1 or 2 of them) appended to dst.
func (in Instr) IntDests(dst []uint8) []uint8 {
	if !in.WritesInt() {
		return dst
	}
	if in.Op == Jal {
		return append(dst, RRet)
	}
	dst = append(dst, in.Rd)
	if in.Op == Ld || in.Op == LdS {
		dst = append(dst, in.Rd+1)
	}
	return dst
}

// IntSources returns the integer registers read by the instruction
// appended to dst.
func (in Instr) IntSources(dst []uint8) []uint8 {
	switch {
	case in.Op >= Add && in.Op <= Sltu: // reg-reg ALU
		dst = append(dst, in.Rs, in.Rt)
	case in.Op >= Addi && in.Op <= Slti: // reg-imm ALU
		dst = append(dst, in.Rs)
	case in.Op == Li:
		// no sources
	case in.Op == Mov, in.Op == Mtf, in.Op == CvtIF:
		dst = append(dst, in.Rs)
	case in.Op == Beq, in.Op == Bne, in.Op == Blt, in.Op == Bge:
		dst = append(dst, in.Rs, in.Rt)
	case in.Op == Beqz, in.Op == Bnez, in.Op == Jr:
		dst = append(dst, in.Rs)
	case in.Op.IsMemAccess():
		dst = append(dst, in.Rs) // address base
		switch in.Op {
		case Sw, SwS:
			dst = append(dst, in.Rt)
		case Sd, SdS:
			dst = append(dst, in.Rt, in.Rt+1)
		case Faa:
			dst = append(dst, in.Rt) // addend
		}
	case in.Op == Use:
		dst = append(dst, in.Rs)
	}
	return dst
}

// FPDest returns the floating-point register written (or -1).
func (in Instr) FPDest() int {
	if in.WritesFP() {
		return int(in.Rd)
	}
	return -1
}

// FPSources returns the floating-point registers read by the instruction
// appended to dst.
func (in Instr) FPSources(dst []uint8) []uint8 {
	switch in.Op {
	case Fadd, Fsub, Fmul, Fdiv, Fmin, Fmax, Feq, Flt, Fle:
		dst = append(dst, in.Rs, in.Rt)
	case Fmov, Fneg, Fabs, Fsqrt, CvtFI, Mff:
		dst = append(dst, in.Rs)
	case Fsw, FswS:
		dst = append(dst, in.Rt)
	}
	return dst
}

// String disassembles the instruction. Branch targets print as absolute
// instruction indices; the asm package prints labels instead.
func (in Instr) String() string {
	op := in.Op
	switch {
	case op == Nop || op == Halt || op == Switch || op == CritEnter || op == CritExit:
		s := op.String()
		if in.Spin {
			s += " !spin"
		}
		return s
	case op >= Add && op <= Sltu:
		return fmt.Sprintf("%s r%d, r%d, r%d", op, in.Rd, in.Rs, in.Rt)
	case op >= Addi && op <= Slti:
		return fmt.Sprintf("%s r%d, r%d, %d", op, in.Rd, in.Rs, in.Imm)
	case op == Li:
		return fmt.Sprintf("li r%d, %d", in.Rd, in.Imm)
	case op == Mov:
		return fmt.Sprintf("mov r%d, r%d", in.Rd, in.Rs)
	case op == Fmov, op == Fneg, op == Fabs, op == Fsqrt:
		return fmt.Sprintf("%s f%d, f%d", op, in.Rd, in.Rs)
	case op == Mtf, op == CvtIF:
		return fmt.Sprintf("%s f%d, r%d", op, in.Rd, in.Rs)
	case op == Mff, op == CvtFI:
		return fmt.Sprintf("%s r%d, f%d", op, in.Rd, in.Rs)
	case op >= Fadd && op <= Fmax:
		return fmt.Sprintf("%s f%d, f%d, f%d", op, in.Rd, in.Rs, in.Rt)
	case op >= Feq && op <= Fle:
		return fmt.Sprintf("%s r%d, f%d, f%d", op, in.Rd, in.Rs, in.Rt)
	case op == Beq || op == Bne || op == Blt || op == Bge:
		return fmt.Sprintf("%s r%d, r%d, @%d", op, in.Rs, in.Rt, in.Target)
	case op == Beqz || op == Bnez:
		return fmt.Sprintf("%s r%d, @%d", op, in.Rs, in.Target)
	case op == J || op == Jal:
		return fmt.Sprintf("%s @%d", op, in.Target)
	case op == Jr:
		return fmt.Sprintf("jr r%d", in.Rs)
	case op == Lw || op == LwS:
		return memStr(op, "r", in.Rd, in, false)
	case op == Ld || op == LdS:
		return memStr(op, "r", in.Rd, in, false)
	case op == Flw || op == FlwS:
		return memStr(op, "f", in.Rd, in, false)
	case op == Sw || op == SwS || op == Sd || op == SdS:
		return memStr(op, "r", in.Rt, in, true)
	case op == Fsw || op == FswS:
		return memStr(op, "f", in.Rt, in, true)
	case op == Faa:
		return fmt.Sprintf("faa r%d, %d(r%d), r%d%s", in.Rd, in.Imm, in.Rs, in.Rt, spinSuffix(in))
	case op == Use:
		return fmt.Sprintf("use r%d", in.Rs)
	}
	return op.String()
}

func memStr(op Op, bank string, reg uint8, in Instr, store bool) string {
	_ = store
	return fmt.Sprintf("%s %s%d, %d(r%d)%s", op, bank, reg, in.Imm, in.Rs, spinSuffix(in))
}

func spinSuffix(in Instr) string {
	if in.Spin {
		return " !spin"
	}
	return ""
}
