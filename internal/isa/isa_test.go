package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpNamesUniqueAndComplete(t *testing.T) {
	seen := make(map[string]Op)
	for o := 0; o < NumOps; o++ {
		op := Op(o)
		if !op.Valid() {
			t.Errorf("opcode %d has no name", o)
			continue
		}
		name := op.String()
		if prev, dup := seen[name]; dup {
			t.Errorf("mnemonic %q used by both %d and %d", name, prev, op)
		}
		seen[name] = op
	}
	if Op(250).Valid() {
		t.Error("out-of-range opcode reported valid")
	}
	if !strings.Contains(Op(250).String(), "op(") {
		t.Error("out-of-range opcode String should be diagnostic")
	}
}

func TestCostPositive(t *testing.T) {
	for o := 0; o < NumOps; o++ {
		if c := Op(o).Cost(); c < 1 {
			t.Errorf("%s: cost %d < 1", Op(o), c)
		}
	}
	if Fdiv.Cost() <= Fadd.Cost() {
		t.Error("fdiv should cost more than fadd (R3010 timings)")
	}
	if Mul.Cost() <= Add.Cost() {
		t.Error("integer multiply should cost more than add (R3000 timings)")
	}
}

func TestPredicateConsistency(t *testing.T) {
	for o := 0; o < NumOps; o++ {
		op := Op(o)
		if op.IsSharedLoad() && op.IsSharedStore() {
			t.Errorf("%s is both shared load and shared store", op)
		}
		if (op.IsSharedLoad() || op.IsSharedStore()) && !op.IsSharedAccess() {
			t.Errorf("%s: shared load/store but not shared access", op)
		}
		if op.IsSharedAccess() && !op.IsMemAccess() {
			t.Errorf("%s: shared access but not mem access", op)
		}
		if (op.IsLocalLoad() || op.IsLocalStore()) && op.IsSharedAccess() {
			t.Errorf("%s is both local and shared", op)
		}
		if op.IsBranch() && !op.IsControl() {
			t.Errorf("%s: branch but not control", op)
		}
	}
	// Spot checks on the class boundaries.
	if !Faa.IsSharedLoad() {
		t.Error("Faa must count as a shared load (it returns a value)")
	}
	if SwS.IsSharedLoad() || !SwS.IsSharedStore() {
		t.Error("SwS classification wrong")
	}
	if !LdS.IsDouble() || !Sd.IsDouble() || Lw.IsDouble() {
		t.Error("double classification wrong")
	}
	if !Halt.IsControl() || Switch.IsControl() {
		t.Error("control classification wrong: Halt ends a block, Switch does not")
	}
}

// TestSourcesAndDestsAgree: every register the instruction writes must be
// reported by IntDests/FPDest, every read by IntSources/FPSources, for a
// sample of each operand class.
func TestSourcesAndDests(t *testing.T) {
	cases := []struct {
		in       Instr
		intSrc   []uint8
		intDst   []uint8
		fpSrc    []uint8
		fpDstIdx int
	}{
		{Instr{Op: Add, Rd: 4, Rs: 5, Rt: 6}, []uint8{5, 6}, []uint8{4}, nil, -1},
		{Instr{Op: Addi, Rd: 4, Rs: 5, Imm: 1}, []uint8{5}, []uint8{4}, nil, -1},
		{Instr{Op: Li, Rd: 4, Imm: 7}, nil, []uint8{4}, nil, -1},
		{Instr{Op: Fadd, Rd: 1, Rs: 2, Rt: 3}, nil, nil, []uint8{2, 3}, 1},
		{Instr{Op: Flt, Rd: 4, Rs: 2, Rt: 3}, nil, []uint8{4}, []uint8{2, 3}, -1},
		{Instr{Op: Mtf, Rd: 1, Rs: 4}, []uint8{4}, nil, nil, 1},
		{Instr{Op: Mff, Rd: 4, Rs: 1}, nil, []uint8{4}, []uint8{1}, -1},
		{Instr{Op: LwS, Rd: 4, Rs: 5, Imm: 2}, []uint8{5}, []uint8{4}, nil, -1},
		{Instr{Op: LdS, Rd: 4, Rs: 5}, []uint8{5}, []uint8{4, 5}, nil, -1},
		{Instr{Op: SwS, Rt: 4, Rs: 5}, []uint8{5, 4}, nil, nil, -1},
		{Instr{Op: SdS, Rt: 4, Rs: 5}, []uint8{5, 4, 5}, nil, nil, -1},
		{Instr{Op: Faa, Rd: 4, Rs: 5, Rt: 6}, []uint8{5, 6}, []uint8{4}, nil, -1},
		{Instr{Op: FlwS, Rd: 1, Rs: 5}, []uint8{5}, nil, nil, 1},
		{Instr{Op: FswS, Rt: 1, Rs: 5}, []uint8{5}, nil, []uint8{1}, -1},
		{Instr{Op: Beq, Rs: 4, Rt: 5}, []uint8{4, 5}, nil, nil, -1},
		{Instr{Op: Beqz, Rs: 4}, []uint8{4}, nil, nil, -1},
		{Instr{Op: Jal, Target: 3}, nil, []uint8{RRet}, nil, -1},
		{Instr{Op: Jr, Rs: 31}, []uint8{31}, nil, nil, -1},
		{Instr{Op: Use, Rs: 9}, []uint8{9}, nil, nil, -1},
		{Instr{Op: Switch}, nil, nil, nil, -1},
	}
	for _, c := range cases {
		if got := c.in.IntSources(nil); !equalU8(got, c.intSrc) {
			t.Errorf("%s: IntSources = %v, want %v", c.in, got, c.intSrc)
		}
		if got := c.in.IntDests(nil); !equalU8(got, c.intDst) {
			t.Errorf("%s: IntDests = %v, want %v", c.in, got, c.intDst)
		}
		if got := c.in.FPSources(nil); !equalU8(got, c.fpSrc) {
			t.Errorf("%s: FPSources = %v, want %v", c.in, got, c.fpSrc)
		}
		if got := c.in.FPDest(); got != c.fpDstIdx {
			t.Errorf("%s: FPDest = %d, want %d", c.in, got, c.fpDstIdx)
		}
	}
}

func equalU8(a, b []uint8) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestValidate(t *testing.T) {
	bad := []Instr{
		{Op: Op(200)},
		{Op: Add, Rd: 0, Rs: 1, Rt: 2},  // writes r0
		{Op: Add, Rd: 4, Rs: 32, Rt: 2}, // register out of range
		{Op: LdS, Rd: 31, Rs: 4},        // double dest overflows file
		{Op: SdS, Rt: 31, Rs: 4},        // double source overflows file
	}
	for _, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("%v: Validate() = nil, want error", in)
		}
	}
	good := []Instr{
		{Op: Nop},
		{Op: Add, Rd: 4, Rs: 1, Rt: 2},
		{Op: Beq, Rs: 1, Rt: 2, Target: 0},
		{Op: Jal, Target: 5},
		{Op: Switch},
	}
	for _, in := range good {
		if err := in.Validate(); err != nil {
			t.Errorf("%v: Validate() = %v, want nil", in, err)
		}
	}
}

// Property: for any instruction over valid opcodes and registers, every
// reported source/dest register index is within the register file, and
// writers never report r0.
func TestSourceDestRangesProperty(t *testing.T) {
	f := func(opRaw, rd, rs, rt uint8, imm int64) bool {
		op := Op(int(opRaw) % NumOps)
		in := Instr{Op: op, Rd: rd % 30, Rs: rs % 30, Rt: rt % 30, Imm: imm}
		var buf []uint8
		for _, r := range in.IntSources(buf) {
			if int(r) >= NumIntRegs {
				return false
			}
		}
		for _, r := range in.IntDests(nil) {
			if int(r) >= NumIntRegs {
				return false
			}
		}
		for _, r := range in.FPSources(nil) {
			if int(r) >= NumFPRegs {
				return false
			}
		}
		if d := in.FPDest(); d >= NumFPRegs {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: String never panics and is non-empty for all opcodes and
// operands.
func TestStringTotalProperty(t *testing.T) {
	f := func(opRaw, rd, rs, rt uint8, imm int64, spin bool) bool {
		in := Instr{Op: Op(int(opRaw) % NumOps), Rd: rd % 32, Rs: rs % 32, Rt: rt % 32, Imm: imm, Spin: spin}
		return in.String() != ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
