package prog

import (
	"fmt"

	"mtsim/internal/isa"
)

// Builder assembles a Program. It is used like an assembler: emit
// instructions in order, mark positions with Label, and reference labels
// from branches; Build resolves references and validates the result.
//
// Builders are not safe for concurrent use.
type Builder struct {
	name   string
	instrs []isa.Instr
	labels map[string]int32
	// fixups records instructions whose Target field holds an index into
	// refs rather than a resolved instruction index.
	fixups []int
	refs   []string
	shared Layout
	local  Layout
	spin   bool
	errs   []error
}

// NewBuilder returns a builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int32)}
}

// Shared allocates words in the shared data segment.
func (b *Builder) Shared(name string, words int64) Sym { return b.shared.Alloc(name, words) }

// Local allocates words in each thread's local memory.
func (b *Builder) Local(name string, words int64) Sym { return b.local.Alloc(name, words) }

// Label marks the next emitted instruction with name.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("duplicate label %q", name))
		return
	}
	b.labels[name] = int32(len(b.instrs))
}

// GenLabel returns a fresh label name with the given prefix, for use by
// macros that expand to internal control flow.
func (b *Builder) GenLabel(prefix string) string {
	name := fmt.Sprintf(".%s.%d", prefix, len(b.instrs))
	for i := 0; ; i++ {
		if _, dup := b.labels[name]; !dup {
			if !b.refPending(name) {
				return name
			}
		}
		name = fmt.Sprintf(".%s.%d.%d", prefix, len(b.instrs), i)
	}
}

func (b *Builder) refPending(name string) bool {
	for _, r := range b.refs {
		if r == name {
			return true
		}
	}
	return false
}

// BeginSpin / EndSpin bracket synchronization spin loops. Shared accesses
// emitted between them are flagged so the bandwidth statistics can
// exclude them, following the paper's accounting (§6.1 footnote 2).
func (b *Builder) BeginSpin() { b.spin = true }
func (b *Builder) EndSpin()   { b.spin = false }

// Emit appends a raw instruction.
func (b *Builder) Emit(in isa.Instr) {
	if b.spin && in.Op.IsSharedAccess() {
		in.Spin = true
	}
	b.instrs = append(b.instrs, in)
}

func (b *Builder) emitRef(in isa.Instr, label string) {
	in.Target = int32(len(b.refs))
	b.refs = append(b.refs, label)
	b.fixups = append(b.fixups, len(b.instrs))
	b.Emit(in)
}

// Pos returns the index the next instruction will occupy.
func (b *Builder) Pos() int { return len(b.instrs) }

// Integer ALU, register-register.

func (b *Builder) Add(rd, rs, rt uint8)  { b.rrr(isa.Add, rd, rs, rt) }
func (b *Builder) Sub(rd, rs, rt uint8)  { b.rrr(isa.Sub, rd, rs, rt) }
func (b *Builder) Mul(rd, rs, rt uint8)  { b.rrr(isa.Mul, rd, rs, rt) }
func (b *Builder) Div(rd, rs, rt uint8)  { b.rrr(isa.Div, rd, rs, rt) }
func (b *Builder) Rem(rd, rs, rt uint8)  { b.rrr(isa.Rem, rd, rs, rt) }
func (b *Builder) And(rd, rs, rt uint8)  { b.rrr(isa.And, rd, rs, rt) }
func (b *Builder) Or(rd, rs, rt uint8)   { b.rrr(isa.Or, rd, rs, rt) }
func (b *Builder) Xor(rd, rs, rt uint8)  { b.rrr(isa.Xor, rd, rs, rt) }
func (b *Builder) Nor(rd, rs, rt uint8)  { b.rrr(isa.Nor, rd, rs, rt) }
func (b *Builder) Sll(rd, rs, rt uint8)  { b.rrr(isa.Sll, rd, rs, rt) }
func (b *Builder) Srl(rd, rs, rt uint8)  { b.rrr(isa.Srl, rd, rs, rt) }
func (b *Builder) Sra(rd, rs, rt uint8)  { b.rrr(isa.Sra, rd, rs, rt) }
func (b *Builder) Slt(rd, rs, rt uint8)  { b.rrr(isa.Slt, rd, rs, rt) }
func (b *Builder) Sltu(rd, rs, rt uint8) { b.rrr(isa.Sltu, rd, rs, rt) }

func (b *Builder) rrr(op isa.Op, rd, rs, rt uint8) {
	b.Emit(isa.Instr{Op: op, Rd: rd, Rs: rs, Rt: rt})
}

// Integer ALU, register-immediate.

func (b *Builder) Addi(rd, rs uint8, imm int64) { b.rri(isa.Addi, rd, rs, imm) }
func (b *Builder) Muli(rd, rs uint8, imm int64) { b.rri(isa.Muli, rd, rs, imm) }
func (b *Builder) Andi(rd, rs uint8, imm int64) { b.rri(isa.Andi, rd, rs, imm) }
func (b *Builder) Ori(rd, rs uint8, imm int64)  { b.rri(isa.Ori, rd, rs, imm) }
func (b *Builder) Xori(rd, rs uint8, imm int64) { b.rri(isa.Xori, rd, rs, imm) }
func (b *Builder) Slli(rd, rs uint8, imm int64) { b.rri(isa.Slli, rd, rs, imm) }
func (b *Builder) Srli(rd, rs uint8, imm int64) { b.rri(isa.Srli, rd, rs, imm) }
func (b *Builder) Srai(rd, rs uint8, imm int64) { b.rri(isa.Srai, rd, rs, imm) }
func (b *Builder) Slti(rd, rs uint8, imm int64) { b.rri(isa.Slti, rd, rs, imm) }

func (b *Builder) rri(op isa.Op, rd, rs uint8, imm int64) {
	b.Emit(isa.Instr{Op: op, Rd: rd, Rs: rs, Imm: imm})
}

// Li loads a 64-bit immediate.
func (b *Builder) Li(rd uint8, imm int64) { b.Emit(isa.Instr{Op: isa.Li, Rd: rd, Imm: imm}) }

// Mov copies an integer register.
func (b *Builder) Mov(rd, rs uint8) { b.Emit(isa.Instr{Op: isa.Mov, Rd: rd, Rs: rs}) }

// LiF loads a float constant into fd, clobbering the integer scratch
// register.
func (b *Builder) LiF(fd uint8, v float64, scratch uint8) {
	b.Li(scratch, Float64Bits(v))
	b.Mtf(fd, scratch)
}

// Floating point.

func (b *Builder) Fmov(fd, fs uint8)     { b.Emit(isa.Instr{Op: isa.Fmov, Rd: fd, Rs: fs}) }
func (b *Builder) Mtf(fd, rs uint8)      { b.Emit(isa.Instr{Op: isa.Mtf, Rd: fd, Rs: rs}) }
func (b *Builder) Mff(rd, fs uint8)      { b.Emit(isa.Instr{Op: isa.Mff, Rd: rd, Rs: fs}) }
func (b *Builder) Fadd(fd, fs, ft uint8) { b.rrr(isa.Fadd, fd, fs, ft) }
func (b *Builder) Fsub(fd, fs, ft uint8) { b.rrr(isa.Fsub, fd, fs, ft) }
func (b *Builder) Fmul(fd, fs, ft uint8) { b.rrr(isa.Fmul, fd, fs, ft) }
func (b *Builder) Fdiv(fd, fs, ft uint8) { b.rrr(isa.Fdiv, fd, fs, ft) }
func (b *Builder) Fneg(fd, fs uint8)     { b.Emit(isa.Instr{Op: isa.Fneg, Rd: fd, Rs: fs}) }
func (b *Builder) Fabs(fd, fs uint8)     { b.Emit(isa.Instr{Op: isa.Fabs, Rd: fd, Rs: fs}) }
func (b *Builder) Fsqrt(fd, fs uint8)    { b.Emit(isa.Instr{Op: isa.Fsqrt, Rd: fd, Rs: fs}) }
func (b *Builder) Fmin(fd, fs, ft uint8) { b.rrr(isa.Fmin, fd, fs, ft) }
func (b *Builder) Fmax(fd, fs, ft uint8) { b.rrr(isa.Fmax, fd, fs, ft) }
func (b *Builder) CvtIF(fd, rs uint8)    { b.Emit(isa.Instr{Op: isa.CvtIF, Rd: fd, Rs: rs}) }
func (b *Builder) CvtFI(rd, fs uint8)    { b.Emit(isa.Instr{Op: isa.CvtFI, Rd: rd, Rs: fs}) }
func (b *Builder) Feq(rd, fs, ft uint8)  { b.rrr(isa.Feq, rd, fs, ft) }
func (b *Builder) Flt(rd, fs, ft uint8)  { b.rrr(isa.Flt, rd, fs, ft) }
func (b *Builder) Fle(rd, fs, ft uint8)  { b.rrr(isa.Fle, rd, fs, ft) }

// Control flow. Targets are label names.

func (b *Builder) Beq(rs, rt uint8, label string) { b.brr(isa.Beq, rs, rt, label) }
func (b *Builder) Bne(rs, rt uint8, label string) { b.brr(isa.Bne, rs, rt, label) }
func (b *Builder) Blt(rs, rt uint8, label string) { b.brr(isa.Blt, rs, rt, label) }
func (b *Builder) Bge(rs, rt uint8, label string) { b.brr(isa.Bge, rs, rt, label) }
func (b *Builder) Beqz(rs uint8, label string)    { b.emitRef(isa.Instr{Op: isa.Beqz, Rs: rs}, label) }
func (b *Builder) Bnez(rs uint8, label string)    { b.emitRef(isa.Instr{Op: isa.Bnez, Rs: rs}, label) }
func (b *Builder) J(label string)                 { b.emitRef(isa.Instr{Op: isa.J}, label) }
func (b *Builder) Jal(label string)               { b.emitRef(isa.Instr{Op: isa.Jal}, label) }
func (b *Builder) Jr(rs uint8)                    { b.Emit(isa.Instr{Op: isa.Jr, Rs: rs}) }
func (b *Builder) Halt()                          { b.Emit(isa.Instr{Op: isa.Halt}) }
func (b *Builder) Nop()                           { b.Emit(isa.Instr{Op: isa.Nop}) }

func (b *Builder) brr(op isa.Op, rs, rt uint8, label string) {
	b.emitRef(isa.Instr{Op: op, Rs: rs, Rt: rt}, label)
}

// Local memory.

func (b *Builder) Lw(rd, rs uint8, off int64)  { b.mem(isa.Lw, rd, rs, 0, off) }
func (b *Builder) Sw(rt, rs uint8, off int64)  { b.mem(isa.Sw, 0, rs, rt, off) }
func (b *Builder) Ld(rd, rs uint8, off int64)  { b.mem(isa.Ld, rd, rs, 0, off) }
func (b *Builder) Sd(rt, rs uint8, off int64)  { b.mem(isa.Sd, 0, rs, rt, off) }
func (b *Builder) Flw(fd, rs uint8, off int64) { b.mem(isa.Flw, fd, rs, 0, off) }
func (b *Builder) Fsw(ft, rs uint8, off int64) { b.mem(isa.Fsw, 0, rs, ft, off) }

// Shared memory.

func (b *Builder) LwS(rd, rs uint8, off int64)           { b.mem(isa.LwS, rd, rs, 0, off) }
func (b *Builder) LdS(rd, rs uint8, off int64)           { b.mem(isa.LdS, rd, rs, 0, off) }
func (b *Builder) FlwS(fd, rs uint8, off int64)          { b.mem(isa.FlwS, fd, rs, 0, off) }
func (b *Builder) SwS(rt, rs uint8, off int64)           { b.mem(isa.SwS, 0, rs, rt, off) }
func (b *Builder) SdS(rt, rs uint8, off int64)           { b.mem(isa.SdS, 0, rs, rt, off) }
func (b *Builder) FswS(ft, rs uint8, off int64)          { b.mem(isa.FswS, 0, rs, ft, off) }
func (b *Builder) Faa(rd, rs uint8, off int64, rt uint8) { b.mem(isa.Faa, rd, rs, rt, off) }

func (b *Builder) mem(op isa.Op, rd, rs, rt uint8, off int64) {
	b.Emit(isa.Instr{Op: op, Rd: rd, Rs: rs, Rt: rt, Imm: off})
}

// Multithreading control.

// Switch emits the explicit context switch instruction (§5). Application
// builders normally never call this: the optimizer inserts switches when
// it groups shared loads. It is exported for hand-scheduled code and
// tests.
func (b *Builder) Switch() { b.Emit(isa.Instr{Op: isa.Switch}) }

// Use emits the split-phase wait on the pending load whose destination is
// rs (switch-on-use model family, §2).
func (b *Builder) Use(rs uint8) { b.Emit(isa.Instr{Op: isa.Use, Rs: rs}) }

// CritEnter / CritExit bracket a critical region for the §6.2
// priority-scheduling extension (machine.Config.CritPriority). The lock
// macros emit them automatically.
func (b *Builder) CritEnter() { b.Emit(isa.Instr{Op: isa.CritEnter}) }
func (b *Builder) CritExit()  { b.Emit(isa.Instr{Op: isa.CritExit}) }

// Build resolves labels and returns the validated program.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	p := &Program{
		Name:   b.name,
		Instrs: append([]isa.Instr(nil), b.instrs...),
		Labels: make(map[string]int32, len(b.labels)),
		Shared: b.shared,
		Local:  b.local,
	}
	for k, v := range b.labels {
		p.Labels[k] = v
	}
	for _, idx := range b.fixups {
		ref := b.refs[p.Instrs[idx].Target]
		tgt, ok := b.labels[ref]
		if !ok {
			return nil, fmt.Errorf("program %q: undefined label %q referenced at instr %d", b.name, ref, idx)
		}
		p.Instrs[idx].Target = tgt
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("program %q: %w", b.name, err)
	}
	return p, nil
}

// MustBuild is Build that panics on error, for application constructors
// whose programs are fixed at compile time.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
