package prog

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"mtsim/internal/isa"
)

func TestLayoutAllocation(t *testing.T) {
	var l Layout
	a := l.Alloc("a", 10)
	b := l.Alloc("b", 5)
	if a.Base != 0 || a.Size != 10 {
		t.Errorf("a = %+v", a)
	}
	if b.Base != 10 || b.Size != 5 {
		t.Errorf("b = %+v", b)
	}
	if l.Size() != 15 {
		t.Errorf("size = %d", l.Size())
	}
	if s, ok := l.Lookup("a"); !ok || s != a {
		t.Error("lookup a failed")
	}
	if _, ok := l.Lookup("c"); ok {
		t.Error("lookup of missing symbol succeeded")
	}
	syms := l.Symbols()
	if len(syms) != 2 || syms[0].Name != "a" || syms[1].Name != "b" {
		t.Errorf("symbols = %v", syms)
	}
}

func TestLayoutPanics(t *testing.T) {
	assertPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	var l Layout
	l.Alloc("a", 4)
	assertPanic("duplicate", func() { l.Alloc("a", 4) })
	assertPanic("zero size", func() { l.Alloc("z", 0) })
	assertPanic("missing lookup", func() { l.MustLookup("nope") })
	a := l.MustLookup("a")
	assertPanic("addr out of range", func() { a.Addr(4) })
	assertPanic("addr negative", func() { a.Addr(-1) })
	if got := a.Addr(3); got != 3 {
		t.Errorf("Addr(3) = %d", got)
	}
}

func TestBuilderLabelsAndBranches(t *testing.T) {
	b := NewBuilder("t")
	b.Label("start")
	b.Li(4, 1)
	b.Bne(4, 0, "end")
	b.J("start")
	b.Label("end")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[1].Target != 3 {
		t.Errorf("bne target = %d, want 3", p.Instrs[1].Target)
	}
	if p.Instrs[2].Target != 0 {
		t.Errorf("j target = %d, want 0", p.Instrs[2].Target)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("t")
	b.J("nowhere")
	b.Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Errorf("err = %v, want undefined-label error", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Label("x")
	b.Nop()
	b.Label("x")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Error("duplicate label accepted")
	}
}

func TestGenLabelUnique(t *testing.T) {
	b := NewBuilder("t")
	seen := make(map[string]bool)
	for i := 0; i < 50; i++ {
		l := b.GenLabel("x")
		if seen[l] {
			t.Fatalf("GenLabel repeated %q", l)
		}
		seen[l] = true
		b.Label(l)
		b.Nop()
	}
	b.Halt()
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestSpinFlagging(t *testing.T) {
	b := NewBuilder("t")
	b.Shared("x", 4)
	b.LwS(4, 0, 0) // not spin
	b.BeginSpin()
	b.LwS(5, 0, 0) // spin
	b.Addi(6, 6, 1)
	b.Faa(7, 0, 0, 6) // spin
	b.EndSpin()
	b.SwS(4, 0, 0) // not spin
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, false, true, false, false}
	for i, w := range want {
		if p.Instrs[i].Spin != w {
			t.Errorf("instr %d (%s): spin = %v, want %v", i, p.Instrs[i], p.Instrs[i].Spin, w)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	b := NewBuilder("t")
	b.Shared("x", 4)
	b.Label("l")
	b.Nop()
	b.J("l")
	p := b.MustBuild()
	q := p.Clone()
	q.Instrs[0].Op = isa.Halt
	q.Labels["l"] = 1
	q.Shared.Alloc("extra", 8)
	if p.Instrs[0].Op != isa.Nop {
		t.Error("clone shares instruction storage")
	}
	if p.Labels["l"] != 0 {
		t.Error("clone shares label map")
	}
	if _, ok := p.Shared.Lookup("extra"); ok {
		t.Error("clone shares layout map")
	}
}

func TestValidateBranchTargets(t *testing.T) {
	p := &Program{
		Name:   "bad",
		Instrs: []isa.Instr{{Op: isa.J, Target: 99}},
	}
	if err := p.Validate(); err == nil {
		t.Error("out-of-range branch target accepted")
	}
}

func TestCountShared(t *testing.T) {
	b := NewBuilder("t")
	b.Shared("x", 8)
	b.LwS(4, 0, 0)
	b.LdS(6, 0, 2)
	b.FlwS(1, 0, 4)
	b.Faa(5, 0, 0, 4)
	b.SwS(4, 0, 1)
	b.FswS(1, 0, 5)
	b.Lw(4, 0, 0) // local: not counted -- needs local memory
	p := &Program{Name: "x", Instrs: b.instrs}
	ld, st := p.CountShared()
	if ld != 4 || st != 2 {
		t.Errorf("CountShared = %d, %d; want 4, 2", ld, st)
	}
}

func TestFloatBitsRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true // NaN payloads round-trip but don't compare ==
		}
		return BitsToFloat64(Float64Bits(v)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: builder emission order is preserved and label resolution maps
// each branch to the instruction following its label position.
func TestBuildResolutionProperty(t *testing.T) {
	f := func(nops uint8) bool {
		k := int(nops%20) + 1
		b := NewBuilder("p")
		for i := 0; i < k; i++ {
			b.Nop()
		}
		b.Label("target")
		b.Halt()
		b.J("target")
		p, err := b.Build()
		if err != nil {
			return false
		}
		return int(p.Instrs[k+1].Target) == k && len(p.Instrs) == k+2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
