// Package prog holds the program representation executed by the machine:
// a flat instruction sequence with resolved branch targets, plus symbol
// tables describing the program's shared-memory and thread-local-memory
// layout.
//
// Programs are SPMD: every thread executes the same code from instruction
// 0 and learns its identity from the conventional registers (isa.RTid,
// isa.RNth, isa.RPid). The forked phase of the paper's applications is
// exactly one Program run; host-side Init/Check functions play the role
// of the serial setup and verification code the paper excludes from its
// measurements (§3.2).
package prog

import (
	"fmt"
	"math"
	"sort"

	"mtsim/internal/isa"
)

// Sym describes a named region of the shared data segment, in words.
type Sym struct {
	Name string
	Base int64 // word address of the first element
	Size int64 // number of words
}

// Addr returns the word address of element i, panicking on out-of-range
// indices so that layout bugs in application builders fail fast.
func (s Sym) Addr(i int64) int64 {
	if i < 0 || i >= s.Size {
		panic(fmt.Sprintf("prog: symbol %q index %d out of range [0,%d)", s.Name, i, s.Size))
	}
	return s.Base + i
}

// Layout is an ordered symbol table for a memory segment.
type Layout struct {
	syms map[string]Sym
	size int64
}

// Alloc reserves words for name and returns its symbol. Each name may be
// allocated once.
func (l *Layout) Alloc(name string, words int64) Sym {
	if words <= 0 {
		panic(fmt.Sprintf("prog: allocation %q of %d words", name, words))
	}
	if l.syms == nil {
		l.syms = make(map[string]Sym)
	}
	if _, dup := l.syms[name]; dup {
		panic(fmt.Sprintf("prog: duplicate symbol %q", name))
	}
	s := Sym{Name: name, Base: l.size, Size: words}
	l.syms[name] = s
	l.size += words
	return s
}

// Lookup returns the symbol for name.
func (l *Layout) Lookup(name string) (Sym, bool) {
	s, ok := l.syms[name]
	return s, ok
}

// MustLookup returns the symbol for name, panicking if absent.
func (l *Layout) MustLookup(name string) Sym {
	s, ok := l.syms[name]
	if !ok {
		panic(fmt.Sprintf("prog: unknown symbol %q", name))
	}
	return s
}

// Size returns the total segment size in words.
func (l *Layout) Size() int64 { return l.size }

// Symbols returns all symbols ordered by base address.
func (l *Layout) Symbols() []Sym {
	out := make([]Sym, 0, len(l.syms))
	for _, s := range l.syms {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out
}

// Program is a validated, executable program.
type Program struct {
	Name   string
	Instrs []isa.Instr

	// Labels maps label names to instruction indices (for disassembly
	// and the optimizer's block analysis; execution uses resolved
	// Target fields only).
	Labels map[string]int32

	// Shared is the shared data segment layout; Local the per-thread
	// local memory layout.
	Shared Layout
	Local  Layout
}

// Validate checks every instruction and branch target.
func (p *Program) Validate() error {
	n := int32(len(p.Instrs))
	for i, in := range p.Instrs {
		if err := in.Validate(); err != nil {
			return fmt.Errorf("instr %d: %w", i, err)
		}
		if in.Op.IsControl() && in.Op != isa.Jr && in.Op != isa.Halt {
			if in.Target < 0 || in.Target >= n {
				return fmt.Errorf("instr %d (%s): branch target %d out of range [0,%d)", i, in.Op, in.Target, n)
			}
		}
	}
	for name, idx := range p.Labels {
		if idx < 0 || idx > n {
			return fmt.Errorf("label %q: index %d out of range", name, idx)
		}
	}
	return nil
}

// CountShared returns the number of static shared-load and shared-store
// instructions (not dynamic accesses).
func (p *Program) CountShared() (loads, stores int) {
	for _, in := range p.Instrs {
		if in.Op.IsSharedLoad() {
			loads++
		} else if in.Op.IsSharedStore() {
			stores++
		}
	}
	return loads, stores
}

// Clone returns a deep copy of the program. The optimizer transforms
// clones so that the raw program remains available for the switch-on-load
// baseline.
func (p *Program) Clone() *Program {
	q := &Program{Name: p.Name, Shared: p.Shared, Local: p.Local}
	q.Instrs = append([]isa.Instr(nil), p.Instrs...)
	q.Labels = make(map[string]int32, len(p.Labels))
	for k, v := range p.Labels {
		q.Labels[k] = v
	}
	// Layouts contain a map; share is fine semantically (layouts are
	// immutable after Build), but copy defensively so Alloc on a clone
	// cannot corrupt the original.
	q.Shared = copyLayout(p.Shared)
	q.Local = copyLayout(p.Local)
	return q
}

func copyLayout(l Layout) Layout {
	c := Layout{size: l.size, syms: make(map[string]Sym, len(l.syms))}
	for k, v := range l.syms {
		c.syms[k] = v
	}
	return c
}

// Float64Bits converts a float to its storage representation in the
// simulated memory (one 64-bit word per float).
func Float64Bits(v float64) int64 { return int64(math.Float64bits(v)) }

// BitsToFloat64 is the inverse of Float64Bits.
func BitsToFloat64(b int64) float64 { return math.Float64frombits(uint64(b)) }
