// Package par is the runtime synchronization library of the simulated
// applications. As in the paper (§3), the only hardware primitive is
// Fetch-and-Add; locks and barriers are built from Fetch-and-Add and
// spinning, and the spin probes are flagged so the bandwidth accounting
// can exclude them (§6.1 footnote 2).
//
// The macros emit instructions into a prog.Builder. Register usage is
// explicit: callers pass the scratch registers each macro may clobber, so
// application code keeps full control of its register allocation.
package par

import (
	"mtsim/internal/isa"
	"mtsim/internal/prog"
)

// Lock memory layout: two cells, [ticket, serving]. The zero value (all
// cells zero) is an unlocked lock. Fetch-and-Add yields a fair ticket
// lock, the natural construction on a combining network.
const LockCells = 2

// AllocLock reserves a named lock in shared memory.
func AllocLock(b *prog.Builder, name string) prog.Sym { return b.Shared(name, LockCells) }

// LockAcquire emits a ticket-lock acquire on the lock at address
// rBase+off. It clobbers s1 and s2; on return s1 holds the caller's
// ticket (callers need not preserve it — release does not use it).
func LockAcquire(b *prog.Builder, rBase uint8, off int64, s1, s2 uint8) {
	b.Li(s2, 1)
	b.Faa(s1, rBase, off, s2) // s1 = my ticket
	spin := b.GenLabel("lockspin")
	b.Label(spin)
	b.BeginSpin()
	b.LwS(s2, rBase, off+1) // serving
	b.EndSpin()
	b.Bne(s2, s1, spin)
	b.CritEnter() // scheduling hint: the thread now holds the lock
}

// LockRelease emits a ticket-lock release: serving++. Clobbers s1 and s2.
func LockRelease(b *prog.Builder, rBase uint8, off int64, s1, s2 uint8) {
	b.Li(s1, 1)
	b.Faa(s2, rBase, off+1, s1)
	b.CritExit()
}

// Barrier memory layout: two cells, [count, sense]. The zero value is a
// barrier no thread has entered with shared sense 0.
const BarrierCells = 2

// AllocBarrier reserves a named barrier in shared memory.
func AllocBarrier(b *prog.Builder, name string) prog.Sym { return b.Shared(name, BarrierCells) }

// Barrier emits a sense-reversing barrier over all isa.RNth threads.
// rSense is a register persistently dedicated by the caller to the local
// sense; it must start at 0 and must not be touched between barriers.
// Clobbers s1 and s2.
func Barrier(b *prog.Builder, rBase uint8, off int64, rSense, s1, s2 uint8) {
	b.Xori(rSense, rSense, 1) // toggle local sense
	b.Li(s1, 1)
	b.Faa(s2, rBase, off, s1) // s2 = arrival index
	b.Addi(s2, s2, 1)
	wait := b.GenLabel("barwait")
	done := b.GenLabel("bardone")
	b.Bne(s2, isa.RNth, wait)
	// Last arriver: reset the count, then publish the new sense.
	b.SwS(isa.RZero, rBase, off)
	b.SwS(rSense, rBase, off+1)
	b.J(done)
	b.Label(wait)
	spin := b.GenLabel("barspin")
	b.Label(spin)
	b.BeginSpin()
	b.LwS(s1, rBase, off+1)
	b.EndSpin()
	b.Bne(s1, rSense, spin)
	b.Label(done)
}

// SelfSchedule emits the dynamic self-scheduling idiom the Sequent
// applications use: grab the next chunk of work with a Fetch-and-Add on a
// shared counter. rNext receives the first index of the claimed chunk;
// the caller compares it against the loop bound. Clobbers s1.
func SelfSchedule(b *prog.Builder, rBase uint8, off int64, chunk int64, rNext, s1 uint8) {
	b.Li(s1, chunk)
	b.Faa(rNext, rBase, off, s1)
}
