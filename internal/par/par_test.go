package par_test

import (
	"fmt"
	"testing"

	"mtsim/internal/isa"
	"mtsim/internal/machine"
	"mtsim/internal/par"
	"mtsim/internal/prog"
)

func allModels() []machine.Model {
	return []machine.Model{
		machine.Ideal, machine.SwitchEveryCycle, machine.SwitchOnLoad,
		machine.SwitchOnUse, machine.ExplicitSwitch, machine.SwitchOnMiss,
		machine.SwitchOnUseMiss, machine.ConditionalSwitch,
	}
}

// TestLockMutualExclusion: a non-atomic read-modify-write of a shared
// counter, protected by the ticket lock, must never lose an update under
// any model or machine shape. Each thread also inserts deliberate delays
// (a shared load) inside the critical section to widen the race window.
func TestLockMutualExclusion(t *testing.T) {
	b := prog.NewBuilder("mutex")
	lk := par.AllocLock(b, "l")
	cnt := b.Shared("cnt", 1)
	pad := b.Shared("pad", 8)
	const rounds = 5

	b.Li(20, 0) // round counter
	b.Label("round")
	b.Li(9, lk.Base)
	par.LockAcquire(b, 9, 0, 10, 11)
	b.Li(4, cnt.Base)
	b.LwS(5, 4, 0) // read
	b.Li(6, pad.Base)
	b.LwS(7, 6, 0) // widen the window with a slow shared load
	b.Addi(5, 5, 1)
	b.SwS(5, 4, 0) // write back
	par.LockRelease(b, 9, 0, 10, 11)
	b.Addi(20, 20, 1)
	b.Slti(10, 20, rounds)
	b.Bnez(10, "round")
	b.Halt()
	p := b.MustBuild()

	for _, model := range allModels() {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			t.Parallel()
			cfg := machine.Config{Procs: 4, Threads: 3, Model: model, Latency: 80}
			want := int64(4 * 3 * rounds)
			if _, err := machine.RunChecked(cfg, p, nil, func(sh *machine.Shared) error {
				if got := sh.WordAt("cnt", 0); got != want {
					return fmt.Errorf("counter = %d, want %d (lost updates)", got, want)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBarrierPhaseSeparation: threads write phase 1 data; after the
// barrier every thread checks it can see ALL phase-1 writes, recording
// any violation. Repeats across several barrier reuses (sense reversal).
func TestBarrierPhaseSeparation(t *testing.T) {
	const phases = 4
	b := prog.NewBuilder("phases")
	bar := par.AllocBarrier(b, "bar")
	slots := b.Shared("slots", 64)
	bad := b.Shared("bad", 1)

	const rSense = 20
	b.Li(17, bar.Base)
	b.Li(4, slots.Base)
	b.Li(18, 0) // phase
	b.Label("phase")
	// Write slot[tid] = phase+1.
	b.Add(5, 4, isa.RTid)
	b.Addi(6, 18, 1)
	b.SwS(6, 5, 0)
	par.Barrier(b, 17, 0, rSense, 10, 11)
	// Check every other thread's slot is phase+1.
	b.Li(7, 0)
	b.Label("chk")
	b.Bge(7, isa.RNth, "chk.done")
	b.Add(5, 4, 7)
	b.LwS(8, 5, 0)
	b.Addi(6, 18, 1)
	b.Beq(8, 6, "ok")
	b.Li(9, bad.Base)
	b.Li(10, 1)
	b.SwS(10, 9, 0)
	b.Label("ok")
	b.Addi(7, 7, 1)
	b.J("chk")
	b.Label("chk.done")
	par.Barrier(b, 17, 0, rSense, 10, 11)
	b.Addi(18, 18, 1)
	b.Slti(10, 18, phases)
	b.Bnez(10, "phase")
	b.Halt()
	p := b.MustBuild()

	for _, model := range allModels() {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			t.Parallel()
			cfg := machine.Config{Procs: 4, Threads: 4, Model: model, Latency: 60}
			if _, err := machine.RunChecked(cfg, p, nil, func(sh *machine.Shared) error {
				if sh.WordAt("bad", 0) != 0 {
					return fmt.Errorf("a thread crossed the barrier early")
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSelfScheduleCoversAllWork: chunks claimed via SelfSchedule must
// partition the iteration space exactly (each index processed once).
func TestSelfScheduleCoversAllWork(t *testing.T) {
	const n, chunk = 300, 16
	b := prog.NewBuilder("selfsched")
	ctr := b.Shared("ctr", 1)
	marks := b.Shared("marks", n)

	b.Li(4, marks.Base)
	b.Li(5, n)
	b.Li(12, 1)
	b.Label("next")
	b.Li(8, ctr.Base)
	par.SelfSchedule(b, 8, 0, chunk, 7, 10)
	b.Bge(7, 5, "done")
	b.Addi(11, 7, chunk)
	b.Blt(11, 5, "ok")
	b.Mov(11, 5)
	b.Label("ok")
	b.Label("mark")
	b.Add(9, 4, 7)
	b.Faa(10, 9, 0, 12) // marks[i]++ atomically: duplicates observable
	b.Addi(7, 7, 1)
	b.Blt(7, 11, "mark")
	b.J("next")
	b.Label("done")
	b.Halt()
	p := b.MustBuild()

	cfg := machine.Config{Procs: 4, Threads: 4, Model: machine.SwitchOnLoad, Latency: 50}
	if _, err := machine.RunChecked(cfg, p, nil, func(sh *machine.Shared) error {
		for i := int64(0); i < n; i++ {
			if got := sh.WordAt("marks", i); got != 1 {
				return fmt.Errorf("index %d processed %d times", i, got)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSpinTrafficFlagged: the macros must flag exactly their spin probes.
func TestSpinTrafficFlagged(t *testing.T) {
	b := prog.NewBuilder("spin")
	lk := par.AllocLock(b, "l")
	bar := par.AllocBarrier(b, "bar")
	b.Li(9, lk.Base)
	par.LockAcquire(b, 9, 0, 10, 11)
	par.LockRelease(b, 9, 0, 10, 11)
	b.Li(9, bar.Base)
	par.Barrier(b, 9, 0, 20, 10, 11)
	b.Halt()
	p := b.MustBuild()

	spin, nonspin := 0, 0
	for _, in := range p.Instrs {
		if !in.Op.IsSharedAccess() {
			continue
		}
		if in.Spin {
			spin++
		} else {
			nonspin++
		}
	}
	// Spin probes: one in the lock acquire, one in the barrier wait.
	if spin != 2 {
		t.Errorf("spin-flagged accesses = %d, want 2", spin)
	}
	// Faa (ticket, release, arrival) and the barrier publish stores are
	// real work: 3 Faas + 2 stores.
	if nonspin != 5 {
		t.Errorf("unflagged shared accesses = %d, want 5", nonspin)
	}
}
