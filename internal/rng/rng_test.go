package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestZeroSeedRemapped(t *testing.T) {
	r := New(0)
	if r.Next() == 0 && r.Next() == 0 {
		t.Error("zero seed produced zero stream")
	}
}

func TestForkDeterministicAndOrderFree(t *testing.T) {
	// Same tag from equally-seeded parents: identical streams, in any
	// fork order, and forking must not advance the parent.
	a, b := New(42), New(42)
	fa1 := a.Fork(7)
	_ = b.Fork(3) // interleave an unrelated fork first
	fb1 := b.Fork(7)
	for i := 0; i < 100; i++ {
		if fa1.Next() != fb1.Next() {
			t.Fatal("Fork(7) streams diverge depending on fork order")
		}
	}
	if a.Next() != b.Next() {
		t.Error("Fork advanced the parent state")
	}
}

func TestForkSubstreamsDecorrelated(t *testing.T) {
	r := New(99)
	// Adjacent tags must not produce overlapping or shifted streams.
	x, y := r.Fork(1), r.Fork(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if x.Next() == y.Next() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("adjacent substreams collided %d/1000 times", same)
	}
	// A fork of a different parent seed differs too.
	if New(1).Fork(5).Next() == New(2).Fork(5).Next() {
		t.Error("same tag under different seeds produced equal values")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	seen := make(map[int64]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("only %d of 10 values seen", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloatRange(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		v := r.Float()
		if v < 0 || v >= 1 {
			t.Fatalf("Float() = %v", v)
		}
	}
}

func TestRangeProperty(t *testing.T) {
	r := New(11)
	f := func(lo8, span8 uint8) bool {
		lo := float64(lo8)
		hi := lo + float64(span8) + 1
		v := r.Range(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRoughUniformity(t *testing.T) {
	r := New(13)
	const n, bins = 100000, 16
	var counts [bins]int
	for i := 0; i < n; i++ {
		counts[r.Intn(bins)]++
	}
	want := n / bins
	for b, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("bin %d: %d, want ~%d", b, c, want)
		}
	}
}

// TestStateRestoreProperty is the checkpoint layer's contract: capturing
// State at any point in any stream and rebuilding with FromState resumes
// the stream at exactly that position, draw for draw.
func TestStateRestoreProperty(t *testing.T) {
	f := func(seed uint64, advance8 uint8, draws8 uint8) bool {
		r := New(seed)
		for i := 0; i < int(advance8); i++ {
			r.Next()
		}
		clone := FromState(r.State())
		for i := 0; i <= int(draws8); i++ {
			if r.Next() != clone.Next() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestForkSubstreamRestoreProperty pins the property the fault plan's
// checkpointing depends on: Fork derives substreams from the root's
// *current state without advancing it*, so restoring just the root state
// and the sequence counter reproduces every future substream exactly —
// including substreams the original run had already consumed.
func TestForkSubstreamRestoreProperty(t *testing.T) {
	f := func(seed uint64, consumed8 uint8, tag uint64) bool {
		root := New(seed)
		// Consume some substreams before the "checkpoint", as a run
		// would; the root state must be unaffected.
		for i := uint8(0); i < consumed8; i++ {
			s := root.Fork(uint64(i))
			s.Next()
			s.Next()
		}
		restored := FromState(root.State())
		a, b := root.Fork(tag), restored.Fork(tag)
		for i := 0; i < 8; i++ {
			if a.Next() != b.Next() {
				return false
			}
		}
		// Forking never advances the root: states still agree.
		return root.State() == restored.State()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
