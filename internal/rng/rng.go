// Package rng is a tiny deterministic xorshift64* generator used by the
// application workload builders and their host-side verification mirrors.
// Determinism matters more than quality here: every simulated run must be
// exactly reproducible so that results can be checked bit-for-bit, and
// the module is restricted to problem-size-independent seeding.
package rng

// R is a xorshift64* state. The zero value is invalid; use New.
type R struct{ s uint64 }

// New returns a generator seeded from seed (any value, including 0, is
// accepted and remapped to a nonzero state).
func New(seed uint64) *R {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &R{s: seed}
}

// Next returns the next 64-bit value.
func (r *R) Next() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545F4914F6CDD1D
}

// Fork returns an independent generator for substream tag, derived from
// r's current state without advancing it: forking the same tag twice
// yields identical streams, and distinct tags yield decorrelated ones
// (a splitmix64 finalizer over state and tag). The fault-injection plan
// forks one substream per message sequence number, so every delivery
// decision is a pure function of (seed, sequence) — independent of how
// many draws any other message consumed.
func (r *R) Fork(tag uint64) *R {
	h := r.s + 0x9E3779B97F4A7C15*(tag+1)
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return New(h)
}

// State returns the generator's raw internal state, for checkpointing.
// FromState(r.State()) resumes the stream at exactly this position —
// unlike New, which treats its argument as a seed to be remapped.
func (r *R) State() uint64 { return r.s }

// FromState rebuilds a generator at the exact stream position captured
// by State. A zero state (never produced by a live generator, whose
// xorshift orbit excludes zero) is remapped the same way New remaps a
// zero seed, so FromState is total.
func FromState(s uint64) *R { return New(s) }

// Intn returns a value in [0, n). n must be positive.
func (r *R) Intn(n int64) int64 {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int64(r.Next() % uint64(n))
}

// Float returns a value in [0, 1) with 53 bits of precision.
func (r *R) Float() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}

// Range returns a float in [lo, hi).
func (r *R) Range(lo, hi float64) float64 { return lo + (hi-lo)*r.Float() }
