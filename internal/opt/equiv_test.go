package opt_test

import (
	"fmt"
	"testing"

	"mtsim/internal/machine"
	"mtsim/internal/opt"
	"mtsim/internal/prog"
	"mtsim/internal/rng"
)

// genProgram builds a random single-thread program: a straight-line mix
// of ALU, floating-point, local and shared memory operations, followed by
// a dump of every register into shared memory so that any semantic
// difference between program variants becomes observable.
func genProgram(seed uint64, length int) *prog.Program {
	r := rng.New(seed)
	b := prog.NewBuilder(fmt.Sprintf("fuzz-%d", seed))
	b.Shared("mem", 256)
	dump := b.Shared("dump", 64)
	b.Local("loc", 64)

	// r4 is the shared base (0), r5..r20 are data registers.
	reg := func() uint8 { return uint8(5 + r.Intn(16)) }
	freg := func() uint8 { return uint8(1 + r.Intn(10)) }
	b.Li(4, 0)

	for i := 0; i < length; i++ {
		switch r.Intn(14) {
		case 0:
			b.Li(reg(), r.Intn(1000)-500)
		case 1:
			b.Add(reg(), reg(), reg())
		case 2:
			b.Sub(reg(), reg(), reg())
		case 3:
			b.Mul(reg(), reg(), reg())
		case 4:
			b.Xor(reg(), reg(), reg())
		case 5:
			b.Addi(reg(), reg(), r.Intn(64))
		case 6:
			b.LwS(reg(), 4, r.Intn(256))
		case 7:
			b.SwS(reg(), 4, r.Intn(256))
		case 8:
			b.FlwS(freg(), 4, r.Intn(256))
		case 9:
			b.FswS(freg(), 4, r.Intn(256))
		case 10:
			b.Fadd(freg(), freg(), freg())
		case 11:
			b.Fmul(freg(), freg(), freg())
		case 12:
			b.Lw(reg(), 0, r.Intn(64))
		case 13:
			b.Sw(reg(), 0, r.Intn(64))
		}
	}
	// Observability: dump every register.
	for i := uint8(5); i <= 20; i++ {
		b.Li(21, dump.Addr(int64(i)))
		b.SwS(i, 21, 0)
	}
	for f := uint8(1); f <= 10; f++ {
		b.Li(21, dump.Addr(int64(20+f)))
		b.FswS(f, 21, 0)
	}
	b.Halt()
	return b.MustBuild()
}

func initMem(seed uint64) func(*machine.Shared) {
	return func(sh *machine.Shared) {
		r := rng.New(seed ^ 0xabcdef)
		for i := int64(0); i < 256; i++ {
			sh.SetWord(i, r.Intn(1_000_000))
		}
	}
}

func snapshot(p *prog.Program, cfg machine.Config, seed uint64) ([]int64, error) {
	var snap []int64
	_, err := machine.RunChecked(cfg, p, initMem(seed), func(sh *machine.Shared) error {
		snap = append([]int64(nil), sh.Cells()...)
		return nil
	})
	return snap, err
}

// TestOptimizerEquivalenceFuzz: for many random programs, the grouped
// variant must leave shared memory bit-identical to the raw variant,
// under the ideal machine, the explicit-switch machine (with latency),
// and the conditional-switch machine (with a cache). Also: optimized code
// must never trip an implicit wait under explicit-switch.
func TestOptimizerEquivalenceFuzz(t *testing.T) {
	n := 150
	if testing.Short() {
		n = 25
	}
	for seed := uint64(1); seed <= uint64(n); seed++ {
		length := 5 + int(seed*7%60)
		raw := genProgram(seed, length)
		grouped, _, err := opt.Optimize(raw)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ref, err := snapshot(raw, machine.Config{Model: machine.Ideal}, seed)
		if err != nil {
			t.Fatalf("seed %d raw: %v", seed, err)
		}
		cfgs := []machine.Config{
			{Model: machine.Ideal},
			{Model: machine.ExplicitSwitch, Latency: 50},
			{Model: machine.ConditionalSwitch, Latency: 50},
		}
		for _, cfg := range cfgs {
			got, err := snapshot(grouped, cfg, seed)
			if err != nil {
				t.Fatalf("seed %d grouped %s: %v", seed, cfg.Model, err)
			}
			if !equal64(ref, got) {
				t.Fatalf("seed %d: grouped program diverges under %s\nraw:\n%v\ngrouped:\n%v",
					seed, cfg.Model, raw.Instrs, grouped.Instrs)
			}
		}
		res, err := machine.Run(machine.Config{Model: machine.ExplicitSwitch, Latency: 50}, grouped, initMem(seed))
		if err != nil {
			t.Fatal(err)
		}
		if res.ImplicitWaits != 0 {
			t.Fatalf("seed %d: %d implicit waits in optimized code\n%v",
				seed, res.ImplicitWaits, grouped.Instrs)
		}
	}
}

// TestRawModelEquivalenceFuzz: the raw program must compute the same
// memory image under every model at one thread (models change timing,
// never values).
func TestRawModelEquivalenceFuzz(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 10
	}
	models := []machine.Model{
		machine.Ideal, machine.SwitchEveryCycle, machine.SwitchOnLoad,
		machine.SwitchOnUse, machine.SwitchOnMiss, machine.SwitchOnUseMiss,
	}
	for seed := uint64(100); seed < uint64(100+n); seed++ {
		raw := genProgram(seed, 30)
		ref, err := snapshot(raw, machine.Config{Model: machine.Ideal}, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range models[1:] {
			got, err := snapshot(raw, machine.Config{Model: m, Latency: 30}, seed)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, m, err)
			}
			if !equal64(ref, got) {
				t.Fatalf("seed %d: model %s diverges", seed, m)
			}
		}
	}
}

func equal64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestGroupedRunFasterUnderLatency: on programs with several independent
// loads, the grouped variant should finish no slower than the raw variant
// under explicit-switch with one thread (grouping can only reduce
// exposed latency; the added switch instructions are the only cost).
func TestGroupedNeverMuchSlower(t *testing.T) {
	for seed := uint64(500); seed < 540; seed++ {
		raw := genProgram(seed, 40)
		grouped, _, err := opt.Optimize(raw)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := machine.Run(machine.Config{Model: machine.SwitchOnLoad, Latency: 100}, raw, initMem(seed))
		if err != nil {
			t.Fatal(err)
		}
		r2, err := machine.Run(machine.Config{Model: machine.ExplicitSwitch, Latency: 100}, grouped, initMem(seed))
		if err != nil {
			t.Fatal(err)
		}
		// Allow a small slack for the inserted switch instructions.
		if float64(r2.Cycles) > 1.05*float64(r1.Cycles) {
			t.Errorf("seed %d: grouped %d cycles vs raw %d", seed, r2.Cycles, r1.Cycles)
		}
	}
}
