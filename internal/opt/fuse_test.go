package opt

import (
	"testing"

	"mtsim/internal/isa"
	"mtsim/internal/prog"
)

func TestFusibleClassification(t *testing.T) {
	cases := []struct {
		name string
		in   isa.Instr
		want bool
	}{
		{"alu", isa.Instr{Op: isa.Add}, true},
		{"imm", isa.Instr{Op: isa.Addi}, true},
		{"fp", isa.Instr{Op: isa.Fadd}, true},
		{"branch", isa.Instr{Op: isa.Beq}, true},
		{"jump", isa.Instr{Op: isa.J}, true},
		{"jr", isa.Instr{Op: isa.Jr}, true},
		{"local-load", isa.Instr{Op: isa.Lw}, true},
		{"local-store", isa.Instr{Op: isa.Fsw}, true},
		{"halt", isa.Instr{Op: isa.Halt}, false},
		{"switch", isa.Instr{Op: isa.Switch}, false},
		{"use", isa.Instr{Op: isa.Use}, false},
		{"crit", isa.Instr{Op: isa.CritEnter}, false},
		{"shared-load", isa.Instr{Op: isa.LwS}, false},
		{"shared-store", isa.Instr{Op: isa.SwS}, false},
		{"faa", isa.Instr{Op: isa.Faa}, false},
		{"spin-marked-alu", isa.Instr{Op: isa.Add, Spin: true}, false},
		{"spin-marked-branch", isa.Instr{Op: isa.Bnez, Spin: true}, false},
	}
	for _, c := range cases {
		if got := Fusible(c.in); got != c.want {
			t.Errorf("%s: Fusible(%v) = %v, want %v", c.name, c.in.Op, got, c.want)
		}
	}
}

// TestFuseRuns checks the partition invariants on a program mixing
// fusible streaks with shared accesses: runs are disjoint, in order,
// wholly fusible, maximal, and contain a control transfer only as the
// final instruction.
func TestFuseRuns(t *testing.T) {
	b := prog.NewBuilder("runs")
	x := b.Shared("x", 2)
	b.Li(4, x.Base)
	b.Li(5, 0)
	b.Label("loop")
	b.Addi(5, 5, 1)
	b.LwS(6, 4, 0) // splits the block interior
	b.Add(6, 6, 5)
	b.SwS(6, 4, 0) // splits again
	b.Slti(7, 5, 3)
	b.Bnez(7, "loop")
	b.Halt()
	p := b.MustBuild()

	runs := FuseRuns(p)
	if len(runs) == 0 {
		t.Fatal("no runs found")
	}
	prevEnd := -1
	for _, r := range runs {
		if r.Len() <= 0 {
			t.Fatalf("empty run %+v", r)
		}
		if r.Start <= prevEnd-1 {
			t.Fatalf("runs overlap or out of order: %+v after end %d", r, prevEnd)
		}
		prevEnd = r.End
		for pc := r.Start; pc < r.End; pc++ {
			if !Fusible(p.Instrs[pc]) {
				t.Errorf("run %+v contains non-fusible pc %d (%v)", r, pc, p.Instrs[pc].Op)
			}
			if op := p.Instrs[pc].Op; pc != r.End-1 && (op.IsBranch() || op == isa.J || op == isa.Jal || op == isa.Jr) {
				t.Errorf("run %+v has control transfer mid-run at pc %d", r, pc)
			}
		}
		// Maximality: the instruction after the run is non-fusible, a
		// block boundary, or the run ends in a control transfer.
		if r.End < len(p.Instrs) && Fusible(p.Instrs[r.End]) {
			last := p.Instrs[r.End-1].Op
			endsBlock := last.IsBranch() || last == isa.J || last == isa.Jal || last == isa.Jr
			leader := false
			for _, blk := range FindBlocks(p) {
				if blk.Start == r.End {
					leader = true
					break
				}
			}
			if !endsBlock && !leader {
				t.Errorf("run %+v not maximal: pc %d is fusible and not a leader", r, r.End)
			}
		}
	}

	// Every fusible instruction outside all runs must be unreachable by
	// fused dispatch — here the program is simple, so coverage is total:
	covered := make([]bool, len(p.Instrs))
	for _, r := range runs {
		for pc := r.Start; pc < r.End; pc++ {
			covered[pc] = true
		}
	}
	for pc, in := range p.Instrs {
		if Fusible(in) && !covered[pc] {
			t.Errorf("fusible pc %d (%v) not in any run", pc, in.Op)
		}
	}
}
