package opt

import (
	"mtsim/internal/isa"
)

// dag is the intra-block dependency graph: succs[i] lists instructions
// that must execute after i; preds[i] counts i's unscheduled
// predecessors during list scheduling. rawPreds records true-data (RAW)
// predecessors separately: grouping needs to know which dependences carry
// a *value* from a shared load, as opposed to anti/output/memory-order
// edges that merely constrain placement.
type dag struct {
	n        int
	succs    [][]int32
	preds    []int32
	rawPreds [][]int32
}

// buildDAG computes the dependency DAG of instructions ins (one basic
// block, terminator included). Edges:
//
//   - RAW, WAR, WAW through integer and floating-point registers;
//   - memory order: shared loads vs shared stores in both directions and
//     shared store vs shared store (pessimistic full aliasing, as in the
//     paper); the same for local memory; Fetch-and-Add counts as both a
//     shared load and a shared store;
//   - Switch/Use (if already present) are scheduling barriers;
//   - a trailing control transfer is kept last by the scheduler itself.
func buildDAG(ins []isa.Instr) *dag {
	n := len(ins)
	d := &dag{
		n:        n,
		succs:    make([][]int32, n),
		preds:    make([]int32, n),
		rawPreds: make([][]int32, n),
	}
	// edge set deduplication: a pair may arise from several hazards.
	seen := make(map[int64]bool)
	addEdge := func(from, to int, raw bool) {
		if from == to {
			return
		}
		key := int64(from)<<32 | int64(to)<<1
		if raw {
			key |= 1
		}
		if !raw {
			// A non-RAW edge is redundant if the RAW edge exists, but
			// distinguishing costs more than the duplicate; only dedup
			// exact repeats.
		}
		if seen[key] {
			return
		}
		seen[key] = true
		d.succs[from] = append(d.succs[from], int32(to))
		d.preds[to]++
		if raw {
			d.rawPreds[to] = append(d.rawPreds[to], int32(from))
		}
	}

	// lastIntDef[r] is the most recent instruction writing integer
	// register r; intReads[r] the readers since then.
	var lastIntDef, lastFPDef [isa.NumIntRegs]int
	var intReads, fpReads [isa.NumIntRegs][]int
	for r := range lastIntDef {
		lastIntDef[r], lastFPDef[r] = -1, -1
	}
	// Memory ordering state.
	lastSharedStore := -1
	var sharedLoadsSince []int
	lastLocalStore := -1
	var localLoadsSince []int
	lastBarrier := -1

	var buf []uint8
	for i, in := range ins {
		op := in.Op

		// Register RAW edges.
		buf = in.IntSources(buf[:0])
		for _, r := range buf {
			if def := lastIntDef[r]; def >= 0 {
				addEdge(def, i, true)
			}
			intReads[r] = append(intReads[r], i)
		}
		buf = in.FPSources(buf[:0])
		for _, r := range buf {
			if def := lastFPDef[r]; def >= 0 {
				addEdge(def, i, true)
			}
			fpReads[r] = append(fpReads[r], i)
		}

		// Register WAR and WAW edges. A WAW over a shared load is a
		// *value* hazard for grouping purposes, not just an ordering
		// edge: if the overwriting instruction ran while the load was
		// still in flight, the late reply would clobber its result, so
		// the group must close (switch and drain) first. WAR is safe to
		// overlap: the reader sees the old value and the reply lands
		// afterwards.
		buf = in.IntDests(buf[:0])
		for _, r := range buf {
			for _, rd := range intReads[r] {
				addEdge(rd, i, false)
			}
			if def := lastIntDef[r]; def >= 0 {
				addEdge(def, i, ins[def].Op.IsSharedLoad())
			}
			lastIntDef[r] = i
			intReads[r] = intReads[r][:0]
		}
		if fd := in.FPDest(); fd >= 0 {
			for _, rd := range fpReads[fd] {
				addEdge(rd, i, false)
			}
			if def := lastFPDef[fd]; def >= 0 {
				addEdge(def, i, ins[def].Op.IsSharedLoad())
			}
			lastFPDef[fd] = i
			fpReads[fd] = fpReads[fd][:0]
		}

		// Memory ordering.
		sharedLoad := op.IsSharedLoad()
		sharedStore := op.IsSharedStore() || op == isa.Faa
		if sharedLoad && op != isa.Faa {
			if lastSharedStore >= 0 {
				addEdge(lastSharedStore, i, false)
			}
			sharedLoadsSince = append(sharedLoadsSince, i)
		}
		if sharedStore {
			// Store (or Faa) orders after all loads since the previous
			// store, and after that store.
			for _, ld := range sharedLoadsSince {
				addEdge(ld, i, false)
			}
			if lastSharedStore >= 0 {
				addEdge(lastSharedStore, i, false)
			}
			lastSharedStore = i
			sharedLoadsSince = sharedLoadsSince[:0]
		}
		if op.IsLocalLoad() {
			if lastLocalStore >= 0 {
				addEdge(lastLocalStore, i, false)
			}
			localLoadsSince = append(localLoadsSince, i)
		}
		if op.IsLocalStore() {
			for _, ld := range localLoadsSince {
				addEdge(ld, i, false)
			}
			if lastLocalStore >= 0 {
				addEdge(lastLocalStore, i, false)
			}
			lastLocalStore = i
			localLoadsSince = localLoadsSince[:0]
		}

		// Pre-existing Switch/Use instructions are full barriers, and
		// critical-region boundaries must not have code migrate across
		// them (the lock they bracket is invisible to the analysis).
		if op == isa.Switch || op == isa.Use || op == isa.CritEnter || op == isa.CritExit {
			for j := 0; j < i; j++ {
				addEdge(j, i, false)
			}
			lastBarrier = i
		} else if lastBarrier >= 0 {
			addEdge(lastBarrier, i, false)
		}
	}
	return d
}
