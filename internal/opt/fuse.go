package opt

import (
	"mtsim/internal/isa"
	"mtsim/internal/prog"
)

// This file is the block metadata used by the machine's compiled
// dispatch engine (internal/machine/jit): it classifies instructions by
// whether a fused straight-line closure may execute them, and cuts each
// basic block into maximal fusible runs.
//
// "Fusible" means the instruction touches thread-private state only —
// integer and FP ALU, register moves, local memory, and control flow.
// Such an instruction can neither observe nor affect any other thread
// (shared memory, caches, the network and the fault plan are reached
// exclusively through the shared-access opcodes), so a fused run may
// execute several simulated cycles ahead of other processors without
// changing what any interleaving at cycle granularity could observe.
// Everything else — shared accesses, Switch/Use, CritEnter/CritExit,
// Halt, and any Spin-marked probe (which carries its own accounting) —
// must take the interpreter's slow path, where the full switch-policy,
// scoreboard and traffic machinery applies.

// Fusible reports whether the compiled dispatch engine may execute in
// inside a fused run. The opcode ranges mirror the isa declaration
// groups: Nop..Jr covers the ALU, FP, and control ops (Halt excluded),
// Lw..Fsw the thread-local memory ops.
func Fusible(in isa.Instr) bool {
	if in.Spin {
		return false
	}
	op := in.Op
	return op < isa.Halt || (op >= isa.Lw && op <= isa.Fsw)
}

// Run is a maximal fusible streak inside one basic block: instructions
// [Start, End), all Fusible, of which at most the last is a control
// transfer. Start is an entry point the executing machine can actually
// reach with a clean scoreboard: either a block leader or the successor
// of a non-fusible instruction.
type Run struct {
	Start int
	End   int
}

// Len returns the number of instructions in the run.
func (r Run) Len() int { return r.End - r.Start }

// FuseRuns cuts every basic block of p into maximal fusible runs, in
// program order. Control transfers end blocks (FindBlocks), so a run
// contains a branch or jump only as its final instruction; a run ending
// mid-block stops at a non-fusible instruction that the interpreter
// must execute.
func FuseRuns(p *prog.Program) []Run {
	var runs []Run
	for _, b := range FindBlocks(p) {
		i := b.Start
		for i < b.End {
			if !Fusible(p.Instrs[i]) {
				i++
				continue
			}
			j := i + 1
			for j < b.End && Fusible(p.Instrs[j]) {
				j++
			}
			runs = append(runs, Run{Start: i, End: j})
			i = j
		}
	}
	return runs
}
