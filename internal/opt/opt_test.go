package opt_test

import (
	"testing"

	"mtsim/internal/isa"
	"mtsim/internal/opt"
	"mtsim/internal/prog"
)

func build(f func(b *prog.Builder)) *prog.Program {
	b := prog.NewBuilder("t")
	b.Shared("mem", 1024)
	f(b)
	b.Halt()
	return b.MustBuild()
}

func TestFindBlocks(t *testing.T) {
	p := build(func(b *prog.Builder) {
		b.Li(4, 0)        // 0  block 1
		b.Label("loop")   //    block 2 starts at 1
		b.Addi(4, 4, 1)   // 1
		b.Slti(5, 4, 10)  // 2
		b.Bnez(5, "loop") // 3 ends block 2
		b.Li(6, 0)        // 4  block 3
	}) // halt at 5 ends block 3... halt is control: block 3 = [4,6)
	blocks := opt.FindBlocks(p)
	want := [][2]int{{0, 1}, {1, 4}, {4, 6}}
	if len(blocks) != len(want) {
		t.Fatalf("blocks = %v, want %v", blocks, want)
	}
	for i, w := range want {
		if blocks[i].Start != w[0] || blocks[i].End != w[1] {
			t.Errorf("block %d = %+v, want %v", i, blocks[i], w)
		}
	}
}

func TestGroupIndependentLoads(t *testing.T) {
	p := build(func(b *prog.Builder) {
		b.Li(4, 0)
		b.LwS(5, 4, 0)
		b.LwS(6, 4, 1)
		b.LwS(7, 4, 2)
		b.Add(8, 5, 6)
		b.Add(8, 8, 7)
	})
	q, st := opt.MustOptimize(p)
	if st.Switches != 1 || st.GroupSizes[3] != 1 {
		t.Fatalf("stats = %+v, want one group of 3", st)
	}
	// The switch must appear after all three loads and before the first
	// Add that consumes them.
	idxSwitch, idxAdd, lastLoad := -1, -1, -1
	for i, in := range q.Instrs {
		switch {
		case in.Op == isa.Switch && idxSwitch < 0:
			idxSwitch = i
		case in.Op == isa.Add && idxAdd < 0:
			idxAdd = i
		case in.Op.IsSharedLoad():
			lastLoad = i
		}
	}
	if !(lastLoad < idxSwitch && idxSwitch < idxAdd) {
		t.Errorf("order wrong: lastLoad=%d switch=%d add=%d\n%v", lastLoad, idxSwitch, idxAdd, q.Instrs)
	}
}

func TestDependentLoadsSplitGroups(t *testing.T) {
	// The second load's address depends on the first load's result:
	// they cannot share a group.
	p := build(func(b *prog.Builder) {
		b.Li(4, 0)
		b.LwS(5, 4, 0) // head pointer
		b.LwS(6, 5, 0) // *head
		b.Add(7, 6, 6)
	})
	_, st := opt.MustOptimize(p)
	if st.Switches != 2 || st.GroupSizes[1] != 2 {
		t.Errorf("stats = %+v, want two groups of 1", st)
	}
}

func TestStoreLoadAliasingPessimism(t *testing.T) {
	// A shared store between two loads conflicts with the later load
	// (the paper's pessimistic aliasing), so the loads cannot group.
	p := build(func(b *prog.Builder) {
		b.Li(4, 0)
		b.LwS(5, 4, 0)
		b.SwS(5, 4, 9)
		b.LwS(6, 4, 1)
		b.Add(7, 5, 6)
	})
	q, st := opt.MustOptimize(p)
	if st.GroupSizes[2] != 0 {
		t.Errorf("loads across a shared store were grouped: %+v", st)
	}
	// And the store must still precede the second load.
	storeIdx, load2Idx := -1, -1
	for i, in := range q.Instrs {
		if in.Op == isa.SwS {
			storeIdx = i
		}
		if in.Op == isa.LwS && in.Rd == 6 {
			load2Idx = i
		}
	}
	if storeIdx > load2Idx {
		t.Errorf("store reordered past dependent load: store=%d load=%d", storeIdx, load2Idx)
	}
}

func TestFaaOrdering(t *testing.T) {
	// The Fetch-and-Add reads the first load's result and writes shared
	// memory, so it must stay after the first load (data) and before the
	// second load (memory order under ordered delivery). Grouping the
	// Faa *with* the second load is legal — they issue in order — but
	// the first load must be waited for separately.
	p := build(func(b *prog.Builder) {
		b.Li(4, 0)
		b.LwS(5, 4, 0)
		b.Faa(6, 4, 8, 5)
		b.LwS(7, 4, 1)
		b.Add(8, 7, 5)
	})
	q, st := opt.MustOptimize(p)
	pos := map[string]int{}
	for i, in := range q.Instrs {
		switch {
		case in.Op == isa.LwS && in.Rd == 5:
			pos["load1"] = i
		case in.Op == isa.Faa:
			pos["faa"] = i
		case in.Op == isa.LwS && in.Rd == 7:
			pos["load2"] = i
		}
	}
	if !(pos["load1"] < pos["faa"] && pos["faa"] < pos["load2"]) {
		t.Errorf("ordering violated: %v\n%v", pos, q.Instrs)
	}
	// A switch must separate load1 from the Faa that consumes it.
	sawSwitch := false
	for i := pos["load1"] + 1; i < pos["faa"]; i++ {
		if q.Instrs[i].Op == isa.Switch {
			sawSwitch = true
		}
	}
	if !sawSwitch {
		t.Errorf("no switch between load1 and its consumer Faa (stats %+v)", st)
	}
}

func TestTerminatorStaysLast(t *testing.T) {
	p := build(func(b *prog.Builder) {
		b.Li(4, 0)
		b.Label("loop")
		b.LwS(5, 4, 0)
		b.Addi(4, 4, 1)
		b.Slti(6, 4, 8)
		b.Bnez(6, "loop")
	})
	q, _ := opt.MustOptimize(p)
	blocks := opt.FindBlocks(q)
	for _, blk := range blocks {
		for i := blk.Start; i < blk.End-1; i++ {
			if q.Instrs[i].Op.IsControl() {
				t.Errorf("control instruction %s mid-block at %d", q.Instrs[i], i)
			}
		}
	}
}

func TestBranchTargetsRemapped(t *testing.T) {
	p := build(func(b *prog.Builder) {
		b.Li(4, 0)
		b.Li(9, 100)
		b.Label("loop")
		b.LwS(5, 4, 0)
		b.LwS(6, 4, 1)
		b.Add(7, 5, 6)
		b.SwS(7, 4, 2)
		b.Addi(4, 4, 4)
		b.Blt(4, 9, "loop")
	})
	q, _ := opt.MustOptimize(p)
	// Branch target must equal the label's remapped position.
	for _, in := range q.Instrs {
		if in.Op == isa.Blt {
			if in.Target != q.Labels["loop"] {
				t.Errorf("blt target %d != label %d", in.Target, q.Labels["loop"])
			}
		}
	}
	if err := q.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSwitchBeforeBlockEndWithPendingLoads(t *testing.T) {
	// A load whose use is in the NEXT block must still be covered by a
	// Switch before the block ends, so no pending register ever crosses
	// a block boundary.
	b := prog.NewBuilder("t")
	b.Shared("mem", 16)
	b.Li(4, 0)
	b.LwS(5, 4, 0)
	b.Label("next") // block boundary; r5 used after it
	b.Add(6, 5, 5)
	b.Halt()
	p := b.MustBuild()
	q, st := opt.MustOptimize(p)
	if st.Switches != 1 {
		t.Fatalf("switches = %d, want 1", st.Switches)
	}
	// Switch must be before the label's position.
	var swIdx int32 = -1
	for i, in := range q.Instrs {
		if in.Op == isa.Switch {
			swIdx = int32(i)
		}
	}
	if swIdx < 0 || swIdx >= q.Labels["next"] {
		t.Errorf("switch at %d not before block boundary %d", swIdx, q.Labels["next"])
	}
}

func TestOptimizePreservesInstructionMultiset(t *testing.T) {
	p := build(func(b *prog.Builder) {
		b.Li(4, 0)
		b.LwS(5, 4, 0)
		b.LwS(6, 4, 1)
		b.Fadd(1, 2, 3)
		b.Add(7, 5, 6)
		b.SwS(7, 4, 3)
	})
	q, st := opt.MustOptimize(p)
	if len(q.Instrs) != len(p.Instrs)+st.Added {
		t.Fatalf("lengths: %d vs %d + %d", len(q.Instrs), len(p.Instrs), st.Added)
	}
	count := func(ins []isa.Instr) map[isa.Op]int {
		m := make(map[isa.Op]int)
		for _, in := range ins {
			m[in.Op]++
		}
		return m
	}
	cp, cq := count(p.Instrs), count(q.Instrs)
	cq[isa.Switch] -= st.Switches
	if cq[isa.Switch] == 0 {
		delete(cq, isa.Switch)
	}
	for op, n := range cp {
		if cq[op] != n {
			t.Errorf("op %s: %d before, %d after", op, n, cq[op])
		}
	}
}

func TestOptimizeRejectsInvalidProgram(t *testing.T) {
	p := &prog.Program{Name: "bad", Instrs: []isa.Instr{{Op: isa.Op(240)}}}
	if _, _, err := opt.Optimize(p); err == nil {
		t.Error("invalid program accepted")
	}
}
