// Package opt implements the paper's compiler optimization (§5.1): it
// finds basic blocks, performs dependency analysis within each block, and
// reorganizes instructions so that independent shared loads are grouped
// together with a single explicit context switch instruction inserted
// between each group and the instructions that use the loaded values.
//
// Like the paper's post-processor, the analysis works at the assembly
// level and therefore makes pessimistic assumptions: every shared store
// might conflict with every shared load (address aliasing, §5.1
// footnote), and likewise for local memory. Fetch-and-Add reads and
// writes shared memory and so orders against all shared accesses.
package opt

import (
	"sort"

	"mtsim/internal/isa"
	"mtsim/internal/prog"
)

// Block is a basic block: instructions [Start, End) of the program, of
// which at most the last is a control transfer.
type Block struct {
	Start int
	End   int
}

// Len returns the number of instructions in the block.
func (b Block) Len() int { return b.End - b.Start }

// FindBlocks partitions the program into basic blocks. Leaders are the
// first instruction, every branch/jump target, every instruction
// following a control transfer, and every labelled position (labels may
// be reached indirectly through Jr).
func FindBlocks(p *prog.Program) []Block {
	n := len(p.Instrs)
	if n == 0 {
		return nil
	}
	leader := make([]bool, n+1)
	leader[0] = true
	leader[n] = true
	for i, in := range p.Instrs {
		if in.Op.IsControl() {
			if i+1 <= n {
				leader[i+1] = true
			}
			if in.Op != isa.Jr && in.Op != isa.Halt {
				leader[in.Target] = true
			}
		}
	}
	for _, idx := range p.Labels {
		leader[idx] = true
	}
	var starts []int
	for i := 0; i <= n; i++ {
		if leader[i] {
			starts = append(starts, i)
		}
	}
	sort.Ints(starts)
	blocks := make([]Block, 0, len(starts)-1)
	for i := 0; i+1 < len(starts); i++ {
		if starts[i] < starts[i+1] {
			blocks = append(blocks, Block{Start: starts[i], End: starts[i+1]})
		}
	}
	return blocks
}
