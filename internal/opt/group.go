package opt

import (
	"fmt"

	"mtsim/internal/isa"
)

// blockResult is the reorganized instruction sequence of one basic block.
type blockResult struct {
	instrs []isa.Instr
	// switches is the number of Switch instructions inserted; groups the
	// sizes of the load groups they close.
	switches int
	groups   []int
	loads    int
}

// scheduleBlock reorganizes one basic block so that independent shared
// loads are issued together, each group closed by one Switch instruction
// placed before the first instruction that needs a grouped value (§5.1).
// The trailing control transfer, if any, stays last. The transformation
// is semantics-preserving: instructions only move along orderings allowed
// by the dependency DAG.
func scheduleBlock(ins []isa.Instr) (blockResult, error) {
	n := len(ins)
	var res blockResult
	if n == 0 {
		return res, nil
	}
	term := -1
	if ins[n-1].Op.IsControl() {
		term = n - 1
	}

	d := buildDAG(ins)
	preds := make([]int32, n)
	copy(preds, d.preds)
	scheduled := make([]bool, n)
	open := make([]bool, n) // shared loads issued in the currently-open group
	openCount := 0
	remaining := n
	res.instrs = make([]isa.Instr, 0, n+2)

	rawBlocked := func(i int) bool {
		for _, p := range d.rawPreds[i] {
			if open[p] {
				return true
			}
		}
		return false
	}
	emit := func(i int) {
		scheduled[i] = true
		remaining--
		res.instrs = append(res.instrs, ins[i])
		for _, s := range d.succs[i] {
			preds[s]--
		}
	}
	closeGroup := func() {
		if openCount == 0 {
			return
		}
		res.instrs = append(res.instrs, isa.Instr{Op: isa.Switch})
		res.switches++
		res.groups = append(res.groups, openCount)
		for i := range open {
			open[i] = false
		}
		openCount = 0
	}

	for remaining > boolToInt(term >= 0) {
		progress := false
		// Phase A: issue every ready, group-eligible shared load.
		for {
			issued := false
			for i := 0; i < n; i++ {
				if scheduled[i] || i == term || !ins[i].Op.IsSharedLoad() {
					continue
				}
				if preds[i] != 0 || rawBlocked(i) {
					continue
				}
				emit(i)
				open[i] = true
				openCount++
				res.loads++
				issued = true
				progress = true
			}
			if !issued {
				break
			}
		}
		// Phase B: one ready non-load that does not consume an open
		// group's value; it executes before the Switch and helps cover
		// the latency.
		picked := -1
		for i := 0; i < n; i++ {
			if scheduled[i] || i == term || ins[i].Op.IsSharedLoad() {
				continue
			}
			if preds[i] == 0 && !rawBlocked(i) {
				picked = i
				break
			}
		}
		if picked >= 0 {
			emit(picked)
			continue
		}
		if progress {
			continue
		}
		// Phase C: everything left needs a grouped value — close the
		// group with one explicit context switch.
		if openCount > 0 {
			closeGroup()
			continue
		}
		return res, fmt.Errorf("opt: scheduling deadlock with %d instructions remaining (dependency cycle?)", remaining)
	}

	// Block end: close any open group so no split-phase load is pending
	// across a block boundary, then place the terminator.
	closeGroup()
	if term >= 0 {
		emit(term)
	}
	return res, nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
