package opt

import (
	"fmt"

	"mtsim/internal/isa"
	"mtsim/internal/prog"
)

// Stats summarizes one optimization run.
type Stats struct {
	Blocks int
	// SharedLoads is the static count of shared loads; Switches the
	// number of Switch instructions inserted. Their ratio is the static
	// grouping factor (the dynamic one comes from simulation).
	SharedLoads int
	Switches    int
	// GroupSizes[s] counts groups of s loads.
	GroupSizes map[int]int
	// Added is the number of instructions added (all Switches).
	Added int
}

// StaticGrouping returns the static loads-per-switch ratio.
func (s *Stats) StaticGrouping() float64 {
	if s.Switches == 0 {
		return 0
	}
	return float64(s.SharedLoads) / float64(s.Switches)
}

// Optimize applies the paper's grouping transformation and returns a new
// program; the input is not modified. The result contains the same
// instructions reordered within basic blocks (never across), plus one
// Switch instruction per load group. Branch targets and labels are
// remapped onto the reorganized layout.
func Optimize(p *prog.Program) (*prog.Program, *Stats, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, fmt.Errorf("opt: input: %w", err)
	}
	blocks := FindBlocks(p)
	st := &Stats{Blocks: len(blocks), GroupSizes: make(map[int]int)}

	out := p.Clone()
	out.Instrs = out.Instrs[:0]
	// startMap maps old block-leader indices to new indices. Every
	// branch target and label is a leader, so this remaps them all.
	startMap := make(map[int32]int32, len(blocks))

	for _, b := range blocks {
		startMap[int32(b.Start)] = int32(len(out.Instrs))
		r, err := scheduleBlock(p.Instrs[b.Start:b.End])
		if err != nil {
			return nil, nil, fmt.Errorf("opt: block [%d,%d): %w", b.Start, b.End, err)
		}
		out.Instrs = append(out.Instrs, r.instrs...)
		st.Switches += r.switches
		st.SharedLoads += r.loads
		st.Added += r.switches
		for _, g := range r.groups {
			st.GroupSizes[g]++
		}
	}
	startMap[int32(len(p.Instrs))] = int32(len(out.Instrs))

	// Remap branch targets.
	for i := range out.Instrs {
		in := &out.Instrs[i]
		if in.Op.IsControl() && in.Op != isa.Jr && in.Op != isa.Halt {
			nt, ok := startMap[in.Target]
			if !ok {
				return nil, nil, fmt.Errorf("opt: internal: branch target %d is not a block leader", in.Target)
			}
			in.Target = nt
		}
	}
	// Remap labels.
	for name, idx := range out.Labels {
		nt, ok := startMap[idx]
		if !ok {
			return nil, nil, fmt.Errorf("opt: internal: label %q at %d is not a block leader", name, idx)
		}
		out.Labels[name] = nt
	}
	out.Name = p.Name + "+grouped"
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("opt: output: %w", err)
	}
	return out, st, nil
}

// MustOptimize is Optimize that panics on error, for fixed application
// programs whose optimizability is a build-time property.
func MustOptimize(p *prog.Program) (*prog.Program, *Stats) {
	q, st, err := Optimize(p)
	if err != nil {
		panic(err)
	}
	return q, st
}
