// Package stats provides the measurement machinery the paper's tables are
// built from: run-length histograms (Tables 2 and 4), means, and small
// formatting helpers shared by the experiment generators.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Run-length buckets used by the distribution tables. A run-length is the
// number of busy cycles a thread executes between two taken context
// switches (§4.1).
var bucketEdges = []int64{1, 2, 4, 8, 16, 32, 64, 128}

// NumBuckets is the number of histogram buckets (the last is open-ended).
const NumBuckets = 9

// BucketLabel returns the column heading for bucket i.
func BucketLabel(i int) string {
	switch {
	case i == 0:
		return "1"
	case i == 1:
		return "2"
	case i < NumBuckets-1:
		return fmt.Sprintf("%d-%d", bucketEdges[i-1]+1, bucketEdges[i])
	default:
		return fmt.Sprintf(">%d", bucketEdges[len(bucketEdges)-1])
	}
}

// Hist is a run-length histogram. The zero value is empty and ready to
// use.
type Hist struct {
	Buckets [NumBuckets]int64
	N       int64
	Sum     int64
	Min     int64
	Max     int64
}

// Add records one run-length.
func (h *Hist) Add(v int64) {
	if v < 1 {
		v = 1
	}
	i := 0
	for i < len(bucketEdges) && v > bucketEdges[i] {
		i++
	}
	h.Buckets[i]++
	if h.N == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.N++
	h.Sum += v
}

// Mean returns the mean run-length.
func (h *Hist) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// Pct returns the percentage of samples in bucket i.
func (h *Hist) Pct(i int) float64 {
	if h.N == 0 {
		return 0
	}
	return 100 * float64(h.Buckets[i]) / float64(h.N)
}

// ShortFrac returns the fraction of run-lengths of one or two cycles —
// the "troublesome short run-lengths" the paper's grouping eliminates.
func (h *Hist) ShortFrac() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Buckets[0]+h.Buckets[1]) / float64(h.N)
}

// Merge adds other into h.
func (h *Hist) Merge(other *Hist) {
	if other.N == 0 {
		return
	}
	for i, b := range other.Buckets {
		h.Buckets[i] += b
	}
	if h.N == 0 || other.Min < h.Min {
		h.Min = other.Min
	}
	if other.Max > h.Max {
		h.Max = other.Max
	}
	h.N += other.N
	h.Sum += other.Sum
}

// Row formats the bucket percentages plus mean as table cells.
func (h *Hist) Row() []string {
	cells := make([]string, 0, NumBuckets+1)
	for i := 0; i < NumBuckets; i++ {
		cells = append(cells, fmt.Sprintf("%4.1f", h.Pct(i)))
	}
	cells = append(cells, fmt.Sprintf("%6.1f", h.Mean()))
	return cells
}

// Table renders rows of cells under a header, columns padded to width.
// It is deliberately plain (ASCII, stdlib only) — the experiment binaries
// print paper-style tables with it.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote line printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			if i == 0 {
				// Left-align the row label column.
				b.WriteString(c)
				b.WriteString(strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total > 2 {
		b.WriteString(strings.Repeat("-", total-2))
		b.WriteByte('\n')
	}
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		b.WriteString("  note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// Series is a named sequence of (x, y) points, used by the figure
// generators (efficiency-vs-processors curves).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds a point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// AsciiPlot renders series as a crude scatter/line chart for terminal
// output: y in [0,1] (efficiency), x on a log2 axis. It exists so the
// figure regenerators can show the *shape* of the paper's plots without
// any graphics dependency.
func AsciiPlot(title string, series []*Series, width, height int) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	if len(series) == 0 {
		return b.String()
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, x := range s.X {
			minX = math.Min(minX, x)
			maxX = math.Max(maxX, x)
		}
	}
	if minX <= 0 || maxX <= minX {
		minX, maxX = 1, math.Max(2, maxX)
	}
	lmin, lmax := math.Log2(minX), math.Log2(maxX)
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := "*+o#x@%&"
	for si, s := range series {
		m := marks[si%len(marks)]
		for i := range s.X {
			fx := 0.0
			if lmax > lmin {
				fx = (math.Log2(s.X[i]) - lmin) / (lmax - lmin)
			}
			col := int(fx * float64(width-1))
			row := height - 1 - int(math.Min(1, math.Max(0, s.Y[i]))*float64(height-1))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = m
			}
		}
	}
	for i, row := range grid {
		yval := 1 - float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%4.2f |%s|\n", yval, string(row))
	}
	fmt.Fprintf(&b, "      %s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "      %-10.0f%*s\n", minX, width-10, fmt.Sprintf("%.0f (log2 x)", maxX))
	for si, s := range series {
		fmt.Fprintf(&b, "      %c = %s\n", marks[si%len(marks)], s.Name)
	}
	return b.String()
}
