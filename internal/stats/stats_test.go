package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHistBuckets(t *testing.T) {
	var h Hist
	for _, v := range []int64{1, 1, 2, 3, 4, 8, 9, 200} {
		h.Add(v)
	}
	if h.N != 8 {
		t.Fatalf("N = %d", h.N)
	}
	if h.Buckets[0] != 2 || h.Buckets[1] != 1 || h.Buckets[2] != 2 || h.Buckets[3] != 1 || h.Buckets[4] != 1 || h.Buckets[8] != 1 {
		t.Errorf("buckets = %v", h.Buckets)
	}
	if h.Min != 1 || h.Max != 200 {
		t.Errorf("min/max = %d/%d", h.Min, h.Max)
	}
	if got := h.Mean(); got != 228.0/8 {
		t.Errorf("mean = %v", got)
	}
	if got := h.ShortFrac(); got != 3.0/8 {
		t.Errorf("short frac = %v", got)
	}
	if got := h.Pct(0); got != 25 {
		t.Errorf("pct(0) = %v", got)
	}
}

func TestHistClampsBelowOne(t *testing.T) {
	var h Hist
	h.Add(0)
	h.Add(-5)
	if h.Buckets[0] != 2 || h.Min != 1 {
		t.Errorf("clamping failed: %+v", h)
	}
}

func TestHistMerge(t *testing.T) {
	var a, b Hist
	a.Add(1)
	a.Add(100)
	b.Add(50)
	b.Add(3)
	a.Merge(&b)
	if a.N != 4 || a.Min != 1 || a.Max != 100 || a.Sum != 154 {
		t.Errorf("merged = %+v", a)
	}
	var empty Hist
	a.Merge(&empty)
	if a.N != 4 {
		t.Error("merging empty changed N")
	}
}

func TestBucketLabels(t *testing.T) {
	want := []string{"1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", "65-128", ">128"}
	for i, w := range want {
		if got := BucketLabel(i); got != w {
			t.Errorf("label %d = %q, want %q", i, got, w)
		}
	}
}

func TestHistRowLength(t *testing.T) {
	var h Hist
	h.Add(5)
	if got := len(h.Row()); got != NumBuckets+1 {
		t.Errorf("row cells = %d", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:  "T",
		Header: []string{"app", "x"},
	}
	tb.AddRow("sieve", "1.0")
	tb.AddRow("a-much-longer-name", "2")
	tb.AddNote("note %d", 7)
	s := tb.String()
	if !strings.Contains(s, "T\n") || !strings.Contains(s, "sieve") || !strings.Contains(s, "note 7") {
		t.Errorf("render:\n%s", s)
	}
	lines := strings.Split(s, "\n")
	// Header and rows must be aligned: the x column is right-aligned.
	if !strings.Contains(lines[1], "app") {
		t.Errorf("header line: %q", lines[1])
	}
}

func TestSeriesAndPlot(t *testing.T) {
	s1 := &Series{Name: "a"}
	s1.Append(1, 1.0)
	s1.Append(64, 0.5)
	s2 := &Series{Name: "b"}
	s2.Append(1, 0.2)
	out := AsciiPlot("plot", []*Series{s1, s2}, 40, 8)
	if !strings.Contains(out, "plot") || !strings.Contains(out, "* = a") || !strings.Contains(out, "+ = b") {
		t.Errorf("plot:\n%s", out)
	}
	if AsciiPlot("empty", nil, 10, 4) == "" {
		t.Error("empty plot renders nothing")
	}
}

// Property: bucket counts always sum to N, mean within [min, max].
func TestHistInvariantsProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		var h Hist
		for _, v := range vals {
			h.Add(int64(v))
		}
		var sum int64
		for _, b := range h.Buckets {
			sum += b
		}
		if sum != h.N {
			return false
		}
		if h.N > 0 {
			m := h.Mean()
			return m >= float64(h.Min) && m <= float64(h.Max)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every value lands in exactly the bucket whose label range
// contains it.
func TestBucketPlacementProperty(t *testing.T) {
	edges := []int64{1, 2, 4, 8, 16, 32, 64, 128}
	f := func(raw uint16) bool {
		v := int64(raw%300) + 1
		var h Hist
		h.Add(v)
		want := 0
		for want < len(edges) && v > edges[want] {
			want++
		}
		return h.Buckets[want] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
