// Package app defines the interface between the benchmark applications
// (internal/apps/...) and the rest of the system: a built program, its
// host-side initialization and verification, and the lazily-computed
// grouped variant produced by the optimizer.
//
// The seven applications mirror the paper's benchmark set (Table 1). The
// originals were Sequent C programs; ours are IR kernels written to
// reproduce each application's shared-access character — see each
// subpackage's doc comment and DESIGN.md §2 for the substitution
// rationale.
package app

import (
	"context"
	"fmt"
	"sync"

	"mtsim/internal/machine"
	"mtsim/internal/opt"
	"mtsim/internal/prog"
)

// Scale selects a problem size.
type Scale int

const (
	// Quick sizes finish in well under a second per run; used by unit
	// tests and testing.B benchmarks.
	Quick Scale = iota
	// Medium sizes take on the order of seconds per run; the default
	// for the experiment binaries.
	Medium
	// Full approximates the paper's Table 1 problem sizes.
	Full
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case Quick:
		return "quick"
	case Medium:
		return "medium"
	case Full:
		return "full"
	}
	return fmt.Sprintf("scale(%d)", int(s))
}

// ParseScale resolves a scale name.
func ParseScale(name string) (Scale, error) {
	switch name {
	case "quick":
		return Quick, nil
	case "medium":
		return Medium, nil
	case "full":
		return Full, nil
	}
	return 0, fmt.Errorf("app: unknown scale %q (want quick, medium or full)", name)
}

// App is one benchmark application instance at a fixed problem size.
type App struct {
	// Name is the paper's application name (sieve, blkmat, ...).
	Name string
	// Description is the Table 1 one-liner.
	Description string
	// Problem describes the instantiated problem size.
	Problem string
	// Raw is the program as an ordinary compiler would emit it: shared
	// loads where the source needs them, no Switch instructions. The
	// switch-on-load, switch-on-use, switch-every-cycle and cache-miss
	// models execute this variant.
	Raw *prog.Program
	// Init populates shared memory before the forked phase.
	Init func(*machine.Shared)
	// Check verifies the forked phase's results.
	Check func(*machine.Shared) error
	// TableProcs is the processor count at which the paper-style tables
	// report this application (chosen, as in the paper, just before the
	// fixed problem size runs out of parallelism).
	TableProcs int

	groupOnce sync.Once
	grouped   *prog.Program
	groupStat *opt.Stats
	groupErr  error
}

// Grouped returns the optimizer's load-grouped variant with explicit
// Switch instructions (run by the explicit-switch and conditional-switch
// models), building it on first use.
func (a *App) Grouped() (*prog.Program, *opt.Stats, error) {
	a.groupOnce.Do(func() {
		a.grouped, a.groupStat, a.groupErr = opt.Optimize(a.Raw)
	})
	return a.grouped, a.groupStat, a.groupErr
}

// MustGrouped is Grouped that panics on error.
func (a *App) MustGrouped() (*prog.Program, *opt.Stats) {
	p, st, err := a.Grouped()
	if err != nil {
		panic(fmt.Sprintf("app %s: %v", a.Name, err))
	}
	return p, st
}

// ProgramFor returns the variant model executes: grouped for the
// explicit-switch family, raw for the rest.
func (a *App) ProgramFor(model machine.Model) (*prog.Program, error) {
	if model.UsesGrouping() {
		p, _, err := a.Grouped()
		return p, err
	}
	return a.Raw, nil
}

// Run builds the right program variant for cfg.Model, runs it, and
// verifies the result. It is RunContext with context.Background(); new
// callers should prefer the context form.
func (a *App) Run(cfg machine.Config) (*machine.Result, error) {
	return a.RunContext(context.Background(), cfg)
}

// RunContext is Run under a context: a canceled or expired ctx aborts
// the simulation cooperatively (see machine.RunContext) with an error
// wrapping ctx.Err().
func (a *App) RunContext(ctx context.Context, cfg machine.Config) (*machine.Result, error) {
	p, err := a.ProgramFor(cfg.Model)
	if err != nil {
		return nil, err
	}
	res, err := machine.RunCheckedContext(ctx, cfg, p, a.Init, a.Check)
	if err != nil {
		return nil, fmt.Errorf("app %s: %w", a.Name, err)
	}
	return res, nil
}
