package trace_test

import (
	"strings"
	"testing"

	"mtsim/internal/apps/mp3d"
	"mtsim/internal/isa"
	"mtsim/internal/machine"
	"mtsim/internal/prog"
	"mtsim/internal/trace"
)

func buildSimple() *prog.Program {
	b := prog.NewBuilder("t")
	b.Shared("a", 16)
	b.Shared("b", 16)
	b.Li(4, 0)
	b.LwS(5, 4, 0)  // load a[0]
	b.SwS(5, 4, 17) // store b[1]
	b.Li(6, 1)
	b.Faa(7, 4, 2, 6) // faa a[2]
	b.Halt()
	return b.MustBuild()
}

func TestCollectorCountsAndSymbols(t *testing.T) {
	p := buildSimple()
	c := trace.New(p, 4)
	_, err := machine.RunTraced(machine.Config{Procs: 2, Threads: 1, Model: machine.Ideal}, p, nil, nil, c.Collect)
	if err != nil {
		t.Fatal(err)
	}
	// Two threads, each: 1 load + 1 store + 1 faa.
	if c.Total() != 6 {
		t.Fatalf("total = %d, want 6", c.Total())
	}
	rep := c.Report()
	for _, want := range []string{"loads 2", "stores 2", "fetch-and-adds 2", "a ", "b "} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestSharingDetection(t *testing.T) {
	// Two procs touch the same cell: one shared line; each also touches
	// a private cell on its own line.
	b := prog.NewBuilder("s")
	b.Shared("common", 4)
	priv := b.Shared("priv", 64)
	b.Li(4, 0)
	b.LwS(5, 4, 0) // everyone reads common[0]
	b.Slli(6, isa.RTid, 4)
	b.Li(7, priv.Base)
	b.Add(6, 6, 7)
	b.SwS(5, 6, 0) // private slot, 16 cells apart (distinct 4-cell lines)
	b.Halt()
	p := b.MustBuild()

	c := trace.New(p, 4)
	if _, err := machine.RunTraced(machine.Config{Procs: 2, Threads: 1, Model: machine.Ideal}, p, nil, nil, c.Collect); err != nil {
		t.Fatal(err)
	}
	private, shared := c.SharingSummary()
	if shared != 1 {
		t.Errorf("shared lines = %d, want 1 (common)", shared)
	}
	if private != 2 {
		t.Errorf("private lines = %d, want 2", private)
	}
}

func TestHotLines(t *testing.T) {
	b := prog.NewBuilder("h")
	b.Shared("x", 64)
	b.Li(4, 0)
	b.Li(5, 0)
	b.Label("loop")
	b.LwS(6, 4, 0) // hammer x[0]
	b.LwS(6, 4, 32)
	b.LwS(6, 4, 0)
	b.Addi(5, 5, 1)
	b.Slti(7, 5, 10)
	b.Bnez(7, "loop")
	b.Halt()
	p := b.MustBuild()
	c := trace.New(p, 4)
	if _, err := machine.RunTraced(machine.Config{Model: machine.Ideal}, p, nil, nil, c.Collect); err != nil {
		t.Fatal(err)
	}
	hot := c.HotLines(2)
	if len(hot) != 2 || hot[0].Line != 0 || hot[0].Count != 20 || hot[1].Count != 10 {
		t.Errorf("hot lines = %+v", hot)
	}
	if got := c.SymbolName(0); got != "x" {
		t.Errorf("symbol for line 0 = %q", got)
	}
}

func TestMeanGapPositive(t *testing.T) {
	a := mp3d.New(mp3d.ParamsFor(0))
	c := trace.New(a.Raw, 4)
	_, err := machine.RunTraced(machine.Config{Procs: 2, Threads: 2, Model: machine.SwitchOnLoad, Latency: 50},
		a.Raw, a.Init, a.Check, c.Collect)
	if err != nil {
		t.Fatal(err)
	}
	if g := c.MeanGap(); g <= 0 {
		t.Errorf("mean gap = %v", g)
	}
	// mp3d's dominant traffic must be the particle array, with the cell
	// array shared across processors.
	rep := c.Report()
	if !strings.Contains(rep, "part") || !strings.Contains(rep, "cells") {
		t.Errorf("report missing symbols:\n%s", rep)
	}
}

func TestBadLineSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on bad line size")
		}
	}()
	trace.New(buildSimple(), 3)
}
