// Package trace analyzes dynamic shared-access traces, playing the role
// of the trace analysis in the paper's methodology (§3.1: the simulator
// is built on pixie-style code augmentation, and "in our simulator we use
// trace analysis" to characterize the programs).
//
// A Collector consumes machine.TraceEvents during a run and produces the
// measurements the paper reasons with: per-symbol access profiles,
// read/write sharing between processors, inter-access gaps (the static
// underpinning of run-lengths), address-space locality, and hot spots.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"mtsim/internal/isa"
	"mtsim/internal/machine"
	"mtsim/internal/prog"
)

// symProfile accumulates per-symbol statistics.
type symProfile struct {
	sym    prog.Sym
	loads  int64
	stores int64
	faas   int64
	// readers/writers are processor sets (bitmask for <=64 procs,
	// overflow bucket beyond).
	readers uint64
	writers uint64
}

// Collector accumulates a run's shared-access trace. Create with New,
// pass Collect as the machine.Tracer, then read the analyses.
type Collector struct {
	syms []symProfile // sorted by base, resolved by binary search

	// lineShift aggregates addresses into lines for locality analysis.
	lineShift uint
	lineProcs map[int64]uint64 // line -> processor touch mask
	lineTouch map[int64]int64  // line -> access count

	// lastAccess tracks, per thread, the cycle of its previous shared
	// access: the gap distribution is the trace-side view of the
	// paper's run-length analysis.
	lastAccess map[int64]int64
	gaps       []int64

	total  int64
	loads  int64
	stores int64
	faas   int64
}

// New builds a collector for program p, aggregating locality at
// lineCells granularity (power of two).
func New(p *prog.Program, lineCells int) *Collector {
	if lineCells <= 0 || lineCells&(lineCells-1) != 0 {
		panic(fmt.Sprintf("trace: line size %d must be a positive power of two", lineCells))
	}
	c := &Collector{
		lineProcs:  make(map[int64]uint64),
		lineTouch:  make(map[int64]int64),
		lastAccess: make(map[int64]int64),
	}
	for s := 1; s < lineCells; s <<= 1 {
		c.lineShift++
	}
	for _, s := range p.Shared.Symbols() {
		c.syms = append(c.syms, symProfile{sym: s})
	}
	return c
}

// Collect is the machine.Tracer hook.
func (c *Collector) Collect(ev machine.TraceEvent) {
	c.total++
	isStore := ev.Op.IsSharedStore()
	switch {
	case ev.Op == isa.Faa:
		c.faas++
	case isStore:
		c.stores++
	default:
		c.loads++
	}

	if i := c.findSym(ev.Addr); i >= 0 {
		p := &c.syms[i]
		bit := procBit(ev.Proc)
		switch {
		case ev.Op == isa.Faa:
			p.faas++
			p.readers |= bit
			p.writers |= bit
		case isStore:
			p.stores++
			p.writers |= bit
		default:
			p.loads++
			p.readers |= bit
		}
	}

	line := ev.Addr >> c.lineShift
	c.lineProcs[line] |= procBit(ev.Proc)
	c.lineTouch[line]++

	if last, ok := c.lastAccess[ev.Thread]; ok {
		if gap := ev.Cycle - last; gap >= 0 {
			c.gaps = append(c.gaps, gap)
		}
	}
	c.lastAccess[ev.Thread] = ev.Cycle
}

// procBit maps a processor id onto the touch mask; processors beyond 63
// share the top bit (the sharing analysis degrades gracefully for very
// wide machines).
func procBit(p int32) uint64 {
	if p > 63 {
		p = 63
	}
	return 1 << uint(p)
}

func (c *Collector) findSym(addr int64) int {
	i := sort.Search(len(c.syms), func(i int) bool {
		return c.syms[i].sym.Base+c.syms[i].sym.Size > addr
	})
	if i < len(c.syms) && addr >= c.syms[i].sym.Base {
		return i
	}
	return -1
}

// Total returns the number of traced accesses.
func (c *Collector) Total() int64 { return c.total }

// SharingSummary reports line-granularity sharing: how many touched
// lines were private to one processor versus shared by several — the
// locality property that decides whether caching can work (§6.1).
func (c *Collector) SharingSummary() (private, shared int64) {
	for _, mask := range c.lineProcs {
		if mask&(mask-1) == 0 {
			private++
		} else {
			shared++
		}
	}
	return private, shared
}

// MeanGap returns the mean cycles between a thread's consecutive shared
// accesses — the quantity whose inverse drives the multithreading level
// the paper's model requires.
func (c *Collector) MeanGap() float64 {
	if len(c.gaps) == 0 {
		return 0
	}
	var sum int64
	for _, g := range c.gaps {
		sum += g
	}
	return float64(sum) / float64(len(c.gaps))
}

// HotLines returns the n most-touched lines with their access counts,
// most-touched first (hot-spot analysis; the paper's combining-network
// assumption exists exactly because of synchronization hot spots).
func (c *Collector) HotLines(n int) []struct {
	Line  int64
	Count int64
} {
	type hl struct {
		Line  int64
		Count int64
	}
	all := make([]hl, 0, len(c.lineTouch))
	for l, n := range c.lineTouch {
		all = append(all, hl{l, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Line < all[j].Line
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]struct {
		Line  int64
		Count int64
	}, n)
	for i := 0; i < n; i++ {
		out[i] = struct {
			Line  int64
			Count int64
		}{all[i].Line, all[i].Count}
	}
	return out
}

// SymbolName resolves the symbol containing line's first address.
func (c *Collector) SymbolName(line int64) string {
	if i := c.findSym(line << c.lineShift); i >= 0 {
		return c.syms[i].sym.Name
	}
	return "?"
}

// Report renders the full analysis.
func (c *Collector) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "traced shared accesses: %d (loads %d, stores %d, fetch-and-adds %d)\n",
		c.total, c.loads, c.stores, c.faas)
	fmt.Fprintf(&b, "mean cycles between a thread's shared accesses: %.1f\n", c.MeanGap())
	priv, shr := c.SharingSummary()
	tot := priv + shr
	if tot > 0 {
		fmt.Fprintf(&b, "touched lines: %d private to one processor (%.0f%%), %d shared\n",
			priv, 100*float64(priv)/float64(tot), shr)
	}

	b.WriteString("\nper-symbol profile:\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %8s %9s %9s\n", "symbol", "loads", "stores", "faas", "readers", "writers")
	for _, p := range c.syms {
		if p.loads+p.stores+p.faas == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-10s %10d %10d %8d %9d %9d\n",
			p.sym.Name, p.loads, p.stores, p.faas, popcount(p.readers), popcount(p.writers))
	}

	b.WriteString("\nhottest lines:\n")
	for _, h := range c.HotLines(8) {
		fmt.Fprintf(&b, "  line %6d (%s): %d accesses\n", h.Line, c.SymbolName(h.Line), h.Count)
	}
	return b.String()
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
