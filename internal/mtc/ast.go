package mtc

// typ is an MTC value type.
type typ int

const (
	typInt typ = iota
	typFloat
)

func (t typ) String() string {
	if t == typFloat {
		return "float"
	}
	return "int"
}

// declKind classifies top-level declarations.
type declKind int

const (
	declShared declKind = iota
	declLocal
	declLock
	declBarrier
)

// arrayDecl is a top-level memory declaration.
type arrayDecl struct {
	kind declKind
	elem typ
	name string
	size int64
	line int
}

// program is the parsed compilation unit.
type program struct {
	name   string
	decls  []arrayDecl
	body   []stmt // main's statements
	mainLn int
}

// --- statements ---

type stmt interface{ stmtNode() }

type varDecl struct {
	name string
	t    typ
	init expr // may be nil
	line int
}

type assign struct {
	name string // scalar target
	val  expr
	line int
}

type storeStmt struct {
	arr  string
	idx  expr
	val  expr
	line int
}

type ifStmt struct {
	cond      expr
	then, els []stmt
	line      int
}

type whileStmt struct {
	cond expr
	body []stmt
	line int
}

type forStmt struct {
	init stmt // assign or nil
	cond expr // nil = true
	post stmt // assign or nil
	body []stmt
	line int
}

type breakStmt struct{ line int }
type continueStmt struct{ line int }
type returnStmt struct{ line int }

type barrierStmt struct {
	name string
	line int
}

type lockStmt struct {
	name    string
	acquire bool
	line    int
}

type exprStmt struct {
	e    expr
	line int
}

func (varDecl) stmtNode()      {}
func (assign) stmtNode()       {}
func (storeStmt) stmtNode()    {}
func (ifStmt) stmtNode()       {}
func (whileStmt) stmtNode()    {}
func (forStmt) stmtNode()      {}
func (breakStmt) stmtNode()    {}
func (continueStmt) stmtNode() {}
func (returnStmt) stmtNode()   {}
func (barrierStmt) stmtNode()  {}
func (lockStmt) stmtNode()     {}
func (exprStmt) stmtNode()     {}

// --- expressions ---

type expr interface{ exprNode() }

type intLit struct {
	v    int64
	line int
}

type floatLit struct {
	v    float64
	line int
}

type varRef struct {
	name string
	line int
}

type indexExpr struct {
	arr  string
	idx  expr
	line int
}

type binExpr struct {
	op   string
	l, r expr
	line int
}

type unaryExpr struct {
	op   string // "-" or "!"
	e    expr
	line int
}

// callExpr covers the builtins: faa, float, int, sqrt, abs.
type callExpr struct {
	fn   string
	args []expr
	line int
}

func (intLit) exprNode()    {}
func (floatLit) exprNode()  {}
func (varRef) exprNode()    {}
func (indexExpr) exprNode() {}
func (binExpr) exprNode()   {}
func (unaryExpr) exprNode() {}
func (callExpr) exprNode()  {}
