package mtc_test

import (
	"fmt"
	"testing"

	"mtsim/internal/machine"
	"mtsim/internal/mtc"
)

// TestOperatorPrecedence checks the binding levels end to end through
// compiled execution, which pins both the parser and the code generator.
func TestOperatorPrecedence(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 - 4 - 3", 3}, // left associative
		{"2 * 3 % 4", 2},  // same level, left to right
		{"1 | 2 ^ 3", 1 | 2 ^ 3},
		{"6 & 3 | 8", 6&3 | 8},
		{"1 << 2 + 1", 1 << 3}, // shift binds looser than +
		{"5 < 6 == 1", 1},      // comparison then equality
		{"1 + 1 == 2 && 2 + 2 == 4", 1},
		{"0 == 1 || 1 == 1", 1},
		{"-2 * 3", -6},
		{"- (2 + 3)", -5},
		{"!(3 < 2)", 1},
		{"!7", 0},
	}
	for _, c := range cases {
		c := c
		t.Run(c.src, func(t *testing.T) {
			src := fmt.Sprintf(`
shared int out[1];
func main() {
    if (tid != 0) { return; }
    out[0] = %s;
}
`, c.src)
			p, err := mtc.Compile("prec", src)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := machine.RunChecked(machine.Config{Model: machine.Ideal}, p, nil, func(sh *machine.Shared) error {
				if got := sh.WordAt("out", 0); got != c.want {
					return fmt.Errorf("%s = %d, want %d", c.src, got, c.want)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLexerErrors(t *testing.T) {
	cases := []string{
		"func main() { var x = 1.2.3; }",
		"func main() { var x = @; }",
	}
	for _, src := range cases {
		if _, err := mtc.Compile("lex", src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := "// leading comment\nshared int out[1];\t// trailing\n\n\nfunc main() {\n// body comment\n  out[0] = 42; }\n"
	p, err := mtc.Compile("c", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := machine.RunChecked(machine.Config{Model: machine.Ideal, Threads: 1}, p, nil, func(sh *machine.Shared) error {
		if got := sh.WordAt("out", 0); got != 42 {
			return fmt.Errorf("out = %d", got)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestElseIfChain(t *testing.T) {
	src := `
shared int out[5];
func main() {
    if (tid != 0) { return; }
    var i;
    for (i = 0; i < 5; i = i + 1) {
        if (i == 0) { out[i] = 10; }
        else if (i == 1) { out[i] = 20; }
        else if (i < 4) { out[i] = 30; }
        else { out[i] = 40; }
    }
}
`
	p, err := mtc.Compile("elif", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := machine.RunChecked(machine.Config{Model: machine.Ideal}, p, nil, func(sh *machine.Shared) error {
		want := []int64{10, 20, 30, 30, 40}
		for i, w := range want {
			if got := sh.WordAt("out", int64(i)); got != w {
				return fmt.Errorf("out[%d] = %d, want %d", i, got, w)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestContinueStatement(t *testing.T) {
	src := `
shared int out[1];
func main() {
    if (tid != 0) { return; }
    var i; var sum = 0;
    for (i = 0; i < 10; i = i + 1) {
        if (i % 2 == 0) { continue; }
        sum = sum + i;   // 1+3+5+7+9
    }
    out[0] = sum;
}
`
	p, err := mtc.Compile("cont", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := machine.RunChecked(machine.Config{Model: machine.Ideal}, p, nil, func(sh *machine.Shared) error {
		if got := sh.WordAt("out", 0); got != 25 {
			return fmt.Errorf("sum = %d, want 25", got)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestExpressionDepthLimit: exceeding the register stack must be a clean
// compile error, not a miscompile.
func TestExpressionDepthLimit(t *testing.T) {
	deep := "1"
	for i := 0; i < 30; i++ {
		deep = "(" + deep + " + (1"
	}
	for i := 0; i < 30; i++ {
		deep += "))"
	}
	src := "shared int out[1];\nfunc main() { out[0] = " + deep + "; }"
	// Folding collapses pure literals, so force variables into the tree.
	src2 := `
shared int out[1];
func main() {
    var a = 1;
    out[0] = (a+(a+(a+(a+(a+(a+(a+(a+(a+(a+(a+(a+(a+(a+(a+(a+a))))))))))))))));
}
`
	if _, err := mtc.Compile("deep", src); err != nil {
		// Pure literals may fold away; either outcome is fine here.
		t.Logf("literal-deep: %v", err)
	}
	p, err := mtc.Compile("deep2", src2)
	if err == nil {
		// Right-leaning chains evaluate l first (a var, no push), so
		// this may legitimately fit; run it to confirm correctness.
		if _, err := machine.RunChecked(machine.Config{Model: machine.Ideal, Threads: 1}, p, nil, func(sh *machine.Shared) error {
			if got := sh.WordAt("out", 0); got != 17 {
				return fmt.Errorf("sum = %d, want 17", got)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestVarLimits(t *testing.T) {
	src := "shared int out[1];\nfunc main() {\n"
	for i := 0; i < 20; i++ {
		src += fmt.Sprintf("var v%d;\n", i)
	}
	src += "}\n"
	if _, err := mtc.Compile("vars", src); err == nil {
		t.Error("accepted more integer variables than registers")
	}
}
