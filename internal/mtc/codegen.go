package mtc

import (
	"fmt"

	"mtsim/internal/isa"
	"mtsim/internal/par"
	"mtsim/internal/prog"
)

// Register plan. The compiler is deliberately simple (the paper's point
// is that even a simple compiler can group shared loads — the grouping
// itself is a separate object-code pass): every scalar variable gets a
// dedicated register, expressions evaluate on a small register stack,
// and there is no spilling.
const (
	intVarBase   = 4 // r4..r15: integer variables (12)
	intVarCount  = 12
	intStackBase = 16 // r16..r27: integer expression stack (12)
	intStackLen  = 12
	rScratch     = 28 // Li/LiF scratch and macro scratch
	rScratch2    = 29
	rSense       = 30 // barrier local-sense shuttle

	fpVarBase   = 1 // f1..f8: float variables (8)
	fpVarCount  = 8
	fpStackBase = 9 // f9..f27: float expression stack (19)
	fpStackLen  = 19
)

// builtinVars are read-only identity registers (§3 conventions).
var builtinVars = map[string]uint8{
	"tid":      isa.RTid,
	"nthreads": isa.RNth,
	"pid":      isa.RPid,
}

// symInfo describes a declared array, lock or barrier.
type symInfo struct {
	decl arrayDecl
	sym  prog.Sym
	// senseSlot is the local-memory cell holding this barrier's local
	// sense (barrier decls only).
	senseSlot int64
}

// varInfo is a scalar variable binding.
type varInfo struct {
	t   typ
	reg uint8
}

// gen is the code generator state for one program.
type gen struct {
	b    *prog.Builder
	syms map[string]*symInfo
	vars map[string]varInfo

	nextIntVar int
	nextFPVar  int
	intDepth   int
	fpDepth    int
	// intLoad/fpLoad mark stack slots holding an unconsumed shared-load
	// result. Such slots are not reused within a statement, so every
	// shared load in a statement gets a distinct destination register —
	// the property that lets the §5.1 optimizer group them (a reused
	// destination would be a WAW hazard the group must drain at).
	intLoad [intStackLen]bool
	fpLoad  [fpStackLen]bool

	breakLbl    []string
	continueLbl []string
	endLbl      string
}

// Compile translates MTC source into an executable program. The emitted
// code is deliberately naive — shared loads appear exactly where the
// source reads shared arrays — so that the §5.1 grouping optimizer has
// the same job it had on the paper's compiler output.
func Compile(name, src string) (*prog.Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prg, err := p.parseProgram(name)
	if err != nil {
		return nil, err
	}
	g := &gen{
		b:    prog.NewBuilder(name),
		syms: make(map[string]*symInfo),
		vars: make(map[string]varInfo),
	}
	if err := g.declare(prg); err != nil {
		return nil, err
	}
	g.endLbl = g.b.GenLabel("end")
	for _, s := range foldStmts(prg.body) {
		if err := g.stmt(s); err != nil {
			return nil, err
		}
	}
	g.b.Label(g.endLbl)
	g.b.Halt()
	out, err := g.b.Build()
	if err != nil {
		return nil, fmt.Errorf("mtc: %w", err)
	}
	return out, nil
}

func (g *gen) declare(prg *program) error {
	for _, d := range prg.decls {
		if _, dup := g.syms[d.name]; dup {
			return fmt.Errorf("mtc: line %d: duplicate declaration %q", d.line, d.name)
		}
		if _, isBuiltin := builtinVars[d.name]; isBuiltin {
			return fmt.Errorf("mtc: line %d: %q is a builtin name", d.line, d.name)
		}
		info := &symInfo{decl: d}
		switch d.kind {
		case declShared:
			info.sym = g.b.Shared(d.name, d.size)
		case declLocal:
			info.sym = g.b.Local(d.name, d.size)
		case declLock:
			info.sym = par.AllocLock(g.b, d.name)
		case declBarrier:
			info.sym = par.AllocBarrier(g.b, d.name)
			sense := g.b.Local("."+d.name+".sense", 1)
			info.senseSlot = sense.Base
		}
		g.syms[d.name] = info
	}
	return nil
}

// --- expression evaluation ---

func (g *gen) pushInt(line int) (uint8, error) {
	if g.intDepth >= intStackLen {
		return 0, fmt.Errorf("mtc: line %d: integer expression too deep (max %d)", line, intStackLen)
	}
	r := uint8(intStackBase + g.intDepth)
	g.intLoad[g.intDepth] = false
	g.intDepth++
	return r, nil
}

// resetStacks starts a fresh statement: no expression value survives a
// statement boundary, so every slot (including shared-load slots) is
// free again.
func (g *gen) resetStacks() {
	g.intDepth, g.fpDepth = 0, 0
}

func (g *gen) pushFP(line int) (uint8, error) {
	if g.fpDepth >= fpStackLen {
		return 0, fmt.Errorf("mtc: line %d: float expression too deep (max %d)", line, fpStackLen)
	}
	r := uint8(fpStackBase + g.fpDepth)
	g.fpLoad[g.fpDepth] = false
	g.fpDepth++
	return r, nil
}

// releaseInt frees r if it is the top integer stack slot and does not
// hold an in-flight shared-load result (load slots stay allocated until
// the statement ends).
func (g *gen) releaseInt(r uint8) {
	if g.intDepth > 0 && r == uint8(intStackBase+g.intDepth-1) && !g.intLoad[g.intDepth-1] {
		g.intDepth--
	}
}

func (g *gen) releaseFP(r uint8) {
	if g.fpDepth > 0 && r == uint8(fpStackBase+g.fpDepth-1) && !g.fpLoad[g.fpDepth-1] {
		g.fpDepth--
	}
}

// infer determines an expression's type.
func (g *gen) infer(e expr) (typ, error) {
	switch x := e.(type) {
	case intLit:
		return typInt, nil
	case floatLit:
		return typFloat, nil
	case varRef:
		if _, ok := builtinVars[x.name]; ok {
			return typInt, nil
		}
		v, ok := g.vars[x.name]
		if !ok {
			return 0, fmt.Errorf("mtc: line %d: undeclared variable %q", x.line, x.name)
		}
		return v.t, nil
	case indexExpr:
		s, ok := g.syms[x.arr]
		if !ok || (s.decl.kind != declShared && s.decl.kind != declLocal) {
			return 0, fmt.Errorf("mtc: line %d: %q is not an array", x.line, x.arr)
		}
		return s.decl.elem, nil
	case unaryExpr:
		if x.op == "!" {
			return typInt, nil
		}
		return g.infer(x.e)
	case binExpr:
		switch x.op {
		case "==", "!=", "<", "<=", ">", ">=", "&&", "||":
			return typInt, nil
		}
		return g.infer(x.l)
	case callExpr:
		switch x.fn {
		case "float", "sqrt", "abs":
			return typFloat, nil
		case "int", "faa":
			return typInt, nil
		}
		return 0, fmt.Errorf("mtc: line %d: unknown function %q", x.line, x.fn)
	}
	return 0, fmt.Errorf("mtc: unhandled expression %T", e)
}

// evalInt evaluates an integer-typed expression, returning the register
// holding the result (a dedicated variable register, an identity
// register, or the top of the expression stack).
func (g *gen) evalInt(e expr) (uint8, error) {
	t, err := g.infer(e)
	if err != nil {
		return 0, err
	}
	if t != typInt {
		return 0, fmt.Errorf("mtc: line %d: expected an int expression (insert int(...))", lineOf(e))
	}
	switch x := e.(type) {
	case intLit:
		r, err := g.pushInt(x.line)
		if err != nil {
			return 0, err
		}
		g.b.Li(r, x.v)
		return r, nil

	case varRef:
		if r, ok := builtinVars[x.name]; ok {
			return r, nil
		}
		return g.vars[x.name].reg, nil

	case indexExpr:
		return g.loadElem(x, typInt)

	case unaryExpr:
		switch x.op {
		case "-":
			v, err := g.evalInt(x.e)
			if err != nil {
				return 0, err
			}
			g.releaseInt(v)
			r, err := g.pushInt(x.line)
			if err != nil {
				return 0, err
			}
			g.b.Sub(r, isa.RZero, v)
			return r, nil
		case "!":
			v, err := g.evalInt(x.e)
			if err != nil {
				return 0, err
			}
			g.releaseInt(v)
			r, err := g.pushInt(x.line)
			if err != nil {
				return 0, err
			}
			g.b.Sltu(r, isa.RZero, v) // r = v != 0
			g.b.Xori(r, r, 1)
			return r, nil
		}
		return 0, fmt.Errorf("mtc: line %d: unknown unary %q", x.line, x.op)

	case binExpr:
		return g.evalIntBin(x)

	case callExpr:
		switch x.fn {
		case "faa":
			return g.evalFaa(x)
		case "int":
			if len(x.args) != 1 {
				return 0, fmt.Errorf("mtc: line %d: int() takes one argument", x.line)
			}
			v, err := g.evalFloat(x.args[0])
			if err != nil {
				return 0, err
			}
			g.releaseFP(v)
			r, err := g.pushInt(x.line)
			if err != nil {
				return 0, err
			}
			g.b.CvtFI(r, v)
			return r, nil
		}
		return 0, fmt.Errorf("mtc: line %d: %q does not yield an int", x.line, x.fn)
	}
	return 0, fmt.Errorf("mtc: unhandled int expression %T", e)
}

// evalIntBin handles integer binary operators, comparisons and the
// short-circuit logicals.
func (g *gen) evalIntBin(x binExpr) (uint8, error) {
	if x.op == "&&" || x.op == "||" {
		return g.evalLogical(x)
	}
	lt, err := g.infer(x.l)
	if err != nil {
		return 0, err
	}
	rt, err := g.infer(x.r)
	if err != nil {
		return 0, err
	}
	if lt != rt {
		return 0, fmt.Errorf("mtc: line %d: operator %q mixes int and float (insert float()/int())", x.line, x.op)
	}
	if lt == typFloat {
		return g.evalFloatCompare(x)
	}

	// Immediate form: a literal right operand folds into the
	// instruction (with multiplications by powers of two becoming
	// shifts), as any 1992 compiler at -O2 would emit.
	if lit, ok := x.r.(intLit); ok {
		if emit, ok := g.immOp(x.op, lit.v); ok {
			l, err := g.evalInt(x.l)
			if err != nil {
				return 0, err
			}
			g.releaseInt(l)
			d, err := g.pushInt(x.line)
			if err != nil {
				return 0, err
			}
			emit(d, l)
			return d, nil
		}
	}

	l, err := g.evalInt(x.l)
	if err != nil {
		return 0, err
	}
	r, err := g.evalInt(x.r)
	if err != nil {
		return 0, err
	}
	g.releaseInt(r)
	g.releaseInt(l)
	d, err := g.pushInt(x.line)
	if err != nil {
		return 0, err
	}
	switch x.op {
	case "+":
		g.b.Add(d, l, r)
	case "-":
		g.b.Sub(d, l, r)
	case "*":
		g.b.Mul(d, l, r)
	case "/":
		g.b.Div(d, l, r)
	case "%":
		g.b.Rem(d, l, r)
	case "&":
		g.b.And(d, l, r)
	case "|":
		g.b.Or(d, l, r)
	case "^":
		g.b.Xor(d, l, r)
	case "<<":
		g.b.Sll(d, l, r)
	case ">>":
		g.b.Sra(d, l, r)
	case "<":
		g.b.Slt(d, l, r)
	case ">":
		g.b.Slt(d, r, l)
	case "<=":
		g.b.Slt(d, r, l)
		g.b.Xori(d, d, 1)
	case ">=":
		g.b.Slt(d, l, r)
		g.b.Xori(d, d, 1)
	case "==":
		g.b.Xor(d, l, r)
		g.b.Sltu(d, isa.RZero, d)
		g.b.Xori(d, d, 1)
	case "!=":
		g.b.Xor(d, l, r)
		g.b.Sltu(d, isa.RZero, d)
	default:
		return 0, fmt.Errorf("mtc: line %d: unknown operator %q", x.line, x.op)
	}
	return d, nil
}

// evalFloatCompare lowers a comparison whose operands are floats.
func (g *gen) evalFloatCompare(x binExpr) (uint8, error) {
	l, err := g.evalFloat(x.l)
	if err != nil {
		return 0, err
	}
	r, err := g.evalFloat(x.r)
	if err != nil {
		return 0, err
	}
	g.releaseFP(r)
	g.releaseFP(l)
	d, err := g.pushInt(x.line)
	if err != nil {
		return 0, err
	}
	switch x.op {
	case "==":
		g.b.Feq(d, l, r)
	case "!=":
		g.b.Feq(d, l, r)
		g.b.Xori(d, d, 1)
	case "<":
		g.b.Flt(d, l, r)
	case "<=":
		g.b.Fle(d, l, r)
	case ">":
		g.b.Flt(d, r, l)
	case ">=":
		g.b.Fle(d, r, l)
	default:
		return 0, fmt.Errorf("mtc: line %d: operator %q is not defined on floats", x.line, x.op)
	}
	return d, nil
}

// evalLogical lowers && and || with short-circuit control flow.
func (g *gen) evalLogical(x binExpr) (uint8, error) {
	end := g.b.GenLabel("sc")
	l, err := g.evalInt(x.l)
	if err != nil {
		return 0, err
	}
	g.releaseInt(l)
	d, err := g.pushInt(x.line)
	if err != nil {
		return 0, err
	}
	g.b.Sltu(d, isa.RZero, l) // normalize to 0/1
	if x.op == "&&" {
		g.b.Beqz(d, end)
	} else {
		g.b.Bnez(d, end)
	}
	r, err := g.evalInt(x.r)
	if err != nil {
		return 0, err
	}
	g.releaseInt(r)
	g.b.Sltu(d, isa.RZero, r)
	g.b.Label(end)
	return d, nil
}

// evalFaa lowers faa(arr[idx], addend).
func (g *gen) evalFaa(x callExpr) (uint8, error) {
	if len(x.args) != 2 {
		return 0, fmt.Errorf("mtc: line %d: faa(arr[idx], addend) takes two arguments", x.line)
	}
	ix, ok := x.args[0].(indexExpr)
	if !ok {
		return 0, fmt.Errorf("mtc: line %d: faa's first argument must be a shared array element", x.line)
	}
	s, ok := g.syms[ix.arr]
	if !ok || s.decl.kind != declShared || s.decl.elem != typInt {
		return 0, fmt.Errorf("mtc: line %d: faa requires a shared int array", x.line)
	}
	idx, err := g.evalInt(ix.idx)
	if err != nil {
		return 0, err
	}
	add, err := g.evalInt(x.args[1])
	if err != nil {
		return 0, err
	}
	g.releaseInt(add)
	g.releaseInt(idx)
	d, err := g.pushInt(x.line)
	if err != nil {
		return 0, err
	}
	g.b.Faa(d, idx, s.sym.Base, add)
	g.intLoad[g.intDepth-1] = true
	return d, nil
}

// loadElem lowers arr[idx] for the given element type. The array base is
// folded into the load's immediate, so the only instruction beyond the
// index computation is the load itself.
func (g *gen) loadElem(x indexExpr, want typ) (uint8, error) {
	s := g.syms[x.arr]
	if s.decl.elem != want {
		return 0, fmt.Errorf("mtc: line %d: array %q holds %s elements", x.line, x.arr, s.decl.elem)
	}
	idx, err := g.evalInt(x.idx)
	if err != nil {
		return 0, err
	}
	g.releaseInt(idx)
	if want == typInt {
		d, err := g.pushInt(x.line)
		if err != nil {
			return 0, err
		}
		if s.decl.kind == declShared {
			g.b.LwS(d, idx, s.sym.Base)
			g.intLoad[g.intDepth-1] = true
		} else {
			g.b.Lw(d, idx, s.sym.Base)
		}
		return d, nil
	}
	d, err := g.pushFP(x.line)
	if err != nil {
		return 0, err
	}
	if s.decl.kind == declShared {
		g.b.FlwS(d, idx, s.sym.Base)
		g.fpLoad[g.fpDepth-1] = true
	} else {
		g.b.Flw(d, idx, s.sym.Base)
	}
	return d, nil
}

// evalFloat evaluates a float-typed expression.
func (g *gen) evalFloat(e expr) (uint8, error) {
	t, err := g.infer(e)
	if err != nil {
		return 0, err
	}
	if t != typFloat {
		return 0, fmt.Errorf("mtc: line %d: expected a float expression (insert float(...))", lineOf(e))
	}
	switch x := e.(type) {
	case floatLit:
		d, err := g.pushFP(x.line)
		if err != nil {
			return 0, err
		}
		g.b.LiF(d, x.v, rScratch)
		return d, nil
	case varRef:
		return g.vars[x.name].reg, nil
	case indexExpr:
		return g.loadElem(x, typFloat)
	case unaryExpr:
		if x.op != "-" {
			return 0, fmt.Errorf("mtc: line %d: unary %q is not defined on floats", x.line, x.op)
		}
		v, err := g.evalFloat(x.e)
		if err != nil {
			return 0, err
		}
		g.releaseFP(v)
		d, err := g.pushFP(x.line)
		if err != nil {
			return 0, err
		}
		g.b.Fneg(d, v)
		return d, nil
	case binExpr:
		l, err := g.evalFloat(x.l)
		if err != nil {
			return 0, err
		}
		r, err := g.evalFloat(x.r)
		if err != nil {
			return 0, err
		}
		g.releaseFP(r)
		g.releaseFP(l)
		d, err := g.pushFP(x.line)
		if err != nil {
			return 0, err
		}
		switch x.op {
		case "+":
			g.b.Fadd(d, l, r)
		case "-":
			g.b.Fsub(d, l, r)
		case "*":
			g.b.Fmul(d, l, r)
		case "/":
			g.b.Fdiv(d, l, r)
		default:
			return 0, fmt.Errorf("mtc: line %d: operator %q is not defined on floats", x.line, x.op)
		}
		return d, nil
	case callExpr:
		switch x.fn {
		case "float":
			if len(x.args) != 1 {
				return 0, fmt.Errorf("mtc: line %d: float() takes one argument", x.line)
			}
			v, err := g.evalInt(x.args[0])
			if err != nil {
				return 0, err
			}
			g.releaseInt(v)
			d, err := g.pushFP(x.line)
			if err != nil {
				return 0, err
			}
			g.b.CvtIF(d, v)
			return d, nil
		case "sqrt", "abs":
			if len(x.args) != 1 {
				return 0, fmt.Errorf("mtc: line %d: %s() takes one argument", x.line, x.fn)
			}
			v, err := g.evalFloat(x.args[0])
			if err != nil {
				return 0, err
			}
			g.releaseFP(v)
			d, err := g.pushFP(x.line)
			if err != nil {
				return 0, err
			}
			if x.fn == "sqrt" {
				g.b.Fsqrt(d, v)
			} else {
				g.b.Fabs(d, v)
			}
			return d, nil
		}
		return 0, fmt.Errorf("mtc: line %d: %q does not yield a float", x.line, x.fn)
	}
	return 0, fmt.Errorf("mtc: unhandled float expression %T", e)
}

func lineOf(e expr) int {
	switch x := e.(type) {
	case intLit:
		return x.line
	case floatLit:
		return x.line
	case varRef:
		return x.line
	case indexExpr:
		return x.line
	case binExpr:
		return x.line
	case unaryExpr:
		return x.line
	case callExpr:
		return x.line
	}
	return 0
}

// --- statements ---

func (g *gen) stmt(s stmt) error {
	g.resetStacks()
	switch x := s.(type) {
	case varDecl:
		if _, dup := g.vars[x.name]; dup {
			return fmt.Errorf("mtc: line %d: variable %q redeclared", x.line, x.name)
		}
		if _, isBuiltin := builtinVars[x.name]; isBuiltin {
			return fmt.Errorf("mtc: line %d: %q is a builtin", x.line, x.name)
		}
		var v varInfo
		v.t = x.t
		if x.t == typInt {
			if g.nextIntVar >= intVarCount {
				return fmt.Errorf("mtc: line %d: too many integer variables (max %d)", x.line, intVarCount)
			}
			v.reg = uint8(intVarBase + g.nextIntVar)
			g.nextIntVar++
		} else {
			if g.nextFPVar >= fpVarCount {
				return fmt.Errorf("mtc: line %d: too many float variables (max %d)", x.line, fpVarCount)
			}
			v.reg = uint8(fpVarBase + g.nextFPVar)
			g.nextFPVar++
		}
		g.vars[x.name] = v
		if x.init != nil {
			return g.stmt(assign{name: x.name, val: x.init, line: x.line})
		}
		// Explicit zero: registers start zeroed, but be deliberate.
		if x.t == typInt {
			g.b.Li(v.reg, 0)
		} else {
			g.b.LiF(v.reg, 0, rScratch)
		}
		return nil

	case assign:
		v, ok := g.vars[x.name]
		if !ok {
			return fmt.Errorf("mtc: line %d: undeclared variable %q", x.line, x.name)
		}
		if v.t == typInt {
			r, err := g.evalInt(x.val)
			if err != nil {
				return err
			}
			g.releaseInt(r)
			g.b.Mov(v.reg, r)
		} else {
			r, err := g.evalFloat(x.val)
			if err != nil {
				return err
			}
			g.releaseFP(r)
			g.b.Fmov(v.reg, r)
		}
		return nil

	case storeStmt:
		sym, ok := g.syms[x.arr]
		if !ok || (sym.decl.kind != declShared && sym.decl.kind != declLocal) {
			return fmt.Errorf("mtc: line %d: %q is not an array", x.line, x.arr)
		}
		idx, err := g.evalInt(x.idx)
		if err != nil {
			return err
		}
		if sym.decl.elem == typInt {
			val, err := g.evalInt(x.val)
			if err != nil {
				return err
			}
			g.releaseInt(val)
			g.releaseInt(idx)
			if sym.decl.kind == declShared {
				g.b.SwS(val, idx, sym.sym.Base)
			} else {
				g.b.Sw(val, idx, sym.sym.Base)
			}
		} else {
			val, err := g.evalFloat(x.val)
			if err != nil {
				return err
			}
			g.releaseFP(val)
			g.releaseInt(idx)
			if sym.decl.kind == declShared {
				g.b.FswS(val, idx, sym.sym.Base)
			} else {
				g.b.Fsw(val, idx, sym.sym.Base)
			}
		}
		return nil

	case ifStmt:
		cond, err := g.evalInt(x.cond)
		if err != nil {
			return err
		}
		g.releaseInt(cond)
		elseLbl := g.b.GenLabel("else")
		endLbl := g.b.GenLabel("fi")
		g.b.Beqz(cond, elseLbl)
		for _, s := range x.then {
			if err := g.stmt(s); err != nil {
				return err
			}
		}
		if len(x.els) > 0 {
			g.b.J(endLbl)
		}
		g.b.Label(elseLbl)
		for _, s := range x.els {
			if err := g.stmt(s); err != nil {
				return err
			}
		}
		if len(x.els) > 0 {
			g.b.Label(endLbl)
		}
		return nil

	case whileStmt:
		return g.loop(nil, x.cond, nil, x.body)

	case forStmt:
		return g.loop(x.init, x.cond, x.post, x.body)

	case breakStmt:
		if len(g.breakLbl) == 0 {
			return fmt.Errorf("mtc: line %d: break outside a loop", x.line)
		}
		g.b.J(g.breakLbl[len(g.breakLbl)-1])
		return nil

	case continueStmt:
		if len(g.continueLbl) == 0 {
			return fmt.Errorf("mtc: line %d: continue outside a loop", x.line)
		}
		g.b.J(g.continueLbl[len(g.continueLbl)-1])
		return nil

	case returnStmt:
		g.b.J(g.endLbl)
		return nil

	case barrierStmt:
		s, ok := g.syms[x.name]
		if !ok || s.decl.kind != declBarrier {
			return fmt.Errorf("mtc: line %d: %q is not a barrier (declare with barrierdecl)", x.line, x.name)
		}
		// The local sense lives in local memory so any number of
		// barrier objects stay independent.
		g.b.Li(rScratch, s.sym.Base)
		g.b.Lw(rSense, isa.RZero, s.senseSlot)
		par.Barrier(g.b, rScratch, 0, rSense, rScratch2, intStackBase+uint8(g.intDepth))
		g.b.Sw(rSense, isa.RZero, s.senseSlot)
		return nil

	case lockStmt:
		s, ok := g.syms[x.name]
		if !ok || s.decl.kind != declLock {
			return fmt.Errorf("mtc: line %d: %q is not a lock (declare with lockdecl)", x.line, x.name)
		}
		g.b.Li(rScratch, s.sym.Base)
		if x.acquire {
			par.LockAcquire(g.b, rScratch, 0, rScratch2, rSense)
		} else {
			par.LockRelease(g.b, rScratch, 0, rScratch2, rSense)
		}
		return nil

	case exprStmt:
		t, err := g.infer(x.e)
		if err != nil {
			return err
		}
		if t == typInt {
			r, err := g.evalInt(x.e)
			if err != nil {
				return err
			}
			g.releaseInt(r)
		} else {
			r, err := g.evalFloat(x.e)
			if err != nil {
				return err
			}
			g.releaseFP(r)
		}
		return nil
	}
	return fmt.Errorf("mtc: unhandled statement %T", s)
}

// loop lowers while (init==nil, post==nil) and for loops.
func (g *gen) loop(init stmt, cond expr, post stmt, body []stmt) error {
	if init != nil {
		if err := g.stmt(init); err != nil {
			return err
		}
	}
	top := g.b.GenLabel("loop")
	cont := g.b.GenLabel("cont")
	end := g.b.GenLabel("pool")
	g.b.Label(top)
	if cond != nil {
		c, err := g.evalInt(cond)
		if err != nil {
			return err
		}
		g.releaseInt(c)
		g.b.Beqz(c, end)
	}
	g.breakLbl = append(g.breakLbl, end)
	g.continueLbl = append(g.continueLbl, cont)
	for _, s := range body {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	g.breakLbl = g.breakLbl[:len(g.breakLbl)-1]
	g.continueLbl = g.continueLbl[:len(g.continueLbl)-1]
	g.b.Label(cont)
	if post != nil {
		if err := g.stmt(post); err != nil {
			return err
		}
	}
	g.b.J(top)
	g.b.Label(end)
	return nil
}
