package mtc_test

import (
	"fmt"
	"strings"
	"testing"

	"mtsim/internal/machine"
	"mtsim/internal/mtc"
	"mtsim/internal/opt"
)

// run compiles src and executes it, returning the result and the final
// shared memory via check.
func run(t *testing.T, src string, cfg machine.Config, init func(*machine.Shared), check func(*machine.Shared) error) *machine.Result {
	t.Helper()
	p, err := mtc.Compile("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := machine.RunChecked(cfg, p, init, check)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestArithmeticAndControlFlow(t *testing.T) {
	src := `
shared int out[8];
func main() {
    if (tid != 0) { return; }
    var a = 7; var b = 3;
    out[0] = a + b * 2;        // 13
    out[1] = (a - b) * (a + b); // 40
    out[2] = a / b;            // 2
    out[3] = a % b;            // 1
    out[4] = (a << 2) | (b & 1); // 29
    var i; var sum = 0;
    for (i = 1; i <= 10; i = i + 1) { sum = sum + i; }
    out[5] = sum;              // 55
    var n = 0;
    while (n < 100) {
        n = n + 7;
        if (n == 49) { break; }
    }
    out[6] = n;                // 49
    out[7] = -a;               // -7
}
`
	run(t, src, machine.Config{Model: machine.Ideal}, nil, func(sh *machine.Shared) error {
		want := []int64{13, 40, 2, 1, 29, 55, 49, -7}
		for i, w := range want {
			if got := sh.WordAt("out", int64(i)); got != w {
				return fmt.Errorf("out[%d] = %d, want %d", i, got, w)
			}
		}
		return nil
	})
}

func TestComparisonsAndLogicals(t *testing.T) {
	src := `
shared int out[10];
func main() {
    if (tid != 0) { return; }
    var a = 5; var b = 9;
    out[0] = a < b;  out[1] = a > b;
    out[2] = a <= 5; out[3] = a >= 6;
    out[4] = a == 5; out[5] = a != 5;
    out[6] = (a < b) && (b < 10);
    out[7] = (a > b) || (b == 9);
    out[8] = !(a == 5);
    // Short-circuit: the right side would fault (out of range) if run.
    out[9] = (0 == 1) && (out[100000] == 0);
}
`
	run(t, src, machine.Config{Model: machine.Ideal}, nil, func(sh *machine.Shared) error {
		want := []int64{1, 0, 1, 0, 1, 0, 1, 1, 0, 0}
		for i, w := range want {
			if got := sh.WordAt("out", int64(i)); got != w {
				return fmt.Errorf("out[%d] = %d, want %d", i, got, w)
			}
		}
		return nil
	})
}

func TestFloatKernel(t *testing.T) {
	src := `
shared float xs[64];
shared float ys[64];
func main() {
    if (tid != 0) { return; }
    var i;
    for (i = 0; i < 64; i = i + 1) {
        fvar v = xs[i];
        ys[i] = v * v + 0.5;
    }
}
`
	init := func(sh *machine.Shared) {
		for i := int64(0); i < 64; i++ {
			sh.SetFloatAt("xs", i, float64(i)*0.25)
		}
	}
	run(t, src, machine.Config{Model: machine.Ideal}, init, func(sh *machine.Shared) error {
		for i := int64(0); i < 64; i++ {
			v := float64(i) * 0.25
			if got := sh.FloatAt("ys", i); got != v*v+0.5 {
				return fmt.Errorf("ys[%d] = %g, want %g", i, got, v*v+0.5)
			}
		}
		return nil
	})
}

func TestConversionsSqrtAbs(t *testing.T) {
	src := `
shared int iout[2];
shared float fout[3];
func main() {
    if (tid != 0) { return; }
    fvar f = float(9);
    fout[0] = sqrt(f);        // 3.0
    fout[1] = abs(0.0 - 2.5); // 2.5
    fout[2] = f / 2.0;        // 4.5
    iout[0] = int(7.9);       // 7 (truncating)
    iout[1] = int(sqrt(f)) + 1; // 4
}
`
	run(t, src, machine.Config{Model: machine.Ideal}, nil, func(sh *machine.Shared) error {
		if got := sh.FloatAt("fout", 0); got != 3.0 {
			return fmt.Errorf("sqrt = %g", got)
		}
		if got := sh.FloatAt("fout", 1); got != 2.5 {
			return fmt.Errorf("abs = %g", got)
		}
		if got := sh.FloatAt("fout", 2); got != 4.5 {
			return fmt.Errorf("div = %g", got)
		}
		if got := sh.WordAt("iout", 0); got != 7 {
			return fmt.Errorf("int() = %d", got)
		}
		if got := sh.WordAt("iout", 1); got != 4 {
			return fmt.Errorf("int(sqrt)+1 = %d", got)
		}
		return nil
	})
}

// TestParallelHistogram is the full SPMD story: self-scheduling via faa,
// private tallies in local memory, merge under a lock.
func TestParallelHistogram(t *testing.T) {
	src := `
shared int data[4000];
shared int hist[8];
shared int ctr[1];
local  int tally[8];
lockdecl hmutex;

func main() {
    var start; var i; var v;
    for (;;) {
        start = faa(ctr[0], 100);
        if (start >= 4000) { break; }
        var end = start + 100;
        for (i = start; i < end; i = i + 1) {
            v = data[i] & 7;
            tally[v] = tally[v] + 1;
        }
    }
    lock(hmutex);
    for (i = 0; i < 8; i = i + 1) {
        hist[i] = hist[i] + tally[i];
    }
    unlock(hmutex);
}
`
	want := make([]int64, 8)
	init := func(sh *machine.Shared) {
		for i := int64(0); i < 4000; i++ {
			sh.SetWordAt("data", i, i*2654435761)
		}
	}
	for i := int64(0); i < 4000; i++ {
		want[(i*2654435761)&7]++
	}
	check := func(sh *machine.Shared) error {
		for i := int64(0); i < 8; i++ {
			if got := sh.WordAt("hist", i); got != want[i] {
				return fmt.Errorf("hist[%d] = %d, want %d", i, got, want[i])
			}
		}
		return nil
	}
	for _, model := range []machine.Model{machine.Ideal, machine.SwitchOnLoad, machine.SwitchOnUse, machine.ConditionalSwitch} {
		run(t, src, machine.Config{Procs: 4, Threads: 3, Model: model, Latency: 60}, init, check)
	}
}

// TestBarrierPhases: two barrier objects used alternately must keep their
// senses independent (the compiler stores each barrier's local sense in
// local memory).
func TestBarrierPhases(t *testing.T) {
	src := `
shared int slots[64];
shared int bad[1];
barrierdecl b1;
barrierdecl b2;

func main() {
    var phase; var i; var expect;
    for (phase = 0; phase < 4; phase = phase + 1) {
        slots[tid] = phase + 1;
        barrier(b1);
        expect = phase + 1;
        for (i = 0; i < nthreads; i = i + 1) {
            if (slots[i] != expect) { bad[0] = 1; }
        }
        barrier(b2);
    }
}
`
	run(t, src, machine.Config{Procs: 4, Threads: 4, Model: machine.SwitchOnLoad, Latency: 50}, nil,
		func(sh *machine.Shared) error {
			if sh.WordAt("bad", 0) != 0 {
				return fmt.Errorf("a thread crossed a barrier early")
			}
			return nil
		})
}

// TestCompilerOutputGroups is the paper's pipeline end to end: MTC source
// with several independent shared loads compiles to naive code, and the
// §5.1 optimizer groups them.
func TestCompilerOutputGroups(t *testing.T) {
	src := `
shared float grid[4416];  // 66 + 64x66 + padding, like sor's layout
func main() {
    if (tid != 0) { return; }
    var i;
    for (i = 67; i < 4350; i = i + 1) {
        grid[i] = (grid[i-66] + grid[i+66] + grid[i-1] + grid[i+1]) * 0.25;
    }
}
`
	p, err := mtc.Compile("stencil", src)
	if err != nil {
		t.Fatal(err)
	}
	grouped, st, err := opt.Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.GroupSizes[4] == 0 {
		t.Errorf("expected a four-load group from the stencil, got %v", st.GroupSizes)
	}
	// The grouped code must compute the same grid.
	initial := make([]float64, 4416)
	for i := range initial {
		initial[i] = float64(i%97) * 0.125
	}
	init := func(sh *machine.Shared) {
		for i, v := range initial {
			sh.SetFloatAt("grid", int64(i), v)
		}
	}
	ref := append([]float64(nil), initial...)
	for i := 67; i < 4350; i++ {
		ref[i] = (ref[i-66] + ref[i+66] + ref[i-1] + ref[i+1]) * 0.25
	}
	check := func(sh *machine.Shared) error {
		for i := int64(0); i < 4416; i++ {
			if got := sh.FloatAt("grid", i); got != ref[i] {
				return fmt.Errorf("grid[%d] = %g, want %g", i, got, ref[i])
			}
		}
		return nil
	}
	if _, err := machine.RunChecked(machine.Config{Model: machine.ExplicitSwitch, Latency: 100}, grouped, init, check); err != nil {
		t.Fatal(err)
	}
	// And run faster than the raw code under switch-on-load.
	r1, err := machine.RunChecked(machine.Config{Model: machine.SwitchOnLoad, Latency: 100, Threads: 4}, p, init, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := machine.RunChecked(machine.Config{Model: machine.ExplicitSwitch, Latency: 100, Threads: 4}, grouped, init, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cycles >= r1.Cycles {
		t.Errorf("grouped %d cycles >= raw %d", r2.Cycles, r1.Cycles)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"no main":          `shared int x[4];`,
		"bad char":         `func main() { @ }`,
		"undeclared var":   `func main() { x = 1; }`,
		"undeclared array": `func main() { var v = zs[0]; }`,
		"type mix":         `func main() { var a = 1 + 1.5; }`,
		"float faa":        `shared float f[4]; func main() { var v = faa(f[0], 1); }`,
		"local faa":        `local int l[4]; func main() { var v = faa(l[0], 1); }`,
		"redeclared":       `func main() { var a; var a; }`,
		"break outside":    `func main() { break; }`,
		"lock undeclared":  `func main() { lock(m); }`,
		"barrier on lock":  `lockdecl m; func main() { barrier(m); }`,
		"two funcs":        `func main() {} func main() {}`,
		"wrong func name":  `func other() {}`,
		"bad array size":   `shared int x[0]; func main() {}`,
		"unterminated":     `func main() { var a = 1;`,
		"store type":       `shared float f[2]; func main() { f[0] = 3; }`,
		"builtin assign":   `func main() { var tid; }`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := mtc.Compile("bad", src); err == nil {
				t.Errorf("accepted:\n%s", src)
			} else if !strings.Contains(err.Error(), "mtc:") {
				t.Errorf("error missing mtc prefix: %v", err)
			}
		})
	}
}

func TestBuiltinIdentity(t *testing.T) {
	src := `
shared int out[64];
func main() {
    out[tid] = tid * 100 + pid * 10 + nthreads;
}
`
	run(t, src, machine.Config{Procs: 3, Threads: 2, Model: machine.Ideal}, nil, func(sh *machine.Shared) error {
		for tid := int64(0); tid < 6; tid++ {
			pid := tid / 2
			want := tid*100 + pid*10 + 6
			if got := sh.WordAt("out", tid); got != want {
				return fmt.Errorf("out[%d] = %d, want %d", tid, got, want)
			}
		}
		return nil
	})
}
