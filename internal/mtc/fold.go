package mtc

// Constant folding and immediate-form selection. The paper's kernels
// were compiled at -O2; without at least these two classics our naive
// code generator would pad every address computation with li/op pairs
// and distort the run-length distributions the simulator measures.

// fold rewrites an expression bottom-up, evaluating constant subtrees.
func fold(e expr) expr {
	switch x := e.(type) {
	case binExpr:
		x.l = fold(x.l)
		x.r = fold(x.r)
		if l, ok := x.l.(intLit); ok {
			if r, ok := x.r.(intLit); ok {
				if v, ok := evalConstInt(x.op, l.v, r.v); ok {
					return intLit{v: v, line: x.line}
				}
			}
			// Normalize k+x to x+k so the immediate form applies
			// (addition and the bitwise ops commute).
			switch x.op {
			case "+", "*", "&", "|", "^":
				x.l, x.r = x.r, x.l
			}
		}
		if l, ok := x.l.(floatLit); ok {
			if r, ok := x.r.(floatLit); ok {
				if v, ok := evalConstFloat(x.op, l.v, r.v); ok {
					return floatLit{v: v, line: x.line}
				}
			}
		}
		return x
	case unaryExpr:
		x.e = fold(x.e)
		if x.op == "-" {
			if l, ok := x.e.(intLit); ok {
				return intLit{v: -l.v, line: x.line}
			}
			if l, ok := x.e.(floatLit); ok {
				return floatLit{v: -l.v, line: x.line}
			}
		}
		return x
	case callExpr:
		for i := range x.args {
			x.args[i] = fold(x.args[i])
		}
		return x
	case indexExpr:
		x.idx = fold(x.idx)
		return x
	default:
		return e
	}
}

// evalConstInt folds an integer operator over literals. Division and
// remainder by zero are left to fault at runtime, like any other
// program error.
func evalConstInt(op string, l, r int64) (int64, bool) {
	switch op {
	case "+":
		return l + r, true
	case "-":
		return l - r, true
	case "*":
		return l * r, true
	case "/":
		if r == 0 {
			return 0, false
		}
		return l / r, true
	case "%":
		if r == 0 {
			return 0, false
		}
		return l % r, true
	case "&":
		return l & r, true
	case "|":
		return l | r, true
	case "^":
		return l ^ r, true
	case "<<":
		return l << (uint64(r) & 63), true
	case ">>":
		return l >> (uint64(r) & 63), true
	case "<":
		return b2i(l < r), true
	case "<=":
		return b2i(l <= r), true
	case ">":
		return b2i(l > r), true
	case ">=":
		return b2i(l >= r), true
	case "==":
		return b2i(l == r), true
	case "!=":
		return b2i(l != r), true
	}
	return 0, false
}

func evalConstFloat(op string, l, r float64) (float64, bool) {
	switch op {
	case "+":
		return l + r, true
	case "-":
		return l - r, true
	case "*":
		return l * r, true
	case "/":
		return l / r, true
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// foldStmt applies constant folding to every expression in a statement.
func foldStmt(s stmt) stmt {
	switch x := s.(type) {
	case varDecl:
		if x.init != nil {
			x.init = fold(x.init)
		}
		return x
	case assign:
		x.val = fold(x.val)
		return x
	case storeStmt:
		x.idx = fold(x.idx)
		x.val = fold(x.val)
		return x
	case ifStmt:
		x.cond = fold(x.cond)
		x.then = foldStmts(x.then)
		x.els = foldStmts(x.els)
		return x
	case whileStmt:
		x.cond = fold(x.cond)
		x.body = foldStmts(x.body)
		return x
	case forStmt:
		if x.init != nil {
			x.init = foldStmt(x.init)
		}
		if x.cond != nil {
			x.cond = fold(x.cond)
		}
		if x.post != nil {
			x.post = foldStmt(x.post)
		}
		x.body = foldStmts(x.body)
		return x
	case exprStmt:
		x.e = fold(x.e)
		return x
	default:
		return s
	}
}

func foldStmts(ss []stmt) []stmt {
	for i := range ss {
		ss[i] = foldStmt(ss[i])
	}
	return ss
}

// immOp returns how an integer binary op with a literal right operand
// lowers to an immediate-form instruction: emit(dst, src, imm) plus true,
// or false when no immediate form applies.
func (g *gen) immOp(op string, imm int64) (func(d, s uint8), bool) {
	switch op {
	case "+":
		return func(d, s uint8) { g.b.Addi(d, s, imm) }, true
	case "-":
		return func(d, s uint8) { g.b.Addi(d, s, -imm) }, true
	case "*":
		// Strength-reduce multiplication by a power of two.
		if imm > 0 && imm&(imm-1) == 0 {
			sh := int64(0)
			for v := imm; v > 1; v >>= 1 {
				sh++
			}
			return func(d, s uint8) { g.b.Slli(d, s, sh) }, true
		}
		return func(d, s uint8) { g.b.Muli(d, s, imm) }, true
	case "&":
		return func(d, s uint8) { g.b.Andi(d, s, imm) }, true
	case "|":
		return func(d, s uint8) { g.b.Ori(d, s, imm) }, true
	case "^":
		return func(d, s uint8) { g.b.Xori(d, s, imm) }, true
	case "<<":
		return func(d, s uint8) { g.b.Slli(d, s, imm) }, true
	case ">>":
		return func(d, s uint8) { g.b.Srai(d, s, imm) }, true
	case "<":
		return func(d, s uint8) { g.b.Slti(d, s, imm) }, true
	case ">=":
		return func(d, s uint8) {
			g.b.Slti(d, s, imm)
			g.b.Xori(d, d, 1)
		}, true
	}
	return nil, false
}
