// Package mtc is a small kernel language and compiler for the simulated
// multiprocessor, demonstrating the paper's full compiler story: source
// is compiled with straightforward code generation (shared loads emitted
// exactly where the source reads shared arrays), and the §5.1 grouping
// optimizer then reorganizes the object code — just as the paper's
// post-processor reorganized compiler output.
//
// The language ("MTC") is C-flavoured:
//
//	shared int data[20000];
//	shared int hist[16];
//	shared int ctr[1];
//	local  int tally[16];
//
//	func main() {
//	    var i; var start; var v;
//	    for (;;) {
//	        start = faa(ctr[0], 128);
//	        if (start >= 20000) { break; }
//	        for (i = start; i < start+128 && i < 20000; i = i+1) {
//	            v = data[i];
//	            tally[v & 15] = tally[v & 15] + 1;
//	        }
//	    }
//	    lock(hmutex);
//	    // ...
//	    unlock(hmutex);
//	}
//
// Declarations: `shared int|float name[N];`, `local int|float name[N];`,
// `lockdecl name;`, `barrierdecl name;`. One function, `main`, runs on
// every thread (SPMD); the builtin variables `tid`, `nthreads` and `pid`
// carry the thread's identity. Statements: var/fvar declarations, scalar
// and array-element assignment, if/else, while, for, break/continue,
// `barrier(name);`, `lock(name);`, `unlock(name);` and expression
// statements. Expressions: integer and float arithmetic (int: + - * / %
// & | ^ << >>, float: + - * /), comparisons (yielding int 0/1), && and
// || (short-circuit), unary -, `faa(arr[idx], e)`, `float(e)`, `int(e)`,
// `sqrt(e)` and `abs(e)`.
package mtc

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokPunct   // single or multi character operator/punctuation
	tokKeyword // reserved word
)

var keywords = map[string]bool{
	"shared": true, "local": true, "int": true, "float": true,
	"func": true, "var": true, "fvar": true,
	"if": true, "else": true, "while": true, "for": true,
	"break": true, "continue": true, "return": true,
	"lockdecl": true, "barrierdecl": true,
}

// token is one lexeme with its source position.
type token struct {
	kind tokKind
	text string
	ival int64
	fval float64
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokInt:
		return fmt.Sprintf("integer %d", t.ival)
	case tokFloat:
		return fmt.Sprintf("float %g", t.fval)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// puncts are the multi-character operators, longest first.
var puncts = []string{
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+", "-", "*", "/", "%", "&", "|", "^", "<", ">",
	"=", "(", ")", "[", "]", "{", "}", ";", ",", "!",
}

// lex tokenizes src. Comments run from // to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	n := len(src)
	advance := func(k int) {
		for j := 0; j < k; j++ {
			if src[i+j] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += k
	}
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			advance(1)
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			startCol := col
			for i < n && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				advance(1)
			}
			text := src[start:i]
			kind := tokIdent
			if keywords[text] {
				kind = tokKeyword
			}
			toks = append(toks, token{kind: kind, text: text, line: line, col: startCol})
		case unicode.IsDigit(rune(c)):
			start := i
			startCol := col
			isFloat := false
			for i < n && (unicode.IsDigit(rune(src[i])) || src[i] == '.') {
				if src[i] == '.' {
					if isFloat {
						return nil, fmt.Errorf("mtc: line %d: malformed number", line)
					}
					isFloat = true
				}
				advance(1)
			}
			text := src[start:i]
			t := token{line: line, col: startCol, text: text}
			if isFloat {
				t.kind = tokFloat
				if _, err := fmt.Sscanf(text, "%g", &t.fval); err != nil {
					return nil, fmt.Errorf("mtc: line %d: bad float literal %q", line, text)
				}
			} else {
				t.kind = tokInt
				if _, err := fmt.Sscanf(text, "%d", &t.ival); err != nil {
					return nil, fmt.Errorf("mtc: line %d: bad integer literal %q", line, text)
				}
			}
			toks = append(toks, t)
		default:
			matched := false
			for _, p := range puncts {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, token{kind: tokPunct, text: p, line: line, col: col})
					advance(len(p))
					matched = true
					break
				}
			}
			if !matched {
				return nil, fmt.Errorf("mtc: line %d:%d: unexpected character %q", line, col, c)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line, col: col})
	return toks, nil
}
