package mtc

import "fmt"

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("mtc: line %d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tokPunct || t.text != s {
		return p.errf(t, "expected %q, found %s", s, t)
	}
	return nil
}

func (p *parser) expectKeyword(s string) error {
	t := p.next()
	if t.kind != tokKeyword || t.text != s {
		return p.errf(t, "expected %q, found %s", s, t)
	}
	return nil
}

func (p *parser) expectIdent() (token, error) {
	t := p.next()
	if t.kind != tokIdent {
		return t, p.errf(t, "expected identifier, found %s", t)
	}
	return t, nil
}

func (p *parser) acceptPunct(s string) bool {
	if p.cur().kind == tokPunct && p.cur().text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) isKeyword(s string) bool {
	return p.cur().kind == tokKeyword && p.cur().text == s
}

// parseProgram parses the whole compilation unit.
func (p *parser) parseProgram(name string) (*program, error) {
	prg := &program{name: name}
	for {
		t := p.cur()
		switch {
		case t.kind == tokEOF:
			if prg.body == nil {
				return nil, p.errf(t, "missing func main()")
			}
			return prg, nil
		case t.kind == tokKeyword && (t.text == "shared" || t.text == "local"):
			d, err := p.parseArrayDecl()
			if err != nil {
				return nil, err
			}
			prg.decls = append(prg.decls, d)
		case t.kind == tokKeyword && (t.text == "lockdecl" || t.text == "barrierdecl"):
			p.pos++
			id, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
			k := declLock
			if t.text == "barrierdecl" {
				k = declBarrier
			}
			prg.decls = append(prg.decls, arrayDecl{kind: k, name: id.text, size: 2, line: t.line})
		case t.kind == tokKeyword && t.text == "func":
			if prg.body != nil {
				return nil, p.errf(t, "only one function, main, is allowed")
			}
			p.pos++
			id, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if id.text != "main" {
				return nil, p.errf(id, "the single function must be named main")
			}
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			body, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			prg.body = body
			prg.mainLn = t.line
		default:
			return nil, p.errf(t, "expected a declaration or func main, found %s", t)
		}
	}
}

func (p *parser) parseArrayDecl() (arrayDecl, error) {
	kw := p.next() // shared | local
	d := arrayDecl{line: kw.line}
	if kw.text == "shared" {
		d.kind = declShared
	} else {
		d.kind = declLocal
	}
	et := p.next()
	switch {
	case et.kind == tokKeyword && et.text == "int":
		d.elem = typInt
	case et.kind == tokKeyword && et.text == "float":
		d.elem = typFloat
	default:
		return d, p.errf(et, "expected element type int or float, found %s", et)
	}
	id, err := p.expectIdent()
	if err != nil {
		return d, err
	}
	d.name = id.text
	if err := p.expectPunct("["); err != nil {
		return d, err
	}
	sz := p.next()
	if sz.kind != tokInt || sz.ival <= 0 {
		return d, p.errf(sz, "expected a positive array size, found %s", sz)
	}
	d.size = sz.ival
	if err := p.expectPunct("]"); err != nil {
		return d, err
	}
	return d, p.expectPunct(";")
}

func (p *parser) parseBlock() ([]stmt, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var out []stmt
	for !p.acceptPunct("}") {
		if p.cur().kind == tokEOF {
			return nil, p.errf(p.cur(), "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *parser) parseStmt() (stmt, error) {
	t := p.cur()
	switch {
	case t.kind == tokKeyword && (t.text == "var" || t.text == "fvar"):
		p.pos++
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		d := varDecl{name: id.text, line: t.line}
		if t.text == "fvar" {
			d.t = typFloat
		}
		if p.acceptPunct("=") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			d.init = e
		}
		return d, p.expectPunct(";")

	case t.kind == tokKeyword && t.text == "if":
		p.pos++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		s := ifStmt{cond: cond, then: then, line: t.line}
		if p.isKeyword("else") {
			p.pos++
			if p.isKeyword("if") {
				inner, err := p.parseStmt()
				if err != nil {
					return nil, err
				}
				s.els = []stmt{inner}
			} else {
				els, err := p.parseBlock()
				if err != nil {
					return nil, err
				}
				s.els = els
			}
		}
		return s, nil

	case t.kind == tokKeyword && t.text == "while":
		p.pos++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return whileStmt{cond: cond, body: body, line: t.line}, nil

	case t.kind == tokKeyword && t.text == "for":
		p.pos++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		s := forStmt{line: t.line}
		if !p.acceptPunct(";") {
			init, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			s.init = init
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
		}
		if !p.acceptPunct(";") {
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.cond = cond
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
		}
		if !p.acceptPunct(")") {
			post, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			s.post = post
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		s.body = body
		return s, nil

	case t.kind == tokKeyword && t.text == "break":
		p.pos++
		return breakStmt{line: t.line}, p.expectPunct(";")
	case t.kind == tokKeyword && t.text == "continue":
		p.pos++
		return continueStmt{line: t.line}, p.expectPunct(";")
	case t.kind == tokKeyword && t.text == "return":
		p.pos++
		return returnStmt{line: t.line}, p.expectPunct(";")

	case t.kind == tokIdent && (t.text == "barrier" || t.text == "lock" || t.text == "unlock") &&
		p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "(":
		p.pos++
		p.pos++ // "("
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		switch t.text {
		case "barrier":
			return barrierStmt{name: id.text, line: t.line}, nil
		case "lock":
			return lockStmt{name: id.text, acquire: true, line: t.line}, nil
		default:
			return lockStmt{name: id.text, acquire: false, line: t.line}, nil
		}

	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		return s, p.expectPunct(";")
	}
}

// parseSimpleStmt parses an assignment or expression statement (no
// trailing semicolon), as used in for-headers.
func (p *parser) parseSimpleStmt() (stmt, error) {
	t := p.cur()
	if t.kind == tokIdent {
		// Lookahead distinguishes "x = e", "a[i] = e" from expressions.
		if p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "=" {
			p.pos += 2
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return assign{name: t.text, val: e, line: t.line}, nil
		}
		if p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "[" {
			// Could be a store or an index expression; parse the index
			// and check for '='.
			save := p.pos
			p.pos += 2
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			if p.acceptPunct("=") {
				val, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				return storeStmt{arr: t.text, idx: idx, val: val, line: t.line}, nil
			}
			p.pos = save // expression statement after all
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return exprStmt{e: e, line: t.line}, nil
}

// Operator precedence, loosest first.
var precedence = [][]string{
	{"||"},
	{"&&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"|", "^"},
	{"&"},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) parseExpr() (expr, error) { return p.parseBin(0) }

func (p *parser) parseBin(level int) (expr, error) {
	if level >= len(precedence) {
		return p.parseUnary()
	}
	l, err := p.parseBin(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct || !contains(precedence[level], t.text) {
			return l, nil
		}
		p.pos++
		r, err := p.parseBin(level + 1)
		if err != nil {
			return nil, err
		}
		l = binExpr{op: t.text, l: l, r: r, line: t.line}
	}
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

func (p *parser) parseUnary() (expr, error) {
	t := p.cur()
	if t.kind == tokPunct && (t.text == "-" || t.text == "!") {
		p.pos++
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{op: t.text, e: e, line: t.line}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr, error) {
	t := p.next()
	switch {
	case t.kind == tokInt:
		return intLit{v: t.ival, line: t.line}, nil
	case t.kind == tokFloat:
		return floatLit{v: t.fval, line: t.line}, nil
	case t.kind == tokPunct && t.text == "(":
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expectPunct(")")
	case t.kind == tokKeyword && (t.text == "float" || t.text == "int"):
		// Conversion builtins share keyword names.
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return callExpr{fn: t.text, args: []expr{e}, line: t.line}, nil
	case t.kind == tokIdent:
		if p.acceptPunct("(") {
			var args []expr
			if !p.acceptPunct(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.acceptPunct(")") {
						break
					}
					if err := p.expectPunct(","); err != nil {
						return nil, err
					}
				}
			}
			return callExpr{fn: t.text, args: args, line: t.line}, nil
		}
		if p.acceptPunct("[") {
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			return indexExpr{arr: t.text, idx: idx, line: t.line}, nil
		}
		return varRef{name: t.text, line: t.line}, nil
	}
	return nil, p.errf(t, "expected an expression, found %s", t)
}
