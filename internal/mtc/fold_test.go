package mtc_test

import (
	"fmt"
	"strings"
	"testing"

	"mtsim/internal/asm"
	"mtsim/internal/machine"
	"mtsim/internal/mtc"
)

// TestConstantFolding: constant subtrees vanish; results stay right.
func TestConstantFolding(t *testing.T) {
	src := `
shared int out[4];
func main() {
    if (tid != 0) { return; }
    out[0] = 2 + 3 * 4;          // 14, folded to one li
    out[1] = (10 - 4) / 3;       // 2
    out[2] = (1 << 10) | 5;      // 1029
    out[3] = -(7 - 2);           // -5
}
`
	p, err := mtc.Compile("fold", src)
	if err != nil {
		t.Fatal(err)
	}
	text := asm.Format(p)
	for _, op := range []string{"mul\t", "div\t", "sll\t", "\tsub\t", "\tor\t"} {
		if strings.Contains(text, op) {
			t.Errorf("constant expression not folded (found %q):\n%s", strings.TrimSpace(op), text)
		}
	}
	if _, err := machine.RunChecked(machine.Config{Model: machine.Ideal}, p, nil, func(sh *machine.Shared) error {
		want := []int64{14, 2, 1029, -5}
		for i, w := range want {
			if got := sh.WordAt("out", int64(i)); got != w {
				return fmt.Errorf("out[%d] = %d, want %d", i, got, w)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestImmediateForms: literal right operands lower to immediate
// instructions, and power-of-two multiplies become shifts.
func TestImmediateForms(t *testing.T) {
	src := `
shared int out[6];
func main() {
    if (tid != 0) { return; }
    var x = 10;
    out[0] = x + 5;
    out[1] = x - 3;
    out[2] = x * 8;    // shift, not multiply
    out[3] = x & 6;
    out[4] = x < 11;
    out[5] = x * 10;   // genuine multiply-immediate
}
`
	p, err := mtc.Compile("imm", src)
	if err != nil {
		t.Fatal(err)
	}
	text := asm.Format(p)
	for _, want := range []string{"addi", "slli", "andi", "slti", "muli"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing immediate form %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "\tmul\t") || strings.Contains(text, "\tadd\t") {
		t.Errorf("register-register form where immediate applies:\n%s", text)
	}
	if _, err := machine.RunChecked(machine.Config{Model: machine.Ideal}, p, nil, func(sh *machine.Shared) error {
		want := []int64{15, 7, 80, 2, 1, 100}
		for i, w := range want {
			if got := sh.WordAt("out", int64(i)); got != w {
				return fmt.Errorf("out[%d] = %d, want %d", i, got, w)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestFoldingShrinksStencil: the folded/immediate-form stencil loop must
// be materially smaller and faster than pessimal li/op pairs would be —
// pin the code size so a codegen regression is caught.
func TestFoldingShrinksStencil(t *testing.T) {
	src := `
shared float grid[300];
func main() {
    if (tid != 0) { return; }
    var i;
    for (i = 67; i < 200; i = i + 1) {
        grid[i] = (grid[i-66] + grid[i+66] + grid[i-1] + grid[i+1]) * 0.25;
    }
}
`
	p, err := mtc.Compile("stencil", src)
	if err != nil {
		t.Fatal(err)
	}
	// Loop body budget: 4 addi + 4 loads + 3 fadd + 2 (li+mtf) + fmul +
	// store + loop control ~= 20; anything over 30 means folding broke.
	if n := len(p.Instrs); n > 40 {
		t.Errorf("stencil compiled to %d instructions; folding regressed", n)
	}
	// Division/remainder by a constant zero must not fold (it faults at
	// runtime like any program error).
	bad := `
shared int out[1];
func main() { out[0] = 1 / 0; }
`
	q, err := mtc.Compile("divzero", bad)
	if err != nil {
		t.Fatalf("compile-time rejection of 1/0: should fault at runtime instead: %v", err)
	}
	if _, err := machine.Run(machine.Config{Model: machine.Ideal}, q, nil); err == nil {
		t.Error("1/0 did not fault at runtime")
	}
}
