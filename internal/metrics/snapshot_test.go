package metrics

import (
	"encoding/json"
	"reflect"
	"testing"
)

// drive runs a deterministic mixed workload against a collector.
func drive(c *Collector, from, to int64) {
	for now := from; now < to; now += 10 {
		p := int(now/10) % 2
		tt := int(now/20) % 2
		c.BeginExec(p, tt, now, now-3)
		if now%30 == 0 {
			c.MarkHit()
		}
		if now%50 == 0 {
			c.AddFaultDebt(p, tt, 4)
		}
		c.EndExec(p, tt, now, 1, 2)
	}
}

func TestCollectorSnapshotRestoreByteIdentity(t *testing.T) {
	// Uninterrupted run.
	full := NewCollector(2, 2)
	drive(full, 0, 1000)
	want := full.Finish(1100)

	// Same workload, paused at the midpoint via snapshot/restore.
	first := NewCollector(2, 2)
	drive(first, 0, 500)
	resumed, err := RestoreCollector(2, 2, first.Snapshot())
	if err != nil {
		t.Fatalf("RestoreCollector: %v", err)
	}
	drive(resumed, 500, 1000)
	got := resumed.Finish(1100)

	wj, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gj, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(wj) != string(gj) {
		t.Fatalf("resumed metrics differ from uninterrupted:\nwant %s\ngot  %s", wj, gj)
	}
}

func TestCollectorSnapshotRoundTrip(t *testing.T) {
	c := NewCollector(3, 4)
	drive(c, 0, 700)
	st := c.Snapshot()
	r, err := RestoreCollector(3, 4, st)
	if err != nil {
		t.Fatalf("RestoreCollector: %v", err)
	}
	if !reflect.DeepEqual(st, r.Snapshot()) {
		t.Fatal("snapshot -> restore -> snapshot is not the identity")
	}
}

func TestRestoreCollectorShapeMismatch(t *testing.T) {
	c := NewCollector(2, 2)
	st := c.Snapshot()
	if _, err := RestoreCollector(3, 2, st); err == nil {
		t.Error("wrong proc count accepted")
	}
	if _, err := RestoreCollector(2, 3, st); err == nil {
		t.Error("wrong thread count accepted")
	}
}
