package metrics

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

func TestStateString(t *testing.T) {
	want := map[State]string{
		StateRunning:       "running",
		StateSwitching:     "context-switching",
		StateStalledMem:    "stalled-on-memory",
		StateCacheHit:      "cache-hit-continue",
		StateIdle:          "idle",
		StateFaultRecovery: "fault-recovery",
		State(-1):          "state(?)",
		NumStates:          "state(?)",
	}
	for s, name := range want {
		if got := s.String(); got != name {
			t.Errorf("State(%d).String() = %q, want %q", int(s), got, name)
		}
	}
}

// TestAcctGapClassification walks addGap through its cases: a pure
// stall, a stall/ready split at the wake cycle, fault debt converting
// the leading stall cycles, and a wake earlier than the accounted
// frontier (the whole gap is ready-waiting).
func TestAcctGapClassification(t *testing.T) {
	var a acct

	// [0, 10) ending at an execution, woken at 10: all stall.
	a.addGap(10, 10)
	if a.states[StateStalledMem] != 10 || a.states[StateIdle] != 0 {
		t.Fatalf("pure stall: %v", a.states)
	}

	// [10, 30) with wake at 15: 5 stalled, 15 ready-waiting.
	a.addGap(30, 15)
	if a.states[StateStalledMem] != 15 || a.states[StateIdle] != 15 {
		t.Fatalf("split gap: %v", a.states)
	}

	// Debt of 3 converts the head of the next 10-cycle stall.
	a.faultDebt = 3
	a.addGap(40, 40)
	if a.states[StateFaultRecovery] != 3 || a.states[StateStalledMem] != 22 {
		t.Fatalf("debt split: %v", a.states)
	}
	if a.faultDebt != 0 {
		t.Fatalf("debt not consumed: %d", a.faultDebt)
	}

	// Debt larger than the stall carries the remainder forward.
	a.faultDebt = 100
	a.addGap(45, 45)
	if a.states[StateFaultRecovery] != 8 || a.faultDebt != 95 {
		t.Fatalf("debt carry: states=%v debt=%d", a.states, a.faultDebt)
	}
	a.faultDebt = 0

	// Wake before the frontier: the whole gap is ready-waiting.
	a.addGap(55, 20)
	if a.states[StateIdle] != 25 {
		t.Fatalf("early wake: %v", a.states)
	}

	// A no-op gap changes nothing.
	before := a.states
	a.addGap(55, 55)
	a.addGap(40, 40)
	if a.states != before {
		t.Fatalf("no-op gap mutated states: %v", a.states)
	}

	if a.states[StateRunning]+a.states[StateSwitching]+a.states[StateStalledMem]+
		a.states[StateCacheHit]+a.states[StateIdle]+a.states[StateFaultRecovery] != a.lastEnd {
		t.Fatalf("states do not sum to the frontier %d: %v", a.lastEnd, a.states)
	}
}

// TestAcctCloseTrim exercises close's two directions: padding trailing
// idle, and trimming an overshoot in the documented state order
// (switching first, stalled-mem last).
func TestAcctCloseTrim(t *testing.T) {
	var a acct
	a.addExec(0, 4, 2, false) // running 4, switching 2, frontier 6
	a.close(10)
	if a.states[StateIdle] != 4 || a.lastEnd != 10 {
		t.Fatalf("pad: %v end=%d", a.states, a.lastEnd)
	}

	// Overshoot of 5 eats switching (2) then cache-hit (0) then
	// running (3 of 4).
	a = acct{}
	a.addExec(0, 4, 2, false)
	a.close(1)
	if a.states[StateSwitching] != 0 || a.states[StateRunning] != 1 {
		t.Fatalf("trim order: %v", a.states)
	}
	if sum := a.states[StateRunning] + a.states[StateSwitching]; sum != 1 || a.lastEnd != 1 {
		t.Fatalf("trim total: %v end=%d", a.states, a.lastEnd)
	}

	// A cache hit books the cost under cache-hit-continue instead.
	a = acct{}
	a.addExec(0, 3, 0, true)
	if a.states[StateCacheHit] != 3 || a.states[StateRunning] != 0 {
		t.Fatalf("hit exec: %v", a.states)
	}
}

// TestCollectorExactness drives a small synthetic schedule through the
// public Collector API and asserts the package's core guarantee: every
// settled timeline sums to exactly the end cycle.
func TestCollectorExactness(t *testing.T) {
	c := NewCollector(2, 2)

	// Proc 0, thread 0 runs at 0 for 3 cycles + 1 switch cycle.
	c.BeginExec(0, 0, 0, 0)
	c.EndExec(0, 0, 0, 3, 1)
	// Thread 1 was ready since 2, runs at 4, hits the cache.
	c.BeginExec(0, 1, 4, 2)
	c.MarkHit()
	c.EndExec(0, 1, 4, 1, 0)
	// Thread 0 stalls on memory with fault debt, resumes at 20.
	c.AddFaultDebt(0, 0, 6)
	c.AddFaultDebt(0, 0, 0) // no-op
	c.BeginExec(0, 0, 20, 18)
	c.EndExec(0, 0, 20, 2, 0)
	// Proc 1 never runs: all idle after close.

	rm := c.Finish(30)
	if rm.Schema != SchemaVersion || rm.Cycles != 30 {
		t.Fatalf("header: %+v", rm)
	}
	if want := int64(2 * 30); rm.States.Total() != want {
		t.Fatalf("machine total %d, want %d", rm.States.Total(), want)
	}
	for _, pm := range rm.Procs {
		if pm.States.Total() != 30 {
			t.Errorf("proc %d total %d, want 30", pm.Proc, pm.States.Total())
		}
		var threadSum StateCycles
		for _, tm := range pm.Threads {
			if tm.States.Total() != 30 {
				t.Errorf("proc %d thread %d total %d, want 30", pm.Proc, tm.Thread, tm.States.Total())
			}
			threadSum.accumulate(&tm.States)
		}
		if threadSum.Busy() != pm.States.Busy() {
			t.Errorf("proc %d: thread busy %d != proc busy %d", pm.Proc, threadSum.Busy(), pm.States.Busy())
		}
	}
	if rm.Procs[1].States.Idle != 30 {
		t.Errorf("idle proc: %+v", rm.Procs[1].States)
	}
	if rm.States.FaultRecovery == 0 || rm.States.CacheHit == 0 || rm.States.StalledMem == 0 {
		t.Errorf("synthetic schedule left a state empty: %+v", rm.States)
	}
}

func TestStateCyclesHelpers(t *testing.T) {
	s := StateCycles{Running: 10, Switching: 2, StalledMem: 3, CacheHit: 4, Idle: 1, FaultRecovery: 5}
	if s.Total() != 25 {
		t.Errorf("Total = %d, want 25", s.Total())
	}
	if s.Busy() != 14 {
		t.Errorf("Busy = %d, want 14", s.Busy())
	}
	withPct := s.Breakdown(25)
	if !strings.Contains(withPct, "running=10(40.0%)") || !strings.Contains(withPct, "fault-recovery=5(20.0%)") {
		t.Errorf("Breakdown(25) = %q", withPct)
	}
	bare := s.Breakdown(0)
	if !strings.Contains(bare, "running=10") || strings.Contains(bare, "%") {
		t.Errorf("Breakdown(0) = %q", bare)
	}
}

func TestCountersAccumulateWeightedMean(t *testing.T) {
	var c Counters
	c.accumulate(&Counters{RunLengthMean: 10, RunLengthMax: 7, SwitchesTaken: 2, Instrs: 100}, 0, 2)
	c.accumulate(&Counters{RunLengthMean: 4, RunLengthMax: 3, SwitchesTaken: 6, Instrs: 50}, 2, 6)
	if want := (10.0*2 + 4.0*6) / 8; c.RunLengthMean != want {
		t.Errorf("weighted mean = %v, want %v", c.RunLengthMean, want)
	}
	if c.RunLengthMax != 7 || c.SwitchesTaken != 8 || c.Instrs != 150 {
		t.Errorf("sums: %+v", c)
	}
	// Zero total weight leaves the mean untouched.
	before := c.RunLengthMean
	c.accumulate(&Counters{RunLengthMean: 99}, 0, 0)
	if c.RunLengthMean != before {
		t.Errorf("zero-weight fold changed the mean: %v", c.RunLengthMean)
	}
}

// TestBatchOrderInvariance is the unit-level version of the engine's
// byte-identical contract: folding the same runs in any arrival order
// yields an identical aggregate, including the float RunLengthMean.
func TestBatchOrderInvariance(t *testing.T) {
	mk := func(prog string, cycles int64, mean float64, taken int64) *RunMetrics {
		return &RunMetrics{
			Schema: SchemaVersion, Program: prog, Model: "switch-on-load",
			NumProcs: 2, NumThreads: 2, Cycles: cycles,
			States:   StateCycles{Running: cycles, Idle: cycles},
			Counters: Counters{Instrs: cycles, RunLengthMean: mean, SwitchesTaken: taken},
		}
	}
	runs := []*RunMetrics{
		mk("sieve", 100, 3.5, 10), mk("sor", 300, 1.25, 40),
		mk("sieve", 200, 2.0, 30), mk("water", 50, 9.0, 5),
	}
	engine := EngineMetrics{Sims: 4, MemoHits: 1}

	var want []byte
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		perm := r.Perm(len(runs))
		var b Batch
		b.Add(nil) // ignored
		for _, i := range perm {
			b.Add(runs[i])
		}
		bm := b.Metrics(engine)
		if bm.Runs != len(runs) || bm.Engine != engine {
			t.Fatalf("aggregate header: %+v", bm)
		}
		got, err := json.Marshal(bm)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
		} else if !bytes.Equal(got, want) {
			t.Fatalf("order %v changed the aggregate:\n%s\nvs\n%s", perm, got, want)
		}
	}
}

func TestWriteJSONFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, &BatchMetrics{Schema: SchemaVersion}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "}\n") {
		t.Errorf("missing trailing newline: %q", out)
	}
	if !strings.Contains(out, "\n  \"runs\": 0") {
		t.Errorf("not two-space indented: %q", out)
	}
	var round BatchMetrics
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Errorf("output does not round-trip: %v", err)
	}
	// Unmarshalable values surface as errors, not panics.
	if err := WriteJSON(&buf, func() {}); err == nil {
		t.Error("WriteJSON(func) did not error")
	}
}
