// Package metrics is the cycle-accounting observability layer of the
// simulator: a per-processor, per-thread decomposition of every machine
// cycle into the states the paper's efficiency figures are built from
// (busy vs. switching vs. stalled vs. idle, Figures 4-9), extended with
// the cache-hit and fault-recovery states our later models added.
//
// The layer is strictly additive and zero-cost when disabled: the
// machine only constructs a Collector when Config.CollectMetrics is
// set, every hook in the hot loop is behind one nil check, and a
// metrics-off run produces byte-identical results to a build without
// the package.
//
// Accounting is exact by construction: the Collector closes the time
// line of each processor (and each thread) at every instruction
// boundary, so after Finish the six state counters of every processor
// sum to exactly the run's cycle count — machine-wide,
// sum(states) == Procs x Cycles. Attribution *within* the stall states
// (stalled-on-memory vs. fault-recovery, stalled vs. ready-waiting for
// a thread) follows the wake times and fault-overhead debts recorded at
// issue; it is a faithful but not unique decomposition, and only the
// totals carry the exactness guarantee.
package metrics

// State is one of the mutually-exclusive activities a processor (or
// thread) is performing during a cycle.
type State int

const (
	// StateRunning is executing an instruction.
	StateRunning State = iota
	// StateSwitching is context-switch overhead (Config.SwitchCost).
	StateSwitching
	// StateStalledMem is waiting on outstanding shared-memory round
	// trips (for a thread: blocked at a use point or a blocking load;
	// for a processor: no thread runnable because all are waiting).
	StateStalledMem
	// StateCacheHit is executing a shared load that hit the cache and
	// continued without switching (the cache-based models' fast path).
	StateCacheHit
	// StateIdle is having no work: a processor whose threads have all
	// halted, or a thread that is runnable but waiting for the CPU (or
	// has halted).
	StateIdle
	// StateFaultRecovery is the portion of a memory stall attributable
	// to the fault-injection recovery protocol (timeouts, retries,
	// backoff) rather than the nominal round trip.
	StateFaultRecovery

	// NumStates is the number of defined states.
	NumStates
)

var stateNames = [NumStates]string{
	StateRunning:       "running",
	StateSwitching:     "context-switching",
	StateStalledMem:    "stalled-on-memory",
	StateCacheHit:      "cache-hit-continue",
	StateIdle:          "idle",
	StateFaultRecovery: "fault-recovery",
}

// String names the state.
func (s State) String() string {
	if s >= 0 && s < NumStates {
		return stateNames[s]
	}
	return "state(?)"
}

// acct is one accounted timeline (a processor's or a thread's).
type acct struct {
	// lastEnd is the first cycle not yet accounted.
	lastEnd int64
	// faultDebt is recovery-protocol overhead issued but not yet
	// attributed to a stall gap.
	faultDebt int64
	states    [NumStates]int64
}

// addGap classifies the waiting cycles [a.lastEnd, now) ending at an
// execution. stallUntil bounds the memory-stall portion: cycles past it
// are ready-waiting (idle). Pass now (or any value >= now) to classify
// the whole gap as a stall. Fault debt converts the leading part of the
// stall into fault-recovery time.
func (a *acct) addGap(now, stallUntil int64) {
	if now <= a.lastEnd {
		return
	}
	stallEnd := stallUntil
	if stallEnd > now {
		stallEnd = now
	}
	if stallEnd < a.lastEnd {
		// Woken before (or while) the last accounted span ended: the
		// whole gap is ready-waiting.
		stallEnd = a.lastEnd
	}
	if stall := stallEnd - a.lastEnd; stall > 0 {
		fault := a.faultDebt
		if fault > stall {
			fault = stall
		}
		a.faultDebt -= fault
		a.states[StateFaultRecovery] += fault
		a.states[StateStalledMem] += stall - fault
	}
	if ready := now - stallEnd; ready > 0 {
		a.states[StateIdle] += ready
	}
	a.lastEnd = now
}

// addExec accounts one executed instruction at cycle now: cost cycles
// of running (or cache-hit-continue) plus switchCost cycles of
// context-switch overhead.
func (a *acct) addExec(now, cost, switchCost int64, hit bool) {
	if hit {
		a.states[StateCacheHit] += cost
	} else {
		a.states[StateRunning] += cost
	}
	a.states[StateSwitching] += switchCost
	a.lastEnd = now + cost + switchCost
}

// close settles the timeline at the run's end cycle: trailing
// unaccounted cycles become idle; an overshoot (a final instruction
// whose cost extends past the last issue cycle) is trimmed from the
// most recently accumulated states so the total stays exact.
func (a *acct) close(end int64) {
	if a.lastEnd < end {
		a.states[StateIdle] += end - a.lastEnd
		a.lastEnd = end
		return
	}
	over := a.lastEnd - end
	for _, s := range [...]State{StateSwitching, StateCacheHit, StateRunning, StateIdle, StateFaultRecovery, StateStalledMem} {
		if over <= 0 {
			break
		}
		d := a.states[s]
		if d > over {
			d = over
		}
		a.states[s] -= d
		over -= d
	}
	a.lastEnd = end
}

// Collector accumulates the state timelines of one simulation. It is
// owned by a single machine run and is not safe for concurrent use.
type Collector struct {
	nthreads int
	procs    []acct
	threads  []acct // proc-major: threads[p*nthreads+t]
	// hit marks the instruction currently executing as a continuing
	// cache hit (set between BeginExec and EndExec).
	hit bool
}

// NewCollector sizes a collector for procs processors of nthreads
// thread contexts each.
func NewCollector(procs, nthreads int) *Collector {
	return &Collector{
		nthreads: nthreads,
		procs:    make([]acct, procs),
		threads:  make([]acct, procs*nthreads),
	}
}

// BeginExec closes the waiting gap of processor p and thread t up to
// cycle now, at which an instruction of t is about to execute. wake is
// the cycle t last became runnable, splitting its gap into
// stalled-on-memory (before wake) and ready-waiting (after).
func (c *Collector) BeginExec(p, t int, now, wake int64) {
	// The processor executes the moment any thread is runnable, so its
	// whole gap is a stall.
	c.procs[p].addGap(now, now)
	c.threads[p*c.nthreads+t].addGap(now, wake)
}

// MarkHit classifies the instruction between this call's BeginExec and
// EndExec as a continuing cache hit.
func (c *Collector) MarkHit() { c.hit = true }

// AddFaultDebt records recovery-protocol overhead (timeout, retry,
// backoff cycles) issued by thread t of processor p; the next stall
// gaps consume it as fault-recovery time.
func (c *Collector) AddFaultDebt(p, t int, debt int64) {
	if debt <= 0 {
		return
	}
	c.procs[p].faultDebt += debt
	c.threads[p*c.nthreads+t].faultDebt += debt
}

// EndExec accounts the instruction executed at cycle now by thread t of
// processor p: cost busy cycles plus switchCost switch-overhead cycles.
func (c *Collector) EndExec(p, t int, now, cost, switchCost int64) {
	c.procs[p].addExec(now, cost, switchCost, c.hit)
	c.threads[p*c.nthreads+t].addExec(now, cost, switchCost, c.hit)
	c.hit = false
}

// Finish settles every timeline at the run's final cycle count and
// returns the per-processor, per-thread state breakdown. After Finish,
// each processor's (and each thread's) states sum to exactly end.
func (c *Collector) Finish(end int64) *RunMetrics {
	rm := &RunMetrics{
		Schema: SchemaVersion,
		Cycles: end,
		Procs:  make([]ProcMetrics, len(c.procs)),
	}
	for p := range c.procs {
		c.procs[p].close(end)
		pm := &rm.Procs[p]
		pm.Proc = p
		pm.States = stateCycles(&c.procs[p])
		rm.States.accumulate(&pm.States)
		pm.Threads = make([]ThreadMetrics, c.nthreads)
		for t := 0; t < c.nthreads; t++ {
			a := &c.threads[p*c.nthreads+t]
			a.close(end)
			pm.Threads[t] = ThreadMetrics{Thread: t, States: stateCycles(a)}
		}
	}
	return rm
}

// stateCycles copies an acct's counters into the schema struct.
func stateCycles(a *acct) StateCycles {
	return StateCycles{
		Running:       a.states[StateRunning],
		Switching:     a.states[StateSwitching],
		StalledMem:    a.states[StateStalledMem],
		CacheHit:      a.states[StateCacheHit],
		Idle:          a.states[StateIdle],
		FaultRecovery: a.states[StateFaultRecovery],
	}
}
