package metrics

import "fmt"

// This file exports the Collector's mid-run state for the checkpoint
// layer. A paused-and-resumed run must produce a RunMetrics record
// byte-identical to an uninterrupted one, so the state carries every
// timeline exactly: the open end of each accounted span, the pending
// fault-recovery debt, and the six state counters.

// AcctState is the serializable state of one accounted timeline.
type AcctState struct {
	LastEnd   int64
	FaultDebt int64
	States    [NumStates]int64
}

// CollectorState is the serializable state of a Collector. Threads is
// proc-major, matching the collector's internal layout. Hit is the
// between-BeginExec-and-EndExec cache-hit mark; the machine only pauses
// at instruction boundaries, where it is always false, but it is
// carried so the state is complete by construction.
type CollectorState struct {
	Procs   []AcctState
	Threads []AcctState
	Hit     bool
}

// Snapshot captures the collector's state.
func (c *Collector) Snapshot() CollectorState {
	st := CollectorState{
		Procs:   make([]AcctState, len(c.procs)),
		Threads: make([]AcctState, len(c.threads)),
		Hit:     c.hit,
	}
	for i := range c.procs {
		a := &c.procs[i]
		st.Procs[i] = AcctState{LastEnd: a.lastEnd, FaultDebt: a.faultDebt, States: a.states}
	}
	for i := range c.threads {
		a := &c.threads[i]
		st.Threads[i] = AcctState{LastEnd: a.lastEnd, FaultDebt: a.faultDebt, States: a.states}
	}
	return st
}

// RestoreCollector rebuilds a collector for procs processors of
// nthreads thread contexts each from a snapshot of the same shape.
func RestoreCollector(procs, nthreads int, st CollectorState) (*Collector, error) {
	if len(st.Procs) != procs || len(st.Threads) != procs*nthreads {
		return nil, fmt.Errorf("metrics: snapshot shape %dx%d does not match %d procs x %d threads",
			len(st.Procs), len(st.Threads), procs, nthreads)
	}
	c := NewCollector(procs, nthreads)
	for i := range c.procs {
		s := &st.Procs[i]
		c.procs[i] = acct{lastEnd: s.LastEnd, faultDebt: s.FaultDebt, states: s.States}
	}
	for i := range c.threads {
		s := &st.Threads[i]
		c.threads[i] = acct{lastEnd: s.LastEnd, faultDebt: s.FaultDebt, states: s.States}
	}
	c.hit = st.Hit
	return c, nil
}
